//===- synth/CppSynthesizer.h - RAM to C++ code generation ------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesizer: generates a self-contained C++ translation unit from a
/// RAM program, the compiled baseline of every experiment in the paper.
///
/// Relations become structs holding one fully specialized index per
/// selected order — the insertion-time column permutation is emitted as
/// straight-line constant assignments, search keys are built with constant
/// subscripts and element accesses are resolved to encoded positions at
/// generation time. Rule bodies become plain nested C++ loops; nothing is
/// dispatched and nothing is virtual. The generated unit includes the same
/// der/ headers the interpreter uses, so both execution paths share the
/// identical underlying DER data structures (as in Soufflé).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SYNTH_CPPSYNTHESIZER_H
#define STIRD_SYNTH_CPPSYNTHESIZER_H

#include "ram/Ram.h"
#include "translate/IndexSelection.h"
#include "util/SymbolTable.h"

#include <string>

namespace stird::synth {

/// Generates the C++ source reproducing \p Prog. \p Symbols must be the
/// table used during translation: its contents are replayed at startup of
/// the generated binary so symbol ordinals agree with the RAM constants.
///
/// The generated program understands:
///   --facts <dir>   fact-file directory (default ".")
///   --out <dir>     output directory (default ".")
///   --no-store      skip .output file writing
/// and prints RUNTIME/SIZE/RULE records on stdout (see CompilerDriver).
std::string synthesize(const ram::Program &Prog,
                       const translate::IndexSelectionResult &Indexes,
                       const SymbolTable &Symbols);

} // namespace stird::synth

#endif // STIRD_SYNTH_CPPSYNTHESIZER_H
