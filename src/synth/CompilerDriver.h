//===- synth/CompilerDriver.h - Compile and run synthesized code -*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the system C++ compiler over synthesized sources and runs the
/// resulting binaries, measuring compile and run time separately — the two
/// quantities Table 1 of the paper relates (first-run = compile + execute).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SYNTH_COMPILERDRIVER_H
#define STIRD_SYNTH_COMPILERDRIVER_H

#include <map>
#include <optional>
#include <string>

namespace stird::synth {

/// Outcome of compiling one synthesized translation unit.
struct CompileOutcome {
  std::string BinaryPath;
  double CompileSeconds = 0;
};

/// Parsed stdout of one synthesized-binary run.
struct RunOutcome {
  /// Total wall time reported by the binary (RUNTIME record).
  double RuntimeSeconds = 0;
  /// Wall time of the whole process as observed by the driver.
  double WallSeconds = 0;
  /// Final size of every relation (RELSIZE records).
  std::map<std::string, std::size_t> RelationSizes;
  /// Per-rule accumulated seconds keyed by rule label (RULE records).
  std::map<std::string, double> RuleSeconds;
  int ExitCode = 0;
};

/// Writes \p CppSource to WorkDir/Name.cpp, compiles it with the system
/// g++ (-O2, linking the stird runtime sources) and returns the binary
/// path plus compile time; nullopt if compilation fails.
std::optional<CompileOutcome> compileSynthesized(const std::string &CppSource,
                                                 const std::string &WorkDir,
                                                 const std::string &Name);

/// Runs a compiled binary with the given fact/output directories and
/// parses its report. \p StoreOutputs controls --no-store.
RunOutcome runSynthesized(const std::string &BinaryPath,
                          const std::string &FactDir,
                          const std::string &OutDir,
                          bool StoreOutputs = true);

} // namespace stird::synth

#endif // STIRD_SYNTH_COMPILERDRIVER_H
