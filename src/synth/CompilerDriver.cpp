//===- synth/CompilerDriver.cpp - Compile and run synthesized code -----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "synth/CompilerDriver.h"

#include "util/MiscUtil.h"
#include "util/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace stird;
using namespace stird::synth;

#ifndef STIRD_SOURCE_DIR
#error "STIRD_SOURCE_DIR must point at the stird src/ directory"
#endif

std::optional<CompileOutcome>
stird::synth::compileSynthesized(const std::string &CppSource,
                                 const std::string &WorkDir,
                                 const std::string &Name) {
  const std::string SourcePath = WorkDir + "/" + Name + ".cpp";
  const std::string BinaryPath = WorkDir + "/" + Name + ".bin";
  const std::string LogPath = WorkDir + "/" + Name + ".compile.log";
  {
    std::ofstream Out(SourcePath);
    if (!Out)
      fatal("cannot write synthesized source to '" + SourcePath + "'");
    Out << CppSource;
  }

  const std::string SrcDir = STIRD_SOURCE_DIR;
  std::string Command = "g++ -O2 -std=c++20 -I " + SrcDir + " " +
                        SourcePath + " " + SrcDir +
                        "/util/SymbolTable.cpp " + SrcDir +
                        "/util/Csv.cpp " + SrcDir +
                        "/der/EquivalenceRelation.cpp -o " + BinaryPath +
                        " > " + LogPath + " 2>&1";
  Timer T;
  int Status = std::system(Command.c_str());
  if (Status != 0) {
    std::fprintf(stderr,
                 "synthesized compilation failed; see %s\n",
                 LogPath.c_str());
    return std::nullopt;
  }
  return CompileOutcome{BinaryPath, T.seconds()};
}

RunOutcome stird::synth::runSynthesized(const std::string &BinaryPath,
                                        const std::string &FactDir,
                                        const std::string &OutDir,
                                        bool StoreOutputs) {
  const std::string ReportPath = BinaryPath + ".out";
  std::string Command = BinaryPath + " --facts " + FactDir + " --out " +
                        OutDir;
  if (!StoreOutputs)
    Command += " --no-store";
  Command += " > " + ReportPath + " 2>&1";

  RunOutcome Result;
  Timer T;
  Result.ExitCode = std::system(Command.c_str());
  Result.WallSeconds = T.seconds();

  std::ifstream In(ReportPath);
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream Parts(Line);
    std::string Tag;
    std::getline(Parts, Tag, '\t');
    if (Tag == "RUNTIME") {
      Parts >> Result.RuntimeSeconds;
    } else if (Tag == "RELSIZE" || Tag == "SIZE") {
      std::string Name;
      std::getline(Parts, Name, '\t');
      std::size_t Size = 0;
      Parts >> Size;
      Result.RelationSizes[Name] = Size;
    } else if (Tag == "RULE") {
      std::string IdText, SecondsText, Label;
      std::getline(Parts, IdText, '\t');
      std::getline(Parts, SecondsText, '\t');
      std::getline(Parts, Label);
      Result.RuleSeconds[Label] = std::strtod(SecondsText.c_str(), nullptr);
    }
  }
  return Result;
}
