//===- srv/Query.cpp - Partial-tuple queries over resident relations ----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "srv/Query.h"

#include "interp/Order.h"

#include <algorithm>
#include <cassert>

using namespace stird;
using namespace stird::srv;

QueryPlan srv::planQuery(const interp::RelationWrapper &Rel,
                         const Pattern &P) {
  assert(P.size() == Rel.getArity() && "pattern arity mismatch");
  QueryPlan Plan;
  for (std::size_t I = 0; I < P.size(); ++I)
    if (P[I])
      Plan.Mask |= std::uint32_t(1) << I;

  // The equivalence relation answers any mask natively from its union-find
  // structure; there is no index to choose.
  if (Rel.getKind() == interp::RelKind::Eqrel) {
    Plan.PrefixLen = static_cast<std::size_t>(__builtin_popcount(Plan.Mask));
    return Plan;
  }

  for (std::size_t Idx = 0; Idx < Rel.getNumIndexes(); ++Idx) {
    const interp::Order &Ord = Rel.getOrder(Idx);
    std::size_t Len = 0;
    while (Len < Ord.size() && P[Ord.column(Len)])
      ++Len;
    if (Len > Plan.PrefixLen) {
      Plan.PrefixLen = Len;
      Plan.IndexPos = Idx;
    }
  }
  const std::size_t Bound =
      static_cast<std::size_t>(__builtin_popcount(Plan.Mask));
  Plan.ResidualColumns = Bound - Plan.PrefixLen;
  return Plan;
}

std::vector<DynTuple> srv::runQuery(const interp::RelationWrapper &Rel,
                                    const Pattern &P, QueryPlan *PlanOut) {
  const QueryPlan Plan = planQuery(Rel, P);
  if (PlanOut)
    *PlanOut = Plan;
  return runQuery(Rel, P, Plan);
}

std::vector<DynTuple> srv::runQuery(const interp::RelationWrapper &Rel,
                                    const Pattern &P, const QueryPlan &Plan) {
  const std::size_t Arity = Rel.getArity();

  // Build the encoded range key. For the equivalence relation the "key" is
  // positional (its range() reads EncodedKey[0]/[1] by mask); for indexed
  // relations it is the chosen order's prefix.
  std::vector<RamDomain> Key(Arity, 0);
  if (Rel.getKind() == interp::RelKind::Eqrel) {
    for (std::size_t I = 0; I < Arity; ++I)
      if (P[I])
        Key[I] = *P[I];
  } else {
    const interp::Order &Ord = Rel.getOrder(Plan.IndexPos);
    for (std::size_t J = 0; J < Plan.PrefixLen; ++J)
      Key[J] = *P[Ord.column(J)];
  }

  std::vector<DynTuple> Result;
  interp::BufferedTupleSource Source(
      Rel.range(Plan.IndexPos, Key.data(), Plan.PrefixLen, Plan.Mask,
                /*Decode=*/true),
      Arity);
  while (const RamDomain *Tuple = Source.next()) {
    bool Matches = true;
    for (std::size_t I = 0; I < Arity && Matches; ++I)
      if (P[I] && *P[I] != Tuple[I])
        Matches = false;
    if (Matches)
      Result.emplace_back(Tuple, Tuple + Arity);
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

//===----------------------------------------------------------------------===//
// QueryCache
//===----------------------------------------------------------------------===//

std::string QueryCache::key(const std::string &Relation, const Pattern &P) {
  // Relation name, then one fixed-width cell per column: a bound cell's
  // ordinal bytes, or a wildcard marker no ordinal encoding can collide
  // with (the marker byte is distinct from the bound tag).
  std::string Key;
  Key.reserve(Relation.size() + 1 + P.size() * 5);
  Key += Relation;
  Key += '\0';
  for (const std::optional<RamDomain> &Cell : P) {
    if (!Cell) {
      Key += '\1';
      continue;
    }
    Key += '\2';
    const auto V = static_cast<std::uint32_t>(*Cell);
    Key += static_cast<char>(V >> 24);
    Key += static_cast<char>(V >> 16);
    Key += static_cast<char>(V >> 8);
    Key += static_cast<char>(V);
  }
  return Key;
}

std::shared_ptr<const QueryCache::CachedResult>
QueryCache::lookup(const std::string &Key, std::uint64_t E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (E != Epoch) {
    // A publish happened since the cache was last touched: every entry is
    // stale. (An *older* epoch can reach here too — a reader still pinning
    // the previous side after a publish; its result must not come from the
    // new side's cache either way.)
    if (E > Epoch) {
      if (!Map.empty())
        ++Invalidations;
      Map.clear();
      Epoch = E;
    }
    ++Misses;
    return nullptr;
  }
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  return It->second;
}

void QueryCache::insert(const std::string &Key, std::uint64_t E,
                        std::shared_ptr<const CachedResult> Result) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (E < Epoch)
    return; // computed against an already superseded snapshot
  if (E > Epoch) {
    if (!Map.empty())
      ++Invalidations;
    Map.clear();
    Epoch = E;
  }
  if (Map.size() >= MaxEntries)
    Map.clear(); // wholesale flush; see the class comment
  Map[Key] = std::move(Result);
}

QueryCache::Counters QueryCache::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return {Hits, Misses, Invalidations, Map.size()};
}
