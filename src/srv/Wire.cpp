//===- srv/Wire.cpp - Length-prefixed JSON wire protocol ----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "srv/Wire.h"

#include "util/Csv.h"
#include "util/Timer.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <unistd.h>

using namespace stird;
using namespace stird::srv;
using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

static bool setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

/// Reads exactly \p Len bytes; 1 on success, 0 on EOF at a frame boundary
/// start, -1 on error or truncation.
static int readExact(int Fd, char *Buffer, std::size_t Len, bool &SawData) {
  std::size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::read(Fd, Buffer + Done, Len - Done);
    if (N == 0)
      return (Done == 0 && !SawData) ? 0 : -1;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    SawData = true;
    Done += static_cast<std::size_t>(N);
  }
  return 1;
}

bool srv::readFrame(int Fd, std::string &Payload, std::string *Error) {
  unsigned char Prefix[4];
  bool SawData = false;
  int R = readExact(Fd, reinterpret_cast<char *>(Prefix), 4, SawData);
  if (R == 0)
    return setError(Error, ""); // clean EOF, empty error
  if (R < 0)
    return setError(Error, "truncated frame header");
  const std::uint32_t Len = (std::uint32_t(Prefix[0]) << 24) |
                            (std::uint32_t(Prefix[1]) << 16) |
                            (std::uint32_t(Prefix[2]) << 8) |
                            std::uint32_t(Prefix[3]);
  if (Len > MaxFrameBytes)
    return setError(Error,
                    "frame of " + std::to_string(Len) + " bytes exceeds " +
                        std::to_string(MaxFrameBytes));
  Payload.resize(Len);
  if (Len > 0 && readExact(Fd, Payload.data(), Len, SawData) != 1)
    return setError(Error, "truncated frame payload");
  return true;
}

bool srv::writeFrame(int Fd, const std::string &Payload,
                     std::string *Error) {
  if (Payload.size() > MaxFrameBytes)
    return setError(Error, "frame payload exceeds MaxFrameBytes");
  const std::uint32_t Len = static_cast<std::uint32_t>(Payload.size());
  unsigned char Prefix[4] = {static_cast<unsigned char>(Len >> 24),
                             static_cast<unsigned char>(Len >> 16),
                             static_cast<unsigned char>(Len >> 8),
                             static_cast<unsigned char>(Len)};
  std::string Frame(reinterpret_cast<char *>(Prefix), 4);
  Frame += Payload;
  std::size_t Done = 0;
  while (Done < Frame.size()) {
    ssize_t N = ::write(Fd, Frame.data() + Done, Frame.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return setError(Error, std::string("write failed: ") +
                                 std::strerror(errno));
    }
    Done += static_cast<std::size_t>(N);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

static Value errorReply(const std::string &Message) {
  Object O;
  O.emplace_back("ok", false);
  O.emplace_back("error", Message);
  return Value(std::move(O));
}

/// Renders one JSON cell (string or number) as the raw column text the
/// typed parser consumes. Returns false for any other JSON type.
static bool cellText(const Value &Cell, std::string &Out) {
  if (Cell.isString()) {
    Out = Cell.asString();
    return true;
  }
  if (Cell.isNumber()) {
    const double D = Cell.asNumber();
    if (D == static_cast<double>(static_cast<std::int64_t>(D)))
      Out = std::to_string(static_cast<std::int64_t>(D));
    else
      Out = std::to_string(D);
    return true;
  }
  return false;
}

static Value handleLoad(EngineSession &Session, const Value &Request) {
  const Value *Facts = Request.find("facts");
  if (!Facts || !Facts->isObject())
    return errorReply("load requires a \"facts\" object");
  TextBatch Batch;
  for (const auto &[Relation, Rows] : Facts->asObject()) {
    if (!Rows.isArray())
      return errorReply("facts for '" + Relation + "' must be an array");
    std::vector<std::vector<std::string>> Text;
    for (const Value &Row : Rows.asArray()) {
      if (!Row.isArray())
        return errorReply("tuple for '" + Relation + "' must be an array");
      std::vector<std::string> Cells;
      for (const Value &Cell : Row.asArray()) {
        std::string Raw;
        if (!cellText(Cell, Raw))
          return errorReply("cells must be strings or numbers");
        Cells.push_back(std::move(Raw));
      }
      Text.push_back(std::move(Cells));
    }
    Batch.emplace_back(Relation, std::move(Text));
  }

  std::vector<FactError> Errors;
  BatchResult Result = Session.loadFacts(Batch, Errors);
  Object O;
  O.emplace_back("ok", true);
  O.emplace_back("inserted", static_cast<std::uint64_t>(Result.Inserted));
  O.emplace_back("duplicates",
                 static_cast<std::uint64_t>(Result.Duplicates));
  O.emplace_back("incremental", Result.Incremental);
  O.emplace_back("epoch", Result.Epoch);
  O.emplace_back("seconds", Result.Seconds);
  Array Warnings;
  for (const FactError &Err : Errors)
    Warnings.emplace_back(Err.render());
  O.emplace_back("warnings", std::move(Warnings));
  return Value(std::move(O));
}

static Value handleQuery(EngineSession &Session, const Value &Request) {
  const Value *Relation = Request.find("relation");
  if (!Relation || !Relation->isString())
    return errorReply("query requires a \"relation\" string");
  const std::string &Name = Relation->asString();
  const std::vector<ColumnTypeKind> *Types = Session.relationTypes(Name);
  if (!Types)
    return errorReply("unknown relation '" + Name + "'");

  Pattern P(Types->size());
  if (const Value *PatternVal = Request.find("pattern")) {
    if (!PatternVal->isArray())
      return errorReply("\"pattern\" must be an array");
    const Array &Cells = PatternVal->asArray();
    if (Cells.size() != Types->size())
      return errorReply("pattern has " + std::to_string(Cells.size()) +
                        " columns, expected " +
                        std::to_string(Types->size()));
    for (std::size_t I = 0; I < Cells.size(); ++I) {
      if (Cells[I].isNull())
        continue;
      std::string Raw;
      if (!cellText(Cells[I], Raw))
        return errorReply("pattern cells must be strings, numbers or null");
      // An unknown symbol cannot match anything; binding to the key of an
      // empty range would require interning it, so report no matches via
      // an impossible pattern instead of polluting the symbol table.
      if ((*Types)[I] == ColumnTypeKind::Symbol) {
        RamDomain Ordinal = Session.symbols().lookup(Raw);
        if (Ordinal < 0) {
          Object O;
          O.emplace_back("ok", true);
          O.emplace_back("tuples", Array{});
          O.emplace_back("count", std::uint64_t(0));
          O.emplace_back("epoch", Session.epoch());
          return Value(std::move(O));
        }
        P[I] = Ordinal;
        continue;
      }
      RamDomain Cell = 0;
      std::string Message;
      if (!tryParseColumn(Raw, (*Types)[I], Session.symbols(), Cell,
                          &Message))
        return errorReply("pattern column " + std::to_string(I + 1) + ": " +
                          Message);
      P[I] = Cell;
    }
  }

  Snapshot Snap = Session.snapshot();
  QueryPlan Plan;
  std::vector<DynTuple> Tuples = Snap.query(Name, P, &Plan);

  Object O;
  O.emplace_back("ok", true);
  Array Rows;
  for (const DynTuple &Tuple : Tuples) {
    Array Row;
    for (std::size_t I = 0; I < Tuple.size(); ++I)
      Row.emplace_back(
          printColumn(Tuple[I], (*Types)[I], Session.symbols()));
    Rows.emplace_back(std::move(Row));
  }
  O.emplace_back("tuples", std::move(Rows));
  O.emplace_back("count", static_cast<std::uint64_t>(Tuples.size()));
  O.emplace_back("epoch", Snap.epoch());
  Object PlanObj;
  PlanObj.emplace_back("index", static_cast<std::uint64_t>(Plan.IndexPos));
  PlanObj.emplace_back("prefix_len",
                       static_cast<std::uint64_t>(Plan.PrefixLen));
  PlanObj.emplace_back("residual_columns",
                       static_cast<std::uint64_t>(Plan.ResidualColumns));
  O.emplace_back("plan", std::move(PlanObj));
  return Value(std::move(O));
}

static Value handleStats(EngineSession &Session,
                         obs::LatencyAggregator &Latency) {
  Snapshot Snap = Session.snapshot();
  Object O;
  O.emplace_back("ok", true);
  O.emplace_back("protocol", WireProtocolVersion);
  O.emplace_back("epoch", Snap.epoch());
  O.emplace_back("incremental", Session.isIncremental());

  // Declared relations only; the update program's aux relations are an
  // implementation detail.
  Array Relations;
  const obs::StatsBlock &Stats = Snap.stats();
  const auto &StatsRels = Snap.statsRelations();
  for (const std::string &Name : Session.relationNames()) {
    const interp::RelationWrapper *Rel = Snap.relation(Name);
    if (!Rel)
      continue;
    Object R;
    R.emplace_back("name", Name);
    R.emplace_back("arity", static_cast<std::uint64_t>(Rel->getArity()));
    R.emplace_back("size", static_cast<std::uint64_t>(Rel->size()));
    const std::size_t Id = Rel->getStatsId();
    if (Id < Stats.size() && Id < StatsRels.size() &&
        StatsRels[Id] == Rel) {
      Value StatsVal = obs::relationStatsJson(Stats[Id]);
      for (auto &[Key, Val] : StatsVal.asObject())
        R.emplace_back(Key, std::move(Val));
    }
    Relations.emplace_back(std::move(R));
  }
  O.emplace_back("relations", std::move(Relations));
  O.emplace_back("latency", Latency.toJson());
  return Value(std::move(O));
}

RequestOutcome srv::handleRequest(EngineSession &Session,
                                  obs::LatencyAggregator &Latency,
                                  const std::string &Payload) {
  Timer T;
  RequestOutcome Outcome;

  std::string ParseError;
  std::optional<Value> Request = obs::json::parse(Payload, &ParseError);
  if (!Request || !Request->isObject()) {
    Outcome.Reply = errorReply(
        Request ? "request must be a JSON object"
                : "malformed request: " + ParseError);
  } else if (const Value *Cmd = Request->find("cmd");
             !Cmd || !Cmd->isString()) {
    Outcome.Reply = errorReply("request requires a \"cmd\" string");
  } else {
    Outcome.Command = Cmd->asString();
    if (Outcome.Command == "load")
      Outcome.Reply = handleLoad(Session, *Request);
    else if (Outcome.Command == "query")
      Outcome.Reply = handleQuery(Session, *Request);
    else if (Outcome.Command == "stats")
      Outcome.Reply = handleStats(Session, Latency);
    else if (Outcome.Command == "shutdown") {
      Object O;
      O.emplace_back("ok", true);
      Outcome.Reply = Value(std::move(O));
      Outcome.Shutdown = true;
    } else {
      Outcome.Reply =
          errorReply("unknown command '" + Outcome.Command + "'");
    }
  }

  const std::uint64_t Micros = T.microseconds();
  Latency.record(Outcome.Command, Micros);
  Outcome.Reply.set("micros", Micros);
  return Outcome;
}
