//===- srv/Wire.cpp - Length-prefixed JSON wire protocol ----------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "srv/Wire.h"

#include "interp/Scheduler.h"
#include "srv/Metrics.h"
#include "util/Csv.h"
#include "util/MiscUtil.h"
#include "util/Timer.h"

#include <cassert>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <unistd.h>

using namespace stird;
using namespace stird::srv;
using obs::json::Array;
using obs::json::Object;
using obs::json::Value;

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

static bool setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

/// Reads exactly \p Len bytes; 1 on success, 0 on EOF at a frame boundary
/// start, -1 on error or truncation.
static int readExact(int Fd, char *Buffer, std::size_t Len, bool &SawData) {
  std::size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::read(Fd, Buffer + Done, Len - Done);
    if (N == 0)
      return (Done == 0 && !SawData) ? 0 : -1;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    SawData = true;
    Done += static_cast<std::size_t>(N);
  }
  return 1;
}

static std::string oversizedMessage(std::uint32_t Len, std::size_t Max) {
  return "frame of " + std::to_string(Len) + " bytes exceeds " +
         std::to_string(Max);
}

bool srv::readFrame(int Fd, std::string &Payload, std::string *Error) {
  unsigned char Prefix[4];
  bool SawData = false;
  int R = readExact(Fd, reinterpret_cast<char *>(Prefix), 4, SawData);
  if (R == 0)
    return setError(Error, ""); // clean EOF, empty error
  if (R < 0)
    return setError(Error, "truncated frame header");
  const std::uint32_t Len = (std::uint32_t(Prefix[0]) << 24) |
                            (std::uint32_t(Prefix[1]) << 16) |
                            (std::uint32_t(Prefix[2]) << 8) |
                            std::uint32_t(Prefix[3]);
  if (Len > MaxFrameBytes)
    return setError(Error, oversizedMessage(Len, MaxFrameBytes));
  Payload.resize(Len);
  if (Len > 0 && readExact(Fd, Payload.data(), Len, SawData) != 1)
    return setError(Error, "truncated frame payload");
  return true;
}

std::string srv::encodeFrame(const std::string &Payload) {
  assert(Payload.size() <= MaxFrameBytes && "frame payload too large");
  const std::uint32_t Len = static_cast<std::uint32_t>(Payload.size());
  std::string Frame;
  Frame.reserve(4 + Payload.size());
  Frame.push_back(static_cast<char>(Len >> 24));
  Frame.push_back(static_cast<char>(Len >> 16));
  Frame.push_back(static_cast<char>(Len >> 8));
  Frame.push_back(static_cast<char>(Len));
  Frame += Payload;
  return Frame;
}

bool srv::writeFrame(int Fd, const std::string &Payload,
                     std::string *Error) {
  if (Payload.size() > MaxFrameBytes)
    return setError(Error, "frame payload exceeds MaxFrameBytes");
  const std::string Frame = encodeFrame(Payload);
  std::size_t Done = 0;
  while (Done < Frame.size()) {
    ssize_t N = ::write(Fd, Frame.data() + Done, Frame.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return setError(Error, std::string("write failed: ") +
                                 std::strerror(errno));
    }
    Done += static_cast<std::size_t>(N);
  }
  return true;
}

void FrameDecoder::feed(const char *Data, std::size_t Len) {
  if (Poisoned)
    return; // the stream is unrecoverable; don't buffer garbage
  // Compact the consumed prefix before it dominates the buffer.
  if (Pos > 4096 && Pos * 2 > Buffer.size()) {
    Buffer.erase(0, Pos);
    Pos = 0;
  }
  Buffer.append(Data, Len);
}

FrameDecoder::Result FrameDecoder::next(std::string &Payload,
                                        std::string *Error) {
  if (Poisoned) {
    setError(Error, PoisonError);
    return Result::Error;
  }
  if (buffered() < 4)
    return Result::NeedMore;
  const unsigned char *P =
      reinterpret_cast<const unsigned char *>(Buffer.data()) + Pos;
  const std::uint32_t Len = (std::uint32_t(P[0]) << 24) |
                            (std::uint32_t(P[1]) << 16) |
                            (std::uint32_t(P[2]) << 8) | std::uint32_t(P[3]);
  // The guard fires on the 4 prefix bytes alone — an absurd (or, read as
  // signed, negative) length never causes a payload-sized allocation.
  if (Len > Max) {
    Poisoned = true;
    PoisonError = oversizedMessage(Len, Max);
    Buffer.clear();
    Pos = 0;
    setError(Error, PoisonError);
    return Result::Error;
  }
  if (buffered() < 4 + static_cast<std::size_t>(Len))
    return Result::NeedMore;
  Payload.assign(Buffer, Pos + 4, Len);
  Pos += 4 + static_cast<std::size_t>(Len);
  if (Pos == Buffer.size()) {
    Buffer.clear();
    Pos = 0;
  }
  return Result::Frame;
}

//===----------------------------------------------------------------------===//
// Tenants
//===----------------------------------------------------------------------===//

Tenant &TenantRegistry::add(const std::string &Name,
                            EngineSession &Session) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &T : List)
    if (T->Name == Name)
      fatal("duplicate tenant '" + Name + "'");
  List.push_back(std::make_unique<Tenant>(Name, Session));
  return *List.back();
}

Tenant *TenantRegistry::find(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &T : List)
    if (T->Name == Name)
      return T.get();
  return nullptr;
}

Tenant *TenantRegistry::defaultTenant() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return List.empty() ? nullptr : List.front().get();
}

std::vector<Tenant *> TenantRegistry::tenants() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<Tenant *> Out;
  Out.reserve(List.size());
  for (const auto &T : List)
    Out.push_back(T.get());
  return Out;
}

std::size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return List.size();
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

Value srv::errorReply(const std::string &Message) {
  Object O;
  O.emplace_back("ok", false);
  O.emplace_back("error", Message);
  return Value(std::move(O));
}

namespace {

/// Everything one dispatch needs: the routed session, where to record
/// latency, and — in registry mode — the cache and the registry itself
/// (for the stats command's tenant and server sections). Cache and
/// Registry are null in the single-session v1 entry point.
struct RequestContext {
  EngineSession &Session;
  obs::LatencyAggregator &Latency;
  QueryCache *Cache = nullptr;
  const TenantRegistry *Registry = nullptr;
  const Tenant *T = nullptr;
  /// Lifecycle trace of this request, when it drew one. Null otherwise.
  obs::RequestTrace *Trace = nullptr;
};

} // namespace

/// Renders one JSON cell (string or number) as the raw column text the
/// typed parser consumes. Returns false for any other JSON type.
static bool cellText(const Value &Cell, std::string &Out) {
  if (Cell.isString()) {
    Out = Cell.asString();
    return true;
  }
  if (Cell.isNumber()) {
    const double D = Cell.asNumber();
    if (D == static_cast<double>(static_cast<std::int64_t>(D)))
      Out = std::to_string(static_cast<std::int64_t>(D));
    else
      Out = std::to_string(D);
    return true;
  }
  return false;
}

/// Parses one facts-style object ({"rel": [[cell, ...], ...], ...}) into
/// textual rows per relation. Returns "" on success, else the error text.
static std::string
parseFactsObject(const Value &Facts, const char *What,
                 std::vector<std::pair<std::string,
                                       std::vector<std::vector<std::string>>>>
                     &Out) {
  for (const auto &[Relation, Rows] : Facts.asObject()) {
    if (!Rows.isArray())
      return std::string(What) + " for '" + Relation + "' must be an array";
    std::vector<std::vector<std::string>> Text;
    for (const Value &Row : Rows.asArray()) {
      if (!Row.isArray())
        return "tuple for '" + Relation + "' must be an array";
      std::vector<std::string> Cells;
      for (const Value &Cell : Row.asArray()) {
        std::string Raw;
        if (!cellText(Cell, Raw))
          return "cells must be strings or numbers";
        Cells.push_back(std::move(Raw));
      }
      Text.push_back(std::move(Cells));
    }
    Out.emplace_back(Relation, std::move(Text));
  }
  return "";
}

/// Shared tail of load/retract: apply the mixed batch, render the reply.
static Value mixedBatchReply(EngineSession &Session,
                             const MixedTextBatch &Batch) {
  std::vector<FactError> Errors;
  BatchResult Result = Session.applyMixed(Batch, Errors);
  if (!Result.Error.empty())
    return errorReply(Result.Error);
  Object O;
  O.emplace_back("ok", true);
  O.emplace_back("inserted", static_cast<std::uint64_t>(Result.Inserted));
  O.emplace_back("duplicates",
                 static_cast<std::uint64_t>(Result.Duplicates));
  O.emplace_back("deleted", static_cast<std::uint64_t>(Result.Deleted));
  O.emplace_back("missing", static_cast<std::uint64_t>(Result.Missing));
  O.emplace_back("incremental", Result.Incremental);
  O.emplace_back("maintained", Result.Maintained);
  if (Result.Maintained)
    O.emplace_back("reeval_strata", Result.Maint.ReevalStrata);
  O.emplace_back("epoch", Result.Epoch);
  O.emplace_back("seconds", Result.Seconds);
  Array Warnings;
  for (const FactError &Err : Errors)
    Warnings.emplace_back(Err.render());
  O.emplace_back("warnings", std::move(Warnings));
  return Value(std::move(O));
}

/// load: {"facts": {...}} inserts, plus an optional {"retract": {...}}
/// block for mixed batches. retract: {"facts": {...}} retractions only.
static Value handleLoad(EngineSession &Session, const Value &Request,
                        bool RetractCmd) {
  const Value *Facts = Request.find("facts");
  if (!Facts || !Facts->isObject())
    return errorReply(std::string(RetractCmd ? "retract" : "load") +
                      " requires a \"facts\" object");
  std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>
      Primary, Retracts;
  std::string Err =
      parseFactsObject(*Facts, RetractCmd ? "retractions" : "facts",
                       Primary);
  if (Err.empty()) {
    if (const Value *R = Request.find("retract"); R && !RetractCmd) {
      if (!R->isObject())
        Err = "\"retract\" must be an object";
      else
        Err = parseFactsObject(*R, "retractions", Retracts);
    } else if (Request.find("retract") && RetractCmd) {
      Err = "retract takes its tuples via \"facts\"";
    }
  }
  if (!Err.empty())
    return errorReply(Err);

  MixedTextBatch Batch;
  // Merge the blocks per relation so retract-then-insert ordering holds
  // even when both mention the same relation.
  auto opsFor = [&Batch](const std::string &Relation) -> TextRelationOps & {
    for (TextRelationOps &Ops : Batch)
      if (Ops.Relation == Relation)
        return Ops;
    Batch.push_back({Relation, {}, {}});
    return Batch.back();
  };
  for (auto &[Relation, Rows] : Retracts)
    opsFor(Relation).Retracts = std::move(Rows);
  for (auto &[Relation, Rows] : Primary) {
    if (RetractCmd)
      opsFor(Relation).Retracts = std::move(Rows);
    else
      opsFor(Relation).Inserts = std::move(Rows);
  }
  return mixedBatchReply(Session, Batch);
}

/// Assembles a query reply around an already-serialized tuples fragment.
/// \p Cached is tri-state: absent (v1 single-session mode) or the
/// hit/miss flag.
static Value queryReply(std::shared_ptr<const std::string> Tuples,
                        std::uint64_t Count, const QueryPlan &Plan,
                        std::uint64_t Epoch, std::optional<bool> Cached) {
  Object O;
  O.emplace_back("ok", true);
  O.emplace_back("tuples", obs::json::Raw{std::move(Tuples)});
  O.emplace_back("count", Count);
  O.emplace_back("epoch", Epoch);
  Object PlanObj;
  PlanObj.emplace_back("index", static_cast<std::uint64_t>(Plan.IndexPos));
  PlanObj.emplace_back("prefix_len",
                       static_cast<std::uint64_t>(Plan.PrefixLen));
  PlanObj.emplace_back("residual_columns",
                       static_cast<std::uint64_t>(Plan.ResidualColumns));
  O.emplace_back("plan", std::move(PlanObj));
  if (Cached)
    O.emplace_back("cached", *Cached);
  return Value(std::move(O));
}

static Value handleQuery(const RequestContext &Ctx, const Value &Request) {
  EngineSession &Session = Ctx.Session;
  QueryCache *Cache = Ctx.Cache;
  obs::RequestTrace *Trace = Ctx.Trace;
  const Value *Relation = Request.find("relation");
  if (!Relation || !Relation->isString())
    return errorReply("query requires a \"relation\" string");
  const std::string &Name = Relation->asString();
  const std::vector<ColumnTypeKind> *Types = Session.relationTypes(Name);
  if (!Types)
    return errorReply("unknown relation '" + Name + "'");
  if (Trace)
    Trace->Relation = Name;

  Pattern P(Types->size());
  const Value *PatternVal = Request.find("pattern");
  if (Trace && PatternVal && PatternVal->isArray())
    Trace->PatternKey = PatternVal->dump();
  if (PatternVal) {
    if (!PatternVal->isArray())
      return errorReply("\"pattern\" must be an array");
    const Array &Cells = PatternVal->asArray();
    if (Cells.size() != Types->size())
      return errorReply("pattern has " + std::to_string(Cells.size()) +
                        " columns, expected " +
                        std::to_string(Types->size()));
    for (std::size_t I = 0; I < Cells.size(); ++I) {
      if (Cells[I].isNull())
        continue;
      std::string Raw;
      if (!cellText(Cells[I], Raw))
        return errorReply("pattern cells must be strings, numbers or null");
      // An unknown symbol cannot match anything; binding to the key of an
      // empty range would require interning it, so report no matches via
      // an impossible pattern instead of polluting the symbol table.
      if ((*Types)[I] == ColumnTypeKind::Symbol) {
        RamDomain Ordinal = Session.symbols().lookup(Raw);
        if (Ordinal < 0) {
          Object O;
          O.emplace_back("ok", true);
          O.emplace_back("tuples", Array{});
          O.emplace_back("count", std::uint64_t(0));
          O.emplace_back("epoch", Session.epoch());
          return Value(std::move(O));
        }
        P[I] = Ordinal;
        continue;
      }
      RamDomain Cell = 0;
      std::string Message;
      if (!tryParseColumn(Raw, (*Types)[I], Session.symbols(), Cell,
                          &Message))
        return errorReply("pattern column " + std::to_string(I + 1) + ": " +
                          Message);
      P[I] = Cell;
    }
  }

  Snapshot Snap = Session.snapshot();
  std::string CacheKey;
  if (Cache) {
    obs::StageScope Scope(Trace, obs::RequestStage::Cache);
    CacheKey = QueryCache::key(Name, P);
    if (std::shared_ptr<const QueryCache::CachedResult> Hit =
            Cache->lookup(CacheKey, Snap.epoch())) {
      // The rows were rendered against the shared append-only symbol
      // table, so the shared fragment is still exact at this epoch; the
      // hit costs one refcount bump plus a verbatim splice.
      if (Trace) {
        Trace->Cached = true;
        Trace->HasPlan = true;
        Trace->PlanIndex = Hit->Plan.IndexPos;
        Trace->PlanPrefixLen = Hit->Plan.PrefixLen;
        Trace->PlanResidual = Hit->Plan.ResidualColumns;
      }
      return queryReply(Hit->Tuples, Hit->Count, Hit->Plan, Snap.epoch(),
                        true);
    }
  }

  const interp::RelationWrapper *Rel = Snap.relation(Name);
  if (!Rel)
    return errorReply("unknown relation '" + Name + "'");
  QueryPlan Plan;
  {
    obs::StageScope Scope(Trace, obs::RequestStage::Plan);
    Plan = planQuery(*Rel, P);
  }
  if (Trace) {
    Trace->HasPlan = true;
    Trace->PlanIndex = Plan.IndexPos;
    Trace->PlanPrefixLen = Plan.PrefixLen;
    Trace->PlanResidual = Plan.ResidualColumns;
  }
  std::vector<DynTuple> Tuples;
  {
    obs::StageScope Scope(Trace, obs::RequestStage::Eval);
    Tuples = runQuery(*Rel, P, Plan);
  }
  Array Rows;
  Rows.reserve(Tuples.size());
  for (const DynTuple &Tuple : Tuples) {
    Array Row;
    for (std::size_t I = 0; I < Tuple.size(); ++I)
      Row.emplace_back(
          printColumn(Tuple[I], (*Types)[I], Session.symbols()));
    Rows.emplace_back(std::move(Row));
  }
  const auto Count = static_cast<std::uint64_t>(Tuples.size());
  // Serialize the rows exactly once; the reply and every future cache hit
  // share the same text.
  auto TuplesText =
      std::make_shared<const std::string>(Value(std::move(Rows)).dump());

  if (Cache) {
    auto Entry = std::make_shared<QueryCache::CachedResult>();
    Entry->Tuples = TuplesText;
    Entry->Count = Count;
    Entry->Plan = Plan;
    Cache->insert(CacheKey, Snap.epoch(), std::move(Entry));
  }
  return queryReply(std::move(TuplesText), Count, Plan, Snap.epoch(),
                    Cache ? std::optional<bool>(false) : std::nullopt);
}

static Value handleStats(const RequestContext &Ctx) {
  EngineSession &Session = Ctx.Session;
  Snapshot Snap = Session.snapshot();
  Object O;
  O.emplace_back("ok", true);
  O.emplace_back("protocol", WireProtocolVersion);
  O.emplace_back("epoch", Snap.epoch());
  O.emplace_back("incremental", Session.isIncremental());

  // Declared relations only; the update program's aux relations are an
  // implementation detail.
  Array Relations;
  const obs::StatsBlock &Stats = Snap.stats();
  const auto &StatsRels = Snap.statsRelations();
  for (const std::string &Name : Session.relationNames()) {
    const interp::RelationWrapper *Rel = Snap.relation(Name);
    if (!Rel)
      continue;
    Object R;
    R.emplace_back("name", Name);
    R.emplace_back("arity", static_cast<std::uint64_t>(Rel->getArity()));
    R.emplace_back("kind", std::string(interp::relKindName(Rel->getKind())));
    R.emplace_back("size", static_cast<std::uint64_t>(Rel->size()));
    const std::size_t Id = Rel->getStatsId();
    if (Id < Stats.size() && Id < StatsRels.size() &&
        StatsRels[Id] == Rel) {
      Value StatsVal = obs::relationStatsJson(Stats[Id]);
      for (auto &[Key, Val] : StatsVal.asObject())
        R.emplace_back(Key, std::move(Val));
    }
    Relations.emplace_back(std::move(R));
  }
  O.emplace_back("relations", std::move(Relations));

  // Compile-time substrate decisions (forced or feedback-driven), so an
  // operator can see why a relation serves from a non-declared structure.
  const auto &Substrates = Session.program().getSubstrateDecisions();
  if (!Substrates.empty()) {
    Object Decisions;
    for (const auto &[RelName, Decision] : Substrates)
      Decisions.emplace_back(RelName, Decision);
    O.emplace_back("substrate_decisions", std::move(Decisions));
  }

  // Incremental-maintenance health: whether mixed batches stay in place,
  // and every fallback that ever ran, by reason — fallbacks are counted
  // and visible, never silent.
  const MaintTelemetry Maint = Session.maintTelemetry();
  Object MaintObj;
  MaintObj.emplace_back("enabled", Maint.Enabled);
  if (!Maint.Enabled)
    MaintObj.emplace_back("reason", Maint.IneligibleReason);
  MaintObj.emplace_back("batches", Maint.Batches);
  MaintObj.emplace_back("inserted", Maint.Inserted);
  MaintObj.emplace_back("deleted", Maint.Deleted);
  MaintObj.emplace_back("rederived", Maint.Rederived);
  MaintObj.emplace_back("reeval_strata", Maint.ReevalStrata);
  MaintObj.emplace_back("rebuild_fallbacks", Maint.Rebuilds);
  Object Fallbacks;
  for (const auto &[Reason, Count] : Maint.FallbackReasons)
    Fallbacks.emplace_back(Reason, Count);
  MaintObj.emplace_back("fallbacks", std::move(Fallbacks));
  O.emplace_back("maintenance", std::move(MaintObj));

  O.emplace_back("latency", Ctx.Latency.toJson());

  if (Ctx.T) {
    O.emplace_back("tenant", Ctx.T->Name);
    O.emplace_back("requests",
                   Ctx.T->Requests.load(std::memory_order_relaxed));
    const QueryCache::Counters C = Ctx.T->Cache.counters();
    Object CacheObj;
    CacheObj.emplace_back("hits", C.Hits);
    CacheObj.emplace_back("misses", C.Misses);
    CacheObj.emplace_back("invalidations", C.Invalidations);
    CacheObj.emplace_back("entries", C.Entries);
    O.emplace_back("cache", std::move(CacheObj));
  }
  if (Ctx.Registry) {
    Array Names;
    for (const Tenant *T : Ctx.Registry->tenants())
      Names.emplace_back(T->Name);
    O.emplace_back("tenants", std::move(Names));
    if (const ServeTelemetry *Tel = Ctx.Registry->Telemetry) {
      O.emplace_back("server", Tel->Counters.toJson());
      O.emplace_back("trace", Tel->Traces.statsJson());
      if (Tel->Pool) {
        const interp::SchedulerTelemetry ST = Tel->Pool->telemetry();
        Object Sched;
        Sched.emplace_back("threads", static_cast<std::uint64_t>(
                                          Tel->Pool->numThreads()));
        Sched.emplace_back("queue_depth", ST.QueueDepth);
        Sched.emplace_back("jobs", ST.Jobs);
        Sched.emplace_back("submitted", ST.Submitted);
        Sched.emplace_back("tasks", ST.Tasks);
        Sched.emplace_back("tasks_own", ST.ExecutedOwn);
        Sched.emplace_back("tasks_injected", ST.ExecutedInjected);
        Sched.emplace_back("tasks_stolen", ST.ExecutedStolen);
        Sched.emplace_back("tasks_inline", ST.ExecutedInline);
        O.emplace_back("scheduler", std::move(Sched));
      }
    }
  }
  return Value(std::move(O));
}

/// The registry-only `metrics` command: the same Prometheus document the
/// --metrics-port endpoint serves, delivered in-band for clients without
/// HTTP access.
static Value handleMetrics(const RequestContext &Ctx) {
  if (!Ctx.Registry)
    return errorReply("metrics is not available on this endpoint");
  Object O;
  O.emplace_back("ok", true);
  O.emplace_back("metrics", renderPrometheus(*Ctx.Registry));
  return Value(std::move(O));
}

/// Dispatches one parsed (or unparsable) request body. Micros stamping,
/// id echo and latency recording happen in the callers.
static RequestOutcome dispatchCore(const RequestContext &Ctx,
                                   const std::optional<Value> &Request,
                                   const std::string &ParseError) {
  RequestOutcome Outcome;
  if (!Request || !Request->isObject()) {
    Outcome.Reply = errorReply(
        Request ? "request must be a JSON object"
                : "malformed request: " + ParseError);
  } else if (const Value *Cmd = Request->find("cmd");
             !Cmd || !Cmd->isString()) {
    Outcome.Reply = errorReply("request requires a \"cmd\" string");
  } else {
    Outcome.Command = Cmd->asString();
    if (Ctx.Trace)
      Ctx.Trace->Command = Outcome.Command;
    if (Outcome.Command == "load" || Outcome.Command == "retract") {
      obs::StageScope Scope(Ctx.Trace, obs::RequestStage::Eval);
      Outcome.Reply = handleLoad(Ctx.Session, *Request,
                                 Outcome.Command == "retract");
    } else if (Outcome.Command == "query")
      Outcome.Reply = handleQuery(Ctx, *Request);
    else if (Outcome.Command == "stats")
      Outcome.Reply = handleStats(Ctx);
    else if (Outcome.Command == "metrics")
      Outcome.Reply = handleMetrics(Ctx);
    else if (Outcome.Command == "shutdown") {
      Object O;
      O.emplace_back("ok", true);
      Outcome.Reply = Value(std::move(O));
      Outcome.Shutdown = true;
    } else {
      Outcome.Reply =
          errorReply("unknown command '" + Outcome.Command + "'");
    }
  }
  return Outcome;
}

/// Extracts the optional request id. Returns false (with an error reply in
/// \p Outcome) when an id is present but not a string or number.
static bool extractId(const std::optional<Value> &Request, const Value *&Id,
                      RequestOutcome &Outcome) {
  Id = nullptr;
  if (!Request || !Request->isObject())
    return true;
  Id = Request->find("id");
  if (Id && !Id->isString() && !Id->isNumber()) {
    Outcome.Reply = errorReply("\"id\" must be a string or number");
    Id = nullptr;
    return false;
  }
  return true;
}

/// Shared tail: stamp micros, record latency, echo the id, mark the trace.
static RequestOutcome finishRequest(RequestOutcome Outcome, const Timer &T,
                                    obs::LatencyAggregator &Latency,
                                    const Value *Id,
                                    obs::RequestTrace *Trace = nullptr) {
  const std::uint64_t Micros = T.microseconds();
  Latency.record(Outcome.Command, Micros);
  Outcome.Micros = Micros;
  Outcome.Reply.set("micros", Micros);
  if (Id)
    Outcome.Reply.set("id", *Id);
  if (Trace) {
    if (const Value *Ok = Outcome.Reply.find("ok"))
      Trace->Ok = Ok->isBool() && Ok->asBool();
    if (Trace->Command.empty())
      Trace->Command = Outcome.Command;
  }
  return Outcome;
}

RequestOutcome srv::handleRequest(const TenantRegistry &Tenants,
                                  const std::string &Payload,
                                  obs::RequestTrace *Trace) {
  Timer T;
  Tenant *Default = Tenants.defaultTenant();
  if (!Default)
    fatal("handleRequest on a registry with no tenants");
  std::string ParseError;
  std::optional<Value> Request;
  {
    obs::StageScope Scope(Trace, obs::RequestStage::Parse);
    Request = obs::json::parse(Payload, &ParseError);
  }

  const Value *Id = nullptr;
  RequestOutcome Outcome;
  if (!extractId(Request, Id, Outcome))
    return finishRequest(std::move(Outcome), T, Default->Latency, nullptr,
                         Trace);

  // Route on "tenant"; absent (every v1 request) means the default.
  Tenant *Routed = Default;
  if (Request && Request->isObject()) {
    if (const Value *Name = Request->find("tenant")) {
      if (!Name->isString()) {
        Outcome.Reply = errorReply("\"tenant\" must be a string");
        return finishRequest(std::move(Outcome), T, Routed->Latency, Id,
                             Trace);
      }
      Routed = Tenants.find(Name->asString());
      if (!Routed) {
        Outcome.Reply =
            errorReply("unknown tenant '" + Name->asString() + "'");
        return finishRequest(std::move(Outcome), T, Default->Latency, Id,
                             Trace);
      }
    }
  }
  if (Trace)
    Trace->Tenant = Routed->Name;

  Routed->Requests.fetch_add(1, std::memory_order_relaxed);
  RequestContext Ctx{*Routed->Session, Routed->Latency, &Routed->Cache,
                     &Tenants,         Routed,          Trace};
  return finishRequest(dispatchCore(Ctx, Request, ParseError), T,
                       Routed->Latency, Id, Trace);
}

RequestOutcome srv::handleRequest(EngineSession &Session,
                                  obs::LatencyAggregator &Latency,
                                  const std::string &Payload,
                                  obs::RequestTrace *Trace) {
  Timer T;
  std::string ParseError;
  std::optional<Value> Request;
  {
    obs::StageScope Scope(Trace, obs::RequestStage::Parse);
    Request = obs::json::parse(Payload, &ParseError);
  }

  const Value *Id = nullptr;
  RequestOutcome Outcome;
  if (!extractId(Request, Id, Outcome))
    return finishRequest(std::move(Outcome), T, Latency, nullptr, Trace);

  if (Request && Request->isObject() && Request->find("tenant")) {
    Outcome.Reply =
        errorReply("tenant routing is not available on this endpoint");
    return finishRequest(std::move(Outcome), T, Latency, Id, Trace);
  }

  RequestContext Ctx{Session, Latency};
  Ctx.Trace = Trace;
  return finishRequest(dispatchCore(Ctx, Request, ParseError), T, Latency,
                       Id, Trace);
}
