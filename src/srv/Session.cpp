//===- srv/Session.cpp - Resident engine sessions -----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "srv/Session.h"

#include "util/MiscUtil.h"
#include "util/Timer.h"

#include <cassert>
#include <cstdio>
#include <map>
#include <set>
#include <thread>

using namespace stird;
using namespace stird::srv;

/// One of the session's two engine instances. Readers pin a side with the
/// Readers counter; the writer only mutates a side whose counter it has
/// observed at zero after unpublishing it.
struct stird::srv::detail::SessionSide {
  std::unique_ptr<interp::Engine> Eng;
  /// This side's maintenance driver, present when the program carries a
  /// maintenance plan. Recreated (and re-bootstrapped) with the engine.
  std::unique_ptr<inc::Maintainer> Maint;
  /// Batches of the session log applied to this side.
  std::size_t Applied = 0;
  /// Epoch readers observe through snapshots of this side.
  std::uint64_t Epoch = 0;
  /// Number of snapshots currently pinning this side.
  mutable std::atomic<std::size_t> Readers{0};
};

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

Snapshot::~Snapshot() {
  if (Side)
    Side->Readers.fetch_sub(1, std::memory_order_release);
}

Snapshot &Snapshot::operator=(Snapshot &&Other) noexcept {
  if (this != &Other) {
    if (Side)
      Side->Readers.fetch_sub(1, std::memory_order_release);
    Side = Other.Side;
    Other.Side = nullptr;
  }
  return *this;
}

const interp::RelationWrapper *
Snapshot::relation(const std::string &Name) const {
  return Side->Eng->getRelation(Name);
}

std::vector<DynTuple> Snapshot::query(const std::string &Relation,
                                      const Pattern &P,
                                      QueryPlan *PlanOut) const {
  const interp::RelationWrapper *Rel = relation(Relation);
  if (!Rel)
    fatal("unknown relation '" + Relation + "'");
  return runQuery(*Rel, P, PlanOut);
}

std::vector<DynTuple> Snapshot::tuples(const std::string &Relation) const {
  const interp::RelationWrapper *Rel = relation(Relation);
  if (!Rel)
    fatal("unknown relation '" + Relation + "'");
  return runQuery(*Rel, Pattern(Rel->getArity()));
}

std::uint64_t Snapshot::epoch() const { return Side->Epoch; }

const obs::StatsBlock &Snapshot::stats() const {
  return Side->Eng->getStats();
}

const std::vector<const interp::RelationWrapper *> &
Snapshot::statsRelations() const {
  return Side->Eng->getStatsRelations();
}

//===----------------------------------------------------------------------===//
// EngineSession
//===----------------------------------------------------------------------===//

std::unique_ptr<EngineSession>
EngineSession::fromSource(const std::string &Source,
                          const SessionOptions &Options,
                          std::vector<std::string> *Errors) {
  core::CompileOptions Compile = Options.Compile;
  Compile.EmitUpdateProgram = true;
  Compile.EmitMaintenance = true;
  std::shared_ptr<core::Program> Prog =
      core::Program::fromSource(Source, Errors, Compile);
  if (!Prog)
    return nullptr;
  return create(std::move(Prog), Options);
}

std::unique_ptr<EngineSession>
EngineSession::fromFile(const std::string &Path,
                        const SessionOptions &Options,
                        std::vector<std::string> *Errors) {
  core::CompileOptions Compile = Options.Compile;
  Compile.EmitUpdateProgram = true;
  Compile.EmitMaintenance = true;
  std::shared_ptr<core::Program> Prog =
      core::Program::fromFile(Path, Errors, Compile);
  if (!Prog)
    return nullptr;
  return create(std::move(Prog), Options);
}

std::unique_ptr<EngineSession>
EngineSession::create(std::shared_ptr<core::Program> Program,
                      const SessionOptions &Options) {
  return std::unique_ptr<EngineSession>(
      new EngineSession(std::move(Program), Options));
}

EngineSession::EngineSession(std::shared_ptr<core::Program> Program,
                             const SessionOptions &Opts)
    : Prog(std::move(Program)), Options(Opts),
      Incremental(Prog->getRam().hasUpdate()),
      Maintained(Prog->getRam().hasMaintenance()) {
  for (const auto &Clause : Prog->getAst().Clauses)
    DerivedRels.insert(Clause->getHead().getName());
  Telemetry.Enabled = Maintained;
  if (!Maintained) {
    const std::string &Reason = Prog->getRam().getMaintIneligibleReason();
    Telemetry.IneligibleReason =
        Reason.empty() ? "maintenance program not emitted" : Reason;
  }
  // A serving engine never echoes .printsize to stdout, and only touches
  // the filesystem when the caller asked for the program's own IO.
  Options.Engine.SuppressIo = !Options.RunIo;
  Options.Engine.EchoPrintSize = false;
  for (int I = 0; I < 2; ++I) {
    Sides[I] = std::make_unique<Side>();
    Sides[I]->Eng = Prog->makeEngine(Options.Engine);
    Sides[I]->Eng->run(); // bootstrap: initial facts + IO when enabled
    if (Maintained) {
      Sides[I]->Maint =
          std::make_unique<inc::Maintainer>(Prog->getRam(), *Sides[I]->Eng);
      Sides[I]->Maint->bootstrap();
    }
  }
  Active.store(Sides[0].get());
  PassiveIdx = 1;
}

EngineSession::~EngineSession() = default;

void EngineSession::waitQuiesce(Side &S) {
  // The side was unpublished when it last lost a publish race, so no new
  // snapshot can pin it; we only wait for the stragglers to drain.
  while (S.Readers.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
}

/// Whether any relation of the batch stages a retraction.
static bool hasRetracts(const inc::MixedBatch &Batch) {
  for (const inc::RelationOps &Ops : Batch)
    if (!Ops.Retracts.empty())
      return true;
  return false;
}

std::pair<std::size_t, std::size_t>
EngineSession::applyInserts(Side &S, const inc::MixedBatch &Batch) {
  std::size_t Inserted = 0, Duplicates = 0;
  for (const inc::RelationOps &Ops : Batch) {
    interp::RelationWrapper *Full = S.Eng->getRelation(Ops.Relation);
    if (!Full)
      fatal("unknown relation '" + Ops.Relation + "'");
    const ram::Program::UpdateAux *Aux =
        Prog->getRam().getUpdateAux(Ops.Relation);
    interp::RelationWrapper *Delta =
        Incremental ? S.Eng->getRelation(Aux->Delta) : nullptr;
    for (const DynTuple &Tuple : Ops.Inserts) {
      if (Tuple.size() != Full->getArity())
        fatal("arity mismatch for relation '" + Ops.Relation + "'");
      if (Full->insert(Tuple.data())) {
        ++Inserted;
        if (Delta)
          Delta->insert(Tuple.data());
      } else {
        ++Duplicates;
      }
    }
  }
  if (Incremental)
    S.Eng->runUpdate();
  return {Inserted, Duplicates};
}

void EngineSession::rebuild(Side &S) {
  // Full re-evaluation fallback for batches the in-place paths cannot
  // handle: reduce the whole log to the net EDB it leaves behind
  // (sequential replay, retract-before-insert within each batch — the
  // same order the Maintainer stages), seed a fresh engine with it and
  // run once. Restores the exact one-shot semantics at the cost of
  // recomputation.
  std::map<std::string, std::set<DynTuple>> Net;
  for (const inc::MixedBatch &Batch : Log)
    for (const inc::RelationOps &Ops : Batch) {
      std::set<DynTuple> &Rel = Net[Ops.Relation];
      for (const DynTuple &Tuple : Ops.Retracts)
        Rel.erase(Tuple);
      for (const DynTuple &Tuple : Ops.Inserts)
        Rel.insert(Tuple);
    }
  S.Eng = Prog->makeEngine(Options.Engine);
  for (const auto &[Name, Tuples] : Net)
    S.Eng->insertTuples(Name,
                        std::vector<DynTuple>(Tuples.begin(), Tuples.end()));
  S.Eng->run();
  if (Maintained) {
    S.Maint = std::make_unique<inc::Maintainer>(Prog->getRam(), *S.Eng);
    S.Maint->bootstrap();
  }
  S.Applied = Log.size();
}

void EngineSession::applyOne(Side &S, const inc::MixedBatch &Batch,
                             BatchResult *Result) {
  if (Maintained) {
    // Every batch — pure inserts included — goes through the maintenance
    // plan; bypassing it would let the support counts drift.
    inc::MaintenanceReport Report = S.Maint->apply(Batch);
    ++S.Applied;
    if (!Result)
      return;
    Result->Incremental = true;
    Result->Maintained = true;
    Result->Inserted = Report.Inserted;
    Result->Duplicates = Report.Duplicates;
    Result->Deleted = Report.Deleted;
    Result->Missing = Report.Missing;
    {
      std::lock_guard<std::mutex> Lock(TelemetryMutex);
      ++Telemetry.Batches;
      Telemetry.Inserted += Report.Inserted;
      Telemetry.Deleted += Report.Deleted;
      Telemetry.ReevalStrata += Report.ReevalStrata;
      for (const inc::StratumReport &SR : Report.Strata)
        Telemetry.Rederived += SR.Rederived;
    }
    for (const inc::StratumReport &SR : Report.Strata)
      if (!SR.FallbackReason.empty())
        recordFallback(SR.FallbackReason);
    Result->Maint = std::move(Report);
    return;
  }
  if (!hasRetracts(Batch) && Incremental) {
    auto [Inserted, Duplicates] = applyInserts(S, Batch);
    ++S.Applied;
    if (Result) {
      Result->Incremental = true;
      Result->Inserted = Inserted;
      Result->Duplicates = Duplicates;
    }
    return;
  }
  // Count EDB novelty against the caught-up side before rebuilding wipes
  // it, staging exactly like the Maintainer does (retract-before-insert,
  // an insert cancels a staged deletion) so both paths report alike.
  if (Result) {
    for (const inc::RelationOps &Ops : Batch) {
      const interp::RelationWrapper *Full = S.Eng->getRelation(Ops.Relation);
      if (!Full)
        fatal("unknown relation '" + Ops.Relation + "'");
      std::set<DynTuple> Del, Ins;
      for (const DynTuple &Tuple : Ops.Retracts) {
        if (Full->contains(Tuple.data()) && Del.insert(Tuple).second)
          ++Result->Deleted;
        else
          ++Result->Missing;
      }
      for (const DynTuple &Tuple : Ops.Inserts) {
        if (Del.erase(Tuple)) {
          --Result->Deleted;
          ++Result->Duplicates;
        } else if (Full->contains(Tuple.data())) {
          ++Result->Duplicates;
        } else if (Ins.insert(Tuple).second) {
          ++Result->Inserted;
        } else {
          ++Result->Duplicates;
        }
      }
    }
    std::lock_guard<std::mutex> Lock(TelemetryMutex);
    ++Telemetry.Rebuilds;
  }
  rebuild(S);
  if (Result) {
    std::string Reason = Telemetry.IneligibleReason;
    recordFallback(hasRetracts(Batch)
                       ? "retraction without maintenance plan: " + Reason
                       : Reason);
  }
}

void EngineSession::catchUp(Side &S) {
  if (S.Applied == Log.size())
    return;
  if (!Maintained) {
    // Without a maintenance plan a lagging side rebuilds once instead of
    // replaying batch by batch — unless the whole backlog is pure inserts
    // on an update-eligible program.
    bool AnyRetracts = false;
    for (std::size_t I = S.Applied; I < Log.size(); ++I)
      AnyRetracts = AnyRetracts || hasRetracts(Log[I]);
    if (!Incremental || AnyRetracts) {
      rebuild(S);
      return;
    }
  }
  while (S.Applied < Log.size())
    applyOne(S, Log[S.Applied], nullptr);
}

BatchResult EngineSession::loadFacts(const FactBatch &Batch) {
  inc::MixedBatch Mixed;
  Mixed.reserve(Batch.size());
  for (const auto &[Name, Tuples] : Batch)
    Mixed.push_back({Name, Tuples, {}});
  BatchResult Result = applyMixed(Mixed);
  // The legacy API reported malformed batches fatally; preserve that for
  // callers that never see BatchResult::Error.
  if (!Result.Error.empty())
    fatal(Result.Error);
  return Result;
}

std::string
EngineSession::validateMixed(const inc::MixedBatch &Batch) const {
  if (Maintained)
    return Sides[0]->Maint->rejectReason(Batch);
  for (const inc::RelationOps &Ops : Batch) {
    const ram::Relation *Decl = Prog->getRam().findRelation(Ops.Relation);
    if (!Decl || !Prog->getAst().findRelation(Ops.Relation))
      return "unknown relation '" + Ops.Relation + "'";
    for (const DynTuple &Tuple : Ops.Inserts)
      if (Tuple.size() != Decl->getArity())
        return "arity mismatch for relation '" + Ops.Relation + "'";
    for (const DynTuple &Tuple : Ops.Retracts)
      if (Tuple.size() != Decl->getArity())
        return "arity mismatch for relation '" + Ops.Relation + "'";
    if (Ops.Retracts.empty())
      continue;
    if (DerivedRels.count(Ops.Relation))
      return "relation '" + Ops.Relation +
             "' is derived by rules; only EDB relations accept retractions";
    if (Decl->getStructure() == ram::StructureKind::Eqrel)
      return "cannot retract from equivalence relation '" + Ops.Relation +
             "' (classes cannot be split)";
  }
  return "";
}

void EngineSession::recordFallback(const std::string &Reason,
                                   std::uint64_t Count) {
  {
    std::lock_guard<std::mutex> Lock(TelemetryMutex);
    FallbackCounts[Reason] += Count;
  }
  if (!FallbackWarned.exchange(true))
    std::fprintf(stderr,
                 "stird: incremental maintenance fell back to "
                 "re-evaluation (%s); counted in "
                 "stird_maintenance_fallbacks_total, further fallbacks "
                 "are silent\n",
                 Reason.c_str());
}

BatchResult EngineSession::applyMixed(const inc::MixedBatch &Batch) {
  Timer T;
  std::lock_guard<std::mutex> Lock(WriterMutex);

  BatchResult Result;
  Result.Error = validateMixed(Batch);
  if (!Result.Error.empty()) {
    // Rejected before anything was staged: nothing applied, nothing
    // logged, the epoch stands.
    Result.Epoch = Log.size();
    return Result;
  }

  Side &W = *Sides[PassiveIdx];
  waitQuiesce(W);
  catchUp(W);
  Log.push_back(Batch);
  applyOne(W, Batch, &Result);
  W.Epoch = Log.size();
  Result.Epoch = W.Epoch;

  // Publish: the release store orders every relation mutation above before
  // any reader that snapshots the new side.
  Active.store(&W, std::memory_order_release);
  PassiveIdx = 1 - PassiveIdx;
  Result.Seconds = T.seconds();
  return Result;
}

/// Parses one textual row block against declared column types, appending
/// malformed-row reports to \p Errors. Shared by the two textual entry
/// points.
static void parseRows(const std::vector<std::vector<std::string>> &Rows,
                      const std::vector<ColumnTypeKind> &Types,
                      SymbolTable &Symbols, const std::string &Source,
                      std::vector<DynTuple> &Out,
                      std::vector<FactError> &Errors) {
  for (std::size_t Row = 0; Row < Rows.size(); ++Row) {
    if (Rows[Row].size() != Types.size()) {
      Errors.push_back({Source, Row + 1, 0,
                        "row has " + std::to_string(Rows[Row].size()) +
                            " columns, expected " +
                            std::to_string(Types.size())});
      continue;
    }
    DynTuple Tuple(Types.size());
    bool Ok = true;
    for (std::size_t Col = 0; Col < Rows[Row].size() && Ok; ++Col) {
      std::string Message;
      if (!tryParseColumn(Rows[Row][Col], Types[Col], Symbols, Tuple[Col],
                          &Message)) {
        Errors.push_back({Source, Row + 1, Col + 1, Message});
        Ok = false;
      }
    }
    if (Ok)
      Out.push_back(std::move(Tuple));
  }
}

BatchResult EngineSession::loadFacts(const TextBatch &Batch,
                                     std::vector<FactError> &Errors) {
  FactBatch Resolved;
  for (const auto &[Name, Rows] : Batch) {
    const std::vector<ColumnTypeKind> *Types = relationTypes(Name);
    const std::string Source = "<load:" + Name + ">";
    if (!Types) {
      Errors.push_back({Source, 0, 0, "unknown relation '" + Name + "'"});
      continue;
    }
    std::vector<DynTuple> Tuples;
    parseRows(Rows, *Types, symbols(), Source, Tuples, Errors);
    Resolved.emplace_back(Name, std::move(Tuples));
  }
  return loadFacts(Resolved);
}

BatchResult EngineSession::applyMixed(const MixedTextBatch &Batch,
                                      std::vector<FactError> &Errors) {
  inc::MixedBatch Resolved;
  for (const TextRelationOps &Ops : Batch) {
    const std::vector<ColumnTypeKind> *Types = relationTypes(Ops.Relation);
    if (!Types) {
      Errors.push_back({"<load:" + Ops.Relation + ">", 0, 0,
                        "unknown relation '" + Ops.Relation + "'"});
      continue;
    }
    inc::RelationOps R;
    R.Relation = Ops.Relation;
    parseRows(Ops.Inserts, *Types, symbols(), "<load:" + Ops.Relation + ">",
              R.Inserts, Errors);
    parseRows(Ops.Retracts, *Types, symbols(),
              "<retract:" + Ops.Relation + ">", R.Retracts, Errors);
    Resolved.push_back(std::move(R));
  }
  return applyMixed(Resolved);
}

bool EngineSession::isMaintained() const { return Maintained; }

MaintTelemetry EngineSession::maintTelemetry() const {
  std::lock_guard<std::mutex> Lock(TelemetryMutex);
  MaintTelemetry Out = Telemetry;
  Out.FallbackReasons.assign(FallbackCounts.begin(), FallbackCounts.end());
  return Out;
}

Snapshot EngineSession::snapshot() const {
  for (;;) {
    const Side *S = Active.load(std::memory_order_acquire);
    S->Readers.fetch_add(1, std::memory_order_acq_rel);
    // The side may have been unpublished between the load and the pin; the
    // re-check guarantees the writer's quiesce wait sees our pin before it
    // mutates anything.
    if (Active.load(std::memory_order_acquire) == S)
      return Snapshot(S);
    S->Readers.fetch_sub(1, std::memory_order_release);
  }
}

std::vector<DynTuple> EngineSession::query(const std::string &Relation,
                                           const Pattern &P) const {
  return snapshot().query(Relation, P);
}

bool EngineSession::isIncremental() const {
  // Maintained sessions apply every batch in place too — "incremental"
  // means "no full re-evaluation per batch", whichever program provides it.
  return Maintained || Incremental;
}

std::uint64_t EngineSession::epoch() const {
  return Active.load(std::memory_order_acquire)->Epoch;
}

std::vector<std::string> EngineSession::relationNames() const {
  std::vector<std::string> Names;
  for (const auto &Decl : Prog->getAst().Relations)
    Names.push_back(Decl->getName());
  return Names;
}

std::shared_ptr<interp::Scheduler>
EngineSession::scheduler(std::size_t NumThreads) {
  return Prog->schedulerFor(NumThreads);
}

const std::vector<ColumnTypeKind> *
EngineSession::relationTypes(const std::string &Relation) const {
  // Only declared relations are served; the translator's auxiliary
  // delta_/new_ relations stay internal.
  if (!Prog->getAst().findRelation(Relation))
    return nullptr;
  const interp::RelationWrapper *Rel =
      Active.load(std::memory_order_acquire)->Eng->getRelation(Relation);
  return Rel ? &Rel->getDecl().getColumnTypes() : nullptr;
}
