//===- srv/Session.cpp - Resident engine sessions -----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "srv/Session.h"

#include "util/MiscUtil.h"
#include "util/Timer.h"

#include <cassert>
#include <thread>

using namespace stird;
using namespace stird::srv;

/// One of the session's two engine instances. Readers pin a side with the
/// Readers counter; the writer only mutates a side whose counter it has
/// observed at zero after unpublishing it.
struct stird::srv::detail::SessionSide {
  std::unique_ptr<interp::Engine> Eng;
  /// Batches of the session log applied to this side.
  std::size_t Applied = 0;
  /// Epoch readers observe through snapshots of this side.
  std::uint64_t Epoch = 0;
  /// Number of snapshots currently pinning this side.
  mutable std::atomic<std::size_t> Readers{0};
};

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

Snapshot::~Snapshot() {
  if (Side)
    Side->Readers.fetch_sub(1, std::memory_order_release);
}

Snapshot &Snapshot::operator=(Snapshot &&Other) noexcept {
  if (this != &Other) {
    if (Side)
      Side->Readers.fetch_sub(1, std::memory_order_release);
    Side = Other.Side;
    Other.Side = nullptr;
  }
  return *this;
}

const interp::RelationWrapper *
Snapshot::relation(const std::string &Name) const {
  return Side->Eng->getRelation(Name);
}

std::vector<DynTuple> Snapshot::query(const std::string &Relation,
                                      const Pattern &P,
                                      QueryPlan *PlanOut) const {
  const interp::RelationWrapper *Rel = relation(Relation);
  if (!Rel)
    fatal("unknown relation '" + Relation + "'");
  return runQuery(*Rel, P, PlanOut);
}

std::vector<DynTuple> Snapshot::tuples(const std::string &Relation) const {
  const interp::RelationWrapper *Rel = relation(Relation);
  if (!Rel)
    fatal("unknown relation '" + Relation + "'");
  return runQuery(*Rel, Pattern(Rel->getArity()));
}

std::uint64_t Snapshot::epoch() const { return Side->Epoch; }

const obs::StatsBlock &Snapshot::stats() const {
  return Side->Eng->getStats();
}

const std::vector<const interp::RelationWrapper *> &
Snapshot::statsRelations() const {
  return Side->Eng->getStatsRelations();
}

//===----------------------------------------------------------------------===//
// EngineSession
//===----------------------------------------------------------------------===//

std::unique_ptr<EngineSession>
EngineSession::fromSource(const std::string &Source,
                          const SessionOptions &Options,
                          std::vector<std::string> *Errors) {
  core::CompileOptions Compile = Options.Compile;
  Compile.EmitUpdateProgram = true;
  std::shared_ptr<core::Program> Prog =
      core::Program::fromSource(Source, Errors, Compile);
  if (!Prog)
    return nullptr;
  return create(std::move(Prog), Options);
}

std::unique_ptr<EngineSession>
EngineSession::fromFile(const std::string &Path,
                        const SessionOptions &Options,
                        std::vector<std::string> *Errors) {
  core::CompileOptions Compile = Options.Compile;
  Compile.EmitUpdateProgram = true;
  std::shared_ptr<core::Program> Prog =
      core::Program::fromFile(Path, Errors, Compile);
  if (!Prog)
    return nullptr;
  return create(std::move(Prog), Options);
}

std::unique_ptr<EngineSession>
EngineSession::create(std::shared_ptr<core::Program> Program,
                      const SessionOptions &Options) {
  return std::unique_ptr<EngineSession>(
      new EngineSession(std::move(Program), Options));
}

EngineSession::EngineSession(std::shared_ptr<core::Program> Program,
                             const SessionOptions &Opts)
    : Prog(std::move(Program)), Options(Opts),
      Incremental(Prog->getRam().hasUpdate()) {
  // A serving engine never echoes .printsize to stdout, and only touches
  // the filesystem when the caller asked for the program's own IO.
  Options.Engine.SuppressIo = !Options.RunIo;
  Options.Engine.EchoPrintSize = false;
  for (int I = 0; I < 2; ++I) {
    Sides[I] = std::make_unique<Side>();
    Sides[I]->Eng = Prog->makeEngine(Options.Engine);
    Sides[I]->Eng->run(); // bootstrap: initial facts + IO when enabled
  }
  Active.store(Sides[0].get());
  PassiveIdx = 1;
}

EngineSession::~EngineSession() = default;

void EngineSession::waitQuiesce(Side &S) {
  // The side was unpublished when it last lost a publish race, so no new
  // snapshot can pin it; we only wait for the stragglers to drain.
  while (S.Readers.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
}

std::pair<std::size_t, std::size_t>
EngineSession::applyBatch(Side &S, const FactBatch &Batch) {
  std::size_t Inserted = 0, Duplicates = 0;
  for (const auto &[Name, Tuples] : Batch) {
    interp::RelationWrapper *Full = S.Eng->getRelation(Name);
    if (!Full)
      fatal("unknown relation '" + Name + "'");
    const ram::Program::UpdateAux *Aux = Prog->getRam().getUpdateAux(Name);
    interp::RelationWrapper *Delta =
        Incremental ? S.Eng->getRelation(Aux->Delta) : nullptr;
    for (const DynTuple &Tuple : Tuples) {
      if (Tuple.size() != Full->getArity())
        fatal("arity mismatch for relation '" + Name + "'");
      if (Full->insert(Tuple.data())) {
        ++Inserted;
        if (Delta)
          Delta->insert(Tuple.data());
      } else {
        ++Duplicates;
      }
    }
  }
  if (Incremental)
    S.Eng->runUpdate();
  ++S.Applied;
  return {Inserted, Duplicates};
}

void EngineSession::rebuild(Side &S) {
  // Full re-evaluation fallback for programs without an update statement
  // (negation, aggregates, ...): fresh relations, the whole batch log as
  // EDB, one one-shot run. Restores the exact one-shot semantics at the
  // cost of recomputation.
  S.Eng = Prog->makeEngine(Options.Engine);
  for (const FactBatch &Batch : Log)
    for (const auto &[Name, Tuples] : Batch)
      S.Eng->insertTuples(Name, Tuples);
  S.Eng->run();
  S.Applied = Log.size();
}

void EngineSession::catchUp(Side &S) {
  if (S.Applied == Log.size())
    return;
  if (!Incremental) {
    rebuild(S);
    return;
  }
  while (S.Applied < Log.size())
    applyBatch(S, Log[S.Applied]);
}

BatchResult EngineSession::loadFacts(const FactBatch &Batch) {
  Timer T;
  std::lock_guard<std::mutex> Lock(WriterMutex);
  Side &W = *Sides[PassiveIdx];
  waitQuiesce(W);
  catchUp(W);

  BatchResult Result;
  Result.Incremental = Incremental;
  Log.push_back(Batch);
  if (Incremental) {
    std::tie(Result.Inserted, Result.Duplicates) = applyBatch(W, Batch);
  } else {
    // Count EDB novelty against the caught-up side, then rebuild.
    for (const auto &[Name, Tuples] : Batch) {
      const interp::RelationWrapper *Full = W.Eng->getRelation(Name);
      if (!Full)
        fatal("unknown relation '" + Name + "'");
      for (const DynTuple &Tuple : Tuples) {
        if (Tuple.size() != Full->getArity())
          fatal("arity mismatch for relation '" + Name + "'");
        if (Full->contains(Tuple.data()))
          ++Result.Duplicates;
        else
          ++Result.Inserted;
      }
    }
    rebuild(W);
  }
  W.Epoch = Log.size();
  Result.Epoch = W.Epoch;

  // Publish: the release store orders every relation mutation above before
  // any reader that snapshots the new side.
  Active.store(&W, std::memory_order_release);
  PassiveIdx = 1 - PassiveIdx;
  Result.Seconds = T.seconds();
  return Result;
}

BatchResult EngineSession::loadFacts(const TextBatch &Batch,
                                     std::vector<FactError> &Errors) {
  FactBatch Resolved;
  for (const auto &[Name, Rows] : Batch) {
    const std::vector<ColumnTypeKind> *Types = relationTypes(Name);
    const std::string Source = "<load:" + Name + ">";
    if (!Types) {
      Errors.push_back({Source, 0, 0, "unknown relation '" + Name + "'"});
      continue;
    }
    std::vector<DynTuple> Tuples;
    for (std::size_t Row = 0; Row < Rows.size(); ++Row) {
      if (Rows[Row].size() != Types->size()) {
        Errors.push_back({Source, Row + 1, 0,
                          "row has " + std::to_string(Rows[Row].size()) +
                              " columns, expected " +
                              std::to_string(Types->size())});
        continue;
      }
      DynTuple Tuple(Types->size());
      bool Ok = true;
      for (std::size_t Col = 0; Col < Rows[Row].size() && Ok; ++Col) {
        std::string Message;
        if (!tryParseColumn(Rows[Row][Col], (*Types)[Col], symbols(),
                            Tuple[Col], &Message)) {
          Errors.push_back({Source, Row + 1, Col + 1, Message});
          Ok = false;
        }
      }
      if (Ok)
        Tuples.push_back(std::move(Tuple));
    }
    Resolved.emplace_back(Name, std::move(Tuples));
  }
  return loadFacts(Resolved);
}

Snapshot EngineSession::snapshot() const {
  for (;;) {
    const Side *S = Active.load(std::memory_order_acquire);
    S->Readers.fetch_add(1, std::memory_order_acq_rel);
    // The side may have been unpublished between the load and the pin; the
    // re-check guarantees the writer's quiesce wait sees our pin before it
    // mutates anything.
    if (Active.load(std::memory_order_acquire) == S)
      return Snapshot(S);
    S->Readers.fetch_sub(1, std::memory_order_release);
  }
}

std::vector<DynTuple> EngineSession::query(const std::string &Relation,
                                           const Pattern &P) const {
  return snapshot().query(Relation, P);
}

bool EngineSession::isIncremental() const { return Incremental; }

std::uint64_t EngineSession::epoch() const {
  return Active.load(std::memory_order_acquire)->Epoch;
}

std::vector<std::string> EngineSession::relationNames() const {
  std::vector<std::string> Names;
  for (const auto &Decl : Prog->getAst().Relations)
    Names.push_back(Decl->getName());
  return Names;
}

std::shared_ptr<interp::Scheduler>
EngineSession::scheduler(std::size_t NumThreads) {
  return Prog->schedulerFor(NumThreads);
}

const std::vector<ColumnTypeKind> *
EngineSession::relationTypes(const std::string &Relation) const {
  // Only declared relations are served; the translator's auxiliary
  // delta_/new_ relations stay internal.
  if (!Prog->getAst().findRelation(Relation))
    return nullptr;
  const interp::RelationWrapper *Rel =
      Active.load(std::memory_order_acquire)->Eng->getRelation(Relation);
  return Rel ? &Rel->getDecl().getColumnTypes() : nullptr;
}
