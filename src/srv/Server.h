//===- srv/Server.h - stird-serve socket server -----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon side of the serving layer: accepts stird-wire-v1 connections
/// on a Unix or TCP socket and executes requests against one shared
/// EngineSession. One thread per connection — concurrent queries read
/// through snapshots and never block each other; loads are serialized by
/// the session. A `shutdown` request stops the accept loop and drains the
/// connection threads.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_SERVER_H
#define STIRD_SRV_SERVER_H

#include "obs/Serve.h"
#include "srv/Session.h"

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace stird::srv {

struct ServerOptions {
  /// Unix-domain socket path. Takes precedence over TCP when non-empty;
  /// a stale socket file at the path is unlinked before binding.
  std::string UnixPath;
  /// TCP listen address, used when UnixPath is empty.
  std::string Host = "127.0.0.1";
  /// TCP port; 0 lets the kernel pick one (see boundPort()).
  int Port = 0;
};

class Server {
public:
  Server(EngineSession &Session, ServerOptions Options);
  ~Server();

  /// Binds and listens. False with \p Error on failure.
  bool start(std::string *Error = nullptr);

  /// Accepts and serves connections until a shutdown request (or stop())
  /// arrives; returns after all connection threads finished.
  void serve();

  /// Unblocks serve() from another thread (tests, signal handlers).
  void stop();

  /// The actual TCP port after start() — useful with Port = 0.
  int boundPort() const { return BoundPort; }

  /// Request-latency totals, as reported by the `stats` command.
  const obs::LatencyAggregator &latency() const { return Latency; }

private:
  void handleConnection(int Fd);

  EngineSession &Session;
  ServerOptions Options;
  obs::LatencyAggregator Latency;

  /// Atomic: a connection thread's shutdown request closes it while the
  /// accept loop reads it.
  std::atomic<int> ListenFd{-1};
  int BoundPort = 0;
  std::atomic<bool> Stopping{false};

  std::mutex WorkersMutex;
  std::vector<std::thread> Workers;
};

} // namespace stird::srv

#endif // STIRD_SRV_SERVER_H
