//===- srv/Server.h - stird-serve epoll event-loop server -------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon side of the serving layer: an epoll-based event loop accepts
/// stird-wire-v2 connections on a Unix or TCP socket and executes requests
/// against the hosted EngineSession tenants. One thread owns every socket
/// (nonblocking accept/read/write with per-connection framing state
/// machines); request handling runs as detached jobs on the interpreter's
/// work-stealing Scheduler, so thousands of mostly idle connections cost
/// one fd each rather than one thread each, and evaluation work and wire
/// work share a single warm pool.
///
/// Backpressure is explicit at two levels: a connection may have at most
/// MaxInFlightPerConnection requests dispatched (further frames stay in
/// its read buffer and EPOLLIN is parked until replies drain), and the
/// server admits at most MaxInFlightTotal dispatched requests across all
/// tenants (excess requests are answered immediately with an "overloaded"
/// error instead of being queued without bound). Replies are written in
/// request order per connection, so v1 clients work unchanged and v2
/// clients can pipeline.
///
/// A `shutdown` request (or stop()) stops the accept loop, drains the
/// in-flight jobs, flushes what can be flushed, and returns from serve().
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_SERVER_H
#define STIRD_SRV_SERVER_H

#include "interp/Scheduler.h"
#include "obs/Serve.h"
#include "srv/Session.h"
#include "srv/Wire.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace stird::srv {

struct ServerOptions {
  /// Unix-domain socket path. Takes precedence over TCP when non-empty;
  /// a stale socket file at the path is unlinked before binding.
  std::string UnixPath;
  /// TCP listen address, used when UnixPath is empty.
  std::string Host = "127.0.0.1";
  /// TCP port; 0 lets the kernel pick one (see boundPort()).
  int Port = 0;
  /// listen(2) backlog; <= 0 means SOMAXCONN. The old hard-coded 16 made
  /// connection bursts fail with ECONNREFUSED long before the event loop
  /// was the bottleneck.
  int Backlog = 0;
  /// Accept-level admission: connections beyond this are closed
  /// immediately (counted in ServeCounters::ConnectionsRejected).
  std::size_t MaxConnections = 8192;
  /// Pipelining window: dispatched-but-unanswered requests allowed per
  /// connection before its reads are parked.
  std::size_t MaxInFlightPerConnection = 32;
  /// Admission control across every connection and tenant: requests
  /// beyond this answer {"ok":false,"error":"server overloaded"} without
  /// touching a session.
  std::size_t MaxInFlightTotal = 1024;
  /// Threads of the request-execution pool (the default tenant program's
  /// shared Scheduler). 0 picks max(2, session default) so the event loop
  /// never executes requests inline.
  std::size_t PoolThreads = 0;

  /// TCP port for the Prometheus metrics HTTP endpoint (`GET /metrics`),
  /// bound on Host; 0 lets the kernel pick (see metricsPort()), negative
  /// disables the endpoint.
  int MetricsPort = -1;
  /// Trace every Nth request through the lifecycle-span recorder; 0
  /// disables sampling (slow requests still trace while a slow-query
  /// threshold is armed).
  std::uint64_t TraceSampleEvery = 0;
  /// When non-empty, retained request traces are written as one Chrome
  /// trace-event JSON document here when serve() returns.
  std::string TraceOutPath;
  /// When non-empty, requests at or above SlowQueryMicros append one JSONL
  /// record here.
  std::string SlowQueryLogPath;
  std::uint64_t SlowQueryMicros = 10000;
  /// Slow-query log rotation threshold in bytes; 0 disables rotation.
  std::uint64_t SlowQueryLogMaxBytes = 0;
};

class Server {
public:
  /// Single-tenant convenience: hosts \p Session as the default tenant
  /// "default" in an internally owned registry.
  Server(EngineSession &Session, ServerOptions Options);

  /// Multi-tenant: serves every session in \p Tenants (which must outlive
  /// the server and already hold at least one tenant).
  Server(TenantRegistry &Tenants, ServerOptions Options);

  ~Server();

  /// Binds and listens (nonblocking). False with \p Error on failure; no
  /// fd survives a failed start.
  bool start(std::string *Error = nullptr);

  /// Runs the event loop until a shutdown request (or stop()) arrives;
  /// returns after in-flight request jobs drained.
  void serve();

  /// Unblocks serve() from another thread (tests, signal handlers).
  void stop();

  /// The actual TCP port after start() — useful with Port = 0.
  int boundPort() const { return BoundPort; }

  /// The metrics endpoint's actual TCP port after start(); 0 when the
  /// endpoint is disabled.
  int metricsPort() const { return MetricsBoundPort; }

  /// Request-latency totals of the default tenant, as reported by the
  /// `stats` command.
  const obs::LatencyAggregator &latency() const {
    return Tenants.defaultTenant()->Latency;
  }

  /// Event-loop counters (accepts, frames, admission rejections, ...).
  const obs::ServeCounters &counters() const { return Telemetry.Counters; }

  /// The full serving telemetry (counters, trace sink, slow log).
  const ServeTelemetry &telemetry() const { return Telemetry; }

  const TenantRegistry &tenants() const { return Tenants; }

private:
  struct Connection;
  struct MetricsConn;

  void eventLoop();
  void acceptReady();
  void acceptMetricsReady();
  /// Advances one metrics-endpoint connection (HTTP parse or write).
  void metricsConnReady(int Fd);
  void closeMetricsConn(int Fd);
  /// Finalizes released traces once their bytes reached the socket:
  /// closes the write span, hands them to the trace sink, and feeds the
  /// slow-query log.
  void finishFlushedTraces(Connection &C);
  void readReady(const std::shared_ptr<Connection> &Conn);
  void writeReady(const std::shared_ptr<Connection> &Conn);
  /// Parses buffered frames and dispatches them, up to the pipelining
  /// window; parks reads when the window fills.
  void parseAndDispatch(const std::shared_ptr<Connection> &Conn);
  void dispatch(const std::shared_ptr<Connection> &Conn,
                std::uint64_t Seq, std::string Payload,
                std::unique_ptr<obs::RequestTrace> Trace);
  /// Called on the event-loop thread once replies completed out-of-band:
  /// releases them in request order into the write buffer.
  void collectReplies(const std::shared_ptr<Connection> &Conn);
  /// Writes as much of the connection's buffer as the socket accepts and
  /// (un)arms EPOLLOUT accordingly.
  void flushWrites(const std::shared_ptr<Connection> &Conn);
  void closeConnection(const std::shared_ptr<Connection> &Conn);
  void updateEpoll(Connection &C);
  void wake();
  bool drained();

  /// Owned registry backing the single-tenant constructor; unused (empty)
  /// when an external registry was supplied.
  TenantRegistry OwnedTenants;
  TenantRegistry &Tenants;
  ServerOptions Options;
  /// Counters, trace sink and slow-query log, attached to the registry so
  /// the stats/metrics commands can report them.
  ServeTelemetry Telemetry;

  std::shared_ptr<interp::Scheduler> Pool;

  int ListenFd = -1;
  int EpollFd = -1;
  int WakeFd = -1;
  int BoundPort = 0;
  bool Accepting = false;

  /// The metrics HTTP endpoint (disabled when MetricsFd < 0). Its
  /// connections live outside Conns — they speak HTTP, not stird-wire.
  int MetricsFd = -1;
  int MetricsBoundPort = 0;
  std::unordered_map<int, std::unique_ptr<MetricsConn>> MetricsConns;

  /// Server-wide request sequence for trace identity (event-loop owned).
  std::uint64_t NextTraceSeq = 0;

  /// Hard stop (stop()): exit as soon as jobs drained. Draining: graceful
  /// shutdown request — stop accepting, finish and flush what's in
  /// flight, then exit.
  std::atomic<bool> Stopping{false};
  bool Draining = false;

  /// Requests dispatched to the pool and not yet released to a write
  /// buffer (admission control).
  std::atomic<std::size_t> InFlightTotal{0};
  /// Jobs handed to the pool and not yet finished executing; serve() and
  /// the destructor wait for zero before tearing connections down.
  std::atomic<std::size_t> PendingJobs{0};

  /// Live connections, owned by the event loop. Jobs hold shared_ptrs so
  /// a connection that dies mid-request stays valid until its last job
  /// finished.
  std::unordered_map<int, std::shared_ptr<Connection>> Conns;

  /// Connections with freshly completed replies, filled by pool jobs and
  /// drained by the event loop after a WakeFd tick.
  std::mutex DirtyM;
  std::vector<std::shared_ptr<Connection>> Dirty;
};

} // namespace stird::srv

#endif // STIRD_SRV_SERVER_H
