//===- srv/Metrics.cpp - Prometheus rendering of serving state ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "srv/Metrics.h"

#include "interp/Scheduler.h"
#include "obs/Metrics.h"
#include "srv/Wire.h"

using namespace stird;
using namespace stird::srv;
using obs::prom::Labels;
using obs::prom::Writer;

static void renderServerCounters(Writer &W,
                                 const obs::ServeCounters &C) {
  struct Row {
    const char *Name;
    const char *Help;
    const std::atomic<std::uint64_t> &Value;
  };
  const Row Rows[] = {
      {"stird_connections_accepted_total", "Connections accepted.",
       C.ConnectionsAccepted},
      {"stird_connections_closed_total", "Connections closed.",
       C.ConnectionsClosed},
      {"stird_connections_rejected_total",
       "Connections refused at accept time (connection cap).",
       C.ConnectionsRejected},
      {"stird_frames_in_total", "Request frames received.", C.FramesIn},
      {"stird_frames_out_total", "Reply frames sent.", C.FramesOut},
      {"stird_requests_dispatched_total",
       "Requests dispatched to the worker pool.", C.RequestsDispatched},
      {"stird_requests_overloaded_total",
       "Requests rejected by the global in-flight budget.",
       C.RequestsOverloaded},
      {"stird_protocol_errors_total",
       "Framing violations that poisoned a connection.", C.ProtocolErrors},
      {"stird_metrics_scrapes_total",
       "Scrapes of the metrics HTTP endpoint.", C.MetricsScrapes},
  };
  for (const Row &R : Rows) {
    W.header(R.Name, R.Help, "counter");
    W.sample(R.Name, {}, R.Value.load(std::memory_order_relaxed));
  }
}

static void renderScheduler(Writer &W, const interp::Scheduler &Pool) {
  const interp::SchedulerTelemetry T = Pool.telemetry();
  W.header("stird_scheduler_threads", "Threads in the worker pool.",
           "gauge");
  W.sample("stird_scheduler_threads", {},
           static_cast<std::uint64_t>(Pool.numThreads()));
  W.header("stird_scheduler_queue_depth",
           "Task entries published but not yet started.", "gauge");
  W.sample("stird_scheduler_queue_depth", {}, T.QueueDepth);
  W.header("stird_scheduler_jobs_total",
           "Fork-join jobs run through the pool.", "counter");
  W.sample("stird_scheduler_jobs_total", {}, T.Jobs);
  W.header("stird_scheduler_submitted_total",
           "Detached jobs dispatched (one per served request).",
           "counter");
  W.sample("stird_scheduler_submitted_total", {}, T.Submitted);
  W.header("stird_scheduler_tasks_total",
           "Task entries executed, labeled by how the executing thread "
           "obtained them.",
           "counter");
  W.sample("stird_scheduler_tasks_total", {{"source", "own"}},
           T.ExecutedOwn);
  W.sample("stird_scheduler_tasks_total", {{"source", "injected"}},
           T.ExecutedInjected);
  W.sample("stird_scheduler_tasks_total", {{"source", "stolen"}},
           T.ExecutedStolen);
  W.sample("stird_scheduler_tasks_total", {{"source", "inline"}},
           T.ExecutedInline);
  W.header("stird_scheduler_steals_total",
           "Successful Chase-Lev steals from sibling deques.", "counter");
  W.sample("stird_scheduler_steals_total", {}, T.ExecutedStolen);
}

static void renderTraces(Writer &W, const obs::RequestTraceSink &Sink) {
  W.header("stird_traces_started_total",
           "Requests considered for lifecycle tracing.", "counter");
  W.sample("stird_traces_started_total", {}, Sink.started());
  W.header("stird_traces_sampled_total",
           "Requests picked by 1-in-N sampling.", "counter");
  W.sample("stird_traces_sampled_total", {}, Sink.sampledCount());
  W.header("stird_traces_retained_total",
           "Finished traces retained (sampled or slow).", "counter");
  W.sample("stird_traces_retained_total", {}, Sink.retainedCount());
  W.header("stird_slow_requests_total",
           "Requests at or above the slow-query threshold.", "counter");
  W.sample("stird_slow_requests_total", {}, Sink.slowCount());
}

std::string srv::renderPrometheus(const TenantRegistry &Tenants) {
  Writer W;
  if (Tenants.Telemetry) {
    renderServerCounters(W, Tenants.Telemetry->Counters);
    if (Tenants.Telemetry->Pool)
      renderScheduler(W, *Tenants.Telemetry->Pool);
    renderTraces(W, Tenants.Telemetry->Traces);
    W.header("stird_slow_log_entries_total",
             "Records written to the slow-query log.", "counter");
    W.sample("stird_slow_log_entries_total", {},
             Tenants.Telemetry->SlowLog.written());
  }

  const std::vector<Tenant *> All = Tenants.tenants();

  W.header("stird_tenant_epoch", "Batches applied to the tenant.",
           "gauge");
  for (const Tenant *T : All)
    W.sample("stird_tenant_epoch", {{"tenant", T->Name}},
             T->Session->epoch());
  W.header("stird_tenant_requests_total",
           "Requests handled for the tenant.", "counter");
  for (const Tenant *T : All)
    W.sample("stird_tenant_requests_total", {{"tenant", T->Name}},
             T->Requests.load(std::memory_order_relaxed));

  // One family at a time: the exposition format requires every sample of
  // a family to sit in one group under its own HELP/TYPE lines.
  W.header("stird_cache_hits_total", "Query-cache hits.", "counter");
  for (const Tenant *T : All)
    W.sample("stird_cache_hits_total", {{"tenant", T->Name}},
             T->Cache.counters().Hits);
  W.header("stird_cache_misses_total", "Query-cache misses.", "counter");
  for (const Tenant *T : All)
    W.sample("stird_cache_misses_total", {{"tenant", T->Name}},
             T->Cache.counters().Misses);
  W.header("stird_cache_invalidations_total",
           "Query-cache wholesale invalidations.", "counter");
  for (const Tenant *T : All)
    W.sample("stird_cache_invalidations_total", {{"tenant", T->Name}},
             T->Cache.counters().Invalidations);
  W.header("stird_cache_entries", "Live query-cache entries.", "gauge");
  for (const Tenant *T : All)
    W.sample("stird_cache_entries", {{"tenant", T->Name}},
             T->Cache.counters().Entries);

  // Incremental maintenance: one telemetry snapshot per tenant, rendered
  // family by family.
  std::vector<MaintTelemetry> Maint;
  Maint.reserve(All.size());
  for (const Tenant *T : All)
    Maint.push_back(T->Session->maintTelemetry());
  W.header("stird_maintenance_enabled",
           "Whether mixed batches run the maintenance plan (1) or fall "
           "back to re-evaluation (0).",
           "gauge");
  for (std::size_t I = 0; I < All.size(); ++I)
    W.sample("stird_maintenance_enabled", {{"tenant", All[I]->Name}},
             std::uint64_t(Maint[I].Enabled ? 1 : 0));
  W.header("stird_maintenance_batches_total",
           "Mixed batches applied through the maintenance plan.",
           "counter");
  for (std::size_t I = 0; I < All.size(); ++I)
    W.sample("stird_maintenance_batches_total", {{"tenant", All[I]->Name}},
             Maint[I].Batches);
  W.header("stird_maintenance_deleted_total",
           "EDB tuples retracted by maintained batches.", "counter");
  for (std::size_t I = 0; I < All.size(); ++I)
    W.sample("stird_maintenance_deleted_total", {{"tenant", All[I]->Name}},
             Maint[I].Deleted);
  W.header("stird_maintenance_rederived_total",
           "Over-deleted tuples DRed re-derived by alternative support.",
           "counter");
  for (std::size_t I = 0; I < All.size(); ++I)
    W.sample("stird_maintenance_rederived_total",
             {{"tenant", All[I]->Name}}, Maint[I].Rederived);
  W.header("stird_maintenance_fallbacks_total",
           "Re-evaluation fallbacks (scoped Reeval strata and whole-batch "
           "rebuilds), by reason.",
           "counter");
  for (std::size_t I = 0; I < All.size(); ++I)
    for (const auto &[Reason, Count] : Maint[I].FallbackReasons)
      W.sample("stird_maintenance_fallbacks_total",
               {{"tenant", All[I]->Name}, {"reason", Reason}}, Count);

  W.header("stird_relation_size",
           "Tuples resident per declared relation.", "gauge");
  for (const Tenant *T : All) {
    Snapshot Snap = T->Session->snapshot();
    for (const std::string &Name : T->Session->relationNames()) {
      const interp::RelationWrapper *Rel = Snap.relation(Name);
      if (!Rel)
        continue;
      W.sample("stird_relation_size",
               {{"tenant", T->Name}, {"relation", Name}},
               static_cast<std::uint64_t>(Rel->size()));
    }
  }

  W.header("stird_request_latency_micros",
           "Server-side request handling time in microseconds.",
           "histogram");
  for (const Tenant *T : All)
    for (const auto &[Command, Hist] : T->Latency.snapshot())
      W.histogram("stird_request_latency_micros",
                  {{"tenant", T->Name}, {"command", Command}}, Hist);

  return W.text();
}
