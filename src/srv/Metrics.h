//===- srv/Metrics.h - Prometheus rendering of serving state ----*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the serving front end's full observable state — ServeCounters,
/// per-tenant per-command latency histograms, query-cache counters,
/// tenant epochs and relation sizes, scheduler queue depth and steal
/// counts, and trace-sink counters — as one Prometheus text exposition
/// document. Served by the `--metrics-port` HTTP endpoint and the
/// `metrics` wire command; docs/metrics.md is the metric reference.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_METRICS_H
#define STIRD_SRV_METRICS_H

#include <string>

namespace stird::srv {

class TenantRegistry;

/// One exposition document over \p Tenants and its attached
/// ServeTelemetry (server-level families are omitted when no telemetry is
/// attached). Every metric is prefixed `stird_`.
std::string renderPrometheus(const TenantRegistry &Tenants);

} // namespace stird::srv

#endif // STIRD_SRV_METRICS_H
