//===- srv/Query.h - Partial-tuple queries over resident relations -*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Point and partial-tuple queries against a resident de-specialized
/// relation. A query pattern binds any subset of the source columns; the
/// planner reuses the translation layer's index selection by picking, among
/// the relation's existing orders, the one whose prefix covers the most
/// bound columns, then range-scans that index and post-filters the bound
/// columns the prefix could not absorb. Equivalence relations serve their
/// native anchored searches instead.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_QUERY_H
#define STIRD_SRV_QUERY_H

#include "interp/Relation.h"
#include "util/RamTypes.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace stird::srv {

/// A partial-tuple pattern: one entry per source column, nullopt meaning
/// unbound (wildcard).
using Pattern = std::vector<std::optional<RamDomain>>;

/// How a pattern will be (or was) executed.
struct QueryPlan {
  /// Chosen index among the relation's selected orders.
  std::size_t IndexPos = 0;
  /// Bound cells absorbed as that index's range prefix.
  std::size_t PrefixLen = 0;
  /// Bitmask of bound source columns (bit I = column I).
  std::uint32_t Mask = 0;
  /// Bound columns the prefix could not absorb; checked tuple-by-tuple.
  std::size_t ResidualColumns = 0;
};

/// Picks the access path for \p P: the order with the longest fully bound
/// prefix (ties broken towards the first index, i.e. index-selection
/// order). \p P must have one entry per column of \p Rel.
QueryPlan planQuery(const interp::RelationWrapper &Rel, const Pattern &P);

/// Executes \p P against \p Rel, returning the matching tuples in sorted
/// source order. When \p PlanOut is given, the chosen plan is reported.
std::vector<DynTuple> runQuery(const interp::RelationWrapper &Rel,
                               const Pattern &P,
                               QueryPlan *PlanOut = nullptr);

} // namespace stird::srv

#endif // STIRD_SRV_QUERY_H
