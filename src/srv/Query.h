//===- srv/Query.h - Partial-tuple queries over resident relations -*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Point and partial-tuple queries against a resident de-specialized
/// relation. A query pattern binds any subset of the source columns; the
/// planner reuses the translation layer's index selection by picking, among
/// the relation's existing orders, the one whose prefix covers the most
/// bound columns, then range-scans that index and post-filters the bound
/// columns the prefix could not absorb. Equivalence relations serve their
/// native anchored searches instead.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_QUERY_H
#define STIRD_SRV_QUERY_H

#include "interp/Relation.h"
#include "obs/Json.h"
#include "util/RamTypes.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace stird::srv {

/// A partial-tuple pattern: one entry per source column, nullopt meaning
/// unbound (wildcard).
using Pattern = std::vector<std::optional<RamDomain>>;

/// How a pattern will be (or was) executed.
struct QueryPlan {
  /// Chosen index among the relation's selected orders.
  std::size_t IndexPos = 0;
  /// Bound cells absorbed as that index's range prefix.
  std::size_t PrefixLen = 0;
  /// Bitmask of bound source columns (bit I = column I).
  std::uint32_t Mask = 0;
  /// Bound columns the prefix could not absorb; checked tuple-by-tuple.
  std::size_t ResidualColumns = 0;
};

/// Picks the access path for \p P: the order with the longest fully bound
/// prefix (ties broken towards the first index, i.e. index-selection
/// order). \p P must have one entry per column of \p Rel.
QueryPlan planQuery(const interp::RelationWrapper &Rel, const Pattern &P);

/// Executes \p P against \p Rel, returning the matching tuples in sorted
/// source order. When \p PlanOut is given, the chosen plan is reported.
std::vector<DynTuple> runQuery(const interp::RelationWrapper &Rel,
                               const Pattern &P,
                               QueryPlan *PlanOut = nullptr);

/// Executes \p P through the already-chosen \p Plan (from planQuery). Lets
/// callers time planning and scanning as separate stages.
std::vector<DynTuple> runQuery(const interp::RelationWrapper &Rel,
                               const Pattern &P, const QueryPlan &Plan);

/// A query-result cache over one resident session, keyed on the
/// (relation, partial-tuple pattern) pair and tagged with the batch epoch
/// the result was computed at. Repeated point queries between update
/// batches hit the cache and skip planning, the index scan, decode, sort
/// and rendering entirely; a snapshot publish (new epoch) invalidates the
/// whole cache the first time it is consulted afterwards, so a cached
/// entry can never be served against a snapshot it does not match.
///
/// Thread-safe: many concurrent lookups/inserts from scheduler jobs. The
/// entries are shared immutable results, so a hit costs one hash probe
/// plus a shared_ptr copy under a short critical section.
class QueryCache {
public:
  explicit QueryCache(std::size_t MaxEntries = 1 << 14)
      : MaxEntries(MaxEntries) {}

  /// One cached result: the serialized "tuples" array (symbols resolved,
  /// rendered and dumped exactly once, on the miss that filled the entry)
  /// plus the plan that produced it. Immutable once published; replies
  /// splice the shared text verbatim via an obs::json::Raw node, so a hit
  /// skips row rendering *and* re-serialization.
  struct CachedResult {
    std::shared_ptr<const std::string> Tuples;
    std::uint64_t Count = 0;
    QueryPlan Plan;
  };

  /// Canonical cache key for \p Relation and the resolved pattern \p P.
  static std::string key(const std::string &Relation, const Pattern &P);

  /// Returns the entry for \p Key computed at \p Epoch, or null. A lookup
  /// at a newer epoch than the cache's drops every stale entry first
  /// (invalidation-at-publish, applied lazily on the read side).
  std::shared_ptr<const CachedResult> lookup(const std::string &Key,
                                             std::uint64_t Epoch);

  /// Publishes \p Result for \p Key at \p Epoch. Entries from older
  /// epochs are dropped; when the cache is full the table is flushed
  /// wholesale (entries are cheap to recompute and a publish flushes them
  /// all anyway).
  void insert(const std::string &Key, std::uint64_t Epoch,
              std::shared_ptr<const CachedResult> Result);

  struct Counters {
    std::uint64_t Hits = 0;
    std::uint64_t Misses = 0;
    std::uint64_t Invalidations = 0;
    std::uint64_t Entries = 0;
  };
  Counters counters() const;

private:
  const std::size_t MaxEntries;
  mutable std::mutex Mutex;
  std::uint64_t Epoch = 0;
  std::unordered_map<std::string, std::shared_ptr<const CachedResult>> Map;
  std::uint64_t Hits = 0, Misses = 0, Invalidations = 0;
};

} // namespace stird::srv

#endif // STIRD_SRV_QUERY_H
