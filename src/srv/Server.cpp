//===- srv/Server.cpp - stird-serve epoll event-loop server -------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "srv/Server.h"

#include "obs/Trace.h"
#include "srv/Metrics.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <fstream>
#include <map>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace stird;
using namespace stird::srv;

namespace {

/// Closes its fd unless released — every early-return path in start()
/// frees whatever was already created (the old code leaked the socket when
/// a later step failed).
struct ScopedFd {
  int Fd = -1;
  explicit ScopedFd(int Fd = -1) : Fd(Fd) {}
  ~ScopedFd() {
    if (Fd >= 0)
      ::close(Fd);
  }
  ScopedFd(const ScopedFd &) = delete;
  ScopedFd &operator=(const ScopedFd &) = delete;
  int release() {
    int F = Fd;
    Fd = -1;
    return F;
  }
};

bool setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// How long a graceful shutdown keeps trying to flush replies to clients
/// that stopped reading.
constexpr std::chrono::seconds DrainGrace{2};

} // namespace

/// One live connection. Ownership is split and explicit:
///  - the event-loop thread owns the socket, the framing decoder, the
///    write buffer, the request queue and the dispatch window — no lock;
///  - pool jobs only touch the reply hand-off (Done, ShutdownRequested,
///    Closed) under M;
///  - InDirty is guarded by the server's DirtyM.
/// Jobs hold a shared_ptr, so a connection torn down mid-request stays
/// valid until its last job delivered (into the void: Closed drops it).
///
/// Requests of one connection execute strictly in arrival order (at most
/// one pool job per connection; the rest wait in Pending). Pipelining
/// still overlaps wire I/O with execution, but a client that pipelines
/// load-then-query reads its own write — the contract the v1
/// thread-per-connection server gave. Cross-connection requests execute
/// concurrently.
struct Server::Connection {
  int Fd = -1;
  bool IsTcp = false;
  FrameDecoder Decoder;

  /// One parsed-but-not-yet-dispatched request, with the lifecycle trace
  /// it drew (if any) riding along.
  struct PendingReq {
    std::uint64_t Seq = 0;
    std::string Payload;
    std::unique_ptr<obs::RequestTrace> Trace;
  };

  /// One completed reply handed back from a pool job (or enqueued locally
  /// for admission/framing errors).
  struct Reply {
    std::string Frame;
    std::unique_ptr<obs::RequestTrace> Trace;
  };

  // Event-loop-owned state.
  std::string Out;
  std::size_t OutPos = 0;
  bool WantWrite = false;
  bool ReadParked = false;
  bool PeerEof = false;
  bool Broken = false;
  std::uint64_t NextSeq = 0;
  std::uint64_t NextRelease = 0;
  std::size_t InFlight = 0;
  std::deque<PendingReq> Pending;
  bool JobActive = false;
  std::uint64_t ActiveSeq = 0;
  /// Traces of replies released into Out but not yet flushed to the
  /// socket; finalized when the write buffer drains (or at close).
  std::vector<std::unique_ptr<obs::RequestTrace>> Flushing;

  // Cross-thread reply hand-off.
  std::mutex M;
  std::map<std::uint64_t, Reply> Done;
  bool ShutdownRequested = false;
  bool Closed = false;

  bool InDirty = false; // guarded by Server::DirtyM

  /// Enqueues a reply produced on the event loop itself (admission
  /// errors, framing errors) through the same ordered hand-off the jobs
  /// use. Local replies never carry a trace.
  void enqueueLocal(std::uint64_t Seq, std::string Frame) {
    std::lock_guard<std::mutex> Lock(M);
    Done.emplace(Seq, Reply{std::move(Frame), nullptr});
  }
};

/// One connection of the metrics HTTP endpoint: reads a request head,
/// writes one response, closes. Event-loop owned, no locking.
struct Server::MetricsConn {
  int Fd = -1;
  std::string In;
  std::string Out;
  std::size_t OutPos = 0;
  bool Responding = false;
};

Server::Server(EngineSession &Session, ServerOptions Options)
    : Tenants(OwnedTenants), Options(std::move(Options)) {
  OwnedTenants.add("default", Session);
}

Server::Server(TenantRegistry &Tenants, ServerOptions Options)
    : Tenants(Tenants), Options(std::move(Options)) {
  if (!Tenants.defaultTenant())
    fatal("Server requires a registry with at least one tenant");
}

Server::~Server() {
  stop();
  // A destructor racing live jobs would free the wake fd under them;
  // serve() already drained, but cover the serve-never-ran paths too.
  while (PendingJobs.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
  for (auto &[Fd, Conn] : Conns) {
    std::lock_guard<std::mutex> Lock(Conn->M);
    Conn->Closed = true;
    ::close(Fd);
  }
  Conns.clear();
  for (auto &[Fd, Conn] : MetricsConns)
    ::close(Fd);
  MetricsConns.clear();
  if (MetricsFd >= 0)
    ::close(MetricsFd);
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
  if (WakeFd >= 0)
    ::close(WakeFd);
  if (!Options.UnixPath.empty())
    ::unlink(Options.UnixPath.c_str());
}

static bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message + ": " + std::strerror(errno);
  return false;
}

bool Server::start(std::string *Error) {
  Tenants.Telemetry = &Telemetry;
  {
    obs::RequestTraceSink::Options TraceOpts;
    TraceOpts.SampleEvery = Options.TraceSampleEvery;
    TraceOpts.SlowArmed = !Options.SlowQueryLogPath.empty();
    TraceOpts.SlowMicros = Options.SlowQueryMicros;
    Telemetry.Traces.configure(TraceOpts);
  }
  if (!Options.SlowQueryLogPath.empty()) {
    obs::SlowQueryLog::Options LogOpts;
    LogOpts.Path = Options.SlowQueryLogPath;
    LogOpts.ThresholdMicros = Options.SlowQueryMicros;
    LogOpts.MaxBytes = Options.SlowQueryLogMaxBytes;
    if (!Telemetry.SlowLog.open(std::move(LogOpts))) {
      if (Error)
        *Error =
            "cannot open slow-query log " + Options.SlowQueryLogPath;
      return false;
    }
  }

  ScopedFd Fd;
  if (!Options.UnixPath.empty()) {
    if (Options.UnixPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (Error)
        *Error = "socket path too long: " + Options.UnixPath;
      return false;
    }
    Fd.Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd.Fd < 0)
      return fail(Error, "socket");
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Options.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Options.UnixPath.c_str());
    if (::bind(Fd.Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
      return fail(Error, "bind " + Options.UnixPath);
  } else {
    Fd.Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd.Fd < 0)
      return fail(Error, "socket");
    int One = 1;
    ::setsockopt(Fd.Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<std::uint16_t>(Options.Port));
    if (::inet_pton(AF_INET, Options.Host.c_str(), &Addr.sin_addr) != 1) {
      if (Error)
        *Error = "invalid listen address '" + Options.Host + "'";
      return false;
    }
    if (::bind(Fd.Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
      return fail(Error, "bind " + Options.Host + ":" +
                             std::to_string(Options.Port));
    sockaddr_in Bound{};
    socklen_t BoundLen = sizeof(Bound);
    if (::getsockname(Fd.Fd, reinterpret_cast<sockaddr *>(&Bound),
                      &BoundLen) == 0)
      BoundPort = ntohs(Bound.sin_port);
  }
  if (!setNonBlocking(Fd.Fd))
    return fail(Error, "fcntl O_NONBLOCK");
  const int Backlog = Options.Backlog > 0 ? Options.Backlog : SOMAXCONN;
  if (::listen(Fd.Fd, Backlog) < 0)
    return fail(Error, "listen");

  ScopedFd Ep(::epoll_create1(EPOLL_CLOEXEC));
  if (Ep.Fd < 0)
    return fail(Error, "epoll_create1");
  ScopedFd Wk(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (Wk.Fd < 0)
    return fail(Error, "eventfd");

  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = Fd.Fd;
  if (::epoll_ctl(Ep.Fd, EPOLL_CTL_ADD, Fd.Fd, &Ev) < 0)
    return fail(Error, "epoll_ctl listen");
  Ev.data.fd = Wk.Fd;
  if (::epoll_ctl(Ep.Fd, EPOLL_CTL_ADD, Wk.Fd, &Ev) < 0)
    return fail(Error, "epoll_ctl wake");

  // The metrics HTTP endpoint: its own TCP listener on the same epoll
  // loop. Created before the fds are released so a failure tears
  // everything down through the scoped fds.
  ScopedFd Mt;
  int MetricsBound = 0;
  if (Options.MetricsPort >= 0) {
    Mt.Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Mt.Fd < 0)
      return fail(Error, "metrics socket");
    int One = 1;
    ::setsockopt(Mt.Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<std::uint16_t>(Options.MetricsPort));
    const std::string &Host =
        Options.UnixPath.empty() ? Options.Host : std::string("127.0.0.1");
    if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
      if (Error)
        *Error = "invalid metrics listen address '" + Host + "'";
      return false;
    }
    if (::bind(Mt.Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0)
      return fail(Error, "bind metrics port " +
                             std::to_string(Options.MetricsPort));
    sockaddr_in Bound{};
    socklen_t BoundLen = sizeof(Bound);
    if (::getsockname(Mt.Fd, reinterpret_cast<sockaddr *>(&Bound),
                      &BoundLen) == 0)
      MetricsBound = ntohs(Bound.sin_port);
    if (!setNonBlocking(Mt.Fd))
      return fail(Error, "fcntl O_NONBLOCK metrics");
    if (::listen(Mt.Fd, 16) < 0)
      return fail(Error, "listen metrics");
    Ev.events = EPOLLIN;
    Ev.data.fd = Mt.Fd;
    if (::epoll_ctl(Ep.Fd, EPOLL_CTL_ADD, Mt.Fd, &Ev) < 0)
      return fail(Error, "epoll_ctl metrics");
  }

  // The request-execution pool: the default tenant program's shared
  // scheduler, sized so at least one worker exists (submit() would
  // otherwise run requests inline on the event loop).
  std::size_t Threads = Options.PoolThreads;
  if (Threads == 0)
    Threads = std::max<std::size_t>(
        2, Tenants.defaultTenant()->Session->program().getNumThreads());
  Pool = Tenants.defaultTenant()->Session->scheduler(Threads);
  Telemetry.Pool = Pool.get();

  ListenFd = Fd.release();
  EpollFd = Ep.release();
  WakeFd = Wk.release();
  MetricsFd = Mt.release();
  MetricsBoundPort = MetricsBound;
  Accepting = true;
  return true;
}

void Server::wake() {
  const std::uint64_t One = 1;
  [[maybe_unused]] ssize_t N = ::write(WakeFd, &One, sizeof(One));
}

void Server::stop() {
  if (Stopping.exchange(true))
    return;
  if (WakeFd >= 0)
    wake();
}

void Server::updateEpoll(Connection &C) {
  epoll_event Ev{};
  Ev.events = (C.ReadParked || C.PeerEof || C.Broken ? 0u : EPOLLIN) |
              (C.WantWrite ? EPOLLOUT : 0u);
  Ev.data.fd = C.Fd;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev);
}

void Server::acceptReady() {
  for (;;) {
    const int Fd =
        ::accept4(ListenFd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      // EINTR and ECONNABORTED are transient per-connection conditions;
      // the old loop treated any failure as fatal and tore the server
      // down on the first signal. EMFILE/ENFILE (fd exhaustion) backs off
      // until closes free descriptors.
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      break; // EAGAIN, fd exhaustion, or listen socket gone
    }
    if (Conns.size() >= Options.MaxConnections) {
      Telemetry.Counters.ConnectionsRejected.fetch_add(
          1, std::memory_order_relaxed);
      ::close(Fd);
      continue;
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    Conn->IsTcp = Options.UnixPath.empty();
    if (Conn->IsTcp) {
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    }
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Fd;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0) {
      ::close(Fd);
      continue;
    }
    Telemetry.Counters.ConnectionsAccepted.fetch_add(
        1, std::memory_order_relaxed);
    Conns.emplace(Fd, std::move(Conn));
  }
}

void Server::dispatch(const std::shared_ptr<Connection> &Conn,
                      std::uint64_t Seq, std::string Payload,
                      std::unique_ptr<obs::RequestTrace> Trace) {
  Telemetry.Counters.RequestsDispatched.fetch_add(1,
                                                  std::memory_order_relaxed);
  PendingJobs.fetch_add(1, std::memory_order_acq_rel);
  // submit() takes a std::function, which requires a copyable callable,
  // so the trace crosses into the job as a raw pointer; submit()
  // guarantees the closure runs exactly once (inline if need be).
  obs::RequestTrace *TraceRaw = Trace.release();
  Pool->submit([this, Conn, Seq, Payload = std::move(Payload), TraceRaw] {
    std::unique_ptr<obs::RequestTrace> Trace(TraceRaw);
    if (Trace) {
      // The queue-wait span closes on the executing thread, which also
      // knows which slot it is and how it obtained the job.
      Trace->endStage(obs::RequestStage::Queue);
      Trace->ExecSlot = Pool->executingSlot();
      Trace->Source =
          interp::entrySourceName(interp::Scheduler::currentEntrySource());
    }
    RequestOutcome Outcome = handleRequest(Tenants, Payload, Trace.get());
    std::string Frame;
    {
      obs::StageScope Scope(Trace.get(), obs::RequestStage::Serialize);
      Frame = encodeFrame(Outcome.Reply.dump());
    }
    bool Delivered = false;
    {
      std::lock_guard<std::mutex> Lock(Conn->M);
      if (!Conn->Closed) {
        Conn->Done.emplace(
            Seq, Connection::Reply{std::move(Frame), std::move(Trace)});
        Delivered = true;
        if (Outcome.Shutdown)
          Conn->ShutdownRequested = true;
      }
    }
    if (!Delivered && Trace)
      // The connection died mid-request; the reply goes nowhere, but the
      // trace still finishes so started/finished stay balanced.
      Telemetry.Traces.finish(std::move(Trace));
    {
      std::lock_guard<std::mutex> Lock(DirtyM);
      if (!Conn->InDirty) {
        Conn->InDirty = true;
        Dirty.push_back(Conn);
      }
    }
    InFlightTotal.fetch_sub(1, std::memory_order_relaxed);
    wake();
    // Last action: serve()/~Server wait on this before freeing the
    // structures the lines above touch.
    PendingJobs.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void Server::parseAndDispatch(const std::shared_ptr<Connection> &Conn) {
  Connection &C = *Conn;
  const bool Tracing = Telemetry.Traces.enabled();
  while (!C.Broken && C.InFlight < Options.MaxInFlightPerConnection) {
    std::string Payload, FrameError;
    const std::uint64_t DecodeBegin = Tracing ? Telemetry.Traces.now() : 0;
    const FrameDecoder::Result R = C.Decoder.next(Payload, &FrameError);
    if (R == FrameDecoder::Result::NeedMore)
      break;
    const std::uint64_t Seq = C.NextSeq++;
    C.InFlight += 1;
    if (R == FrameDecoder::Result::Error) {
      // Framing violations (oversized or negative lengths, mid-stream
      // garbage) answer with a protocol error frame, then poison the
      // connection: earlier pipelined requests still flush first.
      Telemetry.Counters.ProtocolErrors.fetch_add(1,
                                                  std::memory_order_relaxed);
      obs::json::Value Reply = errorReply("protocol error: " + FrameError);
      Reply.set("micros", std::uint64_t(0));
      C.enqueueLocal(Seq, encodeFrame(Reply.dump()));
      C.Broken = true;
      break;
    }
    Telemetry.Counters.FramesIn.fetch_add(1, std::memory_order_relaxed);
    if (InFlightTotal.load(std::memory_order_relaxed) >=
        Options.MaxInFlightTotal) {
      // Admission control: beyond the global in-flight budget the server
      // answers immediately instead of queueing without bound.
      Telemetry.Counters.RequestsOverloaded.fetch_add(
          1, std::memory_order_relaxed);
      obs::json::Value Reply = errorReply("server overloaded");
      Reply.set("overloaded", true);
      Reply.set("micros", std::uint64_t(0));
      C.enqueueLocal(Seq, encodeFrame(Reply.dump()));
      continue;
    }
    InFlightTotal.fetch_add(1, std::memory_order_relaxed);
    // Only admitted requests draw a trace, so 1-in-N sampling counts the
    // requests that actually reach the pool.
    std::unique_ptr<obs::RequestTrace> Trace =
        Telemetry.Traces.begin(NextTraceSeq++);
    if (Trace) {
      Trace->beginStage(obs::RequestStage::Decode, DecodeBegin);
      Trace->endStage(obs::RequestStage::Decode);
      Trace->beginStage(obs::RequestStage::Pending);
    }
    C.Pending.push_back(
        Connection::PendingReq{Seq, std::move(Payload), std::move(Trace)});
  }
  C.ReadParked = !C.Broken && C.InFlight >= Options.MaxInFlightPerConnection;
}

void Server::collectReplies(const std::shared_ptr<Connection> &Conn) {
  Connection &C = *Conn;
  bool Shutdown = false;
  {
    std::lock_guard<std::mutex> Lock(C.M);
    for (auto It = C.Done.find(C.NextRelease); It != C.Done.end();
         It = C.Done.find(C.NextRelease)) {
      C.Out += It->second.Frame;
      if (It->second.Trace) {
        // The reply entered the write buffer; its write span runs until
        // the buffer drains (finishFlushedTraces).
        It->second.Trace->beginStage(obs::RequestStage::Write);
        C.Flushing.push_back(std::move(It->second.Trace));
      }
      C.Done.erase(It);
      ++C.NextRelease;
      if (C.InFlight > 0)
        --C.InFlight;
      Telemetry.Counters.FramesOut.fetch_add(1, std::memory_order_relaxed);
    }
    Shutdown = C.ShutdownRequested;
    C.ShutdownRequested = false;
  }
  if (Shutdown && !Draining) {
    // Graceful: stop accepting, let in-flight work finish and flush.
    Draining = true;
    if (Accepting) {
      ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, ListenFd, nullptr);
      Accepting = false;
    }
  }
}

void Server::flushWrites(const std::shared_ptr<Connection> &Conn) {
  Connection &C = *Conn;
  while (C.OutPos < C.Out.size()) {
    const ssize_t N = ::write(C.Fd, C.Out.data() + C.OutPos,
                              C.Out.size() - C.OutPos);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      C.Broken = true; // EPIPE/ECONNRESET: peer is gone
      C.Out.clear();
      C.OutPos = 0;
      break;
    }
    C.OutPos += static_cast<std::size_t>(N);
  }
  if (C.OutPos == C.Out.size()) {
    C.Out.clear();
    C.OutPos = 0;
  } else if (C.OutPos > (std::size_t(1) << 16) &&
             C.OutPos * 2 > C.Out.size()) {
    C.Out.erase(0, C.OutPos);
    C.OutPos = 0;
  }
  C.WantWrite = !C.Out.empty();
}

void Server::finishFlushedTraces(Connection &C) {
  for (std::unique_ptr<obs::RequestTrace> &T : C.Flushing) {
    T->endStage(obs::RequestStage::Write);
    // finish() consumes the trace, so a slow-log record is rendered
    // first; only already-slow requests pay for the rendering.
    obs::json::Value Record;
    const bool WantLog =
        Telemetry.SlowLog.enabled() &&
        T->totalMicros() >= Telemetry.SlowLog.thresholdMicros();
    if (WantLog)
      Record = T->toJson();
    const bool Slow = Telemetry.Traces.finish(std::move(T));
    if (Slow && WantLog)
      Telemetry.SlowLog.record(Record);
  }
  C.Flushing.clear();
}

void Server::closeConnection(const std::shared_ptr<Connection> &Conn) {
  Connection &C = *Conn;
  if (C.Fd < 0)
    return;
  {
    std::lock_guard<std::mutex> Lock(C.M);
    C.Closed = true;
    // Replies that never released still finish their traces, so
    // started/finished stay balanced across connection death.
    for (auto &[Seq, R] : C.Done)
      if (R.Trace)
        Telemetry.Traces.finish(std::move(R.Trace));
    C.Done.clear();
  }
  for (Connection::PendingReq &Req : C.Pending)
    if (Req.Trace)
      Telemetry.Traces.finish(std::move(Req.Trace));
  // Queued-but-undispatched requests die with the connection; the active
  // job (if any) settles its own InFlightTotal share when it finishes.
  InFlightTotal.fetch_sub(C.Pending.size(), std::memory_order_relaxed);
  C.Pending.clear();
  finishFlushedTraces(C); // whatever was mid-flush ends now
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, C.Fd, nullptr);
  ::close(C.Fd);
  Conns.erase(C.Fd);
  C.Fd = -1;
  Telemetry.Counters.ConnectionsClosed.fetch_add(1,
                                                 std::memory_order_relaxed);
}

/// Services one connection on the event-loop thread: releases completed
/// replies in order, resumes parked reads when the window reopened,
/// flushes, and closes once nothing can follow.
void Server::writeReady(const std::shared_ptr<Connection> &Conn) {
  Connection &C = *Conn;
  if (C.Fd < 0)
    return;
  for (;;) {
    collectReplies(Conn);
    if (C.Fd < 0)
      return;
    // Releases are contiguous in seq order, so the active job is done
    // exactly when the release cursor moved past it.
    if (C.JobActive && C.NextRelease > C.ActiveSeq)
      C.JobActive = false;
    if (!C.JobActive && !C.Pending.empty()) {
      Connection::PendingReq Req = std::move(C.Pending.front());
      C.Pending.pop_front();
      C.JobActive = true;
      C.ActiveSeq = Req.Seq;
      if (Req.Trace) {
        Req.Trace->endStage(obs::RequestStage::Pending);
        Req.Trace->beginStage(obs::RequestStage::Queue);
      }
      dispatch(Conn, Req.Seq, std::move(Req.Payload), std::move(Req.Trace));
      continue; // a fast job may already have delivered
    }
    if (C.ReadParked && !C.Broken && !C.PeerEof &&
        C.InFlight < Options.MaxInFlightPerConnection) {
      C.ReadParked = false;
      parseAndDispatch(Conn); // buffered frames first, then the socket
      continue;               // may have produced local replies
    }
    break;
  }
  flushWrites(Conn);
  if (C.Out.empty() && !C.Flushing.empty())
    finishFlushedTraces(C);
  const bool Drained = C.Out.empty() && C.InFlight == 0;
  if ((C.Broken || C.PeerEof) && Drained) {
    closeConnection(Conn);
    return;
  }
  updateEpoll(C);
}

void Server::readReady(const std::shared_ptr<Connection> &Conn) {
  Connection &C = *Conn;
  char Buf[64 << 10];
  while (!C.Broken && !C.ReadParked) {
    const ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C.Decoder.feed(Buf, static_cast<std::size_t>(N));
      parseAndDispatch(Conn);
      continue;
    }
    if (N == 0) {
      C.PeerEof = true; // half-close: keep flushing replies
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    C.Broken = true;
    break;
  }
  writeReady(Conn); // release/flush/park bookkeeping shared with writes
}

void Server::acceptMetricsReady() {
  for (;;) {
    const int Fd = ::accept4(MetricsFd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      break;
    }
    // Scrapers, not clients: a handful of concurrent scrapes is already
    // pathological, so the cap is tiny and excess connections just close.
    if (MetricsConns.size() >= 32) {
      ::close(Fd);
      continue;
    }
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Fd;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0) {
      ::close(Fd);
      continue;
    }
    auto MC = std::make_unique<MetricsConn>();
    MC->Fd = Fd;
    MetricsConns.emplace(Fd, std::move(MC));
  }
}

/// Builds the one HTTP response the metrics endpoint speaks: the
/// Prometheus exposition for GET /metrics, 404 for anything else.
static std::string metricsHttpResponse(const std::string &Head,
                                       const TenantRegistry &Tenants,
                                       obs::ServeCounters &Counters) {
  std::string Method, Target;
  const std::size_t Sp1 = Head.find(' ');
  if (Sp1 != std::string::npos) {
    Method = Head.substr(0, Sp1);
    const std::size_t Sp2 = Head.find(' ', Sp1 + 1);
    if (Sp2 != std::string::npos)
      Target = Head.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  }
  const std::size_t Query = Target.find('?');
  if (Query != std::string::npos)
    Target.resize(Query);

  std::string Status, ContentType, Body;
  if (Method == "GET" && Target == "/metrics") {
    Status = "200 OK";
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
    Body = renderPrometheus(Tenants);
    // Counted after rendering so a scrape never observes itself.
    Counters.MetricsScrapes.fetch_add(1, std::memory_order_relaxed);
  } else {
    Status = "404 Not Found";
    ContentType = "text/plain; charset=utf-8";
    Body = "not found; try GET /metrics\n";
  }
  std::string R;
  R.reserve(Body.size() + 128);
  R += "HTTP/1.1 " + Status + "\r\n";
  R += "Content-Type: " + ContentType + "\r\n";
  R += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  R += "Connection: close\r\n\r\n";
  R += Body;
  return R;
}

void Server::metricsConnReady(int Fd) {
  auto It = MetricsConns.find(Fd);
  if (It == MetricsConns.end())
    return;
  MetricsConn &MC = *It->second;
  if (!MC.Responding) {
    char Buf[4096];
    for (;;) {
      const ssize_t N = ::read(Fd, Buf, sizeof(Buf));
      if (N > 0) {
        MC.In.append(Buf, static_cast<std::size_t>(N));
        if (MC.In.size() > (std::size_t(16) << 10)) {
          closeMetricsConn(Fd); // request head absurdly large
          return;
        }
        continue;
      }
      if (N == 0) {
        if (MC.In.find("\r\n\r\n") == std::string::npos) {
          closeMetricsConn(Fd); // EOF before a complete head
          return;
        }
        break;
      }
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      closeMetricsConn(Fd);
      return;
    }
    if (MC.In.find("\r\n\r\n") == std::string::npos)
      return; // head still incomplete; wait for more bytes
    MC.Out = metricsHttpResponse(MC.In, Tenants, Telemetry.Counters);
    MC.Responding = true;
    epoll_event Ev{};
    Ev.events = EPOLLOUT;
    Ev.data.fd = Fd;
    ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, Fd, &Ev);
  }
  while (MC.OutPos < MC.Out.size()) {
    const ssize_t N = ::write(Fd, MC.Out.data() + MC.OutPos,
                              MC.Out.size() - MC.OutPos);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;
      break; // peer gone
    }
    MC.OutPos += static_cast<std::size_t>(N);
  }
  closeMetricsConn(Fd); // one response per connection
}

void Server::closeMetricsConn(int Fd) {
  auto It = MetricsConns.find(Fd);
  if (It == MetricsConns.end())
    return;
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  ::close(Fd);
  MetricsConns.erase(It);
}

bool Server::drained() {
  if (InFlightTotal.load(std::memory_order_relaxed) != 0 ||
      PendingJobs.load(std::memory_order_acquire) != 0)
    return false;
  for (const auto &[Fd, Conn] : Conns) {
    std::lock_guard<std::mutex> Lock(Conn->M);
    if (!Conn->Out.empty() || !Conn->Done.empty())
      return false;
  }
  return true;
}

void Server::eventLoop() {
  std::chrono::steady_clock::time_point DrainDeadline{};
  bool DeadlineSet = false;
  epoll_event Events[128];
  for (;;) {
    if (Stopping.load(std::memory_order_acquire))
      break;
    if (Draining) {
      if (!DeadlineSet) {
        DrainDeadline = std::chrono::steady_clock::now() + DrainGrace;
        DeadlineSet = true;
      }
      if (drained() || std::chrono::steady_clock::now() >= DrainDeadline)
        break;
    }
    const int Timeout = Draining ? 20 : 500;
    const int N = ::epoll_wait(EpollFd, Events, 128, Timeout);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    for (int I = 0; I < N; ++I) {
      const int Fd = Events[I].data.fd;
      if (Fd == WakeFd) {
        std::uint64_t Tick;
        while (::read(WakeFd, &Tick, sizeof(Tick)) > 0) {
        }
        continue;
      }
      if (Fd == ListenFd) {
        acceptReady();
        continue;
      }
      if (MetricsFd >= 0 && Fd == MetricsFd) {
        acceptMetricsReady();
        continue;
      }
      if (MetricsConns.count(Fd)) {
        metricsConnReady(Fd);
        continue;
      }
      auto It = Conns.find(Fd);
      if (It == Conns.end())
        continue;
      std::shared_ptr<Connection> Conn = It->second;
      if (Events[I].events & (EPOLLERR | EPOLLHUP))
        Conn->PeerEof = true;
      if (Events[I].events & EPOLLIN)
        readReady(Conn);
      else
        writeReady(Conn);
    }
    // Replies completed by pool jobs since the last pass.
    std::vector<std::shared_ptr<Connection>> Ready;
    {
      std::lock_guard<std::mutex> Lock(DirtyM);
      Ready.swap(Dirty);
      for (const auto &Conn : Ready)
        Conn->InDirty = false;
    }
    for (const auto &Conn : Ready)
      if (Conn->Fd >= 0)
        writeReady(Conn);
  }
}

void Server::serve() {
  eventLoop();
  // Tear down every connection, then wait for stragglers in the pool —
  // after this no job can touch the server (the shared Connection state
  // outlives them via shared_ptr, and Closed drops their replies).
  std::vector<std::shared_ptr<Connection>> Remaining;
  Remaining.reserve(Conns.size());
  for (auto &[Fd, Conn] : Conns)
    Remaining.push_back(Conn);
  for (const auto &Conn : Remaining)
    closeConnection(Conn);
  while (PendingJobs.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
  if (!Options.TraceOutPath.empty()) {
    // Retained request traces become one Chrome trace-event document,
    // sharing the format (and viewers) with the evaluator's --trace-out.
    obs::TraceRecorder Recorder;
    Recorder.append(Telemetry.Traces.drainChrome());
    std::ofstream OutFile(Options.TraceOutPath,
                          std::ios::binary | std::ios::trunc);
    if (OutFile)
      OutFile << Recorder.toJson();
  }
}
