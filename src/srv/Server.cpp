//===- srv/Server.cpp - stird-serve socket server -----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "srv/Server.h"

#include "srv/Wire.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace stird;
using namespace stird::srv;

Server::Server(EngineSession &Session, ServerOptions Options)
    : Session(Session), Options(std::move(Options)) {}

Server::~Server() {
  stop();
  std::lock_guard<std::mutex> Lock(WorkersMutex);
  for (std::thread &Worker : Workers)
    if (Worker.joinable())
      Worker.join();
  if (!Options.UnixPath.empty())
    ::unlink(Options.UnixPath.c_str());
}

static bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message + ": " + std::strerror(errno);
  return false;
}

bool Server::start(std::string *Error) {
  int Fd = -1;
  if (!Options.UnixPath.empty()) {
    if (Options.UnixPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (Error)
        *Error = "socket path too long: " + Options.UnixPath;
      return false;
    }
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return fail(Error, "socket");
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Options.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Options.UnixPath.c_str());
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      ::close(Fd);
      return fail(Error, "bind " + Options.UnixPath);
    }
  } else {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return fail(Error, "socket");
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<std::uint16_t>(Options.Port));
    if (::inet_pton(AF_INET, Options.Host.c_str(), &Addr.sin_addr) != 1) {
      ::close(Fd);
      if (Error)
        *Error = "invalid listen address '" + Options.Host + "'";
      return false;
    }
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      ::close(Fd);
      return fail(Error, "bind " + Options.Host + ":" +
                             std::to_string(Options.Port));
    }
    sockaddr_in Bound{};
    socklen_t BoundLen = sizeof(Bound);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound),
                      &BoundLen) == 0)
      BoundPort = ntohs(Bound.sin_port);
  }
  if (::listen(Fd, 16) < 0) {
    ::close(Fd);
    return fail(Error, "listen");
  }
  ListenFd.store(Fd);
  return true;
}

void Server::serve() {
  while (!Stopping.load(std::memory_order_acquire)) {
    int Fd = ::accept(ListenFd.load(), nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listening socket closed by stop()
    }
    std::lock_guard<std::mutex> Lock(WorkersMutex);
    Workers.emplace_back([this, Fd] { handleConnection(Fd); });
  }
  // Collect finished and in-flight connections before returning so the
  // session outlives every request.
  std::lock_guard<std::mutex> Lock(WorkersMutex);
  for (std::thread &Worker : Workers)
    if (Worker.joinable())
      Worker.join();
  Workers.clear();
}

void Server::stop() {
  if (Stopping.exchange(true))
    return;
  const int Fd = ListenFd.exchange(-1);
  if (Fd >= 0) {
    // shutdown() unblocks a concurrent accept(); close releases the fd.
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
}

void Server::handleConnection(int Fd) {
  std::string Payload;
  for (;;) {
    std::string Error;
    if (!readFrame(Fd, Payload, &Error))
      break; // EOF or framing failure: drop the connection
    RequestOutcome Outcome = handleRequest(Session, Latency, Payload);
    if (!writeFrame(Fd, Outcome.Reply.dump(), &Error))
      break;
    if (Outcome.Shutdown) {
      stop();
      break;
    }
  }
  ::close(Fd);
}
