//===- srv/Session.h - Resident engine sessions -----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident serving layer: an EngineSession keeps a compiled program's
/// de-specialized relations in memory across fact batches, so repeated
/// loads and queries skip the one-shot pipeline's per-run setup entirely.
///
/// Incrementality is monotonic-additions only: a batch may insert new EDB
/// tuples, never retract. Programs the translator finds eligible (no
/// negation, aggregates, `$`, or eqrel — see TranslationOptions::
/// EmitUpdateProgram) re-derive consequences with a delta-seeded semi-naive
/// update that reuses the existing LOOP/EXIT/SWAP machinery; anything else
/// falls back to a full re-evaluation on a fresh engine (still behind the
/// same API, reported via BatchResult::Incremental).
///
/// Concurrency follows the left-right pattern: the session keeps two
/// engine instances ("sides") over one shared symbol table. Readers pin
/// the active side with a Snapshot and are never blocked by a writer;
/// writers (serialized by a mutex) catch the passive side up on the batch
/// log, apply the new batch, and publish it as the new active side after
/// waiting for the old side's readers to drain. The cost is the classic
/// one: every batch is applied twice, and resident memory doubles.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_SESSION_H
#define STIRD_SRV_SESSION_H

#include "core/Program.h"
#include "srv/Query.h"
#include "util/Csv.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stird::srv {

namespace detail {
struct SessionSide;
} // namespace detail

/// One batch of facts: relation name -> new tuples (resolved cells).
using FactBatch = std::vector<std::pair<std::string, std::vector<DynTuple>>>;

/// The textual form accepted from the wire: raw column strings, parsed
/// against each relation's declared column types.
using TextBatch =
    std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>;

/// Outcome of one loadFacts call.
struct BatchResult {
  /// Tuples that were genuinely new (grew a relation).
  std::size_t Inserted = 0;
  /// Tuples already present (deduplicated away).
  std::size_t Duplicates = 0;
  /// True when the delta-seeded update program ran; false when the batch
  /// was applied by full re-evaluation (ineligible program).
  bool Incremental = false;
  /// Batch sequence number after this load (1-based).
  std::uint64_t Epoch = 0;
  /// Wall-clock seconds spent applying the batch to the published side.
  double Seconds = 0;
};

struct SessionOptions {
  /// Per-side engine configuration (backend, threads, stats, ...).
  interp::EngineOptions Engine;
  /// Compile-time choices (--sips/--feedback join planning, ...) for the
  /// fromSource/fromFile convenience constructors. EmitUpdateProgram is
  /// forced on regardless: sessions always want the incremental path, and
  /// both the one-shot and update programs are planned under the same
  /// strategy so resident re-derivation matches a cold run's plans.
  core::CompileOptions Compile;
  /// Execute the program's .input/.output directives during the bootstrap
  /// run. Off by default: a serving session starts from an empty database
  /// and receives facts through loadFacts.
  bool RunIo = false;
};

class EngineSession;

/// A consistent read view: the relation contents observed never change
/// while the snapshot is held, even as writers publish new batches. Cheap
/// to create (two atomic operations); holding one only delays the *next*
/// writer reusing the pinned side, never the current one. Must not outlive
/// its session.
class Snapshot {
public:
  Snapshot(Snapshot &&Other) noexcept : Side(Other.Side) {
    Other.Side = nullptr;
  }
  Snapshot &operator=(Snapshot &&Other) noexcept;
  Snapshot(const Snapshot &) = delete;
  Snapshot &operator=(const Snapshot &) = delete;
  ~Snapshot();

  /// Partial-tuple query (see srv::runQuery). Fatal on unknown relations;
  /// use the session's relation metadata to validate first.
  std::vector<DynTuple> query(const std::string &Relation, const Pattern &P,
                              QueryPlan *PlanOut = nullptr) const;

  /// All tuples of a relation, sorted.
  std::vector<DynTuple> tuples(const std::string &Relation) const;

  /// The pinned side's relation, or null if unknown. Aux relations
  /// (delta_/new_) are reachable too; servers filter by declared names.
  const interp::RelationWrapper *relation(const std::string &Name) const;

  /// Batch sequence number this snapshot observes.
  std::uint64_t epoch() const;

  /// Observability counters of the pinned side, in stats-id order.
  const obs::StatsBlock &stats() const;
  const std::vector<const interp::RelationWrapper *> &
  statsRelations() const;

private:
  friend class EngineSession;
  explicit Snapshot(const detail::SessionSide *Side) : Side(Side) {}

  const detail::SessionSide *Side;
};

/// A resident engine over one compiled program. Thread-safe: any number of
/// concurrent snapshot()/query() callers, writers serialized internally.
class EngineSession {
public:
  /// Compiles \p Source and boots a session over it. Null on compile
  /// errors (reported like core::Program::fromSource).
  static std::unique_ptr<EngineSession>
  fromSource(const std::string &Source, const SessionOptions &Options = {},
             std::vector<std::string> *Errors = nullptr);

  static std::unique_ptr<EngineSession>
  fromFile(const std::string &Path, const SessionOptions &Options = {},
           std::vector<std::string> *Errors = nullptr);

  /// Boots a session over an already compiled program (shared with other
  /// sessions; must outlive them all).
  static std::unique_ptr<EngineSession>
  create(std::shared_ptr<core::Program> Program,
         const SessionOptions &Options = {});

  ~EngineSession();

  /// Applies one monotonic batch of new facts and derives every
  /// consequence. Unknown relations or arity mismatches are fatal;
  /// validate via relationTypes() first when the input is untrusted.
  BatchResult loadFacts(const FactBatch &Batch);

  /// Textual variant: parses each cell against the relation's declared
  /// column types. Malformed tuples are skipped and reported in
  /// \p Errors (File = "<load:relation>", Line = 1-based tuple index);
  /// unknown relation names produce one error each and are skipped.
  BatchResult loadFacts(const TextBatch &Batch,
                        std::vector<FactError> &Errors);

  /// Pins the current active side for consistent reads.
  Snapshot snapshot() const;

  /// One-shot convenience: snapshot() + query on it.
  std::vector<DynTuple> query(const std::string &Relation,
                              const Pattern &P) const;

  /// Whether batches run the incremental update program (vs re-evaluate).
  bool isIncremental() const;

  /// Batches applied so far.
  std::uint64_t epoch() const;

  /// Declared (user-visible) relation names, in declaration order.
  std::vector<std::string> relationNames() const;
  /// Column types of a declared relation, or null if unknown.
  const std::vector<ColumnTypeKind> *
  relationTypes(const std::string &Relation) const;

  const core::Program &program() const { return *Prog; }
  SymbolTable &symbols() { return Prog->getSymbolTable(); }
  const SymbolTable &symbols() const { return Prog->getSymbolTable(); }

  /// The underlying program's shared work-stealing scheduler for
  /// \p NumThreads (see core::Program::schedulerFor). Serving front ends
  /// dispatch request jobs here, so wire work and engine evaluation share
  /// one warm pool instead of spawning per-connection threads.
  std::shared_ptr<interp::Scheduler> scheduler(std::size_t NumThreads);

private:
  using Side = detail::SessionSide;

  explicit EngineSession(std::shared_ptr<core::Program> Program,
                         const SessionOptions &Options);

  /// Brings \p S fully up to date with the batch log.
  void catchUp(Side &S);
  /// Applies one batch incrementally; returns insert/duplicate counts.
  std::pair<std::size_t, std::size_t> applyBatch(Side &S,
                                                 const FactBatch &Batch);
  /// Full re-evaluation fallback: fresh engine, replay the whole log.
  void rebuild(Side &S);
  /// Spins until no snapshot pins \p S any more.
  void waitQuiesce(Side &S);

  std::shared_ptr<core::Program> Prog;
  SessionOptions Options;
  bool Incremental;

  std::unique_ptr<Side> Sides[2];
  /// The side snapshots pin. Readers load-acquire; the writer
  /// store-releases after the passive side is fully caught up.
  std::atomic<const Side *> Active;

  /// Writer state, all under WriterMutex: the full batch log (replayed by
  /// the rebuild fallback and by lagging sides) and which side is passive.
  std::mutex WriterMutex;
  std::vector<FactBatch> Log;
  std::size_t PassiveIdx = 1;
};

} // namespace stird::srv

#endif // STIRD_SRV_SESSION_H
