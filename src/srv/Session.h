//===- srv/Session.h - Resident engine sessions -----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident serving layer: an EngineSession keeps a compiled program's
/// de-specialized relations in memory across fact batches, so repeated
/// loads and queries skip the one-shot pipeline's per-run setup entirely.
///
/// Batches are mixed: they may insert new EDB tuples and retract present
/// ones. When the translator emitted a maintenance program (see
/// TranslationOptions::EmitMaintenance — forced on by fromSource/fromFile)
/// every batch routes through the inc::Maintainer: counting for
/// non-recursive strata, DRed for recursive ones, with scoped per-stratum
/// re-evaluation fallbacks that are counted and reported, never silent.
/// When the program carries no maintenance plan, pure-insert batches keep
/// the delta-seeded semi-naive update path (EmitUpdateProgram) and
/// retracting batches fall back to a net-replay full re-evaluation on a
/// fresh engine (still behind the same API, reported via
/// BatchResult::Maintained / Incremental and the fallback telemetry).
///
/// Concurrency follows the left-right pattern: the session keeps two
/// engine instances ("sides") over one shared symbol table. Readers pin
/// the active side with a Snapshot and are never blocked by a writer;
/// writers (serialized by a mutex) catch the passive side up on the batch
/// log, apply the new batch, and publish it as the new active side after
/// waiting for the old side's readers to drain. The cost is the classic
/// one: every batch is applied twice, and resident memory doubles.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_SESSION_H
#define STIRD_SRV_SESSION_H

#include "core/Program.h"
#include "inc/Maintainer.h"
#include "srv/Query.h"
#include "util/Csv.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace stird::srv {

namespace detail {
struct SessionSide;
} // namespace detail

/// One batch of facts: relation name -> new tuples (resolved cells).
using FactBatch = std::vector<std::pair<std::string, std::vector<DynTuple>>>;

/// The textual form accepted from the wire: raw column strings, parsed
/// against each relation's declared column types.
using TextBatch =
    std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>;

/// One relation's textual portion of a mixed batch (wire form of
/// inc::RelationOps): raw insert and retract rows, parsed against the
/// relation's declared column types.
struct TextRelationOps {
  std::string Relation;
  std::vector<std::vector<std::string>> Inserts;
  std::vector<std::vector<std::string>> Retracts;
};
using MixedTextBatch = std::vector<TextRelationOps>;

/// Outcome of one loadFacts/applyMixed call.
struct BatchResult {
  /// Tuples that were genuinely new (grew a relation).
  std::size_t Inserted = 0;
  /// Tuples already present (deduplicated away).
  std::size_t Duplicates = 0;
  /// Tuples genuinely removed by retraction.
  std::size_t Deleted = 0;
  /// Retractions of tuples that were not present.
  std::size_t Missing = 0;
  /// True when the batch was applied in place (maintenance program or
  /// delta-seeded update); false when it forced a full re-evaluation.
  bool Incremental = false;
  /// True when the incremental maintenance plan processed the batch (see
  /// BatchResult::Maint for the per-stratum breakdown).
  bool Maintained = false;
  /// Batch sequence number after this load (1-based).
  std::uint64_t Epoch = 0;
  /// Wall-clock seconds spent applying the batch to the published side.
  double Seconds = 0;
  /// Non-empty when the batch was rejected before application (unknown
  /// relation, arity mismatch, derived-relation target or eqrel retraction
  /// under maintenance, ...). A rejected batch mutates and logs nothing.
  std::string Error;
  /// Per-stratum maintenance detail of the publishing apply (only
  /// meaningful when Maintained).
  inc::MaintenanceReport Maint;
};

/// Cumulative maintenance counters of one session, for the stats command
/// and the Prometheus exporter.
struct MaintTelemetry {
  /// Whether batches run the maintenance program at all.
  bool Enabled = false;
  /// Why they cannot when Enabled is false.
  std::string IneligibleReason;
  std::uint64_t Batches = 0;      ///< maintained batches applied
  std::uint64_t Inserted = 0;     ///< net EDB tuples inserted
  std::uint64_t Deleted = 0;      ///< net EDB tuples retracted
  std::uint64_t Rederived = 0;    ///< DRed over-deletes that survived
  std::uint64_t ReevalStrata = 0; ///< scoped Reeval strata executed
  std::uint64_t Rebuilds = 0;     ///< whole-batch full re-evaluations
  /// Fallback executions by reason: every scoped Reeval stratum run and
  /// every whole-batch rebuild, keyed by why it happened.
  std::vector<std::pair<std::string, std::uint64_t>> FallbackReasons;
};

struct SessionOptions {
  /// Per-side engine configuration (backend, threads, stats, ...).
  interp::EngineOptions Engine;
  /// Compile-time choices (--sips/--feedback join planning, ...) for the
  /// fromSource/fromFile convenience constructors. EmitUpdateProgram and
  /// EmitMaintenance are forced on regardless: sessions always want the
  /// incremental paths, and the one-shot, update and maintenance programs
  /// are planned under the same strategy so resident re-derivation matches
  /// a cold run's plans.
  core::CompileOptions Compile;
  /// Execute the program's .input/.output directives during the bootstrap
  /// run. Off by default: a serving session starts from an empty database
  /// and receives facts through loadFacts.
  bool RunIo = false;
};

class EngineSession;

/// A consistent read view: the relation contents observed never change
/// while the snapshot is held, even as writers publish new batches. Cheap
/// to create (two atomic operations); holding one only delays the *next*
/// writer reusing the pinned side, never the current one. Must not outlive
/// its session.
class Snapshot {
public:
  Snapshot(Snapshot &&Other) noexcept : Side(Other.Side) {
    Other.Side = nullptr;
  }
  Snapshot &operator=(Snapshot &&Other) noexcept;
  Snapshot(const Snapshot &) = delete;
  Snapshot &operator=(const Snapshot &) = delete;
  ~Snapshot();

  /// Partial-tuple query (see srv::runQuery). Fatal on unknown relations;
  /// use the session's relation metadata to validate first.
  std::vector<DynTuple> query(const std::string &Relation, const Pattern &P,
                              QueryPlan *PlanOut = nullptr) const;

  /// All tuples of a relation, sorted.
  std::vector<DynTuple> tuples(const std::string &Relation) const;

  /// The pinned side's relation, or null if unknown. Aux relations
  /// (delta_/new_) are reachable too; servers filter by declared names.
  const interp::RelationWrapper *relation(const std::string &Name) const;

  /// Batch sequence number this snapshot observes.
  std::uint64_t epoch() const;

  /// Observability counters of the pinned side, in stats-id order.
  const obs::StatsBlock &stats() const;
  const std::vector<const interp::RelationWrapper *> &
  statsRelations() const;

private:
  friend class EngineSession;
  explicit Snapshot(const detail::SessionSide *Side) : Side(Side) {}

  const detail::SessionSide *Side;
};

/// A resident engine over one compiled program. Thread-safe: any number of
/// concurrent snapshot()/query() callers, writers serialized internally.
class EngineSession {
public:
  /// Compiles \p Source and boots a session over it. Null on compile
  /// errors (reported like core::Program::fromSource).
  static std::unique_ptr<EngineSession>
  fromSource(const std::string &Source, const SessionOptions &Options = {},
             std::vector<std::string> *Errors = nullptr);

  static std::unique_ptr<EngineSession>
  fromFile(const std::string &Path, const SessionOptions &Options = {},
           std::vector<std::string> *Errors = nullptr);

  /// Boots a session over an already compiled program (shared with other
  /// sessions; must outlive them all).
  static std::unique_ptr<EngineSession>
  create(std::shared_ptr<core::Program> Program,
         const SessionOptions &Options = {});

  ~EngineSession();

  /// Applies one monotonic batch of new facts and derives every
  /// consequence. Unknown relations or arity mismatches are fatal;
  /// validate via relationTypes() first when the input is untrusted.
  BatchResult loadFacts(const FactBatch &Batch);

  /// Textual variant: parses each cell against the relation's declared
  /// column types. Malformed tuples are skipped and reported in
  /// \p Errors (File = "<load:relation>", Line = 1-based tuple index);
  /// unknown relation names produce one error each and are skipped.
  BatchResult loadFacts(const TextBatch &Batch,
                        std::vector<FactError> &Errors);

  /// Applies one mixed insert/retract batch. When the program carries a
  /// maintenance plan, every batch — even a pure-insert one — routes
  /// through it so the support counts stay exact; otherwise retracting
  /// batches fall back to a net-replay full re-evaluation and pure-insert
  /// batches keep the legacy update path. A rejected batch sets
  /// BatchResult::Error and applies (and logs) nothing.
  BatchResult applyMixed(const inc::MixedBatch &Batch);

  /// Textual variant of applyMixed (error reporting as for
  /// loadFacts(TextBatch); retract rows report as "<retract:relation>").
  BatchResult applyMixed(const MixedTextBatch &Batch,
                         std::vector<FactError> &Errors);

  /// Whether batches run the incremental maintenance program (mixed
  /// insert/retract batches stay in place, no rebuild).
  bool isMaintained() const;

  /// Cumulative maintenance counters (batches, deletions, rederivations,
  /// per-reason fallbacks) since the session booted.
  MaintTelemetry maintTelemetry() const;

  /// Pins the current active side for consistent reads.
  Snapshot snapshot() const;

  /// One-shot convenience: snapshot() + query on it.
  std::vector<DynTuple> query(const std::string &Relation,
                              const Pattern &P) const;

  /// Whether batches apply in place (maintenance or update program)
  /// instead of re-evaluating from scratch.
  bool isIncremental() const;

  /// Batches applied so far.
  std::uint64_t epoch() const;

  /// Declared (user-visible) relation names, in declaration order.
  std::vector<std::string> relationNames() const;
  /// Column types of a declared relation, or null if unknown.
  const std::vector<ColumnTypeKind> *
  relationTypes(const std::string &Relation) const;

  const core::Program &program() const { return *Prog; }
  SymbolTable &symbols() { return Prog->getSymbolTable(); }
  const SymbolTable &symbols() const { return Prog->getSymbolTable(); }

  /// The underlying program's shared work-stealing scheduler for
  /// \p NumThreads (see core::Program::schedulerFor). Serving front ends
  /// dispatch request jobs here, so wire work and engine evaluation share
  /// one warm pool instead of spawning per-connection threads.
  std::shared_ptr<interp::Scheduler> scheduler(std::size_t NumThreads);

private:
  using Side = detail::SessionSide;

  explicit EngineSession(std::shared_ptr<core::Program> Program,
                         const SessionOptions &Options);

  /// Brings \p S fully up to date with the batch log.
  void catchUp(Side &S);
  /// Applies one logged batch to a side. \p Result is non-null only for
  /// the publishing apply (telemetry and counters are recorded once, not
  /// per side).
  void applyOne(Side &S, const inc::MixedBatch &Batch, BatchResult *Result);
  /// Legacy pure-insert path: delta-seeded update program.
  std::pair<std::size_t, std::size_t> applyInserts(Side &S,
                                                   const inc::MixedBatch &Batch);
  /// Full re-evaluation fallback: fresh engine, net-replay the whole log.
  void rebuild(Side &S);
  /// Validates a batch before it is logged; "" when acceptable.
  std::string validateMixed(const inc::MixedBatch &Batch) const;
  /// Records one fallback execution (scoped Reeval stratum or rebuild)
  /// and emits the once-per-session warning line.
  void recordFallback(const std::string &Reason, std::uint64_t Count = 1);
  /// Spins until no snapshot pins \p S any more.
  void waitQuiesce(Side &S);

  std::shared_ptr<core::Program> Prog;
  SessionOptions Options;
  bool Incremental;
  /// True when the program carries a maintenance plan (mixed batches stay
  /// incremental).
  bool Maintained;
  /// Relations defined by rules — retraction targets to reject on the
  /// non-maintained fallback path.
  std::unordered_set<std::string> DerivedRels;

  std::unique_ptr<Side> Sides[2];
  /// The side snapshots pin. Readers load-acquire; the writer
  /// store-releases after the passive side is fully caught up.
  std::atomic<const Side *> Active;

  /// Writer state, all under WriterMutex: the full batch log (replayed by
  /// the rebuild fallback and by lagging sides) and which side is passive.
  std::mutex WriterMutex;
  std::vector<inc::MixedBatch> Log;
  std::size_t PassiveIdx = 1;

  /// Maintenance telemetry, recorded only by publishing applies. Guarded
  /// by TelemetryMutex so stats/metrics readers never take WriterMutex.
  mutable std::mutex TelemetryMutex;
  MaintTelemetry Telemetry;
  std::map<std::string, std::uint64_t> FallbackCounts;
  std::atomic<bool> FallbackWarned{false};
};

} // namespace stird::srv

#endif // STIRD_SRV_SESSION_H
