//===- srv/Wire.h - Length-prefixed JSON wire protocol ----------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stird-wire-v2 protocol spoken between stird-serve and its clients:
/// each message is one JSON document framed by a 4-byte big-endian length
/// prefix, over a Unix or TCP stream socket. Requests carry a "cmd" member
/// (load / query / stats / shutdown), an optional "id" echoed verbatim in
/// the reply (so pipelined clients can match replies to requests), and an
/// optional "tenant" selecting one of several hosted sessions. Every reply
/// carries "ok" plus either the command's payload or an "error" string,
/// and "micros" with the server-side handling time. v1 requests (no id, no
/// tenant) remain valid and are answered in the v1 shape.
/// docs/wire-protocol.md is the normative schema description.
///
/// The request handler is a pure function of (tenants, payload) so tests
/// drive the full protocol without sockets. The blocking readFrame /
/// writeFrame helpers serve simple clients; the event-loop server uses the
/// incremental FrameDecoder state machine instead, which resumes across
/// short reads and rejects oversized length prefixes before allocating.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_WIRE_H
#define STIRD_SRV_WIRE_H

#include "obs/Json.h"
#include "obs/RequestTrace.h"
#include "obs/Serve.h"
#include "obs/SlowLog.h"
#include "srv/Session.h"

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stird::interp {
class Scheduler;
} // namespace stird::interp

namespace stird::srv {

/// Protocol identifier reported by `stats` replies.
inline constexpr const char *WireProtocolVersion = "stird-wire-v2";
/// The previous protocol generation; v1 requests are still accepted.
inline constexpr const char *WireProtocolV1 = "stird-wire-v1";

/// Upper bound on one frame's payload; oversized frames poison the
/// connection (the reader cannot resynchronize) and are reported as errors.
inline constexpr std::size_t MaxFrameBytes = std::size_t(64) << 20;

/// Reads one length-prefixed frame from \p Fd into \p Payload, resuming
/// across short reads and EINTR. Returns false on clean EOF before any
/// prefix byte; fails (false with \p Error set) on truncated frames,
/// oversized lengths, or IO errors.
bool readFrame(int Fd, std::string &Payload, std::string *Error = nullptr);

/// Writes one length-prefixed frame, resuming across short writes and
/// EINTR. False with \p Error on failure.
bool writeFrame(int Fd, const std::string &Payload,
                std::string *Error = nullptr);

/// Renders \p Payload as one wire frame (4-byte big-endian length prefix
/// plus the payload bytes). The payload must not exceed MaxFrameBytes.
std::string encodeFrame(const std::string &Payload);

/// Incremental framing state machine for nonblocking readers: feed()
/// whatever bytes arrived, then drain complete frames with next(). A
/// length prefix above the limit is rejected as soon as its 4 bytes are
/// seen — before any payload allocation — and poisons the decoder (every
/// later next() reports the same error; the caller must drop the
/// connection, since the stream cannot be resynchronized).
class FrameDecoder {
public:
  explicit FrameDecoder(std::size_t MaxBytes = MaxFrameBytes)
      : Max(MaxBytes) {}

  enum class Result {
    Frame,    ///< \p Payload holds one complete frame.
    NeedMore, ///< No complete frame buffered; feed() more bytes.
    Error     ///< Framing violation; the connection is poisoned.
  };

  void feed(const char *Data, std::size_t Len);

  Result next(std::string &Payload, std::string *Error = nullptr);

  /// Bytes fed but not yet returned as frames.
  std::size_t buffered() const { return Buffer.size() - Pos; }

  /// True once a framing violation was detected.
  bool poisoned() const { return Poisoned; }

private:
  const std::size_t Max;
  std::string Buffer;
  std::size_t Pos = 0;
  bool Poisoned = false;
  std::string PoisonError;
};

/// One hosted session: the resident engine plus the serving-side state
/// that belongs to it — request latency, the query-result cache, and a
/// request counter. Owned by a TenantRegistry.
struct Tenant {
  Tenant(std::string Name, EngineSession &Session)
      : Name(std::move(Name)), Session(&Session) {}

  const std::string Name;
  EngineSession *Session;
  obs::LatencyAggregator Latency;
  QueryCache Cache;
  std::atomic<std::uint64_t> Requests{0};
};

/// The serving front end's shared observability state, owned by the
/// server and attached to its TenantRegistry so the stats/metrics
/// commands can report it. Everything here is either atomic or
/// internally synchronized.
struct ServeTelemetry {
  /// Event-loop counters (accept/read/write path).
  obs::ServeCounters Counters;
  /// Request-trace sampling and retention.
  obs::RequestTraceSink Traces;
  /// The JSONL slow-query log (disabled unless opened).
  obs::SlowQueryLog SlowLog;
  /// The worker pool dispatch runs on, for queue-depth/steal telemetry.
  /// Not owned; may be null.
  const interp::Scheduler *Pool = nullptr;
};

/// The set of sessions one server front end hosts, keyed by tenant name.
/// The first tenant added is the default — requests without a "tenant"
/// member (every v1 request) are routed to it. Registration happens
/// before serving starts; lookups are concurrent.
class TenantRegistry {
public:
  /// Registers \p Session under \p Name. The session must outlive the
  /// registry. Fatal on duplicate names.
  Tenant &add(const std::string &Name, EngineSession &Session);

  /// The tenant named \p Name, or null.
  Tenant *find(const std::string &Name) const;

  /// The first tenant added (never null once one was registered).
  Tenant *defaultTenant() const;

  /// Every tenant, in registration order.
  std::vector<Tenant *> tenants() const;

  std::size_t size() const;

  /// The attached server front end's observability state, reported by
  /// `stats` ("server" and "trace" members) and rendered by the `metrics`
  /// command. Null when no server front end is attached. Not owned.
  const ServeTelemetry *Telemetry = nullptr;

private:
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Tenant>> List;
};

/// Result of handling one request frame.
struct RequestOutcome {
  /// The reply document to send back.
  obs::json::Value Reply;
  /// True when the request asked the server to shut down.
  bool Shutdown = false;
  /// The dispatched command name ("?" for malformed requests).
  std::string Command = "?";
  /// Server-side handling time, the same value stamped as "micros".
  std::uint64_t Micros = 0;
};

/// Executes one stird-wire request against the hosted tenants: parses
/// \p Payload, routes on "tenant" (default tenant when absent), dispatches
/// on "cmd", echoes "id" when present, stamps the reply with "micros" and
/// records the latency under the command name in the tenant's aggregator.
/// Malformed or unknown requests yield {"ok":false,"error":...} replies —
/// the connection stays usable. When \p Trace is given, the parse / plan /
/// cache / eval stages are stamped into it along with the request's
/// execution metadata (tenant, relation, pattern, plan, cached).
RequestOutcome handleRequest(const TenantRegistry &Tenants,
                             const std::string &Payload,
                             obs::RequestTrace *Trace = nullptr);

/// Single-session convenience (the v1 entry point, kept for callers and
/// tests that host exactly one session without a registry): dispatches
/// against \p Session with latencies recorded in \p Latency and no
/// query-result cache. "tenant" members are rejected here, and so is the
/// registry-only "metrics" command.
RequestOutcome handleRequest(EngineSession &Session,
                             obs::LatencyAggregator &Latency,
                             const std::string &Payload,
                             obs::RequestTrace *Trace = nullptr);

/// Builds the standard error reply document (used by the server for
/// admission-control and framing errors that never reach dispatch).
obs::json::Value errorReply(const std::string &Message);

} // namespace stird::srv

#endif // STIRD_SRV_WIRE_H
