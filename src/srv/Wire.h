//===- srv/Wire.h - Length-prefixed JSON wire protocol ----------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stird-wire-v1 protocol spoken between stird-serve and its clients:
/// each message is one JSON document framed by a 4-byte big-endian length
/// prefix, over a Unix or TCP stream socket. Requests carry a "cmd" member
/// (load / query / stats / shutdown); every reply carries "ok" plus either
/// the command's payload or an "error" string, and "micros" with the
/// server-side handling time. docs/wire-protocol.md is the normative
/// schema description.
///
/// The request handler is a pure function of (session, payload) so tests
/// drive the full protocol without sockets.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_SRV_WIRE_H
#define STIRD_SRV_WIRE_H

#include "obs/Json.h"
#include "obs/Serve.h"
#include "srv/Session.h"

#include <cstddef>
#include <string>

namespace stird::srv {

/// Protocol identifier reported by `stats` replies.
inline constexpr const char *WireProtocolVersion = "stird-wire-v1";

/// Upper bound on one frame's payload; oversized frames poison the
/// connection (the reader cannot resynchronize) and are reported as errors.
inline constexpr std::size_t MaxFrameBytes = std::size_t(64) << 20;

/// Reads one length-prefixed frame from \p Fd into \p Payload. Returns
/// false on clean EOF before any prefix byte; fails (false with \p Error
/// set) on truncated frames, oversized lengths, or IO errors.
bool readFrame(int Fd, std::string &Payload, std::string *Error = nullptr);

/// Writes one length-prefixed frame. False with \p Error on failure.
bool writeFrame(int Fd, const std::string &Payload,
                std::string *Error = nullptr);

/// Result of handling one request frame.
struct RequestOutcome {
  /// The reply document to send back.
  obs::json::Value Reply;
  /// True when the request asked the server to shut down.
  bool Shutdown = false;
  /// The dispatched command name ("?" for malformed requests).
  std::string Command = "?";
};

/// Executes one stird-wire-v1 request against \p Session: parses
/// \p Payload, dispatches on "cmd", stamps the reply with "micros" and
/// records the latency under the command name in \p Latency. Malformed or
/// unknown requests yield {"ok":false,"error":...} replies — the
/// connection stays usable.
RequestOutcome handleRequest(EngineSession &Session,
                             obs::LatencyAggregator &Latency,
                             const std::string &Payload);

} // namespace stird::srv

#endif // STIRD_SRV_WIRE_H
