//===- translate/Sips.h - Join-order selection for rule bodies --*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sideways-information-passing strategies (SIPS) for rule bodies: before a
/// clause is lowered to a Scan/IndexScan chain, its positive atoms may be
/// permuted so that tuple accesses bind variables as early and as cheaply
/// as possible. Three strategies are offered:
///
///   - source:    the atoms stay in textual order (the historical default,
///                and still the default everywhere so existing plans and
///                goldens are unchanged unless a caller opts in);
///   - max-bound: a greedy heuristic choosing, at each step, the atom with
///                the most bound columns — fully bound atoms (pure
///                existence checks) float to the front, and among ties the
///                semi-naive delta occurrence wins since per-iteration
///                deltas are almost always the smallest input;
///   - profile:   a greedy cost model seeded with relation cardinalities
///                from a previous run's stird-profile-v1/-v2 JSON document
///                (--feedback=FILE); each step picks the atom minimizing
///                |R|^(unbound/arity), i.e. an index lookup on a huge
///                relation beats a scan of a small one.
///
/// The chosen permutation is purely a planning decision: any order yields
/// the same fixpoint (the differential random-program suite enforces this),
/// only the run time changes.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_TRANSLATE_SIPS_H
#define STIRD_TRANSLATE_SIPS_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace stird::translate {

/// Which join-ordering strategy the translator applies to rule bodies.
enum class SipsStrategy {
  Source,   ///< Keep the textual atom order.
  MaxBound, ///< Greedy most-bound-columns-first.
  Profile,  ///< Greedy cost model over profile-feedback cardinalities.
};

/// Parses a --sips value ("source" | "max-bound" | "profile").
std::optional<SipsStrategy> parseSipsStrategy(const std::string &Name);

/// The canonical spelling of a strategy (inverse of parseSipsStrategy).
const char *sipsStrategyName(SipsStrategy Strategy);

/// Relation cardinalities (and, from v2 documents, access-pattern
/// counters) harvested from a stird-profile-v1/-v2 document, the feedback
/// source of SipsStrategy::Profile and of per-relation substrate
/// selection. Peak sizes are used (for the
/// translator's delta_/new_ aux relations the final size is always 0 —
/// they are cleared on convergence — while the peak is exactly the largest
/// per-iteration delta, the quantity a join planner wants).
class ProfileFeedback {
public:
  /// Access-pattern record of one relation, present only in
  /// stird-profile-v2 documents (v1 carries sizes alone).
  struct RelationAccess {
    /// Fully-bound probe initiations observed by the profiled run.
    double PointLookups = 0;
    /// Bounded (proper-prefix) range-scan initiations.
    double RangeScans = 0;
    /// Observed range of the first source column; Col0Max < Col0Min means
    /// the relation finished empty (no density signal).
    std::int64_t Col0Min = 0;
    std::int64_t Col0Max = -1;
    /// Substrate the profiled run used ("btree", "brie", "art", ...).
    std::string Kind;
  };

  /// Parses a profile JSON document (stird-profile-v1 or -v2; the reader is
  /// backward compatible). Returns null and fills \p Error when the text is
  /// not valid JSON, is not a known profile document, or carries no
  /// relation sizes.
  static std::unique_ptr<ProfileFeedback> fromJson(const std::string &Text,
                                                   std::string *Error);

  /// Reads and parses a profile JSON file.
  static std::unique_ptr<ProfileFeedback> fromFile(const std::string &Path,
                                                   std::string *Error);

  /// The recorded cardinality of \p Relation, if the profiled run saw it.
  std::optional<double> relationSize(const std::string &Relation) const;

  /// The access-pattern record of \p Relation (v2 documents only).
  std::optional<RelationAccess>
  relationAccess(const std::string &Relation) const;

  /// True when the document carried v2 access-pattern counters — the
  /// precondition for feedback-driven substrate selection.
  bool hasAccessPatterns() const { return !Access.empty(); }

  /// Names of every relation in the document (for staleness checks).
  std::size_t relationCount() const { return Sizes.size(); }
  bool hasRelation(const std::string &Relation) const {
    return Sizes.count(Relation) != 0;
  }

private:
  ProfileFeedback() = default;
  std::unordered_map<std::string, double> Sizes;
  std::unordered_map<std::string, RelationAccess> Access;
};

/// One column of a body atom, as the planner sees it.
struct SipsColumn {
  /// Every variable occurring in the argument (empty for `_`, constants).
  std::vector<std::string> Vars;
  /// True when the argument is variable-free (a constant expression): the
  /// column is bound no matter where the atom is placed.
  bool Ground = false;
  /// The variable this column binds when scanned, i.e. the argument is a
  /// lone variable ("" otherwise — compound arguments only check, they
  /// never bind).
  std::string Binds;
};

/// One positive body atom, as the planner sees it.
struct SipsAtom {
  /// Position among the clause's positive atoms in source order.
  std::size_t SourceIndex = 0;
  /// Whether this occurrence reads a semi-naive delta relation in the rule
  /// version being planned.
  bool IsDelta = false;
  /// Estimated cardinality of the relation the atom reads; < 0 when no
  /// feedback is available for it.
  double EstimatedSize = -1.0;
  std::vector<SipsColumn> Columns;
};

/// A variable the body can derive by equality once others are bound: the
/// pair (bound variable, variables its defining expression needs). An
/// equality `x = 3` contributes ("x", {}); `y = x + 1` contributes
/// ("y", {"x"}).
using SipsEquality = std::pair<std::string, std::vector<std::string>>;

/// Orders \p Atoms under \p Strategy. Returns the permutation as a list of
/// indices into \p Atoms: element i names the atom emitted at depth i.
/// Deterministic — every tie falls back to the source index. For
/// SipsStrategy::Source this is always the identity.
std::vector<std::size_t>
orderAtoms(SipsStrategy Strategy, const std::vector<SipsAtom> &Atoms,
           const std::vector<SipsEquality> &Equalities = {});

} // namespace stird::translate

#endif // STIRD_TRANSLATE_SIPS_H
