//===- translate/AstToRam.cpp - Datalog to RAM translation ------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "translate/AstToRam.h"

#include "util/MiscUtil.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace stird;
using namespace stird::translate;

namespace {

using ast::TypeKind;

ColumnTypeKind toColumnType(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Number:
    return ColumnTypeKind::Number;
  case TypeKind::Unsigned:
    return ColumnTypeKind::Unsigned;
  case TypeKind::Float:
    return ColumnTypeKind::Float;
  case TypeKind::Symbol:
    return ColumnTypeKind::Symbol;
  }
  unreachable("unknown type kind");
}

ram::StructureKind toRamStructure(ast::StructureKind Kind) {
  switch (Kind) {
  case ast::StructureKind::Btree:
    return ram::StructureKind::Btree;
  case ast::StructureKind::Brie:
    return ram::StructureKind::Brie;
  case ast::StructureKind::Art:
    return ram::StructureKind::Art;
  case ast::StructureKind::Eqrel:
    return ram::StructureKind::Eqrel;
  }
  unreachable("unknown structure kind");
}

/// Resolves an AST functor plus its inferred result type to a typed RAM
/// intrinsic opcode.
ram::IntrinsicOp resolveIntrinsic(ast::FunctorOp Op, TypeKind Type) {
  using ast::FunctorOp;
  using ram::IntrinsicOp;
  const bool IsFloat = Type == TypeKind::Float;
  const bool IsUnsigned = Type == TypeKind::Unsigned;
  switch (Op) {
  case FunctorOp::Neg:
    return IsFloat ? IntrinsicOp::FNeg : IntrinsicOp::Neg;
  case FunctorOp::BNot:
    return IntrinsicOp::BNot;
  case FunctorOp::LNot:
    return IntrinsicOp::LNot;
  case FunctorOp::Ord:
    return IntrinsicOp::Ord;
  case FunctorOp::Strlen:
    return IntrinsicOp::Strlen;
  case FunctorOp::ToNumber:
    return IntrinsicOp::ToNumber;
  case FunctorOp::ToString:
    return IntrinsicOp::ToString;
  case FunctorOp::Add:
    return IsFloat ? IntrinsicOp::FAdd : IntrinsicOp::Add;
  case FunctorOp::Sub:
    return IsFloat ? IntrinsicOp::FSub : IntrinsicOp::Sub;
  case FunctorOp::Mul:
    return IsFloat ? IntrinsicOp::FMul : IntrinsicOp::Mul;
  case FunctorOp::Div:
    return IsFloat ? IntrinsicOp::FDiv
                   : (IsUnsigned ? IntrinsicOp::UDiv : IntrinsicOp::Div);
  case FunctorOp::Mod:
    return IsUnsigned ? IntrinsicOp::UMod : IntrinsicOp::Mod;
  case FunctorOp::Exp:
    return IsFloat ? IntrinsicOp::FExp
                   : (IsUnsigned ? IntrinsicOp::UExp : IntrinsicOp::Exp);
  case FunctorOp::Band:
    return IntrinsicOp::Band;
  case FunctorOp::Bor:
    return IntrinsicOp::Bor;
  case FunctorOp::Bxor:
    return IntrinsicOp::Bxor;
  case FunctorOp::Bshl:
    return IntrinsicOp::Bshl;
  case FunctorOp::Bshr:
    return IsUnsigned ? IntrinsicOp::UBshr : IntrinsicOp::Bshr;
  case FunctorOp::Max:
    return IsFloat ? IntrinsicOp::FMax
                   : (IsUnsigned ? IntrinsicOp::UMax : IntrinsicOp::Max);
  case FunctorOp::Min:
    return IsFloat ? IntrinsicOp::FMin
                   : (IsUnsigned ? IntrinsicOp::UMin : IntrinsicOp::Min);
  case FunctorOp::Cat:
    return IntrinsicOp::Cat;
  case FunctorOp::Substr:
    return IntrinsicOp::Substr;
  }
  unreachable("unknown functor op");
}

ram::CmpOp resolveCmp(ast::ConstraintOp Op, TypeKind Type) {
  using ast::ConstraintOp;
  using ram::CmpOp;
  const bool IsFloat = Type == TypeKind::Float;
  const bool IsUnsigned = Type == TypeKind::Unsigned;
  switch (Op) {
  case ConstraintOp::Eq:
    return CmpOp::Eq;
  case ConstraintOp::Ne:
    return CmpOp::Ne;
  case ConstraintOp::Lt:
    return IsFloat ? CmpOp::FLt : (IsUnsigned ? CmpOp::ULt : CmpOp::Lt);
  case ConstraintOp::Le:
    return IsFloat ? CmpOp::FLe : (IsUnsigned ? CmpOp::ULe : CmpOp::Le);
  case ConstraintOp::Gt:
    return IsFloat ? CmpOp::FGt : (IsUnsigned ? CmpOp::UGt : CmpOp::Gt);
  case ConstraintOp::Ge:
    return IsFloat ? CmpOp::FGe : (IsUnsigned ? CmpOp::UGe : CmpOp::Ge);
  case ConstraintOp::Match:
  case ConstraintOp::Contains:
    break;
  }
  unreachable("unsupported constraint op");
}

ram::AggFunc resolveAggFunc(ast::AggregateOp Op, TypeKind Type) {
  using ast::AggregateOp;
  using ram::AggFunc;
  const bool IsFloat = Type == TypeKind::Float;
  const bool IsUnsigned = Type == TypeKind::Unsigned;
  switch (Op) {
  case AggregateOp::Count:
    return AggFunc::Count;
  case AggregateOp::Sum:
    return IsFloat ? AggFunc::FSum
                   : (IsUnsigned ? AggFunc::USum : AggFunc::Sum);
  case AggregateOp::Min:
    return IsFloat ? AggFunc::FMin
                   : (IsUnsigned ? AggFunc::UMin : AggFunc::Min);
  case AggregateOp::Max:
    return IsFloat ? AggFunc::FMax
                   : (IsUnsigned ? AggFunc::UMax : AggFunc::Max);
  }
  unreachable("unknown aggregate op");
}

/// Collects names of variables in an argument tree, not descending into
/// aggregate bodies.
void collectVars(const ast::Argument &Arg, std::vector<std::string> &Out) {
  switch (Arg.getKind()) {
  case ast::Argument::Kind::Variable:
    Out.push_back(static_cast<const ast::Variable &>(Arg).getName());
    return;
  case ast::Argument::Kind::Functor:
    for (const auto &Operand :
         static_cast<const ast::Functor &>(Arg).getArgs())
      collectVars(*Operand, Out);
    return;
  default:
    return;
  }
}

/// Collects variables of an aggregate including its body (for readiness
/// checks against the outer scope).
void collectAggregateVars(const ast::Aggregator &Agg,
                          std::vector<std::string> &Out) {
  if (Agg.getTarget())
    collectVars(*Agg.getTarget(), Out);
  for (const auto &Lit : Agg.getBody()) {
    switch (Lit->getKind()) {
    case ast::Literal::Kind::Atom:
      for (const auto &Arg :
           static_cast<const ast::Atom &>(*Lit).getArgs())
        collectVars(*Arg, Out);
      break;
    case ast::Literal::Kind::Negation:
      for (const auto &Arg :
           static_cast<const ast::Negation &>(*Lit).getAtom().getArgs())
        collectVars(*Arg, Out);
      break;
    case ast::Literal::Kind::Constraint: {
      const auto &Con = static_cast<const ast::Constraint &>(*Lit);
      collectVars(Con.getLhs(), Out);
      collectVars(Con.getRhs(), Out);
      break;
    }
    }
  }
}

/// Returns the aggregator beneath \p Arg if Arg is exactly an aggregate
/// expression (not nested inside a functor), else null.
const ast::Aggregator *asAggregator(const ast::Argument &Arg) {
  if (Arg.getKind() == ast::Argument::Kind::Aggregator)
    return &static_cast<const ast::Aggregator &>(Arg);
  return nullptr;
}

/// The translator.
class Translator {
public:
  Translator(const ast::Program &AstProg, const ast::SemanticInfo &Info,
             SymbolTable &Symbols, const TranslationOptions &Options,
             TranslationResult &Result)
      : AstProg(AstProg), Info(Info), Symbols(Symbols), Options(Options),
        Result(Result) {}

  void run() {
    Result.Prog = std::make_unique<ram::Program>();
    Prog = Result.Prog.get();

    for (const auto &Decl : AstProg.Relations) {
      std::vector<ColumnTypeKind> Columns;
      for (const auto &Attr : Decl->getAttributes())
        Columns.push_back(toColumnType(Attr.Type));
      ram::Relation *Rel = Prog->addRelation(
          Decl->getName(), Columns, toRamStructure(Decl->getStructure()));
      if (Decl->isInput())
        Rel->markInput(Decl->getInputPath());
      if (Decl->isOutput())
        Rel->markOutput(Decl->getOutputPath());
      if (Decl->isPrintSize())
        Rel->markPrintSize();
      RelOf[Decl->getName()] = Rel;
    }

    std::vector<ram::StmtPtr> Main;
    for (const auto &Decl : AstProg.Relations)
      if (Decl->isInput())
        Main.push_back(std::make_unique<ram::Io>(
            ram::Io::Direction::Load, RelOf.at(Decl->getName())));

    for (std::size_t SI = 0; SI < Info.Strata.size(); ++SI) {
      // Record each stratum's child span of the main Sequence: the scoped
      // re-evaluation fallback of the maintenance subsystem re-runs
      // exactly these statements.
      const std::size_t Begin = Main.size();
      emitStratum(Info.Strata[SI], static_cast<int>(SI), Main);
      StratumSpans.emplace_back(Begin, Main.size());
    }

    for (const auto &Decl : AstProg.Relations) {
      if (Decl->isOutput())
        Main.push_back(std::make_unique<ram::Io>(
            ram::Io::Direction::Store, RelOf.at(Decl->getName())));
      if (Decl->isPrintSize())
        Main.push_back(std::make_unique<ram::Io>(
            ram::Io::Direction::PrintSize, RelOf.at(Decl->getName())));
    }
    Prog->setMain(std::make_unique<ram::Sequence>(std::move(Main)));

    if (Options.EmitUpdateProgram)
      emitUpdateProgram();
    if (Options.EmitMaintenance)
      emitMaintenance();
  }

private:
  void error(const std::string &Message) {
    Result.Errors.push_back(Message);
  }

  /// Whether a clause is recursive w.r.t. its stratum: some positive body
  /// atom names a relation of the same stratum.
  bool isRecursiveClause(const ast::Clause &C,
                         const std::unordered_set<std::string> &Scc) const {
    for (const auto &Lit : C.getBody())
      if (Lit->getKind() == ast::Literal::Kind::Atom &&
          Scc.count(static_cast<const ast::Atom &>(*Lit).getName()))
        return true;
    return false;
  }

  //===--------------------------------------------------------------------===
  // Stratum emission
  //===--------------------------------------------------------------------===

  void emitStratum(const ast::Stratum &Stratum, int StratumId,
                   std::vector<ram::StmtPtr> &Main) {
    std::unordered_set<std::string> Scc;
    for (const auto *Decl : Stratum.Relations)
      Scc.insert(Decl->getName());

    if (!Stratum.Recursive) {
      for (const auto *Decl : Stratum.Relations)
        for (const auto *C : clausesOf(Decl->getName()))
          emitRule(*C, RelOf.at(Decl->getName()), /*Scc=*/{},
                   /*DeltaPos=*/-1, /*GuardRel=*/nullptr,
                   /*UseDeltaFor=*/{}, StratumId, Main);
      return;
    }

    // A recursive component containing an equivalence relation is computed
    // with a naive fixpoint: the union-find closure generates pairs beyond
    // those explicitly inserted, which semi-naive deltas would miss.
    bool Naive = Options.ForceNaiveEvaluation;
    for (const auto *Decl : Stratum.Relations)
      if (Decl->getStructure() == ast::StructureKind::Eqrel)
        Naive = true;

    // Create new_/delta_ relations.
    std::unordered_map<std::string, ram::Relation *> NewRel, DeltaRel;
    for (const auto *Decl : Stratum.Relations) {
      ram::Relation *Full = RelOf.at(Decl->getName());
      ram::StructureKind AuxStructure =
          Full->getStructure() == ram::StructureKind::Eqrel
              ? ram::StructureKind::Btree
              : Full->getStructure();
      NewRel[Decl->getName()] =
          Prog->addRelation("new_" + Decl->getName(),
                            Full->getColumnTypes(), AuxStructure);
      MainNewRel[Decl->getName()] = NewRel.at(Decl->getName());
      if (!Naive) {
        DeltaRel[Decl->getName()] =
            Prog->addRelation("delta_" + Decl->getName(),
                              Full->getColumnTypes(), AuxStructure);
        MainDeltaRel[Decl->getName()] = DeltaRel.at(Decl->getName());
      }
    }

    // Non-recursive rules feed the full relations before the loop.
    for (const auto *Decl : Stratum.Relations)
      for (const auto *C : clausesOf(Decl->getName()))
        if (!isRecursiveClause(*C, Scc))
          emitRule(*C, RelOf.at(Decl->getName()), Scc, -1, nullptr, {},
                   StratumId, Main);

    if (!Naive)
      for (const auto *Decl : Stratum.Relations)
        Main.push_back(std::make_unique<ram::MergeInto>(
            RelOf.at(Decl->getName()), DeltaRel.at(Decl->getName())));

    // Loop body.
    std::vector<ram::StmtPtr> LoopBody;
    for (const auto *Decl : Stratum.Relations) {
      ram::Relation *Full = RelOf.at(Decl->getName());
      for (const auto *C : clausesOf(Decl->getName())) {
        if (!isRecursiveClause(*C, Scc))
          continue;
        if (Naive) {
          emitRule(*C, NewRel.at(Decl->getName()), Scc, -1, Full, {},
                   StratumId, LoopBody);
          continue;
        }
        // Semi-naive: one version per occurrence of an SCC relation, with
        // that occurrence reading the delta.
        int NumSccAtoms = 0;
        for (const auto &Lit : C->getBody())
          if (Lit->getKind() == ast::Literal::Kind::Atom &&
              Scc.count(static_cast<const ast::Atom &>(*Lit).getName()))
            ++NumSccAtoms;
        for (int Version = 0; Version < NumSccAtoms; ++Version)
          emitRule(*C, NewRel.at(Decl->getName()), Scc, Version, Full,
                   DeltaRel, StratumId, LoopBody);
      }
    }

    // Exit when no relation produced new knowledge.
    ram::CondPtr ExitCond;
    for (const auto *Decl : Stratum.Relations) {
      ram::CondPtr Part = std::make_unique<ram::EmptinessCheck>(
          NewRel.at(Decl->getName()));
      ExitCond = ExitCond ? std::make_unique<ram::Conjunction>(
                                std::move(ExitCond), std::move(Part))
                          : std::move(Part);
    }
    LoopBody.push_back(std::make_unique<ram::Exit>(std::move(ExitCond)));

    for (const auto *Decl : Stratum.Relations) {
      ram::Relation *Full = RelOf.at(Decl->getName());
      ram::Relation *NewR = NewRel.at(Decl->getName());
      LoopBody.push_back(std::make_unique<ram::MergeInto>(NewR, Full));
      if (!Naive) {
        LoopBody.push_back(std::make_unique<ram::Swap>(
            DeltaRel.at(Decl->getName()), NewR));
      }
      LoopBody.push_back(std::make_unique<ram::Clear>(NewR));
    }

    Main.push_back(std::make_unique<ram::Loop>(
        std::make_unique<ram::Sequence>(std::move(LoopBody))));

    // Post-loop hygiene: the auxiliary relations hold no useful data.
    for (const auto *Decl : Stratum.Relations) {
      if (!Naive)
        Main.push_back(std::make_unique<ram::Clear>(
            DeltaRel.at(Decl->getName())));
      Main.push_back(
          std::make_unique<ram::Clear>(NewRel.at(Decl->getName())));
    }
  }

  //===--------------------------------------------------------------------===
  // Incremental-update program emission
  //===--------------------------------------------------------------------===

  /// Whether the program supports incremental (monotonic-additions-only)
  /// re-evaluation. Negation and aggregates are non-monotonic under
  /// additions (a previously derived tuple could become wrong), `$` would
  /// mint fresh ids for re-derived tuples, and eqrel closures cannot be
  /// driven from deltas (same reason recursive eqrel strata run naive).
  bool updateEligible() const {
    if (Options.ForceNaiveEvaluation)
      return false;
    for (const auto &Decl : AstProg.Relations)
      if (Decl->getStructure() == ast::StructureKind::Eqrel)
        return false;
    std::function<bool(const ast::Argument &)> ArgOk =
        [&](const ast::Argument &Arg) -> bool {
      switch (Arg.getKind()) {
      case ast::Argument::Kind::Counter:
      case ast::Argument::Kind::Aggregator:
        return false;
      case ast::Argument::Kind::Functor:
        for (const auto &Operand :
             static_cast<const ast::Functor &>(Arg).getArgs())
          if (!ArgOk(*Operand))
            return false;
        return true;
      default:
        return true;
      }
    };
    for (const auto &C : AstProg.Clauses) {
      for (const auto &Arg : C->getHead().getArgs())
        if (!ArgOk(*Arg))
          return false;
      for (const auto &Lit : C->getBody()) {
        switch (Lit->getKind()) {
        case ast::Literal::Kind::Negation:
          return false;
        case ast::Literal::Kind::Atom:
          for (const auto &Arg :
               static_cast<const ast::Atom &>(*Lit).getArgs())
            if (!ArgOk(*Arg))
              return false;
          break;
        case ast::Literal::Kind::Constraint: {
          const auto &Con = static_cast<const ast::Constraint &>(*Lit);
          if (!ArgOk(Con.getLhs()) || !ArgOk(Con.getRhs()))
            return false;
          break;
        }
        }
      }
    }
    return true;
  }

  /// Emits the incremental-update statement. Contract with the executing
  /// session: each genuinely new EDB tuple of a batch has been inserted
  /// into BOTH the full relation and its delta relation (so delta ⊆ full
  /// holds throughout); running the statement then derives every IDB
  /// consequence and leaves each delta relation cleared.
  ///
  /// Per stratum, in the main program's bottom-up order:
  ///  1. Pre-loop versions: for every clause and every body-atom position
  ///     whose relation is outside the stratum's SCC, one version reading
  ///     that position's delta (full everywhere else, NOT-in-full guard,
  ///     into new_H). Any new tuple has a derivation with at least one new
  ///     body tuple, so emitting one version per position covers them all;
  ///     set semantics make the overlap between versions harmless.
  ///  2. new_H is merged into both the full relation and delta_H (making
  ///     this stratum's additions visible downstream) and cleared.
  ///  3. Recursive strata re-enter the ordinary semi-naive loop with
  ///     delta_R holding only this batch's additions; added_R accumulates
  ///     every frontier so that, post-loop, delta_R can be rebuilt as the
  ///     stratum's total additions for downstream strata.
  /// The statement ends by clearing every delta so it is re-entrant.
  void emitUpdateProgram() {
    if (!updateEligible())
      return;

    // Auxiliary relations: reuse the main program's delta_/new_ pair where
    // the recursive strata already created them, create the missing ones
    // (plus the added_ accumulators for recursive relations).
    std::unordered_map<std::string, ram::Relation *> UDelta, UNew, UAdded;
    std::unordered_set<std::string> Recursive;
    for (const auto &Stratum : Info.Strata)
      if (Stratum.Recursive)
        for (const auto *Decl : Stratum.Relations)
          Recursive.insert(Decl->getName());
    for (const auto &Decl : AstProg.Relations) {
      const std::string &Name = Decl->getName();
      ram::Relation *Full = RelOf.at(Name);
      auto Aux = [&](const std::string &Prefix,
                     const std::unordered_map<std::string, ram::Relation *>
                         &MainAux) -> ram::Relation * {
        auto It = MainAux.find(Name);
        if (It != MainAux.end())
          return It->second;
        return Prog->addRelation(Prefix + Name, Full->getColumnTypes(),
                                 Full->getStructure());
      };
      UDelta[Name] = Aux("delta_", MainDeltaRel);
      UNew[Name] = Aux("new_", MainNewRel);
      if (Recursive.count(Name))
        UAdded[Name] = Prog->addRelation("added_" + Name,
                                         Full->getColumnTypes(),
                                         Full->getStructure());
      ram::Program::UpdateAux Names;
      Names.Delta = UDelta.at(Name)->getName();
      Names.New = UNew.at(Name)->getName();
      if (Recursive.count(Name))
        Names.Added = UAdded.at(Name)->getName();
      Prog->setUpdateAux(Name, std::move(Names));
    }
    // Make the update program's aux relations visible to the maintenance
    // emission: its DRed strata reuse the same delta_/new_ scratch pair,
    // and re-creating them here would collide on relation names.
    MainDeltaRel.insert(UDelta.begin(), UDelta.end());
    MainNewRel.insert(UNew.begin(), UNew.end());

    std::vector<ram::StmtPtr> Upd;
    for (std::size_t SI = 0; SI < Info.Strata.size(); ++SI) {
      const ast::Stratum &Stratum = Info.Strata[SI];
      const int StratumId = static_cast<int>(SI);
      std::unordered_set<std::string> Scc;
      for (const auto *Decl : Stratum.Relations)
        Scc.insert(Decl->getName());

      // 1. Pre-loop versions over non-SCC delta positions.
      for (const auto *Decl : Stratum.Relations) {
        ram::Relation *Full = RelOf.at(Decl->getName());
        ram::Relation *NewR = UNew.at(Decl->getName());
        for (const auto *C : clausesOf(Decl->getName())) {
          std::size_t AtomIdx = 0;
          for (const auto &Lit : C->getBody()) {
            if (Lit->getKind() != ast::Literal::Kind::Atom)
              continue;
            const std::size_t Idx = AtomIdx++;
            if (Scc.count(static_cast<const ast::Atom &>(*Lit).getName()))
              continue;
            RuleVariant Variant;
            Variant.AbsDeltaIdx = static_cast<int>(Idx);
            Variant.AbsDeltaMap = &UDelta;
            Variant.LabelSuffix = " [upd]";
            emitRule(*C, NewR, Scc, /*DeltaPos=*/-1, /*GuardRel=*/Full, {},
                     StratumId, Upd, Variant);
          }
        }
      }

      // 2. Publish the pre-loop additions.
      for (const auto *Decl : Stratum.Relations) {
        ram::Relation *Full = RelOf.at(Decl->getName());
        ram::Relation *NewR = UNew.at(Decl->getName());
        Upd.push_back(std::make_unique<ram::MergeInto>(NewR, Full));
        Upd.push_back(std::make_unique<ram::MergeInto>(
            NewR, UDelta.at(Decl->getName())));
        Upd.push_back(std::make_unique<ram::Clear>(NewR));
      }

      if (!Stratum.Recursive)
        continue;

      // 3. Semi-naive loop seeded from the batch deltas. added_R tracks
      // every frontier so delta_R can be rebuilt afterwards.
      for (const auto *Decl : Stratum.Relations)
        Upd.push_back(std::make_unique<ram::MergeInto>(
            UDelta.at(Decl->getName()), UAdded.at(Decl->getName())));

      std::vector<ram::StmtPtr> LoopBody;
      for (const auto *Decl : Stratum.Relations) {
        ram::Relation *Full = RelOf.at(Decl->getName());
        for (const auto *C : clausesOf(Decl->getName())) {
          if (!isRecursiveClause(*C, Scc))
            continue;
          int NumSccAtoms = 0;
          for (const auto &Lit : C->getBody())
            if (Lit->getKind() == ast::Literal::Kind::Atom &&
                Scc.count(static_cast<const ast::Atom &>(*Lit).getName()))
              ++NumSccAtoms;
          RuleVariant Variant;
          Variant.LabelSuffix = " [upd]";
          for (int Version = 0; Version < NumSccAtoms; ++Version)
            emitRule(*C, UNew.at(Decl->getName()), Scc, Version, Full,
                     UDelta, StratumId, LoopBody, Variant);
        }
      }

      ram::CondPtr ExitCond;
      for (const auto *Decl : Stratum.Relations) {
        ram::CondPtr Part = std::make_unique<ram::EmptinessCheck>(
            UNew.at(Decl->getName()));
        ExitCond = ExitCond ? std::make_unique<ram::Conjunction>(
                                  std::move(ExitCond), std::move(Part))
                            : std::move(Part);
      }
      LoopBody.push_back(std::make_unique<ram::Exit>(std::move(ExitCond)));

      for (const auto *Decl : Stratum.Relations) {
        ram::Relation *Full = RelOf.at(Decl->getName());
        ram::Relation *NewR = UNew.at(Decl->getName());
        LoopBody.push_back(std::make_unique<ram::MergeInto>(NewR, Full));
        LoopBody.push_back(std::make_unique<ram::MergeInto>(
            NewR, UAdded.at(Decl->getName())));
        LoopBody.push_back(std::make_unique<ram::Swap>(
            UDelta.at(Decl->getName()), NewR));
        LoopBody.push_back(std::make_unique<ram::Clear>(NewR));
      }
      Upd.push_back(std::make_unique<ram::Loop>(
          std::make_unique<ram::Sequence>(std::move(LoopBody))));

      // 4. delta_R := every addition of this stratum, for downstream use.
      for (const auto *Decl : Stratum.Relations) {
        ram::Relation *Delta = UDelta.at(Decl->getName());
        ram::Relation *Added = UAdded.at(Decl->getName());
        Upd.push_back(std::make_unique<ram::Clear>(Delta));
        Upd.push_back(std::make_unique<ram::MergeInto>(Added, Delta));
        Upd.push_back(std::make_unique<ram::Clear>(Added));
      }
    }

    // Re-entrancy: the next batch starts from empty deltas.
    for (const auto &Decl : AstProg.Relations)
      Upd.push_back(
          std::make_unique<ram::Clear>(UDelta.at(Decl->getName())));

    Prog->setUpdate(std::make_unique<ram::Sequence>(std::move(Upd)));
  }

  //===--------------------------------------------------------------------===
  // Incremental maintenance emission (mixed insert/retract batches)
  //===--------------------------------------------------------------------===
  //
  // The maintenance program processes one batch of net EDB insertions and
  // deletions (staged by the serving layer into delta_ins_E / delta_del_E)
  // through the strata in bottom-up order, exactly once per stratum: when a
  // stratum runs, every lower relation is already at its NEW (final) value
  // and the lower ins/del deltas describe the net change. Each stratum's
  // statement consumes those deltas and produces its own delta_ins_R /
  // delta_del_R before any downstream stratum runs.
  //
  // Strategy per stratum:
  //  * Counting (non-recursive): exact derivation counting. For a rule with
  //    n non-constraint literals, version i reads literal i's change
  //    (delta_ins with sign +, delta_del with sign -; a negated literal
  //    triggers with the signs flipped), literals before i at NEW (the
  //    plain relation) and literals after i at OLD. OLD is reconstructed
  //    per trailing literal as two disjoint subversions:
  //    (B AND NOT delta_ins_B) OR delta_del_B for positive atoms, and
  //    ((NOT B) OR delta_ins_B) AND NOT delta_del_B for negations. The
  //    versions project into the cadd_R/cdec_R multiplicity collectors;
  //    FOLD COUNTS nets them into the cnt_R support store and applies the
  //    0<->positive transitions to R, recording them in delta_ins_R /
  //    delta_del_R. Wildcards in positive atoms are renamed to fresh
  //    variables so each ground body instantiation counts once and the
  //    trailing NOT-in-ins guards test the scanned tuple, not a pattern.
  //  * DRed (recursive strata, and non-recursive ones whose negated
  //    literals carry wildcards, which make the count-trigger rewrite
  //    multiplicity-unsound): over-delete candidates into rederive_R with
  //    a semi-naive loop seeded from the lower deletion deltas (non-delta
  //    lower atoms over-approximated as NEW UNION delta_del, negations as
  //    (NOT N) OR delta_ins_N; a head-membership atom keeps candidates
  //    inside the old fixpoint), erase them, rederive survivors from the
  //    remaining tuples (candidate-restricted, so brand-new tuples are
  //    left to the insertion phase and correctly reach delta_ins_R), emit
  //    the net deletions with SUBTRACT, then run the insertion semi-naive
  //    loop seeded from the lower insertion deltas.
  //  * Reeval (eqrel, aggregates, eqrel body dependencies, or rules too
  //    wide for delta versions): no statement. The maintenance driver
  //    snapshots the stratum's relations, clears them, re-runs the
  //    recorded [MainBegin, MainEnd) span of the main Sequence and diffs
  //    old against new into delta_ins_R / delta_del_R. Scoped, counted and
  //    reported - never a silent whole-program restart.
  //
  // Programs using `$` get no maintenance at all (re-derivation would mint
  // fresh ids); the reason is recorded on the program.

  static std::string insName(const std::string &Rel) {
    return "delta_ins_" + Rel;
  }
  static std::string delName(const std::string &Rel) {
    return "delta_del_" + Rel;
  }

  /// Type of an argument node: synthesized (cloned) nodes resolve through
  /// the overlay, everything else through the semantic analysis.
  ast::TypeKind typeOfArg(const ast::Argument *Arg) const {
    auto It = TypeOverlay.find(Arg);
    return It == TypeOverlay.end() ? Info.typeOf(Arg) : It->second;
  }

  /// Registers \p Clone (and its operands, in lockstep) under the type the
  /// analysis derived for \p Orig. SemanticInfo keys types by node
  /// address, so cloned argument trees would otherwise degrade to the
  /// Number fallback and mistranslate symbol comparisons and typed
  /// intrinsics.
  void registerTypes(const ast::Argument &Orig, const ast::Argument &Clone) {
    TypeOverlay[&Clone] = typeOfArg(&Orig);
    if (Orig.getKind() == ast::Argument::Kind::Functor) {
      const auto &FO = static_cast<const ast::Functor &>(Orig);
      const auto &FC = static_cast<const ast::Functor &>(Clone);
      for (std::size_t I = 0; I < FO.getArgs().size(); ++I)
        registerTypes(*FO.getArgs()[I], *FC.getArgs()[I]);
    }
  }

  std::unique_ptr<ast::Argument> cloneArgMaint(const ast::Argument &Orig,
                                               bool RenameWildcards,
                                               int &Fresh) {
    if (RenameWildcards &&
        Orig.getKind() == ast::Argument::Kind::UnnamedVariable)
      return std::make_unique<ast::Variable>(
          "@maint_wc" + std::to_string(Fresh++), Orig.getLoc());
    std::unique_ptr<ast::Argument> Clone = Orig.clone();
    registerTypes(Orig, *Clone);
    return Clone;
  }

  std::unique_ptr<ast::Atom> cloneAtomMaint(const ast::Atom &Orig,
                                            std::string NewName,
                                            bool RenameWildcards,
                                            int &Fresh) {
    std::vector<std::unique_ptr<ast::Argument>> Args;
    for (const auto &Arg : Orig.getArgs())
      Args.push_back(cloneArgMaint(*Arg, RenameWildcards, Fresh));
    return std::make_unique<ast::Atom>(std::move(NewName), std::move(Args),
                                       Orig.getLoc());
  }

  /// How one non-constraint body literal is synthesized in a maintenance
  /// rule version.
  enum class LitMode {
    Keep,         ///< As-is (the current state of its relation).
    ScratchDelta, ///< Positive atom over the semi-naive scratch delta_B.
    InsScan,      ///< Positive atom over delta_ins_B (negations: the
                  ///< literal is replaced by the positive scan).
    DelScan,      ///< Positive atom over delta_del_B.
    OldKeep,      ///< Counting trailing atom at OLD: B plus a NOT-in-
                  ///< delta_ins_B guard over the same arguments.
    OldDel,       ///< Counting trailing atom at OLD: delta_del_B scan.
    NegOldKeep,   ///< Counting trailing negation at OLD: NOT B plus a
                  ///< NOT-in-delta_del_B guard.
    NegOldIns,    ///< Counting trailing negation at OLD: positive
                  ///< delta_ins_B scan plus a NOT-in-delta_del_B guard.
  };

  /// Builds one synthesized maintenance rule version of \p C. \p Modes is
  /// aligned with the non-constraint body literals in source order;
  /// constraints are copied through. \p PrependRel / \p AppendRel, when
  /// non-empty, add a positive atom over the head's arguments at the front
  /// or back of the body (the DRed candidate and head-membership filters).
  /// \p PivotLit, when >= 0, names the literal position whose delta scan
  /// seeds this version: its synthesized atom is hoisted to the front of
  /// the body so the join is driven by the (usually tiny, often empty)
  /// delta instead of a full scan of the leading Keep literals — the
  /// difference between per-batch cost proportional to the change and
  /// proportional to the database. The hoist is pure reordering of a
  /// commutative conjunction: the satisfying assignments (and hence
  /// counting multiplicities) are unchanged.
  /// The clause is kept alive for the translator's lifetime so the type
  /// overlay's node addresses stay unique.
  const ast::Clause *synthesizeMaintClause(const ast::Clause &C,
                                           const std::vector<LitMode> &Modes,
                                           bool RenameWildcards,
                                           const std::string &PrependRel,
                                           const std::string &AppendRel,
                                           int PivotLit = -1) {
    int Fresh = 0;
    std::vector<std::unique_ptr<ast::Literal>> Body;
    std::vector<std::unique_ptr<ast::Literal>> Guards;
    int PivotBodyIdx = -1;
    if (!PrependRel.empty())
      Body.push_back(cloneAtomMaint(C.getHead(), PrependRel, false, Fresh));
    std::size_t LitIdx = 0;
    for (const auto &Lit : C.getBody()) {
      if (Lit->getKind() == ast::Literal::Kind::Constraint) {
        const auto &Con = static_cast<const ast::Constraint &>(*Lit);
        std::unique_ptr<ast::Argument> Lhs = Con.getLhs().clone();
        registerTypes(Con.getLhs(), *Lhs);
        std::unique_ptr<ast::Argument> Rhs = Con.getRhs().clone();
        registerTypes(Con.getRhs(), *Rhs);
        Body.push_back(std::make_unique<ast::Constraint>(
            Con.getOp(), std::move(Lhs), std::move(Rhs), Con.getLoc()));
        continue;
      }
      const int ThisLit = static_cast<int>(LitIdx);
      const std::size_t BodyBefore = Body.size();
      const LitMode Mode = Modes[LitIdx++];
      if (ThisLit == PivotLit)
        PivotBodyIdx = static_cast<int>(BodyBefore);
      if (Lit->getKind() == ast::Literal::Kind::Atom) {
        const auto &A = static_cast<const ast::Atom &>(*Lit);
        switch (Mode) {
        case LitMode::Keep:
          Body.push_back(
              cloneAtomMaint(A, A.getName(), RenameWildcards, Fresh));
          break;
        case LitMode::ScratchDelta:
          Body.push_back(cloneAtomMaint(A, "delta_" + A.getName(),
                                        RenameWildcards, Fresh));
          break;
        case LitMode::InsScan:
          Body.push_back(
              cloneAtomMaint(A, insName(A.getName()), RenameWildcards,
                             Fresh));
          break;
        case LitMode::DelScan:
        case LitMode::OldDel:
          Body.push_back(
              cloneAtomMaint(A, delName(A.getName()), RenameWildcards,
                             Fresh));
          break;
        case LitMode::OldKeep: {
          // The guard must test the exact scanned tuple, so its arguments
          // are cloned from the (wildcard-renamed) atom, not the original.
          std::unique_ptr<ast::Atom> Atom =
              cloneAtomMaint(A, A.getName(), RenameWildcards, Fresh);
          Guards.push_back(std::make_unique<ast::Negation>(
              cloneAtomMaint(*Atom, insName(A.getName()), false, Fresh),
              A.getLoc()));
          Body.push_back(std::move(Atom));
          break;
        }
        case LitMode::NegOldKeep:
        case LitMode::NegOldIns:
          unreachable("negation mode on a positive atom");
        }
      } else {
        const auto &A = static_cast<const ast::Negation &>(*Lit).getAtom();
        switch (Mode) {
        case LitMode::Keep:
          Body.push_back(std::make_unique<ast::Negation>(
              cloneAtomMaint(A, A.getName(), false, Fresh), Lit->getLoc()));
          break;
        case LitMode::InsScan:
          Body.push_back(cloneAtomMaint(A, insName(A.getName()), false,
                                        Fresh));
          break;
        case LitMode::DelScan:
          Body.push_back(cloneAtomMaint(A, delName(A.getName()), false,
                                        Fresh));
          break;
        case LitMode::NegOldKeep:
          Body.push_back(std::make_unique<ast::Negation>(
              cloneAtomMaint(A, A.getName(), false, Fresh), Lit->getLoc()));
          Guards.push_back(std::make_unique<ast::Negation>(
              cloneAtomMaint(A, delName(A.getName()), false, Fresh),
              Lit->getLoc()));
          break;
        case LitMode::NegOldIns:
          Body.push_back(
              cloneAtomMaint(A, insName(A.getName()), false, Fresh));
          Guards.push_back(std::make_unique<ast::Negation>(
              cloneAtomMaint(A, delName(A.getName()), false, Fresh),
              Lit->getLoc()));
          break;
        case LitMode::ScratchDelta:
        case LitMode::OldKeep:
        case LitMode::OldDel:
          unreachable("atom mode on a negation");
        }
      }
    }
    if (PivotBodyIdx >= 0) {
      // Hoist the delta pivot in front of every source-order literal (but
      // after the PrependRel seed, which is itself the driving scan).
      const auto Front =
          Body.begin() + (PrependRel.empty() ? 0 : 1);
      if (Body.begin() + PivotBodyIdx > Front)
        std::rotate(Front, Body.begin() + PivotBodyIdx,
                    Body.begin() + PivotBodyIdx + 1);
    }
    for (auto &G : Guards)
      Body.push_back(std::move(G));
    if (!AppendRel.empty())
      Body.push_back(cloneAtomMaint(C.getHead(), AppendRel, false, Fresh));
    std::unique_ptr<ast::Atom> Head =
        cloneAtomMaint(C.getHead(), C.getHead().getName(), false, Fresh);
    SynthClauses.push_back(std::make_unique<ast::Clause>(
        std::move(Head), std::move(Body), C.getLoc()));
    return SynthClauses.back().get();
  }

  /// The non-constraint body literals of a clause, in source order.
  static std::vector<const ast::Literal *>
  maintLiterals(const ast::Clause &C) {
    std::vector<const ast::Literal *> Lits;
    for (const auto &Lit : C.getBody())
      if (Lit->getKind() != ast::Literal::Kind::Constraint)
        Lits.push_back(Lit.get());
    return Lits;
  }

  /// Walks every argument tree of \p C (head, atoms, negations, constraint
  /// sides, aggregate internals).
  static void forEachClauseArg(
      const ast::Clause &C,
      const std::function<void(const ast::Argument &)> &Fn) {
    std::function<void(const ast::Argument &)> Walk;
    std::function<void(const ast::Literal &)> WalkLit;
    Walk = [&](const ast::Argument &Arg) {
      Fn(Arg);
      if (Arg.getKind() == ast::Argument::Kind::Functor) {
        for (const auto &Operand :
             static_cast<const ast::Functor &>(Arg).getArgs())
          Walk(*Operand);
      } else if (Arg.getKind() == ast::Argument::Kind::Aggregator) {
        const auto &Agg = static_cast<const ast::Aggregator &>(Arg);
        if (Agg.getTarget())
          Walk(*Agg.getTarget());
        for (const auto &Lit : Agg.getBody())
          WalkLit(*Lit);
      }
    };
    WalkLit = [&](const ast::Literal &Lit) {
      switch (Lit.getKind()) {
      case ast::Literal::Kind::Atom:
        for (const auto &Arg : static_cast<const ast::Atom &>(Lit).getArgs())
          Walk(*Arg);
        break;
      case ast::Literal::Kind::Negation:
        for (const auto &Arg :
             static_cast<const ast::Negation &>(Lit).getAtom().getArgs())
          Walk(*Arg);
        break;
      case ast::Literal::Kind::Constraint: {
        const auto &Con = static_cast<const ast::Constraint &>(Lit);
        Walk(Con.getLhs());
        Walk(Con.getRhs());
        break;
      }
      }
    };
    for (const auto &Arg : C.getHead().getArgs())
      Walk(*Arg);
    for (const auto &Lit : C.getBody())
      WalkLit(*Lit);
  }

  void emitMaintenance() {
    using MaintStrategy = ram::Program::MaintStrategy;
    using MaintStratum = ram::Program::MaintStratum;

    if (Options.ForceNaiveEvaluation) {
      Prog->setMaintIneligibleReason("naive evaluation forced");
      return;
    }
    for (const auto &C : AstProg.Clauses) {
      bool UsesCounter = false;
      forEachClauseArg(*C, [&](const ast::Argument &Arg) {
        UsesCounter |= Arg.getKind() == ast::Argument::Kind::Counter;
      });
      if (UsesCounter) {
        Prog->setMaintIneligibleReason(
            "program uses the '$' counter (re-derivation would mint fresh "
            "ids)");
        return;
      }
    }
    for (const auto &Decl : AstProg.Relations) {
      if (Decl->isInput() && !clausesOf(Decl->getName()).empty()) {
        Prog->setMaintIneligibleReason(
            "relation '" + Decl->getName() +
            "' is both .input and derived by rules");
        return;
      }
    }

    // Per-stratum strategy classification.
    struct Plan {
      MaintStrategy Strategy = MaintStrategy::Counting;
      std::string Reason;
      bool Edb = false;
    };
    std::unordered_set<std::string> Eqrels;
    for (const auto &Decl : AstProg.Relations)
      if (Decl->getStructure() == ast::StructureKind::Eqrel)
        Eqrels.insert(Decl->getName());
    std::vector<Plan> Plans(Info.Strata.size());
    for (std::size_t SI = 0; SI < Info.Strata.size(); ++SI) {
      const ast::Stratum &Stratum = Info.Strata[SI];
      Plan &P = Plans[SI];
      bool HasClauses = false, HasEqrel = false, HasAgg = false;
      bool WildcardNeg = false, TooWide = false, EqrelDep = false;
      for (const auto *Decl : Stratum.Relations) {
        if (Decl->getStructure() == ast::StructureKind::Eqrel)
          HasEqrel = true;
        for (const auto *C : clausesOf(Decl->getName())) {
          HasClauses = true;
          forEachClauseArg(*C, [&](const ast::Argument &Arg) {
            HasAgg |= Arg.getKind() == ast::Argument::Kind::Aggregator;
          });
          std::size_t NumLits = 0;
          for (const auto &Lit : C->getBody()) {
            if (Lit->getKind() == ast::Literal::Kind::Constraint)
              continue;
            ++NumLits;
            const ast::Atom &A =
                Lit->getKind() == ast::Literal::Kind::Negation
                    ? static_cast<const ast::Negation &>(*Lit).getAtom()
                    : static_cast<const ast::Atom &>(*Lit);
            if (Eqrels.count(A.getName()))
              EqrelDep = true;
            if (Lit->getKind() == ast::Literal::Kind::Negation)
              for (const auto &Arg : A.getArgs())
                WildcardNeg |=
                    Arg->getKind() == ast::Argument::Kind::UnnamedVariable;
          }
          // The OLD reconstruction and DRed availability splits emit up to
          // 2^(literals - 1) subversions per delta position; cap the width.
          TooWide |= NumLits > 6;
        }
      }
      if (!HasClauses) {
        P.Edb = true;
        continue;
      }
      if (HasEqrel) {
        P.Strategy = MaintStrategy::Reeval;
        P.Reason = "eqrel closure cannot be maintained from deltas";
      } else if (HasAgg) {
        P.Strategy = MaintStrategy::Reeval;
        P.Reason = "aggregates are non-monotonic under deletions";
      } else if (EqrelDep) {
        P.Strategy = MaintStrategy::Reeval;
        P.Reason = "body depends on an equivalence relation";
      } else if (TooWide) {
        P.Strategy = MaintStrategy::Reeval;
        P.Reason = "rule body too wide for delta versions";
      } else if (Stratum.Recursive || Stratum.Relations.size() > 1 ||
                 WildcardNeg) {
        P.Strategy = MaintStrategy::DRed;
      } else {
        P.Strategy = MaintStrategy::Counting;
      }
    }

    // Aux relations: net ins/del deltas for every declared relation (the
    // EDB staging area and the inter-stratum interface), the DRed
    // over-deletion sets and scratch pairs, and the counting support
    // stores with their per-batch collectors.
    std::unordered_map<std::string, ram::Relation *> Ins, Del, Rederive;
    std::unordered_map<std::string, ram::Relation *> Cnt, CAdd, CDec;
    for (const auto &Decl : AstProg.Relations) {
      const std::string &Name = Decl->getName();
      ram::Relation *Full = RelOf.at(Name);
      const ram::StructureKind AuxStructure =
          Full->getStructure() == ram::StructureKind::Eqrel
              ? ram::StructureKind::Btree
              : Full->getStructure();
      Ins[Name] = Prog->addRelation(insName(Name), Full->getColumnTypes(),
                                    AuxStructure);
      Del[Name] = Prog->addRelation(delName(Name), Full->getColumnTypes(),
                                    AuxStructure);
      RelOf[insName(Name)] = Ins.at(Name);
      RelOf[delName(Name)] = Del.at(Name);
    }
    auto EnsureScratch =
        [&](const std::string &Name, const char *Prefix,
            std::unordered_map<std::string, ram::Relation *> &Cache)
        -> ram::Relation * {
      auto It = Cache.find(Name);
      if (It == Cache.end()) {
        ram::Relation *Full = RelOf.at(Name);
        const ram::StructureKind AuxStructure =
            Full->getStructure() == ram::StructureKind::Eqrel
                ? ram::StructureKind::Btree
                : Full->getStructure();
        It = Cache
                 .emplace(Name,
                          Prog->addRelation(Prefix + Name,
                                            Full->getColumnTypes(),
                                            AuxStructure))
                 .first;
      }
      RelOf[Prefix + Name] = It->second;
      return It->second;
    };
    for (std::size_t SI = 0; SI < Info.Strata.size(); ++SI) {
      const Plan &P = Plans[SI];
      if (P.Edb)
        continue;
      for (const auto *Decl : Info.Strata[SI].Relations) {
        const std::string &Name = Decl->getName();
        ram::Relation *Full = RelOf.at(Name);
        if (P.Strategy == MaintStrategy::DRed) {
          Rederive[Name] = EnsureScratch(Name, "rederive_", Rederive);
          EnsureScratch(Name, "delta_", MainDeltaRel);
          EnsureScratch(Name, "new_", MainNewRel);
        } else if (P.Strategy == MaintStrategy::Counting) {
          Cnt[Name] = Prog->addRelation("cnt_" + Name,
                                        Full->getColumnTypes(),
                                        ram::StructureKind::Counts);
          CAdd[Name] = Prog->addRelation("cadd_" + Name,
                                         Full->getColumnTypes(),
                                         ram::StructureKind::Counts);
          CDec[Name] = Prog->addRelation("cdec_" + Name,
                                         Full->getColumnTypes(),
                                         ram::StructureKind::Counts);
        }
      }
    }
    for (const auto &Decl : AstProg.Relations) {
      const std::string &Name = Decl->getName();
      ram::Program::MaintAux Names;
      Names.Ins = Ins.at(Name)->getName();
      Names.Del = Del.at(Name)->getName();
      if (Rederive.count(Name))
        Names.Rederive = Rederive.at(Name)->getName();
      if (Cnt.count(Name)) {
        Names.Support = Cnt.at(Name)->getName();
        Names.CntAdd = CAdd.at(Name)->getName();
        Names.CntDec = CDec.at(Name)->getName();
      }
      Prog->setMaintAux(Name, std::move(Names));
    }

    // Prologue: apply the staged EDB nets to the clause-less relations.
    std::vector<ram::StmtPtr> Pro;
    for (const auto &Decl : AstProg.Relations) {
      const std::string &Name = Decl->getName();
      if (!clausesOf(Name).empty())
        continue;
      Pro.push_back(std::make_unique<ram::Erase>(Del.at(Name),
                                                 RelOf.at(Name)));
      Pro.push_back(std::make_unique<ram::MergeInto>(Ins.at(Name),
                                                     RelOf.at(Name)));
    }
    Prog->setMaintPrologue(
        std::make_unique<ram::Sequence>(std::move(Pro)));

    // Per-stratum statements.
    std::vector<MaintStratum> Strata;
    std::vector<ram::StmtPtr> InitRules;
    for (std::size_t SI = 0; SI < Info.Strata.size(); ++SI) {
      const Plan &P = Plans[SI];
      if (P.Edb)
        continue;
      MaintStratum MS;
      MS.Strategy = P.Strategy;
      MS.FallbackReason = P.Reason;
      for (const auto *Decl : Info.Strata[SI].Relations)
        MS.Relations.push_back(Decl->getName());
      switch (P.Strategy) {
      case MaintStrategy::Counting:
        MS.Stmt = emitCountingStratum(Info.Strata[SI],
                                      static_cast<int>(SI), Cnt, CAdd,
                                      CDec, Ins, Del, InitRules);
        break;
      case MaintStrategy::DRed:
        MS.Stmt = emitDRedStratum(Info.Strata[SI], static_cast<int>(SI),
                                  Rederive, Ins, Del);
        break;
      case MaintStrategy::Reeval:
        MS.MainBegin = StratumSpans[SI].first;
        MS.MainEnd = StratumSpans[SI].second;
        break;
      }
      Strata.push_back(std::move(MS));
    }
    if (!InitRules.empty())
      Prog->setCountInit(
          std::make_unique<ram::Sequence>(std::move(InitRules)));

    // Epilogue: clear every staging/interface aux so the next batch starts
    // clean (run after the serving layer has harvested telemetry).
    std::vector<ram::StmtPtr> Epi;
    for (const auto &Decl : AstProg.Relations) {
      const std::string &Name = Decl->getName();
      Epi.push_back(std::make_unique<ram::Clear>(Ins.at(Name)));
      Epi.push_back(std::make_unique<ram::Clear>(Del.at(Name)));
      if (Rederive.count(Name))
        Epi.push_back(std::make_unique<ram::Clear>(Rederive.at(Name)));
    }
    Prog->setMaintEpilogue(
        std::make_unique<ram::Sequence>(std::move(Epi)));

    Prog->setMaintStrata(std::move(Strata));
  }

  /// Emits the counting-stratum statement (signed delta versions into the
  /// cadd/cdec collectors, FOLD COUNTS, collector clears) and appends the
  /// stratum's count-bootstrap rules to \p InitRules.
  ram::StmtPtr emitCountingStratum(
      const ast::Stratum &Stratum, int StratumId,
      std::unordered_map<std::string, ram::Relation *> &Cnt,
      std::unordered_map<std::string, ram::Relation *> &CAdd,
      std::unordered_map<std::string, ram::Relation *> &CDec,
      std::unordered_map<std::string, ram::Relation *> &Ins,
      std::unordered_map<std::string, ram::Relation *> &Del,
      std::vector<ram::StmtPtr> &InitRules) {
    std::vector<ram::StmtPtr> Out;
    for (const auto *Decl : Stratum.Relations) {
      const std::string &Name = Decl->getName();
      for (const auto *C : clausesOf(Name)) {
        const std::vector<const ast::Literal *> Lits = maintLiterals(*C);
        // Bootstrap version: every literal at the current state, into the
        // support store (multiplicities accumulate per derivation).
        {
          std::vector<LitMode> Modes(Lits.size(), LitMode::Keep);
          RuleVariant V;
          V.LabelSuffix = " [cnt-init]";
          emitRule(*synthesizeMaintClause(*C, Modes, /*RenameWildcards=*/true,
                                          "", ""),
                   Cnt.at(Name), {}, -1, nullptr, {}, StratumId, InitRules,
                   V);
        }
        // Signed delta versions: telescoping over the literal positions.
        for (std::size_t D = 0; D < Lits.size(); ++D) {
          const std::size_t Trailing = Lits.size() - D - 1;
          const bool DNeg =
              Lits[D]->getKind() == ast::Literal::Kind::Negation;
          for (std::uint32_t Mask = 0; Mask < (1u << Trailing); ++Mask) {
            for (int Sign = 0; Sign < 2; ++Sign) {
              std::vector<LitMode> Modes(Lits.size(), LitMode::Keep);
              // A negated literal flips truth when its relation moves the
              // other way: delta_del makes NOT B newly true.
              Modes[D] = Sign == 0
                             ? (DNeg ? LitMode::DelScan : LitMode::InsScan)
                             : (DNeg ? LitMode::InsScan : LitMode::DelScan);
              for (std::size_t T = 0; T < Trailing; ++T) {
                const std::size_t Pos = D + 1 + T;
                const bool Alt = (Mask >> T) & 1;
                const bool Neg =
                    Lits[Pos]->getKind() == ast::Literal::Kind::Negation;
                Modes[Pos] = Neg ? (Alt ? LitMode::NegOldIns
                                        : LitMode::NegOldKeep)
                                 : (Alt ? LitMode::OldDel
                                        : LitMode::OldKeep);
              }
              RuleVariant V;
              V.LabelSuffix = Sign == 0 ? " [cadd]" : " [cdec]";
              V.ForceMaxBound = true;
              emitRule(*synthesizeMaintClause(*C, Modes, true, "", "",
                                              static_cast<int>(D)),
                       Sign == 0 ? CAdd.at(Name) : CDec.at(Name), {}, -1,
                       nullptr, {}, StratumId, Out, V);
            }
          }
        }
      }
    }
    for (const auto *Decl : Stratum.Relations) {
      const std::string &Name = Decl->getName();
      Out.push_back(std::make_unique<ram::FoldCounts>(
          CAdd.at(Name), CDec.at(Name), Cnt.at(Name), RelOf.at(Name),
          Ins.at(Name), Del.at(Name)));
      Out.push_back(std::make_unique<ram::Clear>(CAdd.at(Name)));
      Out.push_back(std::make_unique<ram::Clear>(CDec.at(Name)));
    }
    return std::make_unique<ram::Sequence>(std::move(Out));
  }

  /// Emits the DRed stratum statement: over-delete, erase, rederive,
  /// subtract, insert.
  ram::StmtPtr
  emitDRedStratum(const ast::Stratum &Stratum, int StratumId,
                  std::unordered_map<std::string, ram::Relation *> &Rederive,
                  std::unordered_map<std::string, ram::Relation *> &Ins,
                  std::unordered_map<std::string, ram::Relation *> &Del) {
    std::unordered_set<std::string> Scc;
    for (const auto *Decl : Stratum.Relations)
      Scc.insert(Decl->getName());

    std::vector<ram::StmtPtr> Out;
    auto ClearScratch = [&] {
      for (const auto *Decl : Stratum.Relations) {
        Out.push_back(std::make_unique<ram::Clear>(
            MainDeltaRel.at(Decl->getName())));
        Out.push_back(std::make_unique<ram::Clear>(
            MainNewRel.at(Decl->getName())));
      }
    };
    auto ExitCond = [&]() -> ram::CondPtr {
      ram::CondPtr Cond;
      for (const auto *Decl : Stratum.Relations) {
        ram::CondPtr Part = std::make_unique<ram::EmptinessCheck>(
            MainNewRel.at(Decl->getName()));
        Cond = Cond ? std::make_unique<ram::Conjunction>(std::move(Cond),
                                                         std::move(Part))
                    : std::move(Part);
      }
      return Cond;
    };
    // Publishes each member's frontier: new_R is merged into the phase's
    // accumulators, swapped into delta_R and cleared.
    auto Advance = [&](std::vector<ram::StmtPtr> &Dst,
                       const std::unordered_map<std::string,
                                                ram::Relation *> *Acc1,
                       const std::unordered_map<std::string,
                                                ram::Relation *> *Acc2) {
      for (const auto *Decl : Stratum.Relations) {
        const std::string &Name = Decl->getName();
        ram::Relation *NewR = MainNewRel.at(Name);
        if (Acc1)
          Dst.push_back(
              std::make_unique<ram::MergeInto>(NewR, Acc1->at(Name)));
        if (Acc2)
          Dst.push_back(
              std::make_unique<ram::MergeInto>(NewR, Acc2->at(Name)));
        Dst.push_back(std::make_unique<ram::Swap>(MainDeltaRel.at(Name),
                                                  NewR));
        Dst.push_back(std::make_unique<ram::Clear>(NewR));
      }
    };
    // Emits one phase: seed versions, frontier publication, then the
    // semi-naive loop over the SCC delta versions.
    auto Phase =
        [&](const std::function<void(std::vector<ram::StmtPtr> &, bool)>
                &EmitVersions,
            const std::unordered_map<std::string, ram::Relation *> *Acc1,
            const std::unordered_map<std::string, ram::Relation *> *Acc2) {
          ClearScratch();
          EmitVersions(Out, /*LoopBody=*/false);
          Advance(Out, Acc1, Acc2);
          std::vector<ram::StmtPtr> Body;
          EmitVersions(Body, /*LoopBody=*/true);
          Body.push_back(std::make_unique<ram::Exit>(ExitCond()));
          Advance(Body, Acc1, Acc2);
          Out.push_back(std::make_unique<ram::Loop>(
              std::make_unique<ram::Sequence>(std::move(Body))));
        };

    // Phase A: over-delete candidates into rederive_R. Non-delta lower
    // atoms are over-approximated at NEW UNION delta_del (mask splits),
    // negations at (NOT N) OR delta_ins_N; SCC atoms read the still-
    // unerased (OLD) relations; a head-membership atom keeps candidates
    // inside the old fixpoint.
    Phase(
        [&](std::vector<ram::StmtPtr> &Dst, bool LoopBody) {
          for (const auto *Decl : Stratum.Relations) {
            const std::string &Name = Decl->getName();
            for (const auto *C : clausesOf(Name)) {
              const std::vector<const ast::Literal *> Lits =
                  maintLiterals(*C);
              std::vector<std::size_t> Lower;
              for (std::size_t I = 0; I < Lits.size(); ++I) {
                const bool SccAtom =
                    Lits[I]->getKind() == ast::Literal::Kind::Atom &&
                    Scc.count(
                        static_cast<const ast::Atom &>(*Lits[I]).getName());
                if (!SccAtom)
                  Lower.push_back(I);
              }
              for (std::size_t D = 0; D < Lits.size(); ++D) {
                const bool DIsScc =
                    Lits[D]->getKind() == ast::Literal::Kind::Atom &&
                    Scc.count(
                        static_cast<const ast::Atom &>(*Lits[D]).getName());
                if (DIsScc != LoopBody)
                  continue;
                std::vector<std::size_t> Maskable;
                for (std::size_t I : Lower)
                  if (I != D)
                    Maskable.push_back(I);
                for (std::uint32_t Mask = 0;
                     Mask < (1u << Maskable.size()); ++Mask) {
                  std::vector<LitMode> Modes(Lits.size(), LitMode::Keep);
                  Modes[D] =
                      LoopBody
                          ? LitMode::ScratchDelta
                          : (Lits[D]->getKind() ==
                                     ast::Literal::Kind::Negation
                                 ? LitMode::InsScan
                                 : LitMode::DelScan);
                  for (std::size_t B = 0; B < Maskable.size(); ++B) {
                    if (!((Mask >> B) & 1))
                      continue;
                    const std::size_t Pos = Maskable[B];
                    Modes[Pos] = Lits[Pos]->getKind() ==
                                         ast::Literal::Kind::Negation
                                     ? LitMode::InsScan
                                     : LitMode::DelScan;
                  }
                  RuleVariant V;
                  V.LabelSuffix = " [odel]";
                  V.ForceMaxBound = true;
                  emitRule(*synthesizeMaintClause(*C, Modes, false, "",
                                                  Name,
                                                  static_cast<int>(D)),
                           MainNewRel.at(Name), {}, -1, Rederive.at(Name),
                           {}, StratumId, Dst, V);
                }
              }
            }
          }
        },
        &Rederive, nullptr);

    // Phase B: apply the over-deletions.
    for (const auto *Decl : Stratum.Relations)
      Out.push_back(std::make_unique<ram::Erase>(
          Rederive.at(Decl->getName()), RelOf.at(Decl->getName())));

    // Phase C: rederive candidates from the survivors (and the final
    // lower state). The candidate restriction keeps brand-new tuples out:
    // they belong to the insertion phase, which records them in
    // delta_ins_R for downstream strata.
    Phase(
        [&](std::vector<ram::StmtPtr> &Dst, bool LoopBody) {
          for (const auto *Decl : Stratum.Relations) {
            const std::string &Name = Decl->getName();
            for (const auto *C : clausesOf(Name)) {
              const std::vector<const ast::Literal *> Lits =
                  maintLiterals(*C);
              if (!LoopBody) {
                std::vector<LitMode> Modes(Lits.size(), LitMode::Keep);
                RuleVariant V;
                V.LabelSuffix = " [rdrv]";
                // The rederive candidate atom sits at position 0; MaxBound
                // chains the body off its bindings so unconnected literals
                // are not free-scanned once per candidate.
                V.ForceMaxBound = true;
                emitRule(*synthesizeMaintClause(
                             *C, Modes, false,
                             Rederive.at(Name)->getName(), ""),
                         MainNewRel.at(Name), {}, -1, RelOf.at(Name), {},
                         StratumId, Dst, V);
                continue;
              }
              for (std::size_t D = 0; D < Lits.size(); ++D) {
                const bool DIsScc =
                    Lits[D]->getKind() == ast::Literal::Kind::Atom &&
                    Scc.count(
                        static_cast<const ast::Atom &>(*Lits[D]).getName());
                if (!DIsScc)
                  continue;
                std::vector<LitMode> Modes(Lits.size(), LitMode::Keep);
                Modes[D] = LitMode::ScratchDelta;
                RuleVariant V;
                V.LabelSuffix = " [rdrv]";
                V.ForceMaxBound = true;
                emitRule(*synthesizeMaintClause(
                             *C, Modes, false, "",
                             Rederive.at(Name)->getName(),
                             static_cast<int>(D)),
                         MainNewRel.at(Name), {}, -1, RelOf.at(Name), {},
                         StratumId, Dst, V);
              }
            }
          }
        },
        &RelOf, nullptr);

    // Phase D: net deletions for downstream strata.
    for (const auto *Decl : Stratum.Relations)
      Out.push_back(std::make_unique<ram::SubtractInto>(
          Rederive.at(Decl->getName()), RelOf.at(Decl->getName()),
          Del.at(Decl->getName())));

    // Phase E: insertion semi-naive loop seeded from the lower insertion
    // deltas (a lower deletion seeds through a negated literal). Frontiers
    // accumulate into delta_ins_R as well as R.
    Phase(
        [&](std::vector<ram::StmtPtr> &Dst, bool LoopBody) {
          for (const auto *Decl : Stratum.Relations) {
            const std::string &Name = Decl->getName();
            for (const auto *C : clausesOf(Name)) {
              const std::vector<const ast::Literal *> Lits =
                  maintLiterals(*C);
              for (std::size_t D = 0; D < Lits.size(); ++D) {
                const bool DIsScc =
                    Lits[D]->getKind() == ast::Literal::Kind::Atom &&
                    Scc.count(
                        static_cast<const ast::Atom &>(*Lits[D]).getName());
                if (DIsScc != LoopBody)
                  continue;
                std::vector<LitMode> Modes(Lits.size(), LitMode::Keep);
                Modes[D] =
                    LoopBody ? LitMode::ScratchDelta
                             : (Lits[D]->getKind() ==
                                        ast::Literal::Kind::Negation
                                    ? LitMode::DelScan
                                    : LitMode::InsScan);
                RuleVariant V;
                V.LabelSuffix = " [ins]";
                V.ForceMaxBound = true;
                emitRule(*synthesizeMaintClause(*C, Modes, false, "", "",
                                                static_cast<int>(D)),
                         MainNewRel.at(Name), {}, -1, RelOf.at(Name), {},
                         StratumId, Dst, V);
              }
            }
          }
        },
        &RelOf, &Ins);

    // Leave the scratch pair empty for the next batch.
    ClearScratch();
    return std::make_unique<ram::Sequence>(std::move(Out));
  }

  std::vector<const ast::Clause *>
  clausesOf(const std::string &Name) const {
    auto It = Info.ClausesOf.find(Name);
    return It == Info.ClausesOf.end() ? std::vector<const ast::Clause *>{}
                                      : It->second;
  }

  //===--------------------------------------------------------------------===
  // Rule emission
  //===--------------------------------------------------------------------===

  /// Non-default rule-version shapes used by the update program: \p
  /// AbsDeltaIdx, when >= 0, makes the atom at that absolute body position
  /// read the delta of its relation from \p AbsDeltaMap (any relation, not
  /// just SCC members); \p LabelSuffix keeps update-rule profile labels
  /// distinct from the main program's.
  struct RuleVariant {
    int AbsDeltaIdx;
    const std::unordered_map<std::string, ram::Relation *> *AbsDeltaMap;
    const char *LabelSuffix;
    /// Plans the body with MaxBound SIPS regardless of the session
    /// strategy. Maintenance delta rules set this: their pivot atom sits
    /// at source position 0 (synthesizeMaintClause hoists it) and the
    /// greedy bound-columns order chains the remaining atoms off the
    /// pivot's bindings instead of free-scanning an unconnected leading
    /// literal per delta tuple.
    bool ForceMaxBound;
    // Explicitly defaulted arguments instead of member initializers: the
    // latter cannot feed a default argument of the enclosing class.
    RuleVariant(int AbsDeltaIdx = -1,
                const std::unordered_map<std::string, ram::Relation *>
                    *AbsDeltaMap = nullptr,
                const char *LabelSuffix = "", bool ForceMaxBound = false)
        : AbsDeltaIdx(AbsDeltaIdx), AbsDeltaMap(AbsDeltaMap),
          LabelSuffix(LabelSuffix), ForceMaxBound(ForceMaxBound) {}
  };

  /// Translates one rule version.
  ///
  /// \p Target is the relation receiving head insertions (new_R inside a
  /// fixpoint). \p DeltaPos, when >= 0, is the index (among SCC atoms) of
  /// the occurrence that reads its delta relation. \p GuardRel, when set,
  /// adds a NOT-in-GuardRel filter before insertion (semi-naive dedup).
  void emitRule(const ast::Clause &C, ram::Relation *Target,
                const std::unordered_set<std::string> &Scc, int DeltaPos,
                ram::Relation *GuardRel,
                const std::unordered_map<std::string, ram::Relation *>
                    &DeltaRel,
                int StratumId, std::vector<ram::StmtPtr> &Out,
                const RuleVariant &Variant = RuleVariant()) {
    ClauseState State(*this, C, Target, Scc, DeltaPos, GuardRel, DeltaRel,
                      Variant);
    ram::OpPtr Root = State.build();
    if (!Root)
      return;

    ram::StmtPtr Stmt = std::make_unique<ram::Query>(std::move(Root));
    if (Options.EnableProfiling) {
      std::string Label = C.toString();
      if (DeltaPos >= 0)
        Label += " [v" + std::to_string(DeltaPos) + "]";
      else if (Variant.AbsDeltaIdx >= 0)
        Label += " [u" + std::to_string(Variant.AbsDeltaIdx) + "]";
      Label += Variant.LabelSuffix;
      ram::LogTimer::RuleInfo Info;
      Info.Stratum = StratumId;
      Info.Relation = C.getHead().getName();
      Info.Version = DeltaPos >= 0 ? DeltaPos : Variant.AbsDeltaIdx;
      // GuardRel is set exactly for rules inside a fixpoint loop (both the
      // semi-naive versions and naive loop bodies).
      Info.Recursive = GuardRel != nullptr;
      Info.Target = Target;
      Info.Sips = sipsStrategyName(Options.Sips);
      Info.AtomOrder.assign(State.atomOrder().begin(),
                            State.atomOrder().end());
      Stmt = std::make_unique<ram::LogTimer>(
          std::move(Label), std::move(Info), std::move(Stmt));
    }
    Out.push_back(std::move(Stmt));
  }

  /// Per-rule translation state: variable bindings, literal scheduling and
  /// tuple-id assignment.
  class ClauseState {
  public:
    ClauseState(Translator &T, const ast::Clause &C, ram::Relation *Target,
                const std::unordered_set<std::string> &Scc, int DeltaPos,
                ram::Relation *GuardRel,
                const std::unordered_map<std::string, ram::Relation *>
                    &DeltaRel,
                const RuleVariant &Variant)
        : T(T), C(C), Target(Target), Scc(Scc), DeltaPos(DeltaPos),
          GuardRel(GuardRel), DeltaRel(DeltaRel), Variant(Variant) {
      for (const auto &Lit : C.getBody()) {
        if (Lit->getKind() == ast::Literal::Kind::Atom)
          Atoms.push_back(static_cast<const ast::Atom *>(Lit.get()));
        else
          Pending.push_back(Lit.get());
      }
      computeOuterVars();
      planAtomOrder();
    }

    /// The emitted atom order: element i is the source-order index of the
    /// atom scanned at depth i (identity under SipsStrategy::Source).
    const std::vector<std::size_t> &atomOrder() const { return Order; }

    ram::OpPtr build() {
      ram::OpPtr Root = buildLevel(0);
      if (!Root)
        return nullptr;
      if (!T.Options.EnableEmptinessChecks || Atoms.empty())
        return Root;
      // Fig-3-style pre-check: skip the whole rule body if any scanned
      // relation is empty.
      ram::CondPtr Pre;
      std::unordered_set<const ram::Relation *> Seen;
      for (std::size_t I = 0; I < Atoms.size(); ++I) {
        const ram::Relation *Rel = atomRelation(I);
        if (!Rel || !Seen.insert(Rel).second)
          continue;
        ram::CondPtr Part = std::make_unique<ram::Negation>(
            std::make_unique<ram::EmptinessCheck>(Rel));
        Pre = Pre ? std::make_unique<ram::Conjunction>(std::move(Pre),
                                                       std::move(Part))
                  : std::move(Part);
      }
      if (Pre)
        Root = std::make_unique<ram::Filter>(std::move(Pre),
                                             std::move(Root));
      return Root;
    }

  private:
    /// The RAM relation the atom at emission position \p AtomIdx reads.
    /// Resolved once, against the source order, before any reordering: the
    /// semi-naive version semantics (which occurrence reads the delta) are
    /// defined over body positions, not over the plan.
    const ram::Relation *atomRelation(std::size_t AtomIdx) const {
      return AtomRels[AtomIdx];
    }

    /// The RAM relation an atom reads: its delta version when this atom is
    /// the rule version's delta occurrence, else the full relation. \p
    /// AtomIdx indexes the source body order (only valid before
    /// planAtomOrder permutes Atoms).
    const ram::Relation *resolveAtomRelation(std::size_t AtomIdx) {
      const ast::Atom *A = Atoms[AtomIdx];
      const ram::Relation *Full = T.RelOf.count(A->getName())
                                      ? T.RelOf.at(A->getName())
                                      : nullptr;
      if (!Full)
        return nullptr;
      if (Variant.AbsDeltaIdx >= 0 &&
          static_cast<std::size_t>(Variant.AbsDeltaIdx) == AtomIdx) {
        auto It = Variant.AbsDeltaMap->find(A->getName());
        if (It != Variant.AbsDeltaMap->end())
          return It->second;
      }
      if (DeltaPos < 0 || !Scc.count(A->getName()))
        return Full;
      // Count which SCC occurrence this is.
      int SccIndex = 0;
      for (std::size_t I = 0; I < AtomIdx; ++I)
        if (Scc.count(Atoms[I]->getName()))
          ++SccIndex;
      if (SccIndex == DeltaPos) {
        auto It = DeltaRel.find(A->getName());
        if (It != DeltaRel.end())
          return It->second;
      }
      return Full;
    }

    /// Resolves every atom's relation (delta vs. full, by source position)
    /// and then permutes Atoms under the configured SIPS strategy. Must run
    /// before any emission: build() and buildAtom() index the permuted
    /// vectors.
    void planAtomOrder() {
      AtomRels.resize(Atoms.size());
      Order.resize(Atoms.size());
      for (std::size_t I = 0; I < Atoms.size(); ++I) {
        AtomRels[I] = resolveAtomRelation(I);
        Order[I] = I;
      }
      const SipsStrategy Strat =
          Variant.ForceMaxBound ? SipsStrategy::MaxBound : T.Options.Sips;
      if (Strat == SipsStrategy::Source || Atoms.size() < 2)
        return;
      // An undeclared relation keeps the source order; buildAtom reports
      // the error with the original positions intact.
      for (const ram::Relation *Rel : AtomRels)
        if (!Rel)
          return;

      std::vector<SipsAtom> Desc(Atoms.size());
      for (std::size_t I = 0; I < Atoms.size(); ++I) {
        SipsAtom &D = Desc[I];
        D.SourceIndex = I;
        const auto MainIt = T.RelOf.find(Atoms[I]->getName());
        D.IsDelta = MainIt != T.RelOf.end() && AtomRels[I] != MainIt->second;
        if (Strat == SipsStrategy::Profile)
          D.EstimatedSize =
              T.estimateSize(*AtomRels[I], D.IsDelta, Atoms[I]->getName());
        for (const auto &Arg : Atoms[I]->getArgs()) {
          SipsColumn Col;
          if (Arg->getKind() == ast::Argument::Kind::Variable) {
            Col.Binds = static_cast<const ast::Variable &>(*Arg).getName();
            Col.Vars.push_back(Col.Binds);
          } else if (Arg->getKind() != ast::Argument::Kind::UnnamedVariable) {
            collectVars(*Arg, Col.Vars);
            Col.Ground = Col.Vars.empty();
          }
          D.Columns.push_back(std::move(Col));
        }
      }

      // Equality-derivable variables (`x = 3`, `y = x + 1`) count as bound
      // for planning, matching the scheduler's binding equalities.
      std::vector<SipsEquality> Equalities;
      for (const ast::Literal *Lit : Pending) {
        if (Lit->getKind() != ast::Literal::Kind::Constraint)
          continue;
        const auto &Con = static_cast<const ast::Constraint &>(*Lit);
        if (Con.getOp() != ast::ConstraintOp::Eq ||
            asAggregator(Con.getLhs()) || asAggregator(Con.getRhs()))
          continue;
        auto AddDerivation = [&](const ast::Argument &VarSide,
                                 const ast::Argument &ExprSide) {
          if (VarSide.getKind() != ast::Argument::Kind::Variable)
            return;
          std::vector<std::string> Needed;
          collectVars(ExprSide, Needed);
          Equalities.emplace_back(
              static_cast<const ast::Variable &>(VarSide).getName(),
              std::move(Needed));
        };
        AddDerivation(Con.getLhs(), Con.getRhs());
        AddDerivation(Con.getRhs(), Con.getLhs());
      }

      Order = orderAtoms(Strat, Desc, Equalities);
      std::vector<const ast::Atom *> NewAtoms(Atoms.size());
      std::vector<const ram::Relation *> NewRels(Atoms.size());
      for (std::size_t I = 0; I < Order.size(); ++I) {
        NewAtoms[I] = Atoms[Order[I]];
        NewRels[I] = AtomRels[Order[I]];
      }
      Atoms = std::move(NewAtoms);
      AtomRels = std::move(NewRels);
    }

    void computeOuterVars() {
      auto Add = [&](const ast::Argument &Arg) {
        std::vector<std::string> Vars;
        collectVars(Arg, Vars);
        OuterVars.insert(Vars.begin(), Vars.end());
      };
      for (const auto *A : Atoms)
        for (const auto &Arg : A->getArgs())
          Add(*Arg);
      for (const auto &Arg : C.getHead().getArgs())
        Add(*Arg);
      for (const ast::Literal *Lit : Pending) {
        if (Lit->getKind() == ast::Literal::Kind::Negation) {
          for (const auto &Arg :
               static_cast<const ast::Negation &>(*Lit).getAtom().getArgs())
            Add(*Arg);
        } else if (Lit->getKind() == ast::Literal::Kind::Constraint) {
          const auto &Con = static_cast<const ast::Constraint &>(*Lit);
          if (!asAggregator(Con.getLhs()))
            Add(Con.getLhs());
          if (!asAggregator(Con.getRhs()))
            Add(Con.getRhs());
        }
      }
    }

    bool isBound(const std::string &Name) const {
      return VarBindings.count(Name) || EqBindings.count(Name);
    }

    bool allVarsBound(const ast::Argument &Arg) const {
      std::vector<std::string> Vars;
      collectVars(Arg, Vars);
      return std::all_of(Vars.begin(), Vars.end(),
                         [&](const std::string &V) { return isBound(V); });
    }

    //===------------------------------------------------------------------===
    // Expression translation (requires all variables bound)
    //===------------------------------------------------------------------===

    ram::ExprPtr translateExpr(const ast::Argument &Arg) {
      switch (Arg.getKind()) {
      case ast::Argument::Kind::NumberConstant:
        return std::make_unique<ram::Constant>(
            static_cast<const ast::NumberConstant &>(Arg).getValue());
      case ast::Argument::Kind::UnsignedConstant:
        return std::make_unique<ram::Constant>(ramBitCast<RamDomain>(
            static_cast<const ast::UnsignedConstant &>(Arg).getValue()));
      case ast::Argument::Kind::FloatConstant:
        return std::make_unique<ram::Constant>(ramBitCast<RamDomain>(
            static_cast<const ast::FloatConstant &>(Arg).getValue()));
      case ast::Argument::Kind::StringConstant:
        return std::make_unique<ram::Constant>(T.Symbols.intern(
            static_cast<const ast::StringConstant &>(Arg).getValue()));
      case ast::Argument::Kind::Counter:
        return std::make_unique<ram::AutoIncrement>();
      case ast::Argument::Kind::Variable: {
        const auto &Name = static_cast<const ast::Variable &>(Arg).getName();
        auto It = VarBindings.find(Name);
        if (It != VarBindings.end())
          return std::make_unique<ram::TupleElement>(It->second.first,
                                                     It->second.second);
        auto EqIt = EqBindings.find(Name);
        if (EqIt != EqBindings.end())
          return translateExpr(*EqIt->second);
        T.error("internal: use of unbound variable '" + Name + "' in '" +
                C.toString() + "'");
        return std::make_unique<ram::Constant>(0);
      }
      case ast::Argument::Kind::Functor: {
        const auto &F = static_cast<const ast::Functor &>(Arg);
        std::vector<ram::ExprPtr> Args;
        for (const auto &Operand : F.getArgs())
          Args.push_back(translateExpr(*Operand));
        return std::make_unique<ram::Intrinsic>(
            resolveIntrinsic(F.getOp(), T.typeOfArg(&Arg)),
            std::move(Args));
      }
      case ast::Argument::Kind::UnnamedVariable:
        T.error("'_' cannot be used as a value in '" + C.toString() + "'");
        return std::make_unique<ram::Constant>(0);
      case ast::Argument::Kind::Aggregator:
        T.error("aggregates are only supported as the right-hand side of "
                "an equality in '" +
                C.toString() + "'");
        return std::make_unique<ram::Constant>(0);
      }
      unreachable("unknown argument kind");
    }

    //===------------------------------------------------------------------===
    // Literal scheduling
    //===------------------------------------------------------------------===

    /// True if the literal can be placed with the current bindings.
    bool isReady(const ast::Literal &Lit) const {
      if (Lit.getKind() == ast::Literal::Kind::Negation) {
        const auto &A = static_cast<const ast::Negation &>(Lit).getAtom();
        return std::all_of(A.getArgs().begin(), A.getArgs().end(),
                           [&](const std::unique_ptr<ast::Argument> &Arg) {
                             return Arg->getKind() ==
                                        ast::Argument::Kind::UnnamedVariable ||
                                    allVarsBound(*Arg);
                           });
      }
      const auto &Con = static_cast<const ast::Constraint &>(Lit);
      const ast::Aggregator *Agg = asAggregator(Con.getRhs());
      const ast::Argument *Other = &Con.getLhs();
      if (!Agg) {
        Agg = asAggregator(Con.getLhs());
        Other = &Con.getRhs();
      }
      if (Agg) {
        // Ready when all outer variables the aggregate references are
        // bound, and the other side is a variable or bound expression.
        std::vector<std::string> Vars;
        collectAggregateVars(*Agg, Vars);
        for (const auto &Name : Vars)
          if (OuterVars.count(Name) && !isBound(Name))
            return false;
        if (Other->getKind() == ast::Argument::Kind::Variable)
          return true;
        return allVarsBound(*Other);
      }
      // A binding equality `x = expr` is ready once expr is bound.
      if (Con.getOp() == ast::ConstraintOp::Eq) {
        const bool LhsLoneVar =
            Con.getLhs().getKind() == ast::Argument::Kind::Variable &&
            !isBound(static_cast<const ast::Variable &>(Con.getLhs())
                         .getName());
        const bool RhsLoneVar =
            Con.getRhs().getKind() == ast::Argument::Kind::Variable &&
            !isBound(static_cast<const ast::Variable &>(Con.getRhs())
                         .getName());
        if (LhsLoneVar && !RhsLoneVar)
          return allVarsBound(Con.getRhs());
        if (RhsLoneVar && !LhsLoneVar)
          return allVarsBound(Con.getLhs());
      }
      return allVarsBound(Con.getLhs()) && allVarsBound(Con.getRhs());
    }

    /// Places a ready literal, returning the operation wrapping the rest of
    /// the translation.
    ram::OpPtr placeLiteral(const ast::Literal &Lit, std::size_t AtomIdx) {
      if (Lit.getKind() == ast::Literal::Kind::Negation) {
        const auto &A = static_cast<const ast::Negation &>(Lit).getAtom();
        const ram::Relation *Rel = T.RelOf.count(A.getName())
                                       ? T.RelOf.at(A.getName())
                                       : nullptr;
        if (!Rel) {
          T.error("undeclared relation '" + A.getName() + "'");
          return nullptr;
        }
        std::vector<ram::ExprPtr> Pattern;
        for (const auto &Arg : A.getArgs()) {
          if (Arg->getKind() == ast::Argument::Kind::UnnamedVariable)
            Pattern.push_back(std::make_unique<ram::Undef>());
          else
            Pattern.push_back(translateExpr(*Arg));
        }
        ram::OpPtr Rest = buildLevel(AtomIdx);
        if (!Rest)
          return nullptr;
        return std::make_unique<ram::Filter>(
            std::make_unique<ram::Negation>(
                std::make_unique<ram::ExistenceCheck>(Rel,
                                                      std::move(Pattern))),
            std::move(Rest));
      }

      const auto &Con = static_cast<const ast::Constraint &>(Lit);
      const ast::Aggregator *Agg = asAggregator(Con.getRhs());
      const ast::Argument *Other = &Con.getLhs();
      if (!Agg) {
        Agg = asAggregator(Con.getLhs());
        Other = &Con.getRhs();
      }
      if (Agg)
        return placeAggregate(Con, *Agg, *Other, AtomIdx);

      if (Con.getOp() == ast::ConstraintOp::Eq) {
        // Binding equality: record and continue without a filter.
        auto TryBind = [&](const ast::Argument &VarSide,
                           const ast::Argument &ExprSide) -> bool {
          if (VarSide.getKind() != ast::Argument::Kind::Variable)
            return false;
          const auto &Name =
              static_cast<const ast::Variable &>(VarSide).getName();
          if (isBound(Name) || !allVarsBound(ExprSide))
            return false;
          EqBindings[Name] = &ExprSide;
          return true;
        };
        if (TryBind(Con.getLhs(), Con.getRhs()) ||
            TryBind(Con.getRhs(), Con.getLhs()))
          return buildLevel(AtomIdx);
      }

      TypeKind Type = T.typeOfArg(&Con.getLhs());
      ram::CondPtr Cond = std::make_unique<ram::Constraint>(
          resolveCmp(Con.getOp(), Type), translateExpr(Con.getLhs()),
          translateExpr(Con.getRhs()));
      ram::OpPtr Rest = buildLevel(AtomIdx);
      if (!Rest)
        return nullptr;
      return std::make_unique<ram::Filter>(std::move(Cond), std::move(Rest));
    }

    /// Places `Other = Agg{...}`: emits a ram::Aggregate binding a fresh
    /// tuple id and binds/filters the other side against the result.
    ram::OpPtr placeAggregate(const ast::Constraint &Con,
                              const ast::Aggregator &Agg,
                              const ast::Argument &Other,
                              std::size_t AtomIdx) {
      if (Con.getOp() != ast::ConstraintOp::Eq) {
        T.error("aggregates are only supported in equalities in '" +
                C.toString() + "'");
        return nullptr;
      }
      // The body must contain exactly one positive atom; remaining
      // literals become the aggregate's inner condition.
      const ast::Atom *InnerAtom = nullptr;
      std::vector<const ast::Literal *> InnerRest;
      for (const auto &Lit : Agg.getBody()) {
        if (Lit->getKind() == ast::Literal::Kind::Atom && !InnerAtom)
          InnerAtom = static_cast<const ast::Atom *>(Lit.get());
        else
          InnerRest.push_back(Lit.get());
      }
      if (!InnerAtom) {
        T.error("aggregate body requires a positive atom in '" +
                C.toString() + "'");
        return nullptr;
      }
      const ram::Relation *Rel = T.RelOf.count(InnerAtom->getName())
                                     ? T.RelOf.at(InnerAtom->getName())
                                     : nullptr;
      if (!Rel) {
        T.error("undeclared relation '" + InnerAtom->getName() + "'");
        return nullptr;
      }

      const std::uint32_t Tid = NextTupleId++;
      std::vector<ram::ExprPtr> Pattern;
      std::vector<ram::CondPtr> InnerConds;
      std::vector<std::string> LocalVars;
      for (std::size_t Col = 0; Col < InnerAtom->getArgs().size(); ++Col) {
        const ast::Argument &Arg = *InnerAtom->getArgs()[Col];
        if (Arg.getKind() == ast::Argument::Kind::UnnamedVariable) {
          Pattern.push_back(std::make_unique<ram::Undef>());
          continue;
        }
        if (Arg.getKind() == ast::Argument::Kind::Variable) {
          const auto &Name =
              static_cast<const ast::Variable &>(Arg).getName();
          if (!isBound(Name)) {
            // Inner-local witness variable.
            VarBindings[Name] = {Tid, static_cast<std::uint32_t>(Col)};
            LocalVars.push_back(Name);
            Pattern.push_back(std::make_unique<ram::Undef>());
            continue;
          }
        }
        if (allVarsBound(Arg)) {
          Pattern.push_back(translateExpr(Arg));
          continue;
        }
        T.error("unbound expression in aggregate pattern in '" +
                C.toString() + "'");
        return nullptr;
      }

      for (const ast::Literal *Lit : InnerRest) {
        if (Lit->getKind() == ast::Literal::Kind::Constraint) {
          const auto &Inner = static_cast<const ast::Constraint &>(*Lit);
          TypeKind Type = T.typeOfArg(&Inner.getLhs());
          InnerConds.push_back(std::make_unique<ram::Constraint>(
              resolveCmp(Inner.getOp(), Type),
              translateExpr(Inner.getLhs()),
              translateExpr(Inner.getRhs())));
        } else if (Lit->getKind() == ast::Literal::Kind::Negation) {
          const auto &A =
              static_cast<const ast::Negation &>(*Lit).getAtom();
          const ram::Relation *NegRel = T.RelOf.count(A.getName())
                                            ? T.RelOf.at(A.getName())
                                            : nullptr;
          if (!NegRel) {
            T.error("undeclared relation '" + A.getName() + "'");
            return nullptr;
          }
          std::vector<ram::ExprPtr> NegPattern;
          for (const auto &Arg : A.getArgs())
            NegPattern.push_back(
                Arg->getKind() == ast::Argument::Kind::UnnamedVariable
                    ? std::make_unique<ram::Undef>()
                    : translateExpr(*Arg));
          InnerConds.push_back(std::make_unique<ram::Negation>(
              std::make_unique<ram::ExistenceCheck>(
                  NegRel, std::move(NegPattern))));
        } else {
          T.error("aggregate body supports one positive atom plus "
                  "constraints in '" +
                  C.toString() + "'");
          return nullptr;
        }
      }
      ram::CondPtr InnerCond;
      for (auto &Part : InnerConds)
        InnerCond = InnerCond
                        ? std::make_unique<ram::Conjunction>(
                              std::move(InnerCond), std::move(Part))
                        : std::move(Part);

      ram::ExprPtr TargetExpr;
      TypeKind ResultType = T.typeOfArg(&Con.getLhs());
      if (Agg.getOp() != ast::AggregateOp::Count) {
        TargetExpr = translateExpr(*Agg.getTarget());
        ResultType = T.typeOfArg(Agg.getTarget());
      }

      // The locals die with the fold; tuple id Tid then holds the result.
      for (const auto &Name : LocalVars)
        VarBindings.erase(Name);

      ram::OpPtr Rest;
      if (Other.getKind() == ast::Argument::Kind::Variable &&
          !isBound(static_cast<const ast::Variable &>(Other).getName())) {
        VarBindings[static_cast<const ast::Variable &>(Other).getName()] = {
            Tid, 0};
        Rest = buildLevel(AtomIdx);
      } else {
        ram::CondPtr Match = std::make_unique<ram::Constraint>(
            ram::CmpOp::Eq, translateExpr(Other),
            std::make_unique<ram::TupleElement>(Tid, 0));
        ram::OpPtr Inner = buildLevel(AtomIdx);
        if (!Inner)
          return nullptr;
        Rest = std::make_unique<ram::Filter>(std::move(Match),
                                             std::move(Inner));
      }
      if (!Rest)
        return nullptr;
      return std::make_unique<ram::Aggregate>(
          resolveAggFunc(Agg.getOp(), ResultType), Rel, Tid,
          std::move(Pattern), std::move(TargetExpr), std::move(InnerCond),
          std::move(Rest));
    }

    //===------------------------------------------------------------------===
    // Level builder
    //===------------------------------------------------------------------===

    ram::OpPtr buildLevel(std::size_t AtomIdx) {
      // Place any literal that became ready.
      for (std::size_t I = 0; I < Pending.size(); ++I) {
        if (!isReady(*Pending[I]))
          continue;
        const ast::Literal *Lit = Pending[I];
        Pending.erase(Pending.begin() + static_cast<std::ptrdiff_t>(I));
        return placeLiteral(*Lit, AtomIdx);
      }

      if (AtomIdx < Atoms.size())
        return buildAtom(AtomIdx);

      if (!Pending.empty()) {
        T.error("could not schedule all literals of '" + C.toString() +
                "' (ungrounded or unsupported construct)");
        return nullptr;
      }
      return buildHead();
    }

    ram::OpPtr buildAtom(std::size_t AtomIdx) {
      const ast::Atom *A = Atoms[AtomIdx];
      const ram::Relation *Rel = atomRelation(AtomIdx);
      if (!Rel) {
        T.error("undeclared relation '" + A->getName() + "'");
        return nullptr;
      }
      const std::uint32_t Tid = NextTupleId++;
      std::vector<ram::ExprPtr> Pattern(A->getArgs().size());
      std::vector<ram::CondPtr> SelfConds;

      for (std::size_t Col = 0; Col < A->getArgs().size(); ++Col) {
        const ast::Argument &Arg = *A->getArgs()[Col];
        switch (Arg.getKind()) {
        case ast::Argument::Kind::UnnamedVariable:
          Pattern[Col] = std::make_unique<ram::Undef>();
          break;
        case ast::Argument::Kind::Variable: {
          const auto &Name =
              static_cast<const ast::Variable &>(Arg).getName();
          auto It = VarBindings.find(Name);
          if (It != VarBindings.end()) {
            if (It->second.first == Tid) {
              // Repeated variable within this atom: filter inside.
              Pattern[Col] = std::make_unique<ram::Undef>();
              SelfConds.push_back(std::make_unique<ram::Constraint>(
                  ram::CmpOp::Eq,
                  std::make_unique<ram::TupleElement>(
                      Tid, static_cast<std::uint32_t>(Col)),
                  std::make_unique<ram::TupleElement>(It->second.first,
                                                      It->second.second)));
            } else {
              Pattern[Col] = std::make_unique<ram::TupleElement>(
                  It->second.first, It->second.second);
            }
            break;
          }
          if (EqBindings.count(Name)) {
            Pattern[Col] = translateExpr(Arg);
            break;
          }
          // First occurrence: bind to this scan.
          VarBindings[Name] = {Tid, static_cast<std::uint32_t>(Col)};
          Pattern[Col] = std::make_unique<ram::Undef>();
          break;
        }
        default:
          if (allVarsBound(Arg)) {
            Pattern[Col] = translateExpr(Arg);
          } else {
            // Value determined only later: scan unbound and post-filter.
            Pattern[Col] = std::make_unique<ram::Undef>();
            DeferredColumnChecks.push_back(
                {Tid, static_cast<std::uint32_t>(Col), &Arg});
          }
          break;
        }
      }

      ram::OpPtr Nested = buildLevel(AtomIdx + 1);
      if (!Nested)
        return nullptr;

      // Deferred column checks whose expressions became bound at deeper
      // levels are placed right here if they belong to this tuple... they
      // were placed by deferred processing in buildHead; see below.
      for (auto &Cond : SelfConds)
        Nested = std::make_unique<ram::Filter>(std::move(Cond),
                                               std::move(Nested));

      const bool AllWildcard =
          ram::searchSignature(Pattern) == 0;
      if (AllWildcard)
        return std::make_unique<ram::Scan>(Rel, Tid, std::move(Nested));
      return std::make_unique<ram::IndexScan>(Rel, Tid, std::move(Pattern),
                                              std::move(Nested));
    }

    ram::OpPtr buildHead() {
      // Deferred atom-column checks (functor arguments whose variables were
      // bound by later atoms) become plain filters now.
      std::vector<ram::CondPtr> Checks;
      for (const auto &Deferred : DeferredColumnChecks) {
        if (!allVarsBound(*Deferred.Expr)) {
          T.error("ungrounded expression in atom argument in '" +
                  C.toString() + "'");
          return nullptr;
        }
        Checks.push_back(std::make_unique<ram::Constraint>(
            ram::CmpOp::Eq,
            std::make_unique<ram::TupleElement>(Deferred.TupleId,
                                                Deferred.Column),
            translateExpr(*Deferred.Expr)));
      }

      std::vector<ram::ExprPtr> Values;
      for (const auto &Arg : C.getHead().getArgs())
        Values.push_back(translateExpr(*Arg));

      ram::OpPtr Op;
      if (GuardRel) {
        std::vector<ram::ExprPtr> GuardPattern;
        for (const auto &Arg : C.getHead().getArgs())
          GuardPattern.push_back(translateExpr(*Arg));
        Op = std::make_unique<ram::Filter>(
            std::make_unique<ram::Negation>(
                std::make_unique<ram::ExistenceCheck>(
                    GuardRel, std::move(GuardPattern))),
            std::make_unique<ram::Project>(Target, std::move(Values)));
      } else {
        Op = std::make_unique<ram::Project>(Target, std::move(Values));
      }
      for (auto &Cond : Checks)
        Op = std::make_unique<ram::Filter>(std::move(Cond), std::move(Op));
      return Op;
    }

    Translator &T;
    const ast::Clause &C;
    ram::Relation *Target;
    const std::unordered_set<std::string> &Scc;
    int DeltaPos;
    ram::Relation *GuardRel;
    const std::unordered_map<std::string, ram::Relation *> &DeltaRel;
    const RuleVariant &Variant;

    std::vector<const ast::Atom *> Atoms;
    /// Relation read by each atom, aligned with Atoms (both permuted
    /// together by planAtomOrder).
    std::vector<const ram::Relation *> AtomRels;
    /// Emission position → source-order atom index.
    std::vector<std::size_t> Order;
    std::vector<const ast::Literal *> Pending;
    std::unordered_map<std::string, std::pair<std::uint32_t, std::uint32_t>>
        VarBindings;
    std::unordered_map<std::string, const ast::Argument *> EqBindings;
    std::unordered_set<std::string> OuterVars;
    struct DeferredCheck {
      std::uint32_t TupleId;
      std::uint32_t Column;
      const ast::Argument *Expr;
    };
    std::vector<DeferredCheck> DeferredColumnChecks;
    std::uint32_t NextTupleId = 0;
  };

  /// Estimated cardinality of \p Rel for the profile SIPS strategy, from
  /// the feedback document. A delta occurrence missing from the feedback
  /// (e.g. a one-shot profile feeding an update-program build whose aux
  /// relations have different names) is guessed as the square root of its
  /// full relation \p FullName — deltas are a fraction of the fixpoint.
  double estimateSize(const ram::Relation &Rel, bool IsDelta,
                      const std::string &FullName) const {
    if (!Options.Feedback)
      return -1.0;
    if (std::optional<double> S = Options.Feedback->relationSize(Rel.getName()))
      return *S;
    if (IsDelta)
      if (std::optional<double> Full = Options.Feedback->relationSize(FullName))
        return std::sqrt(std::max(*Full, 1.0));
    return -1.0;
  }

  const ast::Program &AstProg;
  const ast::SemanticInfo &Info;
  SymbolTable &Symbols;
  const TranslationOptions &Options;
  TranslationResult &Result;
  ram::Program *Prog = nullptr;
  std::unordered_map<std::string, ram::Relation *> RelOf;
  /// The delta_/new_ aux relations the main program's semi-naive strata
  /// created, for reuse by the update program.
  std::unordered_map<std::string, ram::Relation *> MainDeltaRel, MainNewRel;
  /// Half-open [begin, end) child ranges of the main Sequence, one per
  /// stratum — the re-run spans for Reeval maintenance strata.
  std::vector<std::pair<std::size_t, std::size_t>> StratumSpans;
  /// Types for synthesized maintenance arguments: SemanticInfo keys
  /// ExprTypes by node address, so cloned trees must carry their own
  /// entries (see registerTypes).
  std::unordered_map<const ast::Argument *, ast::TypeKind> TypeOverlay;
  /// Owns every synthesized maintenance clause for the translator's
  /// lifetime, so TypeOverlay's pointer keys stay unique and valid.
  std::vector<std::unique_ptr<ast::Clause>> SynthClauses;
};

} // namespace

TranslationResult
stird::translate::translateToRam(const ast::Program &AstProg,
                                 const ast::SemanticInfo &Info,
                                 SymbolTable &Symbols,
                                 const TranslationOptions &Options) {
  TranslationResult Result;
  if (!Info.succeeded()) {
    Result.Errors = Info.Errors;
    return Result;
  }
  Translator T(AstProg, Info, Symbols, Options, Result);
  T.run();
  return Result;
}
