//===- translate/IndexSelection.cpp - Automatic index selection -------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "translate/IndexSelection.h"

#include "util/MiscUtil.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <set>

using namespace stird;
using namespace stird::translate;
using namespace stird::ram;

namespace {

/// Maximum bipartite matching via Kuhn's augmenting paths. Adj[U] lists the
/// right-side nodes reachable from left node U. Returns MatchLeft where
/// MatchLeft[U] is the matched right node or -1.
std::vector<int> maximumMatching(const std::vector<std::vector<int>> &Adj,
                                 std::size_t NumRight) {
  const std::size_t NumLeft = Adj.size();
  std::vector<int> MatchLeft(NumLeft, -1), MatchRight(NumRight, -1);
  std::vector<bool> Visited;

  std::function<bool(int)> TryAugment = [&](int U) -> bool {
    for (int V : Adj[U]) {
      if (Visited[V])
        continue;
      Visited[V] = true;
      if (MatchRight[V] == -1 || TryAugment(MatchRight[V])) {
        MatchLeft[U] = V;
        MatchRight[V] = U;
        return true;
      }
    }
    return false;
  };

  for (std::size_t U = 0; U < NumLeft; ++U) {
    Visited.assign(NumRight, false);
    TryAugment(static_cast<int>(U));
  }
  return MatchLeft;
}

/// Appends the columns of \p Mask (ascending) to \p Order if not yet
/// present.
void appendColumns(std::uint32_t Mask, std::vector<std::uint32_t> &Order,
                   std::uint32_t &Used) {
  for (std::uint32_t Col = 0; Col < 32; ++Col) {
    const std::uint32_t Bit = 1U << Col;
    if ((Mask & Bit) && !(Used & Bit)) {
      Order.push_back(Col);
      Used |= Bit;
    }
  }
}

/// Collects search signatures from every primitive search in a statement
/// tree into \p Searches.
class SearchCollector {
public:
  explicit SearchCollector(
      std::map<const Relation *, std::set<std::uint32_t>> &Searches)
      : Searches(Searches) {}

  void visitStmt(const Statement &Stmt) {
    switch (Stmt.getKind()) {
    case Statement::Kind::Sequence:
      for (const auto &Child :
           static_cast<const Sequence &>(Stmt).getStatements())
        visitStmt(*Child);
      return;
    case Statement::Kind::Loop:
      visitStmt(static_cast<const Loop &>(Stmt).getBody());
      return;
    case Statement::Kind::Exit:
      visitCond(static_cast<const Exit &>(Stmt).getCondition());
      return;
    case Statement::Kind::Query:
      visitOp(static_cast<const Query &>(Stmt).getRoot());
      return;
    case Statement::Kind::LogTimer:
      visitStmt(static_cast<const LogTimer &>(Stmt).getBody());
      return;
    case Statement::Kind::Clear:
    case Statement::Kind::Swap:
    case Statement::Kind::MergeInto:
    case Statement::Kind::Erase:
    case Statement::Kind::SubtractInto:
    case Statement::Kind::FoldCounts:
    case Statement::Kind::Io:
      // Bulk statements enumerate via full scans and full-tuple
      // membership only; no primitive searches to serve.
      return;
    }
  }

  void visitOp(const Operation &Op) {
    switch (Op.getKind()) {
    case Operation::Kind::Scan:
      visitOp(static_cast<const Scan &>(Op).getNested());
      return;
    case Operation::Kind::IndexScan: {
      const auto &S = static_cast<const IndexScan &>(Op);
      addSearch(S.getRelation(), searchSignature(S.getPattern()));
      for (const auto &Col : S.getPattern())
        visitExpr(*Col);
      visitOp(S.getNested());
      return;
    }
    case Operation::Kind::Filter: {
      const auto &F = static_cast<const Filter &>(Op);
      visitCond(F.getCondition());
      visitOp(F.getNested());
      return;
    }
    case Operation::Kind::Project: {
      for (const auto &Val :
           static_cast<const Project &>(Op).getValues())
        visitExpr(*Val);
      return;
    }
    case Operation::Kind::Aggregate: {
      const auto &A = static_cast<const Aggregate &>(Op);
      addSearch(A.getRelation(), searchSignature(A.getPattern()));
      for (const auto &Col : A.getPattern())
        visitExpr(*Col);
      if (A.getTargetExpr())
        visitExpr(*A.getTargetExpr());
      visitOp(A.getNested());
      return;
    }
    }
  }

  void visitCond(const Condition &Cond) {
    switch (Cond.getKind()) {
    case Condition::Kind::Conjunction: {
      const auto &C = static_cast<const Conjunction &>(Cond);
      visitCond(C.getLhs());
      visitCond(C.getRhs());
      return;
    }
    case Condition::Kind::Negation:
      visitCond(static_cast<const Negation &>(Cond).getInner());
      return;
    case Condition::Kind::Constraint: {
      const auto &C = static_cast<const Constraint &>(Cond);
      visitExpr(C.getLhs());
      visitExpr(C.getRhs());
      return;
    }
    case Condition::Kind::ExistenceCheck: {
      const auto &C = static_cast<const ExistenceCheck &>(Cond);
      addSearch(C.getRelation(), searchSignature(C.getPattern()));
      for (const auto &Col : C.getPattern())
        visitExpr(*Col);
      return;
    }
    case Condition::Kind::True:
    case Condition::Kind::EmptinessCheck:
      return;
    }
  }

  void visitExpr(const Expression &Expr) {
    if (Expr.getKind() == Expression::Kind::Intrinsic)
      for (const auto &Arg : static_cast<const Intrinsic &>(Expr).getArgs())
        visitExpr(*Arg);
  }

private:
  void addSearch(const Relation &Rel, std::uint32_t Signature) {
    if (Signature != 0)
      Searches[&Rel].insert(Signature);
  }

  std::map<const Relation *, std::set<std::uint32_t>> &Searches;
};

} // namespace

RelationIndexInfo
stird::translate::computeIndexes(const std::vector<std::uint32_t> &Signatures,
                                 std::size_t Arity) {
  RelationIndexInfo Info;

  // Deduplicate and drop the empty signature (served by any index).
  std::vector<std::uint32_t> Sigs;
  for (std::uint32_t Sig : Signatures)
    if (Sig != 0 &&
        std::find(Sigs.begin(), Sigs.end(), Sig) == Sigs.end())
      Sigs.push_back(Sig);
  // Sorting by popcount (then value) makes every containment edge point
  // forward, which both directs the DAG and stabilizes the output.
  std::sort(Sigs.begin(), Sigs.end(), [](std::uint32_t A, std::uint32_t B) {
    const int PopA = std::popcount(A), PopB = std::popcount(B);
    return PopA != PopB ? PopA < PopB : A < B;
  });

  const std::size_t N = Sigs.size();
  std::vector<std::vector<int>> Adj(N);
  for (std::size_t U = 0; U < N; ++U)
    for (std::size_t V = 0; V < N; ++V)
      if (U != V && (Sigs[U] & Sigs[V]) == Sigs[U] && Sigs[U] != Sigs[V])
        Adj[U].push_back(static_cast<int>(V));

  std::vector<int> Next = maximumMatching(Adj, N);
  std::vector<bool> HasPredecessor(N, false);
  for (std::size_t U = 0; U < N; ++U)
    if (Next[U] != -1)
      HasPredecessor[static_cast<std::size_t>(Next[U])] = true;

  // Materialize each chain head-to-tail into one order.
  for (std::size_t Head = 0; Head < N; ++Head) {
    if (HasPredecessor[Head])
      continue;
    std::vector<std::uint32_t> Order;
    std::uint32_t Used = 0;
    int Cur = static_cast<int>(Head);
    while (Cur != -1) {
      const std::uint32_t Sig = Sigs[static_cast<std::size_t>(Cur)];
      appendColumns(Sig, Order, Used);
      Info.Placement[Sig] = {Info.Orders.size(),
                             static_cast<std::size_t>(std::popcount(Sig))};
      Cur = Next[static_cast<std::size_t>(Cur)];
    }
    appendColumns((Arity >= 32 ? ~0U : (1U << Arity) - 1), Order, Used);
    Info.Orders.push_back(std::move(Order));
  }

  // Every relation needs at least one order for full scans and inserts.
  if (Info.Orders.empty()) {
    std::vector<std::uint32_t> Natural(Arity);
    for (std::size_t I = 0; I < Arity; ++I)
      Natural[I] = static_cast<std::uint32_t>(I);
    Info.Orders.push_back(std::move(Natural));
  }
  return Info;
}

IndexSelectionResult stird::translate::selectIndexes(ram::Program &Prog) {
  std::map<const Relation *, std::set<std::uint32_t>> Searches;
  SearchCollector Collector(Searches);
  if (Prog.hasMain())
    Collector.visitStmt(Prog.getMain());
  // The incremental-update statement runs over the same relations; its
  // searches (delta scans, guards) must be index-served too.
  if (Prog.hasUpdate())
    Collector.visitStmt(Prog.getUpdate());
  // Same for the maintenance programs: their signed delta versions search
  // the ins_/del_/rederive_ aux relations with bound patterns.
  for (const auto &S : Prog.getMaintStrata())
    if (S.Stmt)
      Collector.visitStmt(*S.Stmt);
  if (const Statement *CountInit = Prog.getCountInit())
    Collector.visitStmt(*CountInit);
  if (const Statement *Prologue = Prog.getMaintPrologue())
    Collector.visitStmt(*Prologue);

  // Union-find over relations connected by Swap statements: swapped
  // relations must agree on their physical index layout.
  std::unordered_map<const Relation *, const Relation *> Leader;
  for (const auto &Rel : Prog.getRelations())
    Leader[Rel.get()] = Rel.get();
  std::function<const Relation *(const Relation *)> Find =
      [&](const Relation *R) -> const Relation * {
    while (Leader[R] != R)
      R = Leader[R] = Leader[Leader[R]];
    return R;
  };
  std::function<void(const Statement &)> FindSwaps =
      [&](const Statement &Stmt) {
        switch (Stmt.getKind()) {
        case Statement::Kind::Sequence:
          for (const auto &Child :
               static_cast<const Sequence &>(Stmt).getStatements())
            FindSwaps(*Child);
          return;
        case Statement::Kind::Loop:
          FindSwaps(static_cast<const Loop &>(Stmt).getBody());
          return;
        case Statement::Kind::LogTimer:
          FindSwaps(static_cast<const LogTimer &>(Stmt).getBody());
          return;
        case Statement::Kind::Swap: {
          const auto &S = static_cast<const Swap &>(Stmt);
          Leader[Find(&S.getFirst())] = Find(&S.getSecond());
          return;
        }
        default:
          return;
        }
      };
  if (Prog.hasMain())
    FindSwaps(Prog.getMain());
  if (Prog.hasUpdate())
    FindSwaps(Prog.getUpdate());
  for (const auto &S : Prog.getMaintStrata())
    if (S.Stmt)
      FindSwaps(*S.Stmt);

  // Merge search sets per swap group.
  std::map<const Relation *, std::set<std::uint32_t>> GroupSearches;
  for (const auto &Rel : Prog.getRelations()) {
    auto &Set = GroupSearches[Find(Rel.get())];
    auto It = Searches.find(Rel.get());
    if (It != Searches.end())
      Set.insert(It->second.begin(), It->second.end());
  }

  IndexSelectionResult Result;
  for (auto &Rel : Prog.getRelations()) {
    const Relation *Group = Find(Rel.get());
    const auto &Set = GroupSearches[Group];
    std::vector<std::uint32_t> Sigs(Set.begin(), Set.end());
    RelationIndexInfo Info = computeIndexes(Sigs, Rel->getArity());
    if (Rel->getStructure() == StructureKind::Eqrel) {
      // The equivalence relation serves every search natively from the
      // union-find; it keeps a single natural order.
      Info.Orders.assign(1, {0, 1});
      for (auto &Entry : Info.Placement) {
        Entry.second.OrderIndex = 0;
        Entry.second.PrefixLength =
            static_cast<std::size_t>(std::popcount(Entry.first));
      }
    }
    Rel->setOrders(Info.Orders);
    Result.Info.emplace(Rel.get(), std::move(Info));
  }
  return Result;
}
