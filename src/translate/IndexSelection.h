//===- translate/IndexSelection.h - Automatic index selection ---*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automatic index selection for RAM programs, after Subotic et al.,
/// "Automatic Index Selection for Large-Scale Datalog Computation" (VLDB
/// 2018) — reference [48] of the paper.
///
/// Every primitive search on a relation is a set of bound columns (a
/// *search signature*). A lexicographic order serves a signature iff the
/// signature's columns form a prefix of the order, so a set of signatures
/// that forms a chain under strict set inclusion can share one order. The
/// minimum number of orders is therefore a minimum chain partition of the
/// signature poset, computed via Dilworth's theorem as a maximum bipartite
/// matching on the strict-containment DAG.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_TRANSLATE_INDEXSELECTION_H
#define STIRD_TRANSLATE_INDEXSELECTION_H

#include "ram/Ram.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace stird::translate {

/// Where a primitive search lands after index selection.
struct SearchPlacement {
  std::size_t OrderIndex = 0; ///< which of the relation's orders to use
  std::size_t PrefixLength = 0; ///< how many leading index columns are bound
};

/// Index assignment for one relation.
struct RelationIndexInfo {
  /// Full column permutations, one per physical index; Orders[0] exists for
  /// every relation and serves full scans.
  std::vector<std::vector<std::uint32_t>> Orders;
  /// Search signature (bound-column bitmask) -> placement.
  std::unordered_map<std::uint32_t, SearchPlacement> Placement;
};

/// Result of index selection over a whole program.
struct IndexSelectionResult {
  std::unordered_map<const ram::Relation *, RelationIndexInfo> Info;

  const RelationIndexInfo &of(const ram::Relation &Rel) const {
    auto It = Info.find(&Rel);
    assert(It != Info.end() && "relation was not analyzed");
    return It->second;
  }
};

/// Computes a minimum chain partition of \p Signatures (bitmasks over
/// \p Arity columns) and derives one order per chain. Exposed for direct
/// testing; selectIndexes() is the program-level driver.
RelationIndexInfo
computeIndexes(const std::vector<std::uint32_t> &Signatures,
               std::size_t Arity);

/// Analyzes every primitive search in \p Prog, assigns orders to all
/// relations (writing them into ram::Relation::setOrders) and returns the
/// per-search placements. Relations connected by Swap statements receive
/// identical index sets so contents can be exchanged in O(1).
IndexSelectionResult selectIndexes(ram::Program &Prog);

} // namespace stird::translate

#endif // STIRD_TRANSLATE_INDEXSELECTION_H
