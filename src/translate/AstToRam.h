//===- translate/AstToRam.h - Datalog to RAM translation --------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates a semantically checked Datalog program into a RAM program:
/// strata are evaluated bottom-up, recursive strata become semi-naive
/// fixpoint loops with delta/new relations (Fig 3 of the paper), rules
/// become nested Scan/IndexScan/Filter/Project operation chains, and every
/// rule version is wrapped in a profiling timer.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_TRANSLATE_ASTTORAM_H
#define STIRD_TRANSLATE_ASTTORAM_H

#include "ast/Ast.h"
#include "ast/SemanticAnalysis.h"
#include "ram/Ram.h"
#include "translate/Sips.h"
#include "util/SymbolTable.h"

#include <memory>
#include <string>
#include <vector>

namespace stird::translate {

/// Options controlling translation.
struct TranslationOptions {
  /// Wrap each rule version in a LogTimer so engines can attribute time to
  /// rules (required by the Fig 16 experiment).
  bool EnableProfiling = true;
  /// Emit the Fig-3-style non-emptiness pre-checks around each recursive
  /// rule body.
  bool EnableEmptinessChecks = true;
  /// Force naive fixpoint evaluation for every recursive stratum (no
  /// delta relations; every round rescans the full relations). Slower but
  /// semantically identical — used by the semi-naive equivalence tests.
  bool ForceNaiveEvaluation = false;
  /// Additionally emit an incremental-update statement
  /// (ram::Program::getUpdate()) that re-derives the fixpoint after a
  /// monotonic batch of EDB additions, seeding semi-naive evaluation from
  /// per-relation delta relations instead of recomputing from scratch.
  /// Programs using negation, aggregates, `$` or eqrel relations are not
  /// eligible (additions are not monotonic for them, or deltas lose the
  /// closure semantics); for those no update statement is emitted and
  /// resident sessions fall back to re-running main. Off by default: the
  /// extra aux relations would perturb dumps and index-selection goldens
  /// of the one-shot pipeline.
  bool EmitUpdateProgram = false;
  /// Additionally emit the incremental maintenance program for mixed
  /// insert/retract batches (src/inc): per-stratum update statements
  /// selected between exact derivation counting (non-recursive strata)
  /// and DRed over-delete/rederive (recursive strata), plus the EDB
  /// prologue, the count-bootstrap statement and the aux-clearing
  /// epilogue (see ram::Program::getMaintStrata). Strata using eqrel or
  /// aggregates fall back to a scoped per-stratum re-evaluation recorded
  /// in the plan; programs using `$` get no maintenance at all and the
  /// reason is recorded via ram::Program::setMaintIneligibleReason. Off by
  /// default for the same reason as EmitUpdateProgram: the aux relations
  /// would perturb dumps and index-selection goldens.
  bool EmitMaintenance = false;
  /// Join-ordering strategy applied to every rule body (including update
  /// rules, so the resident-session path plans identically to the one-shot
  /// path). Defaults to source order: plans and RAM goldens only change
  /// when a caller opts in.
  SipsStrategy Sips = SipsStrategy::Source;
  /// Relation cardinalities for SipsStrategy::Profile. Not owned; may be
  /// null, in which case the profile strategy falls back to its built-in
  /// default size for every relation (degrading to roughly max-bound).
  const ProfileFeedback *Feedback = nullptr;
};

/// Result of translation.
struct TranslationResult {
  std::unique_ptr<ram::Program> Prog;
  std::vector<std::string> Errors;

  bool succeeded() const { return Errors.empty(); }
};

/// Translates \p AstProg (checked by \p Info) into RAM. String constants
/// are interned into \p Symbols. Index selection is NOT run here; call
/// selectIndexes() on the result before execution.
TranslationResult translateToRam(const ast::Program &AstProg,
                                 const ast::SemanticInfo &Info,
                                 SymbolTable &Symbols,
                                 const TranslationOptions &Options = {});

} // namespace stird::translate

#endif // STIRD_TRANSLATE_ASTTORAM_H
