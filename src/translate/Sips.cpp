//===- translate/Sips.cpp - Join-order selection for rule bodies --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "translate/Sips.h"

#include "obs/Json.h"
#include "obs/Profile.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_set>

using namespace stird;
using namespace stird::translate;

std::optional<SipsStrategy>
stird::translate::parseSipsStrategy(const std::string &Name) {
  if (Name == "source")
    return SipsStrategy::Source;
  if (Name == "max-bound")
    return SipsStrategy::MaxBound;
  if (Name == "profile")
    return SipsStrategy::Profile;
  return std::nullopt;
}

const char *stird::translate::sipsStrategyName(SipsStrategy Strategy) {
  switch (Strategy) {
  case SipsStrategy::Source:
    return "source";
  case SipsStrategy::MaxBound:
    return "max-bound";
  case SipsStrategy::Profile:
    return "profile";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// ProfileFeedback
//===----------------------------------------------------------------------===//

std::unique_ptr<ProfileFeedback>
ProfileFeedback::fromJson(const std::string &Text, std::string *Error) {
  std::string ParseError;
  std::optional<obs::json::Value> Doc = obs::json::parse(Text, &ParseError);
  if (!Doc) {
    if (Error)
      *Error = "invalid JSON: " + ParseError;
    return nullptr;
  }
  // Backward-compatible reader: v1 documents still seed the join planner,
  // they just lack the v2 access-pattern counters (so substrate selection
  // stays off).
  const obs::json::Value *Schema = Doc->find("schema");
  const bool SchemaOk =
      Schema && Schema->isString() &&
      (Schema->asString() == "stird-profile-v1" ||
       Schema->asString() == obs::ProfileSchemaVersion);
  if (!SchemaOk) {
    if (Error)
      *Error = std::string("not a stird-profile-v1 or ") +
               obs::ProfileSchemaVersion +
               " document (missing or unexpected \"schema\")";
    return nullptr;
  }
  const obs::json::Value *Relations = Doc->find("relations");
  if (!Relations || !Relations->isArray()) {
    if (Error)
      *Error = "profile document has no \"relations\" array";
    return nullptr;
  }
  auto Feedback = std::unique_ptr<ProfileFeedback>(new ProfileFeedback());
  for (const obs::json::Value &Rel : Relations->asArray()) {
    const obs::json::Value *Name = Rel.find("name");
    const obs::json::Value *Peak = Rel.find("peak_size");
    const obs::json::Value *Final = Rel.find("final_size");
    if (!Name || !Name->isString())
      continue;
    double Size = 0;
    if (Peak && Peak->isNumber())
      Size = Peak->asNumber();
    if (Final && Final->isNumber())
      Size = std::max(Size, Final->asNumber());
    Feedback->Sizes[Name->asString()] = Size;
    // v2 access-pattern counters (tolerated as absent: a v1 document, or a
    // hand-trimmed v2 one, simply provides no substrate signal).
    const obs::json::Value *Points = Rel.find("point_lookups");
    const obs::json::Value *Ranges = Rel.find("range_scans");
    if (Points && Points->isNumber() && Ranges && Ranges->isNumber()) {
      RelationAccess A;
      A.PointLookups = Points->asNumber();
      A.RangeScans = Ranges->asNumber();
      if (const obs::json::Value *Min = Rel.find("col0_min");
          Min && Min->isNumber())
        A.Col0Min = Min->asInt();
      if (const obs::json::Value *Max = Rel.find("col0_max");
          Max && Max->isNumber())
        A.Col0Max = Max->asInt();
      if (const obs::json::Value *Kind = Rel.find("kind");
          Kind && Kind->isString())
        A.Kind = Kind->asString();
      Feedback->Access[Name->asString()] = std::move(A);
    }
  }
  if (Feedback->Sizes.empty()) {
    if (Error)
      *Error = "profile document records no relation sizes";
    return nullptr;
  }
  return Feedback;
}

std::unique_ptr<ProfileFeedback>
ProfileFeedback::fromFile(const std::string &Path, std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open feedback file '" + Path + "'";
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return fromJson(Buffer.str(), Error);
}

std::optional<double>
ProfileFeedback::relationSize(const std::string &Relation) const {
  auto It = Sizes.find(Relation);
  if (It == Sizes.end())
    return std::nullopt;
  return It->second;
}

std::optional<ProfileFeedback::RelationAccess>
ProfileFeedback::relationAccess(const std::string &Relation) const {
  auto It = Access.find(Relation);
  if (It == Access.end())
    return std::nullopt;
  return It->second;
}

//===----------------------------------------------------------------------===//
// orderAtoms
//===----------------------------------------------------------------------===//

namespace {

/// The set of variables bound so far plus the equality-derivation rules;
/// closes over equalities so `x = 3, y = x + 1` marks both x and y bound.
class BoundSet {
public:
  BoundSet(const std::vector<SipsEquality> &Equalities)
      : Equalities(Equalities) {
    close();
  }

  bool contains(const std::string &Var) const { return Bound.count(Var); }

  void bindAtom(const SipsAtom &Atom) {
    for (const SipsColumn &Col : Atom.Columns)
      if (!Col.Binds.empty())
        Bound.insert(Col.Binds);
    close();
  }

  /// A column is bound when its value is computable before the scan: it is
  /// a ground expression, or every variable it mentions is already bound.
  /// Wildcards (no vars, not ground) are never bound.
  bool columnBound(const SipsColumn &Col) const {
    if (Col.Ground)
      return true;
    if (Col.Vars.empty())
      return false;
    return std::all_of(Col.Vars.begin(), Col.Vars.end(),
                       [&](const std::string &V) { return contains(V); });
  }

  std::size_t boundColumns(const SipsAtom &Atom) const {
    std::size_t N = 0;
    for (const SipsColumn &Col : Atom.Columns)
      N += columnBound(Col);
    return N;
  }

private:
  void close() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const SipsEquality &Eq : Equalities) {
        if (Bound.count(Eq.first))
          continue;
        if (std::all_of(Eq.second.begin(), Eq.second.end(),
                        [&](const std::string &V) { return Bound.count(V); })) {
          Bound.insert(Eq.first);
          Changed = true;
        }
      }
    }
  }

  const std::vector<SipsEquality> &Equalities;
  std::unordered_set<std::string> Bound;
};

/// Cardinality assumed for relations the feedback document does not cover.
constexpr double UnknownSize = 1000.0;

/// The profile strategy's cost of scanning \p Atom now: |R| raised to the
/// fraction of unbound columns. Fully bound (existence check) costs less
/// than any scan; a full scan costs the whole cardinality.
double profileCost(const SipsAtom &Atom, const BoundSet &Bound) {
  const std::size_t Arity = Atom.Columns.size();
  const std::size_t BoundCols = Bound.boundColumns(Atom);
  if (Arity == 0 || BoundCols == Arity)
    return 0.5;
  const double Size =
      std::max(Atom.EstimatedSize < 0 ? UnknownSize : Atom.EstimatedSize, 1.0);
  return std::pow(Size, static_cast<double>(Arity - BoundCols) /
                            static_cast<double>(Arity));
}

} // namespace

std::vector<std::size_t>
stird::translate::orderAtoms(SipsStrategy Strategy,
                             const std::vector<SipsAtom> &Atoms,
                             const std::vector<SipsEquality> &Equalities) {
  std::vector<std::size_t> Order;
  Order.reserve(Atoms.size());
  if (Strategy == SipsStrategy::Source || Atoms.size() < 2) {
    for (std::size_t I = 0; I < Atoms.size(); ++I)
      Order.push_back(I);
    return Order;
  }

  BoundSet Bound(Equalities);
  std::vector<bool> Placed(Atoms.size(), false);
  for (std::size_t Step = 0; Step < Atoms.size(); ++Step) {
    std::size_t Best = Atoms.size();
    for (std::size_t I = 0; I < Atoms.size(); ++I) {
      if (Placed[I])
        continue;
      if (Best == Atoms.size()) {
        Best = I;
        continue;
      }
      const SipsAtom &A = Atoms[I], &B = Atoms[Best];
      bool Better = false;
      if (Strategy == SipsStrategy::MaxBound) {
        // Most bound columns first; fully bound beats everything (the scan
        // degenerates to an existence check). Ties prefer the delta
        // occurrence (smallest input per iteration), then source order.
        const std::size_t BoundA = Bound.boundColumns(A);
        const std::size_t BoundB = Bound.boundColumns(B);
        const bool FullA = BoundA == A.Columns.size();
        const bool FullB = BoundB == B.Columns.size();
        if (FullA != FullB)
          Better = FullA;
        else if (BoundA != BoundB)
          Better = BoundA > BoundB;
        else if (A.IsDelta != B.IsDelta)
          Better = A.IsDelta;
        else
          Better = A.SourceIndex < B.SourceIndex;
      } else {
        // Profile: cheapest estimated access first. Ties fall back to the
        // max-bound criteria so a stale or flat profile still degrades to
        // the heuristic rather than to source order.
        const double CostA = profileCost(A, Bound);
        const double CostB = profileCost(B, Bound);
        if (CostA != CostB)
          Better = CostA < CostB;
        else if (Bound.boundColumns(A) != Bound.boundColumns(B))
          Better = Bound.boundColumns(A) > Bound.boundColumns(B);
        else if (A.IsDelta != B.IsDelta)
          Better = A.IsDelta;
        else
          Better = A.SourceIndex < B.SourceIndex;
      }
      if (Better)
        Best = I;
    }
    Placed[Best] = true;
    Order.push_back(Best);
    Bound.bindAtom(Atoms[Best]);
  }
  return Order;
}
