//===- der/Brie.h - Specialized trie for Datalog tuples ---------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trie ("Brie" [29]) over fixed-arity RamDomain tuples. One trie level
/// per tuple column; the final column is stored as 64-bit bitmap chunks, so
/// dense value ranges cost one bit per tuple. Like every de-specialized DER
/// structure it stores tuples in the natural lexicographic (signed) order
/// and supports the N prefix-range primitive searches.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_DER_BRIE_H
#define STIRD_DER_BRIE_H

#include "util/RamTypes.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace stird {

/// Trie-of-bitmaps set over Arity-wide tuples.
template <std::size_t Arity> class Brie {
  static_assert(Arity >= 1, "Brie requires at least one column");

  /// A node at level L stores the distinct values of column L under one
  /// prefix: as sorted (value, child) pairs for inner levels, or as sorted
  /// (chunk-base, 64-bit mask) pairs for the last level.
  struct Node {
    std::vector<std::pair<RamDomain, Node *>> Children;
    std::vector<std::pair<RamDomain, std::uint64_t>> Chunks;

    ~Node() {
      for (auto &Entry : Children)
        delete Entry.second;
    }
  };

  /// Chunk base for a last-column value; arithmetic shift keeps the signed
  /// order of bases consistent with the value order.
  static RamDomain chunkBase(RamDomain Value) { return Value >> 6; }
  static std::uint64_t chunkBit(RamDomain Value) {
    return std::uint64_t(1) << (static_cast<std::uint32_t>(Value) & 63U);
  }

public:
  using TupleType = Tuple<Arity>;

  Brie() = default;
  Brie(const Brie &) = delete;
  Brie &operator=(const Brie &) = delete;
  Brie(Brie &&Other) noexcept { swapData(Other); }
  Brie &operator=(Brie &&Other) noexcept {
    clear();
    swapData(Other);
    return *this;
  }
  ~Brie() { clear(); }

  /// Iterates the tuples of one subtrie in lexicographic order. A prefix
  /// range scan is an iterator rooted below the bound columns.
  class iterator {
  public:
    iterator() = default;

    const TupleType &operator*() const {
      assert(!Done && "dereferencing end iterator");
      return Current;
    }
    const TupleType *operator->() const { return &operator*(); }

    iterator &operator++() {
      assert(!Done && "incrementing end iterator");
      advanceBit();
      return *this;
    }

    bool operator==(const iterator &Other) const {
      if (Done || Other.Done)
        return Done == Other.Done;
      return Current == Other.Current;
    }
    bool operator!=(const iterator &Other) const { return !(*this == Other); }

  private:
    friend class Brie;

    /// Positions begin() at the smallest tuple below \p Root, where \p Root
    /// is the node for column \p StartLevel and Current[0..StartLevel) is
    /// already filled with the bound prefix.
    iterator(const Node *Root, std::size_t StartLevel, TupleType Prefix)
        : Current(Prefix), Start(StartLevel) {
      if (!Root) {
        Done = true;
        return;
      }
      Nodes[Start] = Root;
      Done = !descendFrom(Start);
    }

    /// Descends from level \p Level (whose node is set) picking the first
    /// entry at every level; returns false if any level is empty.
    bool descendFrom(std::size_t Level) {
      for (std::size_t L = Level; L + 1 < Arity; ++L) {
        const Node *N = Nodes[L];
        if (N->Children.empty())
          return false;
        Pos[L] = 0;
        Current[L] = N->Children[0].first;
        Nodes[L + 1] = N->Children[0].second;
      }
      const Node *Leaf = Nodes[Arity - 1];
      if (Leaf->Chunks.empty())
        return false;
      ChunkPos = 0;
      return firstBitFrom(0);
    }

    /// Selects the lowest set bit >= \p MinBit of the current chunk, moving
    /// to later chunks as needed. Returns false if the leaf is exhausted.
    bool firstBitFrom(std::uint32_t MinBit) {
      const Node *Leaf = Nodes[Arity - 1];
      while (ChunkPos < Leaf->Chunks.size()) {
        std::uint64_t Mask = Leaf->Chunks[ChunkPos].second;
        if (MinBit < 64)
          Mask &= ~std::uint64_t(0) << MinBit;
        if (Mask != 0) {
          Bit = static_cast<std::uint32_t>(__builtin_ctzll(Mask));
          Current[Arity - 1] = static_cast<RamDomain>(
              (static_cast<std::uint32_t>(Leaf->Chunks[ChunkPos].first) << 6) |
              Bit);
          return true;
        }
        ++ChunkPos;
        MinBit = 0;
      }
      return false;
    }

    void advanceBit() {
      if (OneShot) {
        Done = true;
        return;
      }
      if (Bit < 63 && firstBitFrom(Bit + 1))
        return;
      ++ChunkPos;
      if (firstBitFrom(0))
        return;
      ascend();
    }

    /// Current leaf exhausted: climb to the deepest inner level with a next
    /// sibling, step to it and descend again. Levels above Start are fixed.
    void ascend() {
      std::size_t L = Arity - 1;
      while (L > Start) {
        --L;
        const Node *N = Nodes[L];
        if (Pos[L] + 1 < N->Children.size()) {
          ++Pos[L];
          Current[L] = N->Children[Pos[L]].first;
          Nodes[L + 1] = N->Children[Pos[L]].second;
          if (L + 2 <= Arity - 1) {
            if (!descendFrom(L + 1)) {
              // Children are never empty once created, so descent from a
              // live sibling always succeeds.
              Done = true;
            }
            return;
          }
          ChunkPos = 0;
          if (!firstBitFrom(0))
            Done = true;
          return;
        }
      }
      Done = true;
    }

    TupleType Current{};
    const Node *Nodes[Arity] = {};
    std::size_t Pos[Arity] = {};
    std::size_t ChunkPos = 0;
    std::uint32_t Bit = 0;
    std::size_t Start = 0;
    bool Done = true;
    /// Set for fully-bound ranges: the iterator yields exactly one tuple.
    bool OneShot = false;
  };

  /// Inserts \p Key; returns false if it was already present.
  bool insert(const TupleType &Key) {
    Node *N = &Root;
    for (std::size_t L = 0; L + 1 < Arity; ++L)
      N = findOrCreateChild(N, Key[L]);
    auto It = std::lower_bound(
        N->Chunks.begin(), N->Chunks.end(), chunkBase(Key[Arity - 1]),
        [](const auto &Entry, RamDomain Base) { return Entry.first < Base; });
    const std::uint64_t Bit = chunkBit(Key[Arity - 1]);
    if (It == N->Chunks.end() || It->first != chunkBase(Key[Arity - 1])) {
      N->Chunks.insert(It, {chunkBase(Key[Arity - 1]), Bit});
      ++NumTuples;
      return true;
    }
    if (It->second & Bit)
      return false;
    It->second |= Bit;
    ++NumTuples;
    return true;
  }

  /// Removes \p Key; returns false if it was not present. Empty chunks and
  /// empty child subtrees are pruned on the way back up, preserving the
  /// "children and chunks are never empty" invariant that iteration and
  /// partition() rely on.
  bool erase(const TupleType &Key) {
    Node *Path[Arity];
    Node *N = &Root;
    for (std::size_t L = 0; L + 1 < Arity; ++L) {
      Path[L] = N;
      auto It = std::lower_bound(
          N->Children.begin(), N->Children.end(), Key[L],
          [](const auto &Entry, RamDomain V) { return Entry.first < V; });
      if (It == N->Children.end() || It->first != Key[L])
        return false;
      N = It->second;
    }
    auto It = std::lower_bound(
        N->Chunks.begin(), N->Chunks.end(), chunkBase(Key[Arity - 1]),
        [](const auto &Entry, RamDomain Base) { return Entry.first < Base; });
    const std::uint64_t Bit = chunkBit(Key[Arity - 1]);
    if (It == N->Chunks.end() || It->first != chunkBase(Key[Arity - 1]) ||
        !(It->second & Bit))
      return false;
    It->second &= ~Bit;
    if (It->second == 0)
      N->Chunks.erase(It);
    --NumTuples;
    // Prune now-empty subtrees bottom-up (the root itself may stay empty).
    for (std::size_t L = Arity - 1; L-- > 0;) {
      if (!N->Children.empty() || !N->Chunks.empty())
        break;
      Node *P = Path[L];
      auto ChildIt = std::lower_bound(
          P->Children.begin(), P->Children.end(), Key[L],
          [](const auto &Entry, RamDomain V) { return Entry.first < V; });
      assert(ChildIt != P->Children.end() && ChildIt->second == N);
      delete N;
      P->Children.erase(ChildIt);
      N = P;
    }
    return true;
  }

  /// Membership test for the full tuple.
  bool contains(const TupleType &Key) const {
    const Node *N = &Root;
    for (std::size_t L = 0; L + 1 < Arity; ++L) {
      N = findChild(N, Key[L]);
      if (!N)
        return false;
    }
    auto It = std::lower_bound(
        N->Chunks.begin(), N->Chunks.end(), chunkBase(Key[Arity - 1]),
        [](const auto &Entry, RamDomain Base) { return Entry.first < Base; });
    return It != N->Chunks.end() && It->first == chunkBase(Key[Arity - 1]) &&
           (It->second & chunkBit(Key[Arity - 1]));
  }

  iterator begin() const { return iterator(&Root, 0, TupleType{}); }
  iterator end() const { return iterator(); }

  /// Iterator over tuples whose first \p PrefixLen columns equal \p Key's;
  /// the matching end iterator is end().
  iterator prefixBegin(const TupleType &Key, std::size_t PrefixLen) const {
    assert(PrefixLen <= Arity && "prefix longer than arity");
    if (PrefixLen == Arity)
      return contains(Key) ? singleton(Key) : end();
    const Node *N = &Root;
    TupleType Prefix{};
    for (std::size_t L = 0; L < PrefixLen; ++L) {
      Prefix[L] = Key[L];
      N = findChild(N, Key[L]);
      if (!N)
        return end();
    }
    return iterator(N, PrefixLen, Prefix);
  }

  /// True if some tuple matches the first \p PrefixLen columns of \p Key.
  bool containsPrefix(const TupleType &Key, std::size_t PrefixLen) const {
    return prefixBegin(Key, PrefixLen) != end();
  }

  std::size_t size() const { return NumTuples; }
  bool empty() const { return NumTuples == 0; }

  void clear() {
    for (auto &Entry : Root.Children)
      delete Entry.second;
    Root.Children.clear();
    Root.Chunks.clear();
    NumTuples = 0;
  }

  void swapData(Brie &Other) {
    Root.Children.swap(Other.Root.Children);
    Root.Chunks.swap(Other.Root.Chunks);
    std::swap(NumTuples, Other.NumTuples);
  }

  /// Splits the set into at most \p MaxParts disjoint, order-contiguous
  /// iterator ranges whose concatenation is the full scan. Split points are
  /// the root's children (bitmap chunks for Arity == 1), so fewer ranges
  /// than requested may come back; an empty set yields none. Safe because
  /// child subtrees and chunks are never left empty (erase() prunes them
  /// eagerly), so every boundary iterator is dereferenceable.
  std::vector<std::pair<iterator, iterator>>
  partition(std::size_t MaxParts) const {
    std::vector<std::pair<iterator, iterator>> Parts;
    if (NumTuples == 0)
      return Parts;
    if (MaxParts <= 1) {
      Parts.emplace_back(begin(), end());
      return Parts;
    }
    const std::size_t Slots =
        Arity == 1 ? Root.Chunks.size() : Root.Children.size();
    const std::size_t N = std::min(MaxParts, Slots);
    std::vector<iterator> Bounds;
    Bounds.reserve(N);
    for (std::size_t P = 0; P < N; ++P)
      Bounds.push_back(beginAtSlot(P * Slots / N));
    for (std::size_t P = 0; P + 1 < N; ++P)
      Parts.emplace_back(Bounds[P], Bounds[P + 1]);
    Parts.emplace_back(Bounds[N - 1], end());
    return Parts;
  }

private:
  /// An iterator on the first tuple under the root's \p Slot-th child
  /// (chunk for Arity == 1); the partition boundaries.
  iterator beginAtSlot(std::size_t Slot) const {
    iterator It;
    It.Start = 0;
    It.Nodes[0] = &Root;
    if constexpr (Arity == 1) {
      It.ChunkPos = Slot;
      It.Done = !It.firstBitFrom(0);
    } else {
      It.Pos[0] = Slot;
      It.Current[0] = Root.Children[Slot].first;
      It.Nodes[1] = Root.Children[Slot].second;
      It.Done = !It.descendFrom(1);
    }
    return It;
  }

  /// An iterator positioned exactly on \p Key with no continuation: used
  /// for fully-bound "ranges" of at most one tuple.
  iterator singleton(const TupleType &Key) const {
    return prefixAt(Key);
  }

  iterator prefixAt(const TupleType &Key) const {
    // Descend all inner levels along Key and position the leaf on the bit.
    iterator It;
    It.Start = Arity - 1;
    It.Current = Key;
    const Node *N = &Root;
    for (std::size_t L = 0; L + 1 < Arity; ++L) {
      N = findChild(N, Key[L]);
      assert(N && "singleton of absent tuple");
    }
    It.Nodes[Arity - 1] = N;
    auto ChunkIt = std::lower_bound(
        N->Chunks.begin(), N->Chunks.end(), chunkBase(Key[Arity - 1]),
        [](const auto &Entry, RamDomain Base) { return Entry.first < Base; });
    It.ChunkPos = static_cast<std::size_t>(ChunkIt - N->Chunks.begin());
    It.Bit = static_cast<std::uint32_t>(Key[Arity - 1]) & 63U;
    It.Done = false;
    It.OneShot = true;
    return It;
  }

  static const Node *findChild(const Node *N, RamDomain Value) {
    auto It = std::lower_bound(
        N->Children.begin(), N->Children.end(), Value,
        [](const auto &Entry, RamDomain V) { return Entry.first < V; });
    if (It == N->Children.end() || It->first != Value)
      return nullptr;
    return It->second;
  }

  static Node *findOrCreateChild(Node *N, RamDomain Value) {
    auto It = std::lower_bound(
        N->Children.begin(), N->Children.end(), Value,
        [](const auto &Entry, RamDomain V) { return Entry.first < V; });
    if (It != N->Children.end() && It->first == Value)
      return It->second;
    Node *Child = new Node();
    N->Children.insert(It, {Value, Child});
    return Child;
  }

  Node Root;
  std::size_t NumTuples = 0;
};

} // namespace stird

#endif // STIRD_DER_BRIE_H
