//===- der/BTreeSet.h - Specialized B-tree for Datalog tuples ---*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory B-tree set over fixed-arity RamDomain tuples, the primary
/// DER (Datalog-Enabled Relational) data structure of the paper [30,31].
///
/// The tree is specialized by C++ template parameters exactly as in
/// Soufflé's synthesizer: the arity is a compile-time constant, so key
/// copies are fixed-size memmoves, comparisons unroll and node fan-out is
/// tuned to the tuple width. De-specialization (Section 3 of the paper)
/// keeps only the natural lexicographic order — any other order is obtained
/// by permuting tuples *before* insertion — so a single comparator suffices.
/// The optional Compare parameter exists solely to also host the *legacy*
/// interpreter's runtime-order comparator, the slow baseline of Section 5.1.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_DER_BTREESET_H
#define STIRD_DER_BTREESET_H

#include "util/RamTypes.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stird {

/// Natural lexicographic comparison over whole tuples. Fully inlinable:
/// the loop bound is the compile-time arity.
template <std::size_t Arity> struct TupleCompare {
  bool less(const Tuple<Arity> &A, const Tuple<Arity> &B) const {
    for (std::size_t I = 0; I < Arity; ++I) {
      if (A[I] < B[I])
        return true;
      if (A[I] > B[I])
        return false;
    }
    return false;
  }
  bool equal(const Tuple<Arity> &A, const Tuple<Arity> &B) const {
    return A == B;
  }
};

/// The legacy interpreter's comparator: the lexicographic order lives in a
/// runtime array and the comparison itself is reached through a function
/// pointer, so — exactly as Section 5.1 describes — the compiler can
/// neither inline the comparator into the B-tree operations nor unroll the
/// permutation.
template <std::size_t Arity> struct RuntimeOrderCompare {
  using CompareFn = int (*)(const RamDomain *, const RamDomain *,
                            const std::uint32_t *, std::size_t);

  /// Order[K] is the source column compared at position K; only the first
  /// Length entries participate.
  const std::uint32_t *Order = nullptr;
  std::size_t Length = 0;
  /// Indirect comparison entry point (a runtime argument, as in the
  /// legacy engine); initialized to compareLex.
  CompareFn Fn = &RuntimeOrderCompare::compareLex;

#if defined(__GNUC__)
  __attribute__((noinline))
#endif
  static int
  compareLex(const RamDomain *A, const RamDomain *B,
             const std::uint32_t *Order, std::size_t Length) {
    for (std::size_t K = 0; K < Length; ++K) {
      const std::uint32_t Col = Order[K];
      if (A[Col] < B[Col])
        return -1;
      if (A[Col] > B[Col])
        return 1;
    }
    return 0;
  }

  bool less(const Tuple<Arity> &A, const Tuple<Arity> &B) const {
    return Fn(A.data(), B.data(), Order, Length) < 0;
  }
  bool equal(const Tuple<Arity> &A, const Tuple<Arity> &B) const {
    return Fn(A.data(), B.data(), Order, Length) == 0;
  }
};

/// A set of Arity-wide tuples stored in a B-tree in natural lexicographic
/// order (or the order induced by Compare).
///
/// Supports the DER primitive operations: insert, membership test, ordered
/// enumeration, and the N prefix range queries expressed as lower/upper
/// bound searches over min/max-padded tuples.
template <std::size_t Arity, typename Compare = TupleCompare<Arity>>
class BTreeSet {
public:
  using TupleType = Tuple<Arity>;

private:
  /// Keys per node, tuned so a node's key block is roughly 256 bytes, kept
  /// odd so splits have a unique median.
  static constexpr std::size_t computeMaxKeys() {
    std::size_t Keys = 256 / sizeof(TupleType);
    if (Keys < 3)
      Keys = 3;
    if (Keys > 15)
      Keys = 15;
    return Keys | 1;
  }
  static constexpr std::size_t MaxKeys = computeMaxKeys();

  struct Node {
    Node *Parent = nullptr;
    std::uint16_t PosInParent = 0;
    std::uint16_t NumKeys = 0;
    bool IsLeaf = true;
    TupleType Keys[MaxKeys];
    Node *Children[MaxKeys + 1];
  };

public:
  /// Forward iterator over the tuples in comparator order.
  class iterator {
  public:
    iterator() = default;
    iterator(const Node *N, std::size_t Pos) : Cur(N), Pos(Pos) {}

    const TupleType &operator*() const {
      assert(Cur && "dereferencing end iterator");
      return Cur->Keys[Pos];
    }
    const TupleType *operator->() const { return &operator*(); }

    iterator &operator++() {
      assert(Cur && "incrementing end iterator");
      if (!Cur->IsLeaf) {
        // Successor is the leftmost key of the subtree right of this key.
        const Node *N = Cur->Children[Pos + 1];
        while (!N->IsLeaf)
          N = N->Children[0];
        Cur = N;
        Pos = 0;
        return *this;
      }
      ++Pos;
      while (Cur && Pos == Cur->NumKeys) {
        Pos = Cur->PosInParent;
        Cur = Cur->Parent;
      }
      if (!Cur)
        Pos = 0;
      return *this;
    }

    bool operator==(const iterator &Other) const {
      return Cur == Other.Cur && Pos == Other.Pos;
    }
    bool operator!=(const iterator &Other) const { return !(*this == Other); }

  private:
    const Node *Cur = nullptr;
    std::size_t Pos = 0;
  };

  BTreeSet() = default;
  explicit BTreeSet(Compare Cmp) : Cmp(std::move(Cmp)) {}

  BTreeSet(const BTreeSet &) = delete;
  BTreeSet &operator=(const BTreeSet &) = delete;

  BTreeSet(BTreeSet &&Other) noexcept
      : Root(Other.Root), NumTuples(Other.NumTuples),
        Cmp(std::move(Other.Cmp)) {
    Other.Root = nullptr;
    Other.NumTuples = 0;
  }
  BTreeSet &operator=(BTreeSet &&Other) noexcept {
    if (this == &Other)
      return *this;
    clear();
    Root = Other.Root;
    NumTuples = Other.NumTuples;
    Cmp = std::move(Other.Cmp);
    Other.Root = nullptr;
    Other.NumTuples = 0;
    return *this;
  }

  ~BTreeSet() { clear(); }

  /// Inserts \p Key; returns false if it was already present.
  bool insert(const TupleType &Key) {
    if (!Root) {
      Root = new Node();
      Root->NumKeys = 1;
      Root->Keys[0] = Key;
      NumTuples = 1;
      return true;
    }
    if (Root->NumKeys == MaxKeys) {
      Node *NewRoot = new Node();
      NewRoot->IsLeaf = false;
      NewRoot->Children[0] = Root;
      Root->Parent = NewRoot;
      Root->PosInParent = 0;
      splitChild(NewRoot, 0);
      Root = NewRoot;
    }
    return insertNonFull(Root, Key);
  }

  /// Membership test for the full tuple.
  bool contains(const TupleType &Key) const {
    const Node *N = Root;
    while (N) {
      std::size_t I = lowerPos(N, Key);
      if (I < N->NumKeys && Cmp.equal(N->Keys[I], Key))
        return true;
      if (N->IsLeaf)
        return false;
      N = N->Children[I];
    }
    return false;
  }

  /// Removes \p Key; returns false if it was not present.
  ///
  /// Rebalancing is lazy ("min-fill 0"): nodes may drain down to a single
  /// key, and only a node that becomes completely empty is fixed up, by
  /// borrowing a key through the parent from a sibling with two or more
  /// keys, or by merging with a one-key sibling (which may cascade the
  /// underflow upwards and eventually collapse the root). The tree a
  /// sequence of erases leaves behind can therefore be sparser than one
  /// built by insertion only, but no node is ever empty, which is the one
  /// invariant iteration, partition() and the parent back-pointers need.
  bool erase(const TupleType &Key) {
    Node *N = Root;
    std::size_t I = 0;
    while (N) {
      I = lowerPos(N, Key);
      if (I < N->NumKeys && Cmp.equal(N->Keys[I], Key))
        break;
      if (N->IsLeaf)
        return false;
      N = N->Children[I];
    }
    if (!N)
      return false;
    if (!N->IsLeaf) {
      // Replace the internal key with its successor (the leftmost key of
      // the right subtree), then erase that key from its leaf instead.
      Node *L = N->Children[I + 1];
      while (!L->IsLeaf)
        L = L->Children[0];
      N->Keys[I] = L->Keys[0];
      N = L;
      I = 0;
    }
    for (std::size_t J = I + 1; J < N->NumKeys; ++J)
      N->Keys[J - 1] = N->Keys[J];
    --N->NumKeys;
    --NumTuples;
    if (N->NumKeys == 0)
      fixEmpty(N);
    return true;
  }

  /// First tuple not less than \p Key.
  iterator lowerBound(const TupleType &Key) const {
    iterator Result = end();
    const Node *N = Root;
    while (N) {
      std::size_t I = lowerPos(N, Key);
      if (I < N->NumKeys)
        Result = iterator(N, I);
      if (N->IsLeaf)
        break;
      N = N->Children[I];
    }
    return Result;
  }

  /// First tuple greater than \p Key.
  iterator upperBound(const TupleType &Key) const {
    iterator Result = end();
    const Node *N = Root;
    while (N) {
      std::size_t I = upperPos(N, Key);
      if (I < N->NumKeys)
        Result = iterator(N, I);
      if (N->IsLeaf)
        break;
      N = N->Children[I];
    }
    return Result;
  }

  iterator begin() const {
    if (!Root)
      return end();
    const Node *N = Root;
    while (!N->IsLeaf)
      N = N->Children[0];
    return iterator(N, 0);
  }
  iterator end() const { return iterator(); }

  std::size_t size() const { return NumTuples; }
  bool empty() const { return NumTuples == 0; }

  /// Removes all tuples and frees all nodes.
  void clear() {
    if (Root)
      destroy(Root);
    Root = nullptr;
    NumTuples = 0;
  }

  /// Exchanges contents with \p Other in O(1); both trees must use
  /// equivalent comparators (callers swap whole relations, Section 2).
  void swapData(BTreeSet &Other) {
    std::swap(Root, Other.Root);
    std::swap(NumTuples, Other.NumTuples);
    std::swap(Cmp, Other.Cmp);
  }

  /// Splits the set into at most \p MaxParts disjoint, order-contiguous
  /// iterator ranges whose concatenation is the full scan. Split points
  /// are stored keys collected from as many top tree levels as \p
  /// MaxParts needs (morsel-sized partitioning may want far more ranges
  /// than the top two levels hold), so fewer ranges than requested can
  /// still come back on small trees; an empty set yields none.
  std::vector<std::pair<iterator, iterator>>
  partition(std::size_t MaxParts) const {
    std::vector<std::pair<iterator, iterator>> Parts;
    if (!Root)
      return Parts;
    if (MaxParts <= 1) {
      Parts.emplace_back(begin(), end());
      return Parts;
    }
    splitBySeparators(Parts, separatorsFor(MaxParts), begin(), end(),
                      MaxParts);
    return Parts;
  }

  /// Range analogue of partition(): splits [lowerBound(Low),
  /// upperBound(High)) instead of the full scan.
  std::vector<std::pair<iterator, iterator>>
  partitionRange(const TupleType &Low, const TupleType &High,
                 std::size_t MaxParts) const {
    std::vector<std::pair<iterator, iterator>> Parts;
    if (!Root)
      return Parts;
    iterator First = lowerBound(Low);
    iterator Last = upperBound(High);
    if (First == Last)
      return Parts;
    if (MaxParts <= 1) {
      Parts.emplace_back(First, Last);
      return Parts;
    }
    std::vector<TupleType> Seps = separatorsFor(MaxParts);
    // Only separators in (Low, High] produce bounds inside [First, Last).
    std::vector<TupleType> Inside;
    for (const TupleType &S : Seps)
      if (Cmp.less(Low, S) && !Cmp.less(High, S))
        Inside.push_back(S);
    splitBySeparators(Parts, Inside, First, Last, MaxParts);
    return Parts;
  }

private:
  /// Sorted separator keys for a \p MaxParts-way split: starts with the
  /// top two levels and deepens one level at a time until the keys
  /// suffice or the whole tree has been collected.
  std::vector<TupleType> separatorsFor(std::size_t MaxParts) const {
    std::vector<TupleType> Seps;
    collectSeparators(Root, /*Depth=*/1, Seps);
    for (int Depth = 2; Seps.size() + 1 < MaxParts; ++Depth) {
      const std::size_t Before = Seps.size();
      Seps.clear();
      collectSeparators(Root, Depth, Seps);
      if (Seps.size() == Before)
        break;
    }
    return Seps;
  }

  /// In-order collection of the keys of the top \p Depth + 1 levels; being
  /// stored keys they are exact lowerBound targets, and in-order collection
  /// keeps them sorted.
  void collectSeparators(const Node *N, int Depth,
                         std::vector<TupleType> &Keys) const {
    for (std::size_t I = 0; I < N->NumKeys; ++I) {
      if (!N->IsLeaf && Depth > 0)
        collectSeparators(N->Children[I], Depth - 1, Keys);
      Keys.push_back(N->Keys[I]);
    }
    if (!N->IsLeaf && Depth > 0)
      collectSeparators(N->Children[N->NumKeys], Depth - 1, Keys);
  }

  /// Cuts [First, Last) at evenly spaced entries of the sorted \p Seps into
  /// min(MaxParts, Seps.size() + 1) contiguous ranges.
  void splitBySeparators(std::vector<std::pair<iterator, iterator>> &Parts,
                         const std::vector<TupleType> &Seps, iterator First,
                         iterator Last, std::size_t MaxParts) const {
    std::size_t N = std::min(MaxParts, Seps.size() + 1);
    iterator Start = First;
    for (std::size_t P = 1; P < N; ++P) {
      iterator Split = lowerBound(Seps[P * Seps.size() / N]);
      Parts.emplace_back(Start, Split);
      Start = Split;
    }
    Parts.emplace_back(Start, Last);
  }

  /// First index I in \p N with Keys[I] >= Key.
  std::size_t lowerPos(const Node *N, const TupleType &Key) const {
    std::size_t I = 0;
    while (I < N->NumKeys && Cmp.less(N->Keys[I], Key))
      ++I;
    return I;
  }
  /// First index I in \p N with Keys[I] > Key.
  std::size_t upperPos(const Node *N, const TupleType &Key) const {
    std::size_t I = 0;
    while (I < N->NumKeys && !Cmp.less(Key, N->Keys[I]))
      ++I;
    return I;
  }

  bool insertNonFull(Node *N, const TupleType &Key) {
    for (;;) {
      std::size_t I = lowerPos(N, Key);
      if (I < N->NumKeys && Cmp.equal(N->Keys[I], Key))
        return false;
      if (N->IsLeaf) {
        for (std::size_t J = N->NumKeys; J > I; --J)
          N->Keys[J] = N->Keys[J - 1];
        N->Keys[I] = Key;
        ++N->NumKeys;
        ++NumTuples;
        return true;
      }
      if (N->Children[I]->NumKeys == MaxKeys) {
        splitChild(N, I);
        // The median moved up into position I; re-decide the direction.
        if (Cmp.equal(N->Keys[I], Key))
          return false;
        if (Cmp.less(N->Keys[I], Key))
          ++I;
      }
      N = N->Children[I];
    }
  }

  /// Splits the full child at \p Index of \p Parent, moving the median key
  /// up. Maintains parent back-pointers of all moved grandchildren.
  void splitChild(Node *Parent, std::size_t Index) {
    Node *Left = Parent->Children[Index];
    assert(Left->NumKeys == MaxKeys && "splitting a non-full node");
    constexpr std::size_t Mid = MaxKeys / 2;

    Node *Right = new Node();
    Right->IsLeaf = Left->IsLeaf;
    Right->NumKeys = static_cast<std::uint16_t>(MaxKeys - Mid - 1);
    for (std::size_t J = 0; J < Right->NumKeys; ++J)
      Right->Keys[J] = Left->Keys[Mid + 1 + J];
    if (!Left->IsLeaf) {
      for (std::size_t J = 0; J <= Right->NumKeys; ++J) {
        Right->Children[J] = Left->Children[Mid + 1 + J];
        Right->Children[J]->Parent = Right;
        Right->Children[J]->PosInParent = static_cast<std::uint16_t>(J);
      }
    }
    Left->NumKeys = static_cast<std::uint16_t>(Mid);

    // Shift the parent's keys/children to make room at Index.
    for (std::size_t J = Parent->NumKeys; J > Index; --J) {
      Parent->Keys[J] = Parent->Keys[J - 1];
      Parent->Children[J + 1] = Parent->Children[J];
      Parent->Children[J + 1]->PosInParent = static_cast<std::uint16_t>(J + 1);
    }
    Parent->Keys[Index] = Left->Keys[Mid];
    Parent->Children[Index + 1] = Right;
    ++Parent->NumKeys;

    Right->Parent = Parent;
    Right->PosInParent = static_cast<std::uint16_t>(Index + 1);
  }

  /// Restores the no-empty-node invariant after \p N lost its last key.
  /// A non-leaf \p N still owns exactly one child, Children[0].
  void fixEmpty(Node *N) {
    for (;;) {
      if (N == Root) {
        if (N->IsLeaf) {
          delete N;
          Root = nullptr;
        } else {
          Root = N->Children[0];
          Root->Parent = nullptr;
          Root->PosInParent = 0;
          delete N;
        }
        return;
      }
      Node *P = N->Parent;
      const std::size_t Pos = N->PosInParent;

      // Borrow through the parent from a sibling that can spare a key.
      if (Pos > 0 && P->Children[Pos - 1]->NumKeys >= 2) {
        Node *L = P->Children[Pos - 1];
        N->Keys[0] = P->Keys[Pos - 1];
        if (!N->IsLeaf) {
          N->Children[1] = N->Children[0];
          N->Children[1]->PosInParent = 1;
          Node *C = L->Children[L->NumKeys];
          N->Children[0] = C;
          C->Parent = N;
          C->PosInParent = 0;
        }
        N->NumKeys = 1;
        P->Keys[Pos - 1] = L->Keys[L->NumKeys - 1];
        --L->NumKeys;
        return;
      }
      if (Pos < P->NumKeys && P->Children[Pos + 1]->NumKeys >= 2) {
        Node *R = P->Children[Pos + 1];
        N->Keys[0] = P->Keys[Pos];
        if (!N->IsLeaf) {
          Node *C = R->Children[0];
          N->Children[1] = C;
          C->Parent = N;
          C->PosInParent = 1;
          for (std::size_t J = 0; J < R->NumKeys; ++J) {
            R->Children[J] = R->Children[J + 1];
            R->Children[J]->PosInParent = static_cast<std::uint16_t>(J);
          }
        }
        N->NumKeys = 1;
        P->Keys[Pos] = R->Keys[0];
        for (std::size_t J = 1; J < R->NumKeys; ++J)
          R->Keys[J - 1] = R->Keys[J];
        --R->NumKeys;
        return;
      }

      // Both neighbours are at one key: merge with one of them, absorbing
      // the separator. The result has at most two keys, well under MaxKeys.
      std::size_t SepIdx;
      Node *Left, *Right;
      if (Pos > 0) {
        SepIdx = Pos - 1;
        Left = P->Children[Pos - 1];
        Right = N;
      } else {
        SepIdx = Pos;
        Left = N;
        Right = P->Children[Pos + 1];
      }
      const std::size_t L0 = Left->NumKeys;
      Left->Keys[L0] = P->Keys[SepIdx];
      for (std::size_t J = 0; J < Right->NumKeys; ++J)
        Left->Keys[L0 + 1 + J] = Right->Keys[J];
      if (!Left->IsLeaf) {
        for (std::size_t J = 0; J <= Right->NumKeys; ++J) {
          Node *C = Right->Children[J];
          Left->Children[L0 + 1 + J] = C;
          C->Parent = Left;
          C->PosInParent = static_cast<std::uint16_t>(L0 + 1 + J);
        }
      }
      Left->NumKeys = static_cast<std::uint16_t>(L0 + 1 + Right->NumKeys);
      delete Right;

      for (std::size_t J = SepIdx + 1; J < P->NumKeys; ++J)
        P->Keys[J - 1] = P->Keys[J];
      for (std::size_t J = SepIdx + 2; J <= P->NumKeys; ++J) {
        P->Children[J - 1] = P->Children[J];
        P->Children[J - 1]->PosInParent = static_cast<std::uint16_t>(J - 1);
      }
      --P->NumKeys;
      if (P->NumKeys > 0)
        return;
      N = P;
    }
  }

  void destroy(Node *N) {
    if (!N->IsLeaf)
      for (std::size_t I = 0; I <= N->NumKeys; ++I)
        destroy(N->Children[I]);
    delete N;
  }

  Node *Root = nullptr;
  std::size_t NumTuples = 0;
  Compare Cmp;
};

} // namespace stird

#endif // STIRD_DER_BTREESET_H
