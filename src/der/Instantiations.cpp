//===- der/Instantiations.cpp - Pre-compiled DER portfolio -----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicitly instantiates every member of the de-specialized DER
/// portfolio. After the two de-specialization steps of Section 3 an index
/// is identified by (implementation, arity) alone, which makes the
/// parameter space small enough to pre-compile in full — this file is that
/// pre-compilation, and doubles as a compile-time check that every
/// structure supports the whole arity range the factories expose.
///
//===----------------------------------------------------------------------===//

#include "der/Art.h"
#include "der/BTreeSet.h"
#include "der/Brie.h"

namespace stird {

#define STIRD_INSTANTIATE_BTREE(Arity)                                        \
  template class BTreeSet<Arity>;                                             \
  template class BTreeSet<Arity, RuntimeOrderCompare<Arity>>;

STIRD_INSTANTIATE_BTREE(1)
STIRD_INSTANTIATE_BTREE(2)
STIRD_INSTANTIATE_BTREE(3)
STIRD_INSTANTIATE_BTREE(4)
STIRD_INSTANTIATE_BTREE(5)
STIRD_INSTANTIATE_BTREE(6)
STIRD_INSTANTIATE_BTREE(7)
STIRD_INSTANTIATE_BTREE(8)
STIRD_INSTANTIATE_BTREE(9)
STIRD_INSTANTIATE_BTREE(10)
STIRD_INSTANTIATE_BTREE(11)
STIRD_INSTANTIATE_BTREE(12)
STIRD_INSTANTIATE_BTREE(13)
STIRD_INSTANTIATE_BTREE(14)
STIRD_INSTANTIATE_BTREE(15)
STIRD_INSTANTIATE_BTREE(16)
#undef STIRD_INSTANTIATE_BTREE

template class Brie<1>;
template class Brie<2>;
template class Brie<3>;
template class Brie<4>;
template class Brie<5>;
template class Brie<6>;
template class Brie<7>;
template class Brie<8>;

template class ArtSet<1>;
template class ArtSet<2>;
template class ArtSet<3>;
template class ArtSet<4>;
template class ArtSet<5>;
template class ArtSet<6>;
template class ArtSet<7>;
template class ArtSet<8>;

} // namespace stird
