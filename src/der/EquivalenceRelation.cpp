//===- der/EquivalenceRelation.cpp - Union-find binary relation ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "der/EquivalenceRelation.h"

#include <algorithm>
#include <cassert>

using namespace stird;

const std::vector<RamDomain> EquivalenceRelation::EmptyMembers;

std::size_t EquivalenceRelation::internValue(RamDomain Value) {
  auto It = IndexOf.find(Value);
  if (It != IndexOf.end())
    return It->second;
  std::size_t Index = ValueOf.size();
  IndexOf.emplace(Value, Index);
  ValueOf.push_back(Value);
  Parent.push_back(Index);
  Rank.push_back(0);
  ClassSize.push_back(1);
  NumPairs += 1; // the reflexive pair (Value, Value)
  Stale = true;
  return Index;
}

std::size_t EquivalenceRelation::findRoot(std::size_t Index) const {
  // Path compression: Parent is mutable so reads stay amortized-constant.
  std::size_t Root = Index;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  while (Parent[Index] != Root) {
    std::size_t Next = Parent[Index];
    Parent[Index] = Root;
    Index = Next;
  }
  return Root;
}

bool EquivalenceRelation::insert(RamDomain A, RamDomain B) {
  const std::size_t HadA = IndexOf.count(A);
  const std::size_t HadB = IndexOf.count(B);
  std::size_t IA = internValue(A);
  std::size_t IB = internValue(B);
  std::size_t RootA = findRoot(IA);
  std::size_t RootB = findRoot(IB);
  if (RootA == RootB)
    return !(HadA && HadB); // grew iff a value was new
  if (Rank[RootA] < Rank[RootB])
    std::swap(RootA, RootB);
  const std::size_t SizeA = ClassSize[RootA];
  const std::size_t SizeB = ClassSize[RootB];
  Parent[RootB] = RootA;
  if (Rank[RootA] == Rank[RootB])
    ++Rank[RootA];
  ClassSize[RootA] = SizeA + SizeB;
  // Pairs go from SizeA^2 + SizeB^2 to (SizeA + SizeB)^2.
  NumPairs += 2 * SizeA * SizeB;
  Stale = true;
  return true;
}

bool EquivalenceRelation::contains(RamDomain A, RamDomain B) const {
  auto ItA = IndexOf.find(A);
  if (ItA == IndexOf.end())
    return false;
  auto ItB = IndexOf.find(B);
  if (ItB == IndexOf.end())
    return false;
  return findRoot(ItA->second) == findRoot(ItB->second);
}

void EquivalenceRelation::clear() {
  IndexOf.clear();
  ValueOf.clear();
  Parent.clear();
  Rank.clear();
  ClassSize.clear();
  NumPairs = 0;
  Stale = false;
  SortedValues.clear();
  MembersOfRoot.clear();
}

void EquivalenceRelation::swapData(EquivalenceRelation &Other) {
  IndexOf.swap(Other.IndexOf);
  ValueOf.swap(Other.ValueOf);
  Parent.swap(Other.Parent);
  Rank.swap(Other.Rank);
  ClassSize.swap(Other.ClassSize);
  std::swap(NumPairs, Other.NumPairs);
  std::swap(Stale, Other.Stale);
  SortedValues.swap(Other.SortedValues);
  MembersOfRoot.swap(Other.MembersOfRoot);
}

void EquivalenceRelation::refresh() const {
  if (!Stale)
    return;
  SortedValues = ValueOf;
  std::sort(SortedValues.begin(), SortedValues.end());
  MembersOfRoot.clear();
  for (std::size_t I = 0; I < ValueOf.size(); ++I)
    MembersOfRoot[findRoot(I)].push_back(ValueOf[I]);
  for (auto &Entry : MembersOfRoot)
    std::sort(Entry.second.begin(), Entry.second.end());
  Stale = false;
}

const std::vector<RamDomain> &
EquivalenceRelation::membersOf(RamDomain A) const {
  refresh();
  auto It = IndexOf.find(A);
  if (It == IndexOf.end())
    return EmptyMembers;
  return MembersOfRoot.at(findRoot(It->second));
}
