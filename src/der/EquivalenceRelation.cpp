//===- der/EquivalenceRelation.cpp - Union-find binary relation ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "der/EquivalenceRelation.h"

#include <algorithm>
#include <cassert>

using namespace stird;

const std::vector<RamDomain> EquivalenceRelation::EmptyMembers;

std::size_t EquivalenceRelation::internValue(RamDomain Value) {
  auto It = IndexOf.find(Value);
  if (It != IndexOf.end())
    return It->second;
  std::size_t Index = ValueOf.size();
  IndexOf.emplace(Value, Index);
  ValueOf.push_back(Value);
  Parent.emplace_back(Index);
  Rank.push_back(0);
  ClassSize.push_back(1);
  NumPairs += 1; // the reflexive pair (Value, Value)
  Stale.store(true, std::memory_order_relaxed);
  return Index;
}

std::size_t EquivalenceRelation::findRoot(std::size_t Index) const {
  // Path compression: Parent entries are mutable atomics so reads stay
  // amortized-constant *and* safe to race with each other. While unions
  // are excluded (the parallel evaluator's contract), every reader
  // computes the same root, and compression only replaces a parent
  // pointer with that root — racing relaxed loads observe either the old
  // pointer or the root, both of which still lead to the root.
  std::size_t Root = Index;
  for (std::size_t P;
       (P = Parent[Root].V.load(std::memory_order_relaxed)) != Root;)
    Root = P;
  while (Index != Root) {
    std::size_t Next = Parent[Index].V.load(std::memory_order_relaxed);
    Parent[Index].V.store(Root, std::memory_order_relaxed);
    Index = Next;
  }
  return Root;
}

bool EquivalenceRelation::insert(RamDomain A, RamDomain B) {
  const std::size_t HadA = IndexOf.count(A);
  const std::size_t HadB = IndexOf.count(B);
  std::size_t IA = internValue(A);
  std::size_t IB = internValue(B);
  std::size_t RootA = findRoot(IA);
  std::size_t RootB = findRoot(IB);
  if (RootA == RootB)
    return !(HadA && HadB); // grew iff a value was new
  if (Rank[RootA] < Rank[RootB])
    std::swap(RootA, RootB);
  const std::size_t SizeA = ClassSize[RootA];
  const std::size_t SizeB = ClassSize[RootB];
  Parent[RootB].V.store(RootA, std::memory_order_relaxed);
  if (Rank[RootA] == Rank[RootB])
    ++Rank[RootA];
  ClassSize[RootA] = SizeA + SizeB;
  // Pairs go from SizeA^2 + SizeB^2 to (SizeA + SizeB)^2.
  NumPairs += 2 * SizeA * SizeB;
  Stale.store(true, std::memory_order_relaxed);
  return true;
}

bool EquivalenceRelation::contains(RamDomain A, RamDomain B) const {
  auto ItA = IndexOf.find(A);
  if (ItA == IndexOf.end())
    return false;
  auto ItB = IndexOf.find(B);
  if (ItB == IndexOf.end())
    return false;
  return findRoot(ItA->second) == findRoot(ItB->second);
}

void EquivalenceRelation::clear() {
  IndexOf.clear();
  ValueOf.clear();
  Parent.clear();
  Rank.clear();
  ClassSize.clear();
  NumPairs = 0;
  Stale.store(false, std::memory_order_relaxed);
  SortedValues.clear();
  MembersOfRoot.clear();
}

void EquivalenceRelation::swapData(EquivalenceRelation &Other) {
  IndexOf.swap(Other.IndexOf);
  ValueOf.swap(Other.ValueOf);
  Parent.swap(Other.Parent);
  Rank.swap(Other.Rank);
  ClassSize.swap(Other.ClassSize);
  std::swap(NumPairs, Other.NumPairs);
  const bool MyStale = Stale.load(std::memory_order_relaxed);
  Stale.store(Other.Stale.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  Other.Stale.store(MyStale, std::memory_order_relaxed);
  SortedValues.swap(Other.SortedValues);
  MembersOfRoot.swap(Other.MembersOfRoot);
}

void EquivalenceRelation::refresh() const {
  // Double-checked locking: the acquire load pairs with the release store
  // below, so a reader that sees Stale == false also sees the caches the
  // refreshing thread built. Concurrent readers may all arrive here (the
  // parallel evaluator calls begin()/membersOf() from every partition
  // worker); one rebuilds, the rest wait and re-check.
  if (!Stale.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> Lock(RefreshM);
  if (!Stale.load(std::memory_order_relaxed))
    return;
  SortedValues = ValueOf;
  std::sort(SortedValues.begin(), SortedValues.end());
  MembersOfRoot.clear();
  for (std::size_t I = 0; I < ValueOf.size(); ++I)
    MembersOfRoot[findRoot(I)].push_back(ValueOf[I]);
  for (auto &Entry : MembersOfRoot)
    std::sort(Entry.second.begin(), Entry.second.end());
  Stale.store(false, std::memory_order_release);
}

const std::vector<RamDomain> &
EquivalenceRelation::membersOf(RamDomain A) const {
  refresh();
  auto It = IndexOf.find(A);
  if (It == IndexOf.end())
    return EmptyMembers;
  return MembersOfRoot.at(findRoot(It->second));
}
