//===- der/Art.h - Adaptive radix tree tuple set ----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Adaptive Radix Tree (ART) set over fixed-arity integer tuples — the
/// fourth member of the de-specialized DER portfolio next to BTreeSet,
/// Brie and EquivalenceRelation. The design follows Leis et al., "The
/// Adaptive Radix Tree: ARTful Indexing for Main-Memory Databases"
/// (ICDE 2013): four node widths (4/16/48/256 children) with lazy
/// expansion (single tuples live in leaves, inner nodes appear only at
/// actual branch points) and path compression (runs of single-child nodes
/// collapse into a per-node byte prefix, stored pessimistically in full).
///
/// Keys are the tuple's cells serialized to a fixed-length byte string in
/// *order-preserving* form: every cell's sign bit is flipped and its bytes
/// are emitted big-endian, so unsigned byte-wise radix order over the key
/// string equals signed lexicographic order over the tuple — the exact
/// order of BTreeSet's TupleCompare. In-order traversal of the radix tree
/// therefore enumerates tuples in index `Order`, which is what lets the
/// ArtIndex adapter serve the same scan/range/partition contract as
/// BTreeIndex with no extra sorting.
///
/// Because all keys have the same length, no key is a prefix of another;
/// leaves carry the decoded tuple (the key bytes are recomputed on demand)
/// and every root-to-leaf path consumes exactly Arity * 4 bytes.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_DER_ART_H
#define STIRD_DER_ART_H

#include "util/RamTypes.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace stird {

/// An ordered set of Tuple<Arity> backed by an adaptive radix tree.
template <std::size_t Arity> class ArtSet {
public:
  using TupleType = Tuple<Arity>;

  /// Key length in bytes: every cell contributes four big-endian bytes.
  static constexpr std::size_t KeyLen = Arity * sizeof(RamDomain);

private:
  /// Inner node widths. Leaves are tagged pointers, not Kind-carrying
  /// nodes, so a leaf costs exactly one tuple plus one allocation.
  enum class Kind : std::uint8_t { N4, N16, N48, N256 };

  /// Common inner-node header. The compressed prefix is stored
  /// pessimistically (the full run of bytes, not a truncated hybrid), so a
  /// prefix never needs to be recovered from a descendant leaf.
  struct Inner {
    Kind K;
    std::uint8_t PrefixLen = 0;
    std::uint16_t Count = 0;
    std::uint8_t Prefix[KeyLen] = {};

    explicit Inner(Kind K) : K(K) {}
  };

  struct Node4 : Inner {
    // Keys sorted ascending; Children[i] corresponds to Keys[i].
    std::uint8_t Keys[4] = {};
    void *Children[4] = {};
    Node4() : Inner(Kind::N4) {}
  };

  struct Node16 : Inner {
    std::uint8_t Keys[16] = {};
    void *Children[16] = {};
    Node16() : Inner(Kind::N16) {}
  };

  struct Node48 : Inner {
    /// Byte -> child slot, EmptySlot when absent. Slots are allocated
    /// first-free, so Children[] is unordered; ordered traversal walks the
    /// 256 ChildIndex entries.
    static constexpr std::uint8_t EmptySlot = 0xFF;
    std::uint8_t ChildIndex[256];
    void *Children[48] = {};
    Node48() : Inner(Kind::N48) {
      std::memset(ChildIndex, EmptySlot, sizeof(ChildIndex));
    }
  };

  struct Node256 : Inner {
    void *Children[256] = {};
    Node256() : Inner(Kind::N256) {}
  };

  struct Leaf {
    TupleType Data;
  };

  //===------------------------- Tagged pointers -------------------------===//

  static bool isLeaf(const void *P) {
    return (reinterpret_cast<std::uintptr_t>(P) & 1) != 0;
  }
  static void *tagLeaf(Leaf *L) {
    return reinterpret_cast<void *>(reinterpret_cast<std::uintptr_t>(L) | 1);
  }
  static Leaf *asLeaf(void *P) {
    return reinterpret_cast<Leaf *>(reinterpret_cast<std::uintptr_t>(P) & ~std::uintptr_t(1));
  }
  static const Leaf *asLeaf(const void *P) {
    return reinterpret_cast<const Leaf *>(reinterpret_cast<std::uintptr_t>(P) &
                                          ~std::uintptr_t(1));
  }
  static Inner *asInner(void *P) { return static_cast<Inner *>(P); }
  static const Inner *asInner(const void *P) {
    return static_cast<const Inner *>(P);
  }

  //===---------------------- Order-preserving keys ----------------------===//

  /// Byte \p Pos of the order-preserving serialization of \p T: the sign
  /// bit of each cell is flipped (mapping signed order onto unsigned) and
  /// bytes are taken big-endian, so memcmp order on the serialization
  /// equals signed lexicographic order on the tuple.
  static std::uint8_t keyByte(const TupleType &T, std::size_t Pos) {
    const std::uint32_t Cell =
        static_cast<std::uint32_t>(T[Pos >> 2]) ^ 0x80000000u;
    return static_cast<std::uint8_t>(Cell >> (8 * (3 - (Pos & 3))));
  }

  static bool tupleLess(const TupleType &A, const TupleType &B) {
    for (std::size_t I = 0; I < Arity; ++I) {
      if (A[I] < B[I])
        return true;
      if (B[I] < A[I])
        return false;
    }
    return false;
  }

  static bool tupleEqual(const TupleType &A, const TupleType &B) {
    return std::memcmp(A.data(), B.data(), sizeof(TupleType)) == 0;
  }

  //===------------------------ Child navigation -------------------------===//
  // Ordered-position protocol shared by lookup and iteration: a "pos" is
  // the array index for Node4/16 (whose Keys are kept sorted) and the key
  // byte itself for Node48/256. firstChildAfter(N, From) returns the
  // smallest pos whose key byte is >= From, or -1.

  static int firstChildAfter(const Inner *N, int From) {
    switch (N->K) {
    case Kind::N4: {
      const auto *Node = static_cast<const Node4 *>(N);
      for (int I = 0; I < Node->Count; ++I)
        if (Node->Keys[I] >= From)
          return I;
      return -1;
    }
    case Kind::N16: {
      const auto *Node = static_cast<const Node16 *>(N);
      for (int I = 0; I < Node->Count; ++I)
        if (Node->Keys[I] >= From)
          return I;
      return -1;
    }
    case Kind::N48: {
      const auto *Node = static_cast<const Node48 *>(N);
      for (int B = From; B < 256; ++B)
        if (Node->ChildIndex[B] != Node48::EmptySlot)
          return B;
      return -1;
    }
    case Kind::N256: {
      const auto *Node = static_cast<const Node256 *>(N);
      for (int B = From; B < 256; ++B)
        if (Node->Children[B])
          return B;
      return -1;
    }
    }
    return -1;
  }

  /// The ordered position after \p Pos, or -1 when \p Pos was the last.
  static int nextChild(const Inner *N, int Pos) {
    switch (N->K) {
    case Kind::N4:
    case Kind::N16:
      return Pos + 1 < N->Count ? Pos + 1 : -1;
    case Kind::N48:
    case Kind::N256:
      return Pos >= 255 ? -1 : firstChildAfter(N, Pos + 1);
    }
    return -1;
  }

  static void *childAt(const Inner *N, int Pos) {
    switch (N->K) {
    case Kind::N4:
      return static_cast<const Node4 *>(N)->Children[Pos];
    case Kind::N16:
      return static_cast<const Node16 *>(N)->Children[Pos];
    case Kind::N48: {
      const auto *Node = static_cast<const Node48 *>(N);
      return Node->Children[Node->ChildIndex[Pos]];
    }
    case Kind::N256:
      return static_cast<const Node256 *>(N)->Children[Pos];
    }
    return nullptr;
  }

  /// The key byte of ordered position \p Pos.
  static std::uint8_t keyOf(const Inner *N, int Pos) {
    switch (N->K) {
    case Kind::N4:
      return static_cast<const Node4 *>(N)->Keys[Pos];
    case Kind::N16:
      return static_cast<const Node16 *>(N)->Keys[Pos];
    case Kind::N48:
    case Kind::N256:
      return static_cast<std::uint8_t>(Pos);
    }
    return 0;
  }

  /// Address of the child slot for key byte \p Byte, or null when absent.
  static void **findChild(Inner *N, std::uint8_t Byte) {
    switch (N->K) {
    case Kind::N4: {
      auto *Node = static_cast<Node4 *>(N);
      for (int I = 0; I < Node->Count; ++I)
        if (Node->Keys[I] == Byte)
          return &Node->Children[I];
      return nullptr;
    }
    case Kind::N16: {
      auto *Node = static_cast<Node16 *>(N);
      for (int I = 0; I < Node->Count; ++I)
        if (Node->Keys[I] == Byte)
          return &Node->Children[I];
      return nullptr;
    }
    case Kind::N48: {
      auto *Node = static_cast<Node48 *>(N);
      if (Node->ChildIndex[Byte] == Node48::EmptySlot)
        return nullptr;
      return &Node->Children[Node->ChildIndex[Byte]];
    }
    case Kind::N256: {
      auto *Node = static_cast<Node256 *>(N);
      return Node->Children[Byte] ? &Node->Children[Byte] : nullptr;
    }
    }
    return nullptr;
  }

public:
  //===----------------------------- Iterator ----------------------------===//

  /// Forward iterator enumerating tuples in key (= TupleCompare) order.
  /// Holds the root-to-leaf path as a fixed stack: each inner node on the
  /// path consumes at least one key byte, so the path never exceeds KeyLen
  /// entries. End iterators carry a null leaf; equality compares only the
  /// current leaf, which lets an upperBound iterator terminate a range
  /// started at lowerBound.
  class iterator {
  public:
    iterator() = default;

    const TupleType &operator*() const {
      assert(Cur && "dereferencing end iterator");
      return asLeaf(Cur)->Data;
    }
    const TupleType *operator->() const { return &operator*(); }

    iterator &operator++() {
      assert(Cur && "incrementing end iterator");
      seekNext();
      return *this;
    }

    bool operator==(const iterator &Other) const { return Cur == Other.Cur; }
    bool operator!=(const iterator &Other) const { return Cur != Other.Cur; }

  private:
    friend class ArtSet;

    struct Frame {
      const Inner *Node;
      int Pos;
    };

    /// Advances to the next leaf in order, or to end() when exhausted:
    /// steps the deepest frame to its next child, descending leftmost into
    /// whatever subtree that child roots; pops when a frame is exhausted.
    void seekNext() {
      while (Depth > 0) {
        Frame &Top = Stack[Depth - 1];
        const int Pos = nextChild(Top.Node, Top.Pos);
        if (Pos < 0) {
          --Depth;
          continue;
        }
        Top.Pos = Pos;
        descendLeftmost(childAt(Top.Node, Pos));
        return;
      }
      Cur = nullptr;
    }

    /// Pushes the path to the smallest leaf of \p N's subtree.
    void descendLeftmost(const void *N) {
      while (!isLeaf(N)) {
        const Inner *In = asInner(N);
        const int Pos = firstChildAfter(In, 0);
        assert(Pos >= 0 && "inner node without children");
        push(In, Pos);
        N = childAt(In, Pos);
      }
      Cur = N;
    }

    void push(const Inner *N, int Pos) {
      assert(Depth < KeyLen && "ART path deeper than the key length");
      Stack[Depth++] = Frame{N, Pos};
    }

    /// The current leaf (tagged), null at end().
    const void *Cur = nullptr;
    Frame Stack[KeyLen];
    std::size_t Depth = 0;
  };

  //===--------------------------- Construction --------------------------===//

  ArtSet() = default;
  ~ArtSet() { clear(); }

  ArtSet(const ArtSet &) = delete;
  ArtSet &operator=(const ArtSet &) = delete;

  ArtSet(ArtSet &&Other) noexcept
      : Root(std::exchange(Other.Root, nullptr)),
        NumTuples(std::exchange(Other.NumTuples, 0)) {}
  ArtSet &operator=(ArtSet &&Other) noexcept {
    if (this != &Other) {
      clear();
      Root = std::exchange(Other.Root, nullptr);
      NumTuples = std::exchange(Other.NumTuples, 0);
    }
    return *this;
  }

  std::size_t size() const { return NumTuples; }
  bool empty() const { return NumTuples == 0; }

  void clear() {
    if (Root)
      destroy(Root);
    Root = nullptr;
    NumTuples = 0;
  }

  void swapData(ArtSet &Other) {
    std::swap(Root, Other.Root);
    std::swap(NumTuples, Other.NumTuples);
  }

  //===---------------------------- Mutation -----------------------------===//

  /// Inserts \p T; returns true when the set grew.
  bool insert(const TupleType &T) {
    if (!Root) {
      Root = tagLeaf(new Leaf{T});
      NumTuples = 1;
      return true;
    }
    void **Ref = &Root;
    std::size_t Depth = 0;
    for (;;) {
      if (isLeaf(*Ref)) {
        Leaf *Existing = asLeaf(*Ref);
        if (tupleEqual(Existing->Data, T))
          return false;
        // Lazy expansion in reverse: the two keys diverge somewhere at or
        // after Depth; materialize the branch point with their common
        // bytes as its compressed prefix.
        std::size_t Common = 0;
        while (keyByte(Existing->Data, Depth + Common) ==
               keyByte(T, Depth + Common))
          ++Common;
        auto *Branch = new Node4();
        Branch->PrefixLen = static_cast<std::uint8_t>(Common);
        for (std::size_t I = 0; I < Common; ++I)
          Branch->Prefix[I] = keyByte(T, Depth + I);
        addChildN4(Branch, keyByte(Existing->Data, Depth + Common), *Ref);
        addChildN4(Branch, keyByte(T, Depth + Common),
                   tagLeaf(new Leaf{T}));
        *Ref = Branch;
        ++NumTuples;
        return true;
      }
      Inner *N = asInner(*Ref);
      // Path-compression split: the key leaves the compressed run early.
      const std::size_t Mismatch = prefixMismatch(N, T, Depth);
      if (Mismatch < N->PrefixLen) {
        auto *Branch = new Node4();
        Branch->PrefixLen = static_cast<std::uint8_t>(Mismatch);
        std::memcpy(Branch->Prefix, N->Prefix, Mismatch);
        const std::uint8_t OldByte = N->Prefix[Mismatch];
        // Trim the old node's prefix past the split byte.
        const std::size_t Rest = N->PrefixLen - Mismatch - 1;
        std::memmove(N->Prefix, N->Prefix + Mismatch + 1, Rest);
        N->PrefixLen = static_cast<std::uint8_t>(Rest);
        addChildN4(Branch, OldByte, N);
        addChildN4(Branch, keyByte(T, Depth + Mismatch),
                   tagLeaf(new Leaf{T}));
        *Ref = Branch;
        ++NumTuples;
        return true;
      }
      Depth += N->PrefixLen;
      const std::uint8_t Byte = keyByte(T, Depth);
      if (void **Child = findChild(N, Byte)) {
        Ref = Child;
        ++Depth;
        continue;
      }
      addChild(Ref, Byte, tagLeaf(new Leaf{T}));
      ++NumTuples;
      return true;
    }
  }

  /// Removes \p T; returns true when it was present. Underfull nodes
  /// shrink back down the width ladder, and a Node4 left with one child
  /// merges into that child (re-compressing the path).
  bool erase(const TupleType &T) {
    if (!Root)
      return false;
    if (isLeaf(Root)) {
      if (!tupleEqual(asLeaf(Root)->Data, T))
        return false;
      delete asLeaf(Root);
      Root = nullptr;
      NumTuples = 0;
      return true;
    }
    void **Ref = &Root;
    std::size_t Depth = 0;
    for (;;) {
      Inner *N = asInner(*Ref);
      if (prefixMismatch(N, T, Depth) < N->PrefixLen)
        return false;
      Depth += N->PrefixLen;
      const std::uint8_t Byte = keyByte(T, Depth);
      void **Child = findChild(N, Byte);
      if (!Child)
        return false;
      if (isLeaf(*Child)) {
        if (!tupleEqual(asLeaf(*Child)->Data, T))
          return false;
        delete asLeaf(*Child);
        removeChild(Ref, N, Byte);
        --NumTuples;
        return true;
      }
      Ref = Child;
      ++Depth;
    }
  }

  bool contains(const TupleType &T) const {
    const void *N = Root;
    std::size_t Depth = 0;
    while (N) {
      if (isLeaf(N))
        return tupleEqual(asLeaf(N)->Data, T);
      const Inner *In = asInner(N);
      if (prefixMismatch(In, T, Depth) < In->PrefixLen)
        return false;
      Depth += In->PrefixLen;
      void **Child = findChild(const_cast<Inner *>(In), keyByte(T, Depth));
      if (!Child)
        return false;
      N = *Child;
      ++Depth;
    }
    return false;
  }

  //===---------------------------- Iteration ----------------------------===//

  iterator begin() const {
    iterator It;
    if (Root)
      It.descendLeftmost(Root);
    return It;
  }
  iterator end() const { return iterator(); }

  /// First tuple >= \p Key in TupleCompare order.
  iterator lowerBound(const TupleType &Key) const {
    return bound(Key, /*Strict=*/false);
  }

  /// First tuple > \p Key in TupleCompare order.
  iterator upperBound(const TupleType &Key) const {
    return bound(Key, /*Strict=*/true);
  }

  //===--------------------------- Partitioning --------------------------===//

  /// Splits the full scan into up to \p MaxParts disjoint iterator ranges
  /// whose concatenation equals [begin(), end()). Subtrees are expanded
  /// breadth-first, in key order, until there are enough to form MaxParts
  /// consecutive groups (every subtree covers a contiguous key range, so
  /// grouping preserves the order); each group's start iterator is rebuilt
  /// with an exact lowerBound on the group's smallest tuple.
  std::vector<std::pair<iterator, iterator>>
  partition(std::size_t MaxParts) const {
    std::vector<std::pair<iterator, iterator>> Parts;
    if (!Root)
      return Parts;
    if (MaxParts <= 1 || isLeaf(Root)) {
      Parts.emplace_back(begin(), end());
      return Parts;
    }
    std::vector<const void *> Subtrees{Root};
    bool Expanded = true;
    while (Subtrees.size() < MaxParts && Expanded) {
      Expanded = false;
      std::vector<const void *> Next;
      Next.reserve(Subtrees.size() * 4);
      for (const void *S : Subtrees) {
        if (isLeaf(S)) {
          Next.push_back(S);
          continue;
        }
        const Inner *In = asInner(S);
        for (int Pos = firstChildAfter(In, 0); Pos >= 0;
             Pos = nextChild(In, Pos))
          Next.push_back(childAt(In, Pos));
        Expanded = true;
      }
      Subtrees = std::move(Next);
    }
    const std::size_t NumParts = std::min(MaxParts, Subtrees.size());
    std::vector<iterator> Starts;
    Starts.reserve(NumParts);
    for (std::size_t P = 0; P < NumParts; ++P) {
      const std::size_t First = P * Subtrees.size() / NumParts;
      Starts.push_back(P == 0 ? begin()
                              : lowerBound(leftmostTuple(Subtrees[First])));
    }
    for (std::size_t P = 0; P < NumParts; ++P)
      Parts.emplace_back(Starts[P],
                         P + 1 < NumParts ? Starts[P + 1] : end());
    return Parts;
  }

  //===-------------------------- Introspection --------------------------===//

  /// Inner-node census by kind {N4, N16, N48, N256}, by full traversal.
  /// Test/debug aid: the node-transition property tests assert lazy
  /// expansion and erase-time shrinking through this.
  std::array<std::size_t, 4> nodeCounts() const {
    std::array<std::size_t, 4> Counts{};
    countNodes(Root, Counts);
    return Counts;
  }

private:
  static void countNodes(const void *N, std::array<std::size_t, 4> &Counts) {
    if (!N || isLeaf(N))
      return;
    const Inner *In = asInner(N);
    ++Counts[static_cast<std::size_t>(In->K)];
    for (int Pos = firstChildAfter(In, 0); Pos >= 0; Pos = nextChild(In, Pos))
      countNodes(childAt(In, Pos), Counts);
  }

  /// The smallest tuple stored in the subtree rooted at \p N.
  static const TupleType &leftmostTuple(const void *N) {
    while (!isLeaf(N)) {
      const Inner *In = asInner(N);
      N = childAt(In, firstChildAfter(In, 0));
    }
    return asLeaf(N)->Data;
  }

  /// First position in [0, PrefixLen) where the node's compressed prefix
  /// differs from the key bytes at \p Depth; PrefixLen when they agree.
  static std::size_t prefixMismatch(const Inner *N, const TupleType &T,
                                    std::size_t Depth) {
    std::size_t I = 0;
    for (; I < N->PrefixLen; ++I)
      if (N->Prefix[I] != keyByte(T, Depth + I))
        break;
    return I;
  }

  /// Shared lowerBound/upperBound descent. Walks toward \p Key, pushing
  /// path frames; whenever the tree diverges from the key the result is
  /// either the leftmost leaf of the "greater" subtree or the successor of
  /// the "smaller" path (obtained by seekNext on the recorded frames).
  iterator bound(const TupleType &Key, bool Strict) const {
    iterator It;
    if (!Root)
      return It;
    const void *N = Root;
    std::size_t Depth = 0;
    for (;;) {
      if (isLeaf(N)) {
        const TupleType &L = asLeaf(N)->Data;
        const bool After = Strict ? tupleLess(Key, L) : !tupleLess(L, Key);
        if (After) {
          It.Cur = N;
          return It;
        }
        It.seekNext();
        return It;
      }
      const Inner *In = asInner(N);
      // Compare the compressed prefix against the key bytes: a higher
      // prefix makes the whole subtree greater (take its leftmost leaf), a
      // lower one makes it smaller (advance past it).
      for (std::size_t I = 0; I < In->PrefixLen; ++I) {
        const std::uint8_t KeyB = keyByte(Key, Depth + I);
        if (In->Prefix[I] > KeyB) {
          It.descendLeftmost(N);
          return It;
        }
        if (In->Prefix[I] < KeyB) {
          It.seekNext();
          return It;
        }
      }
      Depth += In->PrefixLen;
      const std::uint8_t Byte = keyByte(Key, Depth);
      const int Pos = firstChildAfter(In, Byte);
      if (Pos < 0) {
        It.seekNext();
        return It;
      }
      It.push(In, Pos);
      if (keyOf(In, Pos) > Byte) {
        It.descendLeftmost(childAt(In, Pos));
        return It;
      }
      N = childAt(In, Pos);
      ++Depth;
    }
  }

  //===------------------------ Node maintenance -------------------------===//

  /// Adds a child to a Node4 known to have room, keeping Keys sorted.
  static void addChildN4(Node4 *N, std::uint8_t Byte, void *Child) {
    assert(N->Count < 4 && "Node4 overflow");
    int I = N->Count;
    for (; I > 0 && N->Keys[I - 1] > Byte; --I) {
      N->Keys[I] = N->Keys[I - 1];
      N->Children[I] = N->Children[I - 1];
    }
    N->Keys[I] = Byte;
    N->Children[I] = Child;
    ++N->Count;
  }

  /// Adds a child to *Ref's node, growing it to the next width when full
  /// (4 -> 16 -> 48 -> 256, the adaptive part of ART).
  static void addChild(void **Ref, std::uint8_t Byte, void *Child) {
    Inner *N = asInner(*Ref);
    switch (N->K) {
    case Kind::N4: {
      auto *Node = static_cast<Node4 *>(N);
      if (Node->Count < 4) {
        addChildN4(Node, Byte, Child);
        return;
      }
      auto *Grown = new Node16();
      copyHeader(*Grown, *Node);
      std::memcpy(Grown->Keys, Node->Keys, 4);
      std::memcpy(Grown->Children, Node->Children, 4 * sizeof(void *));
      Grown->Count = 4;
      delete Node;
      *Ref = Grown;
      addChild(Ref, Byte, Child);
      return;
    }
    case Kind::N16: {
      auto *Node = static_cast<Node16 *>(N);
      if (Node->Count < 16) {
        int I = Node->Count;
        for (; I > 0 && Node->Keys[I - 1] > Byte; --I) {
          Node->Keys[I] = Node->Keys[I - 1];
          Node->Children[I] = Node->Children[I - 1];
        }
        Node->Keys[I] = Byte;
        Node->Children[I] = Child;
        ++Node->Count;
        return;
      }
      auto *Grown = new Node48();
      copyHeader(*Grown, *Node);
      for (int I = 0; I < 16; ++I) {
        Grown->ChildIndex[Node->Keys[I]] = static_cast<std::uint8_t>(I);
        Grown->Children[I] = Node->Children[I];
      }
      Grown->Count = 16;
      delete Node;
      *Ref = Grown;
      addChild(Ref, Byte, Child);
      return;
    }
    case Kind::N48: {
      auto *Node = static_cast<Node48 *>(N);
      if (Node->Count < 48) {
        std::uint8_t Slot = 0;
        while (Node->Children[Slot])
          ++Slot;
        Node->ChildIndex[Byte] = Slot;
        Node->Children[Slot] = Child;
        ++Node->Count;
        return;
      }
      auto *Grown = new Node256();
      copyHeader(*Grown, *Node);
      for (int B = 0; B < 256; ++B)
        if (Node->ChildIndex[B] != Node48::EmptySlot)
          Grown->Children[B] = Node->Children[Node->ChildIndex[B]];
      Grown->Count = 48;
      delete Node;
      *Ref = Grown;
      addChild(Ref, Byte, Child);
      return;
    }
    case Kind::N256: {
      auto *Node = static_cast<Node256 *>(N);
      assert(!Node->Children[Byte] && "duplicate child byte");
      Node->Children[Byte] = Child;
      ++Node->Count;
      return;
    }
    }
  }

  static void copyHeader(Inner &To, const Inner &From) {
    To.PrefixLen = From.PrefixLen;
    std::memcpy(To.Prefix, From.Prefix, From.PrefixLen);
  }

  /// Removes the child for \p Byte from *Ref's node, shrinking down the
  /// width ladder when underfull and merging a single-child Node4 into its
  /// child (restoring path compression after erases).
  static void removeChild(void **Ref, Inner *N, std::uint8_t Byte) {
    switch (N->K) {
    case Kind::N4: {
      auto *Node = static_cast<Node4 *>(N);
      int I = 0;
      while (Node->Keys[I] != Byte)
        ++I;
      for (; I + 1 < Node->Count; ++I) {
        Node->Keys[I] = Node->Keys[I + 1];
        Node->Children[I] = Node->Children[I + 1];
      }
      --Node->Count;
      if (Node->Count == 1) {
        // Merge with the lone child: the child inherits this node's
        // prefix plus its own linking byte.
        void *Child = Node->Children[0];
        if (!isLeaf(Child)) {
          Inner *C = asInner(Child);
          std::uint8_t Merged[KeyLen];
          std::memcpy(Merged, Node->Prefix, Node->PrefixLen);
          Merged[Node->PrefixLen] = Node->Keys[0];
          std::memcpy(Merged + Node->PrefixLen + 1, C->Prefix, C->PrefixLen);
          C->PrefixLen = static_cast<std::uint8_t>(Node->PrefixLen + 1 +
                                                   C->PrefixLen);
          std::memcpy(C->Prefix, Merged, C->PrefixLen);
        }
        delete Node;
        *Ref = Child;
      }
      return;
    }
    case Kind::N16: {
      auto *Node = static_cast<Node16 *>(N);
      int I = 0;
      while (Node->Keys[I] != Byte)
        ++I;
      for (; I + 1 < Node->Count; ++I) {
        Node->Keys[I] = Node->Keys[I + 1];
        Node->Children[I] = Node->Children[I + 1];
      }
      --Node->Count;
      if (Node->Count <= 3) {
        auto *Shrunk = new Node4();
        copyHeader(*Shrunk, *Node);
        for (int J = 0; J < Node->Count; ++J) {
          Shrunk->Keys[J] = Node->Keys[J];
          Shrunk->Children[J] = Node->Children[J];
        }
        Shrunk->Count = Node->Count;
        delete Node;
        *Ref = Shrunk;
      }
      return;
    }
    case Kind::N48: {
      auto *Node = static_cast<Node48 *>(N);
      Node->Children[Node->ChildIndex[Byte]] = nullptr;
      Node->ChildIndex[Byte] = Node48::EmptySlot;
      --Node->Count;
      if (Node->Count <= 12) {
        auto *Shrunk = new Node16();
        copyHeader(*Shrunk, *Node);
        int J = 0;
        for (int B = 0; B < 256; ++B)
          if (Node->ChildIndex[B] != Node48::EmptySlot) {
            Shrunk->Keys[J] = static_cast<std::uint8_t>(B);
            Shrunk->Children[J] = Node->Children[Node->ChildIndex[B]];
            ++J;
          }
        Shrunk->Count = static_cast<std::uint16_t>(J);
        delete Node;
        *Ref = Shrunk;
      }
      return;
    }
    case Kind::N256: {
      auto *Node = static_cast<Node256 *>(N);
      Node->Children[Byte] = nullptr;
      --Node->Count;
      if (Node->Count <= 37) {
        auto *Shrunk = new Node48();
        copyHeader(*Shrunk, *Node);
        std::uint8_t Slot = 0;
        for (int B = 0; B < 256; ++B)
          if (Node->Children[B]) {
            Shrunk->ChildIndex[B] = Slot;
            Shrunk->Children[Slot] = Node->Children[B];
            ++Slot;
          }
        Shrunk->Count = Slot;
        delete Node;
        *Ref = Shrunk;
      }
      return;
    }
    }
  }

  static void destroy(void *N) {
    if (isLeaf(N)) {
      delete asLeaf(N);
      return;
    }
    Inner *In = asInner(N);
    for (int Pos = firstChildAfter(In, 0); Pos >= 0;
         Pos = nextChild(In, Pos))
      destroy(childAt(In, Pos));
    switch (In->K) {
    case Kind::N4:
      delete static_cast<Node4 *>(In);
      return;
    case Kind::N16:
      delete static_cast<Node16 *>(In);
      return;
    case Kind::N48:
      delete static_cast<Node48 *>(In);
      return;
    case Kind::N256:
      delete static_cast<Node256 *>(In);
      return;
    }
  }

  void *Root = nullptr;
  std::size_t NumTuples = 0;
};

} // namespace stird

#endif // STIRD_DER_ART_H
