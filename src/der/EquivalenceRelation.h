//===- der/EquivalenceRelation.h - Union-find binary relation ---*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The equivalence-relation DER data structure [40]: a binary relation
/// closed under reflexivity, symmetry and transitivity, stored as a
/// union-find forest so that inserting (a, b) merges the classes of a and b
/// in near-constant time while the logical relation holds |C|^2 pairs per
/// class C. Enumeration materializes sorted per-class member lists lazily.
///
/// Concurrency contract: mutations (insert/clear/swapData) are exclusive,
/// but all read operations — contains, membersOf, iteration — are safe to
/// run concurrently with each other. This is what the parallel evaluator
/// relies on: during a parallel section, workers only *read* equivalence
/// relations (their pair inserts are parked in per-worker TupleBuffers and
/// merged into the union-find at the barrier, on the main thread), so reads
/// need to tolerate two benign races that the sequential structure hid
/// behind `mutable`: path compression inside findRoot (parent pointers are
/// atomics; compression only rewrites a pointer to the class root, which
/// every racing reader computes identically while unions are excluded) and
/// the lazy enumeration caches (rebuilt under a mutex with double-checked
/// staleness).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_DER_EQUIVALENCERELATION_H
#define STIRD_DER_EQUIVALENCERELATION_H

#include "util/RamTypes.h"

#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace stird {

/// Binary equivalence relation over RamDomain values.
class EquivalenceRelation {
public:
  /// Inserts the pair (A, B), i.e. asserts A ~ B. Returns true if the
  /// logical relation grew (the two were not yet equivalent).
  bool insert(RamDomain A, RamDomain B);

  /// True if A ~ B (both seen and in the same class).
  bool contains(RamDomain A, RamDomain B) const;

  /// True if A belongs to any class (equivalently, (A, A) holds).
  bool containsFirst(RamDomain A) const { return IndexOf.count(A) != 0; }

  /// Number of logical pairs: sum of |C|^2 over all classes C.
  std::size_t size() const { return NumPairs; }
  bool empty() const { return NumPairs == 0; }

  void clear();
  void swapData(EquivalenceRelation &Other);

  /// Iterates the logical pairs in ascending (first, second) order.
  class iterator {
  public:
    iterator() = default;

    Tuple<2> operator*() const {
      return {Rel->SortedValues[First], (*Members)[Second]};
    }

    iterator &operator++() {
      ++Second;
      if (Second < Members->size())
        return *this;
      ++First;
      Second = 0;
      if (First < Rel->SortedValues.size())
        Members = &Rel->membersOf(Rel->SortedValues[First]);
      else
        Rel = nullptr;
      return *this;
    }

    bool operator==(const iterator &Other) const {
      if (!Rel || !Other.Rel)
        return Rel == Other.Rel;
      return First == Other.First && Second == Other.Second;
    }
    bool operator!=(const iterator &Other) const { return !(*this == Other); }

  private:
    friend class EquivalenceRelation;
    iterator(const EquivalenceRelation *Rel, std::size_t First)
        : Rel(Rel), First(First) {
      if (Rel && First < Rel->SortedValues.size())
        Members = &Rel->membersOf(Rel->SortedValues[First]);
      else
        this->Rel = nullptr;
    }

    const EquivalenceRelation *Rel = nullptr;
    std::size_t First = 0;
    std::size_t Second = 0;
    const std::vector<RamDomain> *Members = nullptr;
  };

  iterator begin() const {
    refresh();
    return iterator(this, 0);
  }
  iterator end() const { return iterator(); }

  /// Sorted members of the class of \p A; empty if A is unseen. The
  /// returned reference stays valid until the next mutation.
  const std::vector<RamDomain> &membersOf(RamDomain A) const;

  /// All values ever seen, ascending — the "first" column of the logical
  /// pair enumeration. The reference stays valid until the next mutation;
  /// the parallel scan partitions this list across workers.
  const std::vector<RamDomain> &sortedValues() const {
    refresh();
    return SortedValues;
  }

private:
  /// A copyable atomic parent pointer, so the forest can live in a vector
  /// (copies only happen on sequential growth/rehash, never concurrently).
  struct AtomicIndex {
    std::atomic<std::size_t> V{0};
    AtomicIndex() = default;
    explicit AtomicIndex(std::size_t I) : V(I) {}
    AtomicIndex(const AtomicIndex &O)
        : V(O.V.load(std::memory_order_relaxed)) {}
    AtomicIndex &operator=(const AtomicIndex &O) {
      V.store(O.V.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
      return *this;
    }
  };

  std::size_t findRoot(std::size_t Index) const;
  std::size_t internValue(RamDomain Value);
  /// Rebuilds SortedValues and per-root member lists if stale. Safe to
  /// call from concurrent readers (double-checked locking on Stale).
  void refresh() const;

  std::unordered_map<RamDomain, std::size_t> IndexOf;
  std::vector<RamDomain> ValueOf;
  mutable std::vector<AtomicIndex> Parent;
  std::vector<std::uint8_t> Rank;
  std::vector<std::size_t> ClassSize;
  std::size_t NumPairs = 0;

  mutable std::atomic<bool> Stale{false};
  mutable std::mutex RefreshM;
  mutable std::vector<RamDomain> SortedValues;
  mutable std::unordered_map<std::size_t, std::vector<RamDomain>> MembersOfRoot;
  static const std::vector<RamDomain> EmptyMembers;
};

} // namespace stird

#endif // STIRD_DER_EQUIVALENCERELATION_H
