//===- interp/NodePrinter.h - Interpreter-tree dump -------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a generated interpreter tree: one line per INode with its
/// (possibly specialized) opcode, the relation/index it targets and its
/// super-instruction layout. Makes the Section 4 optimizations visible:
/// `stird --dump-tree` shows opcodes like IndexScan_Btree_2 with their
/// folded constant/tuple-element slots.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_NODEPRINTER_H
#define STIRD_INTERP_NODEPRINTER_H

#include "interp/Node.h"

#include <string>

namespace stird::interp {

/// Spelling of an opcode (e.g. "IndexScan_Btree_2", "Filter").
const char *nodeTypeName(NodeType Type);

/// Renders the tree rooted at \p Root, two-space indented.
std::string printTree(const Node &Root);

} // namespace stird::interp

#endif // STIRD_INTERP_NODEPRINTER_H
