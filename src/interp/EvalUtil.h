//===- interp/EvalUtil.h - Shared evaluation helpers ------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation primitives shared by every engine: intrinsic functor
/// application and typed comparisons (re-exported from ram/Arithmetic.h),
/// aggregate folding, super-instruction slot filling and the
/// fused-condition micro-interpreter. All inline so the specialized
/// static-engine instructions can fold them.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_EVALUTIL_H
#define STIRD_INTERP_EVALUTIL_H

#include "interp/Context.h"
#include "interp/Node.h"
#include "ram/Arithmetic.h"
#include "util/MiscUtil.h"
#include "util/RamTypes.h"
#include "util/SymbolTable.h"

namespace stird::interp {

using ram::applyCmp;
using ram::applyIntrinsic;
using ram::ipow;

/// State of an aggregate fold.
struct AggAccumulator {
  RamDomain Value = 0;
  bool Any = false;

  void init(ram::AggFunc Func) {
    using ram::AggFunc;
    Any = false;
    switch (Func) {
    case AggFunc::Count:
    case AggFunc::Sum:
    case AggFunc::USum:
      Value = 0;
      break;
    case AggFunc::FSum:
      Value = ramBitCast<RamDomain>(RamFloat(0));
      break;
    default:
      Value = 0;
      break;
    }
  }

  void step(ram::AggFunc Func, RamDomain Sample) {
    using ram::AggFunc;
    auto F = [](RamDomain V) { return ramBitCast<RamFloat>(V); };
    auto U = [](RamDomain V) { return ramBitCast<RamUnsigned>(V); };
    switch (Func) {
    case AggFunc::Count:
      ++Value;
      break;
    case AggFunc::Sum:
    case AggFunc::USum:
      Value = ramBitCast<RamDomain>(U(Value) + U(Sample));
      break;
    case AggFunc::FSum:
      Value = ramBitCast<RamDomain>(F(Value) + F(Sample));
      break;
    case AggFunc::Min:
      Value = (!Any || Sample < Value) ? Sample : Value;
      break;
    case AggFunc::UMin:
      Value = (!Any || U(Sample) < U(Value)) ? Sample : Value;
      break;
    case AggFunc::FMin:
      Value = (!Any || F(Sample) < F(Value)) ? Sample : Value;
      break;
    case AggFunc::Max:
      Value = (!Any || Sample > Value) ? Sample : Value;
      break;
    case AggFunc::UMax:
      Value = (!Any || U(Sample) > U(Value)) ? Sample : Value;
      break;
    case AggFunc::FMax:
      Value = (!Any || F(Sample) > F(Value)) ? Sample : Value;
      break;
    }
    Any = true;
  }

  /// Min/Max over an empty range has no witness; the nested operation is
  /// skipped. Count and the sums always produce a value.
  bool hasResult(ram::AggFunc Func) const {
    using ram::AggFunc;
    switch (Func) {
    case AggFunc::Count:
    case AggFunc::Sum:
    case AggFunc::USum:
    case AggFunc::FSum:
      return true;
    default:
      return Any;
    }
  }
};

/// Fills the slots of a tuple buffer from a super-instruction: generic
/// children dispatch through \p Eval; constants and tuple-element reads are
/// direct (Fig 14).
template <typename EvalFn>
inline void fillSuper(const SuperInstruction &Super, RamDomain *Out,
                      const Context &Ctx, EvalFn &&Eval) {
  for (const auto &G : Super.Generic)
    Out[G.Slot] = Eval(*G.Expr);
  for (const auto &C : Super.Constants)
    Out[C.Slot] = C.Value;
  for (const auto &T : Super.TupleSources)
    Out[T.Slot] = Ctx[T.TupleId][T.Element];
}

/// Executes a fused-condition micro-program (one dispatch for the whole
/// condition, Section 5.2). Returns the truth of the top of stack.
inline bool runFusedCondition(const FusedConditionNode &Node,
                              const Context &Ctx) {
  RamDomain Stack[32];
  std::size_t Top = 0;
  auto U = [](RamDomain V) { return ramBitCast<RamUnsigned>(V); };
  for (std::size_t PC = 0; PC < Node.Program.size(); ++PC) {
    const MicroInst &Inst = Node.Program[PC];
    using Op = MicroInst::Op;
    switch (Inst.Kind) {
    case Op::PushConst:
      Stack[Top++] = Inst.A;
      break;
    case Op::PushElem:
      Stack[Top++] = Ctx[static_cast<std::size_t>(Inst.A)][Inst.B];
      break;
    case Op::JmpIfFalse:
      // Short-circuit: the false stays on the stack as the result.
      if (Stack[Top - 1] == 0)
        PC = Inst.B - 1;
      break;
    case Op::Pop:
      --Top;
      break;
    case Op::Neg:
      Stack[Top - 1] = -Stack[Top - 1];
      break;
    case Op::BNot:
      Stack[Top - 1] = ~Stack[Top - 1];
      break;
    case Op::LNot:
      Stack[Top - 1] = Stack[Top - 1] == 0 ? 1 : 0;
      break;
#define STIRD_FUSED_BINOP(Name, Expr)                                         \
  case Op::Name: {                                                            \
    RamDomain B = Stack[--Top];                                               \
    RamDomain A = Stack[Top - 1];                                             \
    Stack[Top - 1] = (Expr);                                                  \
    break;                                                                    \
  }
      STIRD_FUSED_BINOP(Add, ramBitCast<RamDomain>(U(A) + U(B)))
      STIRD_FUSED_BINOP(Sub, ramBitCast<RamDomain>(U(A) - U(B)))
      STIRD_FUSED_BINOP(Mul, ramBitCast<RamDomain>(U(A) * U(B)))
      STIRD_FUSED_BINOP(Div, B == 0 ? 0 : A / B)
      STIRD_FUSED_BINOP(Mod, B == 0 ? 0 : A % B)
      STIRD_FUSED_BINOP(Band, A &B)
      STIRD_FUSED_BINOP(Bor, A | B)
      STIRD_FUSED_BINOP(Bxor, A ^ B)
      STIRD_FUSED_BINOP(Bshl, ramBitCast<RamDomain>(U(A) << (U(B) & 31U)))
      STIRD_FUSED_BINOP(Bshr, A >> (U(B) & 31U))
      STIRD_FUSED_BINOP(UBshr, ramBitCast<RamDomain>(U(A) >> (U(B) & 31U)))
      STIRD_FUSED_BINOP(Eq, A == B ? 1 : 0)
      STIRD_FUSED_BINOP(Ne, A != B ? 1 : 0)
      STIRD_FUSED_BINOP(Lt, A < B ? 1 : 0)
      STIRD_FUSED_BINOP(Le, A <= B ? 1 : 0)
      STIRD_FUSED_BINOP(Gt, A > B ? 1 : 0)
      STIRD_FUSED_BINOP(Ge, A >= B ? 1 : 0)
      STIRD_FUSED_BINOP(ULt, U(A) < U(B) ? 1 : 0)
      STIRD_FUSED_BINOP(ULe, U(A) <= U(B) ? 1 : 0)
      STIRD_FUSED_BINOP(UGt, U(A) > U(B) ? 1 : 0)
      STIRD_FUSED_BINOP(UGe, U(A) >= U(B) ? 1 : 0)
      STIRD_FUSED_BINOP(And, (A != 0 && B != 0) ? 1 : 0)
#undef STIRD_FUSED_BINOP
    }
  }
  return Stack[Top - 1] != 0;
}

} // namespace stird::interp

#endif // STIRD_INTERP_EVALUTIL_H
