//===- interp/Relation.cpp - De-specialized relation adapters ---------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Relation.h"

#include "inc/CountedRelation.h"
#include "interp/ForEach.h"

#include <algorithm>

using namespace stird;
using namespace stird::interp;

//===----------------------------------------------------------------------===//
// Equivalence relation streams
//===----------------------------------------------------------------------===//

namespace {

/// Streams the logical pairs of an equivalence relation.
class EqrelScanStream final : public TupleStream {
public:
  explicit EqrelScanStream(const EquivalenceRelation &Rel)
      : Cur(Rel.begin()), End(Rel.end()) {}

  std::size_t refill(RamDomain *Buffer, std::size_t Capacity) override {
    std::size_t N = 0;
    while (N < Capacity && Cur != End) {
      Tuple<2> Pair = *Cur;
      Buffer[N * 2] = Pair[0];
      Buffer[N * 2 + 1] = Pair[1];
      ++Cur;
      ++N;
    }
    return N;
  }

private:
  EquivalenceRelation::iterator Cur;
  EquivalenceRelation::iterator End;
};

/// Streams the pairs anchored on one bound column: (Key, m) for mask 0b01,
/// (m, Key) for mask 0b10, over the sorted members m of Key's class.
class EqrelAnchoredStream final : public TupleStream {
public:
  EqrelAnchoredStream(const EquivalenceRelation &Rel, RamDomain Key,
                      bool KeyIsFirst)
      : Members(Rel.membersOf(Key)), Key(Key), KeyIsFirst(KeyIsFirst) {}

  std::size_t refill(RamDomain *Buffer, std::size_t Capacity) override {
    std::size_t N = 0;
    while (N < Capacity && Pos < Members.size()) {
      if (KeyIsFirst) {
        Buffer[N * 2] = Key;
        Buffer[N * 2 + 1] = Members[Pos];
      } else {
        Buffer[N * 2] = Members[Pos];
        Buffer[N * 2 + 1] = Key;
      }
      ++Pos;
      ++N;
    }
    return N;
  }

private:
  const std::vector<RamDomain> &Members;
  RamDomain Key;
  bool KeyIsFirst;
  std::size_t Pos = 0;
};

/// A stream of at most one pre-built tuple (fully bound eqrel ranges).
class SingleTupleStream final : public TupleStream {
public:
  SingleTupleStream(RamDomain A, RamDomain B) : Pair{A, B} {}

  std::size_t refill(RamDomain *Buffer, std::size_t Capacity) override {
    if (Done || Capacity == 0)
      return 0;
    Buffer[0] = Pair[0];
    Buffer[1] = Pair[1];
    Done = true;
    return 1;
  }

private:
  Tuple<2> Pair;
  bool Done = false;
};

/// The always-empty stream.
class EmptyStream final : public TupleStream {
public:
  std::size_t refill(RamDomain *, std::size_t) override { return 0; }
};

/// One partition of an equivalence-relation scan: the (first, member)
/// pairs whose "first" value lies in a contiguous slice [Lo, Hi) of the
/// sorted value list. The caches are refreshed before partitioning, so
/// refills only perform concurrent-safe reads.
class EqrelPartitionStream final : public TupleStream {
public:
  EqrelPartitionStream(const EquivalenceRelation &Rel, std::size_t Lo,
                       std::size_t Hi)
      : Rel(Rel), First(Lo), Last(Hi) {}

  std::size_t refill(RamDomain *Buffer, std::size_t Capacity) override {
    std::size_t N = 0;
    while (N < Capacity && First < Last) {
      if (!Members)
        Members = &Rel.membersOf(Rel.sortedValues()[First]);
      if (Pos == Members->size()) {
        Members = nullptr;
        Pos = 0;
        ++First;
        continue;
      }
      Buffer[N * 2] = Rel.sortedValues()[First];
      Buffer[N * 2 + 1] = (*Members)[Pos];
      ++Pos;
      ++N;
    }
    return N;
  }

private:
  const EquivalenceRelation &Rel;
  std::size_t First;
  std::size_t Last;
  std::size_t Pos = 0;
  const std::vector<RamDomain> *Members = nullptr;
};

} // namespace

std::unique_ptr<TupleStream> EqrelRelation::scan(std::size_t, bool) const {
  return std::make_unique<EqrelScanStream>(Rel);
}

std::unique_ptr<TupleStream>
EqrelRelation::range(std::size_t, const RamDomain *EncodedKey,
                     std::size_t /*PrefixLen*/, std::uint32_t Mask,
                     bool /*Decode*/) const {
  switch (Mask) {
  case 0:
    return std::make_unique<EqrelScanStream>(Rel);
  case 0b01:
    return std::make_unique<EqrelAnchoredStream>(Rel, EncodedKey[0],
                                                 /*KeyIsFirst=*/true);
  case 0b10:
    return std::make_unique<EqrelAnchoredStream>(Rel, EncodedKey[1],
                                                 /*KeyIsFirst=*/false);
  case 0b11:
    if (Rel.contains(EncodedKey[0], EncodedKey[1]))
      return std::make_unique<SingleTupleStream>(EncodedKey[0],
                                                 EncodedKey[1]);
    return std::make_unique<EmptyStream>();
  default:
    unreachable("invalid eqrel search mask");
  }
}

std::vector<std::unique_ptr<TupleStream>>
EqrelRelation::partitionScan(std::size_t /*IndexPos*/, std::size_t MaxParts,
                             bool /*Decode*/) const {
  std::vector<std::unique_ptr<TupleStream>> Streams;
  // Refreshes the caches on the calling (main) thread, so the partition
  // streams only touch refreshed, read-only state on the workers.
  const std::vector<RamDomain> &Values = Rel.sortedValues();
  if (Values.empty())
    return Streams;
  const std::size_t Parts = std::max<std::size_t>(
      1, std::min(MaxParts, Values.size()));
  const std::size_t Chunk = (Values.size() + Parts - 1) / Parts;
  for (std::size_t Lo = 0; Lo < Values.size(); Lo += Chunk)
    Streams.push_back(std::make_unique<EqrelPartitionStream>(
        Rel, Lo, std::min(Lo + Chunk, Values.size())));
  return Streams;
}

std::vector<std::unique_ptr<TupleStream>>
EqrelRelation::partitionRange(std::size_t IndexPos,
                              const RamDomain *EncodedKey,
                              std::size_t PrefixLen, std::uint32_t Mask,
                              bool Decode, std::size_t MaxParts) const {
  if (Mask == 0)
    return partitionScan(IndexPos, MaxParts, Decode);
  std::vector<std::unique_ptr<TupleStream>> Streams;
  Streams.push_back(range(IndexPos, EncodedKey, PrefixLen, Mask, Decode));
  return Streams;
}

//===----------------------------------------------------------------------===//
// Legacy relation (runtime comparator)
//===----------------------------------------------------------------------===//

namespace {

/// Runtime-arity stream over wide legacy tuples (already in source order).
class LegacyStream final : public TupleStream {
  using Iter = BTreeSet<MaxArity, RuntimeOrderCompare<MaxArity>>::iterator;

public:
  LegacyStream(Iter Begin, Iter End, std::size_t Arity)
      : Cur(Begin), End(End), Arity(Arity) {}

  std::size_t refill(RamDomain *Buffer, std::size_t Capacity) override {
    std::size_t N = 0;
    while (N < Capacity && Cur != End) {
      std::memcpy(Buffer + N * Arity, Cur->data(),
                  Arity * sizeof(RamDomain));
      ++Cur;
      ++N;
    }
    return N;
  }

private:
  Iter Cur;
  Iter End;
  std::size_t Arity;
};

} // namespace

LegacyRelation::LegacyRelation(const ram::Relation &Decl,
                               std::vector<Order> Orders)
    : RelationWrapper(RelKind::Legacy, Decl, Orders) {
  OrderArrays.reserve(Orders.size());
  for (const Order &Ord : Orders)
    OrderArrays.push_back(Ord.columns());
  Trees.reserve(OrderArrays.size());
  for (const auto &Array : OrderArrays) {
    RuntimeOrderCompare<MaxArity> Cmp;
    Cmp.Order = Array.data();
    Cmp.Length = Decl.getArity();
    Trees.emplace_back(Cmp);
  }
}

bool LegacyRelation::insert(const RamDomain *Tuple) {
  WideTuple Wide{};
  std::memcpy(Wide.data(), Tuple, getArity() * sizeof(RamDomain));
  bool Grew = Trees[0].insert(Wide);
  if (Grew)
    for (std::size_t I = 1; I < Trees.size(); ++I)
      Trees[I].insert(Wide);
  return Grew;
}

bool LegacyRelation::erase(const RamDomain *Tuple) {
  WideTuple Wide{};
  std::memcpy(Wide.data(), Tuple, getArity() * sizeof(RamDomain));
  bool Removed = Trees[0].erase(Wide);
  if (Removed)
    for (std::size_t I = 1; I < Trees.size(); ++I)
      Trees[I].erase(Wide);
  return Removed;
}

bool LegacyRelation::contains(const RamDomain *Tuple) const {
  WideTuple Wide{};
  std::memcpy(Wide.data(), Tuple, getArity() * sizeof(RamDomain));
  return Trees[0].contains(Wide);
}

void LegacyRelation::makeBounds(std::size_t IndexPos,
                                const RamDomain *EncodedKey,
                                std::size_t PrefixLen, WideTuple &Low,
                                WideTuple &High) const {
  const auto &Ord = OrderArrays[IndexPos];
  Low.fill(0);
  High.fill(0);
  for (std::size_t J = 0; J < getArity(); ++J) {
    const std::uint32_t Col = Ord[J];
    if (J < PrefixLen) {
      Low[Col] = EncodedKey[J];
      High[Col] = EncodedKey[J];
    } else {
      Low[Col] = std::numeric_limits<RamDomain>::min();
      High[Col] = std::numeric_limits<RamDomain>::max();
    }
  }
}

bool LegacyRelation::containsRange(std::size_t IndexPos,
                                   const RamDomain *EncodedKey,
                                   std::size_t PrefixLen,
                                   std::uint32_t /*Mask*/) const {
  WideTuple Low, High;
  makeBounds(IndexPos, EncodedKey, PrefixLen, Low, High);
  return Trees[IndexPos].lowerBound(Low) != Trees[IndexPos].upperBound(High);
}

void LegacyRelation::clear() {
  for (auto &Tree : Trees)
    Tree.clear();
}

void LegacyRelation::swap(RelationWrapper &Other) {
  assert(Other.getKind() == RelKind::Legacy && "swap layout mismatch");
  auto &OtherRel = static_cast<LegacyRelation &>(Other);
  assert(OtherRel.Trees.size() == Trees.size() && "swap layout mismatch");
  for (std::size_t I = 0; I < Trees.size(); ++I)
    Trees[I].swapData(OtherRel.Trees[I]);
}

void LegacyRelation::insertAll(const RelationWrapper &Src) {
  Src.forEach([&](const RamDomain *Tuple) { insert(Tuple); });
}

std::unique_ptr<TupleStream> LegacyRelation::scan(std::size_t IndexPos,
                                                  bool /*Decode*/) const {
  // Legacy tuples are stored in source order; no decode is ever needed.
  return std::make_unique<LegacyStream>(Trees[IndexPos].begin(),
                                        Trees[IndexPos].end(), getArity());
}

std::unique_ptr<TupleStream>
LegacyRelation::range(std::size_t IndexPos, const RamDomain *EncodedKey,
                      std::size_t PrefixLen, std::uint32_t /*Mask*/,
                      bool /*Decode*/) const {
  WideTuple Low, High;
  makeBounds(IndexPos, EncodedKey, PrefixLen, Low, High);
  return std::make_unique<LegacyStream>(Trees[IndexPos].lowerBound(Low),
                                        Trees[IndexPos].upperBound(High),
                                        getArity());
}

//===----------------------------------------------------------------------===//
// Factory (paper Fig 7)
//===----------------------------------------------------------------------===//

namespace {

// Uniform spelling for the FOR_EACH expansion below.
template <std::size_t Arity> using Relation_Btree = BTreeRelation<Arity>;
template <std::size_t Arity> using Relation_Brie = BrieRelation<Arity>;
template <std::size_t Arity> using Relation_Art = ArtRelation<Arity>;
template <std::size_t /*Arity*/> using Relation_Eqrel = EqrelRelation;

RelKind kindOf(ram::StructureKind Structure) {
  switch (Structure) {
  case ram::StructureKind::Btree:
    return RelKind::Btree;
  case ram::StructureKind::Brie:
    return RelKind::Brie;
  case ram::StructureKind::Art:
    return RelKind::Art;
  case ram::StructureKind::Eqrel:
    return RelKind::Eqrel;
  case ram::StructureKind::Counts:
    return RelKind::Counts;
  }
  unreachable("unknown structure kind");
}

} // namespace

std::unique_ptr<RelationWrapper>
stird::interp::createRelation(const ram::Relation &Decl,
                              std::vector<Order> Orders, bool Legacy) {
  if (Orders.empty())
    Orders.push_back(Order::identity(Decl.getArity()));
  // Count collectors are arity-generic (no specialized portfolio entry):
  // the maintenance programs only project into and fold over them, so the
  // virtual adapter path is the only access path, under every backend.
  if (Decl.getStructure() == ram::StructureKind::Counts)
    return std::make_unique<inc::CountedRelation>(Decl, std::move(Orders));
  if (Legacy)
    return std::make_unique<LegacyRelation>(Decl, std::move(Orders));

  const RelKind Kind = kindOf(Decl.getStructure());
  const std::size_t Arity = Decl.getArity();

#define STIRD_CREATE_RELATION(Structure, ArityValue)                          \
  if (Kind == RelKind::Structure && Arity == (ArityValue))                    \
    return std::make_unique<Relation_##Structure<(ArityValue)>>(              \
        Decl, std::move(Orders));
  STIRD_FOR_EACH(STIRD_CREATE_RELATION)
#undef STIRD_CREATE_RELATION

  fatal("unsupported relation shape: structure/arity combination for '" +
        Decl.getName() + "' (arity " + std::to_string(Arity) +
        ") is outside the pre-compiled portfolio");
}
