//===- interp/DynamicEngine.cpp - The de-specialized adapter engine ----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-adapter executor: every relation access goes through the
/// virtual RelationWrapper interface, iterators are virtualized TupleStreams
/// amortized by the 128-tuple buffer, and tuple buffers live on the heap
/// because arities are only known at runtime (Section 3). This is the
/// baseline the static instruction generation of Section 4.1 is measured
/// against (Fig 18), and — paired with LegacyRelation storage — the legacy
/// interpreter of Section 5.1.
///
//===----------------------------------------------------------------------===//

#include "interp/Engine.h"

#include "inc/CountedRelation.h"
#include "interp/Context.h"
#include "interp/EvalUtil.h"
#include "interp/Parallel.h"
#include "interp/Scheduler.h"
#include "obs/Stats.h"
#include "obs/Trace.h"
#include "util/MiscUtil.h"
#include "util/Timer.h"

using namespace stird;
using namespace stird::interp;

namespace {

class DynamicExecutor final : public ExecutorBase {
public:
  explicit DynamicExecutor(EngineState &State)
      : State(State), Dispatches(&State.NumDispatches),
        StatsArr(State.CollectStats ? State.Stats.data() : nullptr) {}

  /// Worker-side instance for one morsel of a parallel scan or one rule
  /// job of a ParallelSequence: dispatches count into a local counter
  /// (summed at the job barrier), inserts are buffered instead of applied
  /// when \p Buffer is set, relation counters go into a private block
  /// (merged at the barrier), and trace events go into a private buffer
  /// tagged with the executing scheduler slot. Worker instances never
  /// re-enter the scheduler: nested parallel nodes degrade to their
  /// sequential form.
  DynamicExecutor(EngineState &State, std::uint64_t *Dispatches,
                  TupleBuffer *Buffer, obs::RelationStats *Stats,
                  std::vector<obs::TraceEvent> *TraceBuf,
                  std::uint64_t TraceTid)
      : State(State), Dispatches(Dispatches), Buffer(Buffer),
        StatsArr(Stats), TraceBuf(TraceBuf), TraceTid(TraceTid),
        IsMain(false) {}

  void run(const Node &Root) override {
    Context Empty(0);
    execute(&Root, Empty);
  }

private:
  /// Builds the (possibly encoded) search key of a primitive search into
  /// \p Key, which must be zero-initialized with the relation's arity.
  void buildKey(const SuperInstruction &Pattern, bool NeedsEncode,
                const Order &Ord, std::vector<RamDomain> &Key,
                Context &Ctx) {
    fillSuper(Pattern, Key.data(), Ctx,
              [&](const Node &Expr) { return execute(&Expr, Ctx); });
    if (NeedsEncode) {
      std::vector<RamDomain> Source = Key;
      Ord.encode(Source.data(), Key.data());
    }
  }

  RamDomain execute(const Node *N, Context &Ctx) {
    ++*Dispatches;
    switch (N->Type) {
    //===-------------------------- Expressions --------------------------===//
    case NodeType::Constant:
      return static_cast<const ConstantNode *>(N)->Value;
    case NodeType::TupleElement: {
      const auto *TE = static_cast<const TupleElementNode *>(N);
      return Ctx[TE->TupleId][TE->Element];
    }
    case NodeType::Intrinsic: {
      const auto *Op = static_cast<const IntrinsicNode *>(N);
      RamDomain Args[8];
      assert(Op->Args.size() <= 8 && "intrinsic arity too large");
      for (std::size_t I = 0; I < Op->Args.size(); ++I)
        Args[I] = execute(Op->Args[I].get(), Ctx);
      return applyIntrinsic(Op->Op, Args, Op->Args.size(), State.Symbols);
    }
    case NodeType::AutoIncrement:
      // Relaxed fetch-add: ids must be unique and dense, not ordered.
      return State.Counter.fetch_add(1, std::memory_order_relaxed);

    //===-------------------------- Conditions ---------------------------===//
    case NodeType::True:
      return 1;
    case NodeType::Conjunction: {
      const auto *C = static_cast<const ConjunctionNode *>(N);
      return execute(C->Lhs.get(), Ctx) && execute(C->Rhs.get(), Ctx);
    }
    case NodeType::Negation:
      return !execute(static_cast<const NegationNode *>(N)->Inner.get(),
                      Ctx);
    case NodeType::Constraint: {
      const auto *C = static_cast<const ConstraintNode *>(N);
      return applyCmp(C->Op, execute(C->Lhs.get(), Ctx),
                      execute(C->Rhs.get(), Ctx))
                 ? 1
                 : 0;
    }
    case NodeType::FusedCondition:
      return runFusedCondition(*static_cast<const FusedConditionNode *>(N),
                               Ctx)
                 ? 1
                 : 0;
    case NodeType::EmptinessCheck: {
      const auto *E = static_cast<const EmptinessCheckNode *>(N);
      if (obs::RelationStats *RS = statsFor(E->Rel))
        ++RS->Contains;
      return E->Rel->empty() ? 1 : 0;
    }
    case NodeType::GenericExistence: {
      const auto *E = static_cast<const ExistenceNode *>(N);
      if (obs::RelationStats *RS = statsFor(E->Rel)) {
        ++RS->Contains;
        RS->Reorders += E->NeedsEncode ? 1 : 0;
        obs::noteSearchPattern(RS, E->Mask, E->Rel->getArity());
      }
      std::vector<RamDomain> Key(E->Rel->getArity(), 0);
      buildKey(E->Pattern, E->NeedsEncode, E->Rel->getOrder(E->IndexPos),
               Key, Ctx);
      return E->Rel->containsRange(E->IndexPos, Key.data(), E->PrefixLen,
                                   E->Mask)
                 ? 1
                 : 0;
    }

    //===-------------------------- Operations ---------------------------===//
    case NodeType::GenericScan: {
      const auto *S = static_cast<const ScanNode *>(N);
      obs::RelationStats *RS = statsFor(S->Rel);
      if (RS)
        ++RS->Scans;
      BufferedTupleSource Source(S->Rel->scan(S->IndexPos, S->Decode),
                                 S->Rel->getArity(),
                                 State.StreamBufferCapacity);
      std::uint64_t Count = 0;
      while (const RamDomain *Tuple = Source.next()) {
        ++Count;
        Ctx[S->TupleId] = Tuple;
        execute(S->Nested.get(), Ctx);
      }
      if (RS) {
        RS->ScanTuples += Count;
        RS->Reorders += S->Decode ? Count : 0;
      }
      return 1;
    }
    case NodeType::GenericIndexScan: {
      const auto *S = static_cast<const IndexScanNode *>(N);
      obs::RelationStats *RS = statsFor(S->Rel);
      if (RS) {
        ++RS->IndexScans;
        RS->Reorders += S->NeedsEncode ? 1 : 0;
        obs::noteSearchPattern(RS, S->Mask, S->Rel->getArity());
      }
      std::vector<RamDomain> Key(S->Rel->getArity(), 0);
      buildKey(S->Pattern, S->NeedsEncode, S->Rel->getOrder(S->IndexPos),
               Key, Ctx);
      BufferedTupleSource Source(
          S->Rel->range(S->IndexPos, Key.data(), S->PrefixLen, S->Mask,
                        S->Decode),
          S->Rel->getArity(), State.StreamBufferCapacity);
      std::uint64_t Count = 0;
      while (const RamDomain *Tuple = Source.next()) {
        ++Count;
        Ctx[S->TupleId] = Tuple;
        execute(S->Nested.get(), Ctx);
      }
      if (RS) {
        RS->IndexScanTuples += Count;
        RS->IndexScanHits += Count > 0 ? 1 : 0;
        RS->Reorders += S->Decode ? Count : 0;
      }
      return 1;
    }
    case NodeType::ParallelScan: {
      const auto *S = static_cast<const ParallelScanNode *>(N);
      obs::RelationStats *RS = statsFor(S->Rel);
      if (RS)
        ++RS->Scans;
      auto Streams = S->Rel->partitionScan(
          S->IndexPos, State.morselParts(S->Rel->size()), S->Decode);
      return runPartitions(*S->Rel, S->TupleId, *S->Nested, S->NumTupleIds,
                           Streams, RS, /*IsIndex=*/false, S->Decode);
    }
    case NodeType::ParallelIndexScan: {
      const auto *S = static_cast<const ParallelIndexScanNode *>(N);
      obs::RelationStats *RS = statsFor(S->Rel);
      if (RS) {
        ++RS->IndexScans;
        RS->Reorders += S->NeedsEncode ? 1 : 0;
        obs::noteSearchPattern(RS, S->Mask, S->Rel->getArity());
      }
      std::vector<RamDomain> Key(S->Rel->getArity(), 0);
      if (IsMain && State.Trace && S->NeedsEncode)
        State.Trace->begin("index reorder " + S->Rel->getName());
      buildKey(S->Pattern, S->NeedsEncode, S->Rel->getOrder(S->IndexPos),
               Key, Ctx);
      if (IsMain && State.Trace && S->NeedsEncode)
        State.Trace->end();
      auto Streams = S->Rel->partitionRange(
          S->IndexPos, Key.data(), S->PrefixLen, S->Mask, S->Decode,
          State.morselParts(S->Rel->size()));
      return runPartitions(*S->Rel, S->TupleId, *S->Nested, S->NumTupleIds,
                           Streams, RS, /*IsIndex=*/true, S->Decode);
    }
    case NodeType::Filter: {
      const auto *F = static_cast<const FilterNode *>(N);
      if (execute(F->Cond.get(), Ctx))
        execute(F->Nested.get(), Ctx);
      return 1;
    }
    case NodeType::GenericProject: {
      const auto *P = static_cast<const ProjectNode *>(N);
      std::vector<RamDomain> Tuple(P->Rel->getArity(), 0);
      fillSuper(P->Values, Tuple.data(), Ctx,
                [&](const Node &Expr) { return execute(&Expr, Ctx); });
      obs::RelationStats *RS = statsFor(P->Rel);
      if (RS)
        ++RS->Inserts;
      if (Buffer) {
        // InsertsNew is counted at the flushAll barrier, where the insert
        // actually happens.
        Buffer->add(*P->Rel, Tuple.data());
      } else {
        bool Grew = P->Rel->insert(Tuple.data());
        if (RS)
          RS->InsertsNew += Grew ? 1 : 0;
      }
      return 1;
    }
    case NodeType::GenericAggregate: {
      const auto *A = static_cast<const AggregateNode *>(N);
      obs::RelationStats *RS = statsFor(A->Rel);
      if (RS) {
        ++RS->IndexScans;
        RS->Reorders += A->NeedsEncode ? 1 : 0;
        obs::noteSearchPattern(RS, A->Mask, A->Rel->getArity());
      }
      std::vector<RamDomain> Key(A->Rel->getArity(), 0);
      buildKey(A->Pattern, A->NeedsEncode, A->Rel->getOrder(A->IndexPos),
               Key, Ctx);
      BufferedTupleSource Source(
          A->Rel->range(A->IndexPos, Key.data(), A->PrefixLen, A->Mask,
                        A->Decode),
          A->Rel->getArity(), State.StreamBufferCapacity);
      AggAccumulator Acc;
      Acc.init(A->Func);
      std::uint64_t Count = 0;
      while (const RamDomain *Tuple = Source.next()) {
        ++Count;
        Ctx[A->TupleId] = Tuple;
        if (A->Cond && !execute(A->Cond.get(), Ctx))
          continue;
        Acc.step(A->Func,
                 A->Target ? execute(A->Target.get(), Ctx) : 0);
      }
      if (RS) {
        RS->IndexScanTuples += Count;
        RS->IndexScanHits += Count > 0 ? 1 : 0;
        RS->Reorders += A->Decode ? Count : 0;
      }
      if (Acc.hasResult(A->Func)) {
        RamDomain Result[1] = {Acc.Value};
        Ctx[A->TupleId] = Result;
        execute(A->Nested.get(), Ctx);
      }
      return 1;
    }

    //===-------------------------- Statements ---------------------------===//
    case NodeType::Sequence: {
      const auto *Seq = static_cast<const SequenceNode *>(N);
      for (const auto &Child : Seq->Children)
        if (!execute(Child.get(), Ctx))
          return 0;
      return 1;
    }
    case NodeType::ParallelSequence:
      return runRuleGroup(*static_cast<const ParallelSequenceNode *>(N),
                          Ctx);
    case NodeType::Loop: {
      const auto *L = static_cast<const LoopNode *>(N);
      while (execute(L->Body.get(), Ctx)) {
      }
      return 1;
    }
    case NodeType::Exit:
      return execute(static_cast<const ExitNode *>(N)->Cond.get(), Ctx) ? 0
                                                                        : 1;
    case NodeType::Query: {
      const auto *Q = static_cast<const QueryNode *>(N);
      Context QueryCtx(Q->NumTupleIds);
      execute(Q->Root.get(), QueryCtx);
      return 1;
    }
    case NodeType::Clear: {
      const auto *C = static_cast<const ClearNode *>(N);
      if (obs::RelationStats *RS = statsFor(C->Rel))
        RS->notePeak(C->Rel->size());
      C->Rel->clear();
      return 1;
    }
    case NodeType::SwapRel: {
      const auto *S = static_cast<const SwapNode *>(N);
      if (obs::RelationStats *RS = statsFor(S->Rel))
        RS->notePeak(S->Rel->size());
      if (obs::RelationStats *RS = statsFor(S->Second))
        RS->notePeak(S->Second->size());
      S->Rel->swap(*S->Second);
      return 1;
    }
    case NodeType::Merge: {
      const auto *M = static_cast<const MergeNode *>(N);
      if (StatsArr) {
        const std::uint64_t SrcSize = M->Rel->size();
        obs::RelationStats *SrcRS = statsFor(M->Rel);
        ++SrcRS->Scans;
        SrcRS->ScanTuples += SrcSize;
        obs::RelationStats *DstRS = statsFor(M->Destination);
        DstRS->Inserts += SrcSize;
        const std::uint64_t Before = M->Destination->size();
        M->Destination->insertAll(*M->Rel);
        DstRS->InsertsNew += M->Destination->size() - Before;
      } else {
        M->Destination->insertAll(*M->Rel);
      }
      return 1;
    }
    case NodeType::EraseRel: {
      // Maintenance statements only ever run on this executor (see
      // Engine::runStatement); batch deltas are small, so the virtual
      // adapter path is the right cost model.
      const auto *E = static_cast<const EraseNode *>(N);
      if (obs::RelationStats *RS = statsFor(E->Rel)) {
        ++RS->Scans;
        RS->ScanTuples += E->Rel->size();
      }
      if (obs::RelationStats *RS = statsFor(E->Destination))
        RS->notePeak(E->Destination->size());
      E->Rel->forEach(
          [&](const RamDomain *Tuple) { E->Destination->erase(Tuple); });
      return 1;
    }
    case NodeType::Subtract: {
      const auto *S = static_cast<const SubtractNode *>(N);
      if (obs::RelationStats *RS = statsFor(S->Rel)) {
        ++RS->Scans;
        RS->ScanTuples += S->Rel->size();
      }
      obs::RelationStats *FilterRS = statsFor(S->Filter);
      obs::RelationStats *DstRS = statsFor(S->Destination);
      S->Rel->forEach([&](const RamDomain *Tuple) {
        if (FilterRS)
          ++FilterRS->Contains;
        if (S->Filter->contains(Tuple))
          return;
        bool Grew = S->Destination->insert(Tuple);
        if (DstRS) {
          ++DstRS->Inserts;
          DstRS->InsertsNew += Grew ? 1 : 0;
        }
      });
      return 1;
    }
    case NodeType::FoldCounts: {
      const auto *F = static_cast<const FoldCountsNode *>(N);
      auto &Add = static_cast<inc::CountedRelation &>(*F->Rel);
      auto &Dec = static_cast<inc::CountedRelation &>(*F->Dec);
      auto &Support = static_cast<inc::CountedRelation &>(*F->Support);
      // Net the per-batch derivation counts into the support store; only
      // support transitions to/from zero change membership of the target.
      auto Apply = [&](const DynTuple &Key, std::int64_t Net) {
        if (Net == 0)
          return;
        const std::uint64_t Old = Support.countOf(Key);
        const std::uint64_t New = Support.adjust(Key, Net);
        if (Old == 0 && New > 0) {
          F->Target->insert(Key.data());
          F->InsOut->insert(Key.data());
        } else if (Old > 0 && New == 0) {
          F->Target->erase(Key.data());
          F->DelOut->insert(Key.data());
        }
      };
      Add.forEachCount([&](const DynTuple &Key, std::uint64_t Count) {
        Apply(Key, static_cast<std::int64_t>(Count) -
                       static_cast<std::int64_t>(Dec.countOf(Key)));
      });
      Dec.forEachCount([&](const DynTuple &Key, std::uint64_t Count) {
        if (Add.countOf(Key) == 0)
          Apply(Key, -static_cast<std::int64_t>(Count));
      });
      return 1;
    }
    case NodeType::Io:
      State.executeIo(*static_cast<const IoNode *>(N));
      return 1;
    case NodeType::LogTimer: {
      const auto *Log = static_cast<const LogTimerNode *>(N);
      // Main thread uses the shared span stack; rule jobs record into
      // their private trace buffer under the executing scheduler slot.
      if (IsMain && State.Trace)
        State.Trace->begin(Log->Label);
      const std::uint64_t Start =
          !IsMain && TraceBuf ? State.Trace->now() : 0;
      const std::uint64_t SizeBefore =
          Log->DeltaRel ? Log->DeltaRel->size() : 0;
      Timer T;
      std::uint64_t Before = *Dispatches;
      RamDomain Result = execute(Log->Body.get(), Ctx);
      const std::uint64_t Delta =
          Log->DeltaRel ? Log->DeltaRel->size() - SizeBefore : 0;
      State.Prof.record(Log->ProfileId, T.seconds(), *Dispatches - Before,
                        Delta);
      if (IsMain && State.Trace) {
        State.Trace->end();
      } else if (TraceBuf) {
        TraceBuf->push_back({Log->Label, 'B', Start, TraceTid,
                             std::string()});
        TraceBuf->push_back({std::string(), 'E', State.Trace->now(),
                             TraceTid, std::string()});
      }
      return Result;
    }

    default:
      fatal("specialized opcode reached the dynamic-adapter executor");
    }
  }

  /// Applies the combined tuple count of a partitioned scan to the scanned
  /// relation's counters. The total is accumulated across partitions and
  /// applied once on the main thread, so hit/tuple counts are identical to
  /// the single-threaded scan path at any -jN.
  static void noteScanTotal(obs::RelationStats *RS, bool IsIndex,
                            bool Decode, std::uint64_t Total) {
    if (!RS)
      return;
    if (IsIndex) {
      RS->IndexScanTuples += Total;
      RS->IndexScanHits += Total > 0 ? 1 : 0;
    } else {
      RS->ScanTuples += Total;
    }
    RS->Reorders += Decode ? Total : 0;
  }

  /// Executes the morsel streams of a parallel scan: on this thread when
  /// there is at most one morsel (or no scheduler, or this is already a
  /// worker instance), else as one scheduler job per morsel — one sibling
  /// executor, context and insert buffer per morsel, merged back in
  /// ascending morsel index at the barrier so the result is bit-identical
  /// to the sequential scan no matter which thread ran (or stole) which
  /// morsel. \p RS (nullable) is the scanned relation's counter slot; the
  /// caller has already counted the scan initiation.
  RamDomain runPartitions(RelationWrapper &Rel, std::uint32_t TupleId,
                          const Node &Nested, std::size_t NumTupleIds,
                          std::vector<std::unique_ptr<TupleStream>> &Streams,
                          obs::RelationStats *RS, bool IsIndex,
                          bool Decode) {
    if (Streams.empty())
      return 1;
    const std::size_t Arity = Rel.getArity();
    if (Streams.size() == 1 || !State.Sched || !IsMain) {
      std::uint64_t Total = 0;
      for (auto &Stream : Streams) {
        BufferedTupleSource Source(std::move(Stream), Arity,
                                   State.StreamBufferCapacity);
        Context Ctx(NumTupleIds);
        while (const RamDomain *Tuple = Source.next()) {
          ++Total;
          Ctx[TupleId] = Tuple;
          execute(&Nested, Ctx);
        }
      }
      noteScanTotal(RS, IsIndex, Decode, Total);
      return 1;
    }
    std::vector<TupleBuffer> Buffers(Streams.size());
    std::vector<std::uint64_t> Counts(Streams.size(), 0);
    std::vector<std::uint64_t> TupleCounts(Streams.size(), 0);
    // Private counter block per morsel, merged below at the barrier.
    std::vector<obs::StatsBlock> WorkerStats;
    if (StatsArr)
      WorkerStats.assign(Streams.size(),
                         obs::StatsBlock(State.Stats.size()));
    const obs::TraceRecorder *TR = State.Trace;
    std::vector<std::vector<obs::TraceEvent>> TraceBufs(
        TR ? Streams.size() : 0);
    const std::string SpanName =
        (IsIndex ? "index scan " : "scan ") + Rel.getName();
    State.Sched->run(Streams.size(), [&](std::size_t I, std::size_t Slot) {
      const std::uint64_t Start = TR ? TR->now() : 0;
      DynamicExecutor Worker(State, &Counts[I], &Buffers[I],
                             StatsArr ? WorkerStats[I].data() : nullptr,
                             TR ? &TraceBufs[I] : nullptr, Slot);
      Context Ctx(NumTupleIds);
      BufferedTupleSource Source(std::move(Streams[I]), Arity,
                                 State.StreamBufferCapacity);
      std::uint64_t Count = 0;
      while (const RamDomain *Tuple = Source.next()) {
        ++Count;
        Ctx[TupleId] = Tuple;
        Worker.execute(&Nested, Ctx);
      }
      TupleCounts[I] = Count;
      if (TR) {
        TraceBufs[I].push_back(
            {SpanName, 'B', Start, Slot,
             "{\"tuples\":" + std::to_string(Count) + "}"});
        TraceBufs[I].push_back(
            {std::string(), 'E', TR->now(), Slot, std::string()});
      }
    });
    if (State.Trace)
      State.Trace->begin("merge " + Rel.getName());
    TupleBuffer::flushAll(Buffers, StatsArr);
    if (StatsArr)
      for (const obs::StatsBlock &WS : WorkerStats)
        obs::mergeStats(State.Stats, WS);
    if (State.Trace) {
      State.Trace->end();
      for (auto &Buf : TraceBufs)
        State.Trace->append(std::move(Buf));
    }
    std::uint64_t Total = 0;
    for (std::size_t I = 0; I < Streams.size(); ++I) {
      *Dispatches += Counts[I];
      Total += TupleCounts[I];
    }
    noteScanTotal(RS, IsIndex, Decode, Total);
    return 1;
  }

  /// Executes the children of a ParallelSequence — a group of pairwise
  /// independent rules — as concurrent scheduler jobs. The generator
  /// guarantees no member writes a relation another member reads or
  /// writes, so jobs insert directly (no TupleBuffer) and the result set
  /// is the same as running the children in order. Dispatch counts,
  /// relation counters and trace events go into per-job privates merged
  /// at the barrier, keeping every observable total thread-invariant.
  RamDomain runRuleGroup(const ParallelSequenceNode &Seq, Context &Ctx) {
    if (!State.Sched || !IsMain) {
      for (const auto &Child : Seq.Children)
        if (!execute(Child.get(), Ctx))
          return 0;
      return 1;
    }
    const std::size_t N = Seq.Children.size();
    std::vector<std::uint64_t> Counts(N, 0);
    std::vector<obs::StatsBlock> JobStats;
    if (StatsArr)
      JobStats.assign(N, obs::StatsBlock(State.Stats.size()));
    const obs::TraceRecorder *TR = State.Trace;
    std::vector<std::vector<obs::TraceEvent>> TraceBufs(TR ? N : 0);
    State.Sched->run(N, [&](std::size_t I, std::size_t Slot) {
      DynamicExecutor Job(State, &Counts[I], /*Buffer=*/nullptr,
                          StatsArr ? JobStats[I].data() : nullptr,
                          TR ? &TraceBufs[I] : nullptr, Slot);
      Context JobCtx(0);
      Job.execute(Seq.Children[I].get(), JobCtx);
    });
    if (StatsArr)
      for (const obs::StatsBlock &JS : JobStats)
        obs::mergeStats(State.Stats, JS);
    if (TR)
      for (auto &Buf : TraceBufs)
        State.Trace->append(std::move(Buf));
    for (std::size_t I = 0; I < N; ++I)
      *Dispatches += Counts[I];
    return 1;
  }

  obs::RelationStats *statsFor(const RelationWrapper *Rel) const {
    return StatsArr ? StatsArr + Rel->getStatsId() : nullptr;
  }

  EngineState &State;
  /// Dispatch counter target: the shared engine counter on the main
  /// executor, a partition-local counter on workers.
  std::uint64_t *Dispatches;
  /// Set on worker instances only: inserts go here instead of into the
  /// relations, and the main thread flushes at the barrier.
  TupleBuffer *Buffer = nullptr;
  /// StatsId-indexed counter array: the engine block on the main executor,
  /// a job-private block on workers, null when stats are off.
  obs::RelationStats *StatsArr = nullptr;
  /// Worker instances append their trace events here (tagged TraceTid, the
  /// executing scheduler slot); the job barrier moves them into the shared
  /// recorder. Null on the main executor and when tracing is off.
  std::vector<obs::TraceEvent> *TraceBuf = nullptr;
  std::uint64_t TraceTid = 0;
  /// False on worker instances: nested parallel nodes run sequentially
  /// and the shared trace span stack is off limits.
  bool IsMain = true;
};

} // namespace

std::unique_ptr<ExecutorBase>
stird::interp::createDynamicExecutor(EngineState &State) {
  return std::make_unique<DynamicExecutor>(State);
}
