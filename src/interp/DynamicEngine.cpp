//===- interp/DynamicEngine.cpp - The de-specialized adapter engine ----------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-adapter executor: every relation access goes through the
/// virtual RelationWrapper interface, iterators are virtualized TupleStreams
/// amortized by the 128-tuple buffer, and tuple buffers live on the heap
/// because arities are only known at runtime (Section 3). This is the
/// baseline the static instruction generation of Section 4.1 is measured
/// against (Fig 18), and — paired with LegacyRelation storage — the legacy
/// interpreter of Section 5.1.
///
//===----------------------------------------------------------------------===//

#include "interp/Engine.h"

#include "interp/Context.h"
#include "interp/EvalUtil.h"
#include "interp/Parallel.h"
#include "util/MiscUtil.h"
#include "util/Timer.h"

using namespace stird;
using namespace stird::interp;

namespace {

class DynamicExecutor final : public ExecutorBase {
public:
  explicit DynamicExecutor(EngineState &State)
      : State(State), Dispatches(&State.NumDispatches) {}

  /// Worker-side instance for one partition of a parallel scan: dispatches
  /// count into a local counter (summed at the barrier) and inserts are
  /// buffered instead of applied.
  DynamicExecutor(EngineState &State, std::uint64_t *Dispatches,
                  TupleBuffer *Buffer)
      : State(State), Dispatches(Dispatches), Buffer(Buffer) {}

  void run(const Node &Root) override {
    Context Empty(0);
    execute(&Root, Empty);
  }

private:
  /// Builds the (possibly encoded) search key of a primitive search into
  /// \p Key, which must be zero-initialized with the relation's arity.
  void buildKey(const SuperInstruction &Pattern, bool NeedsEncode,
                const Order &Ord, std::vector<RamDomain> &Key,
                Context &Ctx) {
    fillSuper(Pattern, Key.data(), Ctx,
              [&](const Node &Expr) { return execute(&Expr, Ctx); });
    if (NeedsEncode) {
      std::vector<RamDomain> Source = Key;
      Ord.encode(Source.data(), Key.data());
    }
  }

  RamDomain execute(const Node *N, Context &Ctx) {
    ++*Dispatches;
    switch (N->Type) {
    //===-------------------------- Expressions --------------------------===//
    case NodeType::Constant:
      return static_cast<const ConstantNode *>(N)->Value;
    case NodeType::TupleElement: {
      const auto *TE = static_cast<const TupleElementNode *>(N);
      return Ctx[TE->TupleId][TE->Element];
    }
    case NodeType::Intrinsic: {
      const auto *Op = static_cast<const IntrinsicNode *>(N);
      RamDomain Args[8];
      assert(Op->Args.size() <= 8 && "intrinsic arity too large");
      for (std::size_t I = 0; I < Op->Args.size(); ++I)
        Args[I] = execute(Op->Args[I].get(), Ctx);
      return applyIntrinsic(Op->Op, Args, Op->Args.size(), State.Symbols);
    }
    case NodeType::AutoIncrement:
      // Relaxed fetch-add: ids must be unique and dense, not ordered.
      return State.Counter.fetch_add(1, std::memory_order_relaxed);

    //===-------------------------- Conditions ---------------------------===//
    case NodeType::True:
      return 1;
    case NodeType::Conjunction: {
      const auto *C = static_cast<const ConjunctionNode *>(N);
      return execute(C->Lhs.get(), Ctx) && execute(C->Rhs.get(), Ctx);
    }
    case NodeType::Negation:
      return !execute(static_cast<const NegationNode *>(N)->Inner.get(),
                      Ctx);
    case NodeType::Constraint: {
      const auto *C = static_cast<const ConstraintNode *>(N);
      return applyCmp(C->Op, execute(C->Lhs.get(), Ctx),
                      execute(C->Rhs.get(), Ctx))
                 ? 1
                 : 0;
    }
    case NodeType::FusedCondition:
      return runFusedCondition(*static_cast<const FusedConditionNode *>(N),
                               Ctx)
                 ? 1
                 : 0;
    case NodeType::EmptinessCheck:
      return static_cast<const EmptinessCheckNode *>(N)->Rel->empty() ? 1
                                                                      : 0;
    case NodeType::GenericExistence: {
      const auto *E = static_cast<const ExistenceNode *>(N);
      std::vector<RamDomain> Key(E->Rel->getArity(), 0);
      buildKey(E->Pattern, E->NeedsEncode, E->Rel->getOrder(E->IndexPos),
               Key, Ctx);
      return E->Rel->containsRange(E->IndexPos, Key.data(), E->PrefixLen,
                                   E->Mask)
                 ? 1
                 : 0;
    }

    //===-------------------------- Operations ---------------------------===//
    case NodeType::GenericScan: {
      const auto *S = static_cast<const ScanNode *>(N);
      BufferedTupleSource Source(S->Rel->scan(S->IndexPos, S->Decode),
                                 S->Rel->getArity(),
                                 State.StreamBufferCapacity);
      while (const RamDomain *Tuple = Source.next()) {
        Ctx[S->TupleId] = Tuple;
        execute(S->Nested.get(), Ctx);
      }
      return 1;
    }
    case NodeType::GenericIndexScan: {
      const auto *S = static_cast<const IndexScanNode *>(N);
      std::vector<RamDomain> Key(S->Rel->getArity(), 0);
      buildKey(S->Pattern, S->NeedsEncode, S->Rel->getOrder(S->IndexPos),
               Key, Ctx);
      BufferedTupleSource Source(
          S->Rel->range(S->IndexPos, Key.data(), S->PrefixLen, S->Mask,
                        S->Decode),
          S->Rel->getArity(), State.StreamBufferCapacity);
      while (const RamDomain *Tuple = Source.next()) {
        Ctx[S->TupleId] = Tuple;
        execute(S->Nested.get(), Ctx);
      }
      return 1;
    }
    case NodeType::ParallelScan: {
      const auto *S = static_cast<const ParallelScanNode *>(N);
      auto Streams =
          S->Rel->partitionScan(S->IndexPos, State.NumThreads, S->Decode);
      return runPartitions(*S->Rel, S->TupleId, *S->Nested, S->NumTupleIds,
                           Streams);
    }
    case NodeType::ParallelIndexScan: {
      const auto *S = static_cast<const ParallelIndexScanNode *>(N);
      std::vector<RamDomain> Key(S->Rel->getArity(), 0);
      buildKey(S->Pattern, S->NeedsEncode, S->Rel->getOrder(S->IndexPos),
               Key, Ctx);
      auto Streams =
          S->Rel->partitionRange(S->IndexPos, Key.data(), S->PrefixLen,
                                 S->Mask, S->Decode, State.NumThreads);
      return runPartitions(*S->Rel, S->TupleId, *S->Nested, S->NumTupleIds,
                           Streams);
    }
    case NodeType::Filter: {
      const auto *F = static_cast<const FilterNode *>(N);
      if (execute(F->Cond.get(), Ctx))
        execute(F->Nested.get(), Ctx);
      return 1;
    }
    case NodeType::GenericProject: {
      const auto *P = static_cast<const ProjectNode *>(N);
      std::vector<RamDomain> Tuple(P->Rel->getArity(), 0);
      fillSuper(P->Values, Tuple.data(), Ctx,
                [&](const Node &Expr) { return execute(&Expr, Ctx); });
      if (Buffer)
        Buffer->add(*P->Rel, Tuple.data());
      else
        P->Rel->insert(Tuple.data());
      return 1;
    }
    case NodeType::GenericAggregate: {
      const auto *A = static_cast<const AggregateNode *>(N);
      std::vector<RamDomain> Key(A->Rel->getArity(), 0);
      buildKey(A->Pattern, A->NeedsEncode, A->Rel->getOrder(A->IndexPos),
               Key, Ctx);
      BufferedTupleSource Source(
          A->Rel->range(A->IndexPos, Key.data(), A->PrefixLen, A->Mask,
                        A->Decode),
          A->Rel->getArity(), State.StreamBufferCapacity);
      AggAccumulator Acc;
      Acc.init(A->Func);
      while (const RamDomain *Tuple = Source.next()) {
        Ctx[A->TupleId] = Tuple;
        if (A->Cond && !execute(A->Cond.get(), Ctx))
          continue;
        Acc.step(A->Func,
                 A->Target ? execute(A->Target.get(), Ctx) : 0);
      }
      if (Acc.hasResult(A->Func)) {
        RamDomain Result[1] = {Acc.Value};
        Ctx[A->TupleId] = Result;
        execute(A->Nested.get(), Ctx);
      }
      return 1;
    }

    //===-------------------------- Statements ---------------------------===//
    case NodeType::Sequence: {
      const auto *Seq = static_cast<const SequenceNode *>(N);
      for (const auto &Child : Seq->Children)
        if (!execute(Child.get(), Ctx))
          return 0;
      return 1;
    }
    case NodeType::Loop: {
      const auto *L = static_cast<const LoopNode *>(N);
      while (execute(L->Body.get(), Ctx)) {
      }
      return 1;
    }
    case NodeType::Exit:
      return execute(static_cast<const ExitNode *>(N)->Cond.get(), Ctx) ? 0
                                                                        : 1;
    case NodeType::Query: {
      const auto *Q = static_cast<const QueryNode *>(N);
      Context QueryCtx(Q->NumTupleIds);
      execute(Q->Root.get(), QueryCtx);
      return 1;
    }
    case NodeType::Clear:
      static_cast<const ClearNode *>(N)->Rel->clear();
      return 1;
    case NodeType::SwapRel: {
      const auto *S = static_cast<const SwapNode *>(N);
      S->Rel->swap(*S->Second);
      return 1;
    }
    case NodeType::Merge: {
      const auto *M = static_cast<const MergeNode *>(N);
      M->Destination->insertAll(*M->Rel);
      return 1;
    }
    case NodeType::Io:
      State.executeIo(*static_cast<const IoNode *>(N));
      return 1;
    case NodeType::LogTimer: {
      const auto *Log = static_cast<const LogTimerNode *>(N);
      Timer T;
      std::uint64_t Before = *Dispatches;
      RamDomain Result = execute(Log->Body.get(), Ctx);
      State.Prof.record(Log->ProfileId, T.seconds(), *Dispatches - Before);
      return Result;
    }

    default:
      fatal("specialized opcode reached the dynamic-adapter executor");
    }
  }

  /// Executes the partition streams of a parallel scan: on this thread
  /// when there is at most one partition (or no pool), else on the worker
  /// pool — one sibling executor, context and insert buffer per partition,
  /// merged back deterministically at the barrier.
  RamDomain runPartitions(RelationWrapper &Rel, std::uint32_t TupleId,
                          const Node &Nested, std::size_t NumTupleIds,
                          std::vector<std::unique_ptr<TupleStream>> &Streams) {
    if (Streams.empty())
      return 1;
    const std::size_t Arity = Rel.getArity();
    if (Streams.size() == 1 || !State.Pool) {
      for (auto &Stream : Streams) {
        BufferedTupleSource Source(std::move(Stream), Arity,
                                   State.StreamBufferCapacity);
        Context Ctx(NumTupleIds);
        while (const RamDomain *Tuple = Source.next()) {
          Ctx[TupleId] = Tuple;
          execute(&Nested, Ctx);
        }
      }
      return 1;
    }
    std::vector<TupleBuffer> Buffers(Streams.size());
    std::vector<std::uint64_t> Counts(Streams.size(), 0);
    State.Pool->run(Streams.size(), [&](std::size_t I) {
      DynamicExecutor Worker(State, &Counts[I], &Buffers[I]);
      Context Ctx(NumTupleIds);
      BufferedTupleSource Source(std::move(Streams[I]), Arity,
                                 State.StreamBufferCapacity);
      while (const RamDomain *Tuple = Source.next()) {
        Ctx[TupleId] = Tuple;
        Worker.execute(&Nested, Ctx);
      }
    });
    TupleBuffer::flushAll(Buffers);
    for (std::uint64_t C : Counts)
      *Dispatches += C;
    return 1;
  }

  EngineState &State;
  /// Dispatch counter target: the shared engine counter on the main
  /// executor, a partition-local counter on workers.
  std::uint64_t *Dispatches;
  /// Set on worker instances only: inserts go here instead of into the
  /// relations, and the main thread flushes at the barrier.
  TupleBuffer *Buffer = nullptr;
};

} // namespace

std::unique_ptr<ExecutorBase>
stird::interp::createDynamicExecutor(EngineState &State) {
  return std::make_unique<DynamicExecutor>(State);
}
