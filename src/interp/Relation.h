//===- interp/Relation.h - De-specialized relation adapters -----*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime representation of relations in the interpreters.
///
/// A relation owns one statically typed DER index per selected order. Two
/// access paths exist, mirroring the paper:
///
///  * The *virtual adapter* path (RelationWrapper's virtual methods plus
///    TupleStream with the 128-tuple buffer) — the de-specialized interface
///    of Section 3, used by the dynamic-adapter engine of Fig 18 and by all
///    cold operations (IO, merge, clear).
///
///  * The *static* path: the STI's specialized instructions static_cast the
///    wrapper to its concrete type (BTreeRelation<Arity> etc.) and operate
///    on concrete indexes and iterators with zero virtual dispatch
///    (Section 4.1).
///
/// The factory at the bottom enumerates the entire de-specialized parameter
/// space — (implementation, arity) — exactly as in Fig 7 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_RELATION_H
#define STIRD_INTERP_RELATION_H

#include "der/Art.h"
#include "der/BTreeSet.h"
#include "der/Brie.h"
#include "der/EquivalenceRelation.h"
#include "interp/Order.h"
#include "ram/Ram.h"
#include "util/MiscUtil.h"
#include "util/RamTypes.h"

#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace stird::interp {

/// Which concrete family a wrapper belongs to; the static engine encodes
/// this (together with the arity) into its opcodes.
enum class RelKind : std::uint8_t { Btree, Brie, Art, Eqrel, Legacy, Counts };

/// The canonical lowercase spelling of a RelKind, as used by the profile
/// document's "kind" field, the serving stats reply and --substrate values.
inline const char *relKindName(RelKind Kind) {
  switch (Kind) {
  case RelKind::Btree:
    return "btree";
  case RelKind::Brie:
    return "brie";
  case RelKind::Art:
    return "art";
  case RelKind::Eqrel:
    return "eqrel";
  case RelKind::Legacy:
    return "legacy";
  case RelKind::Counts:
    break;
  }
  return "unknown";
}

/// Number of tuples buffered per virtual refill of a de-specialized
/// iterator (Section 3: one virtual call amortized over 128 reads).
inline constexpr std::size_t StreamBufferTuples = 128;

/// Type-erased tuple stream: the virtualized iterator of the dynamic
/// adapter. refill() writes up to Capacity tuples (Arity cells each) and
/// returns how many were written; 0 means exhausted.
class TupleStream {
public:
  virtual ~TupleStream() = default;
  virtual std::size_t refill(RamDomain *Buffer, std::size_t Capacity) = 0;
};

/// The virtual adapter wrapped around every relation (paper Fig 7's
/// IndexAdapter, widened to the full operation set the RAM needs).
class RelationWrapper {
public:
  RelationWrapper(RelKind Kind, const ram::Relation &Decl,
                  std::vector<Order> Orders)
      : Kind(Kind), Decl(Decl), Orders(std::move(Orders)) {}
  virtual ~RelationWrapper() = default;

  RelationWrapper(const RelationWrapper &) = delete;
  RelationWrapper &operator=(const RelationWrapper &) = delete;

  RelKind getKind() const { return Kind; }
  const ram::Relation &getDecl() const { return Decl; }
  const std::string &getName() const { return Decl.getName(); }
  std::size_t getArity() const { return Decl.getArity(); }
  std::size_t getNumIndexes() const { return Orders.size(); }
  const Order &getOrder(std::size_t IndexPos) const {
    return Orders[IndexPos];
  }

  /// Dense per-engine index into the engine's observability counter block
  /// (obs::StatsBlock); assigned once at engine construction.
  std::size_t getStatsId() const { return StatsId; }
  void setStatsId(std::size_t Id) { StatsId = Id; }

  /// Inserts a source-order tuple into every index; returns true if new.
  virtual bool insert(const RamDomain *Tuple) = 0;
  /// Removes a source-order tuple from every index; returns true if it was
  /// present. Only structures that support per-tuple deletion override
  /// this; the default is fatal (the translator routes strata over
  /// non-erasable structures to re-evaluation instead).
  virtual bool erase(const RamDomain *Tuple) {
    (void)Tuple;
    fatal("relation '" + getName() + "' does not support erase");
  }
  /// Full-tuple membership (via index 0).
  virtual bool contains(const RamDomain *Tuple) const = 0;
  /// True if some tuple matches the bound columns. \p EncodedKey is in the
  /// index order of \p IndexPos with the first \p PrefixLen cells bound;
  /// \p Mask is the source-column mask (only the equivalence relation
  /// consults it, for its non-prefix symmetric searches).
  virtual bool containsRange(std::size_t IndexPos,
                             const RamDomain *EncodedKey,
                             std::size_t PrefixLen,
                             std::uint32_t Mask) const = 0;
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }
  virtual void clear() = 0;
  /// O(1) content exchange; Other must be the same concrete type with the
  /// same orders (guaranteed by index selection for swapped relations).
  virtual void swap(RelationWrapper &Other) = 0;
  /// Inserts every tuple of Src (same arity) into this relation.
  virtual void insertAll(const RelationWrapper &Src) = 0;

  /// Full enumeration through index \p IndexPos. Tuples arrive in index
  /// order; with \p Decode they are permuted back to source order.
  virtual std::unique_ptr<TupleStream> scan(std::size_t IndexPos,
                                            bool Decode) const = 0;
  /// Range enumeration of tuples matching the first \p PrefixLen cells of
  /// \p EncodedKey on index \p IndexPos (see containsRange for Mask).
  virtual std::unique_ptr<TupleStream> range(std::size_t IndexPos,
                                             const RamDomain *EncodedKey,
                                             std::size_t PrefixLen,
                                             std::uint32_t Mask,
                                             bool Decode) const = 0;

  /// Splits the full scan of index \p IndexPos into up to \p MaxParts
  /// disjoint streams whose concatenation equals scan(IndexPos, Decode).
  /// The default — used by the equivalence and legacy relations — is one
  /// stream, which degrades a parallel scan to a sequential one without
  /// affecting its result. An empty relation yields no streams.
  virtual std::vector<std::unique_ptr<TupleStream>>
  partitionScan(std::size_t IndexPos, std::size_t /*MaxParts*/,
                bool Decode) const {
    std::vector<std::unique_ptr<TupleStream>> Streams;
    if (!empty())
      Streams.push_back(scan(IndexPos, Decode));
    return Streams;
  }

  /// Range analogue of partitionScan(): splits the enumeration of range()
  /// instead of the full scan. Same single-stream default.
  virtual std::vector<std::unique_ptr<TupleStream>>
  partitionRange(std::size_t IndexPos, const RamDomain *EncodedKey,
                 std::size_t PrefixLen, std::uint32_t Mask, bool Decode,
                 std::size_t /*MaxParts*/) const {
    std::vector<std::unique_ptr<TupleStream>> Streams;
    Streams.push_back(range(IndexPos, EncodedKey, PrefixLen, Mask, Decode));
    return Streams;
  }

  /// Convenience enumeration in source order (IO, tests, examples).
  void forEach(const std::function<void(const RamDomain *)> &Fn) const {
    auto Stream = scan(0, /*Decode=*/true);
    std::vector<RamDomain> Buffer(StreamBufferTuples * getArity());
    for (;;) {
      std::size_t N = Stream->refill(Buffer.data(), StreamBufferTuples);
      if (N == 0)
        return;
      for (std::size_t I = 0; I < N; ++I)
        Fn(Buffer.data() + I * getArity());
    }
  }

private:
  RelKind Kind;
  const ram::Relation &Decl;
  std::vector<Order> Orders;
  std::size_t StatsId = 0;
};

/// Reads a TupleStream through the paper's 128-tuple amortization buffer:
/// one virtual refill per StreamBufferTuples next() calls.
class BufferedTupleSource {
public:
  /// \p Capacity tunes the amortization: 128 for the de-specialized
  /// adapter (Section 3), 1 for the pre-buffering legacy interpreter.
  BufferedTupleSource(std::unique_ptr<TupleStream> Stream, std::size_t Arity,
                      std::size_t Capacity = StreamBufferTuples)
      : Stream(std::move(Stream)), Arity(Arity), Capacity(Capacity),
        Buffer(Capacity * Arity) {}

  /// Next tuple (Arity cells) or nullptr when exhausted.
  const RamDomain *next() {
    if (Pos == Count) {
      Count = Stream->refill(Buffer.data(), Capacity);
      Pos = 0;
      if (Count == 0)
        return nullptr;
    }
    return Buffer.data() + (Pos++) * Arity;
  }

private:
  std::unique_ptr<TupleStream> Stream;
  std::size_t Arity;
  std::size_t Capacity;
  std::vector<RamDomain> Buffer;
  std::size_t Count = 0;
  std::size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Statically typed index + stream implementations
//===----------------------------------------------------------------------===//

namespace detail {

/// Wraps any concrete iterator range as a TupleStream. Extract copies one
/// tuple's cells out of the dereferenced iterator value.
template <typename Iterator, std::size_t Arity, bool Decode>
class IteratorStream final : public TupleStream {
public:
  IteratorStream(Iterator Begin, Iterator End, const Order *Ord)
      : Cur(Begin), End(End), Ord(Ord) {}

  std::size_t refill(RamDomain *Buffer, std::size_t Capacity) override {
    std::size_t N = 0;
    while (N < Capacity && Cur != End) {
      const auto &Tuple = *Cur;
      if constexpr (Decode)
        Ord->decode(Tuple.data(), Buffer + N * Arity);
      else
        std::memcpy(Buffer + N * Arity, Tuple.data(),
                    Arity * sizeof(RamDomain));
      ++Cur;
      ++N;
    }
    return N;
  }

private:
  Iterator Cur;
  Iterator End;
  const Order *Ord;
};

/// Pads an encoded prefix key into full-width lower/upper bound tuples.
template <std::size_t Arity>
void padBounds(const RamDomain *EncodedKey, std::size_t PrefixLen,
               Tuple<Arity> &Low, Tuple<Arity> &High) {
  for (std::size_t J = 0; J < Arity; ++J) {
    if (J < PrefixLen) {
      Low[J] = EncodedKey[J];
      High[J] = EncodedKey[J];
    } else {
      Low[J] = std::numeric_limits<RamDomain>::min();
      High[J] = std::numeric_limits<RamDomain>::max();
    }
  }
}

} // namespace detail

/// One statically typed B-tree index with its insertion-time column order
/// (the BTreeIndex adapter of paper Fig 7).
template <std::size_t Arity> class BTreeIndex {
public:
  using TupleType = Tuple<Arity>;
  using iterator = typename BTreeSet<Arity>::iterator;

  explicit BTreeIndex(Order Ord) : Ord(std::move(Ord)) {}

  const Order &order() const { return Ord; }

  bool insert(const RamDomain *Source) {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.insert(Encoded);
  }
  bool erase(const RamDomain *Source) {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.erase(Encoded);
  }
  bool containsSource(const RamDomain *Source) const {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.contains(Encoded);
  }
  bool containsRange(const RamDomain *EncodedKey,
                     std::size_t PrefixLen) const {
    auto [Begin, End] = range(EncodedKey, PrefixLen);
    return Begin != End;
  }

  std::pair<iterator, iterator> range(const RamDomain *EncodedKey,
                                      std::size_t PrefixLen) const {
    TupleType Low, High;
    detail::padBounds<Arity>(EncodedKey, PrefixLen, Low, High);
    return {Set.lowerBound(Low), Set.upperBound(High)};
  }

  std::vector<std::pair<iterator, iterator>>
  partition(std::size_t MaxParts) const {
    return Set.partition(MaxParts);
  }
  std::vector<std::pair<iterator, iterator>>
  partitionRange(const RamDomain *EncodedKey, std::size_t PrefixLen,
                 std::size_t MaxParts) const {
    TupleType Low, High;
    detail::padBounds<Arity>(EncodedKey, PrefixLen, Low, High);
    return Set.partitionRange(Low, High, MaxParts);
  }

  iterator begin() const { return Set.begin(); }
  iterator end() const { return Set.end(); }
  std::size_t size() const { return Set.size(); }
  void clear() { Set.clear(); }
  void swapData(BTreeIndex &Other) { Set.swapData(Other.Set); }

private:
  Order Ord;
  BTreeSet<Arity> Set;
};

/// One statically typed Brie index.
template <std::size_t Arity> class BrieIndex {
public:
  using TupleType = Tuple<Arity>;
  using iterator = typename Brie<Arity>::iterator;

  explicit BrieIndex(Order Ord) : Ord(std::move(Ord)) {}

  const Order &order() const { return Ord; }

  bool insert(const RamDomain *Source) {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.insert(Encoded);
  }
  bool erase(const RamDomain *Source) {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.erase(Encoded);
  }
  bool containsSource(const RamDomain *Source) const {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.contains(Encoded);
  }
  bool containsRange(const RamDomain *EncodedKey,
                     std::size_t PrefixLen) const {
    TupleType Key{};
    std::memcpy(Key.data(), EncodedKey, PrefixLen * sizeof(RamDomain));
    return Set.containsPrefix(Key, PrefixLen);
  }

  std::pair<iterator, iterator> range(const RamDomain *EncodedKey,
                                      std::size_t PrefixLen) const {
    TupleType Key{};
    std::memcpy(Key.data(), EncodedKey, PrefixLen * sizeof(RamDomain));
    return {Set.prefixBegin(Key, PrefixLen), Set.end()};
  }

  std::vector<std::pair<iterator, iterator>>
  partition(std::size_t MaxParts) const {
    return Set.partition(MaxParts);
  }
  std::vector<std::pair<iterator, iterator>>
  partitionRange(const RamDomain *EncodedKey, std::size_t PrefixLen,
                 std::size_t MaxParts) const {
    // A prefix search pins the iterator's Start level, so it is served as
    // one undivided range; only full scans split across the root.
    if (PrefixLen == 0)
      return Set.partition(MaxParts);
    std::vector<std::pair<iterator, iterator>> Parts;
    auto [Begin, End] = range(EncodedKey, PrefixLen);
    if (Begin != End)
      Parts.emplace_back(Begin, End);
    return Parts;
  }

  iterator begin() const { return Set.begin(); }
  iterator end() const { return Set.end(); }
  std::size_t size() const { return Set.size(); }
  void clear() { Set.clear(); }
  void swapData(BrieIndex &Other) { Set.swapData(Other.Set); }

private:
  Order Ord;
  Brie<Arity> Set;
};

/// One statically typed adaptive-radix-tree index. ArtSet iterates in the
/// byte-encoded key order, which equals TupleCompare order over the encoded
/// tuples, so the adapter is interchangeable with BTreeIndex.
template <std::size_t Arity> class ArtIndex {
public:
  using TupleType = Tuple<Arity>;
  using iterator = typename ArtSet<Arity>::iterator;

  explicit ArtIndex(Order Ord) : Ord(std::move(Ord)) {}

  const Order &order() const { return Ord; }

  bool insert(const RamDomain *Source) {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.insert(Encoded);
  }
  bool erase(const RamDomain *Source) {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.erase(Encoded);
  }
  bool containsSource(const RamDomain *Source) const {
    TupleType Encoded;
    Ord.encode(Source, Encoded.data());
    return Set.contains(Encoded);
  }
  bool containsRange(const RamDomain *EncodedKey,
                     std::size_t PrefixLen) const {
    auto [Begin, End] = range(EncodedKey, PrefixLen);
    return Begin != End;
  }

  std::pair<iterator, iterator> range(const RamDomain *EncodedKey,
                                      std::size_t PrefixLen) const {
    TupleType Low, High;
    detail::padBounds<Arity>(EncodedKey, PrefixLen, Low, High);
    return {Set.lowerBound(Low), Set.upperBound(High)};
  }

  std::vector<std::pair<iterator, iterator>>
  partition(std::size_t MaxParts) const {
    return Set.partition(MaxParts);
  }
  std::vector<std::pair<iterator, iterator>>
  partitionRange(const RamDomain *EncodedKey, std::size_t PrefixLen,
                 std::size_t MaxParts) const {
    // Bounded ranges are served undivided (cf. BrieIndex): a prefix search
    // usually touches one subtree, not worth re-partitioning.
    if (PrefixLen == 0)
      return Set.partition(MaxParts);
    std::vector<std::pair<iterator, iterator>> Parts;
    auto [Begin, End] = range(EncodedKey, PrefixLen);
    if (Begin != End)
      Parts.emplace_back(Begin, End);
    return Parts;
  }

  iterator begin() const { return Set.begin(); }
  iterator end() const { return Set.end(); }
  std::size_t size() const { return Set.size(); }
  void clear() { Set.clear(); }
  void swapData(ArtIndex &Other) { Set.swapData(Other.Set); }

private:
  Order Ord;
  ArtSet<Arity> Set;
};

//===----------------------------------------------------------------------===//
// Concrete relations
//===----------------------------------------------------------------------===//

/// Shared implementation of the wrapper interface over a vector of
/// statically typed indexes (B-tree or Brie).
template <typename IndexT, std::size_t Arity, RelKind KindV>
class IndexedRelation final : public RelationWrapper {
public:
  /// Compile-time arity, read back by the specialized instruction bodies.
  static constexpr std::size_t ArityValue = Arity;

  IndexedRelation(const ram::Relation &Decl, std::vector<Order> Orders)
      : RelationWrapper(KindV, Decl, Orders) {
    assert(!Orders.empty() && "a relation needs at least one index");
    Indexes.reserve(Orders.size());
    for (auto &Ord : Orders)
      Indexes.emplace_back(Ord);
  }

  /// Direct access for the static engine's specialized instructions.
  IndexT &index(std::size_t IndexPos) { return Indexes[IndexPos]; }
  const IndexT &index(std::size_t IndexPos) const {
    return Indexes[IndexPos];
  }

  bool insert(const RamDomain *Tuple) override {
    bool Grew = Indexes[0].insert(Tuple);
    if (Grew)
      for (std::size_t I = 1; I < Indexes.size(); ++I)
        Indexes[I].insert(Tuple);
    return Grew;
  }

  bool erase(const RamDomain *Tuple) override {
    bool Removed = Indexes[0].erase(Tuple);
    if (Removed)
      for (std::size_t I = 1; I < Indexes.size(); ++I)
        Indexes[I].erase(Tuple);
    return Removed;
  }

  bool contains(const RamDomain *Tuple) const override {
    return Indexes[0].containsSource(Tuple);
  }

  bool containsRange(std::size_t IndexPos, const RamDomain *EncodedKey,
                     std::size_t PrefixLen,
                     std::uint32_t /*Mask*/) const override {
    return Indexes[IndexPos].containsRange(EncodedKey, PrefixLen);
  }

  std::size_t size() const override { return Indexes[0].size(); }

  void clear() override {
    for (auto &Index : Indexes)
      Index.clear();
  }

  void swap(RelationWrapper &Other) override {
    auto *OtherRel = static_cast<IndexedRelation *>(&Other);
    assert(Other.getKind() == getKind() &&
           Other.getNumIndexes() == getNumIndexes() &&
           "swap requires identical physical layout");
    for (std::size_t I = 0; I < Indexes.size(); ++I)
      Indexes[I].swapData(OtherRel->Indexes[I]);
  }

  void insertAll(const RelationWrapper &Src) override {
    assert(Src.getArity() == Arity && "arity mismatch in merge");
    Src.forEach([&](const RamDomain *Tuple) { insert(Tuple); });
  }

  std::unique_ptr<TupleStream> scan(std::size_t IndexPos,
                                    bool Decode) const override {
    const IndexT &Index = Indexes[IndexPos];
    return makeStream(Index.begin(), Index.end(), Index.order(), Decode);
  }

  std::unique_ptr<TupleStream> range(std::size_t IndexPos,
                                     const RamDomain *EncodedKey,
                                     std::size_t PrefixLen,
                                     std::uint32_t /*Mask*/,
                                     bool Decode) const override {
    const IndexT &Index = Indexes[IndexPos];
    auto [Begin, End] = Index.range(EncodedKey, PrefixLen);
    return makeStream(Begin, End, Index.order(), Decode);
  }

  std::vector<std::unique_ptr<TupleStream>>
  partitionScan(std::size_t IndexPos, std::size_t MaxParts,
                bool Decode) const override {
    const IndexT &Index = Indexes[IndexPos];
    std::vector<std::unique_ptr<TupleStream>> Streams;
    for (const auto &[Begin, End] : Index.partition(MaxParts))
      Streams.push_back(makeStream(Begin, End, Index.order(), Decode));
    return Streams;
  }

  std::vector<std::unique_ptr<TupleStream>>
  partitionRange(std::size_t IndexPos, const RamDomain *EncodedKey,
                 std::size_t PrefixLen, std::uint32_t /*Mask*/, bool Decode,
                 std::size_t MaxParts) const override {
    const IndexT &Index = Indexes[IndexPos];
    std::vector<std::unique_ptr<TupleStream>> Streams;
    for (const auto &[Begin, End] :
         Index.partitionRange(EncodedKey, PrefixLen, MaxParts))
      Streams.push_back(makeStream(Begin, End, Index.order(), Decode));
    return Streams;
  }

private:
  using Iter = typename IndexT::iterator;

  static std::unique_ptr<TupleStream>
  makeStream(Iter Begin, Iter End, const Order &Ord, bool Decode) {
    if (Decode && !Ord.isIdentity())
      return std::make_unique<detail::IteratorStream<Iter, Arity, true>>(
          Begin, End, &Ord);
    return std::make_unique<detail::IteratorStream<Iter, Arity, false>>(
        Begin, End, &Ord);
  }

  std::vector<IndexT> Indexes;
};

template <std::size_t Arity>
using BTreeRelation =
    IndexedRelation<BTreeIndex<Arity>, Arity, RelKind::Btree>;

template <std::size_t Arity>
using BrieRelation = IndexedRelation<BrieIndex<Arity>, Arity, RelKind::Brie>;

template <std::size_t Arity>
using ArtRelation = IndexedRelation<ArtIndex<Arity>, Arity, RelKind::Art>;

/// The equivalence-relation wrapper. It ignores orders (the union-find is
/// symmetric) and serves every search mask natively.
class EqrelRelation final : public RelationWrapper {
public:
  EqrelRelation(const ram::Relation &Decl, std::vector<Order> Orders)
      : RelationWrapper(RelKind::Eqrel, Decl, std::move(Orders)) {
    assert(Decl.getArity() == 2 && "equivalence relations are binary");
  }

  EquivalenceRelation &data() { return Rel; }
  const EquivalenceRelation &data() const { return Rel; }

  bool insert(const RamDomain *Tuple) override {
    return Rel.insert(Tuple[0], Tuple[1]);
  }
  bool contains(const RamDomain *Tuple) const override {
    return Rel.contains(Tuple[0], Tuple[1]);
  }
  bool containsRange(std::size_t, const RamDomain *EncodedKey,
                     std::size_t PrefixLen,
                     std::uint32_t Mask) const override {
    if (Mask == 0)
      return !Rel.empty();
    if (Mask == 0b11)
      return Rel.contains(EncodedKey[0], EncodedKey[1]);
    if (Mask == 0b01)
      return Rel.containsFirst(EncodedKey[0]);
    // Mask 0b10: by symmetry, the second column's values are the same set.
    (void)PrefixLen;
    return Rel.containsFirst(EncodedKey[1]);
  }
  std::size_t size() const override { return Rel.size(); }
  void clear() override { Rel.clear(); }
  void swap(RelationWrapper &Other) override {
    assert(Other.getKind() == RelKind::Eqrel && "swap layout mismatch");
    Rel.swapData(static_cast<EqrelRelation &>(Other).Rel);
  }
  void insertAll(const RelationWrapper &Src) override {
    Src.forEach([&](const RamDomain *Tuple) { insert(Tuple); });
  }

  std::unique_ptr<TupleStream> scan(std::size_t, bool) const override;
  std::unique_ptr<TupleStream> range(std::size_t,
                                     const RamDomain *EncodedKey,
                                     std::size_t PrefixLen,
                                     std::uint32_t Mask,
                                     bool Decode) const override;

  /// Splits the pair enumeration by "first" value: each stream walks a
  /// contiguous slice of the sorted value list and emits (first, member)
  /// pairs for its slice. Concatenated, the streams equal scan().
  std::vector<std::unique_ptr<TupleStream>>
  partitionScan(std::size_t IndexPos, std::size_t MaxParts,
                bool Decode) const override;

  /// An unbound search (mask 0) partitions like the full scan; anchored
  /// searches keep the single-stream default.
  std::vector<std::unique_ptr<TupleStream>>
  partitionRange(std::size_t IndexPos, const RamDomain *EncodedKey,
                 std::size_t PrefixLen, std::uint32_t Mask, bool Decode,
                 std::size_t MaxParts) const override;

private:
  EquivalenceRelation Rel;
};

/// The legacy interpreter's relation: one generic max-width B-tree per
/// order whose comparator reads the order from a runtime array on *every*
/// comparison (Section 5.1's slow baseline). Tuples are stored in source
/// order padded to MaxArity cells.
class LegacyRelation final : public RelationWrapper {
public:
  LegacyRelation(const ram::Relation &Decl, std::vector<Order> Orders);

  bool insert(const RamDomain *Tuple) override;
  bool erase(const RamDomain *Tuple) override;
  bool contains(const RamDomain *Tuple) const override;
  bool containsRange(std::size_t IndexPos, const RamDomain *EncodedKey,
                     std::size_t PrefixLen,
                     std::uint32_t Mask) const override;
  std::size_t size() const override { return Trees[0].size(); }
  void clear() override;
  void swap(RelationWrapper &Other) override;
  void insertAll(const RelationWrapper &Src) override;
  std::unique_ptr<TupleStream> scan(std::size_t IndexPos,
                                    bool Decode) const override;
  std::unique_ptr<TupleStream> range(std::size_t IndexPos,
                                     const RamDomain *EncodedKey,
                                     std::size_t PrefixLen,
                                     std::uint32_t Mask,
                                     bool Decode) const override;

private:
  using WideTuple = Tuple<MaxArity>;
  using Tree = BTreeSet<MaxArity, RuntimeOrderCompare<MaxArity>>;

  /// Converts an index-order key into padded source-order bounds.
  void makeBounds(std::size_t IndexPos, const RamDomain *EncodedKey,
                  std::size_t PrefixLen, WideTuple &Low,
                  WideTuple &High) const;

  std::vector<std::vector<std::uint32_t>> OrderArrays;
  std::vector<Tree> Trees;
};

//===----------------------------------------------------------------------===//
// Factory
//===----------------------------------------------------------------------===//

/// Instantiates the wrapper for \p Decl with the given \p Orders — the
/// factory of paper Fig 7, enumerating the pre-compiled (implementation,
/// arity) portfolio. \p Legacy selects the runtime-comparator baseline.
std::unique_ptr<RelationWrapper>
createRelation(const ram::Relation &Decl, std::vector<Order> Orders,
               bool Legacy = false);

} // namespace stird::interp

#endif // STIRD_INTERP_RELATION_H
