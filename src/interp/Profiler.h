//===- interp/Profiler.h - Per-rule execution profiling ---------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Soufflé-profiler analog: accumulates wall time, invocation counts,
/// dispatch counts and produced-tuple deltas per LogTimer label (one label
/// per rule version), keeping every individual sample so recursive rules
/// expose their full stratum → version → iteration hierarchy. Drives the
/// Section 5.2 case study (Fig 16), the dispatch-elimination measurement
/// of the super-instruction experiment (Fig 19), and the JSON profile sink
/// of the observability layer.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_PROFILER_H
#define STIRD_INTERP_PROFILER_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace stird::interp {

/// Static position of a rule version in the program: which stratum emitted
/// it, which relation its head writes, and which semi-naive version it is.
/// Defaults describe a rule registered without translation metadata
/// (hand-built profilers in tests, non-rule timers).
struct RuleMeta {
  int Stratum = -1;
  std::string Relation;
  /// Semi-naive version index ([vN] in the label); -1 for non-recursive.
  int Version = -1;
  bool Recursive = false;
  /// The SIPS strategy that planned the rule body ("" when unknown).
  std::string Sips;
  /// Chosen join order: element i is the source-order body-atom index
  /// scanned at depth i. Empty for non-rule timers.
  std::vector<int> AtomOrder;
  /// Parallel-rule group id: rules sharing an id were found pairwise
  /// independent and run as concurrent jobs on the scheduler; -1 for
  /// ungrouped (sequential) rules and non-rule timers.
  int ParGroup = -1;
};

/// One timed execution of a rule. For a recursive rule the samples line up
/// with the fixpoint loop's iterations, so the sequence of DeltaTuples is
/// the rule's semi-naive convergence curve.
struct IterationSample {
  double Seconds = 0;
  std::uint64_t Dispatches = 0;
  /// Tuples the target relation gained during this execution.
  std::uint64_t DeltaTuples = 0;
};

/// Accumulated statistics of one rule version.
struct RuleProfile {
  std::string Label;
  RuleMeta Meta;
  double Seconds = 0;
  std::uint64_t Invocations = 0;
  std::uint64_t Dispatches = 0;
  std::uint64_t DeltaTuples = 0;
  /// Per-execution samples in execution order (iteration order for rules
  /// inside a fixpoint loop).
  std::vector<IterationSample> Iterations;
};

/// Collects per-rule statistics across a run.
class Profiler {
public:
  /// Registers \p Label (idempotent) and returns its dense id.
  std::size_t registerRule(const std::string &Label) {
    return registerRule(Label, RuleMeta{});
  }

  /// Registers \p Label with its translation metadata. Idempotent on the
  /// label; the first registration's metadata wins.
  std::size_t registerRule(const std::string &Label, RuleMeta Meta);

  /// Accumulates one timed execution of rule \p Id. Thread-safe: LogTimer
  /// currently fires on the main thread only, but the profiler must not be
  /// the reason rules inside parallel sections can't be timed — recording
  /// is cold (once per rule invocation), so one mutex suffices.
  void record(std::size_t Id, double Seconds, std::uint64_t Dispatches,
              std::uint64_t DeltaTuples = 0) {
    std::lock_guard<std::mutex> Lock(M);
    RuleProfile &Profile = Rules[Id];
    Profile.Seconds += Seconds;
    Profile.Invocations += 1;
    Profile.Dispatches += Dispatches;
    Profile.DeltaTuples += DeltaTuples;
    Profile.Iterations.push_back({Seconds, Dispatches, DeltaTuples});
  }

  /// Snapshot of every rule profile, copied under the mutex: safe to call
  /// concurrently with record().
  std::vector<RuleProfile> rules() const {
    std::lock_guard<std::mutex> Lock(M);
    return Rules;
  }

  /// Snapshot of one rule's accumulated profile by label; nullopt if the
  /// label was never registered.
  std::optional<RuleProfile> find(const std::string &Label) const;

private:
  std::vector<RuleProfile> Rules;
  std::unordered_map<std::string, std::size_t> IdOf;
  mutable std::mutex M;
};

} // namespace stird::interp

#endif // STIRD_INTERP_PROFILER_H
