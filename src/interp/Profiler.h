//===- interp/Profiler.h - Per-rule execution profiling ---------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Soufflé-profiler analog: accumulates wall time, invocation counts
/// and dispatch counts per LogTimer label (one label per rule version).
/// Drives the Section 5.2 case study (Fig 16) and the dispatch-elimination
/// measurement of the super-instruction experiment (Fig 19).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_PROFILER_H
#define STIRD_INTERP_PROFILER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace stird::interp {

/// Accumulated statistics of one rule version.
struct RuleProfile {
  std::string Label;
  double Seconds = 0;
  std::uint64_t Invocations = 0;
  std::uint64_t Dispatches = 0;
};

/// Collects per-rule statistics across a run.
class Profiler {
public:
  /// Registers \p Label (idempotent) and returns its dense id.
  std::size_t registerRule(const std::string &Label);

  /// Accumulates one timed execution of rule \p Id. Thread-safe: LogTimer
  /// currently fires on the main thread only, but the profiler must not be
  /// the reason rules inside parallel sections can't be timed — recording
  /// is cold (once per rule invocation), so one mutex suffices.
  void record(std::size_t Id, double Seconds, std::uint64_t Dispatches) {
    std::lock_guard<std::mutex> Lock(M);
    RuleProfile &Profile = Rules[Id];
    Profile.Seconds += Seconds;
    Profile.Invocations += 1;
    Profile.Dispatches += Dispatches;
  }

  /// Snapshot access; callers must not run concurrently with record().
  const std::vector<RuleProfile> &rules() const { return Rules; }

  /// Finds the accumulated profile for a label; null if never executed.
  const RuleProfile *find(const std::string &Label) const;

private:
  std::vector<RuleProfile> Rules;
  std::unordered_map<std::string, std::size_t> IdOf;
  std::mutex M;
};

} // namespace stird::interp

#endif // STIRD_INTERP_PROFILER_H
