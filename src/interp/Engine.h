//===- interp/Engine.h - Interpreter engines --------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter engine facade. One Engine owns the runtime relations,
/// generates the interpreter tree from a RAM program, and executes it with
/// one of four executors:
///
///  * StaticLambda — the STI: specialized instructions, with the
///    register-pressure lambda-CASE trick of Section 4.3 enabled;
///  * StaticPlain — the STI compiled without the lambda trick (the
///    Section 5.5 register-pressure ablation);
///  * DynamicAdapter — the de-specialized virtual-adapter interpreter with
///    buffered iterators (the Fig 18 baseline);
///  * Legacy — the pre-STI interpreter with runtime-order comparators
///    (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_ENGINE_H
#define STIRD_INTERP_ENGINE_H

#include "interp/Node.h"
#include "interp/Profiler.h"
#include "interp/Relation.h"
#include "obs/Stats.h"
#include "ram/Ram.h"
#include "translate/IndexSelection.h"
#include "util/SymbolTable.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace stird::obs {
class TraceRecorder;
} // namespace stird::obs

namespace stird::interp {

class Scheduler;

/// Which executor runs the interpreter tree.
enum class Backend {
  StaticLambda,
  StaticPlain,
  DynamicAdapter,
  Legacy,
};

/// Engine configuration. The optimization toggles map one-to-one onto the
/// paper's ablation experiments.
struct EngineOptions {
  Backend TheBackend = Backend::StaticLambda;
  /// Section 4.4 super-instructions (Fig 19 ablation).
  bool SuperInstructions = true;
  /// Section 4.2 static tuple reordering (Section 5.5 ablation).
  bool StaticReordering = true;
  /// Section 5.2 hand-crafted fused-condition super-instructions.
  bool FuseConditions = false;
  /// Directory searched for .input fact files.
  std::string FactDir = ".";
  /// Directory receiving .output files.
  std::string OutputDir = ".";
  /// Echo .printsize results on stdout (they are always recorded in
  /// EngineState::PrintSizes); benchmarks switch this off.
  bool EchoPrintSize = true;
  /// Evaluation threads: eligible outermost scans are cut into morsels
  /// executed by a work-stealing scheduler (task-local contexts, per-morsel
  /// insert buffers merged at a barrier), and independent rules of a
  /// stratum run as concurrent jobs. 0 means "unset" — core::Program
  /// substitutes its own default; the engine then treats it as 1
  /// (sequential).
  std::size_t NumThreads = 0;
  /// Target tuples per morsel for partitioned scans (--morsel-size).
  /// 0 means the engine default (256). Smaller morsels rebalance skew
  /// better at higher cut/merge overhead; results are identical at any
  /// value (see TupleBuffer::flushAll).
  std::size_t MorselSize = 0;
  /// The scheduler to run on. Null (the default) makes the engine create
  /// its own when NumThreads > 1; core::Program injects a per-thread-count
  /// shared instance here so every engine of a program — including
  /// resident serving sessions and their update batches — reuses one warm
  /// pool. Ignored unless its thread count matches NumThreads.
  std::shared_ptr<Scheduler> Sched;
  /// Per-relation observability counters (inserts, scans, index hits,
  /// reorders, peaks). Hot-path cost is one non-atomic increment; the
  /// micro_obs benchmark guards the overhead.
  bool CollectStats = true;
  /// Record a Chrome trace-event timeline of the run (rule spans, worker
  /// partitions, merge barriers); read it back via Engine::getTrace().
  bool EnableTrace = false;
  /// Skip Load and Store Io statements (facts arrive programmatically,
  /// results are queried in memory). Used by resident sessions; .printsize
  /// results are still recorded.
  bool SuppressIo = false;
};

/// Mutable state shared between the engine facade and its executor.
struct EngineState {
  // Both out-of-line: Scheduler is incomplete here.
  explicit EngineState(SymbolTable &Symbols);
  ~EngineState();

  SymbolTable &Symbols;
  std::unordered_map<std::string, std::unique_ptr<RelationWrapper>> Relations;
  /// Dispatch counter: incremented on every execute() entry of whichever
  /// executor runs (Fig 19's dispatch-elimination metric).
  std::uint64_t NumDispatches = 0;
  /// The `$` auto-increment counter. Atomic so that rules using `$` stay
  /// eligible for parallel evaluation: workers fetch-add concurrently, so
  /// ids are always dense and unique, but *which* row receives which id is
  /// thread-order-dependent when the rule runs partitioned (stable within
  /// one run; identical across runs at -j1 or whenever the rule falls back
  /// to a single partition).
  std::atomic<RamDomain> Counter{0};
  Profiler Prof;
  std::string FactDir = ".";
  std::string OutputDir = ".";
  bool EchoPrintSize = true;
  bool SuppressIo = false;
  /// Malformed fact-file rows encountered by Load statements: the rows are
  /// skipped and reported here instead of aborting the run.
  std::vector<FactError> IoErrors;
  /// Tuples buffered per virtual iterator refill in the dynamic executor:
  /// 128 for the de-specialized adapter, 1 for the legacy interpreter
  /// (which predates the buffering mechanism).
  std::size_t StreamBufferCapacity = StreamBufferTuples;
  /// Results of .printsize directives, in execution order.
  std::vector<std::pair<std::string, std::size_t>> PrintSizes;
  /// Effective evaluation thread count (>= 1) and, when it exceeds 1, the
  /// work-stealing scheduler the parallel cases submit morsel and rule
  /// jobs to (possibly shared with other engines of the same program).
  std::size_t NumThreads = 1;
  std::shared_ptr<Scheduler> Sched;
  /// Target tuples per morsel for partitioned scans.
  std::size_t MorselSize = 256;
  /// How many morsels to cut a scan of \p Size tuples into: enough that
  /// every thread holds work and stragglers can be stolen around (at
  /// least NumThreads, about Size / MorselSize), but bounded (64 ×
  /// NumThreads) so cut/merge bookkeeping stays negligible.
  std::size_t morselParts(std::size_t Size) const {
    if (NumThreads <= 1)
      return 1;
    const std::size_t M = MorselSize > 0 ? MorselSize : 1;
    const std::size_t Wanted = (Size + M - 1) / M;
    const std::size_t Cap = NumThreads * 64;
    return std::max(NumThreads, std::min(Wanted, Cap));
  }
  /// Observability: the engine's counter block, indexed by each relation's
  /// StatsId. The main executor writes it directly; morsel and rule jobs
  /// write private blocks merged at their job barrier.
  obs::StatsBlock Stats;
  /// Relations in StatsId order (for reporting).
  std::vector<const RelationWrapper *> StatsRelations;
  bool CollectStats = true;
  /// Trace recorder, or null when tracing is off. Main-thread use only;
  /// workers buffer events privately (see obs/Trace.h).
  obs::TraceRecorder *Trace = nullptr;

  /// Executes an Io node (shared across executors; cold path).
  void executeIo(const IoNode &Node);
};

/// Interface of the per-backend executors.
class ExecutorBase {
public:
  virtual ~ExecutorBase() = default;
  /// Executes the whole interpreter tree rooted at \p Root.
  virtual void run(const Node &Root) = 0;
};

std::unique_ptr<ExecutorBase> createDynamicExecutor(EngineState &State);
std::unique_ptr<ExecutorBase> createStaticExecutorLambda(EngineState &State);
std::unique_ptr<ExecutorBase> createStaticExecutorPlain(EngineState &State);

/// The engine: builds relations + interpreter tree for a RAM program and
/// runs it. The RAM program, index selection result and symbol table must
/// outlive the engine.
class Engine {
public:
  Engine(const ram::Program &Prog,
         const translate::IndexSelectionResult &Indexes,
         SymbolTable &Symbols, EngineOptions Options = {});
  ~Engine();

  /// Generates the interpreter tree (timed as part of run(), as in the
  /// paper's measurements) and executes the program.
  void run();

  /// Whether the RAM program carries an incremental-update statement
  /// (translated with EmitUpdateProgram and found eligible).
  bool supportsIncrementalUpdate() const { return Prog.hasUpdate(); }

  /// Executes the incremental-update statement over the resident
  /// relations: the caller has inserted a monotonic batch of new EDB
  /// tuples into both each full relation and its update-delta relation
  /// (see ram::Program::getUpdateAux); this derives every consequence and
  /// clears the deltas. The update tree is generated once and reused
  /// across batches.
  void runUpdate();

  /// Executes one RAM statement of the engine's program over the resident
  /// relations. Used by the maintenance driver (inc::Maintainer) to run
  /// per-stratum update statements, the count-initialization statement,
  /// and recorded Main sub-ranges for re-evaluated strata. The statement
  /// must belong to (or be reachable from) the engine's ram::Program so
  /// its relation references resolve. Trees are generated on first use and
  /// cached per statement; execution always goes through the de-specialized
  /// dynamic-adapter executor, which is the only one carrying the
  /// maintenance opcodes (Erase / Subtract / FoldCounts) and every generic
  /// operation.
  void runStatement(const ram::Statement &Stmt);

  const ram::Program &getProgram() const { return Prog; }
  const translate::IndexSelectionResult &getIndexes() const {
    return Indexes;
  }

  /// Generates the interpreter tree without executing and renders it
  /// (one line per INode with opcodes and super-instruction slots).
  std::string dumpTree();

  /// Access to a relation's runtime contents.
  RelationWrapper *getRelation(const std::string &Name);
  const RelationWrapper *getRelation(const std::string &Name) const;

  /// Inserts tuples programmatically (before run(), e.g. EDB injection).
  void insertTuples(const std::string &Name,
                    const std::vector<DynTuple> &Tuples);
  /// Snapshot of a relation's tuples in source order, sorted.
  std::vector<DynTuple> getTuples(const std::string &Name) const;

  std::uint64_t getNumDispatches() const { return State.NumDispatches; }
  const Profiler &getProfiler() const { return State.Prof; }
  /// The engine's observability counter block (StatsId-indexed) and the
  /// relations in the same order. Counters are complete once run() returns.
  const obs::StatsBlock &getStats() const { return State.Stats; }
  const std::vector<const RelationWrapper *> &getStatsRelations() const {
    return State.StatsRelations;
  }
  /// The trace recorder, or null unless EngineOptions::EnableTrace was set.
  const obs::TraceRecorder *getTrace() const { return TraceRec.get(); }
  const std::vector<std::pair<std::string, std::size_t>> &
  getPrintSizes() const {
    return State.PrintSizes;
  }
  const EngineOptions &getOptions() const { return Options; }
  /// Malformed fact-file rows skipped by Load statements during run().
  const std::vector<FactError> &getIoErrors() const {
    return State.IoErrors;
  }

private:
  ExecutorBase &ensureExecutor();
  ExecutorBase &ensureMaintExecutor();

  const ram::Program &Prog;
  const translate::IndexSelectionResult &Indexes;
  EngineOptions Options;
  EngineState State;
  NodePtr Root;
  NodePtr UpdateRoot;
  /// Per-statement tree cache for runStatement (maintenance strata run
  /// once per batch; regenerating their trees each time would dwarf small
  /// batches).
  std::unordered_map<const ram::Statement *, NodePtr> StmtTrees;
  std::unique_ptr<ExecutorBase> Executor;
  /// Dynamic-adapter executor for runStatement, distinct from Executor
  /// when the configured backend is static.
  std::unique_ptr<ExecutorBase> MaintExecutor;
  std::unique_ptr<obs::TraceRecorder> TraceRec;
};

} // namespace stird::interp

#endif // STIRD_INTERP_ENGINE_H
