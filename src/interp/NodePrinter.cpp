//===- interp/NodePrinter.cpp - Interpreter-tree dump -------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/NodePrinter.h"

#include "util/MiscUtil.h"

#include <sstream>

using namespace stird;
using namespace stird::interp;

const char *stird::interp::nodeTypeName(NodeType Type) {
  switch (Type) {
  case NodeType::Constant:
    return "Constant";
  case NodeType::TupleElement:
    return "TupleElement";
  case NodeType::Intrinsic:
    return "Intrinsic";
  case NodeType::AutoIncrement:
    return "AutoIncrement";
  case NodeType::True:
    return "True";
  case NodeType::Conjunction:
    return "Conjunction";
  case NodeType::Negation:
    return "Negation";
  case NodeType::Constraint:
    return "Constraint";
  case NodeType::FusedCondition:
    return "FusedCondition";
  case NodeType::EmptinessCheck:
    return "EmptinessCheck";
  case NodeType::GenericExistence:
    return "GenericExistence";
  case NodeType::GenericScan:
    return "GenericScan";
  case NodeType::GenericIndexScan:
    return "GenericIndexScan";
  case NodeType::ParallelScan:
    return "ParallelScan";
  case NodeType::ParallelIndexScan:
    return "ParallelIndexScan";
  case NodeType::Filter:
    return "Filter";
  case NodeType::GenericProject:
    return "GenericProject";
  case NodeType::GenericAggregate:
    return "GenericAggregate";
  case NodeType::Sequence:
    return "Sequence";
  case NodeType::ParallelSequence:
    return "ParallelSequence";
  case NodeType::Loop:
    return "Loop";
  case NodeType::Exit:
    return "Exit";
  case NodeType::Query:
    return "Query";
  case NodeType::Clear:
    return "Clear";
  case NodeType::SwapRel:
    return "SwapRel";
  case NodeType::Merge:
    return "Merge";
  case NodeType::EraseRel:
    return "EraseRel";
  case NodeType::Subtract:
    return "Subtract";
  case NodeType::FoldCounts:
    return "FoldCounts";
  case NodeType::Io:
    return "Io";
  case NodeType::LogTimer:
    return "LogTimer";
#define STIRD_NODE_NAME_CASE(Structure, Arity)                                \
  case NodeType::Scan_##Structure##_##Arity:                                  \
    return "Scan_" #Structure "_" #Arity;                                     \
  case NodeType::IndexScan_##Structure##_##Arity:                             \
    return "IndexScan_" #Structure "_" #Arity;                                \
  case NodeType::Project_##Structure##_##Arity:                               \
    return "Project_" #Structure "_" #Arity;                                  \
  case NodeType::Existence_##Structure##_##Arity:                             \
    return "Existence_" #Structure "_" #Arity;                                \
  case NodeType::Aggregate_##Structure##_##Arity:                             \
    return "Aggregate_" #Structure "_" #Arity;
    STIRD_FOR_EACH(STIRD_NODE_NAME_CASE)
#undef STIRD_NODE_NAME_CASE
  }
  unreachable("unknown node type");
}

namespace {

class TreePrinter {
public:
  explicit TreePrinter(std::ostringstream &Out) : Out(Out) {}

  void print(const Node &N) {
    indent();
    Out << nodeTypeName(N.Type);
    describe(N);
    Out << "\n";
    ++Depth;
    children(N);
    --Depth;
  }

private:
  void indent() {
    for (int I = 0; I < Depth; ++I)
      Out << "  ";
  }

  void printSuper(const SuperInstruction &Super) {
    Out << " slots{";
    bool First = true;
    for (const auto &C : Super.Constants) {
      Out << (First ? "" : " ") << C.Slot << "=const:" << C.Value;
      First = false;
    }
    for (const auto &T : Super.TupleSources) {
      Out << (First ? "" : " ") << T.Slot << "=t" << T.TupleId << "."
          << T.Element;
      First = false;
    }
    for (const auto &G : Super.Generic) {
      Out << (First ? "" : " ") << G.Slot << "=expr";
      First = false;
    }
    Out << "}";
  }

  void describe(const Node &N) {
    switch (N.Type) {
    case NodeType::Constant:
      Out << " " << static_cast<const ConstantNode &>(N).Value;
      return;
    case NodeType::TupleElement: {
      const auto &TE = static_cast<const TupleElementNode &>(N);
      Out << " t" << TE.TupleId << "." << TE.Element;
      return;
    }
    case NodeType::FusedCondition:
      Out << " ["
          << static_cast<const FusedConditionNode &>(N).Program.size()
          << " micro-ops]";
      return;
    case NodeType::LogTimer:
      Out << " \"" << static_cast<const LogTimerNode &>(N).Label << "\"";
      return;
    case NodeType::Query:
      Out << " tuples=" << static_cast<const QueryNode &>(N).NumTupleIds;
      return;
    default:
      break;
    }
    if (const auto *Rel = dynamic_cast<const RelationalNode *>(&N))
      Out << " rel=" << Rel->Rel->getName();
    if (const auto *E = dynamic_cast<const EraseNode *>(&N))
      Out << " from=" << E->Destination->getName();
    if (const auto *S = dynamic_cast<const SubtractNode *>(&N))
      Out << " without=" << S->Filter->getName()
          << " into=" << S->Destination->getName();
    if (const auto *F = dynamic_cast<const FoldCountsNode *>(&N))
      Out << " dec=" << F->Dec->getName()
          << " support=" << F->Support->getName()
          << " target=" << F->Target->getName()
          << " ins=" << F->InsOut->getName()
          << " del=" << F->DelOut->getName();
    if (const auto *Scan = dynamic_cast<const ScanNode *>(&N))
      Out << " index=" << Scan->IndexPos << " t" << Scan->TupleId
          << (Scan->Decode ? " decode" : "");
    if (const auto *Scan = dynamic_cast<const IndexScanNode *>(&N)) {
      Out << " index=" << Scan->IndexPos << " prefix=" << Scan->PrefixLen
          << " t" << Scan->TupleId
          << (Scan->NeedsEncode ? " encode" : "")
          << (Scan->Decode ? " decode" : "");
      printSuper(Scan->Pattern);
    }
    if (const auto *Exist = dynamic_cast<const ExistenceNode *>(&N)) {
      Out << " index=" << Exist->IndexPos << " prefix=" << Exist->PrefixLen;
      printSuper(Exist->Pattern);
    }
    if (const auto *Project = dynamic_cast<const ProjectNode *>(&N))
      printSuper(Project->Values);
  }

  void children(const Node &N) {
    if (const auto *Seq = dynamic_cast<const SequenceNode *>(&N)) {
      for (const auto &Child : Seq->Children)
        print(*Child);
      return;
    }
    if (const auto *L = dynamic_cast<const LoopNode *>(&N)) {
      print(*L->Body);
      return;
    }
    if (const auto *E = dynamic_cast<const ExitNode *>(&N)) {
      print(*E->Cond);
      return;
    }
    if (const auto *Q = dynamic_cast<const QueryNode *>(&N)) {
      print(*Q->Root);
      return;
    }
    if (const auto *Log = dynamic_cast<const LogTimerNode *>(&N)) {
      print(*Log->Body);
      return;
    }
    if (const auto *F = dynamic_cast<const FilterNode *>(&N)) {
      print(*F->Cond);
      print(*F->Nested);
      return;
    }
    if (const auto *C = dynamic_cast<const ConjunctionNode *>(&N)) {
      print(*C->Lhs);
      print(*C->Rhs);
      return;
    }
    if (const auto *Neg = dynamic_cast<const NegationNode *>(&N)) {
      print(*Neg->Inner);
      return;
    }
    if (const auto *Con = dynamic_cast<const ConstraintNode *>(&N)) {
      print(*Con->Lhs);
      print(*Con->Rhs);
      return;
    }
    if (const auto *Op = dynamic_cast<const IntrinsicNode *>(&N)) {
      for (const auto &Arg : Op->Args)
        print(*Arg);
      return;
    }
    if (const auto *Scan = dynamic_cast<const ScanNode *>(&N)) {
      print(*Scan->Nested);
      return;
    }
    if (const auto *Scan = dynamic_cast<const IndexScanNode *>(&N)) {
      for (const auto &G : Scan->Pattern.Generic)
        print(*G.Expr);
      print(*Scan->Nested);
      return;
    }
    if (const auto *Exist = dynamic_cast<const ExistenceNode *>(&N)) {
      for (const auto &G : Exist->Pattern.Generic)
        print(*G.Expr);
      return;
    }
    if (const auto *Project = dynamic_cast<const ProjectNode *>(&N)) {
      for (const auto &G : Project->Values.Generic)
        print(*G.Expr);
      return;
    }
    if (const auto *Agg = dynamic_cast<const AggregateNode *>(&N)) {
      for (const auto &G : Agg->Pattern.Generic)
        print(*G.Expr);
      if (Agg->Cond)
        print(*Agg->Cond);
      if (Agg->Target)
        print(*Agg->Target);
      print(*Agg->Nested);
      return;
    }
  }

  std::ostringstream &Out;
  int Depth = 0;
};

} // namespace

std::string stird::interp::printTree(const Node &Root) {
  std::ostringstream Out;
  TreePrinter(Out).print(Root);
  return Out.str();
}
