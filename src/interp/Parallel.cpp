//===- interp/Parallel.cpp - Parallel-section insert buffers --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Parallel.h"

#include "interp/Relation.h"
#include "obs/Stats.h"

#include <cassert>

namespace stird::interp {

void TupleBuffer::add(RelationWrapper &Rel, const RamDomain *Tuple) {
  for (PerRelation &B : Buffers) {
    if (B.Rel == &Rel) {
      B.Cells.insert(B.Cells.end(), Tuple, Tuple + B.Arity);
      return;
    }
  }
  Buffers.push_back({&Rel, Rel.getArity(), {}});
  PerRelation &B = Buffers.back();
  B.Cells.insert(B.Cells.end(), Tuple, Tuple + B.Arity);
}

void TupleBuffer::flush(obs::RelationStats *Stats) {
  for (PerRelation &B : Buffers) {
    assert(B.Arity == B.Rel->getArity() &&
           "buffered tuple width diverged from its target relation");
    assert(B.Cells.size() % B.Arity == 0 &&
           "buffer holds a partial tuple");
    if (Stats) {
      obs::RelationStats &RS = Stats[B.Rel->getStatsId()];
      for (std::size_t I = 0; I < B.Cells.size(); I += B.Arity)
        RS.InsertsNew += B.Rel->insert(B.Cells.data() + I) ? 1 : 0;
    } else {
      for (std::size_t I = 0; I < B.Cells.size(); I += B.Arity)
        B.Rel->insert(B.Cells.data() + I);
    }
    B.Cells.clear();
  }
  Buffers.clear();
}

void TupleBuffer::flushAll(std::vector<TupleBuffer> &Buffers,
                           obs::RelationStats *Stats) {
  // Ascending morsel index, never completion order: morsel I's tuples
  // always merge before morsel I+1's.
  for (TupleBuffer &B : Buffers)
    B.flush(Stats);
}

} // namespace stird::interp
