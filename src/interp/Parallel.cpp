//===- interp/Parallel.cpp - Worker pool and insert buffers ---------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Parallel.h"

#include "interp/Relation.h"
#include "obs/Stats.h"

#include <cassert>
#include <cstring>

namespace stird::interp {

ThreadPool::ThreadPool(std::size_t NumThreads) {
  const std::size_t NumWorkers = NumThreads > 0 ? NumThreads - 1 : 0;
  Workers.reserve(NumWorkers);
  for (std::size_t I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  WakeCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::run(std::size_t NumTasks,
                     const std::function<void(std::size_t)> &Fn) {
  if (NumTasks == 0)
    return;
  {
    std::lock_guard<std::mutex> Lock(M);
    Job = &Fn;
    Total = NumTasks;
    Next = 0;
    Finished = 0;
    ++Generation;
  }
  WakeCV.notify_all();
  drainTasks();
  std::unique_lock<std::mutex> Lock(M);
  DoneCV.wait(Lock, [this] { return Finished == Total; });
  Job = nullptr;
}

void ThreadPool::drainTasks() {
  for (;;) {
    std::size_t Task;
    const std::function<void(std::size_t)> *Fn;
    {
      std::lock_guard<std::mutex> Lock(M);
      if (!Job || Next >= Total)
        return;
      Task = Next++;
      Fn = Job;
    }
    (*Fn)(Task);
    {
      std::lock_guard<std::mutex> Lock(M);
      if (++Finished == Total)
        DoneCV.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(M);
      WakeCV.wait(Lock, [&] { return Stop || Generation != SeenGeneration; });
      if (Stop)
        return;
      SeenGeneration = Generation;
    }
    drainTasks();
  }
}

void TupleBuffer::add(RelationWrapper &Rel, const RamDomain *Tuple) {
  for (PerRelation &B : Buffers) {
    if (B.Rel == &Rel) {
      B.Cells.insert(B.Cells.end(), Tuple, Tuple + B.Arity);
      return;
    }
  }
  Buffers.push_back({&Rel, Rel.getArity(), {}});
  PerRelation &B = Buffers.back();
  B.Cells.insert(B.Cells.end(), Tuple, Tuple + B.Arity);
}

void TupleBuffer::flush(obs::RelationStats *Stats) {
  for (PerRelation &B : Buffers) {
    assert(B.Arity == B.Rel->getArity() &&
           "buffered tuple width diverged from its target relation");
    assert(B.Cells.size() % B.Arity == 0 &&
           "buffer holds a partial tuple");
    if (Stats) {
      obs::RelationStats &RS = Stats[B.Rel->getStatsId()];
      for (std::size_t I = 0; I < B.Cells.size(); I += B.Arity)
        RS.InsertsNew += B.Rel->insert(B.Cells.data() + I) ? 1 : 0;
    } else {
      for (std::size_t I = 0; I < B.Cells.size(); I += B.Arity)
        B.Rel->insert(B.Cells.data() + I);
    }
    B.Cells.clear();
  }
  Buffers.clear();
}

void TupleBuffer::flushAll(std::vector<TupleBuffer> &Buffers,
                           obs::RelationStats *Stats) {
  // Ascending partition index, never completion order: partition I's
  // tuples always merge before partition I+1's.
  for (TupleBuffer &B : Buffers)
    B.flush(Stats);
}

} // namespace stird::interp
