//===- interp/ForEach.h - The de-specialized parameter space ----*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central FOR_EACH macros of the paper (Figs 8 and 9): after
/// de-specialization an index is identified by (implementation, arity)
/// alone, and this file enumerates that whole space once. Both the relation
/// factory (Fig 7) and the STI's static instruction generation (Fig 10/11)
/// expand over it, so adding a structure or widening the arity range is a
/// one-line change.
///
/// Soufflé's portfolio also contains a provenance B-tree variant
/// (FOR_EACH_PROVENANCE in Fig 8); provenance is outside the paper's
/// evaluation and is intentionally not reproduced.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_FOREACH_H
#define STIRD_INTERP_FOREACH_H

#define STIRD_FOR_EACH_BTREE(Func)                                            \
  Func(Btree, 1) Func(Btree, 2) Func(Btree, 3) Func(Btree, 4)                 \
  Func(Btree, 5) Func(Btree, 6) Func(Btree, 7) Func(Btree, 8)                 \
  Func(Btree, 9) Func(Btree, 10) Func(Btree, 11) Func(Btree, 12)              \
  Func(Btree, 13) Func(Btree, 14) Func(Btree, 15) Func(Btree, 16)

#define STIRD_FOR_EACH_BRIE(Func)                                             \
  Func(Brie, 1) Func(Brie, 2) Func(Brie, 3) Func(Brie, 4)                     \
  Func(Brie, 5) Func(Brie, 6) Func(Brie, 7) Func(Brie, 8)

#define STIRD_FOR_EACH_ART(Func)                                              \
  Func(Art, 1) Func(Art, 2) Func(Art, 3) Func(Art, 4)                         \
  Func(Art, 5) Func(Art, 6) Func(Art, 7) Func(Art, 8)

// The equivalence relation is a specialized binary relation.
#define STIRD_FOR_EACH_EQREL(Func) Func(Eqrel, 2)

#define STIRD_FOR_EACH(Func)                                                  \
  STIRD_FOR_EACH_BTREE(Func)                                                  \
  STIRD_FOR_EACH_BRIE(Func)                                                   \
  STIRD_FOR_EACH_ART(Func)                                                    \
  STIRD_FOR_EACH_EQREL(Func)

#endif // STIRD_INTERP_FOREACH_H
