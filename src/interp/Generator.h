//===- interp/Generator.h - RAM to interpreter-tree generation --*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the interpreter tree (INodes) from a RAM program. This is
/// where the paper's generation-time optimizations are applied:
///
///  * opcode specialization — encodes (structure, arity) into the opcode
///    when targeting the static engine (Section 4.1);
///  * static tuple reordering — pattern slots are emitted in index order
///    and tuple-element accesses are rewritten through the order, removing
///    all runtime permutation (Section 4.2);
///  * super-instructions — constants and tuple-element reads are folded
///    into their parent instruction (Section 4.4, Fig 13);
///  * fused conditions — arithmetic filter conditions become one
///    micro-program instruction (the Section 5.2 hand-crafted
///    super-instructions).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_GENERATOR_H
#define STIRD_INTERP_GENERATOR_H

#include "interp/Engine.h"
#include "interp/Node.h"
#include "translate/IndexSelection.h"

namespace stird::interp {

/// Generation-time switches (a subset of EngineOptions plus the backend's
/// specialization choice).
struct GeneratorOptions {
  bool Specialize = true;
  bool SuperInstructions = true;
  bool StaticReordering = true;
  bool FuseConditions = false;
  /// With more than one thread, eligible query roots are lowered to
  /// ParallelScan / ParallelIndexScan (see Generator.cpp for the
  /// eligibility rules that keep evaluation deterministic).
  std::size_t NumThreads = 1;
};

/// Builds the interpreter tree for \p Prog. Relations must already exist
/// in \p State (one wrapper per RAM relation); rule labels are registered
/// with the state's profiler.
NodePtr generateTree(const ram::Program &Prog,
                     const translate::IndexSelectionResult &Indexes,
                     EngineState &State, const GeneratorOptions &Options);

/// Same, but for an explicit root statement of the program (e.g. the
/// incremental-update statement instead of main).
NodePtr generateTree(const ram::Statement &Root,
                     const translate::IndexSelectionResult &Indexes,
                     EngineState &State, const GeneratorOptions &Options);

} // namespace stird::interp

#endif // STIRD_INTERP_GENERATOR_H
