//===- interp/Generator.cpp - RAM to interpreter-tree generation ------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Generator.h"

#include "interp/ForEach.h"
#include "util/MiscUtil.h"

#include <bit>
#include <optional>
#include <unordered_map>
#include <utility>

using namespace stird;
using namespace stird::interp;

namespace {

/// The specializable operations of the static engine.
enum class SpecOp { Scan, IndexScan, Project, Existence, Aggregate };

/// Maps (operation, structure, arity) to the specialized opcode generated
/// by the STIRD_FOR_EACH expansion in Node.h.
NodeType specializedType(SpecOp Op, RelKind Kind, std::size_t Arity) {
#define STIRD_SPECIALIZE_CASE(Structure, ArityV)                              \
  if (Kind == RelKind::Structure && Arity == (ArityV)) {                      \
    switch (Op) {                                                             \
    case SpecOp::Scan:                                                        \
      return NodeType::Scan_##Structure##_##ArityV;                           \
    case SpecOp::IndexScan:                                                   \
      return NodeType::IndexScan_##Structure##_##ArityV;                      \
    case SpecOp::Project:                                                     \
      return NodeType::Project_##Structure##_##ArityV;                        \
    case SpecOp::Existence:                                                   \
      return NodeType::Existence_##Structure##_##ArityV;                      \
    case SpecOp::Aggregate:                                                   \
      return NodeType::Aggregate_##Structure##_##ArityV;                      \
    }                                                                         \
  }
  STIRD_FOR_EACH(STIRD_SPECIALIZE_CASE)
#undef STIRD_SPECIALIZE_CASE
  fatal("no specialized instruction for this relation shape");
}

NodeType genericType(SpecOp Op) {
  switch (Op) {
  case SpecOp::Scan:
    return NodeType::GenericScan;
  case SpecOp::IndexScan:
    return NodeType::GenericIndexScan;
  case SpecOp::Project:
    return NodeType::GenericProject;
  case SpecOp::Existence:
    return NodeType::GenericExistence;
  case SpecOp::Aggregate:
    return NodeType::GenericAggregate;
  }
  unreachable("unknown spec op");
}

/// Walks a RAM operation chain to find the number of tuple registers a
/// query needs.
std::size_t countTupleIds(const ram::Operation &Op) {
  switch (Op.getKind()) {
  case ram::Operation::Kind::Scan: {
    const auto &S = static_cast<const ram::Scan &>(Op);
    return std::max<std::size_t>(S.getTupleId() + 1,
                                 countTupleIds(S.getNested()));
  }
  case ram::Operation::Kind::IndexScan: {
    const auto &S = static_cast<const ram::IndexScan &>(Op);
    return std::max<std::size_t>(S.getTupleId() + 1,
                                 countTupleIds(S.getNested()));
  }
  case ram::Operation::Kind::Filter:
    return countTupleIds(static_cast<const ram::Filter &>(Op).getNested());
  case ram::Operation::Kind::Project:
    return 0;
  case ram::Operation::Kind::Aggregate: {
    const auto &A = static_cast<const ram::Aggregate &>(Op);
    return std::max<std::size_t>(A.getTupleId() + 1,
                                 countTupleIds(A.getNested()));
  }
  }
  unreachable("unknown operation kind");
}

//===----------------------------------------------------------------------===//
// Parallelization eligibility
//===----------------------------------------------------------------------===//

/// What a query touches, for deciding whether its outermost scan may be
/// partitioned across threads.
///
/// The expression language no longer contributes: the `$` auto-increment
/// counter is an atomic fetch-add, and the string functors (Cat / Substr /
/// ToString) intern through the concurrency-safe SymbolTable, so every
/// expression may run on a partition worker. (The resulting `$` ids and
/// freshly interned ordinals are dense but thread-order-dependent — the
/// documented determinism caveat of parallel evaluation.) What remains is
/// the relation footprint: which relations the query reads and writes.
struct QueryFootprint {
  std::vector<const ram::Relation *> Reads;
  std::vector<const ram::Relation *> Writes;
};

void collectCond(const ram::Condition &Cond, QueryFootprint &F) {
  using K = ram::Condition::Kind;
  switch (Cond.getKind()) {
  case K::True:
  case K::Constraint:
    return;
  case K::Conjunction: {
    const auto &C = static_cast<const ram::Conjunction &>(Cond);
    collectCond(C.getLhs(), F);
    collectCond(C.getRhs(), F);
    return;
  }
  case K::Negation:
    collectCond(static_cast<const ram::Negation &>(Cond).getInner(), F);
    return;
  case K::EmptinessCheck:
    F.Reads.push_back(
        &static_cast<const ram::EmptinessCheck &>(Cond).getRelation());
    return;
  case K::ExistenceCheck:
    F.Reads.push_back(
        &static_cast<const ram::ExistenceCheck &>(Cond).getRelation());
    return;
  }
}

void collectOp(const ram::Operation &Op, QueryFootprint &F) {
  using K = ram::Operation::Kind;
  switch (Op.getKind()) {
  case K::Scan: {
    const auto &S = static_cast<const ram::Scan &>(Op);
    F.Reads.push_back(&S.getRelation());
    collectOp(S.getNested(), F);
    return;
  }
  case K::IndexScan: {
    const auto &S = static_cast<const ram::IndexScan &>(Op);
    F.Reads.push_back(&S.getRelation());
    collectOp(S.getNested(), F);
    return;
  }
  case K::Filter: {
    const auto &Fl = static_cast<const ram::Filter &>(Op);
    collectCond(Fl.getCondition(), F);
    collectOp(Fl.getNested(), F);
    return;
  }
  case K::Project:
    F.Writes.push_back(&static_cast<const ram::Project &>(Op).getRelation());
    return;
  case K::Aggregate: {
    const auto &A = static_cast<const ram::Aggregate &>(Op);
    F.Reads.push_back(&A.getRelation());
    if (A.getCondition())
      collectCond(*A.getCondition(), F);
    collectOp(A.getNested(), F);
    return;
  }
  }
}

/// The generator proper.
class TreeGenerator {
public:
  TreeGenerator(const translate::IndexSelectionResult &Indexes,
                EngineState &State, const GeneratorOptions &Options)
      : Indexes(Indexes), State(State), Options(Options) {}

  NodePtr genStmt(const ram::Statement &Stmt) {
    using K = ram::Statement::Kind;
    switch (Stmt.getKind()) {
    case K::Sequence: {
      const auto &Seq = static_cast<const ram::Sequence &>(Stmt);
      const auto &Stmts = Seq.getStatements();
      std::vector<NodePtr> Children;
      for (std::size_t I = 0; I < Stmts.size();) {
        const std::size_t GroupEnd =
            Options.NumThreads > 1 ? extendRuleGroup(Stmts, I) : I + 1;
        if (GroupEnd > I + 1) {
          // A run of pairwise independent rules: execute the members as
          // concurrent jobs on the scheduler.
          std::vector<NodePtr> Members;
          CurrentParGroup = NextParGroup++;
          for (std::size_t J = I; J < GroupEnd; ++J)
            Members.push_back(genStmt(*Stmts[J]));
          CurrentParGroup = -1;
          Children.push_back(std::make_unique<ParallelSequenceNode>(
              &Stmt, std::move(Members)));
        } else {
          Children.push_back(genStmt(*Stmts[I]));
        }
        I = GroupEnd;
      }
      return std::make_unique<SequenceNode>(&Stmt, std::move(Children));
    }
    case K::Loop: {
      const auto &L = static_cast<const ram::Loop &>(Stmt);
      return std::make_unique<LoopNode>(&Stmt, genStmt(L.getBody()));
    }
    case K::Exit: {
      const auto &E = static_cast<const ram::Exit &>(Stmt);
      return std::make_unique<ExitNode>(&Stmt, genCond(E.getCondition()));
    }
    case K::Query: {
      const auto &Q = static_cast<const ram::Query &>(Stmt);
      RewriteOrders.clear();
      std::size_t NumIds = countTupleIds(Q.getRoot());
      if (Options.NumThreads > 1 && shouldParallelize(Q.getRoot()))
        ParallelRootIds = NumIds;
      NodePtr Root = genOp(Q.getRoot());
      ParallelRootIds.reset();
      return std::make_unique<QueryNode>(&Stmt, std::move(Root), NumIds);
    }
    case K::Clear: {
      const auto &C = static_cast<const ram::Clear &>(Stmt);
      return std::make_unique<ClearNode>(&Stmt,
                                         wrapper(C.getRelation()));
    }
    case K::Swap: {
      const auto &S = static_cast<const ram::Swap &>(Stmt);
      return std::make_unique<SwapNode>(&Stmt, wrapper(S.getFirst()),
                                        wrapper(S.getSecond()));
    }
    case K::MergeInto: {
      const auto &M = static_cast<const ram::MergeInto &>(Stmt);
      return std::make_unique<MergeNode>(&Stmt, wrapper(M.getSource()),
                                         wrapper(M.getDestination()));
    }
    case K::Erase: {
      const auto &E = static_cast<const ram::Erase &>(Stmt);
      return std::make_unique<EraseNode>(&Stmt, wrapper(E.getSource()),
                                         wrapper(E.getDestination()));
    }
    case K::SubtractInto: {
      const auto &S = static_cast<const ram::SubtractInto &>(Stmt);
      return std::make_unique<SubtractNode>(&Stmt, wrapper(S.getSource()),
                                            wrapper(S.getFilter()),
                                            wrapper(S.getDestination()));
    }
    case K::FoldCounts: {
      const auto &F = static_cast<const ram::FoldCounts &>(Stmt);
      return std::make_unique<FoldCountsNode>(
          &Stmt, wrapper(F.getAdd()), wrapper(F.getDec()),
          wrapper(F.getSupport()), wrapper(F.getTarget()),
          wrapper(F.getInsOut()), wrapper(F.getDelOut()));
    }
    case K::Io: {
      const auto &IoStmt = static_cast<const ram::Io &>(Stmt);
      return std::make_unique<IoNode>(&Stmt, wrapper(IoStmt.getRelation()),
                                      IoStmt.getDirection());
    }
    case K::LogTimer: {
      const auto &Log = static_cast<const ram::LogTimer &>(Stmt);
      const ram::LogTimer::RuleInfo &Info = Log.getInfo();
      RuleMeta Meta;
      Meta.Stratum = Info.Stratum;
      Meta.Relation = Info.Relation;
      Meta.Version = Info.Version;
      Meta.Recursive = Info.Recursive;
      Meta.Sips = Info.Sips;
      Meta.AtomOrder = Info.AtomOrder;
      Meta.ParGroup = CurrentParGroup;
      std::size_t Id = State.Prof.registerRule(Log.getLabel(), Meta);
      RelationWrapper *DeltaRel =
          Info.Target ? wrapper(*Info.Target) : nullptr;
      return std::make_unique<LogTimerNode>(&Stmt, Log.getLabel(), Id,
                                            DeltaRel, genStmt(Log.getBody()));
    }
    }
    unreachable("unknown statement kind");
  }

private:
  //===--------------------------------------------------------------------===
  // Search planning
  //===--------------------------------------------------------------------===

  struct SearchPlan {
    std::size_t IndexPos = 0;
    std::size_t PrefixLen = 0;
    std::uint32_t Mask = 0;
    bool NeedsEncode = false;
    /// Slots carry index-order positions (true) or source columns (false).
    bool SlotsInIndexOrder = false;
    const Order *Ord = nullptr;
  };

  SearchPlan planSearch(RelationWrapper *Rel,
                        const std::vector<ram::ExprPtr> &Pattern) {
    SearchPlan Plan;
    Plan.Mask = ram::searchSignature(Pattern);
    const auto &Info = Indexes.of(Rel->getDecl());
    if (Plan.Mask != 0) {
      auto It = Info.Placement.find(Plan.Mask);
      assert(It != Info.Placement.end() && "search was not planned");
      Plan.IndexPos = It->second.OrderIndex;
      Plan.PrefixLen = It->second.PrefixLength;
    }
    Plan.Ord = &Rel->getOrder(Plan.IndexPos);

    switch (Rel->getKind()) {
    case RelKind::Eqrel:
      // Served natively from the union-find; slots stay in source order.
      Plan.IndexPos = 0;
      Plan.SlotsInIndexOrder = false;
      Plan.NeedsEncode = false;
      break;
    case RelKind::Legacy:
      // The legacy relation expects keys in index order and permutes them
      // through its runtime comparator order itself.
      Plan.SlotsInIndexOrder = true;
      Plan.NeedsEncode = false;
      break;
    default:
      if (Options.StaticReordering) {
        Plan.SlotsInIndexOrder = true;
        Plan.NeedsEncode = false;
      } else {
        Plan.SlotsInIndexOrder = false;
        Plan.NeedsEncode = !Plan.Ord->isIdentity();
      }
      break;
    }
    return Plan;
  }

  /// Builds the super-instruction writing the bound pattern slots.
  SuperInstruction buildPatternSuper(const SearchPlan &Plan,
                                     const std::vector<ram::ExprPtr> &Pattern) {
    SuperInstruction Super;
    if (Plan.SlotsInIndexOrder) {
      for (std::size_t J = 0; J < Plan.PrefixLen; ++J) {
        const std::uint32_t SrcCol = Plan.Ord->column(J);
        addSlot(Super, static_cast<std::uint32_t>(J), *Pattern[SrcCol]);
      }
      return Super;
    }
    for (std::size_t Col = 0; Col < Pattern.size(); ++Col)
      if (Pattern[Col]->getKind() != ram::Expression::Kind::Undef)
        addSlot(Super, static_cast<std::uint32_t>(Col), *Pattern[Col]);
    return Super;
  }

  /// Builds the super-instruction for insert values (source order, all
  /// slots present).
  SuperInstruction buildValuesSuper(const std::vector<ram::ExprPtr> &Values) {
    SuperInstruction Super;
    for (std::size_t Col = 0; Col < Values.size(); ++Col)
      addSlot(Super, static_cast<std::uint32_t>(Col), *Values[Col]);
    return Super;
  }

  /// Classifies one slot writer: constant and tuple-element expressions are
  /// folded into the parent instruction (Section 4.4); everything else —
  /// and everything, when super-instructions are disabled — dispatches.
  void addSlot(SuperInstruction &Super, std::uint32_t Slot,
               const ram::Expression &Expr) {
    NodePtr Node = genExpr(Expr);
    if (Options.SuperInstructions) {
      if (Node->Type == NodeType::Constant) {
        Super.Constants.push_back(
            {Slot, static_cast<ConstantNode &>(*Node).Value});
        return;
      }
      if (Node->Type == NodeType::TupleElement) {
        auto &TE = static_cast<TupleElementNode &>(*Node);
        Super.TupleSources.push_back({Slot, TE.TupleId, TE.Element});
        return;
      }
    }
    Super.Generic.push_back({Slot, std::move(Node)});
  }

  //===--------------------------------------------------------------------===
  // Operations
  //===--------------------------------------------------------------------===

  NodeType opType(SpecOp Op, RelationWrapper *Rel) {
    // Legacy and counted relations have no specialized instructions; they
    // are always driven through the virtual adapter.
    if (!Options.Specialize || Rel->getKind() == RelKind::Legacy ||
        Rel->getKind() == RelKind::Counts)
      return genericType(Op);
    return specializedType(Op, Rel->getKind(), Rel->getArity());
  }

  NodePtr genOp(const ram::Operation &Op) {
    using K = ram::Operation::Kind;
    switch (Op.getKind()) {
    case K::Scan: {
      const auto &S = static_cast<const ram::Scan &>(Op);
      // Only the query root may carry the parallel marker; consume it
      // before generating the nested subtree.
      std::optional<std::size_t> Par = std::exchange(ParallelRootIds, {});
      RelationWrapper *Rel = wrapper(S.getRelation());
      const Order &Ord = Rel->getOrder(0);
      bool Decode = false;
      if (Rel->getKind() == RelKind::Btree ||
          Rel->getKind() == RelKind::Brie ||
          Rel->getKind() == RelKind::Art) {
        if (Options.StaticReordering) {
          if (!Ord.isIdentity())
            RewriteOrders[S.getTupleId()] = &Ord;
        } else {
          Decode = !Ord.isIdentity();
        }
      }
      NodePtr Nested = genOp(S.getNested());
      RewriteOrders.erase(S.getTupleId());
      if (Par)
        return std::make_unique<ParallelScanNode>(
            &Op, Rel, S.getTupleId(), /*IndexPos=*/0, Decode,
            std::move(Nested), *Par);
      return std::make_unique<ScanNode>(opType(SpecOp::Scan, Rel), &Op, Rel,
                                        S.getTupleId(), /*IndexPos=*/0,
                                        Decode, std::move(Nested));
    }
    case K::IndexScan: {
      const auto &S = static_cast<const ram::IndexScan &>(Op);
      std::optional<std::size_t> Par = std::exchange(ParallelRootIds, {});
      RelationWrapper *Rel = wrapper(S.getRelation());
      SearchPlan Plan = planSearch(Rel, S.getPattern());
      SuperInstruction Pattern = buildPatternSuper(Plan, S.getPattern());
      bool Decode = false;
      if (Rel->getKind() == RelKind::Btree ||
          Rel->getKind() == RelKind::Brie ||
          Rel->getKind() == RelKind::Art) {
        if (Options.StaticReordering) {
          if (!Plan.Ord->isIdentity())
            RewriteOrders[S.getTupleId()] = Plan.Ord;
        } else {
          Decode = !Plan.Ord->isIdentity();
        }
      }
      NodePtr Nested = genOp(S.getNested());
      RewriteOrders.erase(S.getTupleId());
      if (Par)
        return std::make_unique<ParallelIndexScanNode>(
            &Op, Rel, S.getTupleId(), std::move(Pattern), Plan.IndexPos,
            Plan.PrefixLen, Plan.Mask, Plan.NeedsEncode, Decode,
            std::move(Nested), *Par);
      return std::make_unique<IndexScanNode>(
          opType(SpecOp::IndexScan, Rel), &Op, Rel, S.getTupleId(),
          std::move(Pattern), Plan.IndexPos, Plan.PrefixLen, Plan.Mask,
          Plan.NeedsEncode, Decode, std::move(Nested));
    }
    case K::Filter: {
      const auto &F = static_cast<const ram::Filter &>(Op);
      NodePtr Cond = genCond(F.getCondition());
      return std::make_unique<FilterNode>(&Op, std::move(Cond),
                                          genOp(F.getNested()));
    }
    case K::Project: {
      const auto &P = static_cast<const ram::Project &>(Op);
      RelationWrapper *Rel = wrapper(P.getRelation());
      return std::make_unique<ProjectNode>(opType(SpecOp::Project, Rel),
                                           &Op, Rel,
                                           buildValuesSuper(P.getValues()));
    }
    case K::Aggregate: {
      const auto &A = static_cast<const ram::Aggregate &>(Op);
      RelationWrapper *Rel = wrapper(A.getRelation());
      SearchPlan Plan = planSearch(Rel, A.getPattern());
      SuperInstruction Pattern = buildPatternSuper(Plan, A.getPattern());
      bool Decode = false;
      if (Rel->getKind() == RelKind::Btree ||
          Rel->getKind() == RelKind::Brie ||
          Rel->getKind() == RelKind::Art) {
        if (Options.StaticReordering) {
          if (!Plan.Ord->isIdentity())
            RewriteOrders[A.getTupleId()] = Plan.Ord;
        } else {
          Decode = !Plan.Ord->isIdentity();
        }
      }
      // Target and condition see the scanned (possibly encoded) tuple.
      NodePtr Target =
          A.getTargetExpr() ? genExpr(*A.getTargetExpr()) : nullptr;
      NodePtr Cond = A.getCondition() ? genCond(*A.getCondition()) : nullptr;
      // The nested operation sees the one-cell result instead.
      RewriteOrders.erase(A.getTupleId());
      NodePtr Nested = genOp(A.getNested());
      return std::make_unique<AggregateNode>(
          opType(SpecOp::Aggregate, Rel), &Op, Rel, A.getFunc(),
          A.getTupleId(), std::move(Pattern), Plan.IndexPos, Plan.PrefixLen,
          Plan.Mask, Plan.NeedsEncode, Decode, std::move(Target),
          std::move(Cond), std::move(Nested));
    }
    }
    unreachable("unknown operation kind");
  }

  //===--------------------------------------------------------------------===
  // Conditions
  //===--------------------------------------------------------------------===

  NodePtr genCond(const ram::Condition &Cond) {
    if (Options.FuseConditions)
      if (NodePtr Fused = tryFuse(Cond))
        return Fused;
    using K = ram::Condition::Kind;
    switch (Cond.getKind()) {
    case K::True:
      return std::make_unique<TrueNode>(&Cond);
    case K::Conjunction: {
      // When the conjunction as a whole is not fusible (e.g. it carries an
      // existence check), recursing still fuses each maximal fusible
      // subtree on its own.
      const auto &C = static_cast<const ram::Conjunction &>(Cond);
      return std::make_unique<ConjunctionNode>(&Cond, genCond(C.getLhs()),
                                               genCond(C.getRhs()));
    }
    case K::Negation: {
      const auto &N = static_cast<const ram::Negation &>(Cond);
      return std::make_unique<NegationNode>(&Cond, genCond(N.getInner()));
    }
    case K::Constraint: {
      const auto &C = static_cast<const ram::Constraint &>(Cond);
      return std::make_unique<ConstraintNode>(
          &Cond, C.getOp(), genExpr(C.getLhs()), genExpr(C.getRhs()));
    }
    case K::EmptinessCheck: {
      const auto &E = static_cast<const ram::EmptinessCheck &>(Cond);
      return std::make_unique<EmptinessCheckNode>(&Cond,
                                                  wrapper(E.getRelation()));
    }
    case K::ExistenceCheck: {
      const auto &E = static_cast<const ram::ExistenceCheck &>(Cond);
      RelationWrapper *Rel = wrapper(E.getRelation());
      SearchPlan Plan = planSearch(Rel, E.getPattern());
      return std::make_unique<ExistenceNode>(
          opType(SpecOp::Existence, Rel), &Cond, Rel,
          buildPatternSuper(Plan, E.getPattern()), Plan.IndexPos,
          Plan.PrefixLen, Plan.Mask, Plan.NeedsEncode);
    }
    }
    unreachable("unknown condition kind");
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  NodePtr genExpr(const ram::Expression &Expr) {
    using K = ram::Expression::Kind;
    switch (Expr.getKind()) {
    case K::Constant:
      return std::make_unique<ConstantNode>(
          &Expr, static_cast<const ram::Constant &>(Expr).getValue());
    case K::TupleElement: {
      const auto &TE = static_cast<const ram::TupleElement &>(Expr);
      std::uint32_t Element = TE.getElement();
      auto It = RewriteOrders.find(TE.getTupleId());
      if (It != RewriteOrders.end())
        Element = It->second->position(Element);
      return std::make_unique<TupleElementNode>(&Expr, TE.getTupleId(),
                                                Element);
    }
    case K::Intrinsic: {
      const auto &Op = static_cast<const ram::Intrinsic &>(Expr);
      std::vector<NodePtr> Args;
      for (const auto &Arg : Op.getArgs())
        Args.push_back(genExpr(*Arg));
      return std::make_unique<IntrinsicNode>(&Expr, Op.getOp(),
                                             std::move(Args));
    }
    case K::AutoIncrement:
      return std::make_unique<AutoIncrementNode>(&Expr);
    case K::Undef:
      unreachable("Undef must not be evaluated");
    }
    unreachable("unknown expression kind");
  }

  //===--------------------------------------------------------------------===
  // Condition fusion (Section 5.2)
  //===--------------------------------------------------------------------===

  /// Attempts to compile \p Cond into a single fused-condition
  /// micro-program. Returns null if the tree contains non-fusible nodes
  /// (relation accesses, strings, floats) or is too small to profit.
  /// Sentinel jump target patched to the program end after fusion.
  static constexpr std::uint32_t PendingJumpTarget = 0xFFFFFFFF;

  NodePtr tryFuse(const ram::Condition &Cond) {
    std::vector<MicroInst> Program;
    std::size_t SavedDispatches = 0;
    if (!fuseCond(Cond, Program, SavedDispatches))
      return nullptr;
    if (SavedDispatches < 3)
      return nullptr;
    // Patch the short-circuit jumps to the end of the program.
    for (MicroInst &Inst : Program)
      if (Inst.Kind == MicroInst::Op::JmpIfFalse &&
          Inst.B == PendingJumpTarget)
        Inst.B = static_cast<std::uint32_t>(Program.size());
    // Compute the maximum stack depth.
    std::size_t Depth = 0, MaxDepth = 0;
    for (const MicroInst &Inst : Program) {
      using Op = MicroInst::Op;
      if (Inst.Kind == Op::PushConst || Inst.Kind == Op::PushElem)
        ++Depth;
      else if (Inst.Kind == Op::Pop)
        --Depth;
      else if (Inst.Kind != Op::Neg && Inst.Kind != Op::BNot &&
               Inst.Kind != Op::LNot && Inst.Kind != Op::JmpIfFalse)
        --Depth;
      MaxDepth = std::max(MaxDepth, Depth);
    }
    if (MaxDepth > 32)
      return nullptr;
    return std::make_unique<FusedConditionNode>(&Cond, std::move(Program),
                                                MaxDepth);
  }

  bool fuseCond(const ram::Condition &Cond, std::vector<MicroInst> &Program,
                std::size_t &Saved) {
    using K = ram::Condition::Kind;
    switch (Cond.getKind()) {
    case K::Conjunction: {
      // Short-circuit encoding: on a false left operand, jump over the
      // right operand (the false stays as the result). Jump targets are
      // patched to the end of the whole program by tryFuse.
      const auto &C = static_cast<const ram::Conjunction &>(Cond);
      if (!fuseCond(C.getLhs(), Program, Saved))
        return false;
      Program.push_back({MicroInst::Op::JmpIfFalse, 0, PendingJumpTarget});
      Program.push_back({MicroInst::Op::Pop, 0, 0});
      if (!fuseCond(C.getRhs(), Program, Saved))
        return false;
      ++Saved;
      return true;
    }
    case K::Constraint: {
      const auto &C = static_cast<const ram::Constraint &>(Cond);
      MicroInst::Op CmpOp;
      using Op = MicroInst::Op;
      switch (C.getOp()) {
      case ram::CmpOp::Eq:
        CmpOp = Op::Eq;
        break;
      case ram::CmpOp::Ne:
        CmpOp = Op::Ne;
        break;
      case ram::CmpOp::Lt:
        CmpOp = Op::Lt;
        break;
      case ram::CmpOp::Le:
        CmpOp = Op::Le;
        break;
      case ram::CmpOp::Gt:
        CmpOp = Op::Gt;
        break;
      case ram::CmpOp::Ge:
        CmpOp = Op::Ge;
        break;
      case ram::CmpOp::ULt:
        CmpOp = Op::ULt;
        break;
      case ram::CmpOp::ULe:
        CmpOp = Op::ULe;
        break;
      case ram::CmpOp::UGt:
        CmpOp = Op::UGt;
        break;
      case ram::CmpOp::UGe:
        CmpOp = Op::UGe;
        break;
      default:
        return false; // float comparisons stay on the generic path
      }
      if (!fuseExpr(C.getLhs(), Program, Saved) ||
          !fuseExpr(C.getRhs(), Program, Saved))
        return false;
      Program.push_back({CmpOp, 0, 0});
      ++Saved;
      return true;
    }
    default:
      return false;
    }
  }

  bool fuseExpr(const ram::Expression &Expr, std::vector<MicroInst> &Program,
                std::size_t &Saved) {
    using K = ram::Expression::Kind;
    using Op = MicroInst::Op;
    switch (Expr.getKind()) {
    case K::Constant:
      Program.push_back(
          {Op::PushConst,
           static_cast<const ram::Constant &>(Expr).getValue(), 0});
      ++Saved;
      return true;
    case K::TupleElement: {
      const auto &TE = static_cast<const ram::TupleElement &>(Expr);
      std::uint32_t Element = TE.getElement();
      auto It = RewriteOrders.find(TE.getTupleId());
      if (It != RewriteOrders.end())
        Element = It->second->position(Element);
      Program.push_back({Op::PushElem,
                         static_cast<RamDomain>(TE.getTupleId()), Element});
      ++Saved;
      return true;
    }
    case K::Intrinsic: {
      const auto &In = static_cast<const ram::Intrinsic &>(Expr);
      Op MicroOp;
      bool Unary = false;
      switch (In.getOp()) {
      case ram::IntrinsicOp::Neg:
        MicroOp = Op::Neg;
        Unary = true;
        break;
      case ram::IntrinsicOp::BNot:
        MicroOp = Op::BNot;
        Unary = true;
        break;
      case ram::IntrinsicOp::LNot:
        MicroOp = Op::LNot;
        Unary = true;
        break;
      case ram::IntrinsicOp::Add:
        MicroOp = Op::Add;
        break;
      case ram::IntrinsicOp::Sub:
        MicroOp = Op::Sub;
        break;
      case ram::IntrinsicOp::Mul:
        MicroOp = Op::Mul;
        break;
      case ram::IntrinsicOp::Div:
        MicroOp = Op::Div;
        break;
      case ram::IntrinsicOp::Mod:
        MicroOp = Op::Mod;
        break;
      case ram::IntrinsicOp::Band:
        MicroOp = Op::Band;
        break;
      case ram::IntrinsicOp::Bor:
        MicroOp = Op::Bor;
        break;
      case ram::IntrinsicOp::Bxor:
        MicroOp = Op::Bxor;
        break;
      case ram::IntrinsicOp::Bshl:
        MicroOp = Op::Bshl;
        break;
      case ram::IntrinsicOp::Bshr:
        MicroOp = Op::Bshr;
        break;
      case ram::IntrinsicOp::UBshr:
        MicroOp = Op::UBshr;
        break;
      default:
        return false;
      }
      if (In.getArgs().size() != (Unary ? 1U : 2U))
        return false;
      for (const auto &Arg : In.getArgs())
        if (!fuseExpr(*Arg, Program, Saved))
          return false;
      Program.push_back({MicroOp, 0, 0});
      ++Saved;
      return true;
    }
    default:
      return false;
    }
  }

  //===--------------------------------------------------------------------===
  // Rule grouping (independent rules as concurrent jobs)
  //===--------------------------------------------------------------------===

  /// The rule body underneath a sequence statement, when the statement is
  /// a bare Query or a LogTimer wrapping one — the only two shapes rule
  /// grouping considers. Null for everything else (Clear, Swap, Merge,
  /// Io, Loop, nested Sequence), which terminates a group.
  static const ram::Operation *queryRootOf(const ram::Statement &Stmt) {
    using K = ram::Statement::Kind;
    if (Stmt.getKind() == K::Query)
      return &static_cast<const ram::Query &>(Stmt).getRoot();
    if (Stmt.getKind() == K::LogTimer) {
      const ram::Statement &Body =
          static_cast<const ram::LogTimer &>(Stmt).getBody();
      if (Body.getKind() == K::Query)
        return &static_cast<const ram::Query &>(Body).getRoot();
    }
    return nullptr;
  }

  /// True when rules \p A and \p B may run concurrently: neither writes a
  /// relation the other reads *or* writes. Write-write overlap is excluded
  /// too (unlike the per-scan check in shouldParallelize) so group members
  /// can insert directly into their targets with no merge step. Pointer
  /// identity on the ram::Relation objects, matching shouldParallelize.
  static bool independentRules(const QueryFootprint &A,
                               const QueryFootprint &B) {
    auto Touches = [](const QueryFootprint &F, const ram::Relation *Rel) {
      for (const ram::Relation *R : F.Reads)
        if (R == Rel)
          return true;
      for (const ram::Relation *W : F.Writes)
        if (W == Rel)
          return true;
      return false;
    };
    for (const ram::Relation *W : A.Writes)
      if (Touches(B, W))
        return false;
    for (const ram::Relation *W : B.Writes)
      for (const ram::Relation *R : A.Reads)
        if (W == R)
          return false;
    return true;
  }

  /// Greedily extends a contiguous run of pairwise independent rules
  /// starting at \p Begin; returns the exclusive end. Runs of length one
  /// mean "no group here" and the statement generates normally. Grouping
  /// stays contiguous: reordering across a non-rule statement (Swap,
  /// Clear, ...) could move a rule past a relation mutation it observes.
  std::size_t extendRuleGroup(const std::vector<ram::StmtPtr> &Stmts,
                              std::size_t Begin) {
    const ram::Operation *FirstRoot = queryRootOf(*Stmts[Begin]);
    if (!FirstRoot)
      return Begin + 1;
    std::vector<QueryFootprint> Group;
    Group.emplace_back();
    collectOp(*FirstRoot, Group.back());
    std::size_t End = Begin + 1;
    while (End < Stmts.size()) {
      const ram::Operation *Root = queryRootOf(*Stmts[End]);
      if (!Root)
        break;
      QueryFootprint F;
      collectOp(*Root, F);
      bool Compatible = true;
      for (const QueryFootprint &Member : Group)
        if (!independentRules(F, Member)) {
          Compatible = false;
          break;
        }
      if (!Compatible)
        break;
      Group.push_back(std::move(F));
      ++End;
    }
    return End;
  }

  /// A query's outermost scan may be partitioned when no relation it
  /// writes is also read anywhere in the same query. That is the whole
  /// analysis now:
  ///
  ///  * Expressions are always thread-safe — `$` is an atomic fetch-add
  ///    and the interning functors go through the concurrent SymbolTable.
  ///  * Equivalence relations may be read concurrently (atomic path
  ///    compression, locked cache refresh) and written through the same
  ///    per-worker buffers as every other relation kind: buffered pair
  ///    inserts are merged into the union-find at the barrier.
  ///
  /// The write/read disjointness check is exact per relation *object*, not
  /// per name, which is what admits the semi-naive shape: a recursive rule
  /// writes `new_R` while reading `delta_R` and the full `R` — three
  /// distinct ram::Relation objects — so buffering its inserts until the
  /// barrier is observably identical to direct insertion. A query whose
  /// reads genuinely include a relation it writes (its matches would
  /// depend on its own inserts) stays sequential.
  bool shouldParallelize(const ram::Operation &Root) {
    using K = ram::Operation::Kind;
    // Peel the guard filters the translator wraps around a rule body
    // (e.g. the non-emptiness check): their conditions run once on the
    // main thread, so the first scan underneath is still the query root.
    const ram::Operation *Op = &Root;
    while (Op->getKind() == K::Filter)
      Op = &static_cast<const ram::Filter *>(Op)->getNested();
    if (Op->getKind() != K::Scan && Op->getKind() != K::IndexScan)
      return false;
    QueryFootprint F;
    collectOp(Root, F);
    for (const ram::Relation *W : F.Writes)
      for (const ram::Relation *R : F.Reads)
        if (W == R)
          return false;
    return true;
  }

  RelationWrapper *wrapper(const ram::Relation &Rel) {
    auto It = State.Relations.find(Rel.getName());
    assert(It != State.Relations.end() && "relation was not materialized");
    return It->second.get();
  }

  const translate::IndexSelectionResult &Indexes;
  EngineState &State;
  const GeneratorOptions &Options;
  /// Per-query: tuple ids whose bound tuple is encoded, with the order to
  /// rewrite element accesses through (Section 4.2).
  std::unordered_map<std::uint32_t, const Order *> RewriteOrders;
  /// Set while generating the root operation of a parallelizable query:
  /// holds the query's NumTupleIds for the parallel node. Consumed by the
  /// first Scan / IndexScan so nested scans stay sequential.
  std::optional<std::size_t> ParallelRootIds;
  /// Id of the ParallelSequence group currently being generated (stamped
  /// into RuleMeta::ParGroup by the LogTimer case); -1 outside a group.
  int CurrentParGroup = -1;
  int NextParGroup = 0;
};

} // namespace

NodePtr stird::interp::generateTree(
    const ram::Program &Prog, const translate::IndexSelectionResult &Indexes,
    EngineState &State, const GeneratorOptions &Options) {
  TreeGenerator Gen(Indexes, State, Options);
  return Gen.genStmt(Prog.getMain());
}

NodePtr stird::interp::generateTree(
    const ram::Statement &Root,
    const translate::IndexSelectionResult &Indexes, EngineState &State,
    const GeneratorOptions &Options) {
  TreeGenerator Gen(Indexes, State, Options);
  return Gen.genStmt(Root);
}
