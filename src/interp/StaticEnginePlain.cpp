//===- interp/StaticEnginePlain.cpp - STI without lambda CASE ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The STI executor compiled with plain case bodies — the ablation baseline
/// of the Section 5.5 register-pressure experiment: the compiler reserves
/// callee-saved registers for the heaviest case on every execute() entry.
///
//===----------------------------------------------------------------------===//

#define STIRD_USE_LAMBDA_CASE 0
#define STIRD_EXECUTOR_CLASS StaticExecutorPlain
#include "interp/StaticEngineImpl.inc"
#undef STIRD_EXECUTOR_CLASS
#undef STIRD_USE_LAMBDA_CASE

namespace stird::interp {

std::unique_ptr<ExecutorBase> createStaticExecutorPlain(EngineState &State) {
  return std::make_unique<StaticExecutorPlain>(State);
}

} // namespace stird::interp
