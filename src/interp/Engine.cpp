//===- interp/Engine.cpp - Interpreter engine facade -------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Engine.h"

#include "interp/Generator.h"
#include "interp/NodePrinter.h"
#include "interp/Parallel.h"
#include "interp/Scheduler.h"
#include "obs/Trace.h"
#include "util/Csv.h"
#include "util/MiscUtil.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace stird;
using namespace stird::interp;

EngineState::EngineState(SymbolTable &Symbols) : Symbols(Symbols) {}
EngineState::~EngineState() = default;

void EngineState::executeIo(const IoNode &Node) {
  const ram::Relation &Decl = Node.Rel->getDecl();
  switch (Node.Direction) {
  case ram::Io::Direction::Load: {
    if (SuppressIo)
      return;
    std::string Path = Decl.getInputPath().empty()
                           ? Decl.getName() + ".facts"
                           : Decl.getInputPath();
    Path = FactDir + "/" + Path;
    // A missing file is still fatal (the program demanded the input);
    // malformed rows are skipped and reported via IoErrors.
    std::ifstream In(Path);
    if (!In)
      fatal("cannot open fact file '" + Path + "'");
    for (const DynTuple &Tuple :
         readFactStream(In, Decl.getColumnTypes(), Symbols, &IoErrors, Path))
      Node.Rel->insert(Tuple.data());
    return;
  }
  case ram::Io::Direction::Store: {
    if (SuppressIo)
      return;
    std::string Path = Decl.getOutputPath().empty()
                           ? Decl.getName() + ".csv"
                           : Decl.getOutputPath();
    Path = OutputDir + "/" + Path;
    std::vector<DynTuple> Tuples;
    Node.Rel->forEach([&](const RamDomain *Tuple) {
      Tuples.emplace_back(Tuple, Tuple + Decl.getArity());
    });
    std::sort(Tuples.begin(), Tuples.end());
    writeFactFile(Path, Decl.getColumnTypes(), Symbols, Tuples);
    return;
  }
  case ram::Io::Direction::PrintSize: {
    PrintSizes.emplace_back(Decl.getName(), Node.Rel->size());
    if (EchoPrintSize)
      std::printf("%s\t%zu\n", Decl.getName().c_str(), Node.Rel->size());
    return;
  }
  }
  unreachable("unknown io direction");
}

Engine::Engine(const ram::Program &Prog,
               const translate::IndexSelectionResult &Indexes,
               SymbolTable &Symbols, EngineOptions Options)
    : Prog(Prog), Indexes(Indexes), Options(Options), State(Symbols) {
  State.FactDir = Options.FactDir;
  State.OutputDir = Options.OutputDir;
  State.EchoPrintSize = Options.EchoPrintSize;
  State.SuppressIo = Options.SuppressIo;
  State.NumThreads = Options.NumThreads > 0 ? Options.NumThreads : 1;
  if (Options.MorselSize > 0)
    State.MorselSize = Options.MorselSize;
  if (State.NumThreads > 1) {
    // Adopt the program-shared scheduler when its pool matches -jN, else
    // own a private one (engines constructed directly, tests).
    if (Options.Sched && Options.Sched->numThreads() == State.NumThreads)
      State.Sched = Options.Sched;
    else
      State.Sched = std::make_shared<Scheduler>(State.NumThreads);
  }
  if (Options.TheBackend == Backend::Legacy)
    State.StreamBufferCapacity = 1;

  const bool Legacy = Options.TheBackend == Backend::Legacy;
  for (const auto &Rel : Prog.getRelations()) {
    std::vector<Order> Orders;
    for (const auto &Columns : Rel->getOrders())
      Orders.push_back(Order(Columns));
    // The legacy interpreter's weakness is the runtime comparator of its
    // B-trees; equivalence relations keep their union-find structure (as
    // in historical Soufflé), since a plain B-tree would lose the closure
    // semantics.
    const bool UseLegacy =
        Legacy && Rel->getStructure() != ram::StructureKind::Eqrel;
    State.Relations.emplace(
        Rel->getName(), createRelation(*Rel, std::move(Orders), UseLegacy));
  }

  // Observability: assign dense stats ids in declaration order (stable
  // across runs and engines for the same RAM program) and size the engine
  // counter block to match.
  State.CollectStats = Options.CollectStats;
  for (const auto &Rel : Prog.getRelations()) {
    RelationWrapper *Wrapper = State.Relations.at(Rel->getName()).get();
    Wrapper->setStatsId(State.StatsRelations.size());
    State.StatsRelations.push_back(Wrapper);
  }
  State.Stats.resize(State.StatsRelations.size());
  if (Options.EnableTrace) {
    TraceRec = std::make_unique<obs::TraceRecorder>();
    State.Trace = TraceRec.get();
  }
}

Engine::~Engine() = default;

/// Generation options implied by the configured backend.
static GeneratorOptions generatorOptions(const EngineOptions &Options) {
  GeneratorOptions Gen;
  Gen.SuperInstructions = Options.SuperInstructions;
  Gen.StaticReordering = Options.StaticReordering;
  Gen.FuseConditions = Options.FuseConditions;
  Gen.NumThreads = Options.NumThreads > 0 ? Options.NumThreads : 1;
  switch (Options.TheBackend) {
  case Backend::StaticLambda:
  case Backend::StaticPlain:
    Gen.Specialize = true;
    break;
  case Backend::DynamicAdapter:
    Gen.Specialize = false;
    break;
  case Backend::Legacy:
    // The legacy interpreter predates every STI optimization.
    Gen.Specialize = false;
    Gen.SuperInstructions = false;
    Gen.StaticReordering = false;
    Gen.FuseConditions = false;
    break;
  }
  return Gen;
}

std::string Engine::dumpTree() {
  NodePtr Tree = generateTree(Prog, Indexes, State, generatorOptions(Options));
  return printTree(*Tree);
}

ExecutorBase &Engine::ensureExecutor() {
  if (Executor)
    return *Executor;
  switch (Options.TheBackend) {
  case Backend::StaticLambda:
    Executor = createStaticExecutorLambda(State);
    break;
  case Backend::StaticPlain:
    Executor = createStaticExecutorPlain(State);
    break;
  case Backend::DynamicAdapter:
  case Backend::Legacy:
    Executor = createDynamicExecutor(State);
    break;
  }
  return *Executor;
}

void Engine::run() {
  // Interpreter-tree generation counts as execution time, exactly as in
  // the paper's measurements (it explains the specrand outlier).
  if (State.Trace)
    State.Trace->begin("generate tree");
  Root = generateTree(Prog, Indexes, State, generatorOptions(Options));
  if (State.Trace)
    State.Trace->end();

  ExecutorBase &Exec = ensureExecutor();
  if (State.Trace)
    State.Trace->begin("execute");
  Exec.run(*Root);
  if (State.Trace)
    State.Trace->end();

  // Final sizes are also cardinality peaks (Clear/Swap record the peaks of
  // relations that shrink mid-run).
  if (State.CollectStats)
    for (std::size_t I = 0; I < State.StatsRelations.size(); ++I)
      State.Stats[I].notePeak(State.StatsRelations[I]->size());
}

void Engine::runUpdate() {
  assert(Prog.hasUpdate() &&
         "program was translated without an update statement");
  // The update tree is generated once, on the first batch, and reused for
  // every subsequent one — the resident-engine counterpart of the one-shot
  // pipeline's generate-then-execute.
  if (!UpdateRoot)
    UpdateRoot = generateTree(Prog.getUpdate(), Indexes, State,
                              generatorOptions(Options));
  ExecutorBase &Exec = ensureExecutor();
  if (State.Trace)
    State.Trace->begin("update");
  Exec.run(*UpdateRoot);
  if (State.Trace)
    State.Trace->end();
  if (State.CollectStats)
    for (std::size_t I = 0; I < State.StatsRelations.size(); ++I)
      State.Stats[I].notePeak(State.StatsRelations[I]->size());
}

ExecutorBase &Engine::ensureMaintExecutor() {
  switch (Options.TheBackend) {
  case Backend::DynamicAdapter:
  case Backend::Legacy:
    // Already the dynamic-adapter executor; share it (and its stream
    // buffer sizing).
    return ensureExecutor();
  case Backend::StaticLambda:
  case Backend::StaticPlain:
    break;
  }
  if (!MaintExecutor)
    MaintExecutor = createDynamicExecutor(State);
  return *MaintExecutor;
}

void Engine::runStatement(const ram::Statement &Stmt) {
  NodePtr &Tree = StmtTrees[&Stmt];
  if (!Tree) {
    // Force the de-specialized opcodes: the dynamic-adapter executor is
    // the only one that carries the generic operations and the
    // maintenance statements, and it drives any relation kind — including
    // the specialized structures of a static backend — through the
    // virtual RelationWrapper interface.
    GeneratorOptions Gen = generatorOptions(Options);
    Gen.Specialize = false;
    Tree = generateTree(Stmt, Indexes, State, Gen);
  }
  ExecutorBase &Exec = ensureMaintExecutor();
  Exec.run(*Tree);
  if (State.CollectStats)
    for (std::size_t I = 0; I < State.StatsRelations.size(); ++I)
      State.Stats[I].notePeak(State.StatsRelations[I]->size());
}

RelationWrapper *Engine::getRelation(const std::string &Name) {
  auto It = State.Relations.find(Name);
  return It == State.Relations.end() ? nullptr : It->second.get();
}

const RelationWrapper *Engine::getRelation(const std::string &Name) const {
  auto It = State.Relations.find(Name);
  return It == State.Relations.end() ? nullptr : It->second.get();
}

void Engine::insertTuples(const std::string &Name,
                          const std::vector<DynTuple> &Tuples) {
  RelationWrapper *Rel = getRelation(Name);
  if (!Rel)
    fatal("unknown relation '" + Name + "'");
  for (const DynTuple &Tuple : Tuples) {
    assert(Tuple.size() == Rel->getArity() && "tuple arity mismatch");
    Rel->insert(Tuple.data());
  }
}

std::vector<DynTuple> Engine::getTuples(const std::string &Name) const {
  const RelationWrapper *Rel = getRelation(Name);
  if (!Rel)
    fatal("unknown relation '" + Name + "'");
  std::vector<DynTuple> Tuples;
  Rel->forEach([&](const RamDomain *Tuple) {
    Tuples.emplace_back(Tuple, Tuple + Rel->getArity());
  });
  std::sort(Tuples.begin(), Tuples.end());
  return Tuples;
}
