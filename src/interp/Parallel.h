//===- interp/Parallel.h - Parallel-section insert buffers ------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuple buffers of the parallel semi-naive evaluator. The threading
/// runtime itself lives in Scheduler.h (the morsel work-stealing job
/// system); this file keeps the per-morsel insert buffers whose contents
/// the submitting thread merges into the target relations at the job
/// barrier (i.e. before the fixpoint loop's SWAP ever observes them).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_PARALLEL_H
#define STIRD_INTERP_PARALLEL_H

#include "util/RamTypes.h"

#include <cstddef>
#include <vector>

namespace stird::obs {
struct RelationStats;
} // namespace stird::obs

namespace stird::interp {

class RelationWrapper;

/// One morsel's pending inserts, grouped by target relation. Morsel tasks
/// fill their buffer race-free during the parallel section; the submitting
/// thread flushes all buffers into the (deduplicating) relations at the
/// barrier, which is observably identical to direct insertion because
/// parallelized queries never read the relations they write. Equivalence
/// relations take the same path: buffered pairs are merged into the
/// union-find at the barrier.
class TupleBuffer {
public:
  /// Appends a source-order tuple destined for \p Rel.
  void add(RelationWrapper &Rel, const RamDomain *Tuple);

  /// Inserts every buffered tuple into its relation and empties the
  /// buffer. Barrier-side (single-threaded) only. Within one buffer,
  /// tuples flush in the order the morsel produced them. When \p Stats is
  /// non-null (the engine's StatsId-indexed counter block), inserts that
  /// grow a relation bump its InsertsNew counter — set semantics make that
  /// growth independent of the flush order, so the counts match -j1
  /// exactly.
  void flush(obs::RelationStats *Stats = nullptr);

  /// Flushes \p Buffers in ascending morsel index — the morsels partition
  /// the scan order, so this merge order equals the sequential scan's
  /// insert order regardless of which thread ran (or stole) which morsel.
  /// Relation contents (and thus tuple iteration and output-file order)
  /// are therefore identical across repeated runs at any -jN and any
  /// morsel size. The relations themselves are sets, but a fixed merge
  /// order also pins down any insertion-order dependent internals (e.g.
  /// union-find representatives).
  static void flushAll(std::vector<TupleBuffer> &Buffers,
                       obs::RelationStats *Stats = nullptr);

private:
  struct PerRelation {
    RelationWrapper *Rel;
    std::size_t Arity;
    std::vector<RamDomain> Cells;
  };
  /// Linear scan: a query projects into one or two relations.
  std::vector<PerRelation> Buffers;
};

} // namespace stird::interp

#endif // STIRD_INTERP_PARALLEL_H
