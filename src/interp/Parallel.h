//===- interp/Parallel.h - Worker pool and insert buffers -------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threading runtime of the parallel semi-naive evaluator: a small
/// persistent worker pool that executes the partitions of a ParallelScan,
/// and the per-worker tuple buffers whose contents the main thread merges
/// into the target relations at the end-of-scan barrier (i.e. before the
/// fixpoint loop's SWAP ever observes them).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_PARALLEL_H
#define STIRD_INTERP_PARALLEL_H

#include "util/RamTypes.h"

#include <condition_variable>

namespace stird::obs {
struct RelationStats;
} // namespace stird::obs
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stird::interp {

class RelationWrapper;

/// A persistent pool of NumThreads - 1 worker threads plus the calling
/// thread. run() executes Fn over task indices claimed dynamically by all
/// participants and returns only after the last task finished — the merge
/// barrier of the parallel scan.
class ThreadPool {
public:
  explicit ThreadPool(std::size_t NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  std::size_t numThreads() const { return Workers.size() + 1; }

  /// Runs Fn(I) for every I in [0, NumTasks). The caller participates, so
  /// the pool makes progress even with zero workers.
  void run(std::size_t NumTasks, const std::function<void(std::size_t)> &Fn);

private:
  void workerLoop();
  /// Claims and runs tasks of the current job until none remain.
  void drainTasks();

  std::mutex M;
  std::condition_variable WakeCV;
  std::condition_variable DoneCV;
  std::vector<std::thread> Workers;
  const std::function<void(std::size_t)> *Job = nullptr;
  std::size_t Total = 0;
  std::size_t Next = 0;
  std::size_t Finished = 0;
  std::uint64_t Generation = 0;
  bool Stop = false;
};

/// One worker's pending inserts, grouped by target relation. Workers fill
/// their buffer race-free during the parallel section; the main thread
/// flushes all buffers into the (deduplicating) relations at the barrier,
/// which is observably identical to direct insertion because parallelized
/// queries never read the relations they write. Equivalence relations
/// take the same path: buffered pairs are merged into the union-find at
/// the barrier.
class TupleBuffer {
public:
  /// Appends a source-order tuple destined for \p Rel.
  void add(RelationWrapper &Rel, const RamDomain *Tuple);

  /// Inserts every buffered tuple into its relation and empties the
  /// buffer. Main thread only. Within one buffer, tuples flush in the
  /// order the worker produced them. When \p Stats is non-null (the
  /// engine's StatsId-indexed counter block), inserts that grow a relation
  /// bump its InsertsNew counter — set semantics make that growth
  /// independent of the flush order, so the counts match -j1 exactly.
  void flush(obs::RelationStats *Stats = nullptr);

  /// Flushes \p Buffers in ascending worker-partition index — a fixed,
  /// thread-interleaving-independent order, so the merged relation
  /// contents (and thus tuple iteration and output-file order) are
  /// identical across repeated runs at any -jN. The relations themselves
  /// are sets, but a fixed merge order also pins down any insertion-order
  /// dependent internals (e.g. union-find representatives).
  static void flushAll(std::vector<TupleBuffer> &Buffers,
                       obs::RelationStats *Stats = nullptr);

private:
  struct PerRelation {
    RelationWrapper *Rel;
    std::size_t Arity;
    std::vector<RamDomain> Cells;
  };
  /// Linear scan: a query projects into one or two relations.
  std::vector<PerRelation> Buffers;
};

} // namespace stird::interp

#endif // STIRD_INTERP_PARALLEL_H
