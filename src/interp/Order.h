//===- interp/Order.h - Column orders for de-specialized indexes -*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The de-specialization of lexicographic orders (Section 3, step 1): every
/// index stores tuples in the *natural* order of its cells, and any other
/// order is realized by permuting tuples on insertion. An Order maps index
/// positions to source columns; encode() applies it, decode() inverts it
/// (Fig 6b of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_ORDER_H
#define STIRD_INTERP_ORDER_H

#include "util/RamTypes.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace stird::interp {

/// A column permutation: Columns[J] is the source column stored at index
/// position J.
class Order {
public:
  Order() = default;
  explicit Order(std::vector<std::uint32_t> Columns)
      : Columns(std::move(Columns)) {
    Inverse.resize(this->Columns.size());
    for (std::uint32_t J = 0; J < this->Columns.size(); ++J) {
      assert(this->Columns[J] < this->Columns.size() &&
             "order entry out of range");
      Inverse[this->Columns[J]] = J;
    }
  }

  /// Identity order of the given width.
  static Order identity(std::size_t Arity) {
    std::vector<std::uint32_t> Columns(Arity);
    for (std::size_t I = 0; I < Arity; ++I)
      Columns[I] = static_cast<std::uint32_t>(I);
    return Order(std::move(Columns));
  }

  std::size_t size() const { return Columns.size(); }

  /// Source column stored at index position \p J.
  std::uint32_t column(std::size_t J) const { return Columns[J]; }
  /// Index position holding source column \p I.
  std::uint32_t position(std::size_t I) const { return Inverse[I]; }

  const std::vector<std::uint32_t> &columns() const { return Columns; }

  bool isIdentity() const {
    for (std::uint32_t J = 0; J < Columns.size(); ++J)
      if (Columns[J] != J)
        return false;
    return true;
  }

  /// Permutes a source-order tuple into index order.
  void encode(const RamDomain *Source, RamDomain *Encoded) const {
    for (std::size_t J = 0; J < Columns.size(); ++J)
      Encoded[J] = Source[Columns[J]];
  }

  /// Permutes an index-order tuple back into source order.
  void decode(const RamDomain *Encoded, RamDomain *Source) const {
    for (std::size_t J = 0; J < Columns.size(); ++J)
      Source[Columns[J]] = Encoded[J];
  }

  bool operator==(const Order &Other) const {
    return Columns == Other.Columns;
  }

private:
  std::vector<std::uint32_t> Columns;
  std::vector<std::uint32_t> Inverse;
};

} // namespace stird::interp

#endif // STIRD_INTERP_ORDER_H
