//===- interp/StaticEngineLambda.cpp - STI with lambda CASE ------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The STI executor with the Section 4.3 register-pressure optimization:
/// every case body is wrapped in an immediately invoked local lambda
/// (Fig 12), so execute()'s prologue saves no callee-saved registers for
/// the lightweight instructions. This is the default production executor.
///
//===----------------------------------------------------------------------===//

#define STIRD_USE_LAMBDA_CASE 1
#define STIRD_EXECUTOR_CLASS StaticExecutorLambda
#include "interp/StaticEngineImpl.inc"
#undef STIRD_EXECUTOR_CLASS
#undef STIRD_USE_LAMBDA_CASE

namespace stird::interp {

std::unique_ptr<ExecutorBase> createStaticExecutorLambda(EngineState &State) {
  return std::make_unique<StaticExecutorLambda>(State);
}

} // namespace stird::interp
