//===- interp/Context.h - Interpreter runtime environment -------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime context of one query evaluation: a register file of tuple
/// pointers indexed by tuple id (Fig 5's second execute() argument). Scans
/// install a pointer to the current tuple before running their nested
/// operation; expressions read elements through it.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_CONTEXT_H
#define STIRD_INTERP_CONTEXT_H

#include "util/RamTypes.h"

#include <cassert>
#include <vector>

namespace stird::interp {

/// Tuple registers of a query invocation.
class Context {
public:
  explicit Context(std::size_t NumTupleIds) : Tuples(NumTupleIds, nullptr) {}

  const RamDomain *&operator[](std::size_t TupleId) {
    assert(TupleId < Tuples.size() && "tuple id out of range");
    return Tuples[TupleId];
  }
  const RamDomain *operator[](std::size_t TupleId) const {
    assert(TupleId < Tuples.size() && "tuple id out of range");
    return Tuples[TupleId];
  }

private:
  std::vector<const RamDomain *> Tuples;
};

} // namespace stird::interp

#endif // STIRD_INTERP_CONTEXT_H
