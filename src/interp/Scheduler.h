//===- interp/Scheduler.h - Morsel work-stealing scheduler ------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The job system of the parallel evaluator: one persistent pool of worker
/// threads, each owning a Chase–Lev work-stealing deque of task entries.
/// Parallel scans cut their partition streams into fixed-size morsels and
/// submit them as one job; independent rules of a stratum are submitted the
/// same way. A thread that drains its own deque steals from a sibling, so
/// a skewed morsel no longer idles every other core the way the old
/// barrier pool's static 1:1 partition assignment did.
///
/// Determinism contract: the scheduler only decides *where* a task runs,
/// never what it observes. Tasks write into task-indexed private buffers
/// and counter blocks; the submitter merges them in ascending task index
/// at the job barrier, so results and obs counters are invariant under
/// thread count, morsel size and steal interleavings.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INTERP_SCHEDULER_H
#define STIRD_INTERP_SCHEDULER_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stird::interp {

/// A Chase–Lev work-stealing deque over 64-bit entries (Chase & Lev,
/// SPAA'05, with the C11 memory orderings of Lê et al., PPoPP'13 — spelled
/// with per-operation seq_cst/acquire instead of standalone fences, which
/// ThreadSanitizer models precisely). The owner pushes and pops at the
/// bottom; thieves steal from the top. Every pushed entry is returned by
/// exactly one pop() or steal().
class WorkStealingDeque {
public:
  explicit WorkStealingDeque(std::size_t CapacityHint = 64);
  ~WorkStealingDeque();

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  /// Appends \p Entry at the bottom. Owner thread only.
  void push(std::uint64_t Entry);

  /// Removes the most recently pushed entry (LIFO — keeps a worker on the
  /// morsels of the job it is already executing). Owner thread only.
  bool pop(std::uint64_t &Entry);

  /// Removes the oldest entry (FIFO — thieves take from the opposite end,
  /// minimizing contention with the owner). Any thread.
  bool steal(std::uint64_t &Entry);

private:
  /// A power-of-two ring of atomic slots. Slots are atomics with relaxed
  /// access (not plain words) because a slow thief may read a slot the
  /// owner is concurrently recycling; the value it reads is then discarded
  /// when its CAS on Top fails, but the read itself must be race-free.
  struct Ring {
    explicit Ring(std::int64_t Capacity)
        : Capacity(Capacity), Mask(Capacity - 1),
          Slots(new std::atomic<std::uint64_t>[Capacity]) {}
    std::uint64_t get(std::int64_t I) const {
      return Slots[I & Mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t I, std::uint64_t Entry) {
      Slots[I & Mask].store(Entry, std::memory_order_relaxed);
    }
    const std::int64_t Capacity;
    const std::int64_t Mask;
    std::unique_ptr<std::atomic<std::uint64_t>[]> Slots;
  };

  /// Doubles the ring. Owner only; the old ring is retired, not freed —
  /// a concurrent thief may still be reading it.
  Ring *grow(Ring *Old, std::int64_t Top, std::int64_t Bottom);

  std::atomic<std::int64_t> Top{0};
  std::atomic<std::int64_t> Bottom{0};
  std::atomic<Ring *> Buf;
  /// Rings replaced by grow(), freed with the deque.
  std::vector<std::unique_ptr<Ring>> Retired;
};

/// How the executing thread came to hold a task entry. Inline means the
/// entry never went through a deque (no workers, single task, or a full
/// job table); Own is a worker popping its own deque; Injected is an
/// external submission grabbed from the injection queue; Stolen is a
/// Chase–Lev steal from a sibling's deque.
enum class EntrySource : unsigned { Inline, Own, Injected, Stolen };

/// The string forms "inline"/"own"/"injected"/"stolen".
const char *entrySourceName(EntrySource Source);

/// A coherent-enough snapshot of the scheduler's counters, for the stats
/// command and the Prometheus renderer. All counters are monotonic except
/// QueueDepth, a gauge of published-but-not-yet-started entries.
struct SchedulerTelemetry {
  std::uint64_t Jobs = 0;      ///< run() jobs that went through the pool
  std::uint64_t Submitted = 0; ///< detached submit() jobs dispatched
  std::uint64_t Tasks = 0;     ///< task entries executed, any source
  std::uint64_t ExecutedOwn = 0;
  std::uint64_t ExecutedInjected = 0;
  std::uint64_t ExecutedStolen = 0; ///< == successful steals
  std::uint64_t ExecutedInline = 0;
  std::uint64_t QueueDepth = 0;
};

/// The morsel scheduler: NumThreads - 1 worker threads plus whatever
/// thread calls run(). One Scheduler serves a whole Program — every engine
/// made from the program at the same -jN shares it, so resident serving
/// sessions and update batches reuse one warm pool instead of spawning
/// per-engine threads.
///
/// run() is a fork-join barrier over NumTasks task indices. It is:
///  * blocking — returns only after every task of the job executed;
///  * reentrant — a task may itself call run() (nested parallel sections
///    become jobs on the same deques);
///  * thread-safe — concurrent run() calls from different threads (e.g.
///    independent rules submitting their inner scans) interleave freely.
/// While waiting for its own job the submitting thread helps execute
/// pending tasks — its own or any concurrent job's — so the pool can
/// never deadlock on nested submissions.
class Scheduler {
public:
  using TaskFn = std::function<void(std::size_t Task, std::size_t Slot)>;

  explicit Scheduler(std::size_t NumThreads);
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  std::size_t numThreads() const { return Workers.size() + 1; }

  /// Runs Fn(Task, Slot) for every Task in [0, NumTasks), on this thread
  /// and the workers, and returns after the last task finished. Slot
  /// identifies the executing thread (0 = an external thread, I + 1 =
  /// worker I) — stable across the scheduler's lifetime, for trace tracks
  /// and other per-thread attribution. Which task lands on which slot is
  /// scheduling-dependent; anything merged across tasks must be indexed
  /// by Task, not Slot.
  void run(std::size_t NumTasks, const TaskFn &Fn);

  /// Fire-and-forget: enqueues \p Fn as a one-task detached job and
  /// returns immediately; completion is not awaited and the job owns its
  /// own state (freed by whichever thread executes the task last). The
  /// serving front end dispatches request handlers this way so its event
  /// loop never blocks on evaluation. With no workers (a -j1 pool) or a
  /// full job table, Fn runs inline on the calling thread instead — the
  /// call is then blocking, but never lost.
  void submit(std::function<void()> Fn);

  /// Counter snapshot (relaxed loads; see SchedulerTelemetry).
  SchedulerTelemetry telemetry() const;

  /// The slot executing on the calling thread: worker index + 1, or 0 for
  /// external threads. Stable across the scheduler's lifetime — the same
  /// convention as run()'s Slot argument and trace tracks.
  std::size_t executingSlot() const { return currentSlot(); }

  /// How the task entry currently executing on this thread reached it.
  /// Meaningful only inside a task body (request handlers use it for
  /// steal attribution in traces); Inline otherwise.
  static EntrySource currentEntrySource();

private:
  /// In-flight jobs are slots in a fixed table so deque entries can name
  /// them in 16 bits. 64 concurrent jobs is far beyond any real nesting
  /// depth; run() falls back to inline execution when the table is full.
  static constexpr std::size_t MaxJobs = 64;
  static constexpr std::uint64_t TaskMask = (std::uint64_t(1) << 48) - 1;

  /// One in-flight job, owned by its submitter's stack frame — except
  /// detached jobs (submit()), which live on the heap, point Fn at their
  /// own Owned closure, and are deleted by the thread that executes their
  /// last task. The slot table entry is cleared only after the last task's
  /// completion count, at which point no deque entry referencing the slot
  /// can remain.
  struct Job {
    const TaskFn *Fn = nullptr;
    std::size_t NumTasks = 0;
    std::atomic<std::size_t> Executed{0};
    /// Detached jobs carry their closure (Fn == &Owned) and slot index so
    /// the completing thread can recycle the slot and free the job.
    TaskFn Owned;
    std::size_t SlotIndex = 0;
    bool Detached = false;
  };

  void workerLoop(std::size_t Index);
  /// Executes one pending entry from anywhere (own deque, injection
  /// queue, or a steal). Returns false when nothing was available.
  bool tryRunOne();
  /// Decodes and executes one deque entry, bumping its job's completion
  /// count and waking the submitter on the last task. \p Source records
  /// how this thread obtained the entry.
  void runEntry(std::uint64_t Entry, EntrySource Source);
  bool grabInjected(std::uint64_t &Entry);
  bool trySteal(std::uint64_t &Entry);
  /// The calling thread's slot: worker index + 1, or 0 for externals.
  std::size_t currentSlot() const;
  /// Runs the whole job inline on the calling thread (no workers, a
  /// single task, or a full job table).
  void runInline(std::size_t NumTasks, const TaskFn &Fn);

  std::vector<std::unique_ptr<WorkStealingDeque>> Deques;
  std::vector<std::thread> Workers;

  /// Tasks submitted by threads that own no deque (the Chase–Lev push is
  /// owner-only). Workers drain it one entry at a time plus a batch moved
  /// into their own deque, from which the rest of the pool steals.
  std::mutex InjM;
  std::deque<std::uint64_t> Injected;

  std::array<std::atomic<Job *>, MaxJobs> JobSlots{};

  /// Sleep/wake for idle workers, and the job-completion barrier for
  /// submitters. Completion signaling never touches the Job after its
  /// final fetch_add (the submitter's frame may already be gone), so the
  /// condition variables are scheduler-owned.
  std::mutex WakeM;
  std::condition_variable WakeCV;
  std::mutex DoneM;
  std::condition_variable DoneCV;
  std::atomic<bool> Stop{false};

  /// Telemetry counters (relaxed; monitoring only, never control flow).
  /// CtrQueueDepth counts published-but-not-started entries: bumped when
  /// entries land in a deque or the injection queue, dropped when
  /// runEntry() picks one up. Inline executions never touch it.
  std::atomic<std::uint64_t> CtrJobs{0};
  std::atomic<std::uint64_t> CtrSubmitted{0};
  std::atomic<std::uint64_t> CtrOwn{0};
  std::atomic<std::uint64_t> CtrInjected{0};
  std::atomic<std::uint64_t> CtrStolen{0};
  std::atomic<std::uint64_t> CtrInline{0};
  std::atomic<std::uint64_t> CtrQueueDepth{0};
};

} // namespace stird::interp

#endif // STIRD_INTERP_SCHEDULER_H
