//===- interp/Profiler.cpp - Per-rule execution profiling -------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

using namespace stird::interp;

std::size_t Profiler::registerRule(const std::string &Label, RuleMeta Meta) {
  // Registration happens at tree-generation time (before any parallel
  // section), but locking keeps the whole accumulator self-consistent if
  // that ever changes — record() shares the same mutex.
  std::lock_guard<std::mutex> Lock(M);
  auto It = IdOf.find(Label);
  if (It != IdOf.end())
    return It->second;
  std::size_t Id = Rules.size();
  RuleProfile Profile;
  Profile.Label = Label;
  Profile.Meta = std::move(Meta);
  Rules.push_back(std::move(Profile));
  IdOf.emplace(Label, Id);
  return Id;
}

std::optional<RuleProfile> Profiler::find(const std::string &Label) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = IdOf.find(Label);
  if (It == IdOf.end())
    return std::nullopt;
  return Rules[It->second];
}
