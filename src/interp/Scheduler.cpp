//===- interp/Scheduler.cpp - Morsel work-stealing scheduler --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "interp/Scheduler.h"

#include <cassert>
#include <chrono>

namespace stird::interp {

namespace {

/// Which scheduler (if any) the current thread is a worker of, and its
/// worker index there. Checked against `this` on every use, so multiple
/// Scheduler instances (tests, independent programs) coexist: a worker of
/// scheduler A submitting to scheduler B counts as external there.
struct WorkerTls {
  Scheduler *Owner = nullptr;
  std::size_t Index = 0;
};
thread_local WorkerTls Tls;

/// Per-thread victim-rotation state for steals. A plain LCG: steal order
/// only affects load balance, never results.
thread_local std::uint64_t StealSeed = 0x9e3779b97f4a7c15ULL;

/// How the entry currently executing on this thread was obtained; Inline
/// outside any task body.
thread_local EntrySource CurrentSource = EntrySource::Inline;

} // namespace

const char *entrySourceName(EntrySource Source) {
  switch (Source) {
  case EntrySource::Inline:
    return "inline";
  case EntrySource::Own:
    return "own";
  case EntrySource::Injected:
    return "injected";
  case EntrySource::Stolen:
    return "stolen";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// WorkStealingDeque
//===----------------------------------------------------------------------===//

WorkStealingDeque::WorkStealingDeque(std::size_t CapacityHint) {
  std::int64_t Capacity = 8;
  while (Capacity < static_cast<std::int64_t>(CapacityHint))
    Capacity *= 2;
  Buf.store(new Ring(Capacity), std::memory_order_relaxed);
}

WorkStealingDeque::~WorkStealingDeque() {
  delete Buf.load(std::memory_order_relaxed);
}

WorkStealingDeque::Ring *WorkStealingDeque::grow(Ring *Old, std::int64_t T,
                                                 std::int64_t B) {
  Ring *Grown = new Ring(Old->Capacity * 2);
  for (std::int64_t I = T; I < B; ++I)
    Grown->put(I, Old->get(I));
  // The old ring stays allocated until the deque dies: a thief that loaded
  // it before the swap may still read (and then discard) a slot from it.
  Retired.emplace_back(Old);
  Buf.store(Grown, std::memory_order_release);
  return Grown;
}

void WorkStealingDeque::push(std::uint64_t Entry) {
  const std::int64_t B = Bottom.load(std::memory_order_relaxed);
  const std::int64_t T = Top.load(std::memory_order_acquire);
  Ring *R = Buf.load(std::memory_order_relaxed);
  if (B - T >= R->Capacity)
    R = grow(R, T, B);
  R->put(B, Entry);
  // seq_cst store: publishes the slot write to thieves and orders the
  // Bottom bump against their Top/Bottom loads.
  Bottom.store(B + 1, std::memory_order_seq_cst);
}

bool WorkStealingDeque::pop(std::uint64_t &Entry) {
  const std::int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
  Ring *R = Buf.load(std::memory_order_relaxed);
  // Reserve the bottom slot before reading Top: a thief observing the old
  // Bottom and this pop cannot both take the same entry.
  Bottom.store(B, std::memory_order_seq_cst);
  std::int64_t T = Top.load(std::memory_order_seq_cst);
  if (T > B) {
    // Already empty; restore.
    Bottom.store(B + 1, std::memory_order_relaxed);
    return false;
  }
  Entry = R->get(B);
  if (T < B)
    return true; // More than one entry remained; no thief can reach B.
  // Exactly one entry: race the thieves for it via Top.
  const bool Won = Top.compare_exchange_strong(
      T, T + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
  Bottom.store(B + 1, std::memory_order_relaxed);
  return Won;
}

bool WorkStealingDeque::steal(std::uint64_t &Entry) {
  std::int64_t T = Top.load(std::memory_order_seq_cst);
  const std::int64_t B = Bottom.load(std::memory_order_seq_cst);
  if (T >= B)
    return false;
  // Acquire pairs with the release store in grow(): the ring we load holds
  // the entries published up to the Bottom we just read.
  Ring *R = Buf.load(std::memory_order_acquire);
  Entry = R->get(T);
  // The CAS claims the entry; on failure another thief (or the owner's
  // final pop) took it and the read value is discarded.
  return Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

Scheduler::Scheduler(std::size_t NumThreads) {
  const std::size_t NumWorkers = NumThreads > 1 ? NumThreads - 1 : 0;
  Deques.reserve(NumWorkers);
  for (std::size_t I = 0; I < NumWorkers; ++I)
    Deques.push_back(std::make_unique<WorkStealingDeque>());
  Workers.reserve(NumWorkers);
  for (std::size_t I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> Lock(WakeM);
    Stop.store(true, std::memory_order_relaxed);
  }
  WakeCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

std::size_t Scheduler::currentSlot() const {
  return Tls.Owner == this ? Tls.Index + 1 : 0;
}

EntrySource Scheduler::currentEntrySource() { return CurrentSource; }

SchedulerTelemetry Scheduler::telemetry() const {
  SchedulerTelemetry T;
  T.Jobs = CtrJobs.load(std::memory_order_relaxed);
  T.Submitted = CtrSubmitted.load(std::memory_order_relaxed);
  T.ExecutedOwn = CtrOwn.load(std::memory_order_relaxed);
  T.ExecutedInjected = CtrInjected.load(std::memory_order_relaxed);
  T.ExecutedStolen = CtrStolen.load(std::memory_order_relaxed);
  T.ExecutedInline = CtrInline.load(std::memory_order_relaxed);
  T.Tasks = T.ExecutedOwn + T.ExecutedInjected + T.ExecutedStolen +
            T.ExecutedInline;
  T.QueueDepth = CtrQueueDepth.load(std::memory_order_relaxed);
  return T;
}

void Scheduler::runInline(std::size_t NumTasks, const TaskFn &Fn) {
  const std::size_t Slot = currentSlot();
  CtrInline.fetch_add(NumTasks, std::memory_order_relaxed);
  for (std::size_t I = 0; I < NumTasks; ++I)
    Fn(I, Slot);
}

void Scheduler::run(std::size_t NumTasks, const TaskFn &Fn) {
  if (NumTasks == 0)
    return;
  if (Workers.empty() || NumTasks == 1) {
    runInline(NumTasks, Fn);
    return;
  }
  assert(NumTasks <= TaskMask && "task index exceeds the entry encoding");

  Job J;
  J.Fn = &Fn;
  J.NumTasks = NumTasks;

  // Claim a job slot; a full table (64 jobs already in flight) degrades to
  // inline execution rather than blocking.
  std::size_t Slot = MaxJobs;
  for (std::size_t I = 0; I < MaxJobs; ++I) {
    Job *Expected = nullptr;
    if (JobSlots[I].compare_exchange_strong(Expected, &J,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
      Slot = I;
      break;
    }
  }
  if (Slot == MaxJobs) {
    runInline(NumTasks, Fn);
    return;
  }

  // Publish the task entries. A worker pushes onto its own deque (the
  // pool steals from it); an external thread uses the injection queue.
  CtrJobs.fetch_add(1, std::memory_order_relaxed);
  CtrQueueDepth.fetch_add(NumTasks, std::memory_order_relaxed);
  const std::uint64_t Tag = static_cast<std::uint64_t>(Slot) << 48;
  if (Tls.Owner == this) {
    WorkStealingDeque &Own = *Deques[Tls.Index];
    for (std::size_t I = 0; I < NumTasks; ++I)
      Own.push(Tag | I);
  } else {
    std::lock_guard<std::mutex> Lock(InjM);
    for (std::size_t I = 0; I < NumTasks; ++I)
      Injected.push_back(Tag | I);
  }
  WakeCV.notify_all();

  // Help until the job completes. Executing any pending entry — including
  // other jobs' — keeps nested and concurrent submissions deadlock-free.
  // The short wait_for is a backstop against the (benign) race between a
  // completer's notify and this thread entering the wait.
  while (J.Executed.load(std::memory_order_acquire) < NumTasks) {
    if (tryRunOne())
      continue;
    std::unique_lock<std::mutex> Lock(DoneM);
    if (J.Executed.load(std::memory_order_acquire) >= NumTasks)
      break;
    DoneCV.wait_for(Lock, std::chrono::microseconds(200));
  }

  // All entries are consumed and executed; recycling the slot is safe.
  JobSlots[Slot].store(nullptr, std::memory_order_release);
}

void Scheduler::runEntry(std::uint64_t Entry, EntrySource Source) {
  const std::size_t Slot = static_cast<std::size_t>(Entry >> 48);
  const std::size_t Task = static_cast<std::size_t>(Entry & TaskMask);
  Job *J = JobSlots[Slot].load(std::memory_order_acquire);
  assert(J && "deque entry outlived its job slot");
  CtrQueueDepth.fetch_sub(1, std::memory_order_relaxed);
  switch (Source) {
  case EntrySource::Own:
    CtrOwn.fetch_add(1, std::memory_order_relaxed);
    break;
  case EntrySource::Injected:
    CtrInjected.fetch_add(1, std::memory_order_relaxed);
    break;
  case EntrySource::Stolen:
    CtrStolen.fetch_add(1, std::memory_order_relaxed);
    break;
  case EntrySource::Inline:
    CtrInline.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  const TaskFn *Fn = J->Fn;
  // Read everything needed for completion *before* the fetch_add: the
  // submitter may observe the final count and destroy the Job (its stack
  // frame) the moment the add lands.
  const std::size_t Total = J->NumTasks;
  const bool Detached = J->Detached;
  const EntrySource Outer = CurrentSource;
  CurrentSource = Source;
  (*Fn)(Task, currentSlot());
  CurrentSource = Outer;
  if (J->Executed.fetch_add(1, std::memory_order_acq_rel) + 1 == Total) {
    if (Detached) {
      // Nobody waits on a detached job: recycle the slot (no remaining
      // deque entry can reference it — all Total entries executed) and
      // free the heap-owned job here.
      JobSlots[J->SlotIndex].store(nullptr, std::memory_order_release);
      delete J;
      return;
    }
    // Empty critical section: a submitter between its predicate check and
    // wait() holds DoneM, so this lock/unlock cannot slip into that gap.
    { std::lock_guard<std::mutex> Lock(DoneM); }
    DoneCV.notify_all();
  }
}

void Scheduler::submit(std::function<void()> Fn) {
  CtrSubmitted.fetch_add(1, std::memory_order_relaxed);
  if (Workers.empty()) {
    CtrInline.fetch_add(1, std::memory_order_relaxed);
    Fn();
    return;
  }
  auto J = std::make_unique<Job>();
  J->Owned = [Body = std::move(Fn)](std::size_t, std::size_t) { Body(); };
  J->Fn = &J->Owned;
  J->NumTasks = 1;
  J->Detached = true;

  std::size_t Slot = MaxJobs;
  for (std::size_t I = 0; I < MaxJobs; ++I) {
    Job *Expected = nullptr;
    if (JobSlots[I].compare_exchange_strong(Expected, J.get(),
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
      Slot = I;
      break;
    }
  }
  if (Slot == MaxJobs) {
    // Full job table: degrade to inline execution, like run() does.
    CtrInline.fetch_add(1, std::memory_order_relaxed);
    J->Owned(0, currentSlot());
    return;
  }
  J->SlotIndex = Slot;

  CtrQueueDepth.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t Entry = static_cast<std::uint64_t>(Slot) << 48;
  if (Tls.Owner == this) {
    Deques[Tls.Index]->push(Entry);
  } else {
    std::lock_guard<std::mutex> Lock(InjM);
    Injected.push_back(Entry);
  }
  J.release(); // owned by the executing thread from here on
  WakeCV.notify_one();
}

bool Scheduler::grabInjected(std::uint64_t &Entry) {
  std::lock_guard<std::mutex> Lock(InjM);
  if (Injected.empty())
    return false;
  Entry = Injected.front();
  Injected.pop_front();
  // A worker also moves a proportional batch into its own deque, where
  // the rest of the pool can steal it without touching the queue mutex.
  if (Tls.Owner == this) {
    WorkStealingDeque &Own = *Deques[Tls.Index];
    std::size_t Batch = Injected.size() / (Deques.size() + 1);
    for (; Batch > 0; --Batch) {
      Own.push(Injected.front());
      Injected.pop_front();
    }
  }
  return true;
}

bool Scheduler::trySteal(std::uint64_t &Entry) {
  const std::size_t N = Deques.size();
  if (N == 0)
    return false;
  StealSeed = StealSeed * 6364136223846793005ULL + 1442695040888963407ULL;
  const std::size_t Start = static_cast<std::size_t>(StealSeed >> 33) % N;
  for (std::size_t I = 0; I < N; ++I) {
    const std::size_t Victim = (Start + I) % N;
    if (Tls.Owner == this && Victim == Tls.Index)
      continue;
    if (Deques[Victim]->steal(Entry))
      return true;
  }
  return false;
}

bool Scheduler::tryRunOne() {
  std::uint64_t Entry;
  if (Tls.Owner == this && Deques[Tls.Index]->pop(Entry)) {
    runEntry(Entry, EntrySource::Own);
    return true;
  }
  if (grabInjected(Entry)) {
    runEntry(Entry, EntrySource::Injected);
    return true;
  }
  if (trySteal(Entry)) {
    runEntry(Entry, EntrySource::Stolen);
    return true;
  }
  return false;
}

void Scheduler::workerLoop(std::size_t Index) {
  Tls.Owner = this;
  Tls.Index = Index;
  for (;;) {
    if (tryRunOne())
      continue;
    std::unique_lock<std::mutex> Lock(WakeM);
    if (Stop.load(std::memory_order_relaxed))
      return;
    // Timed wait: a notify sent between our failed tryRunOne() and this
    // wait would otherwise be lost. 500us bounds that window.
    WakeCV.wait_for(Lock, std::chrono::microseconds(500));
    if (Stop.load(std::memory_order_relaxed))
      return;
  }
}

} // namespace stird::interp
