//===- util/Args.cpp - Declarative command-line parsing --------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/Args.h"

#include <cstdio>
#include <cstdlib>

using namespace stird::util;

Args::Args(std::string Tool, std::string Synopsis)
    : Tool(std::move(Tool)), Synopsis(std::move(Synopsis)) {}

Args &Args::flag(std::vector<std::string> Names, std::string Help,
                 std::function<void()> Sink) {
  Specs.push_back({Kind::Flag, std::move(Names), "", std::move(Help),
                   std::move(Sink), nullptr});
  return *this;
}

Args &Args::option(std::vector<std::string> Names, std::string Meta,
                   std::string Help,
                   std::function<std::string(const std::string &)> Sink) {
  Specs.push_back({Kind::Option, std::move(Names), std::move(Meta),
                   std::move(Help), nullptr, std::move(Sink)});
  return *this;
}

Args &Args::optionalValue(
    std::vector<std::string> Names, std::string Meta, std::string Help,
    std::function<std::string(const std::string &)> Sink) {
  Specs.push_back({Kind::OptionalValue, std::move(Names), std::move(Meta),
                   std::move(Help), nullptr, std::move(Sink)});
  return *this;
}

Args &Args::positional(std::string Meta,
                       std::function<std::string(const std::string &)> Sink,
                       bool Required, bool Variadic) {
  Positionals.push_back(
      {std::move(Meta), std::move(Sink), Required, Variadic});
  return *this;
}

const Args::Spec *Args::find(const std::string &Name) const {
  for (const Spec &S : Specs)
    for (const std::string &N : S.Names)
      if (N == Name)
        return &S;
  return nullptr;
}

bool Args::parse(int Argc, const char *const *Argv, std::string *Error) {
  auto Fail = [&](std::string Message) {
    if (Error)
      *Error = std::move(Message);
    return false;
  };
  std::size_t NextPositional = 0;
  bool VariadicFed = false;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    const bool IsOption = Arg.size() > 1 && Arg[0] == '-';
    if (!IsOption) {
      if (NextPositional >= Positionals.size())
        return Fail("unexpected argument '" + Arg + "'");
      const Positional &P = Positionals[NextPositional];
      if (P.Variadic)
        VariadicFed = true;
      else
        ++NextPositional;
      if (std::string Err = P.Sink(Arg); !Err.empty())
        return Fail(Err);
      continue;
    }
    if (Arg == "-h" || Arg == "--help") {
      Help = true;
      return true;
    }
    std::string Name = Arg;
    std::string Attached;
    bool HasAttached = false;
    if (std::size_t Eq = Arg.find('='); Eq != std::string::npos) {
      Name = Arg.substr(0, Eq);
      Attached = Arg.substr(Eq + 1);
      HasAttached = true;
    }
    const Spec *S = find(Name);
    if (!S)
      return Fail("unknown option '" + Name + "'");
    switch (S->TheKind) {
    case Kind::Flag:
      if (HasAttached)
        return Fail("option '" + Name + "' does not take a value");
      S->FlagSink();
      break;
    case Kind::Option: {
      std::string Value;
      if (HasAttached) {
        Value = Attached;
      } else if (I + 1 < Argc) {
        Value = Argv[++I];
      } else {
        return Fail("option '" + Name + "' requires a value");
      }
      if (std::string Err = S->ValueSink(Value); !Err.empty())
        return Fail(Err);
      break;
    }
    case Kind::OptionalValue:
      if (HasAttached && Attached.empty())
        return Fail("option '" + Name + "=' requires a value");
      if (std::string Err = S->ValueSink(HasAttached ? Attached : "");
          !Err.empty())
        return Fail(Err);
      break;
    }
  }
  if (NextPositional < Positionals.size() &&
      Positionals[NextPositional].Required &&
      !(Positionals[NextPositional].Variadic && VariadicFed))
    return Fail("missing " + Positionals[NextPositional].Meta);
  return true;
}

void Args::parseOrExit(int Argc, const char *const *Argv) {
  std::string Error;
  if (!parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s: %s\n%s", Tool.c_str(), Error.c_str(),
                 usage().c_str());
    std::exit(1);
  }
  if (Help) {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
}

std::string Args::usage() const {
  std::string Out = "usage: " + Tool;
  for (const Positional &P : Positionals)
    Out += P.Required ? " <" + P.Meta + ">" : " [" + P.Meta + "]";
  if (!Synopsis.empty())
    Out += " " + Synopsis;
  Out += "\n";
  auto Render = [](const Spec &S) {
    std::string Left = "  ";
    for (std::size_t I = 0; I < S.Names.size(); ++I) {
      if (I != 0)
        Left += ", ";
      Left += S.Names[I];
    }
    if (S.TheKind == Kind::Option)
      Left += " <" + S.Meta + ">";
    else if (S.TheKind == Kind::OptionalValue)
      Left += "[=<" + S.Meta + ">]";
    return Left;
  };
  for (const Spec &S : Specs) {
    std::string Left = Render(S);
    // Two columns: pad short spellings, break the line for long ones.
    if (Left.size() < 28)
      Left.resize(28, ' ');
    else
      Left += "\n" + std::string(28, ' ');
    Out += Left + S.Help + "\n";
  }
  return Out;
}
