//===- util/Args.h - Declarative command-line parsing -----------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flag parser shared by the stird command-line tools (stird,
/// stird-profile, stird-serve, stird-client). Each tool registers its
/// flags, value options and positionals with sinks; parsing handles the
/// `--name value` / `--name=value` forms, unknown-option and
/// missing-value diagnostics, and renders the usage text from the
/// registered specs so help never drifts from the implementation.
///
/// Sinks for value options return an error message ("" on success), so a
/// tool can reject a malformed value with its own wording and still get
/// the shared "print error + usage, exit 1" behaviour of parseOrExit().
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_UTIL_ARGS_H
#define STIRD_UTIL_ARGS_H

#include <functional>
#include <string>
#include <vector>

namespace stird::util {

class Args {
public:
  /// \p Tool is the program name for the usage line; \p Synopsis the part
  /// after it (e.g. "<program.dl> [options]").
  Args(std::string Tool, std::string Synopsis);

  /// A boolean flag: `--name`. Rejects `--name=value`.
  Args &flag(std::vector<std::string> Names, std::string Help,
             std::function<void()> Sink);

  /// A value option: `--name value` or `--name=value`. The sink returns
  /// "" to accept the value or an error message to reject it.
  Args &option(std::vector<std::string> Names, std::string Meta,
               std::string Help,
               std::function<std::string(const std::string &)> Sink);

  /// An option whose value is optional and only attaches with '=':
  /// `--name` passes "" to the sink, `--name=value` passes the value
  /// (stird's `--profile[=<file>]`). A following bare argument is NOT
  /// consumed as the value.
  Args &optionalValue(std::vector<std::string> Names, std::string Meta,
                      std::string Help,
                      std::function<std::string(const std::string &)> Sink);

  /// The next positional argument (registration order). Required
  /// positionals missing at the end of the command line are an error.
  /// A variadic positional (necessarily the last) absorbs every remaining
  /// non-option argument, invoking the sink once per occurrence.
  Args &positional(std::string Meta,
                   std::function<std::string(const std::string &)> Sink,
                   bool Required = true, bool Variadic = false);

  /// Parses the command line. On failure returns false and, when given,
  /// fills \p Error with a one-line diagnostic. `-h`/`--help` are always
  /// recognized and reported via helpRequested().
  bool parse(int Argc, const char *const *Argv, std::string *Error = nullptr);

  /// parse() with the shared tool behaviour: on error prints the
  /// diagnostic and the usage text to stderr and exits 1; on `--help`
  /// prints the usage text to stdout and exits 0.
  void parseOrExit(int Argc, const char *const *Argv);

  bool helpRequested() const { return Help; }

  /// The full usage text rendered from the registered specs.
  std::string usage() const;

private:
  enum class Kind { Flag, Option, OptionalValue };
  struct Spec {
    Kind TheKind;
    std::vector<std::string> Names;
    std::string Meta;
    std::string Help;
    std::function<void()> FlagSink;
    std::function<std::string(const std::string &)> ValueSink;
  };
  struct Positional {
    std::string Meta;
    std::function<std::string(const std::string &)> Sink;
    bool Required;
    bool Variadic;
  };

  const Spec *find(const std::string &Name) const;

  std::string Tool;
  std::string Synopsis;
  std::vector<Spec> Specs;
  std::vector<Positional> Positionals;
  bool Help = false;
};

} // namespace stird::util

#endif // STIRD_UTIL_ARGS_H
