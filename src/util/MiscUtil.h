//===- util/MiscUtil.h - Small shared helpers -------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and tiny helpers shared across subsystems.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_UTIL_MISCUTIL_H
#define STIRD_UTIL_MISCUTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace stird {

/// Reports an unrecoverable usage or environment error and aborts. Library
/// invariant violations use assert(); this is for errors triggered by user
/// input that the current call path cannot surface as a diagnostic.
[[noreturn]] inline void fatal(const std::string &Message) {
  std::fprintf(stderr, "stird fatal error: %s\n", Message.c_str());
  std::abort();
}

/// Marks a point in control flow that is a bug to reach.
[[noreturn]] inline void unreachable(const char *Message) {
  std::fprintf(stderr, "stird internal error: %s\n", Message);
  std::abort();
}

} // namespace stird

#endif // STIRD_UTIL_MISCUTIL_H
