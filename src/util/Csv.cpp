//===- util/Csv.cpp - Tab-separated fact file IO ---------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/Csv.h"

#include "util/MiscUtil.h"

#include <charconv>
#include <fstream>
#include <sstream>

using namespace stird;

RamDomain stird::parseColumn(const std::string &Raw, ColumnTypeKind Kind,
                             SymbolTable &Symbols) {
  switch (Kind) {
  case ColumnTypeKind::Number: {
    RamDomain Value = 0;
    auto [Ptr, Ec] =
        std::from_chars(Raw.data(), Raw.data() + Raw.size(), Value);
    if (Ec != std::errc() || Ptr != Raw.data() + Raw.size())
      fatal("malformed number column: '" + Raw + "'");
    return Value;
  }
  case ColumnTypeKind::Unsigned: {
    RamUnsigned Value = 0;
    auto [Ptr, Ec] =
        std::from_chars(Raw.data(), Raw.data() + Raw.size(), Value);
    if (Ec != std::errc() || Ptr != Raw.data() + Raw.size())
      fatal("malformed unsigned column: '" + Raw + "'");
    return ramBitCast<RamDomain>(Value);
  }
  case ColumnTypeKind::Float: {
    try {
      return ramBitCast<RamDomain>(static_cast<RamFloat>(std::stod(Raw)));
    } catch (...) {
      fatal("malformed float column: '" + Raw + "'");
    }
  }
  case ColumnTypeKind::Symbol:
    return Symbols.intern(Raw);
  }
  unreachable("unknown column type");
}

std::string stird::printColumn(RamDomain Value, ColumnTypeKind Kind,
                               const SymbolTable &Symbols) {
  switch (Kind) {
  case ColumnTypeKind::Number:
    return std::to_string(Value);
  case ColumnTypeKind::Unsigned:
    return std::to_string(ramBitCast<RamUnsigned>(Value));
  case ColumnTypeKind::Float: {
    std::ostringstream Out;
    Out << ramBitCast<RamFloat>(Value);
    return Out.str();
  }
  case ColumnTypeKind::Symbol:
    return Symbols.resolve(Value);
  }
  unreachable("unknown column type");
}

std::vector<DynTuple>
stird::readFactStream(std::istream &In,
                      const std::vector<ColumnTypeKind> &Types,
                      SymbolTable &Symbols) {
  std::vector<DynTuple> Tuples;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    DynTuple Tuple;
    Tuple.reserve(Types.size());
    std::size_t Begin = 0;
    for (std::size_t Col = 0; Col < Types.size(); ++Col) {
      std::size_t End = (Col + 1 == Types.size())
                            ? Line.size()
                            : Line.find('\t', Begin);
      if (End == std::string::npos)
        fatal("fact line has too few columns: '" + Line + "'");
      Tuple.push_back(
          parseColumn(Line.substr(Begin, End - Begin), Types[Col], Symbols));
      Begin = End + 1;
    }
    Tuples.push_back(std::move(Tuple));
  }
  return Tuples;
}

std::vector<DynTuple>
stird::readFactFile(const std::string &Path,
                    const std::vector<ColumnTypeKind> &Types,
                    SymbolTable &Symbols) {
  std::ifstream In(Path);
  if (!In)
    fatal("cannot open fact file '" + Path + "'");
  return readFactStream(In, Types, Symbols);
}

void stird::writeFactFile(const std::string &Path,
                          const std::vector<ColumnTypeKind> &Types,
                          const SymbolTable &Symbols,
                          const std::vector<DynTuple> &Tuples) {
  std::ofstream Out(Path);
  if (!Out)
    fatal("cannot open output file '" + Path + "'");
  for (const DynTuple &Tuple : Tuples) {
    for (std::size_t Col = 0; Col < Types.size(); ++Col) {
      if (Col != 0)
        Out << '\t';
      Out << printColumn(Tuple[Col], Types[Col], Symbols);
    }
    Out << '\n';
  }
}
