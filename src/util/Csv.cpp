//===- util/Csv.cpp - Tab-separated fact file IO ---------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/Csv.h"

#include "util/MiscUtil.h"

#include <charconv>
#include <fstream>
#include <sstream>

using namespace stird;

std::string FactError::render() const {
  std::string Out = File + ":" + std::to_string(Line) + ": ";
  if (Column != 0)
    Out += "column " + std::to_string(Column) + ": ";
  return Out + Message;
}

bool stird::tryParseColumn(const std::string &Raw, ColumnTypeKind Kind,
                           SymbolTable &Symbols, RamDomain &Out,
                           std::string *Message) {
  auto Fail = [&](const char *What) {
    if (Message)
      *Message = std::string("malformed ") + What + " column: '" + Raw + "'";
    return false;
  };
  switch (Kind) {
  case ColumnTypeKind::Number: {
    RamDomain Value = 0;
    auto [Ptr, Ec] =
        std::from_chars(Raw.data(), Raw.data() + Raw.size(), Value);
    if (Ec != std::errc() || Ptr != Raw.data() + Raw.size())
      return Fail("number");
    Out = Value;
    return true;
  }
  case ColumnTypeKind::Unsigned: {
    RamUnsigned Value = 0;
    auto [Ptr, Ec] =
        std::from_chars(Raw.data(), Raw.data() + Raw.size(), Value);
    if (Ec != std::errc() || Ptr != Raw.data() + Raw.size())
      return Fail("unsigned");
    Out = ramBitCast<RamDomain>(Value);
    return true;
  }
  case ColumnTypeKind::Float: {
    // std::stod accepts trailing garbage ("1.5x" -> 1.5); require the
    // whole cell to be consumed so such rows are rejected, not mis-read.
    try {
      std::size_t Consumed = 0;
      const double Value = std::stod(Raw, &Consumed);
      if (Consumed != Raw.size())
        return Fail("float");
      Out = ramBitCast<RamDomain>(static_cast<RamFloat>(Value));
      return true;
    } catch (...) {
      return Fail("float");
    }
  }
  case ColumnTypeKind::Symbol:
    Out = Symbols.intern(Raw);
    return true;
  }
  unreachable("unknown column type");
}

RamDomain stird::parseColumn(const std::string &Raw, ColumnTypeKind Kind,
                             SymbolTable &Symbols) {
  RamDomain Out = 0;
  std::string Message;
  if (!tryParseColumn(Raw, Kind, Symbols, Out, &Message))
    fatal(Message);
  return Out;
}

std::string stird::printColumn(RamDomain Value, ColumnTypeKind Kind,
                               const SymbolTable &Symbols) {
  switch (Kind) {
  case ColumnTypeKind::Number:
    return std::to_string(Value);
  case ColumnTypeKind::Unsigned:
    return std::to_string(ramBitCast<RamUnsigned>(Value));
  case ColumnTypeKind::Float: {
    std::ostringstream Out;
    Out << ramBitCast<RamFloat>(Value);
    return Out.str();
  }
  case ColumnTypeKind::Symbol:
    return Symbols.resolve(Value);
  }
  unreachable("unknown column type");
}

std::vector<DynTuple>
stird::readFactStream(std::istream &In,
                      const std::vector<ColumnTypeKind> &Types,
                      SymbolTable &Symbols, std::vector<FactError> *Errors,
                      const std::string &Name) {
  std::vector<DynTuple> Tuples;
  std::string Line;
  std::size_t LineNo = 0;
  // Reports one malformed row: records it (skipping the row) when the
  // caller collects errors, aborts with the same context otherwise.
  auto Report = [&](std::size_t Column, std::string Message) {
    FactError Err{Name, LineNo, Column, std::move(Message)};
    if (Errors)
      Errors->push_back(std::move(Err));
    else
      fatal(Err.render());
  };
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    DynTuple Tuple;
    Tuple.reserve(Types.size());
    std::size_t Begin = 0;
    bool Ok = true;
    for (std::size_t Col = 0; Col < Types.size() && Ok; ++Col) {
      const bool Last = Col + 1 == Types.size();
      std::size_t End = Line.find('\t', Begin);
      if (Last && End != std::string::npos) {
        // The row continues past its final declared column: count every
        // remaining separator so the message reports the true width.
        std::size_t Total = Types.size();
        for (std::size_t At = End; At != std::string::npos;
             At = Line.find('\t', At + 1))
          ++Total;
        Report(0, "row has " + std::to_string(Total) + " columns, expected " +
                      std::to_string(Types.size()));
        Ok = false;
        break;
      }
      if (Last)
        End = Line.size();
      if (End == std::string::npos) {
        Report(0, "row has " + std::to_string(Col + 1) +
                      " columns, expected " + std::to_string(Types.size()));
        Ok = false;
        break;
      }
      RamDomain Value = 0;
      std::string Message;
      if (!tryParseColumn(Line.substr(Begin, End - Begin), Types[Col],
                          Symbols, Value, &Message)) {
        Report(Col + 1, std::move(Message));
        Ok = false;
        break;
      }
      Tuple.push_back(Value);
      Begin = End + 1;
    }
    if (Ok)
      Tuples.push_back(std::move(Tuple));
  }
  return Tuples;
}

std::vector<DynTuple>
stird::readFactFile(const std::string &Path,
                    const std::vector<ColumnTypeKind> &Types,
                    SymbolTable &Symbols, std::vector<FactError> *Errors) {
  std::ifstream In(Path);
  if (!In) {
    if (Errors) {
      Errors->push_back({Path, 0, 0, "cannot open fact file"});
      return {};
    }
    fatal("cannot open fact file '" + Path + "'");
  }
  return readFactStream(In, Types, Symbols, Errors, Path);
}

void stird::writeFactFile(const std::string &Path,
                          const std::vector<ColumnTypeKind> &Types,
                          const SymbolTable &Symbols,
                          const std::vector<DynTuple> &Tuples) {
  std::ofstream Out(Path);
  if (!Out)
    fatal("cannot open output file '" + Path + "'");
  for (const DynTuple &Tuple : Tuples) {
    for (std::size_t Col = 0; Col < Types.size(); ++Col) {
      if (Col != 0)
        Out << '\t';
      Out << printColumn(Tuple[Col], Types[Col], Symbols);
    }
    Out << '\n';
  }
}
