//===- util/Timer.h - Wall-clock timing helpers -----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simple monotonic wall-clock timer used by the profiler and the benchmark
/// harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_UTIL_TIMER_H
#define STIRD_UTIL_TIMER_H

#include <chrono>

namespace stird {

/// Measures elapsed wall-clock time from construction or the last restart().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Resets the reference point to now.
  void restart() { Start = Clock::now(); }

  /// Seconds elapsed since the reference point.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Microseconds elapsed since the reference point.
  std::uint64_t microseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              Start)
            .count());
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace stird

#endif // STIRD_UTIL_TIMER_H
