//===- util/Csv.h - Tab-separated fact file IO ------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader/writer for Soufflé-style fact files: one tuple per line, columns
/// separated by tabs, symbols stored verbatim, numbers in decimal. Used by
/// the .input/.output directives and by the synthesized binaries, so both
/// execution paths consume identical data.
///
/// Malformed rows are never silently mis-parsed: every cell must consume
/// its whole column, and every row must have exactly the declared column
/// count. Callers either receive structured FactError diagnostics (file,
/// 1-based line, 1-based column) with the bad rows skipped, or — when no
/// error sink is supplied — a fatal error carrying the same context.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_UTIL_CSV_H
#define STIRD_UTIL_CSV_H

#include "util/RamTypes.h"
#include "util/SymbolTable.h"

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace stird {

/// How a single fact-file column is converted to/from a RamDomain cell.
enum class ColumnTypeKind { Number, Unsigned, Float, Symbol };

/// One malformed fact-file row.
struct FactError {
  /// Source name: the file path, or the caller-supplied stream name.
  std::string File;
  /// 1-based line number of the bad row.
  std::size_t Line = 0;
  /// 1-based column (field) number, 0 when the whole row is malformed
  /// (wrong column count).
  std::size_t Column = 0;
  std::string Message;

  /// "facts/edge.facts:3: column 2: malformed number column: '1x'".
  std::string render() const;
};

/// Parses one raw column string into \p Out according to \p Kind,
/// interning through \p Symbols when the column holds a symbol. Returns
/// false (with a diagnostic in \p Message when given) if the cell does not
/// parse exactly — trailing garbage after a number counts as malformed.
bool tryParseColumn(const std::string &Raw, ColumnTypeKind Kind,
                    SymbolTable &Symbols, RamDomain &Out,
                    std::string *Message = nullptr);

/// Parses one raw column string into a RamDomain according to \p Kind,
/// interning through \p Symbols when the column holds a symbol. Fatal on
/// malformed input.
RamDomain parseColumn(const std::string &Raw, ColumnTypeKind Kind,
                      SymbolTable &Symbols);

/// Renders one RamDomain cell back into text according to \p Kind.
std::string printColumn(RamDomain Value, ColumnTypeKind Kind,
                        const SymbolTable &Symbols);

/// Reads a whole tab-separated fact file. Each line must have exactly
/// Types.size() columns. Returns the well-formed tuples in file order.
/// With \p Errors, malformed rows are reported there and skipped;
/// without, the first malformed row is fatal (with file:line context).
std::vector<DynTuple> readFactFile(const std::string &Path,
                                   const std::vector<ColumnTypeKind> &Types,
                                   SymbolTable &Symbols,
                                   std::vector<FactError> *Errors = nullptr);

/// Parses fact tuples from an already-open stream (used by tests and by
/// in-memory inputs). \p Name labels diagnostics in place of a file path.
std::vector<DynTuple> readFactStream(std::istream &In,
                                     const std::vector<ColumnTypeKind> &Types,
                                     SymbolTable &Symbols,
                                     std::vector<FactError> *Errors = nullptr,
                                     const std::string &Name = "<stream>");

/// Writes tuples as a tab-separated fact file.
void writeFactFile(const std::string &Path,
                   const std::vector<ColumnTypeKind> &Types,
                   const SymbolTable &Symbols,
                   const std::vector<DynTuple> &Tuples);

} // namespace stird

#endif // STIRD_UTIL_CSV_H
