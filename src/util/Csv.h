//===- util/Csv.h - Tab-separated fact file IO ------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader/writer for Soufflé-style fact files: one tuple per line, columns
/// separated by tabs, symbols stored verbatim, numbers in decimal. Used by
/// the .input/.output directives and by the synthesized binaries, so both
/// execution paths consume identical data.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_UTIL_CSV_H
#define STIRD_UTIL_CSV_H

#include "util/RamTypes.h"
#include "util/SymbolTable.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace stird {

/// How a single fact-file column is converted to/from a RamDomain cell.
enum class ColumnTypeKind { Number, Unsigned, Float, Symbol };

/// Parses one raw column string into a RamDomain according to \p Kind,
/// interning through \p Symbols when the column holds a symbol.
RamDomain parseColumn(const std::string &Raw, ColumnTypeKind Kind,
                      SymbolTable &Symbols);

/// Renders one RamDomain cell back into text according to \p Kind.
std::string printColumn(RamDomain Value, ColumnTypeKind Kind,
                        const SymbolTable &Symbols);

/// Reads a whole tab-separated fact file. Each line must have exactly
/// Types.size() columns. Returns the tuples in file order.
std::vector<DynTuple> readFactFile(const std::string &Path,
                                   const std::vector<ColumnTypeKind> &Types,
                                   SymbolTable &Symbols);

/// Parses fact tuples from an already-open stream (used by tests and by
/// in-memory inputs).
std::vector<DynTuple> readFactStream(std::istream &In,
                                     const std::vector<ColumnTypeKind> &Types,
                                     SymbolTable &Symbols);

/// Writes tuples as a tab-separated fact file.
void writeFactFile(const std::string &Path,
                   const std::vector<ColumnTypeKind> &Types,
                   const SymbolTable &Symbols,
                   const std::vector<DynTuple> &Tuples);

} // namespace stird

#endif // STIRD_UTIL_CSV_H
