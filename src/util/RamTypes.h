//===- util/RamTypes.h - Core value types of the RAM machine ---*- C++ -*-===//
//
// Part of the stird project, a reproduction of "An Efficient Interpreter for
// Datalog by De-specializing Relations" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines RamDomain, the single storage type of every de-specialized
/// relation, and the bit-cast helpers that map unsigned/float values onto it
/// (the paper's second de-specialization step, Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_UTIL_RAMTYPES_H
#define STIRD_UTIL_RAMTYPES_H

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace stird {

/// The universal storage cell. Every attribute of every relation is stored
/// as a RamDomain; signed/unsigned/float interpretations are views on the
/// same 32 bits.
using RamDomain = int32_t;

/// View of a RamDomain as an unsigned number.
using RamUnsigned = uint32_t;

/// View of a RamDomain as a floating-point number. Must have the same width
/// as RamDomain so it can be stored bit-exactly.
using RamFloat = float;

static_assert(sizeof(RamFloat) == sizeof(RamDomain),
              "RamFloat must fit a RamDomain cell");
static_assert(sizeof(RamUnsigned) == sizeof(RamDomain),
              "RamUnsigned must fit a RamDomain cell");

/// Reinterprets the bits of one RAM value type as another without
/// conversion. This is how float and unsigned attributes live inside
/// integer-only indexes.
template <typename To, typename From> inline To ramBitCast(From Value) {
  static_assert(sizeof(To) == sizeof(From), "bit-cast requires equal widths");
  To Result;
  std::memcpy(&Result, &Value, sizeof(To));
  return Result;
}

/// The largest tuple arity the pre-compiled index portfolio supports. The
/// paper observed arities up to 16 in practice; the factories enumerate
/// exactly this range (Fig 7).
inline constexpr std::size_t MaxArity = 16;

/// A fixed-arity tuple as used by the statically specialized code paths.
template <std::size_t Arity> using Tuple = std::array<RamDomain, Arity>;

/// A dynamically sized tuple as used by the de-specialized adapter layer.
using DynTuple = std::vector<RamDomain>;

} // namespace stird

#endif // STIRD_UTIL_RAMTYPES_H
