//===- util/SymbolTable.h - String interning --------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A symbol table interning strings to dense RamDomain ordinals so that
/// symbol attributes can live inside integer-only de-specialized indexes.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_UTIL_SYMBOLTABLE_H
#define STIRD_UTIL_SYMBOLTABLE_H

#include "util/RamTypes.h"

#include <cassert>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stird {

/// Bidirectional map between strings and their dense ordinals.
///
/// Ordinal order is insertion order, not lexicographic order; this is the
/// reason the paper notes that ordered range queries on symbol columns are
/// no longer meaningful after de-specialization (Section 3, step 2).
class SymbolTable {
public:
  /// Interns \p Symbol, returning its ordinal. Idempotent.
  RamDomain intern(std::string_view Symbol);

  /// Returns the ordinal of \p Symbol or -1 if it was never interned.
  RamDomain lookup(std::string_view Symbol) const;

  /// Returns the string for ordinal \p Index. \p Index must be valid.
  const std::string &resolve(RamDomain Index) const {
    assert(Index >= 0 && static_cast<std::size_t>(Index) < Symbols.size() &&
           "symbol ordinal out of range");
    return Symbols[static_cast<std::size_t>(Index)];
  }

  /// Returns true if \p Index denotes an interned symbol.
  bool contains(RamDomain Index) const {
    return Index >= 0 && static_cast<std::size_t>(Index) < Symbols.size();
  }

  /// Number of distinct interned symbols.
  std::size_t size() const { return Symbols.size(); }

private:
  std::vector<std::string> Symbols;
  std::unordered_map<std::string, RamDomain> Ordinals;
};

} // namespace stird

#endif // STIRD_UTIL_SYMBOLTABLE_H
