//===- util/SymbolTable.h - String interning --------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A symbol table interning strings to dense RamDomain ordinals so that
/// symbol attributes can live inside integer-only de-specialized indexes.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_UTIL_SYMBOLTABLE_H
#define STIRD_UTIL_SYMBOLTABLE_H

#include "util/RamTypes.h"

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace stird {

/// Bidirectional map between strings and their dense ordinals.
///
/// Ordinal order is insertion order, not lexicographic order; this is the
/// reason the paper notes that ordered range queries on symbol columns are
/// no longer meaningful after de-specialization (Section 3, step 2).
///
/// The table is safe for concurrent lookup-or-insert: parallel partition
/// workers intern through the string functors (`cat`/`substr`/`to_string`)
/// while other workers resolve ordinals back to strings. The scheme is
/// read-mostly:
///
///  * The string -> ordinal direction is sharded: NumShards hash maps,
///    each under its own shared_mutex. A hit takes only the shard's
///    shared lock; a miss upgrades to the shard's exclusive lock.
///  * The ordinal -> string direction is an append-only chunked array
///    (chunk k holds 1024 << k strings, published through an atomic
///    pointer), so resolve() is lock-free and the returned reference is
///    stable forever: chunks never move or reallocate.
///  * Ordinal assignment is serialized by a single append mutex, acquired
///    only on the insert-miss path, so ordinals stay dense. Which thread
///    wins an ordinal depends on the interleaving: ordinals interned
///    concurrently are *thread-order-dependent* across runs (but stable
///    within one run, and identical whenever interning happens on one
///    thread — e.g. fact loading, or any -j1 run).
class SymbolTable {
public:
  SymbolTable() = default;
  ~SymbolTable();

  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Interns \p Symbol, returning its ordinal. Idempotent. Thread-safe.
  RamDomain intern(std::string_view Symbol);

  /// Returns the ordinal of \p Symbol or -1 if it was never interned.
  /// Thread-safe.
  RamDomain lookup(std::string_view Symbol) const;

  /// Returns the string for ordinal \p Index. \p Index must be valid.
  /// Thread-safe and lock-free; the reference stays valid for the table's
  /// lifetime. Safe for any ordinal obtained from intern()/lookup() on any
  /// thread (the shard lock orders the slot write before the ordinal is
  /// observable) or published across a pool barrier.
  const std::string &resolve(RamDomain Index) const {
    assert(Index >= 0 && static_cast<std::size_t>(Index) <
                             NumSymbols.load(std::memory_order_acquire) &&
           "symbol ordinal out of range");
    const std::size_t I = static_cast<std::size_t>(Index);
    const std::size_t Bucket = bucketOf(I);
    const std::string *Chunk =
        Chunks[Bucket].load(std::memory_order_acquire);
    return Chunk[I - firstOrdinalOf(Bucket)];
  }

  /// Returns true if \p Index denotes an interned symbol. Thread-safe.
  bool contains(RamDomain Index) const {
    return Index >= 0 && static_cast<std::size_t>(Index) <
                             NumSymbols.load(std::memory_order_acquire);
  }

  /// Number of distinct interned symbols. Thread-safe.
  std::size_t size() const {
    return NumSymbols.load(std::memory_order_acquire);
  }

private:
  /// Chunk 0 holds 1024 strings, chunk k holds 1024 << k; 22 chunks cover
  /// the whole non-negative RamDomain ordinal range.
  static constexpr std::size_t FirstChunkSize = 1024;
  static constexpr std::size_t NumChunks = 22;
  static constexpr std::size_t NumShards = 16;

  /// The chunk an ordinal lives in: ordinals [1024*(2^k - 1), 1024*(2^(k+1)
  /// - 1)) map to chunk k.
  static std::size_t bucketOf(std::size_t Ordinal) {
    return std::bit_width(Ordinal / FirstChunkSize + 1) - 1;
  }
  static std::size_t firstOrdinalOf(std::size_t Bucket) {
    return ((FirstChunkSize << Bucket) - FirstChunkSize);
  }

  struct Shard {
    mutable std::shared_mutex M;
    /// Keys view the stable chunk storage, so no second copy is held.
    std::unordered_map<std::string_view, RamDomain> Ordinals;
  };

  Shard &shardFor(std::string_view Symbol) {
    return Shards[std::hash<std::string_view>{}(Symbol) % NumShards];
  }
  const Shard &shardFor(std::string_view Symbol) const {
    return const_cast<SymbolTable *>(this)->shardFor(Symbol);
  }

  /// Appends \p Symbol to the chunked storage and returns its ordinal.
  /// Caller must hold AppendM.
  RamDomain appendLocked(std::string_view Symbol);

  std::array<Shard, NumShards> Shards;
  std::array<std::atomic<std::string *>, NumChunks> Chunks{};
  /// Serializes ordinal assignment (insert-miss path only).
  std::mutex AppendM;
  std::atomic<std::size_t> NumSymbols{0};
};

} // namespace stird

#endif // STIRD_UTIL_SYMBOLTABLE_H
