//===- util/SymbolTable.cpp - String interning ----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/SymbolTable.h"

using namespace stird;

RamDomain SymbolTable::intern(std::string_view Symbol) {
  auto It = Ordinals.find(std::string(Symbol));
  if (It != Ordinals.end())
    return It->second;
  RamDomain Ordinal = static_cast<RamDomain>(Symbols.size());
  Symbols.emplace_back(Symbol);
  Ordinals.emplace(Symbols.back(), Ordinal);
  return Ordinal;
}

RamDomain SymbolTable::lookup(std::string_view Symbol) const {
  auto It = Ordinals.find(std::string(Symbol));
  return It == Ordinals.end() ? -1 : It->second;
}
