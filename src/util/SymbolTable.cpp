//===- util/SymbolTable.cpp - String interning ----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "util/SymbolTable.h"

using namespace stird;

SymbolTable::~SymbolTable() {
  for (auto &Chunk : Chunks)
    delete[] Chunk.load(std::memory_order_relaxed);
}

RamDomain SymbolTable::appendLocked(std::string_view Symbol) {
  const std::size_t I = NumSymbols.load(std::memory_order_relaxed);
  const std::size_t Bucket = bucketOf(I);
  std::string *Chunk = Chunks[Bucket].load(std::memory_order_relaxed);
  if (!Chunk) {
    Chunk = new std::string[FirstChunkSize << Bucket];
    Chunks[Bucket].store(Chunk, std::memory_order_release);
  }
  Chunk[I - firstOrdinalOf(Bucket)] = Symbol;
  // Release-publish the slot: any thread that acquires a count > I (via
  // size()/contains()/the resolve assert) also sees the string.
  NumSymbols.store(I + 1, std::memory_order_release);
  return static_cast<RamDomain>(I);
}

RamDomain SymbolTable::intern(std::string_view Symbol) {
  Shard &S = shardFor(Symbol);
  {
    std::shared_lock<std::shared_mutex> Lock(S.M);
    auto It = S.Ordinals.find(Symbol);
    if (It != S.Ordinals.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(S.M);
  // Re-check: another thread may have interned it between the locks.
  auto It = S.Ordinals.find(Symbol);
  if (It != S.Ordinals.end())
    return It->second;
  RamDomain Ordinal;
  std::string_view Stored;
  {
    std::lock_guard<std::mutex> AppendLock(AppendM);
    Ordinal = appendLocked(Symbol);
    Stored = resolve(Ordinal);
  }
  S.Ordinals.emplace(Stored, Ordinal);
  return Ordinal;
}

RamDomain SymbolTable::lookup(std::string_view Symbol) const {
  const Shard &S = shardFor(Symbol);
  std::shared_lock<std::shared_mutex> Lock(S.M);
  auto It = S.Ordinals.find(Symbol);
  return It == S.Ordinals.end() ? -1 : It->second;
}
