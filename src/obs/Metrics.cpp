//===- obs/Metrics.cpp - Prometheus text exposition writer ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cinttypes>
#include <cstdio>

namespace stird::obs::prom {

std::string escapeLabelValue(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

namespace {

void appendLabels(std::string &Out, const Labels &L) {
  if (L.empty())
    return;
  Out += '{';
  bool First = true;
  for (const auto &[Name, Value] : L) {
    if (!First)
      Out += ',';
    First = false;
    Out += Name;
    Out += "=\"";
    Out += escapeLabelValue(Value);
    Out += '"';
  }
  Out += '}';
}

void appendNumber(std::string &Out, double Value) {
  char Buf[64];
  // %.17g round-trips doubles; integral values render without a point.
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  Out += Buf;
}

void appendNumber(std::string &Out, std::uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  Out += Buf;
}

} // namespace

void Writer::header(const std::string &Name, const std::string &Help,
                    const std::string &Type) {
  Out += "# HELP ";
  Out += Name;
  Out += ' ';
  Out += Help;
  Out += "\n# TYPE ";
  Out += Name;
  Out += ' ';
  Out += Type;
  Out += '\n';
}

void Writer::sample(const std::string &Name, const Labels &L,
                    double Value) {
  Out += Name;
  appendLabels(Out, L);
  Out += ' ';
  appendNumber(Out, Value);
  Out += '\n';
}

void Writer::sample(const std::string &Name, const Labels &L,
                    std::uint64_t Value) {
  Out += Name;
  appendLabels(Out, L);
  Out += ' ';
  appendNumber(Out, Value);
  Out += '\n';
}

void Writer::histogram(const std::string &Name, const Labels &L,
                       const Histogram &H) {
  const std::string BucketName = Name + "_bucket";
  std::uint64_t Cumulative = 0;
  for (std::size_t I = 0; I < Histogram::NumBuckets; ++I) {
    const std::uint64_t C = H.bucketCount(I);
    if (C == 0)
      continue;
    Cumulative += C;
    Labels WithLe = L;
    WithLe.emplace_back("le", std::to_string(Histogram::upperBound(I)));
    sample(BucketName, WithLe, Cumulative);
  }
  Labels Inf = L;
  Inf.emplace_back("le", "+Inf");
  sample(BucketName, Inf, H.count());
  sample(Name + "_sum", L, H.sum());
  sample(Name + "_count", L, H.count());
}

} // namespace stird::obs::prom
