//===- obs/Json.cpp - Minimal JSON value, writer and parser --------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stird::obs::json {

std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

void writeNumber(std::string &Out, double D) {
  // Integral values (the common case: counters, ids, microseconds) print
  // without a fractional part so documents stay compact and exact.
  if (std::isfinite(D) && D == std::floor(D) && std::fabs(D) < 1e18) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(D));
    Out += Buf;
    return;
  }
  if (!std::isfinite(D)) {
    Out += "null"; // JSON has no Inf/NaN.
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  Out += Buf;
}

void writeValue(std::string &Out, const Value &V, int Indent, int Depth) {
  auto newline = [&](int D) {
    if (Indent <= 0)
      return;
    Out += '\n';
    Out.append(static_cast<std::size_t>(Indent) * D, ' ');
  };
  if (V.isNull()) {
    Out += "null";
  } else if (V.isBool()) {
    Out += V.asBool() ? "true" : "false";
  } else if (V.isNumber()) {
    writeNumber(Out, V.asNumber());
  } else if (V.isString()) {
    Out += '"';
    Out += escape(V.asString());
    Out += '"';
  } else if (V.isRaw()) {
    Out += V.asRaw(); // already serialized; spliced verbatim
  } else if (V.isArray()) {
    const Array &A = V.asArray();
    if (A.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    bool First = true;
    for (const Value &E : A) {
      if (!First)
        Out += ',';
      First = false;
      newline(Depth + 1);
      writeValue(Out, E, Indent, Depth + 1);
    }
    newline(Depth);
    Out += ']';
  } else {
    const Object &O = V.asObject();
    if (O.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    bool First = true;
    for (const auto &[K, E] : O) {
      if (!First)
        Out += ',';
      First = false;
      newline(Depth + 1);
      Out += '"';
      Out += escape(K);
      Out += "\":";
      if (Indent > 0)
        Out += ' ';
      writeValue(Out, E, Indent, Depth + 1);
    }
    newline(Depth);
    Out += '}';
  }
}

/// Recursive-descent parser over the raw text.
class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<Value> run() {
    skipSpace();
    std::optional<Value> V = parseValue();
    if (!V)
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return V;
  }

private:
  const std::string &Text;
  std::string *Error;
  std::size_t Pos = 0;

  std::nullopt_t fail(const std::string &Message) {
    if (Error && Error->empty())
      *Error = Message + " at byte " + std::to_string(Pos);
    return std::nullopt;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    std::size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }

  std::optional<Value> parseValue() {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      return Value(std::move(*S));
    }
    if (literal("true"))
      return Value(true);
    if (literal("false"))
      return Value(false);
    if (literal("null"))
      return Value(nullptr);
    return parseNumber();
  }

  std::optional<Value> parseNumber() {
    std::size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    char *End = nullptr;
    const std::string Token = Text.substr(Start, Pos - Start);
    double D = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size())
      return fail("malformed number '" + Token + "'");
    return Value(D);
  }

  std::optional<std::string> parseString() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C == '\\') {
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else {
              fail("bad \\u escape digit");
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our own writers; pass them through as-is).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + E + "'");
          return std::nullopt;
        }
      } else {
        Out += C;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parseArray() {
    consume('[');
    Array A;
    skipSpace();
    if (consume(']'))
      return Value(std::move(A));
    while (true) {
      skipSpace();
      std::optional<Value> E = parseValue();
      if (!E)
        return std::nullopt;
      A.push_back(std::move(*E));
      skipSpace();
      if (consume(']'))
        return Value(std::move(A));
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  std::optional<Value> parseObject() {
    consume('{');
    Object O;
    skipSpace();
    if (consume('}'))
      return Value(std::move(O));
    while (true) {
      skipSpace();
      std::optional<std::string> Key = parseString();
      if (!Key)
        return std::nullopt;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipSpace();
      std::optional<Value> E = parseValue();
      if (!E)
        return std::nullopt;
      O.emplace_back(std::move(*Key), std::move(*E));
      skipSpace();
      if (consume('}'))
        return Value(std::move(O));
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }
};

} // namespace

std::string Value::dump(int Indent) const {
  std::string Out;
  writeValue(Out, *this, Indent, 0);
  if (Indent > 0)
    Out += '\n';
  return Out;
}

std::optional<Value> parse(const std::string &Text, std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).run();
}

} // namespace stird::obs::json
