//===- obs/SlowLog.h - Structured JSONL slow-query log ----------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's slow-query log: one compact JSON document per line
/// (JSONL) for every request whose total handling time reaches the
/// configured threshold. Each record is a finished RequestTrace's JSON —
/// tenant, relation, canonical pattern, chosen plan and per-span timings —
/// so a slow entry is directly diffable against sampled traces from the
/// `trace` stats member. Armed with `--slow-query-log=FILE
/// --slow-query-micros=N`; optional size-based rotation renames FILE to
/// FILE.1 and starts over.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_SLOWLOG_H
#define STIRD_OBS_SLOWLOG_H

#include "obs/Json.h"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

namespace stird::obs {

/// Append-only JSONL writer for slow requests. Writes happen off the hot
/// path (only for requests already past the threshold), under a mutex —
/// slow requests are rare by definition, so contention here is not a
/// concern the way the latency record path is.
class SlowQueryLog {
public:
  struct Options {
    std::string Path;
    /// Requests at or above this total handling time are logged.
    std::uint64_t ThresholdMicros = 10000;
    /// When > 0, rotate (Path -> Path + ".1") once the file exceeds this
    /// many bytes; at most one rotated generation is kept.
    std::uint64_t MaxBytes = 0;
  };

  SlowQueryLog() = default;

  /// Opens (appends to) the log file. Returns false when the file cannot
  /// be opened; the log stays disabled then.
  bool open(Options O);

  bool enabled() const { return Enabled; }
  std::uint64_t thresholdMicros() const { return Opts.ThresholdMicros; }
  std::uint64_t written() const {
    return Written.load(std::memory_order_relaxed);
  }

  /// Appends one record as a single line. No-op when disabled.
  void record(const json::Value &Entry);

private:
  void rotateLocked();

  Options Opts;
  bool Enabled = false;
  std::mutex Mutex;
  std::ofstream Out;
  std::uint64_t BytesWritten = 0;
  std::atomic<std::uint64_t> Written{0};
};

} // namespace stird::obs

#endif // STIRD_OBS_SLOWLOG_H
