//===- obs/Profile.h - Profile document builder and report ------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns an engine's observability state (hierarchical rule profiles +
/// per-relation counters) into the versioned JSON profile document
/// (see docs/profile-schema.md) and the human-readable text report of
/// `stird --profile`.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_PROFILE_H
#define STIRD_OBS_PROFILE_H

#include "obs/Json.h"

#include <cstdint>
#include <map>
#include <string>

namespace stird::interp {
class Engine;
} // namespace stird::interp

namespace stird::obs {

/// Run-level facts the engine itself doesn't know.
struct ProfileContext {
  /// Source program (file name or synthetic identifier).
  std::string Program;
  /// Executor name as reported on the CLI ("static-lambda", ...).
  std::string Backend;
  std::size_t Threads = 1;
  /// End-to-end run() wall time.
  double TotalSeconds = 0;
  /// Per-relation substrate decisions made at compile time (relation name →
  /// human-readable decision, e.g. "art (feedback: point-lookup-heavy)").
  /// Emitted under "substrate_decisions" when non-empty.
  std::map<std::string, std::string> SubstrateDecisions;
};

/// Current profile document schema identifier. v2 adds the access-pattern
/// counters (point_lookups, range_scans), the col0_min/col0_max key-density
/// signal and the substrate_decisions record; readers accept v1 documents
/// (the new fields simply default to "unknown").
inline constexpr const char *ProfileSchemaVersion = "stird-profile-v2";

/// Builds the full profile document: run header, stratum → rule →
/// iteration hierarchy, and the per-relation counter table. Call after
/// Engine::run() returned.
json::Value buildProfile(const interp::Engine &E, const ProfileContext &Ctx);

/// Renders the human text report: rules sorted by descending time with a
/// totals row, then the relation counter table. \p TopN > 0 truncates the
/// rule table to the N hottest rules.
std::string renderTextReport(const interp::Engine &E, std::size_t TopN = 0);

} // namespace stird::obs

#endif // STIRD_OBS_PROFILE_H
