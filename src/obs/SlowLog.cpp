//===- obs/SlowLog.cpp - Structured JSONL slow-query log ------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/SlowLog.h"

#include <cstdio>

namespace stird::obs {

bool SlowQueryLog::open(Options O) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Opts = std::move(O);
  Out.open(Opts.Path, std::ios::out | std::ios::app);
  Enabled = Out.is_open();
  if (Enabled) {
    Out.seekp(0, std::ios::end);
    const auto Pos = Out.tellp();
    BytesWritten = Pos > 0 ? static_cast<std::uint64_t>(Pos) : 0;
  }
  return Enabled;
}

void SlowQueryLog::rotateLocked() {
  Out.close();
  std::rename(Opts.Path.c_str(), (Opts.Path + ".1").c_str());
  Out.open(Opts.Path, std::ios::out | std::ios::trunc);
  Enabled = Out.is_open();
  BytesWritten = 0;
}

void SlowQueryLog::record(const json::Value &Entry) {
  if (!Enabled)
    return;
  const std::string Line = Entry.dump() + "\n";
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Enabled)
    return;
  if (Opts.MaxBytes != 0 && BytesWritten != 0 &&
      BytesWritten + Line.size() > Opts.MaxBytes)
    rotateLocked();
  if (!Enabled)
    return;
  Out << Line;
  Out.flush();
  BytesWritten += Line.size();
  Written.fetch_add(1, std::memory_order_relaxed);
}

} // namespace stird::obs
