//===- obs/Stats.h - Per-relation runtime counters --------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relation and index statistics of the observability layer. Every runtime
/// relation owns one RelationStats slot in a dense StatsBlock; the executors
/// bump plain (non-atomic) counters on the hot path. Thread safety comes
/// from ownership, not atomics: the main executor writes the engine's block,
/// each partition worker writes a private block, and the private blocks are
/// merged into the engine's block at the end-of-scan barrier — the same
/// point where TupleBuffer::flushAll applies the buffered inserts.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_STATS_H
#define STIRD_OBS_STATS_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace stird::obs {

/// Counters of one relation. All counts are totals over the whole run;
/// "reorders" counts de-specialized tuple reorder invocations (Order
/// encode/decode calls the interpreter had to perform at runtime because
/// static reordering was off or a key had to be permuted into index order).
struct RelationStats {
  /// insert() attempts (projections and buffered worker inserts).
  std::uint64_t Inserts = 0;
  /// Inserts that actually grew the relation (deduplicated away otherwise).
  std::uint64_t InsertsNew = 0;
  /// Membership queries: existence checks and emptiness checks.
  std::uint64_t Contains = 0;
  /// Full-scan initiations.
  std::uint64_t Scans = 0;
  /// Tuples delivered by full scans.
  std::uint64_t ScanTuples = 0;
  /// Range-search (index scan / aggregate) initiations.
  std::uint64_t IndexScans = 0;
  /// Range searches that matched at least one tuple.
  std::uint64_t IndexScanHits = 0;
  /// Tuples delivered by range searches (the sum of all range sizes).
  std::uint64_t IndexScanTuples = 0;
  /// Runtime tuple/key reorder invocations (encode + decode).
  std::uint64_t Reorders = 0;
  /// Fully-bound probes: index searches and existence checks whose key
  /// binds every column (PrefixLen == arity). A subset of IndexScans +
  /// Contains; the substrate selector reads this as "hash-like" traffic.
  std::uint64_t PointLookups = 0;
  /// Bounded range searches: a proper non-empty prefix is bound
  /// (0 < PrefixLen < arity). Unbounded (mask-free) searches count in
  /// Scans/IndexScans only, so PointLookups + RangeScans <= IndexScans +
  /// Contains always holds.
  std::uint64_t RangeScans = 0;
  /// High-water cardinality observed at clear/swap/report points. Not
  /// merged additively: peaks combine by max.
  std::uint64_t PeakSize = 0;

  void notePeak(std::uint64_t Size) { PeakSize = std::max(PeakSize, Size); }

  void merge(const RelationStats &Other) {
    Inserts += Other.Inserts;
    InsertsNew += Other.InsertsNew;
    Contains += Other.Contains;
    Scans += Other.Scans;
    ScanTuples += Other.ScanTuples;
    IndexScans += Other.IndexScans;
    IndexScanHits += Other.IndexScanHits;
    IndexScanTuples += Other.IndexScanTuples;
    Reorders += Other.Reorders;
    PointLookups += Other.PointLookups;
    RangeScans += Other.RangeScans;
    PeakSize = std::max(PeakSize, Other.PeakSize);
  }
};

/// Classifies one key-bounded search initiation (index scan, existence
/// check or aggregate) for the substrate selector. \p Mask is the bound
/// source-column mask: a fully bound key is a point lookup, a partially
/// bound one a bounded range scan, and unbounded searches (Mask == 0) stay
/// in the plain Scans/IndexScans counters only. Called once per initiation
/// on the main thread, so the counts are thread-count-invariant.
inline void noteSearchPattern(RelationStats *RS, std::uint32_t Mask,
                              std::size_t Arity) {
  if (!RS || Mask == 0)
    return;
  std::size_t Bound = 0;
  for (std::uint32_t M = Mask; M; M &= M - 1)
    ++Bound;
  if (Bound >= Arity)
    ++RS->PointLookups;
  else
    ++RS->RangeScans;
}

/// One counter block: RelationStats indexed by the dense per-engine stats
/// id of each relation (RelationWrapper::getStatsId()).
using StatsBlock = std::vector<RelationStats>;

/// Merges a worker's private block into the engine block (barrier-side).
inline void mergeStats(StatsBlock &Into, const StatsBlock &From) {
  for (std::size_t I = 0; I < Into.size() && I < From.size(); ++I)
    Into[I].merge(From[I]);
}

} // namespace stird::obs

#endif // STIRD_OBS_STATS_H
