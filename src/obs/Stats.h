//===- obs/Stats.h - Per-relation runtime counters --------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relation and index statistics of the observability layer. Every runtime
/// relation owns one RelationStats slot in a dense StatsBlock; the executors
/// bump plain (non-atomic) counters on the hot path. Thread safety comes
/// from ownership, not atomics: the main executor writes the engine's block,
/// each partition worker writes a private block, and the private blocks are
/// merged into the engine's block at the end-of-scan barrier — the same
/// point where TupleBuffer::flushAll applies the buffered inserts.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_STATS_H
#define STIRD_OBS_STATS_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace stird::obs {

/// Counters of one relation. All counts are totals over the whole run;
/// "reorders" counts de-specialized tuple reorder invocations (Order
/// encode/decode calls the interpreter had to perform at runtime because
/// static reordering was off or a key had to be permuted into index order).
struct RelationStats {
  /// insert() attempts (projections and buffered worker inserts).
  std::uint64_t Inserts = 0;
  /// Inserts that actually grew the relation (deduplicated away otherwise).
  std::uint64_t InsertsNew = 0;
  /// Membership queries: existence checks and emptiness checks.
  std::uint64_t Contains = 0;
  /// Full-scan initiations.
  std::uint64_t Scans = 0;
  /// Tuples delivered by full scans.
  std::uint64_t ScanTuples = 0;
  /// Range-search (index scan / aggregate) initiations.
  std::uint64_t IndexScans = 0;
  /// Range searches that matched at least one tuple.
  std::uint64_t IndexScanHits = 0;
  /// Tuples delivered by range searches (the sum of all range sizes).
  std::uint64_t IndexScanTuples = 0;
  /// Runtime tuple/key reorder invocations (encode + decode).
  std::uint64_t Reorders = 0;
  /// High-water cardinality observed at clear/swap/report points. Not
  /// merged additively: peaks combine by max.
  std::uint64_t PeakSize = 0;

  void notePeak(std::uint64_t Size) { PeakSize = std::max(PeakSize, Size); }

  void merge(const RelationStats &Other) {
    Inserts += Other.Inserts;
    InsertsNew += Other.InsertsNew;
    Contains += Other.Contains;
    Scans += Other.Scans;
    ScanTuples += Other.ScanTuples;
    IndexScans += Other.IndexScans;
    IndexScanHits += Other.IndexScanHits;
    IndexScanTuples += Other.IndexScanTuples;
    Reorders += Other.Reorders;
    PeakSize = std::max(PeakSize, Other.PeakSize);
  }
};

/// One counter block: RelationStats indexed by the dense per-engine stats
/// id of each relation (RelationWrapper::getStatsId()).
using StatsBlock = std::vector<RelationStats>;

/// Merges a worker's private block into the engine block (barrier-side).
inline void mergeStats(StatsBlock &Into, const StatsBlock &From) {
  for (std::size_t I = 0; I < Into.size() && I < From.size(); ++I)
    Into[I].merge(From[I]);
}

} // namespace stird::obs

#endif // STIRD_OBS_STATS_H
