//===- obs/Trace.h - Chrome trace-event recorder ----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records execution spans in the Chrome about:tracing / Perfetto
/// trace-event format. The main thread records directly into the shared
/// event list; morsel and rule jobs fill private per-job buffers that the
/// main thread appends at the job barrier, so recording never races.
/// Track (tid) convention: tid is the scheduler slot that executed the
/// job — 0 for the main (submitting) thread, I+1 for scheduler worker I.
/// Under work-stealing the same morsel index can land on different tracks
/// from run to run; the *set* of spans and their tuple counts stay
/// deterministic, only the track assignment varies.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_TRACE_H
#define STIRD_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace stird::obs {

/// One trace-event record. Phase follows the Chrome trace format: 'B'
/// begins a span, 'E' ends the innermost open span on the same track.
struct TraceEvent {
  std::string Name;
  char Phase = 'B';
  std::uint64_t TsMicros = 0;
  std::uint64_t Tid = 0;
  /// Pre-rendered JSON object text for the "args" member, or empty.
  std::string ArgsJson;
};

/// Collects trace events for one engine run and renders them as Chrome
/// trace-event JSON. begin()/end()/instant() are main-thread only; worker
/// threads build their own std::vector<TraceEvent> (stamping times via the
/// thread-safe now()) and hand it to append() from the main thread at the
/// partition barrier.
class TraceRecorder {
public:
  TraceRecorder() : Epoch(std::chrono::steady_clock::now()) {}

  /// Microseconds since the recorder was created. Thread-safe.
  std::uint64_t now() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Opens a span on track \p Tid. Main thread only.
  void begin(std::string Name, std::uint64_t Tid = 0,
             std::string ArgsJson = {}) {
    Events.push_back(
        {std::move(Name), 'B', now(), Tid, std::move(ArgsJson)});
  }

  /// Closes the innermost span on track \p Tid. Main thread only.
  void end(std::uint64_t Tid = 0) {
    Events.push_back({std::string(), 'E', now(), Tid, std::string()});
  }

  /// Appends worker-recorded events. Main thread only (barrier-side).
  void append(std::vector<TraceEvent> Buffer) {
    Events.insert(Events.end(),
                  std::make_move_iterator(Buffer.begin()),
                  std::make_move_iterator(Buffer.end()));
  }

  std::size_t size() const { return Events.size(); }

  /// Renders the full document: {"traceEvents": [...]} with thread-name
  /// metadata for every track seen, events stable-sorted by timestamp.
  std::string toJson() const;

private:
  std::chrono::steady_clock::time_point Epoch;
  std::vector<TraceEvent> Events;
};

} // namespace stird::obs

#endif // STIRD_OBS_TRACE_H
