//===- obs/RequestTrace.h - Per-request lifecycle tracing -------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request lifecycle tracing for the serving layer: one RequestTrace
/// follows a request from the byte that completed its frame to the byte
/// that flushed its reply, stamping a span per stage (frame decode →
/// per-connection FIFO wait → scheduler queue wait → parse → plan → cache
/// lookup → eval → serialize → socket write) plus execution metadata
/// (tenant, relation, canonical pattern, chosen plan, which scheduler
/// slot ran the job and whether the job was stolen).
///
/// RequestTraceSink decides which requests get a trace (1-in-N sampling,
/// or all of them when a slow-query threshold is armed — a slow request
/// must already have been traced by the time it turns out slow) and what
/// happens to finished ones: sampled and slow traces are retained in a
/// bounded ring exposed through the `trace` stats member, converted to
/// Chrome trace events for `--trace-out`, and slow ones are handed to the
/// slow-query log.
///
/// Threading: a RequestTrace is owned by exactly one thread at a time and
/// handed off with the request itself (event loop → worker → event loop),
/// so stamping is unsynchronized; only the sink's counters and ring are
/// shared and locked.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_REQUESTTRACE_H
#define STIRD_OBS_REQUESTTRACE_H

#include "obs/Json.h"
#include "obs/Trace.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stird::obs {

/// The lifecycle stages a request passes through, in order. Every stage is
/// optional (an error reply never reaches Eval; a cache hit skips it).
enum class RequestStage : unsigned {
  /// Reassembling the frame from socket reads.
  Decode,
  /// Parked in the connection's FIFO behind earlier in-flight requests.
  Pending,
  /// Waiting in the scheduler between submit and job start.
  Queue,
  /// JSON parse + request validation.
  Parse,
  /// Index selection for the query pattern.
  Plan,
  /// Query-cache probe.
  Cache,
  /// Scan/filter/render (or load application).
  Eval,
  /// Rendering + framing the reply document.
  Serialize,
  /// From reply release to the bytes reaching the socket.
  Write,
};

constexpr unsigned NumRequestStages = 9;

/// Stage name as it appears in JSON and Chrome traces ("decode", ...).
const char *requestStageName(RequestStage Stage);

/// Microseconds on a process-wide steady clock (anchored the first time
/// any trace code asks). One shared base means spans stamped on the event
/// loop and on workers are mutually comparable and feed one Chrome
/// timeline without threading a clock through every layer.
std::uint64_t traceClockMicros();

/// One request's lifecycle record. Timestamps come from
/// traceClockMicros().
class RequestTrace {
public:
  RequestTrace(std::uint64_t Seq, bool Sampled)
      : Seq(Seq), Sampled(Sampled) {}

  /// Opens \p Stage now (or at \p NowMicros). Reopening a stage restarts
  /// it.
  void beginStage(RequestStage Stage) {
    beginStage(Stage, traceClockMicros());
  }
  void beginStage(RequestStage Stage, std::uint64_t NowMicros) {
    Spans[unsigned(Stage)].Begin = NowMicros;
    Spans[unsigned(Stage)].Used = true;
  }

  /// Closes \p Stage.
  void endStage(RequestStage Stage) { endStage(Stage, traceClockMicros()); }
  void endStage(RequestStage Stage, std::uint64_t NowMicros) {
    Spans[unsigned(Stage)].End = NowMicros;
  }

  /// Total handling time so far: from the earliest span begin to the
  /// latest span end.
  std::uint64_t totalMicros() const;

  std::uint64_t stageMicros(RequestStage Stage) const {
    const Span &S = Spans[unsigned(Stage)];
    return (S.Used && S.End >= S.Begin) ? S.End - S.Begin : 0;
  }
  bool stageUsed(RequestStage Stage) const {
    return Spans[unsigned(Stage)].Used;
  }

  bool sampled() const { return Sampled; }
  std::uint64_t seq() const { return Seq; }

  // Execution metadata, stamped where it becomes known.
  std::string Command;
  std::string Tenant;
  std::string Relation;
  /// Canonical pattern key, e.g. "[12,null]".
  std::string PatternKey;
  bool Cached = false;
  bool Ok = true;
  /// Plan fields (queries only).
  std::uint64_t PlanIndex = 0, PlanPrefixLen = 0, PlanResidual = 0;
  bool HasPlan = false;
  /// Scheduler slot that executed the job (0 = inline on the caller).
  std::uint64_t ExecSlot = 0;
  /// How the executing worker got the job: "inline", "own", "injected",
  /// "stolen".
  std::string Source;

  /// The full record: seq, command, tenant, metadata, total_micros and a
  /// "spans" object of per-stage micros (used stages only).
  json::Value toJson() const;

  /// Chrome trace events for the used stages, one 'B'/'E' pair each, on
  /// track \p Tid, timestamped on the sink clock.
  std::vector<TraceEvent> chromeEvents(std::uint64_t Tid) const;

private:
  struct Span {
    std::uint64_t Begin = 0;
    std::uint64_t End = 0;
    bool Used = false;
  };

  std::uint64_t Seq;
  bool Sampled;
  Span Spans[NumRequestStages];
};

/// RAII stage guard: begins \p Stage on construction, ends it on
/// destruction. Null-trace safe, so call sites stay unconditional.
class StageScope {
public:
  StageScope(RequestTrace *Trace, RequestStage Stage)
      : Trace(Trace), Stage(Stage) {
    if (Trace)
      Trace->beginStage(Stage);
  }
  ~StageScope() {
    if (Trace)
      Trace->endStage(Stage);
  }
  StageScope(const StageScope &) = delete;
  StageScope &operator=(const StageScope &) = delete;

private:
  RequestTrace *Trace;
  RequestStage Stage;
};

/// Decides which requests get traces and collects the finished ones.
class RequestTraceSink {
public:
  struct Options {
    /// Trace every Nth request; 0 disables sampling.
    std::uint64_t SampleEvery = 0;
    /// When armed, requests at or above SlowMicros total are retained
    /// (and counted slow) even when not sampled. The flag is separate so
    /// a threshold of 0 means "every request is slow" rather than "off".
    bool SlowArmed = false;
    std::uint64_t SlowMicros = 0;
    /// Retained-trace ring size.
    std::size_t Capacity = 64;
    /// Upper bound on accumulated Chrome events (≈9 spans → 18 events per
    /// retained trace); older events are dropped first.
    std::size_t MaxChromeEvents = 1 << 16;
  };

  RequestTraceSink() = default;
  explicit RequestTraceSink(Options O) : Opts(O) {}

  /// Replaces the options. Call before traffic starts; not synchronized
  /// against concurrent begin()/finish().
  void configure(Options O) { Opts = O; }

  bool enabled() const { return Opts.SampleEvery != 0 || Opts.SlowArmed; }
  const Options &options() const { return Opts; }

  /// Microseconds on the shared trace clock (traceClockMicros()).
  std::uint64_t now() const { return traceClockMicros(); }

  /// Starts a trace for the request numbered \p Seq, or null when tracing
  /// is disabled. The trace is marked sampled on every SampleEvery-th
  /// call; unsampled traces still exist while a slow threshold is armed,
  /// since slowness is only known at finish().
  std::unique_ptr<RequestTrace> begin(std::uint64_t Seq);

  /// Consumes a finished trace: counts it, retains it in the ring when
  /// sampled or slow, accumulates its Chrome events, and returns true
  /// when the request was slow (the caller feeds the slow-query log).
  bool finish(std::unique_ptr<RequestTrace> Trace);

  /// {"started","sampled","retained","slow","sample_every",
  ///  "slow_micros","recent":[...]} — the stats `trace` member.
  json::Value statsJson() const;

  /// Moves the accumulated Chrome events out (for --trace-out).
  std::vector<TraceEvent> drainChrome();

  std::uint64_t started() const {
    return Started.load(std::memory_order_relaxed);
  }
  std::uint64_t sampledCount() const {
    return SampledN.load(std::memory_order_relaxed);
  }
  std::uint64_t retainedCount() const {
    return Retained.load(std::memory_order_relaxed);
  }
  std::uint64_t slowCount() const {
    return Slow.load(std::memory_order_relaxed);
  }

private:
  Options Opts;
  std::atomic<std::uint64_t> Started{0};
  std::atomic<std::uint64_t> SampledN{0};
  std::atomic<std::uint64_t> Retained{0};
  std::atomic<std::uint64_t> Slow{0};
  std::atomic<std::uint64_t> SampleCounter{0};

  mutable std::mutex Mutex;
  /// Most recent retained traces, oldest first.
  std::deque<json::Value> Recent;
  std::vector<TraceEvent> Chrome;
};

} // namespace stird::obs

#endif // STIRD_OBS_REQUESTTRACE_H
