//===- obs/Metrics.h - Prometheus text exposition writer --------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A writer for the Prometheus text exposition format (version 0.0.4):
/// `# HELP` / `# TYPE` headers, label escaping, and histogram emission as
/// cumulative `_bucket{le="..."}` samples plus `_sum` and `_count`. The
/// serving layer renders one document per scrape of `--metrics-port` (and
/// per `metrics` wire command); docs/metrics.md lists every metric stird
/// exposes through it.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_METRICS_H
#define STIRD_OBS_METRICS_H

#include "obs/Histogram.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stird::obs::prom {

/// One metric label, rendered as name="escaped value".
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// Escapes \p S as a Prometheus label value: backslash, double quote and
/// newline get backslash escapes (the format's only three).
std::string escapeLabelValue(const std::string &S);

/// Accumulates one exposition document. Usage per metric family: header()
/// once, then any number of sample()/histogram() calls for that family.
class Writer {
public:
  /// Emits the `# HELP` and `# TYPE` lines. \p Type is "counter",
  /// "gauge" or "histogram".
  void header(const std::string &Name, const std::string &Help,
              const std::string &Type);

  /// Emits `name{labels} value`.
  void sample(const std::string &Name, const Labels &L, double Value);
  void sample(const std::string &Name, const Labels &L,
              std::uint64_t Value);

  /// Emits \p H as cumulative buckets: one `name_bucket{...,le="U"}` line
  /// per non-empty histogram bucket (U = the bucket's inclusive upper
  /// bound) plus the mandatory `le="+Inf"` line, then `name_sum` and
  /// `name_count`. Only occupied buckets are listed — cumulative counts
  /// make the skipped empty ones implicit.
  void histogram(const std::string &Name, const Labels &L,
                 const Histogram &H);

  const std::string &text() const { return Out; }

private:
  std::string Out;
};

} // namespace stird::obs::prom

#endif // STIRD_OBS_METRICS_H
