//===- obs/Trace.cpp - Chrome trace-event recorder -----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <algorithm>
#include <set>

namespace stird::obs {

std::string TraceRecorder::toJson() const {
  // Chrome's trace viewer tolerates out-of-order events but Perfetto's
  // importer is happier with sorted streams; a stable sort keeps the B/E
  // nesting of equal-timestamp events intact.
  std::vector<const TraceEvent *> Sorted;
  Sorted.reserve(Events.size());
  std::set<std::uint64_t> Tids;
  for (const TraceEvent &E : Events) {
    Sorted.push_back(&E);
    Tids.insert(E.Tid);
  }
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const TraceEvent *A, const TraceEvent *B) {
                     return A->TsMicros < B->TsMicros;
                   });

  std::string Out;
  Out.reserve(Events.size() * 96 + 256);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto comma = [&] {
    if (!First)
      Out += ",\n";
    else
      Out += "\n";
    First = false;
  };

  // Process/thread name metadata so Perfetto labels the tracks.
  comma();
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"stird\"}}";
  for (std::uint64_t Tid : Tids) {
    comma();
    std::string ThreadName =
        Tid == 0 ? "main" : "worker " + std::to_string(Tid - 1);
    Out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(Tid) + ",\"args\":{\"name\":\"" +
           json::escape(ThreadName) + "\"}}";
  }

  for (const TraceEvent *E : Sorted) {
    comma();
    Out += "{\"ph\":\"";
    Out += E->Phase;
    Out += "\",\"pid\":1,\"tid\":" + std::to_string(E->Tid) +
           ",\"ts\":" + std::to_string(E->TsMicros);
    if (E->Phase != 'E') {
      Out += ",\"name\":\"" + json::escape(E->Name) + "\"";
      Out += ",\"cat\":\"stird\"";
      if (!E->ArgsJson.empty())
        Out += ",\"args\":" + E->ArgsJson;
    }
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

} // namespace stird::obs
