//===- obs/Serve.cpp - Serving-layer observability -----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/Serve.h"

using namespace stird;
using namespace stird::obs;

json::Value LatencySummary::toJson() const {
  json::Object O;
  O.emplace_back("count", Count);
  O.emplace_back("total_micros", TotalMicros);
  O.emplace_back("min_micros", MinMicros);
  O.emplace_back("max_micros", MaxMicros);
  O.emplace_back("mean_micros",
                 Count == 0 ? 0.0
                            : static_cast<double>(TotalMicros) /
                                  static_cast<double>(Count));
  return json::Value(std::move(O));
}

LatencyAggregator::~LatencyAggregator() {
  const std::size_t N = NumEntries.load(std::memory_order_acquire);
  for (std::size_t I = 0; I < N; ++I)
    delete Entries[I].load(std::memory_order_acquire);
}

LatencyAggregator::Entry &
LatencyAggregator::entryFor(const std::string &Command) {
  // Entries are append-only and their names immutable once published, so
  // the steady-state lookup is a lock-free scan of a (tiny) prefix.
  std::size_t N = NumEntries.load(std::memory_order_acquire);
  for (std::size_t I = 0; I < N; ++I) {
    Entry *E = Entries[I].load(std::memory_order_acquire);
    if (E->Name == Command)
      return *E;
  }
  std::lock_guard<std::mutex> Lock(GrowMutex);
  N = NumEntries.load(std::memory_order_acquire);
  for (std::size_t I = 0; I < N; ++I) {
    Entry *E = Entries[I].load(std::memory_order_acquire);
    if (E->Name == Command)
      return *E;
  }
  if (N == MaxCommands) {
    // Table full: everything else folds into the last slot, registered
    // as "(other)" the first time this happens.
    Entry *Last = Entries[MaxCommands - 1].load(std::memory_order_acquire);
    return *Last;
  }
  Entry *E = new Entry();
  E->Name = (N == MaxCommands - 1 && Command != "(other)")
                ? std::string("(other)")
                : Command;
  Entries[N].store(E, std::memory_order_release);
  NumEntries.store(N + 1, std::memory_order_release);
  return *E;
}

void LatencyAggregator::record(const std::string &Command,
                               std::uint64_t Micros) {
  entryFor(Command).Hist.record(Micros);
}

std::vector<std::pair<std::string, Histogram>>
LatencyAggregator::snapshot() const {
  std::vector<std::pair<std::string, Histogram>> Out;
  const std::size_t N = NumEntries.load(std::memory_order_acquire);
  for (std::size_t I = 0; I < N; ++I) {
    const Entry *E = Entries[I].load(std::memory_order_acquire);
    Out.emplace_back(E->Name, E->Hist.merged());
  }
  return Out;
}

Histogram LatencyAggregator::merged(const std::string &Command) const {
  const std::size_t N = NumEntries.load(std::memory_order_acquire);
  for (std::size_t I = 0; I < N; ++I) {
    const Entry *E = Entries[I].load(std::memory_order_acquire);
    if (E->Name == Command)
      return E->Hist.merged();
  }
  return Histogram();
}

json::Value LatencyAggregator::toJson() const {
  json::Object O;
  for (auto &[Name, Hist] : snapshot())
    O.emplace_back(Name, Hist.toJson());
  return json::Value(std::move(O));
}

json::Value ServeCounters::toJson() const {
  json::Object O;
  O.emplace_back("connections_accepted",
                 ConnectionsAccepted.load(std::memory_order_relaxed));
  O.emplace_back("connections_closed",
                 ConnectionsClosed.load(std::memory_order_relaxed));
  O.emplace_back("connections_rejected",
                 ConnectionsRejected.load(std::memory_order_relaxed));
  O.emplace_back("frames_in", FramesIn.load(std::memory_order_relaxed));
  O.emplace_back("frames_out", FramesOut.load(std::memory_order_relaxed));
  O.emplace_back("requests_dispatched",
                 RequestsDispatched.load(std::memory_order_relaxed));
  O.emplace_back("requests_overloaded",
                 RequestsOverloaded.load(std::memory_order_relaxed));
  O.emplace_back("protocol_errors",
                 ProtocolErrors.load(std::memory_order_relaxed));
  O.emplace_back("metrics_scrapes",
                 MetricsScrapes.load(std::memory_order_relaxed));
  return json::Value(std::move(O));
}

json::Value obs::relationStatsJson(const RelationStats &Stats) {
  // Key names match the stird-profile-v2 relation records.
  json::Object O;
  O.emplace_back("peak_size", Stats.PeakSize);
  O.emplace_back("inserts", Stats.Inserts);
  O.emplace_back("inserts_new", Stats.InsertsNew);
  O.emplace_back("contains", Stats.Contains);
  O.emplace_back("scans", Stats.Scans);
  O.emplace_back("scan_tuples", Stats.ScanTuples);
  O.emplace_back("index_scans", Stats.IndexScans);
  O.emplace_back("index_scan_hits", Stats.IndexScanHits);
  O.emplace_back("index_scan_tuples", Stats.IndexScanTuples);
  O.emplace_back("reorders", Stats.Reorders);
  O.emplace_back("point_lookups", Stats.PointLookups);
  O.emplace_back("range_scans", Stats.RangeScans);
  return json::Value(std::move(O));
}
