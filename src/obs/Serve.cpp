//===- obs/Serve.cpp - Serving-layer observability -----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/Serve.h"

using namespace stird;
using namespace stird::obs;

json::Value LatencySummary::toJson() const {
  json::Object O;
  O.emplace_back("count", Count);
  O.emplace_back("total_micros", TotalMicros);
  O.emplace_back("min_micros", MinMicros);
  O.emplace_back("max_micros", MaxMicros);
  O.emplace_back("mean_micros",
                 Count == 0 ? 0.0
                            : static_cast<double>(TotalMicros) /
                                  static_cast<double>(Count));
  return json::Value(std::move(O));
}

void LatencyAggregator::record(const std::string &Command,
                               std::uint64_t Micros) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, Summary] : Summaries)
    if (Name == Command) {
      Summary.record(Micros);
      return;
    }
  Summaries.emplace_back(Command, LatencySummary{});
  Summaries.back().second.record(Micros);
}

json::Value LatencyAggregator::toJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  json::Object O;
  for (const auto &[Name, Summary] : Summaries)
    O.emplace_back(Name, Summary.toJson());
  return json::Value(std::move(O));
}

json::Value ServeCounters::toJson() const {
  json::Object O;
  O.emplace_back("connections_accepted",
                 ConnectionsAccepted.load(std::memory_order_relaxed));
  O.emplace_back("connections_closed",
                 ConnectionsClosed.load(std::memory_order_relaxed));
  O.emplace_back("connections_rejected",
                 ConnectionsRejected.load(std::memory_order_relaxed));
  O.emplace_back("frames_in", FramesIn.load(std::memory_order_relaxed));
  O.emplace_back("frames_out", FramesOut.load(std::memory_order_relaxed));
  O.emplace_back("requests_dispatched",
                 RequestsDispatched.load(std::memory_order_relaxed));
  O.emplace_back("requests_overloaded",
                 RequestsOverloaded.load(std::memory_order_relaxed));
  O.emplace_back("protocol_errors",
                 ProtocolErrors.load(std::memory_order_relaxed));
  return json::Value(std::move(O));
}

json::Value obs::relationStatsJson(const RelationStats &Stats) {
  // Key names match the stird-profile-v1 relation records.
  json::Object O;
  O.emplace_back("peak_size", Stats.PeakSize);
  O.emplace_back("inserts", Stats.Inserts);
  O.emplace_back("inserts_new", Stats.InsertsNew);
  O.emplace_back("contains", Stats.Contains);
  O.emplace_back("scans", Stats.Scans);
  O.emplace_back("scan_tuples", Stats.ScanTuples);
  O.emplace_back("index_scans", Stats.IndexScans);
  O.emplace_back("index_scan_hits", Stats.IndexScanHits);
  O.emplace_back("index_scan_tuples", Stats.IndexScanTuples);
  O.emplace_back("reorders", Stats.Reorders);
  return json::Value(std::move(O));
}
