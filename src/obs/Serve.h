//===- obs/Serve.h - Serving-layer observability ----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for resident serving sessions: per-command request-latency
/// aggregation and the JSON rendering of RelationStats counters, shared by
/// the stird-serve daemon's `stats` command and by tests. Documents follow
/// the versioned-schema convention of the other sinks (stird-profile-v2,
/// Chrome trace): see docs/wire-protocol.md for the schema.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_SERVE_H
#define STIRD_OBS_SERVE_H

#include "obs/Histogram.h"
#include "obs/Json.h"
#include "obs/Stats.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stird::obs {

/// Latency accumulator for one request kind. Retained as the
/// single-threaded convenience form (tests, ad hoc tooling); the serving
/// aggregator itself records into sharded histograms.
struct LatencySummary {
  std::uint64_t Count = 0;
  std::uint64_t TotalMicros = 0;
  std::uint64_t MinMicros = 0;
  std::uint64_t MaxMicros = 0;

  void record(std::uint64_t Micros) {
    MinMicros = Count == 0 ? Micros : std::min(MinMicros, Micros);
    MaxMicros = std::max(MaxMicros, Micros);
    ++Count;
    TotalMicros += Micros;
  }

  /// {"count":N,"total_micros":T,"min_micros":m,"max_micros":M,
  ///  "mean_micros":T/N} — the mean is a double, never truncated.
  json::Value toJson() const;
};

/// Per-command latency aggregation: the daemon records every request under
/// its command name; `stats` reports the totals. The record path is
/// lock-free: each command owns a ShardedHistogram (per-thread shards,
/// relaxed atomics), and the command table itself is an append-only array
/// of atomically published entries, so lookups never lock. The only mutex
/// guards first-seen command registration — at most one acquisition per
/// distinct command name over the process lifetime, never on the steady
/// state hot path.
class LatencyAggregator {
public:
  /// Distinct command names tracked individually; the protocol has four,
  /// so 16 leaves generous headroom. Excess names fold into "(other)".
  static constexpr std::size_t MaxCommands = 16;

  LatencyAggregator() = default;
  ~LatencyAggregator();
  LatencyAggregator(const LatencyAggregator &) = delete;
  LatencyAggregator &operator=(const LatencyAggregator &) = delete;

  void record(const std::string &Command, std::uint64_t Micros);

  /// One member per command seen, in first-seen order; each member is the
  /// merged histogram's JSON (LatencySummary-compatible keys plus
  /// p50/p90/p99/p999_micros).
  json::Value toJson() const;

  /// Merged per-command snapshot, first-seen order. Feeds the Prometheus
  /// renderer and bench-side agreement checks.
  std::vector<std::pair<std::string, Histogram>> snapshot() const;

  /// Merged histogram for one command; empty when the command was never
  /// recorded.
  Histogram merged(const std::string &Command) const;

private:
  struct Entry {
    std::string Name;
    ShardedHistogram Hist;
  };

  /// Finds or registers the entry for \p Command. Lock-free when the
  /// command is already registered.
  Entry &entryFor(const std::string &Command);

  std::array<std::atomic<Entry *>, MaxCommands> Entries{};
  std::atomic<std::size_t> NumEntries{0};
  std::mutex GrowMutex;
};

/// Renders one relation's counters as a JSON object (same key names as the
/// profile sink's relation records).
json::Value relationStatsJson(const RelationStats &Stats);

/// Event-loop counters of the serving front end, updated with relaxed
/// atomics from the accept/read/write path and the dispatch jobs. Reported
/// by the `stats` command's "server" object; every counter is monotonic.
struct ServeCounters {
  std::atomic<std::uint64_t> ConnectionsAccepted{0};
  std::atomic<std::uint64_t> ConnectionsClosed{0};
  /// Connections refused at accept time (MaxConnections admission).
  std::atomic<std::uint64_t> ConnectionsRejected{0};
  std::atomic<std::uint64_t> FramesIn{0};
  std::atomic<std::uint64_t> FramesOut{0};
  /// Requests dispatched to the scheduler pool.
  std::atomic<std::uint64_t> RequestsDispatched{0};
  /// Requests answered with an "overloaded" error (MaxInFlightTotal
  /// admission) instead of being dispatched.
  std::atomic<std::uint64_t> RequestsOverloaded{0};
  /// Framing violations (oversized lengths, garbage) that poisoned a
  /// connection.
  std::atomic<std::uint64_t> ProtocolErrors{0};
  /// Successful scrapes of the --metrics-port HTTP endpoint.
  std::atomic<std::uint64_t> MetricsScrapes{0};

  json::Value toJson() const;
};

} // namespace stird::obs

#endif // STIRD_OBS_SERVE_H
