//===- obs/Serve.h - Serving-layer observability ----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for resident serving sessions: per-command request-latency
/// aggregation and the JSON rendering of RelationStats counters, shared by
/// the stird-serve daemon's `stats` command and by tests. Documents follow
/// the versioned-schema convention of the other sinks (stird-profile-v1,
/// Chrome trace): see docs/wire-protocol.md for the schema.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_SERVE_H
#define STIRD_OBS_SERVE_H

#include "obs/Json.h"
#include "obs/Stats.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stird::obs {

/// Latency accumulator for one request kind.
struct LatencySummary {
  std::uint64_t Count = 0;
  std::uint64_t TotalMicros = 0;
  std::uint64_t MinMicros = 0;
  std::uint64_t MaxMicros = 0;

  void record(std::uint64_t Micros) {
    MinMicros = Count == 0 ? Micros : std::min(MinMicros, Micros);
    MaxMicros = std::max(MaxMicros, Micros);
    ++Count;
    TotalMicros += Micros;
  }

  /// {"count":N,"total_micros":T,"min_micros":m,"max_micros":M,
  ///  "mean_micros":T/N}.
  json::Value toJson() const;
};

/// Thread-safe per-command latency aggregation: the daemon records every
/// request under its command name; `stats` reports the totals.
class LatencyAggregator {
public:
  void record(const std::string &Command, std::uint64_t Micros);

  /// One member per command seen, in first-seen order.
  json::Value toJson() const;

private:
  mutable std::mutex Mutex;
  std::vector<std::pair<std::string, LatencySummary>> Summaries;
};

/// Renders one relation's counters as a JSON object (same key names as the
/// profile sink's relation records).
json::Value relationStatsJson(const RelationStats &Stats);

/// Event-loop counters of the serving front end, updated with relaxed
/// atomics from the accept/read/write path and the dispatch jobs. Reported
/// by the `stats` command's "server" object; every counter is monotonic.
struct ServeCounters {
  std::atomic<std::uint64_t> ConnectionsAccepted{0};
  std::atomic<std::uint64_t> ConnectionsClosed{0};
  /// Connections refused at accept time (MaxConnections admission).
  std::atomic<std::uint64_t> ConnectionsRejected{0};
  std::atomic<std::uint64_t> FramesIn{0};
  std::atomic<std::uint64_t> FramesOut{0};
  /// Requests dispatched to the scheduler pool.
  std::atomic<std::uint64_t> RequestsDispatched{0};
  /// Requests answered with an "overloaded" error (MaxInFlightTotal
  /// admission) instead of being dispatched.
  std::atomic<std::uint64_t> RequestsOverloaded{0};
  /// Framing violations (oversized lengths, garbage) that poisoned a
  /// connection.
  std::atomic<std::uint64_t> ProtocolErrors{0};

  json::Value toJson() const;
};

} // namespace stird::obs

#endif // STIRD_OBS_SERVE_H
