//===- obs/Histogram.h - Log-bucketed latency histograms --------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HdrHistogram-style log-linear histograms for serving telemetry: values
/// land in power-of-two buckets split into SubBucketCount linear
/// sub-buckets, so any recorded value is off by at most 1/SubBucketCount
/// (~3.1%) of itself and the whole range [0, 2^32) microseconds fits in a
/// few KB of counters. Three layers share the bucket geometry:
///
///  - Histogram: plain counters, single-writer. The merge target and the
///    form every reader consumes (quantiles, JSON, Prometheus buckets).
///  - AtomicHistogram: relaxed-atomic counters; record() never takes a
///    lock, so any number of threads may record concurrently.
///  - ShardedHistogram: NumShards AtomicHistograms indexed by a sticky
///    per-thread tag, so concurrent recorders do not even contend on
///    cache lines. Merged on read — the RelationStats idiom (per-worker
///    blocks, merge at the observation point) applied to latencies.
///
/// Quantiles are exact with respect to the bucket resolution: quantile(q)
/// returns the inclusive upper bound of the bucket holding the rank-q
/// value, so the true value is within one bucket (<= 1/32 relative error)
/// of the report, and a merged histogram reports exactly what a single
/// histogram fed the union of the samples would.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_HISTOGRAM_H
#define STIRD_OBS_HISTOGRAM_H

#include "obs/Json.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace stird::obs {

/// Shared bucket geometry. Values are clamped to MaxValue (2^32 - 1; in
/// microseconds that is ~71 minutes, far beyond any request latency).
struct HistogramBuckets {
  /// log2 of the linear sub-buckets per power-of-two range.
  static constexpr unsigned SubBucketBits = 5;
  static constexpr std::uint64_t SubBucketCount = std::uint64_t(1)
                                                  << SubBucketBits;
  static constexpr std::uint64_t MaxValue =
      (std::uint64_t(1) << 32) - 1;
  /// Highest exponent of a clamped value (bit 31) gives the last shift.
  static constexpr std::size_t NumBuckets =
      (31 - SubBucketBits + 2) * SubBucketCount;

  /// The bucket index of \p Value (clamped). Index order is value order.
  static std::size_t index(std::uint64_t Value) {
    if (Value > MaxValue)
      Value = MaxValue;
    if (Value < SubBucketCount)
      return static_cast<std::size_t>(Value);
    const unsigned Exp = 63 - static_cast<unsigned>(__builtin_clzll(Value));
    const unsigned Shift = Exp - SubBucketBits;
    const std::uint64_t Sub = (Value >> Shift) - SubBucketCount;
    return static_cast<std::size_t>((Shift + 1) * SubBucketCount + Sub);
  }

  /// Smallest value landing in bucket \p I.
  static std::uint64_t lowerBound(std::size_t I) {
    if (I < SubBucketCount)
      return I;
    const std::uint64_t Shift = I / SubBucketCount - 1;
    const std::uint64_t Sub = I % SubBucketCount;
    return (Sub + SubBucketCount) << Shift;
  }

  /// Largest value landing in bucket \p I (inclusive).
  static std::uint64_t upperBound(std::size_t I) {
    if (I < SubBucketCount)
      return I;
    const std::uint64_t Shift = I / SubBucketCount - 1;
    return lowerBound(I) + (std::uint64_t(1) << Shift) - 1;
  }
};

/// Plain (non-atomic) log-bucketed histogram: the single-writer and
/// merged-read form. Count/Sum/Min/Max are exact (not bucketized), so the
/// LatencySummary-compatible JSON fields stay exact after the swap.
class Histogram : public HistogramBuckets {
public:
  void record(std::uint64_t Value) {
    ++Counts[index(Value)];
    ++Count;
    Sum += Value;
    if (Value < Min)
      Min = Value;
    if (Value > Max)
      Max = Value;
  }

  void merge(const Histogram &Other) {
    for (std::size_t I = 0; I < NumBuckets; ++I)
      Counts[I] += Other.Counts[I];
    Count += Other.Count;
    Sum += Other.Sum;
    if (Other.Count != 0) {
      if (Other.Min < Min)
        Min = Other.Min;
      if (Other.Max > Max)
        Max = Other.Max;
    }
  }

  std::uint64_t count() const { return Count; }
  std::uint64_t sum() const { return Sum; }
  std::uint64_t min() const { return Count == 0 ? 0 : Min; }
  std::uint64_t max() const { return Max; }
  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }
  std::uint64_t bucketCount(std::size_t I) const { return Counts[I]; }

  /// The inclusive upper bound of the bucket holding the value of rank
  /// ceil(q * count) (nearest-rank); 0 on an empty histogram. Exact Min
  /// and Max tighten the extreme quantiles.
  std::uint64_t quantile(double Q) const;

  /// {"count","total_micros","min_micros","max_micros","mean_micros"} —
  /// the exact LatencySummary schema — plus "p50_micros", "p90_micros",
  /// "p99_micros" and "p999_micros".
  json::Value toJson() const;

private:
  friend class AtomicHistogram;

  std::uint64_t Count = 0;
  std::uint64_t Sum = 0;
  std::uint64_t Min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t Max = 0;
  std::array<std::uint64_t, NumBuckets> Counts{};
};

/// Lock-free recordable histogram: every member is a relaxed atomic, so
/// record() is a handful of uncontended-path fetch_adds (wait-free on the
/// bucket counters; Min/Max are bounded CAS loops that settle permanently
/// once the extremes are seen). Readers take a coherent-enough snapshot by
/// merging into a plain Histogram; a snapshot concurrent with writers may
/// split one in-flight record between Count and its bucket, which is the
/// usual (and harmless) monitoring race.
class AtomicHistogram : public HistogramBuckets {
public:
  AtomicHistogram() : Min(std::numeric_limits<std::uint64_t>::max()) {}

  void record(std::uint64_t Value) {
    Counts[index(Value)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
    std::uint64_t Seen = Min.load(std::memory_order_relaxed);
    while (Value < Seen &&
           !Min.compare_exchange_weak(Seen, Value,
                                      std::memory_order_relaxed)) {
    }
    Seen = Max.load(std::memory_order_relaxed);
    while (Value > Seen &&
           !Max.compare_exchange_weak(Seen, Value,
                                      std::memory_order_relaxed)) {
    }
  }

  /// Adds this histogram's contents into \p Out.
  void mergeInto(Histogram &Out) const;

private:
  std::atomic<std::uint64_t> Count{0};
  std::atomic<std::uint64_t> Sum{0};
  std::atomic<std::uint64_t> Min;
  std::atomic<std::uint64_t> Max{0};
  std::array<std::atomic<std::uint64_t>, NumBuckets> Counts{};
};

/// A sticky small integer identifying the calling thread, assigned on
/// first use. Sharding by (tag mod NumShards) keeps each worker on its own
/// shard's cache lines.
unsigned threadShardTag();

/// Per-thread-sharded histogram: record() touches only the caller's shard,
/// merged() folds every shard into one plain Histogram.
class ShardedHistogram {
public:
  static constexpr std::size_t NumShards = 8;

  void record(std::uint64_t Value) {
    Shards[threadShardTag() & (NumShards - 1)].record(Value);
  }

  Histogram merged() const {
    Histogram Out;
    for (const AtomicHistogram &Shard : Shards)
      Shard.mergeInto(Out);
    return Out;
  }

private:
  std::array<AtomicHistogram, NumShards> Shards;
};

} // namespace stird::obs

#endif // STIRD_OBS_HISTOGRAM_H
