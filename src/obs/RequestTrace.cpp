//===- obs/RequestTrace.cpp - Per-request lifecycle tracing ---------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/RequestTrace.h"

#include <chrono>

namespace stird::obs {

std::uint64_t traceClockMicros() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

const char *requestStageName(RequestStage Stage) {
  switch (Stage) {
  case RequestStage::Decode:
    return "decode";
  case RequestStage::Pending:
    return "pending";
  case RequestStage::Queue:
    return "queue";
  case RequestStage::Parse:
    return "parse";
  case RequestStage::Plan:
    return "plan";
  case RequestStage::Cache:
    return "cache";
  case RequestStage::Eval:
    return "eval";
  case RequestStage::Serialize:
    return "serialize";
  case RequestStage::Write:
    return "write";
  }
  return "?";
}

std::uint64_t RequestTrace::totalMicros() const {
  std::uint64_t First = 0, Last = 0;
  bool Any = false;
  for (const Span &S : Spans) {
    if (!S.Used)
      continue;
    if (!Any || S.Begin < First)
      First = S.Begin;
    if (!Any || S.End > Last)
      Last = S.End;
    Any = true;
  }
  return Any && Last >= First ? Last - First : 0;
}

json::Value RequestTrace::toJson() const {
  json::Object O;
  O.emplace_back("seq", Seq);
  O.emplace_back("command", Command);
  if (!Tenant.empty())
    O.emplace_back("tenant", Tenant);
  if (!Relation.empty())
    O.emplace_back("relation", Relation);
  if (!PatternKey.empty())
    O.emplace_back("pattern", PatternKey);
  O.emplace_back("ok", Ok);
  if (Command == "query")
    O.emplace_back("cached", Cached);
  if (HasPlan) {
    json::Object Plan;
    Plan.emplace_back("index", PlanIndex);
    Plan.emplace_back("prefix_len", PlanPrefixLen);
    Plan.emplace_back("residual_columns", PlanResidual);
    O.emplace_back("plan", json::Value(std::move(Plan)));
  }
  O.emplace_back("slot", ExecSlot);
  if (!Source.empty())
    O.emplace_back("source", Source);
  O.emplace_back("sampled", Sampled);
  O.emplace_back("total_micros", totalMicros());
  json::Object SpansObj;
  for (unsigned I = 0; I < NumRequestStages; ++I) {
    const Span &S = Spans[I];
    if (!S.Used)
      continue;
    SpansObj.emplace_back(requestStageName(RequestStage(I)),
                          S.End >= S.Begin ? S.End - S.Begin : 0);
  }
  O.emplace_back("spans", json::Value(std::move(SpansObj)));
  return json::Value(std::move(O));
}

std::vector<TraceEvent> RequestTrace::chromeEvents(std::uint64_t Tid) const {
  std::vector<TraceEvent> Out;
  const std::string Prefix = "request." ;
  for (unsigned I = 0; I < NumRequestStages; ++I) {
    const Span &S = Spans[I];
    if (!S.Used || S.End < S.Begin)
      continue;
    std::string Args = "{\"seq\":" + std::to_string(Seq);
    if (!Command.empty())
      Args += ",\"command\":\"" + json::escape(Command) + "\"";
    Args += "}";
    Out.push_back({Prefix + requestStageName(RequestStage(I)), 'B', S.Begin,
                   Tid, std::move(Args)});
    Out.push_back({std::string(), 'E', S.End, Tid, std::string()});
  }
  return Out;
}

std::unique_ptr<RequestTrace> RequestTraceSink::begin(std::uint64_t Seq) {
  if (!enabled())
    return nullptr;
  Started.fetch_add(1, std::memory_order_relaxed);
  bool Sampled = false;
  if (Opts.SampleEvery != 0) {
    const std::uint64_t N =
        SampleCounter.fetch_add(1, std::memory_order_relaxed);
    Sampled = (N % Opts.SampleEvery) == 0;
  }
  if (Sampled)
    SampledN.fetch_add(1, std::memory_order_relaxed);
  if (!Sampled && !Opts.SlowArmed)
    return nullptr;
  return std::make_unique<RequestTrace>(Seq, Sampled);
}

bool RequestTraceSink::finish(std::unique_ptr<RequestTrace> Trace) {
  if (!Trace)
    return false;
  const std::uint64_t Total = Trace->totalMicros();
  const bool IsSlow = Opts.SlowArmed && Total >= Opts.SlowMicros;
  if (IsSlow)
    Slow.fetch_add(1, std::memory_order_relaxed);
  if (!Trace->sampled() && !IsSlow)
    return false;
  Retained.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(Mutex);
  Recent.push_back(Trace->toJson());
  while (Recent.size() > Opts.Capacity)
    Recent.pop_front();
  if (Chrome.size() < Opts.MaxChromeEvents) {
    std::vector<TraceEvent> Events = Trace->chromeEvents(Trace->ExecSlot);
    Chrome.insert(Chrome.end(), std::make_move_iterator(Events.begin()),
                  std::make_move_iterator(Events.end()));
  }
  return IsSlow;
}

json::Value RequestTraceSink::statsJson() const {
  json::Object O;
  O.emplace_back("started", Started.load(std::memory_order_relaxed));
  O.emplace_back("sampled", SampledN.load(std::memory_order_relaxed));
  O.emplace_back("retained", Retained.load(std::memory_order_relaxed));
  O.emplace_back("slow", Slow.load(std::memory_order_relaxed));
  O.emplace_back("sample_every", Opts.SampleEvery);
  O.emplace_back("slow_micros", Opts.SlowMicros);
  json::Array RecentArr;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const json::Value &V : Recent)
      RecentArr.push_back(V);
  }
  O.emplace_back("recent", json::Value(std::move(RecentArr)));
  return json::Value(std::move(O));
}

std::vector<TraceEvent> RequestTraceSink::drainChrome() {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<TraceEvent> Out;
  Out.swap(Chrome);
  return Out;
}

} // namespace stird::obs
