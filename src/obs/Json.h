//===- obs/Json.h - Minimal JSON value, writer and parser -------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON library backing the observability sinks:
/// the profile log writer, the Chrome trace writer and the stird-profile
/// reader. Objects preserve insertion order so emitted documents are
/// deterministic and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_OBS_JSON_H
#define STIRD_OBS_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace stird::obs::json {

class Value;

/// Order-preserving key/value list (JSON objects are small here; linear
/// lookup is fine and keeps emission deterministic).
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/// A preserialized JSON fragment, spliced verbatim by the writer. The text
/// must already be valid JSON; sharing the buffer lets hot paths (the
/// query-result cache) reuse one serialization across many replies.
struct Raw {
  std::shared_ptr<const std::string> Text;
};

/// A JSON document node.
class Value {
public:
  Value() : Data(nullptr) {}
  Value(std::nullptr_t) : Data(nullptr) {}
  Value(bool B) : Data(B) {}
  Value(double D) : Data(D) {}
  Value(int I) : Data(static_cast<double>(I)) {}
  Value(unsigned I) : Data(static_cast<double>(I)) {}
  Value(std::int64_t I) : Data(static_cast<double>(I)) {}
  Value(std::uint64_t I) : Data(static_cast<double>(I)) {}
  Value(const char *S) : Data(std::string(S)) {}
  Value(std::string S) : Data(std::move(S)) {}
  Value(Object O) : Data(std::move(O)) {}
  Value(Array A) : Data(std::move(A)) {}
  Value(Raw R) : Data(std::move(R)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(Data); }
  bool isBool() const { return std::holds_alternative<bool>(Data); }
  bool isNumber() const { return std::holds_alternative<double>(Data); }
  bool isString() const { return std::holds_alternative<std::string>(Data); }
  bool isObject() const { return std::holds_alternative<Object>(Data); }
  bool isArray() const { return std::holds_alternative<Array>(Data); }
  bool isRaw() const { return std::holds_alternative<Raw>(Data); }

  bool asBool() const { return std::get<bool>(Data); }
  double asNumber() const { return std::get<double>(Data); }
  std::uint64_t asUint() const {
    return static_cast<std::uint64_t>(std::get<double>(Data));
  }
  std::int64_t asInt() const {
    return static_cast<std::int64_t>(std::get<double>(Data));
  }
  const std::string &asString() const { return std::get<std::string>(Data); }
  const Object &asObject() const { return std::get<Object>(Data); }
  Object &asObject() { return std::get<Object>(Data); }
  const Array &asArray() const { return std::get<Array>(Data); }
  Array &asArray() { return std::get<Array>(Data); }
  const std::string &asRaw() const { return *std::get<Raw>(Data).Text; }

  /// Object member lookup; null when absent or not an object.
  const Value *find(const std::string &Key) const {
    if (!isObject())
      return nullptr;
    for (const auto &[K, V] : asObject())
      if (K == Key)
        return &V;
    return nullptr;
  }

  /// Appends a member to an object value.
  void set(std::string Key, Value V) {
    std::get<Object>(Data).emplace_back(std::move(Key), std::move(V));
  }

  /// Serializes the document. \p Indent > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form.
  std::string dump(int Indent = 0) const;

private:
  std::variant<std::nullptr_t, bool, double, std::string, Object, Array, Raw>
      Data;
};

/// Escapes \p S as the contents of a JSON string literal (no quotes).
std::string escape(const std::string &S);

/// Parses a JSON document. Returns nullopt on malformed input; when
/// \p Error is given, a one-line diagnostic with the byte offset is stored.
std::optional<Value> parse(const std::string &Text,
                           std::string *Error = nullptr);

} // namespace stird::obs::json

#endif // STIRD_OBS_JSON_H
