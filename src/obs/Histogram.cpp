//===- obs/Histogram.cpp - Log-bucketed latency histograms ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/Histogram.h"

namespace stird::obs {

std::uint64_t Histogram::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q <= 0.0)
    return Min;
  if (Q > 1.0)
    Q = 1.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(Q * Count), with rank at least 1.
  std::uint64_t Rank =
      static_cast<std::uint64_t>(Q * static_cast<double>(Count));
  if (static_cast<double>(Rank) < Q * static_cast<double>(Count))
    ++Rank;
  if (Rank == 0)
    Rank = 1;
  std::uint64_t Cumulative = 0;
  for (std::size_t I = 0; I < NumBuckets; ++I) {
    Cumulative += Counts[I];
    if (Cumulative >= Rank) {
      // The exact extremes tighten the outermost buckets: the lowest
      // bucket cannot report below Min, and no bucket reports above Max.
      std::uint64_t High = upperBound(I);
      if (High > Max)
        High = Max;
      if (High < Min)
        High = Min;
      return High;
    }
  }
  return Max;
}

json::Value Histogram::toJson() const {
  json::Object O;
  O.emplace_back("count", json::Value(static_cast<double>(Count)));
  O.emplace_back("total_micros", json::Value(static_cast<double>(Sum)));
  O.emplace_back("min_micros", json::Value(static_cast<double>(min())));
  O.emplace_back("max_micros", json::Value(static_cast<double>(Max)));
  O.emplace_back("mean_micros", json::Value(mean()));
  O.emplace_back("p50_micros",
                 json::Value(static_cast<double>(quantile(0.50))));
  O.emplace_back("p90_micros",
                 json::Value(static_cast<double>(quantile(0.90))));
  O.emplace_back("p99_micros",
                 json::Value(static_cast<double>(quantile(0.99))));
  O.emplace_back("p999_micros",
                 json::Value(static_cast<double>(quantile(0.999))));
  return json::Value(std::move(O));
}

void AtomicHistogram::mergeInto(Histogram &Out) const {
  if (Count.load(std::memory_order_relaxed) == 0)
    return;
  // Reconstruct a plain histogram from the atomic counters, then merge.
  // The bucket array drives Count (so quantile ranks always match the
  // cumulative bucket sums); Sum/Min/Max are read independently, so under
  // concurrent writers the snapshot may be off by the in-flight records,
  // which monitoring tolerates.
  Histogram Snapshot;
  std::uint64_t BucketTotal = 0;
  for (std::size_t I = 0; I < NumBuckets; ++I) {
    const std::uint64_t C = Counts[I].load(std::memory_order_relaxed);
    if (C == 0)
      continue;
    BucketTotal += C;
    Snapshot.Counts[I] = C;
  }
  Snapshot.Count = BucketTotal;
  Snapshot.Sum = Sum.load(std::memory_order_relaxed);
  Snapshot.Min = Min.load(std::memory_order_relaxed);
  Snapshot.Max = Max.load(std::memory_order_relaxed);
  Out.merge(Snapshot);
}

unsigned threadShardTag() {
  static std::atomic<unsigned> NextTag{0};
  thread_local unsigned Tag =
      NextTag.fetch_add(1, std::memory_order_relaxed);
  return Tag;
}

} // namespace stird::obs
