//===- obs/Profile.cpp - Profile document builder and report -------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "interp/Engine.h"
#include "obs/Stats.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace stird::obs {

using interp::RuleProfile;

using interp::relKindName;

static json::Value ruleToJson(const RuleProfile &Rule) {
  json::Object O;
  O.emplace_back("label", Rule.Label);
  O.emplace_back("relation", Rule.Meta.Relation);
  O.emplace_back("stratum", Rule.Meta.Stratum);
  O.emplace_back("version", Rule.Meta.Version);
  O.emplace_back("par_group", Rule.Meta.ParGroup);
  O.emplace_back("recursive", Rule.Meta.Recursive);
  O.emplace_back("sips", Rule.Meta.Sips);
  json::Array AtomOrder;
  for (int Idx : Rule.Meta.AtomOrder)
    AtomOrder.emplace_back(Idx);
  O.emplace_back("atom_order", std::move(AtomOrder));
  O.emplace_back("seconds", Rule.Seconds);
  O.emplace_back("invocations", Rule.Invocations);
  O.emplace_back("dispatches", Rule.Dispatches);
  O.emplace_back("delta_tuples", Rule.DeltaTuples);
  json::Array Iterations;
  for (const interp::IterationSample &Sample : Rule.Iterations) {
    json::Object It;
    It.emplace_back("seconds", Sample.Seconds);
    It.emplace_back("dispatches", Sample.Dispatches);
    It.emplace_back("delta_tuples", Sample.DeltaTuples);
    Iterations.emplace_back(std::move(It));
  }
  O.emplace_back("iterations", std::move(Iterations));
  return json::Value(std::move(O));
}

json::Value buildProfile(const interp::Engine &E, const ProfileContext &Ctx) {
  json::Object Doc;
  Doc.emplace_back("schema", ProfileSchemaVersion);
  Doc.emplace_back("program", Ctx.Program);
  Doc.emplace_back("backend", Ctx.Backend);
  Doc.emplace_back("threads", static_cast<std::uint64_t>(Ctx.Threads));
  Doc.emplace_back("total_seconds", Ctx.TotalSeconds);
  Doc.emplace_back("dispatches", E.getNumDispatches());

  // Stratum → rule version → iteration. Rules registered without
  // translation metadata land in stratum -1. std::map keeps strata in
  // ascending id order.
  std::map<int, std::vector<RuleProfile>> ByStratum;
  for (RuleProfile &Rule : E.getProfiler().rules())
    ByStratum[Rule.Meta.Stratum].push_back(std::move(Rule));
  json::Array Strata;
  for (auto &[Id, Rules] : ByStratum) {
    json::Object Stratum;
    Stratum.emplace_back("id", Id);
    double Seconds = 0;
    bool Recursive = false;
    for (const RuleProfile &Rule : Rules) {
      Seconds += Rule.Seconds;
      Recursive = Recursive || Rule.Meta.Recursive;
    }
    Stratum.emplace_back("seconds", Seconds);
    Stratum.emplace_back("recursive", Recursive);
    json::Array RuleArr;
    for (const RuleProfile &Rule : Rules)
      RuleArr.push_back(ruleToJson(Rule));
    Stratum.emplace_back("rules", std::move(RuleArr));
    Strata.emplace_back(std::move(Stratum));
  }
  Doc.emplace_back("strata", std::move(Strata));

  json::Array Relations;
  const StatsBlock &Stats = E.getStats();
  const auto &Rels = E.getStatsRelations();
  for (std::size_t I = 0; I < Rels.size() && I < Stats.size(); ++I) {
    const interp::RelationWrapper *Rel = Rels[I];
    const RelationStats &RS = Stats[I];
    json::Object O;
    O.emplace_back("name", Rel->getName());
    O.emplace_back("arity", static_cast<std::uint64_t>(Rel->getArity()));
    O.emplace_back("kind", relKindName(Rel->getKind()));
    O.emplace_back("indexes",
                   static_cast<std::uint64_t>(Rel->getNumIndexes()));
    O.emplace_back("final_size", static_cast<std::uint64_t>(Rel->size()));
    O.emplace_back("peak_size", RS.PeakSize);
    O.emplace_back("inserts", RS.Inserts);
    O.emplace_back("inserts_new", RS.InsertsNew);
    O.emplace_back("contains", RS.Contains);
    O.emplace_back("scans", RS.Scans);
    O.emplace_back("scan_tuples", RS.ScanTuples);
    O.emplace_back("index_scans", RS.IndexScans);
    O.emplace_back("index_scan_hits", RS.IndexScanHits);
    O.emplace_back("index_scan_tuples", RS.IndexScanTuples);
    O.emplace_back("reorders", RS.Reorders);
    O.emplace_back("point_lookups", RS.PointLookups);
    O.emplace_back("range_scans", RS.RangeScans);
    // Key-density signal for the substrate selector: the observed range of
    // the first source column. Computed cold, once, at profile-build time.
    std::int64_t Col0Min = 0, Col0Max = -1;
    if (Rel->size() > 0 && Rel->getArity() > 0) {
      bool First = true;
      Rel->forEach([&](const RamDomain *Tuple) {
        if (First) {
          Col0Min = Col0Max = Tuple[0];
          First = false;
          return;
        }
        Col0Min = std::min<std::int64_t>(Col0Min, Tuple[0]);
        Col0Max = std::max<std::int64_t>(Col0Max, Tuple[0]);
      });
    }
    O.emplace_back("col0_min", Col0Min);
    O.emplace_back("col0_max", Col0Max);
    Relations.emplace_back(std::move(O));
  }
  Doc.emplace_back("relations", std::move(Relations));
  if (!Ctx.SubstrateDecisions.empty()) {
    json::Object Decisions;
    for (const auto &[Name, Decision] : Ctx.SubstrateDecisions)
      Decisions.emplace_back(Name, Decision);
    Doc.emplace_back("substrate_decisions", std::move(Decisions));
  }
  return json::Value(std::move(Doc));
}

std::string renderTextReport(const interp::Engine &E, std::size_t TopN) {
  std::vector<RuleProfile> Rules = E.getProfiler().rules();
  std::sort(Rules.begin(), Rules.end(),
            [](const RuleProfile &A, const RuleProfile &B) {
              if (A.Seconds != B.Seconds)
                return A.Seconds > B.Seconds;
              return A.Label < B.Label;
            });

  double TotalSeconds = 0;
  std::uint64_t TotalInvocations = 0, TotalDispatches = 0, TotalDelta = 0;
  for (const RuleProfile &Rule : Rules) {
    TotalSeconds += Rule.Seconds;
    TotalInvocations += Rule.Invocations;
    TotalDispatches += Rule.Dispatches;
    TotalDelta += Rule.DeltaTuples;
  }

  std::string Out;
  char Line[512];
  std::snprintf(Line, sizeof(Line), "%12s %6s %8s %14s %12s  %s\n",
                "seconds", "%", "invocs", "dispatches", "tuples", "rule");
  Out += Line;
  const std::size_t Limit =
      TopN > 0 && TopN < Rules.size() ? TopN : Rules.size();
  for (std::size_t I = 0; I < Limit; ++I) {
    const RuleProfile &Rule = Rules[I];
    const double Pct =
        TotalSeconds > 0 ? 100.0 * Rule.Seconds / TotalSeconds : 0;
    std::snprintf(Line, sizeof(Line),
                  "%12.6f %6.1f %8llu %14llu %12llu  %s\n", Rule.Seconds,
                  Pct, static_cast<unsigned long long>(Rule.Invocations),
                  static_cast<unsigned long long>(Rule.Dispatches),
                  static_cast<unsigned long long>(Rule.DeltaTuples),
                  Rule.Label.c_str());
    Out += Line;
  }
  if (Limit < Rules.size()) {
    std::snprintf(Line, sizeof(Line), "%12s  (%zu more rules)\n", "...",
                  Rules.size() - Limit);
    Out += Line;
  }
  std::snprintf(Line, sizeof(Line), "%12.6f %6.1f %8llu %14llu %12llu  %s\n",
                TotalSeconds, TotalSeconds > 0 ? 100.0 : 0.0,
                static_cast<unsigned long long>(TotalInvocations),
                static_cast<unsigned long long>(TotalDispatches),
                static_cast<unsigned long long>(TotalDelta), "total");
  Out += Line;

  Out += "\n";
  std::snprintf(Line, sizeof(Line),
                "%10s %10s %10s %10s %12s %10s %12s %10s  %s\n", "size",
                "peak", "inserts", "new", "contains", "scans",
                "idx-scans", "reorders", "relation");
  Out += Line;
  const StatsBlock &Stats = E.getStats();
  const auto &Rels = E.getStatsRelations();
  for (std::size_t I = 0; I < Rels.size() && I < Stats.size(); ++I) {
    const RelationStats &RS = Stats[I];
    std::snprintf(Line, sizeof(Line),
                  "%10zu %10llu %10llu %10llu %12llu %10llu %12llu "
                  "%10llu  %s\n",
                  Rels[I]->size(),
                  static_cast<unsigned long long>(RS.PeakSize),
                  static_cast<unsigned long long>(RS.Inserts),
                  static_cast<unsigned long long>(RS.InsertsNew),
                  static_cast<unsigned long long>(RS.Contains),
                  static_cast<unsigned long long>(RS.Scans),
                  static_cast<unsigned long long>(RS.IndexScans),
                  static_cast<unsigned long long>(RS.Reorders),
                  Rels[I]->getName().c_str());
    Out += Line;
  }
  return Out;
}

} // namespace stird::obs
