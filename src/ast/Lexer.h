//===- ast/Lexer.h - Datalog tokenizer --------------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Datalog dialect. A '.' directly followed by a letter
/// starts a directive keyword (".decl", ".input", ...); any other '.' is the
/// clause terminator.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_AST_LEXER_H
#define STIRD_AST_LEXER_H

#include "ast/Ast.h"

#include <string>
#include <vector>

namespace stird::ast {

/// Token categories produced by the lexer.
enum class TokenKind {
  Eof,
  Ident,      ///< identifier or word-operator (band, count, ...)
  Number,     ///< signed decimal or hex integer literal
  Unsigned,   ///< integer literal with 'u' suffix
  Float,      ///< floating-point literal
  String,     ///< double-quoted string literal
  Directive,  ///< .decl/.input/... — Text holds the name without the dot
  Dot,        ///< clause terminator '.'
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Colon,
  If,        ///< ':-'
  Bang,      ///< '!'
  Eq,        ///< '='
  Ne,        ///< '!='
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Caret,
  Underscore,
  Dollar,
};

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;     ///< identifier/directive/string contents
  RamDomain Number = 0; ///< value for Number tokens
  RamUnsigned UnsignedValue = 0;
  RamFloat FloatValue = 0;
  SrcLoc Loc;
};

/// Tokenizes \p Source. On a lexical error, appends a message to \p Errors
/// and recovers by skipping the offending character.
std::vector<Token> lex(const std::string &Source,
                       std::vector<std::string> &Errors);

} // namespace stird::ast

#endif // STIRD_AST_LEXER_H
