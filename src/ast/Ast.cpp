//===- ast/Ast.cpp - Datalog abstract syntax tree --------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

#include "util/MiscUtil.h"

#include <sstream>

using namespace stird;
using namespace stird::ast;

const char *stird::ast::typeName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Number:
    return "number";
  case TypeKind::Unsigned:
    return "unsigned";
  case TypeKind::Float:
    return "float";
  case TypeKind::Symbol:
    return "symbol";
  }
  unreachable("unknown type kind");
}

/// Spelling of a functor operator in source syntax.
static const char *functorName(FunctorOp Op) {
  switch (Op) {
  case FunctorOp::Neg:
    return "-";
  case FunctorOp::BNot:
    return "bnot";
  case FunctorOp::LNot:
    return "lnot";
  case FunctorOp::Ord:
    return "ord";
  case FunctorOp::Strlen:
    return "strlen";
  case FunctorOp::ToNumber:
    return "to_number";
  case FunctorOp::ToString:
    return "to_string";
  case FunctorOp::Add:
    return "+";
  case FunctorOp::Sub:
    return "-";
  case FunctorOp::Mul:
    return "*";
  case FunctorOp::Div:
    return "/";
  case FunctorOp::Mod:
    return "%";
  case FunctorOp::Exp:
    return "^";
  case FunctorOp::Band:
    return "band";
  case FunctorOp::Bor:
    return "bor";
  case FunctorOp::Bxor:
    return "bxor";
  case FunctorOp::Bshl:
    return "bshl";
  case FunctorOp::Bshr:
    return "bshr";
  case FunctorOp::Max:
    return "max";
  case FunctorOp::Min:
    return "min";
  case FunctorOp::Cat:
    return "cat";
  case FunctorOp::Substr:
    return "substr";
  }
  unreachable("unknown functor op");
}

static bool isInfix(FunctorOp Op) {
  switch (Op) {
  case FunctorOp::Add:
  case FunctorOp::Sub:
  case FunctorOp::Mul:
  case FunctorOp::Div:
  case FunctorOp::Mod:
  case FunctorOp::Exp:
  case FunctorOp::Band:
  case FunctorOp::Bor:
  case FunctorOp::Bxor:
  case FunctorOp::Bshl:
  case FunctorOp::Bshr:
    return true;
  default:
    return false;
  }
}

std::unique_ptr<Argument> Functor::clone() const {
  std::vector<std::unique_ptr<Argument>> ClonedArgs;
  ClonedArgs.reserve(Args.size());
  for (const auto &Arg : Args)
    ClonedArgs.push_back(Arg->clone());
  return std::make_unique<Functor>(Op, std::move(ClonedArgs), getLoc());
}

std::string Functor::toString() const {
  std::ostringstream Out;
  if (Args.size() == 2 && isInfix(Op)) {
    Out << "(" << Args[0]->toString() << " " << functorName(Op) << " "
        << Args[1]->toString() << ")";
    return Out.str();
  }
  if (Args.size() == 1 && Op == FunctorOp::Neg) {
    Out << "(-" << Args[0]->toString() << ")";
    return Out.str();
  }
  Out << functorName(Op) << "(";
  for (std::size_t I = 0; I < Args.size(); ++I) {
    if (I != 0)
      Out << ", ";
    Out << Args[I]->toString();
  }
  Out << ")";
  return Out.str();
}

std::unique_ptr<Argument> Aggregator::clone() const {
  std::vector<std::unique_ptr<Literal>> ClonedBody;
  ClonedBody.reserve(Body.size());
  for (const auto &Lit : Body)
    ClonedBody.push_back(Lit->clone());
  return std::make_unique<Aggregator>(
      Op, Target ? Target->clone() : nullptr, std::move(ClonedBody),
      getLoc());
}

std::string Aggregator::toString() const {
  std::ostringstream Out;
  switch (Op) {
  case AggregateOp::Count:
    Out << "count";
    break;
  case AggregateOp::Sum:
    Out << "sum";
    break;
  case AggregateOp::Min:
    Out << "min";
    break;
  case AggregateOp::Max:
    Out << "max";
    break;
  }
  if (Target)
    Out << " " << Target->toString();
  Out << " : { ";
  for (std::size_t I = 0; I < Body.size(); ++I) {
    if (I != 0)
      Out << ", ";
    Out << Body[I]->toString();
  }
  Out << " }";
  return Out.str();
}

std::unique_ptr<Atom> Atom::cloneAtom() const {
  std::vector<std::unique_ptr<Argument>> ClonedArgs;
  ClonedArgs.reserve(Args.size());
  for (const auto &Arg : Args)
    ClonedArgs.push_back(Arg->clone());
  return std::make_unique<Atom>(Name, std::move(ClonedArgs), getLoc());
}

std::string Atom::toString() const {
  std::ostringstream Out;
  Out << Name << "(";
  for (std::size_t I = 0; I < Args.size(); ++I) {
    if (I != 0)
      Out << ", ";
    Out << Args[I]->toString();
  }
  Out << ")";
  return Out.str();
}

std::string Constraint::toString() const {
  const char *OpName = nullptr;
  switch (Op) {
  case ConstraintOp::Eq:
    OpName = "=";
    break;
  case ConstraintOp::Ne:
    OpName = "!=";
    break;
  case ConstraintOp::Lt:
    OpName = "<";
    break;
  case ConstraintOp::Le:
    OpName = "<=";
    break;
  case ConstraintOp::Gt:
    OpName = ">";
    break;
  case ConstraintOp::Ge:
    OpName = ">=";
    break;
  case ConstraintOp::Match:
    OpName = "match";
    break;
  case ConstraintOp::Contains:
    OpName = "contains";
    break;
  }
  return Lhs->toString() + " " + OpName + " " + Rhs->toString();
}

std::unique_ptr<Clause> Clause::clone() const {
  std::vector<std::unique_ptr<Literal>> ClonedBody;
  ClonedBody.reserve(Body.size());
  for (const auto &Lit : Body)
    ClonedBody.push_back(Lit->clone());
  return std::make_unique<Clause>(Head->cloneAtom(), std::move(ClonedBody),
                                  Loc);
}

std::string Clause::toString() const {
  std::ostringstream Out;
  Out << Head->toString();
  if (!Body.empty()) {
    Out << " :- ";
    for (std::size_t I = 0; I < Body.size(); ++I) {
      if (I != 0)
        Out << ", ";
      Out << Body[I]->toString();
    }
  }
  Out << ".";
  return Out.str();
}

const RelationDecl *Program::findRelation(const std::string &Name) const {
  for (const auto &Rel : Relations)
    if (Rel->getName() == Name)
      return Rel.get();
  return nullptr;
}

RelationDecl *Program::findRelation(const std::string &Name) {
  for (const auto &Rel : Relations)
    if (Rel->getName() == Name)
      return Rel.get();
  return nullptr;
}

std::string Program::toString() const {
  std::ostringstream Out;
  for (const auto &Rel : Relations) {
    Out << ".decl " << Rel->getName() << "(";
    const auto &Attrs = Rel->getAttributes();
    for (std::size_t I = 0; I < Attrs.size(); ++I) {
      if (I != 0)
        Out << ", ";
      Out << Attrs[I].Name << ":" << typeName(Attrs[I].Type);
    }
    Out << ")";
    if (Rel->getStructure() == StructureKind::Brie)
      Out << " brie";
    else if (Rel->getStructure() == StructureKind::Art)
      Out << " art";
    else if (Rel->getStructure() == StructureKind::Eqrel)
      Out << " eqrel";
    Out << "\n";
    if (Rel->isInput())
      Out << ".input " << Rel->getName() << "\n";
    if (Rel->isOutput())
      Out << ".output " << Rel->getName() << "\n";
    if (Rel->isPrintSize())
      Out << ".printsize " << Rel->getName() << "\n";
  }
  for (const auto &C : Clauses)
    Out << C->toString() << "\n";
  return Out.str();
}
