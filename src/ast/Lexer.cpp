//===- ast/Lexer.cpp - Datalog tokenizer -----------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ast/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace stird;
using namespace stird::ast;

namespace {

/// Cursor over the source text tracking line/column for diagnostics.
class Cursor {
public:
  Cursor(const std::string &Source, std::vector<std::string> &Errors)
      : Source(Source), Errors(Errors) {}

  bool atEnd() const { return Pos >= Source.size(); }
  char peek(std::size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  SrcLoc loc() const { return {Line, Col}; }

  void error(const std::string &Message) {
    Errors.push_back("line " + std::to_string(Line) + ":" +
                     std::to_string(Col) + ": " + Message);
  }

private:
  const std::string &Source;
  std::vector<std::string> &Errors;
  std::size_t Pos = 0;
  int Line = 1;
  int Col = 1;
};

} // namespace

/// Skips whitespace and //-style or /* */-style comments.
static void skipTrivia(Cursor &C) {
  for (;;) {
    while (!C.atEnd() && std::isspace(static_cast<unsigned char>(C.peek())))
      C.advance();
    if (C.peek() == '/' && C.peek(1) == '/') {
      while (!C.atEnd() && C.peek() != '\n')
        C.advance();
      continue;
    }
    if (C.peek() == '/' && C.peek(1) == '*') {
      C.advance();
      C.advance();
      while (!C.atEnd() && !(C.peek() == '*' && C.peek(1) == '/'))
        C.advance();
      if (!C.atEnd()) {
        C.advance();
        C.advance();
      } else {
        C.error("unterminated block comment");
      }
      continue;
    }
    return;
  }
}

static bool isIdentStart(char Ch) {
  return std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_';
}
static bool isIdentChar(char Ch) {
  return std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_' ||
         Ch == '?';
}

/// Lexes a number starting at the current position; handles hex, the 'u'
/// unsigned suffix and a fractional part.
static Token lexNumber(Cursor &C) {
  Token Tok;
  Tok.Loc = C.loc();
  std::string Digits;
  if (C.peek() == '0' && (C.peek(1) == 'x' || C.peek(1) == 'X')) {
    Digits += C.advance();
    Digits += C.advance();
    while (std::isxdigit(static_cast<unsigned char>(C.peek())))
      Digits += C.advance();
    Tok.Kind = TokenKind::Number;
    Tok.Number =
        static_cast<RamDomain>(std::strtoll(Digits.c_str(), nullptr, 16));
    return Tok;
  }
  while (std::isdigit(static_cast<unsigned char>(C.peek())))
    Digits += C.advance();
  if (C.peek() == '.' && std::isdigit(static_cast<unsigned char>(C.peek(1)))) {
    Digits += C.advance();
    while (std::isdigit(static_cast<unsigned char>(C.peek())))
      Digits += C.advance();
    Tok.Kind = TokenKind::Float;
    Tok.FloatValue = static_cast<RamFloat>(std::strtod(Digits.c_str(), nullptr));
    return Tok;
  }
  if (C.peek() == 'u') {
    C.advance();
    Tok.Kind = TokenKind::Unsigned;
    Tok.UnsignedValue =
        static_cast<RamUnsigned>(std::strtoull(Digits.c_str(), nullptr, 10));
    return Tok;
  }
  Tok.Kind = TokenKind::Number;
  Tok.Number =
      static_cast<RamDomain>(std::strtoll(Digits.c_str(), nullptr, 10));
  return Tok;
}

static Token lexString(Cursor &C) {
  Token Tok;
  Tok.Kind = TokenKind::String;
  Tok.Loc = C.loc();
  C.advance(); // opening quote
  for (;;) {
    if (C.atEnd() || C.peek() == '\n') {
      C.error("unterminated string literal");
      break;
    }
    char Ch = C.advance();
    if (Ch == '"')
      break;
    if (Ch == '\\') {
      char Esc = C.advance();
      switch (Esc) {
      case 'n':
        Tok.Text += '\n';
        break;
      case 't':
        Tok.Text += '\t';
        break;
      case '\\':
        Tok.Text += '\\';
        break;
      case '"':
        Tok.Text += '"';
        break;
      default:
        C.error(std::string("unknown escape '\\") + Esc + "'");
        Tok.Text += Esc;
      }
      continue;
    }
    Tok.Text += Ch;
  }
  return Tok;
}

std::vector<Token> stird::ast::lex(const std::string &Source,
                                   std::vector<std::string> &Errors) {
  std::vector<Token> Tokens;
  Cursor C(Source, Errors);
  auto Push = [&](TokenKind Kind, SrcLoc Loc) {
    Token Tok;
    Tok.Kind = Kind;
    Tok.Loc = Loc;
    Tokens.push_back(std::move(Tok));
  };

  for (;;) {
    skipTrivia(C);
    if (C.atEnd())
      break;
    SrcLoc Loc = C.loc();
    char Ch = C.peek();

    if (std::isdigit(static_cast<unsigned char>(Ch))) {
      Tokens.push_back(lexNumber(C));
      continue;
    }
    if (Ch == '"') {
      Tokens.push_back(lexString(C));
      continue;
    }
    if (Ch == '_' && !isIdentChar(C.peek(1))) {
      C.advance();
      Push(TokenKind::Underscore, Loc);
      continue;
    }
    if (isIdentStart(Ch)) {
      Token Tok;
      Tok.Kind = TokenKind::Ident;
      Tok.Loc = Loc;
      while (isIdentChar(C.peek()))
        Tok.Text += C.advance();
      Tokens.push_back(std::move(Tok));
      continue;
    }

    C.advance();
    switch (Ch) {
    case '.':
      if (isIdentStart(C.peek())) {
        Token Tok;
        Tok.Kind = TokenKind::Directive;
        Tok.Loc = Loc;
        while (isIdentChar(C.peek()))
          Tok.Text += C.advance();
        Tokens.push_back(std::move(Tok));
      } else {
        Push(TokenKind::Dot, Loc);
      }
      break;
    case '(':
      Push(TokenKind::LParen, Loc);
      break;
    case ')':
      Push(TokenKind::RParen, Loc);
      break;
    case '{':
      Push(TokenKind::LBrace, Loc);
      break;
    case '}':
      Push(TokenKind::RBrace, Loc);
      break;
    case ',':
      Push(TokenKind::Comma, Loc);
      break;
    case ':':
      if (C.peek() == '-') {
        C.advance();
        Push(TokenKind::If, Loc);
      } else {
        Push(TokenKind::Colon, Loc);
      }
      break;
    case '!':
      if (C.peek() == '=') {
        C.advance();
        Push(TokenKind::Ne, Loc);
      } else {
        Push(TokenKind::Bang, Loc);
      }
      break;
    case '=':
      Push(TokenKind::Eq, Loc);
      break;
    case '<':
      if (C.peek() == '=') {
        C.advance();
        Push(TokenKind::Le, Loc);
      } else {
        Push(TokenKind::Lt, Loc);
      }
      break;
    case '>':
      if (C.peek() == '=') {
        C.advance();
        Push(TokenKind::Ge, Loc);
      } else {
        Push(TokenKind::Gt, Loc);
      }
      break;
    case '+':
      Push(TokenKind::Plus, Loc);
      break;
    case '-':
      Push(TokenKind::Minus, Loc);
      break;
    case '*':
      Push(TokenKind::Star, Loc);
      break;
    case '/':
      Push(TokenKind::Slash, Loc);
      break;
    case '%':
      Push(TokenKind::Percent, Loc);
      break;
    case '^':
      Push(TokenKind::Caret, Loc);
      break;
    case '$':
      Push(TokenKind::Dollar, Loc);
      break;
    default:
      C.error(std::string("unexpected character '") + Ch + "'");
      break;
    }
  }

  Token Eof;
  Eof.Kind = TokenKind::Eof;
  Eof.Loc = C.loc();
  Tokens.push_back(std::move(Eof));
  return Tokens;
}
