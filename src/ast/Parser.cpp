//===- ast/Parser.cpp - Datalog parser --------------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"

#include "ast/Lexer.h"

#include <optional>
#include <unordered_map>

using namespace stird;
using namespace stird::ast;

namespace {

/// Names that always denote intrinsic functors; they cannot be used as
/// relation names in atom positions.
const std::unordered_map<std::string, FunctorOp> NamedFunctors = {
    {"max", FunctorOp::Max},         {"min", FunctorOp::Min},
    {"cat", FunctorOp::Cat},         {"strlen", FunctorOp::Strlen},
    {"substr", FunctorOp::Substr},   {"ord", FunctorOp::Ord},
    {"to_number", FunctorOp::ToNumber},
    {"to_string", FunctorOp::ToString},
};

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<std::string> &Errors)
      : Tokens(std::move(Tokens)), Errors(Errors) {}

  std::unique_ptr<Program> run() {
    auto Prog = std::make_unique<Program>();
    while (!at(TokenKind::Eof)) {
      if (at(TokenKind::Directive)) {
        parseDirective(*Prog);
        continue;
      }
      if (auto C = parseClause())
        Prog->Clauses.push_back(std::move(C));
    }
    return Prog;
  }

private:
  //===--------------------------------------------------------------------===
  // Token stream helpers
  //===--------------------------------------------------------------------===

  const Token &peek(std::size_t Ahead = 0) const {
    std::size_t Index = Pos + Ahead;
    if (Index >= Tokens.size())
      Index = Tokens.size() - 1; // the Eof token
    return Tokens[Index];
  }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }
  const Token &advance() { return Tokens[Pos == Tokens.size() - 1 ? Pos : Pos++]; }

  bool accept(TokenKind Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }

  /// Consumes a token of \p Kind or reports \p What as expected.
  bool expect(TokenKind Kind, const char *What) {
    if (accept(Kind))
      return true;
    error(std::string("expected ") + What);
    return false;
  }

  void error(const std::string &Message) {
    const Token &Tok = peek();
    Errors.push_back("line " + std::to_string(Tok.Loc.Line) + ":" +
                     std::to_string(Tok.Loc.Col) + ": " + Message);
  }

  /// Error recovery: skip to just past the next clause terminator.
  void synchronize() {
    while (!at(TokenKind::Eof) && !at(TokenKind::Dot) &&
           !at(TokenKind::Directive))
      advance();
    accept(TokenKind::Dot);
  }

  //===--------------------------------------------------------------------===
  // Directives
  //===--------------------------------------------------------------------===

  void parseDirective(Program &Prog) {
    const Token &Dir = advance();
    if (Dir.Text == "decl") {
      parseDecl(Prog);
      return;
    }
    if (Dir.Text == "input" || Dir.Text == "output" ||
        Dir.Text == "printsize") {
      if (!at(TokenKind::Ident)) {
        error("expected relation name after ." + Dir.Text);
        synchronize();
        return;
      }
      std::string Name = advance().Text;
      std::string Path;
      if (accept(TokenKind::LParen)) {
        if (at(TokenKind::String))
          Path = advance().Text;
        else
          error("expected string path in IO directive");
        expect(TokenKind::RParen, "')'");
      }
      RelationDecl *Rel = Prog.findRelation(Name);
      if (!Rel) {
        error("IO directive for undeclared relation '" + Name + "'");
        return;
      }
      if (Dir.Text == "input")
        Rel->markInput(std::move(Path));
      else if (Dir.Text == "output")
        Rel->markOutput(std::move(Path));
      else
        Rel->markPrintSize();
      return;
    }
    error("unknown directive '." + Dir.Text + "'");
    synchronize();
  }

  void parseDecl(Program &Prog) {
    SrcLoc Loc = peek().Loc;
    if (!at(TokenKind::Ident)) {
      error("expected relation name after .decl");
      synchronize();
      return;
    }
    std::string Name = advance().Text;
    std::vector<Attribute> Attributes;
    if (!expect(TokenKind::LParen, "'('")) {
      synchronize();
      return;
    }
    if (!at(TokenKind::RParen)) {
      do {
        if (!at(TokenKind::Ident)) {
          error("expected attribute name");
          break;
        }
        std::string AttrName = advance().Text;
        if (!expect(TokenKind::Colon, "':' after attribute name"))
          break;
        if (!at(TokenKind::Ident)) {
          error("expected attribute type");
          break;
        }
        std::string TypeText = advance().Text;
        std::optional<TypeKind> Type;
        if (TypeText == "number")
          Type = TypeKind::Number;
        else if (TypeText == "unsigned")
          Type = TypeKind::Unsigned;
        else if (TypeText == "float")
          Type = TypeKind::Float;
        else if (TypeText == "symbol")
          Type = TypeKind::Symbol;
        if (!Type) {
          error("unknown attribute type '" + TypeText + "'");
          Type = TypeKind::Number;
        }
        Attributes.push_back({std::move(AttrName), *Type});
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "')'");

    // Structure qualifiers: only known keywords are consumed — any other
    // identifier already belongs to the next clause.
    StructureKind Structure = StructureKind::Btree;
    while (at(TokenKind::Ident) &&
           (peek().Text == "btree" || peek().Text == "brie" ||
            peek().Text == "art" || peek().Text == "eqrel")) {
      std::string Qual = advance().Text;
      if (Qual == "btree")
        Structure = StructureKind::Btree;
      else if (Qual == "brie")
        Structure = StructureKind::Brie;
      else if (Qual == "art")
        Structure = StructureKind::Art;
      else
        Structure = StructureKind::Eqrel;
    }
    if (Structure == StructureKind::Eqrel && Attributes.size() != 2)
      error("eqrel relation '" + Name + "' must be binary");
    if (Structure == StructureKind::Art && Attributes.size() > 8)
      error("art relation '" + Name +
            "' exceeds the maximum supported art arity 8");
    if (Attributes.empty())
      error("relation '" + Name + "' must have at least one attribute");
    if (Attributes.size() > MaxArity)
      error("relation '" + Name + "' exceeds the maximum supported arity " +
            std::to_string(MaxArity));
    if (Prog.findRelation(Name))
      error("redefinition of relation '" + Name + "'");
    Prog.Relations.push_back(std::make_unique<RelationDecl>(
        std::move(Name), std::move(Attributes), Structure, Loc));
  }

  //===--------------------------------------------------------------------===
  // Clauses and literals
  //===--------------------------------------------------------------------===

  std::unique_ptr<Clause> parseClause() {
    SrcLoc Loc = peek().Loc;
    std::unique_ptr<Atom> Head = parseAtom();
    if (!Head) {
      synchronize();
      return nullptr;
    }
    std::vector<std::unique_ptr<Literal>> Body;
    if (accept(TokenKind::If)) {
      do {
        auto Lit = parseLiteral();
        if (!Lit) {
          synchronize();
          return nullptr;
        }
        Body.push_back(std::move(Lit));
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::Dot, "'.' at end of clause");
    return std::make_unique<Clause>(std::move(Head), std::move(Body), Loc);
  }

  std::unique_ptr<Atom> parseAtom() {
    if (!at(TokenKind::Ident)) {
      error("expected relation atom");
      return nullptr;
    }
    SrcLoc Loc = peek().Loc;
    std::string Name = advance().Text;
    if (!expect(TokenKind::LParen, "'(' after relation name"))
      return nullptr;
    std::vector<std::unique_ptr<Argument>> Args;
    if (!at(TokenKind::RParen)) {
      do {
        auto Arg = parseExpr();
        if (!Arg)
          return nullptr;
        Args.push_back(std::move(Arg));
      } while (accept(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "')'"))
      return nullptr;
    return std::make_unique<Atom>(std::move(Name), std::move(Args), Loc);
  }

  /// An atom literal starts with `Ident (` where Ident is not a functor
  /// name; anything else is a constraint.
  std::unique_ptr<Literal> parseLiteral() {
    SrcLoc Loc = peek().Loc;
    if (accept(TokenKind::Bang)) {
      auto Inner = parseAtom();
      if (!Inner)
        return nullptr;
      return std::make_unique<Negation>(std::move(Inner), Loc);
    }
    if (at(TokenKind::Ident) && peek(1).Kind == TokenKind::LParen &&
        !NamedFunctors.count(peek().Text) && !isAggregateName(peek().Text)) {
      return parseAtom();
    }
    auto Lhs = parseExpr();
    if (!Lhs)
      return nullptr;
    ConstraintOp Op;
    switch (peek().Kind) {
    case TokenKind::Eq:
      Op = ConstraintOp::Eq;
      break;
    case TokenKind::Ne:
      Op = ConstraintOp::Ne;
      break;
    case TokenKind::Lt:
      Op = ConstraintOp::Lt;
      break;
    case TokenKind::Le:
      Op = ConstraintOp::Le;
      break;
    case TokenKind::Gt:
      Op = ConstraintOp::Gt;
      break;
    case TokenKind::Ge:
      Op = ConstraintOp::Ge;
      break;
    default:
      error("expected comparison operator in constraint");
      return nullptr;
    }
    advance();
    auto Rhs = parseExpr();
    if (!Rhs)
      return nullptr;
    return std::make_unique<Constraint>(Op, std::move(Lhs), std::move(Rhs),
                                        Loc);
  }

  static bool isAggregateName(const std::string &Name) {
    return Name == "count" || Name == "sum";
    // min/max double as functors; they are recognized as aggregates by the
    // grammar position (no '(' after the keyword) in parsePrimary.
  }

  //===--------------------------------------------------------------------===
  // Expression precedence ladder (lowest first):
  //   bor < bxor < band < bshl/bshr < +,- < *,/,% < ^ < unary < primary
  //===--------------------------------------------------------------------===

  std::unique_ptr<Argument> parseExpr() { return parseWordInfix(0); }

  /// Word-operator tiers (bor/bxor/band/bshl/bshr) handled uniformly.
  std::unique_ptr<Argument> parseWordInfix(int Tier) {
    static const std::vector<std::vector<std::pair<const char *, FunctorOp>>>
        Tiers = {
            {{"bor", FunctorOp::Bor}},
            {{"bxor", FunctorOp::Bxor}},
            {{"band", FunctorOp::Band}},
            {{"bshl", FunctorOp::Bshl}, {"bshr", FunctorOp::Bshr}},
        };
    if (Tier >= static_cast<int>(Tiers.size()))
      return parseAdditive();
    auto Lhs = parseWordInfix(Tier + 1);
    if (!Lhs)
      return nullptr;
    for (;;) {
      if (!at(TokenKind::Ident))
        return Lhs;
      FunctorOp Op;
      bool Matched = false;
      for (const auto &[Name, TierOp] : Tiers[Tier])
        if (peek().Text == Name) {
          Op = TierOp;
          Matched = true;
          break;
        }
      if (!Matched)
        return Lhs;
      SrcLoc Loc = peek().Loc;
      advance();
      auto Rhs = parseWordInfix(Tier + 1);
      if (!Rhs)
        return nullptr;
      Lhs = makeBinary(Op, std::move(Lhs), std::move(Rhs), Loc);
    }
  }

  std::unique_ptr<Argument> parseAdditive() {
    auto Lhs = parseMultiplicative();
    if (!Lhs)
      return nullptr;
    for (;;) {
      FunctorOp Op;
      if (at(TokenKind::Plus))
        Op = FunctorOp::Add;
      else if (at(TokenKind::Minus))
        Op = FunctorOp::Sub;
      else
        return Lhs;
      SrcLoc Loc = peek().Loc;
      advance();
      auto Rhs = parseMultiplicative();
      if (!Rhs)
        return nullptr;
      Lhs = makeBinary(Op, std::move(Lhs), std::move(Rhs), Loc);
    }
  }

  std::unique_ptr<Argument> parseMultiplicative() {
    auto Lhs = parsePower();
    if (!Lhs)
      return nullptr;
    for (;;) {
      FunctorOp Op;
      if (at(TokenKind::Star))
        Op = FunctorOp::Mul;
      else if (at(TokenKind::Slash))
        Op = FunctorOp::Div;
      else if (at(TokenKind::Percent))
        Op = FunctorOp::Mod;
      else
        return Lhs;
      SrcLoc Loc = peek().Loc;
      advance();
      auto Rhs = parsePower();
      if (!Rhs)
        return nullptr;
      Lhs = makeBinary(Op, std::move(Lhs), std::move(Rhs), Loc);
    }
  }

  std::unique_ptr<Argument> parsePower() {
    auto Lhs = parseUnary();
    if (!Lhs)
      return nullptr;
    if (!at(TokenKind::Caret))
      return Lhs;
    SrcLoc Loc = peek().Loc;
    advance();
    auto Rhs = parsePower(); // right-associative
    if (!Rhs)
      return nullptr;
    return makeBinary(FunctorOp::Exp, std::move(Lhs), std::move(Rhs), Loc);
  }

  std::unique_ptr<Argument> parseUnary() {
    SrcLoc Loc = peek().Loc;
    if (accept(TokenKind::Minus)) {
      // Fold a literal-negation into a constant.
      if (at(TokenKind::Number)) {
        const Token &Tok = advance();
        return std::make_unique<NumberConstant>(-Tok.Number, Loc);
      }
      if (at(TokenKind::Float)) {
        const Token &Tok = advance();
        return std::make_unique<FloatConstant>(-Tok.FloatValue, Loc);
      }
      auto Operand = parseUnary();
      if (!Operand)
        return nullptr;
      return makeUnary(FunctorOp::Neg, std::move(Operand), Loc);
    }
    if (at(TokenKind::Ident) &&
        (peek().Text == "bnot" || peek().Text == "lnot")) {
      FunctorOp Op = peek().Text == "bnot" ? FunctorOp::BNot : FunctorOp::LNot;
      advance();
      auto Operand = parseUnary();
      if (!Operand)
        return nullptr;
      return makeUnary(Op, std::move(Operand), Loc);
    }
    return parsePrimary();
  }

  std::unique_ptr<Argument> parsePrimary() {
    SrcLoc Loc = peek().Loc;
    switch (peek().Kind) {
    case TokenKind::Number: {
      const Token &Tok = advance();
      return std::make_unique<NumberConstant>(Tok.Number, Loc);
    }
    case TokenKind::Unsigned: {
      const Token &Tok = advance();
      return std::make_unique<UnsignedConstant>(Tok.UnsignedValue, Loc);
    }
    case TokenKind::Float: {
      const Token &Tok = advance();
      return std::make_unique<FloatConstant>(Tok.FloatValue, Loc);
    }
    case TokenKind::String: {
      const Token &Tok = advance();
      return std::make_unique<StringConstant>(Tok.Text, Loc);
    }
    case TokenKind::Underscore:
      advance();
      return std::make_unique<UnnamedVariable>(Loc);
    case TokenKind::Dollar:
      advance();
      return std::make_unique<Counter>(Loc);
    case TokenKind::LParen: {
      advance();
      auto Inner = parseExpr();
      if (!Inner)
        return nullptr;
      expect(TokenKind::RParen, "')'");
      return Inner;
    }
    case TokenKind::Ident:
      break;
    default:
      error("expected expression");
      return nullptr;
    }

    std::string Name = peek().Text;
    // Aggregates: `count : {...}`, `sum E : {...}`, `min E : {...}` (only
    // when not immediately applied like a functor call).
    if ((Name == "count" || Name == "sum" || Name == "min" || Name == "max") &&
        peek(1).Kind != TokenKind::LParen)
      return parseAggregate();

    advance();
    auto FunctorIt = NamedFunctors.find(Name);
    if (FunctorIt != NamedFunctors.end()) {
      if (!expect(TokenKind::LParen, "'(' after functor name"))
        return nullptr;
      std::vector<std::unique_ptr<Argument>> Args;
      if (!at(TokenKind::RParen)) {
        do {
          auto Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
        } while (accept(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "')'"))
        return nullptr;
      return std::make_unique<Functor>(FunctorIt->second, std::move(Args),
                                       Loc);
    }
    return std::make_unique<Variable>(std::move(Name), Loc);
  }

  std::unique_ptr<Argument> parseAggregate() {
    SrcLoc Loc = peek().Loc;
    std::string Name = advance().Text;
    AggregateOp Op;
    if (Name == "count")
      Op = AggregateOp::Count;
    else if (Name == "sum")
      Op = AggregateOp::Sum;
    else if (Name == "min")
      Op = AggregateOp::Min;
    else
      Op = AggregateOp::Max;

    std::unique_ptr<Argument> Target;
    if (Op != AggregateOp::Count) {
      Target = parseUnary();
      if (!Target)
        return nullptr;
    }
    if (!expect(TokenKind::Colon, "':' in aggregate"))
      return nullptr;
    if (!expect(TokenKind::LBrace, "'{' in aggregate"))
      return nullptr;
    std::vector<std::unique_ptr<Literal>> Body;
    do {
      auto Lit = parseLiteral();
      if (!Lit)
        return nullptr;
      Body.push_back(std::move(Lit));
    } while (accept(TokenKind::Comma));
    if (!expect(TokenKind::RBrace, "'}' in aggregate"))
      return nullptr;
    return std::make_unique<Aggregator>(Op, std::move(Target),
                                        std::move(Body), Loc);
  }

  static std::unique_ptr<Argument> makeBinary(FunctorOp Op,
                                              std::unique_ptr<Argument> Lhs,
                                              std::unique_ptr<Argument> Rhs,
                                              SrcLoc Loc) {
    std::vector<std::unique_ptr<Argument>> Args;
    Args.push_back(std::move(Lhs));
    Args.push_back(std::move(Rhs));
    return std::make_unique<Functor>(Op, std::move(Args), Loc);
  }

  static std::unique_ptr<Argument>
  makeUnary(FunctorOp Op, std::unique_ptr<Argument> Operand, SrcLoc Loc) {
    std::vector<std::unique_ptr<Argument>> Args;
    Args.push_back(std::move(Operand));
    return std::make_unique<Functor>(Op, std::move(Args), Loc);
  }

  std::vector<Token> Tokens;
  std::vector<std::string> &Errors;
  std::size_t Pos = 0;
};

} // namespace

ParseResult stird::ast::parseProgram(const std::string &Source) {
  ParseResult Result;
  std::vector<Token> Tokens = lex(Source, Result.Errors);
  Parser P(std::move(Tokens), Result.Errors);
  Result.Prog = P.run();
  return Result;
}
