//===- ast/Parser.h - Datalog parser ----------------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing an ast::Program. Collects all
/// diagnostics instead of stopping at the first error.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_AST_PARSER_H
#define STIRD_AST_PARSER_H

#include "ast/Ast.h"

#include <memory>
#include <string>
#include <vector>

namespace stird::ast {

/// Result of parsing: the program (possibly partial on errors) plus
/// diagnostics.
struct ParseResult {
  std::unique_ptr<Program> Prog;
  std::vector<std::string> Errors;

  bool succeeded() const { return Errors.empty(); }
};

/// Parses Datalog source text.
ParseResult parseProgram(const std::string &Source);

} // namespace stird::ast

#endif // STIRD_AST_PARSER_H
