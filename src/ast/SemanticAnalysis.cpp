//===- ast/SemanticAnalysis.cpp - Checks and program structure -------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ast/SemanticAnalysis.h"

#include "util/MiscUtil.h"

#include <algorithm>
#include <functional>
#include <optional>

using namespace stird;
using namespace stird::ast;

namespace {

bool isNumericKind(TypeKind Kind) {
  return Kind == TypeKind::Number || Kind == TypeKind::Unsigned ||
         Kind == TypeKind::Float;
}

bool isIntegralKind(TypeKind Kind) {
  return Kind == TypeKind::Number || Kind == TypeKind::Unsigned;
}

/// Per-program checking state.
class Analyzer {
public:
  Analyzer(const Program &Prog, SemanticInfo &Info) : Prog(Prog), Info(Info) {}

  void run() {
    for (const auto &C : Prog.Clauses)
      checkClause(*C);
    stratify();
  }

private:
  void error(SrcLoc Loc, const std::string &Message) {
    Info.Errors.push_back("line " + std::to_string(Loc.Line) + ":" +
                          std::to_string(Loc.Col) + ": " + Message);
  }

  //===--------------------------------------------------------------------===
  // Clause checking
  //===--------------------------------------------------------------------===

  /// Variable typing scope: one per clause, with aggregate bodies sharing
  /// the enclosing clause's scope (Soufflé-style variable injection).
  using VarTypes = std::unordered_map<std::string, TypeKind>;

  void checkClause(const Clause &C) {
    const RelationDecl *HeadRel = Prog.findRelation(C.getHead().getName());
    if (!HeadRel) {
      error(C.getLoc(),
            "undeclared relation '" + C.getHead().getName() + "' in head");
      return;
    }
    if (C.getHead().getArity() != HeadRel->getArity()) {
      error(C.getLoc(), "arity mismatch for '" + HeadRel->getName() +
                            "': expected " +
                            std::to_string(HeadRel->getArity()) + ", got " +
                            std::to_string(C.getHead().getArity()));
      return;
    }
    if (C.isFact())
      checkFactArgs(C);

    VarTypes Vars;
    // Pass 1: atoms bind variable types (body first so constraints see
    // body-variable types; head last).
    for (const auto &Lit : C.getBody())
      if (Lit->getKind() != Literal::Kind::Constraint)
        checkLiteralAtoms(*Lit, Vars);
    checkAtomArgs(C.getHead(), Vars);
    // Pass 2: constraints.
    for (const auto &Lit : C.getBody())
      if (Lit->getKind() == Literal::Kind::Constraint)
        checkConstraint(static_cast<const Constraint &>(*Lit), Vars);

    checkGroundedness(C);
    Info.ClausesOf[HeadRel->getName()].push_back(&C);
  }

  /// Facts must be entirely constant.
  void checkFactArgs(const Clause &C) {
    for (const auto &Arg : C.getHead().getArgs()) {
      switch (Arg->getKind()) {
      case Argument::Kind::NumberConstant:
      case Argument::Kind::UnsignedConstant:
      case Argument::Kind::FloatConstant:
      case Argument::Kind::StringConstant:
        break;
      default:
        error(Arg->getLoc(), "facts must have constant arguments");
      }
    }
  }

  void checkLiteralAtoms(const Literal &Lit, VarTypes &Vars) {
    switch (Lit.getKind()) {
    case Literal::Kind::Atom:
      checkAtomArgs(static_cast<const Atom &>(Lit), Vars);
      return;
    case Literal::Kind::Negation:
      checkAtomArgs(static_cast<const Negation &>(Lit).getAtom(), Vars);
      return;
    case Literal::Kind::Constraint:
      return;
    }
  }

  void checkAtomArgs(const Atom &A, VarTypes &Vars) {
    const RelationDecl *Rel = Prog.findRelation(A.getName());
    if (!Rel) {
      error(A.getLoc(), "undeclared relation '" + A.getName() + "'");
      return;
    }
    if (A.getArity() != Rel->getArity()) {
      error(A.getLoc(), "arity mismatch for '" + Rel->getName() +
                            "': expected " +
                            std::to_string(Rel->getArity()) + ", got " +
                            std::to_string(A.getArity()));
      return;
    }
    for (std::size_t I = 0; I < A.getArity(); ++I)
      checkArg(*A.getArgs()[I], Rel->getAttributes()[I].Type, Vars);
  }

  void checkConstraint(const Constraint &Con, VarTypes &Vars) {
    // Pick the constraint's operand type from whichever side already has a
    // known type; default to number.
    TypeKind Kind = TypeKind::Number;
    if (auto Known = peekType(Con.getLhs(), Vars))
      Kind = *Known;
    else if (auto Known = peekType(Con.getRhs(), Vars))
      Kind = *Known;
    checkArg(Con.getLhs(), Kind, Vars);
    checkArg(Con.getRhs(), Kind, Vars);
  }

  /// Non-committal type probe: the type of an argument if it is already
  /// determined by a constant, a recorded variable, or a functor with a
  /// fixed result type.
  std::optional<TypeKind> peekType(const Argument &Arg,
                                   const VarTypes &Vars) const {
    switch (Arg.getKind()) {
    case Argument::Kind::NumberConstant:
      return TypeKind::Number;
    case Argument::Kind::UnsignedConstant:
      return TypeKind::Unsigned;
    case Argument::Kind::FloatConstant:
      return TypeKind::Float;
    case Argument::Kind::StringConstant:
      return TypeKind::Symbol;
    case Argument::Kind::Counter:
      return TypeKind::Number;
    case Argument::Kind::Variable: {
      auto It = Vars.find(static_cast<const Variable &>(Arg).getName());
      if (It == Vars.end())
        return std::nullopt;
      return It->second;
    }
    case Argument::Kind::Functor: {
      const auto &F = static_cast<const Functor &>(Arg);
      switch (F.getOp()) {
      case FunctorOp::Cat:
      case FunctorOp::Substr:
      case FunctorOp::ToString:
        return TypeKind::Symbol;
      case FunctorOp::Strlen:
      case FunctorOp::Ord:
      case FunctorOp::ToNumber:
        return TypeKind::Number;
      default:
        // Polymorphic numeric functor: peek at operands.
        for (const auto &Operand : F.getArgs())
          if (auto Known = peekType(*Operand, Vars))
            return Known;
        return std::nullopt;
      }
    }
    case Argument::Kind::Aggregator: {
      const auto &Agg = static_cast<const Aggregator &>(Arg);
      if (Agg.getOp() == AggregateOp::Count)
        return TypeKind::Number;
      return std::nullopt;
    }
    case Argument::Kind::UnnamedVariable:
      return std::nullopt;
    }
    return std::nullopt;
  }

  /// Checks \p Arg against the \p Expected type, recording the resolved
  /// type of every node and unifying variable occurrences.
  void checkArg(const Argument &Arg, TypeKind Expected, VarTypes &Vars) {
    Info.ExprTypes[&Arg] = Expected;
    switch (Arg.getKind()) {
    case Argument::Kind::UnnamedVariable:
      return;
    case Argument::Kind::Variable: {
      const auto &Var = static_cast<const Variable &>(Arg);
      auto [It, Inserted] = Vars.emplace(Var.getName(), Expected);
      if (!Inserted && It->second != Expected)
        error(Arg.getLoc(), "variable '" + Var.getName() + "' used as both " +
                                typeName(It->second) + " and " +
                                typeName(Expected));
      return;
    }
    case Argument::Kind::NumberConstant:
      if (Expected != TypeKind::Number)
        error(Arg.getLoc(), std::string("number literal where ") +
                                typeName(Expected) + " is expected");
      return;
    case Argument::Kind::UnsignedConstant:
      if (Expected != TypeKind::Unsigned)
        error(Arg.getLoc(), std::string("unsigned literal where ") +
                                typeName(Expected) + " is expected");
      return;
    case Argument::Kind::FloatConstant:
      if (Expected != TypeKind::Float)
        error(Arg.getLoc(), std::string("float literal where ") +
                                typeName(Expected) + " is expected");
      return;
    case Argument::Kind::StringConstant:
      if (Expected != TypeKind::Symbol)
        error(Arg.getLoc(), std::string("string literal where ") +
                                typeName(Expected) + " is expected");
      return;
    case Argument::Kind::Counter:
      if (Expected != TypeKind::Number)
        error(Arg.getLoc(), "'$' produces a number");
      return;
    case Argument::Kind::Functor:
      checkFunctor(static_cast<const Functor &>(Arg), Expected, Vars);
      return;
    case Argument::Kind::Aggregator:
      checkAggregator(static_cast<const Aggregator &>(Arg), Expected, Vars);
      return;
    }
  }

  void checkFunctor(const Functor &F, TypeKind Expected, VarTypes &Vars) {
    auto RequireArgs = [&](std::size_t N) {
      if (F.getArgs().size() == N)
        return true;
      error(F.getLoc(), "functor expects " + std::to_string(N) +
                            " argument(s), got " +
                            std::to_string(F.getArgs().size()));
      return false;
    };
    switch (F.getOp()) {
    case FunctorOp::Cat:
      if (Expected != TypeKind::Symbol)
        error(F.getLoc(), "cat produces a symbol");
      for (const auto &Operand : F.getArgs())
        checkArg(*Operand, TypeKind::Symbol, Vars);
      return;
    case FunctorOp::Substr:
      if (!RequireArgs(3))
        return;
      if (Expected != TypeKind::Symbol)
        error(F.getLoc(), "substr produces a symbol");
      checkArg(*F.getArgs()[0], TypeKind::Symbol, Vars);
      checkArg(*F.getArgs()[1], TypeKind::Number, Vars);
      checkArg(*F.getArgs()[2], TypeKind::Number, Vars);
      return;
    case FunctorOp::Strlen:
    case FunctorOp::Ord:
      if (!RequireArgs(1))
        return;
      if (Expected != TypeKind::Number)
        error(F.getLoc(), "functor produces a number");
      checkArg(*F.getArgs()[0], TypeKind::Symbol, Vars);
      return;
    case FunctorOp::ToNumber:
      if (!RequireArgs(1))
        return;
      if (Expected != TypeKind::Number)
        error(F.getLoc(), "to_number produces a number");
      checkArg(*F.getArgs()[0], TypeKind::Symbol, Vars);
      return;
    case FunctorOp::ToString:
      if (!RequireArgs(1))
        return;
      if (Expected != TypeKind::Symbol)
        error(F.getLoc(), "to_string produces a symbol");
      checkArg(*F.getArgs()[0], TypeKind::Number, Vars);
      return;
    case FunctorOp::Neg:
      if (!RequireArgs(1))
        return;
      if (!isNumericKind(Expected))
        error(F.getLoc(), "negation requires a numeric context");
      checkArg(*F.getArgs()[0], Expected, Vars);
      return;
    case FunctorOp::BNot:
    case FunctorOp::LNot:
      if (!RequireArgs(1))
        return;
      if (!isIntegralKind(Expected))
        error(F.getLoc(), "bitwise/logical not requires an integral context");
      checkArg(*F.getArgs()[0], Expected, Vars);
      return;
    case FunctorOp::Band:
    case FunctorOp::Bor:
    case FunctorOp::Bxor:
    case FunctorOp::Bshl:
    case FunctorOp::Bshr:
      if (!RequireArgs(2))
        return;
      if (!isIntegralKind(Expected))
        error(F.getLoc(), "bitwise functor requires an integral context");
      checkArg(*F.getArgs()[0], Expected, Vars);
      checkArg(*F.getArgs()[1], Expected, Vars);
      return;
    case FunctorOp::Add:
    case FunctorOp::Sub:
    case FunctorOp::Mul:
    case FunctorOp::Div:
    case FunctorOp::Mod:
    case FunctorOp::Exp:
    case FunctorOp::Max:
    case FunctorOp::Min:
      if (F.getOp() != FunctorOp::Max && F.getOp() != FunctorOp::Min &&
          !RequireArgs(2))
        return;
      if (!isNumericKind(Expected))
        error(F.getLoc(), "arithmetic functor requires a numeric context");
      if ((F.getOp() == FunctorOp::Mod) && Expected == TypeKind::Float)
        error(F.getLoc(), "'%' is not defined on float");
      for (const auto &Operand : F.getArgs())
        checkArg(*Operand, Expected, Vars);
      return;
    }
  }

  void checkAggregator(const Aggregator &Agg, TypeKind Expected,
                       VarTypes &Vars) {
    // The aggregate body shares the clause scope: outer variables are
    // injected, new variables are local witnesses.
    for (const auto &Lit : Agg.getBody())
      if (Lit->getKind() != Literal::Kind::Constraint)
        checkLiteralAtoms(*Lit, Vars);
    for (const auto &Lit : Agg.getBody())
      if (Lit->getKind() == Literal::Kind::Constraint)
        checkConstraint(static_cast<const Constraint &>(*Lit), Vars);

    if (Agg.getOp() == AggregateOp::Count) {
      if (Expected != TypeKind::Number)
        error(Agg.getLoc(), "count produces a number");
      return;
    }
    if (!Agg.getTarget()) {
      error(Agg.getLoc(), "aggregate requires a target expression");
      return;
    }
    if (!isNumericKind(Expected))
      error(Agg.getLoc(), "numeric aggregate in non-numeric context");
    checkArg(*Agg.getTarget(), Expected, Vars);
  }

  //===--------------------------------------------------------------------===
  // Groundedness
  //===--------------------------------------------------------------------===

  /// Collects the names of all variables in an argument tree (not
  /// descending into aggregate bodies, whose variables are local).
  static void collectVars(const Argument &Arg,
                          std::vector<std::string> &Out) {
    switch (Arg.getKind()) {
    case Argument::Kind::Variable:
      Out.push_back(static_cast<const Variable &>(Arg).getName());
      return;
    case Argument::Kind::Functor:
      for (const auto &Operand :
           static_cast<const Functor &>(Arg).getArgs())
        collectVars(*Operand, Out);
      return;
    default:
      return;
    }
  }

  static bool allGrounded(const Argument &Arg,
                          const std::unordered_set<std::string> &Grounded) {
    std::vector<std::string> Vars;
    collectVars(Arg, Vars);
    return std::all_of(Vars.begin(), Vars.end(), [&](const std::string &V) {
      return Grounded.count(V) != 0;
    });
  }

  void checkGroundedness(const Clause &C) {
    std::unordered_set<std::string> Grounded;
    // Fixpoint: positive atoms ground their direct variable arguments;
    // an equality grounds a lone variable once the other side is grounded.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &Lit : C.getBody()) {
        if (Lit->getKind() == Literal::Kind::Atom) {
          for (const auto &Arg :
               static_cast<const Atom &>(*Lit).getArgs()) {
            if (Arg->getKind() == Argument::Kind::Variable) {
              const auto &Name =
                  static_cast<const Variable &>(*Arg).getName();
              Changed |= Grounded.insert(Name).second;
            }
          }
          continue;
        }
        if (Lit->getKind() == Literal::Kind::Constraint) {
          const auto &Con = static_cast<const Constraint &>(*Lit);
          if (Con.getOp() != ConstraintOp::Eq)
            continue;
          auto TryGround = [&](const Argument &Target,
                               const Argument &Source) {
            if (Target.getKind() != Argument::Kind::Variable)
              return;
            if (!allGrounded(Source, Grounded))
              return;
            if (Source.getKind() == Argument::Kind::Aggregator &&
                !aggregateGrounded(
                    static_cast<const Aggregator &>(Source), Grounded))
              return;
            const auto &Name =
                static_cast<const Variable &>(Target).getName();
            Changed |= Grounded.insert(Name).second;
          };
          TryGround(Con.getLhs(), Con.getRhs());
          TryGround(Con.getRhs(), Con.getLhs());
        }
      }
    }

    auto RequireGrounded = [&](const Argument &Arg, const char *Where) {
      std::vector<std::string> Vars;
      collectVars(Arg, Vars);
      for (const auto &Name : Vars)
        if (!Grounded.count(Name))
          error(Arg.getLoc(), "ungrounded variable '" + Name + "' in " +
                                  Where);
    };

    for (const auto &Arg : C.getHead().getArgs())
      RequireGrounded(*Arg, "rule head");
    for (const auto &Lit : C.getBody()) {
      if (Lit->getKind() == Literal::Kind::Negation) {
        for (const auto &Arg :
             static_cast<const Negation &>(*Lit).getAtom().getArgs())
          RequireGrounded(*Arg, "negated atom");
      } else if (Lit->getKind() == Literal::Kind::Constraint) {
        const auto &Con = static_cast<const Constraint &>(*Lit);
        // An equality may ground one side; everything else must be fully
        // grounded (already ensured by the fixpoint for grounding uses).
        if (Con.getOp() != ConstraintOp::Eq) {
          RequireGrounded(Con.getLhs(), "constraint");
          RequireGrounded(Con.getRhs(), "constraint");
        } else {
          if (!allGrounded(Con.getLhs(), Grounded))
            RequireGrounded(Con.getLhs(), "constraint");
          if (!allGrounded(Con.getRhs(), Grounded))
            RequireGrounded(Con.getRhs(), "constraint");
        }
      }
    }
  }

  /// An aggregate body is internally grounded if every variable used in the
  /// target or in negations/constraints of the body is bound by an inner
  /// positive atom or injected from the outer scope.
  bool aggregateGrounded(const Aggregator &Agg,
                         const std::unordered_set<std::string> &Outer) {
    std::unordered_set<std::string> Grounded = Outer;
    for (const auto &Lit : Agg.getBody())
      if (Lit->getKind() == Literal::Kind::Atom)
        for (const auto &Arg : static_cast<const Atom &>(*Lit).getArgs())
          if (Arg->getKind() == Argument::Kind::Variable)
            Grounded.insert(
                static_cast<const Variable &>(*Arg).getName());
    if (Agg.getTarget() && !allGrounded(*Agg.getTarget(), Grounded))
      return false;
    return true;
  }

  //===--------------------------------------------------------------------===
  // Stratification
  //===--------------------------------------------------------------------===

  /// Dependency edge collected from clauses.
  struct Edge {
    std::size_t From; // body relation
    std::size_t To;   // head relation
    bool Negative;
  };

  void collectBodyDeps(const Literal &Lit, std::size_t HeadIndex,
                       std::vector<Edge> &Edges) {
    switch (Lit.getKind()) {
    case Literal::Kind::Atom: {
      const auto &A = static_cast<const Atom &>(Lit);
      if (auto Index = indexOfRelation(A.getName()))
        Edges.push_back({*Index, HeadIndex, /*Negative=*/false});
      for (const auto &Arg : A.getArgs())
        collectArgDeps(*Arg, HeadIndex, Edges);
      return;
    }
    case Literal::Kind::Negation: {
      const auto &A = static_cast<const Negation &>(Lit).getAtom();
      if (auto Index = indexOfRelation(A.getName()))
        Edges.push_back({*Index, HeadIndex, /*Negative=*/true});
      return;
    }
    case Literal::Kind::Constraint: {
      const auto &Con = static_cast<const Constraint &>(Lit);
      collectArgDeps(Con.getLhs(), HeadIndex, Edges);
      collectArgDeps(Con.getRhs(), HeadIndex, Edges);
      return;
    }
    }
  }

  /// Aggregates behave like negation for stratification: the aggregated
  /// relation must be fully computed first.
  void collectArgDeps(const Argument &Arg, std::size_t HeadIndex,
                      std::vector<Edge> &Edges) {
    switch (Arg.getKind()) {
    case Argument::Kind::Functor:
      for (const auto &Operand :
           static_cast<const Functor &>(Arg).getArgs())
        collectArgDeps(*Operand, HeadIndex, Edges);
      return;
    case Argument::Kind::Aggregator:
      for (const auto &Lit :
           static_cast<const Aggregator &>(Arg).getBody()) {
        if (Lit->getKind() == Literal::Kind::Atom) {
          const auto &A = static_cast<const Atom &>(*Lit);
          if (auto Index = indexOfRelation(A.getName()))
            Edges.push_back({*Index, HeadIndex, /*Negative=*/true});
        } else {
          collectBodyDeps(*Lit, HeadIndex, Edges);
        }
      }
      return;
    default:
      return;
    }
  }

  std::optional<std::size_t> indexOfRelation(const std::string &Name) const {
    for (std::size_t I = 0; I < Prog.Relations.size(); ++I)
      if (Prog.Relations[I]->getName() == Name)
        return I;
    return std::nullopt;
  }

  void stratify() {
    const std::size_t N = Prog.Relations.size();
    std::vector<Edge> Edges;
    for (const auto &C : Prog.Clauses) {
      auto HeadIndex = indexOfRelation(C->getHead().getName());
      if (!HeadIndex)
        continue;
      for (const auto &Lit : C->getBody())
        collectBodyDeps(*Lit, *HeadIndex, Edges);
      for (const auto &Arg : C->getHead().getArgs())
        collectArgDeps(*Arg, *HeadIndex, Edges);
    }

    std::vector<std::vector<std::size_t>> Succ(N);
    for (const Edge &E : Edges)
      Succ[E.From].push_back(E.To);

    // Tarjan's SCC algorithm (iterative to survive deep rule chains).
    std::vector<int> Index(N, -1), Low(N, 0), Comp(N, -1);
    std::vector<bool> OnStack(N, false);
    std::vector<std::size_t> Stack;
    int NextIndex = 0;
    int NumComps = 0;

    struct Frame {
      std::size_t Node;
      std::size_t NextSucc;
    };
    for (std::size_t Start = 0; Start < N; ++Start) {
      if (Index[Start] != -1)
        continue;
      std::vector<Frame> CallStack{{Start, 0}};
      Index[Start] = Low[Start] = NextIndex++;
      Stack.push_back(Start);
      OnStack[Start] = true;
      while (!CallStack.empty()) {
        Frame &Top = CallStack.back();
        if (Top.NextSucc < Succ[Top.Node].size()) {
          std::size_t Next = Succ[Top.Node][Top.NextSucc++];
          if (Index[Next] == -1) {
            Index[Next] = Low[Next] = NextIndex++;
            Stack.push_back(Next);
            OnStack[Next] = true;
            CallStack.push_back({Next, 0});
          } else if (OnStack[Next]) {
            Low[Top.Node] = std::min(Low[Top.Node], Index[Next]);
          }
          continue;
        }
        if (Low[Top.Node] == Index[Top.Node]) {
          for (;;) {
            std::size_t Member = Stack.back();
            Stack.pop_back();
            OnStack[Member] = false;
            Comp[Member] = NumComps;
            if (Member == Top.Node)
              break;
          }
          ++NumComps;
        }
        std::size_t Done = Top.Node;
        CallStack.pop_back();
        if (!CallStack.empty())
          Low[CallStack.back().Node] =
              std::min(Low[CallStack.back().Node], Low[Done]);
      }
    }

    // Tarjan numbers components in reverse topological order; evaluation
    // order is the reverse of that.
    std::vector<Stratum> Strata(NumComps);
    for (std::size_t I = 0; I < N; ++I) {
      std::size_t StratumIndex =
          static_cast<std::size_t>(NumComps - 1 - Comp[I]);
      Strata[StratumIndex].Relations.push_back(Prog.Relations[I].get());
      Info.StratumOf[Prog.Relations[I]->getName()] = StratumIndex;
    }

    for (const Edge &E : Edges) {
      if (Comp[E.From] != Comp[E.To])
        continue;
      std::size_t StratumIndex =
          static_cast<std::size_t>(NumComps - 1 - Comp[E.From]);
      Strata[StratumIndex].Recursive = true;
      if (E.Negative)
        Info.Errors.push_back(
            "program is not stratifiable: relation '" +
            Prog.Relations[E.To]->getName() +
            "' depends negatively on '" + Prog.Relations[E.From]->getName() +
            "' within the same recursive component");
    }

    Info.Strata = std::move(Strata);
  }

  const Program &Prog;
  SemanticInfo &Info;
};

} // namespace

SemanticInfo stird::ast::analyze(const Program &Prog) {
  SemanticInfo Info;
  Analyzer A(Prog, Info);
  A.run();
  return Info;
}
