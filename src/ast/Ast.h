//===- ast/Ast.h - Datalog abstract syntax tree -----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree of the supported Soufflé-style Datalog dialect:
/// relation declarations with typed attributes and data-structure
/// qualifiers, IO directives, facts and rules with negation, constraints,
/// arithmetic/string functors, counters and aggregates.
///
/// The hierarchy uses an LLVM-style Kind discriminator with static_cast
/// dispatch; there is no RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_AST_AST_H
#define STIRD_AST_AST_H

#include "util/RamTypes.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace stird::ast {

/// Source position for diagnostics.
struct SrcLoc {
  int Line = 0;
  int Col = 0;
};

/// The four primitive attribute types (the paper's second de-specialization
/// step erases them at the storage level; the frontend still checks them).
enum class TypeKind { Number, Unsigned, Float, Symbol };

/// Returns the Soufflé spelling of a primitive type.
const char *typeName(TypeKind Kind);

/// Which DER data structure backs a relation (a `.decl` qualifier).
enum class StructureKind { Btree, Brie, Art, Eqrel };

/// Functor operators, untyped at the AST level; semantic analysis resolves
/// numeric overloads to the typed RAM intrinsics.
enum class FunctorOp {
  // Unary.
  Neg,
  BNot,
  LNot,
  Ord,
  Strlen,
  ToNumber,
  ToString,
  // Binary and beyond.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Exp,
  Band,
  Bor,
  Bxor,
  Bshl,
  Bshr,
  Max,
  Min,
  Cat,
  Substr,
};

/// Aggregate operators.
enum class AggregateOp { Count, Sum, Min, Max };

/// Comparison operators of constraint literals.
enum class ConstraintOp { Eq, Ne, Lt, Le, Gt, Ge, Match, Contains };

class Literal;

//===----------------------------------------------------------------------===//
// Arguments
//===----------------------------------------------------------------------===//

/// Base class of everything that can appear in an atom argument position.
class Argument {
public:
  enum class Kind {
    Variable,
    UnnamedVariable,
    NumberConstant,
    UnsignedConstant,
    FloatConstant,
    StringConstant,
    Functor,
    Counter,
    Aggregator,
  };

  virtual ~Argument() = default;
  Kind getKind() const { return TheKind; }
  SrcLoc getLoc() const { return Loc; }

  /// Deep copy, used when rules are instantiated into semi-naive versions.
  virtual std::unique_ptr<Argument> clone() const = 0;

  /// Renders the argument as Datalog source (for diagnostics and tests).
  virtual std::string toString() const = 0;

protected:
  Argument(Kind K, SrcLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SrcLoc Loc;
};

/// A named variable.
class Variable : public Argument {
public:
  Variable(std::string Name, SrcLoc Loc)
      : Argument(Kind::Variable, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  std::unique_ptr<Argument> clone() const override {
    return std::make_unique<Variable>(Name, getLoc());
  }
  std::string toString() const override { return Name; }

private:
  std::string Name;
};

/// The wildcard `_`.
class UnnamedVariable : public Argument {
public:
  explicit UnnamedVariable(SrcLoc Loc)
      : Argument(Kind::UnnamedVariable, Loc) {}

  std::unique_ptr<Argument> clone() const override {
    return std::make_unique<UnnamedVariable>(getLoc());
  }
  std::string toString() const override { return "_"; }
};

/// A signed number literal.
class NumberConstant : public Argument {
public:
  NumberConstant(RamDomain Value, SrcLoc Loc)
      : Argument(Kind::NumberConstant, Loc), Value(Value) {}

  RamDomain getValue() const { return Value; }

  std::unique_ptr<Argument> clone() const override {
    return std::make_unique<NumberConstant>(Value, getLoc());
  }
  std::string toString() const override { return std::to_string(Value); }

private:
  RamDomain Value;
};

/// An unsigned literal (suffix `u`).
class UnsignedConstant : public Argument {
public:
  UnsignedConstant(RamUnsigned Value, SrcLoc Loc)
      : Argument(Kind::UnsignedConstant, Loc), Value(Value) {}

  RamUnsigned getValue() const { return Value; }

  std::unique_ptr<Argument> clone() const override {
    return std::make_unique<UnsignedConstant>(Value, getLoc());
  }
  std::string toString() const override {
    return std::to_string(Value) + "u";
  }

private:
  RamUnsigned Value;
};

/// A floating-point literal.
class FloatConstant : public Argument {
public:
  FloatConstant(RamFloat Value, SrcLoc Loc)
      : Argument(Kind::FloatConstant, Loc), Value(Value) {}

  RamFloat getValue() const { return Value; }

  std::unique_ptr<Argument> clone() const override {
    return std::make_unique<FloatConstant>(Value, getLoc());
  }
  std::string toString() const override { return std::to_string(Value); }

private:
  RamFloat Value;
};

/// A string literal.
class StringConstant : public Argument {
public:
  StringConstant(std::string Value, SrcLoc Loc)
      : Argument(Kind::StringConstant, Loc), Value(std::move(Value)) {}

  const std::string &getValue() const { return Value; }

  std::unique_ptr<Argument> clone() const override {
    return std::make_unique<StringConstant>(Value, getLoc());
  }
  std::string toString() const override { return "\"" + Value + "\""; }

private:
  std::string Value;
};

/// An intrinsic functor application.
class Functor : public Argument {
public:
  Functor(FunctorOp Op, std::vector<std::unique_ptr<Argument>> Args,
          SrcLoc Loc)
      : Argument(Kind::Functor, Loc), Op(Op), Args(std::move(Args)) {}

  FunctorOp getOp() const { return Op; }
  const std::vector<std::unique_ptr<Argument>> &getArgs() const {
    return Args;
  }

  std::unique_ptr<Argument> clone() const override;
  std::string toString() const override;

private:
  FunctorOp Op;
  std::vector<std::unique_ptr<Argument>> Args;
};

/// The `$` auto-increment counter.
class Counter : public Argument {
public:
  explicit Counter(SrcLoc Loc) : Argument(Kind::Counter, Loc) {}

  std::unique_ptr<Argument> clone() const override {
    return std::make_unique<Counter>(getLoc());
  }
  std::string toString() const override { return "$"; }
};

//===----------------------------------------------------------------------===//
// Literals
//===----------------------------------------------------------------------===//

/// Base class of body literals and the rule head.
class Literal {
public:
  enum class Kind { Atom, Negation, Constraint };

  virtual ~Literal() = default;
  Kind getKind() const { return TheKind; }
  SrcLoc getLoc() const { return Loc; }

  virtual std::unique_ptr<Literal> clone() const = 0;
  virtual std::string toString() const = 0;

protected:
  Literal(Kind K, SrcLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SrcLoc Loc;
};

/// A positive relation atom R(x1, ..., xn).
class Atom : public Literal {
public:
  Atom(std::string Name, std::vector<std::unique_ptr<Argument>> Args,
       SrcLoc Loc)
      : Literal(Kind::Atom, Loc), Name(std::move(Name)),
        Args(std::move(Args)) {}

  const std::string &getName() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }
  const std::vector<std::unique_ptr<Argument>> &getArgs() const {
    return Args;
  }
  std::size_t getArity() const { return Args.size(); }

  std::unique_ptr<Atom> cloneAtom() const;
  std::unique_ptr<Literal> clone() const override { return cloneAtom(); }
  std::string toString() const override;

private:
  std::string Name;
  std::vector<std::unique_ptr<Argument>> Args;
};

/// A negated atom !R(x1, ..., xn).
class Negation : public Literal {
public:
  Negation(std::unique_ptr<Atom> Inner, SrcLoc Loc)
      : Literal(Kind::Negation, Loc), Inner(std::move(Inner)) {}

  const Atom &getAtom() const { return *Inner; }

  std::unique_ptr<Literal> clone() const override {
    return std::make_unique<Negation>(Inner->cloneAtom(), getLoc());
  }
  std::string toString() const override { return "!" + Inner->toString(); }

private:
  std::unique_ptr<Atom> Inner;
};

/// A binary constraint such as x < y + 1.
class Constraint : public Literal {
public:
  Constraint(ConstraintOp Op, std::unique_ptr<Argument> Lhs,
             std::unique_ptr<Argument> Rhs, SrcLoc Loc)
      : Literal(Kind::Constraint, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  ConstraintOp getOp() const { return Op; }
  const Argument &getLhs() const { return *Lhs; }
  const Argument &getRhs() const { return *Rhs; }

  std::unique_ptr<Literal> clone() const override {
    return std::make_unique<Constraint>(Op, Lhs->clone(), Rhs->clone(),
                                        getLoc());
  }
  std::string toString() const override;

private:
  ConstraintOp Op;
  std::unique_ptr<Argument> Lhs;
  std::unique_ptr<Argument> Rhs;
};

/// An aggregate argument, e.g. `sum y : { edge(x, y) }`. Declared after
/// Literal because its body is a literal list.
class Aggregator : public Argument {
public:
  Aggregator(AggregateOp Op, std::unique_ptr<Argument> Target,
             std::vector<std::unique_ptr<Literal>> Body, SrcLoc Loc)
      : Argument(Kind::Aggregator, Loc), Op(Op), Target(std::move(Target)),
        Body(std::move(Body)) {}

  AggregateOp getOp() const { return Op; }
  /// The folded expression; null for `count`.
  const Argument *getTarget() const { return Target.get(); }
  const std::vector<std::unique_ptr<Literal>> &getBody() const {
    return Body;
  }

  std::unique_ptr<Argument> clone() const override;
  std::string toString() const override;

private:
  AggregateOp Op;
  std::unique_ptr<Argument> Target;
  std::vector<std::unique_ptr<Literal>> Body;
};

//===----------------------------------------------------------------------===//
// Program structure
//===----------------------------------------------------------------------===//

/// One typed attribute of a relation declaration.
struct Attribute {
  std::string Name;
  TypeKind Type;
};

/// A `.decl` with its qualifiers and attached IO directives.
class RelationDecl {
public:
  RelationDecl(std::string Name, std::vector<Attribute> Attributes,
               StructureKind Structure, SrcLoc Loc)
      : Name(std::move(Name)), Attributes(std::move(Attributes)),
        Structure(Structure), Loc(Loc) {}

  const std::string &getName() const { return Name; }
  const std::vector<Attribute> &getAttributes() const { return Attributes; }
  std::size_t getArity() const { return Attributes.size(); }
  StructureKind getStructure() const { return Structure; }
  /// Rebinds the physical structure (the compile-time substrate override /
  /// feedback-selection hook; see core::CompileOptions::SubstrateOverrides).
  void setStructure(StructureKind Kind) { Structure = Kind; }
  SrcLoc getLoc() const { return Loc; }

  bool isInput() const { return Input; }
  bool isOutput() const { return Output; }
  bool isPrintSize() const { return PrintSize; }
  const std::string &getInputPath() const { return InputPath; }
  const std::string &getOutputPath() const { return OutputPath; }

  void markInput(std::string Path) {
    Input = true;
    InputPath = std::move(Path);
  }
  void markOutput(std::string Path) {
    Output = true;
    OutputPath = std::move(Path);
  }
  void markPrintSize() { PrintSize = true; }

private:
  std::string Name;
  std::vector<Attribute> Attributes;
  StructureKind Structure;
  SrcLoc Loc;
  bool Input = false;
  bool Output = false;
  bool PrintSize = false;
  std::string InputPath;
  std::string OutputPath;
};

/// A fact or rule.
class Clause {
public:
  Clause(std::unique_ptr<Atom> Head,
         std::vector<std::unique_ptr<Literal>> Body, SrcLoc Loc)
      : Head(std::move(Head)), Body(std::move(Body)), Loc(Loc) {}

  const Atom &getHead() const { return *Head; }
  Atom &getHead() { return *Head; }
  const std::vector<std::unique_ptr<Literal>> &getBody() const {
    return Body;
  }
  std::vector<std::unique_ptr<Literal>> &getBody() { return Body; }
  bool isFact() const { return Body.empty(); }
  SrcLoc getLoc() const { return Loc; }

  std::unique_ptr<Clause> clone() const;
  std::string toString() const;

private:
  std::unique_ptr<Atom> Head;
  std::vector<std::unique_ptr<Literal>> Body;
  SrcLoc Loc;
};

/// A whole parsed program.
class Program {
public:
  std::vector<std::unique_ptr<RelationDecl>> Relations;
  std::vector<std::unique_ptr<Clause>> Clauses;

  /// Finds a declaration by name, or null.
  const RelationDecl *findRelation(const std::string &Name) const;
  RelationDecl *findRelation(const std::string &Name);

  std::string toString() const;
};

} // namespace stird::ast

#endif // STIRD_AST_AST_H
