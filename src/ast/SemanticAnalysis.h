//===- ast/SemanticAnalysis.h - Checks and program structure ----*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis over a parsed program: name/arity resolution, type
/// checking of all argument trees, groundedness of rules, and
/// stratification (SCC condensation of the precedence graph with a
/// negative-cycle check). The result drives the AST-to-RAM translation.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_AST_SEMANTICANALYSIS_H
#define STIRD_AST_SEMANTICANALYSIS_H

#include "ast/Ast.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace stird::ast {

/// One stratum: a strongly connected component of the relation precedence
/// graph, in bottom-up evaluation order.
struct Stratum {
  std::vector<const RelationDecl *> Relations;
  /// True if the component contains a cycle (mutual or self recursion), in
  /// which case it is evaluated with a semi-naive fixpoint loop.
  bool Recursive = false;
};

/// Everything later phases need to know about a checked program.
struct SemanticInfo {
  std::vector<std::string> Errors;

  /// Strata in topological (evaluation) order.
  std::vector<Stratum> Strata;
  /// Relation name -> index into Strata.
  std::unordered_map<std::string, std::size_t> StratumOf;
  /// Clauses grouped by head relation, in source order.
  std::unordered_map<std::string, std::vector<const Clause *>> ClausesOf;
  /// Resolved primitive type of every argument node in the program.
  std::unordered_map<const Argument *, TypeKind> ExprTypes;

  bool succeeded() const { return Errors.empty(); }

  /// Type of an analyzed argument node. Defaults to Number for nodes the
  /// analysis never reached (error recovery).
  TypeKind typeOf(const Argument *Arg) const {
    auto It = ExprTypes.find(Arg);
    return It == ExprTypes.end() ? TypeKind::Number : It->second;
  }
};

/// Runs all semantic checks over \p Prog.
SemanticInfo analyze(const Program &Prog);

} // namespace stird::ast

#endif // STIRD_AST_SEMANTICANALYSIS_H
