//===- inc/CountedRelation.h - Support-count collector ----------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counting side of the incremental maintenance subsystem: a relation
/// wrapper that keeps a multiplicity per tuple instead of a set.
///
/// Two roles, both declared with ram::StructureKind::Counts:
///
///  * cnt_R — the support store: for every tuple of a counting-maintained
///    relation R, the number of distinct derivations that currently
///    produce it (FlowLog-style derivation counting). A tuple is in R iff
///    its support is positive.
///
///  * cadd_R / cdec_R — per-batch delta collectors: the signed rule
///    versions of the maintenance program project every (re)derivation
///    into these, one insert per derivation, and a FoldCounts statement
///    nets them into cnt_R afterwards.
///
/// Collectors are only ever written through Project (virtual insert) and
/// read back by FoldCounts, so the wrapper does not participate in the
/// specialized instruction portfolio; the de-specialized virtual path is
/// the single access path. Parallel rule bodies are safe because worker
/// TupleBuffers append privately (preserving multiplicity) and are flushed
/// sequentially at the statement barrier.
///
/// Backed by std::map for deterministic iteration order: the ins_/del_
/// deltas FoldCounts emits, and hence everything downstream, are then
/// independent of thread count and hash seeds.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INC_COUNTEDRELATION_H
#define STIRD_INC_COUNTEDRELATION_H

#include "interp/Relation.h"

#include <cstdint>
#include <map>

namespace stird::inc {

class CountedRelation final : public interp::RelationWrapper {
public:
  using CountMap = std::map<DynTuple, std::uint64_t>;

  CountedRelation(const ram::Relation &Decl,
                  std::vector<interp::Order> Orders)
      : RelationWrapper(interp::RelKind::Counts, Decl, std::move(Orders)) {}

  /// Bumps the tuple's multiplicity; returns true when the tuple is new
  /// (multiplicity went 0 -> 1), matching the set wrappers' "grew" notion.
  bool insert(const RamDomain *Tuple) override {
    DynTuple Key(Tuple, Tuple + getArity());
    return ++Counts[std::move(Key)] == 1;
  }

  /// Drops the tuple's multiplicity by one; removes it when it hits zero.
  /// Returns true when the tuple was present at all.
  bool erase(const RamDomain *Tuple) override {
    auto It = Counts.find(DynTuple(Tuple, Tuple + getArity()));
    if (It == Counts.end())
      return false;
    if (--It->second == 0)
      Counts.erase(It);
    return true;
  }

  bool contains(const RamDomain *Tuple) const override {
    return Counts.count(DynTuple(Tuple, Tuple + getArity())) != 0;
  }

  bool containsRange(std::size_t, const RamDomain *, std::size_t PrefixLen,
                     std::uint32_t) const override {
    if (PrefixLen == 0)
      return !Counts.empty();
    fatal("count collector '" + getName() + "' does not support searches");
  }

  /// Number of distinct tuples (not the sum of multiplicities).
  std::size_t size() const override { return Counts.size(); }

  void clear() override { Counts.clear(); }

  void swap(RelationWrapper &Other) override {
    assert(Other.getKind() == interp::RelKind::Counts &&
           "swap layout mismatch");
    Counts.swap(static_cast<CountedRelation &>(Other).Counts);
  }

  void insertAll(const RelationWrapper &Src) override {
    Src.forEach([&](const RamDomain *Tuple) { insert(Tuple); });
  }

  /// Distinct tuples in lexicographic order (multiplicities invisible).
  std::unique_ptr<interp::TupleStream> scan(std::size_t,
                                            bool) const override {
    return std::make_unique<Stream>(*this);
  }

  std::unique_ptr<interp::TupleStream>
  range(std::size_t, const RamDomain *, std::size_t, std::uint32_t,
        bool) const override {
    fatal("count collector '" + getName() + "' does not support searches");
  }

  /// Count-aware enumeration, in deterministic (lexicographic) order.
  template <typename Fn> void forEachCount(Fn &&Callback) const {
    for (const auto &[Tuple, Count] : Counts)
      Callback(Tuple, Count);
  }

  /// Multiplicity of \p Key, 0 if absent.
  std::uint64_t countOf(const DynTuple &Key) const {
    auto It = Counts.find(Key);
    return It == Counts.end() ? 0 : It->second;
  }

  /// Adds \p Delta (may be negative) to \p Key's multiplicity; the result
  /// must stay non-negative. Returns the new multiplicity.
  std::uint64_t adjust(const DynTuple &Key, std::int64_t Delta) {
    auto It = Counts.lower_bound(Key);
    if (It == Counts.end() || It->first != Key) {
      if (Delta <= 0) {
        assert(Delta == 0 && "support count underflow");
        return 0;
      }
      Counts.emplace_hint(It, Key, static_cast<std::uint64_t>(Delta));
      return static_cast<std::uint64_t>(Delta);
    }
    const std::int64_t Next =
        static_cast<std::int64_t>(It->second) + Delta;
    assert(Next >= 0 && "support count underflow");
    if (Next <= 0) {
      Counts.erase(It);
      return 0;
    }
    It->second = static_cast<std::uint64_t>(Next);
    return It->second;
  }

private:
  class Stream final : public interp::TupleStream {
  public:
    explicit Stream(const CountedRelation &Rel)
        : Cur(Rel.Counts.begin()), End(Rel.Counts.end()),
          Arity(Rel.getArity()) {}

    std::size_t refill(RamDomain *Buffer, std::size_t Capacity) override {
      std::size_t N = 0;
      while (N < Capacity && Cur != End) {
        std::memcpy(Buffer + N * Arity, Cur->first.data(),
                    Arity * sizeof(RamDomain));
        ++Cur;
        ++N;
      }
      return N;
    }

  private:
    CountMap::const_iterator Cur;
    CountMap::const_iterator End;
    std::size_t Arity;
  };

  CountMap Counts;
};

} // namespace stird::inc

#endif // STIRD_INC_COUNTEDRELATION_H
