//===- inc/Maintainer.h - Incremental maintenance driver --------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime driver of the incremental maintenance subsystem: stages one
/// mixed insert/retract batch into the per-relation net deltas
/// (delta_ins_E / delta_del_E), then runs the translator's maintenance
/// plan stratum by stratum — the counting and DRed statements through the
/// engine's de-specialized statement executor, the Reeval fallbacks as a
/// scoped snapshot/clear/re-run/diff of that stratum's main statements —
/// and reports what happened per stratum.
///
/// The driver is deliberately engine-agnostic about tuple ownership: it
/// only touches relations through the virtual RelationWrapper interface,
/// so it works identically over the dynamic and static backends.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_INC_MAINTAINER_H
#define STIRD_INC_MAINTAINER_H

#include "interp/Engine.h"
#include "ram/Ram.h"

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace stird::inc {

/// One relation's portion of a mixed batch. Within a batch, retractions
/// are applied before insertions: a tuple both retracted and inserted ends
/// up present (and counts as a duplicate, not a change).
struct RelationOps {
  std::string Relation;
  std::vector<DynTuple> Inserts;
  std::vector<DynTuple> Retracts;
};

/// One mixed batch of EDB changes.
using MixedBatch = std::vector<RelationOps>;

/// What one maintained stratum did for a batch.
struct StratumReport {
  ram::Program::MaintStrategy Strategy;
  /// Why the stratum is a Reeval fallback ("" for counting/DRed).
  std::string FallbackReason;
  /// Net derived-tuple changes this stratum emitted downstream.
  std::uint64_t Inserted = 0;
  std::uint64_t Deleted = 0;
  /// DRed only: over-deleted tuples that survived rederivation.
  std::uint64_t Rederived = 0;
};

/// Outcome of one maintained batch.
struct MaintenanceReport {
  /// True when the maintenance plan ran (vs the caller falling back to a
  /// full rebuild or rejecting the batch).
  bool Maintained = false;
  /// EDB accounting (net semantics, see RelationOps).
  std::uint64_t Inserted = 0;   ///< genuinely new EDB tuples
  std::uint64_t Duplicates = 0; ///< inserts of already-present tuples
  std::uint64_t Deleted = 0;    ///< genuinely removed EDB tuples
  std::uint64_t Missing = 0;    ///< retracts of absent tuples
  /// Per-stratum breakdown, bottom-up, maintained strata only.
  std::vector<StratumReport> Strata;
  /// Number of Reeval-fallback strata that ran.
  std::uint64_t ReevalStrata = 0;
};

/// Drives the maintenance plan of one engine. The engine and program must
/// outlive the maintainer; one maintainer per resident engine instance.
class Maintainer {
public:
  Maintainer(const ram::Program &Prog, interp::Engine &Eng);

  /// Whether the program carries a maintenance plan at all. When false,
  /// reason() says why the translator refused.
  bool eligible() const { return Prog.hasMaintenance(); }
  const std::string &ineligibleReason() const {
    return Prog.getMaintIneligibleReason();
  }

  /// Seeds the counting strata's support stores from the bootstrapped
  /// relation contents. Must run exactly once, after the engine's initial
  /// run() (or a rebuild), before the first apply().
  void bootstrap();

  /// Returns "" when apply() can process \p Batch, else the reason it
  /// cannot (derived-relation target, eqrel retraction, program
  /// ineligible). Unknown relations and arity mismatches are also
  /// reported here so servers can reject instead of crashing.
  std::string rejectReason(const MixedBatch &Batch) const;

  /// Stages \p Batch and runs the maintenance plan. The caller must have
  /// checked rejectReason() first.
  MaintenanceReport apply(const MixedBatch &Batch);

private:
  interp::RelationWrapper &rel(const std::string &Name) const;
  /// Scoped re-evaluation of one Reeval stratum: snapshot, clear, re-run
  /// its main statements, diff into the ins/del deltas.
  void reevalStratum(const ram::Program::MaintStratum &MS);

  const ram::Program &Prog;
  interp::Engine &Eng;
  /// Relations defined by some maintained stratum (everything else
  /// declared is EDB).
  std::unordered_set<std::string> Derived;
  bool Bootstrapped = false;
};

} // namespace stird::inc

#endif // STIRD_INC_MAINTAINER_H
