//===- inc/Maintainer.cpp - Incremental maintenance driver --------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "inc/Maintainer.h"

#include "util/MiscUtil.h"

#include <cassert>
#include <set>

using namespace stird;
using namespace stird::inc;

Maintainer::Maintainer(const ram::Program &Prog, interp::Engine &Eng)
    : Prog(Prog), Eng(Eng) {
  for (const auto &MS : Prog.getMaintStrata())
    Derived.insert(MS.Relations.begin(), MS.Relations.end());
}

interp::RelationWrapper &Maintainer::rel(const std::string &Name) const {
  interp::RelationWrapper *R = Eng.getRelation(Name);
  if (!R)
    fatal("maintenance relation '" + Name + "' missing from engine");
  return *R;
}

void Maintainer::bootstrap() {
  assert(!Bootstrapped && "support counts would double");
  if (const ram::Statement *Init = Prog.getCountInit())
    Eng.runStatement(*Init);
  Bootstrapped = true;
}

std::string Maintainer::rejectReason(const MixedBatch &Batch) const {
  if (!eligible())
    return ineligibleReason().empty() ? "program has no maintenance plan"
                                      : ineligibleReason();
  for (const RelationOps &Ops : Batch) {
    // Declared relations all carry a MaintAux entry; anything else (aux
    // relations included) is not a valid batch target.
    const ram::Program::MaintAux *Aux = Prog.getMaintAux(Ops.Relation);
    if (!Aux)
      return "unknown relation '" + Ops.Relation + "'";
    if (Derived.count(Ops.Relation))
      return "relation '" + Ops.Relation +
             "' is derived by rules; only EDB relations accept batches";
    const ram::Relation *Decl = Prog.findRelation(Ops.Relation);
    if (Decl->getStructure() == ram::StructureKind::Eqrel &&
        !Ops.Retracts.empty())
      return "cannot retract from equivalence relation '" + Ops.Relation +
             "' (classes cannot be split)";
    for (const DynTuple &Tuple : Ops.Inserts)
      if (Tuple.size() != Decl->getArity())
        return "arity mismatch for relation '" + Ops.Relation + "'";
    for (const DynTuple &Tuple : Ops.Retracts)
      if (Tuple.size() != Decl->getArity())
        return "arity mismatch for relation '" + Ops.Relation + "'";
  }
  return "";
}

MaintenanceReport Maintainer::apply(const MixedBatch &Batch) {
  assert(Bootstrapped && "apply() before bootstrap()");
  MaintenanceReport Report;
  Report.Maintained = true;

  // Stage the net EDB change of the batch into the ins/del deltas:
  // retractions first, then insertions (an insert cancels a staged
  // deletion), duplicates and misses filtered against the live relation.
  for (const RelationOps &Ops : Batch) {
    const ram::Program::MaintAux &Aux = *Prog.getMaintAux(Ops.Relation);
    interp::RelationWrapper &Full = rel(Ops.Relation);
    interp::RelationWrapper &Ins = rel(Aux.Ins);
    interp::RelationWrapper &Del = rel(Aux.Del);
    for (const DynTuple &Tuple : Ops.Retracts) {
      if (!Full.contains(Tuple.data()) || !Del.insert(Tuple.data()))
        ++Report.Missing;
      else
        ++Report.Deleted;
    }
    for (const DynTuple &Tuple : Ops.Inserts) {
      if (Del.contains(Tuple.data())) {
        Del.erase(Tuple.data());
        --Report.Deleted;
        ++Report.Duplicates;
      } else if (Full.contains(Tuple.data())) {
        ++Report.Duplicates;
      } else if (Ins.insert(Tuple.data())) {
        ++Report.Inserted;
      } else {
        ++Report.Duplicates;
      }
    }
  }

  // EDB prologue, then every stratum bottom-up, exactly once: when a
  // stratum runs, all lower relations are final and the lower deltas
  // describe the net change.
  if (const ram::Statement *Pro = Prog.getMaintPrologue())
    Eng.runStatement(*Pro);
  for (const ram::Program::MaintStratum &MS : Prog.getMaintStrata()) {
    if (MS.Strategy == ram::Program::MaintStrategy::Reeval) {
      reevalStratum(MS);
      ++Report.ReevalStrata;
    } else {
      Eng.runStatement(*MS.Stmt);
    }
    // Harvest before the epilogue clears the aux relations. The deltas of
    // lower strata stay live for upper strata to consume; reading sizes
    // does not perturb them.
    StratumReport SR;
    SR.Strategy = MS.Strategy;
    SR.FallbackReason = MS.FallbackReason;
    for (const std::string &Name : MS.Relations) {
      const ram::Program::MaintAux &Aux = *Prog.getMaintAux(Name);
      SR.Inserted += rel(Aux.Ins).size();
      SR.Deleted += rel(Aux.Del).size();
      // SubtractInto left delta_del_R = rederive_R minus the survivors, so
      // the difference of the two sizes is exactly the rederived count.
      if (!Aux.Rederive.empty())
        SR.Rederived += rel(Aux.Rederive).size() - rel(Aux.Del).size();
    }
    Report.Strata.push_back(std::move(SR));
  }
  if (const ram::Statement *Epi = Prog.getMaintEpilogue())
    Eng.runStatement(*Epi);
  return Report;
}

void Maintainer::reevalStratum(const ram::Program::MaintStratum &MS) {
  // Scoped fallback: snapshot the stratum's relations, clear them, re-run
  // exactly this stratum's slice of the main program (its trailing
  // statements leave the semi-naive scratch relations empty again), then
  // diff old vs new into the ins/del deltas so downstream strata and the
  // serving telemetry see a precise net change.
  std::vector<std::set<DynTuple>> Old(MS.Relations.size());
  for (std::size_t I = 0; I < MS.Relations.size(); ++I) {
    interp::RelationWrapper &R = rel(MS.Relations[I]);
    R.forEach([&](const RamDomain *Tuple) {
      Old[I].emplace(Tuple, Tuple + R.getArity());
    });
    R.clear();
  }

  const auto &Children =
      static_cast<const ram::Sequence &>(Prog.getMain()).getStatements();
  assert(MS.MainEnd <= Children.size() && "stale main span");
  for (std::size_t I = MS.MainBegin; I < MS.MainEnd; ++I)
    Eng.runStatement(*Children[I]);

  for (std::size_t I = 0; I < MS.Relations.size(); ++I) {
    const ram::Program::MaintAux &Aux = *Prog.getMaintAux(MS.Relations[I]);
    interp::RelationWrapper &R = rel(MS.Relations[I]);
    interp::RelationWrapper &Ins = rel(Aux.Ins);
    interp::RelationWrapper &Del = rel(Aux.Del);
    R.forEach([&](const RamDomain *Tuple) {
      if (!Old[I].count(DynTuple(Tuple, Tuple + R.getArity())))
        Ins.insert(Tuple);
    });
    for (const DynTuple &Tuple : Old[I])
      if (!R.contains(Tuple.data()))
        Del.insert(Tuple.data());
  }
}
