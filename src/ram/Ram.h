//===- ram/Ram.h - The Relational Algebra Machine IR ------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Relational Algebra Machine (RAM) intermediate representation:
/// a tree of statements (control flow), operations (nested relational
/// loops), conditions and expressions, mirroring Soufflé's RAM as shown in
/// Fig 3 of the paper. Both the interpreters and the synthesizer consume
/// this IR; interpreter nodes keep shadow pointers back into it (Fig 4).
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_RAM_RAM_H
#define STIRD_RAM_RAM_H

#include "util/Csv.h"
#include "util/RamTypes.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace stird::ram {

/// Data structure backing a RAM relation. Counts is the incremental
/// maintenance subsystem's tuple -> multiplicity store (support counts and
/// per-batch count collectors); it never backs a declared relation.
enum class StructureKind { Btree, Brie, Art, Eqrel, Counts };

/// A relation declared in a RAM program. Orders (indexes) are attached by
/// index selection after translation.
class Relation {
public:
  Relation(std::string Name, std::vector<ColumnTypeKind> ColumnTypes,
           StructureKind Structure)
      : Name(std::move(Name)), ColumnTypes(std::move(ColumnTypes)),
        Structure(Structure) {}

  const std::string &getName() const { return Name; }
  std::size_t getArity() const { return ColumnTypes.size(); }
  const std::vector<ColumnTypeKind> &getColumnTypes() const {
    return ColumnTypes;
  }
  StructureKind getStructure() const { return Structure; }

  /// The lexicographic orders selected for this relation. Order 0 always
  /// exists; each order is a full column permutation whose prefix serves
  /// one or more primitive searches.
  const std::vector<std::vector<std::uint32_t>> &getOrders() const {
    return Orders;
  }
  void setOrders(std::vector<std::vector<std::uint32_t>> NewOrders) {
    Orders = std::move(NewOrders);
  }

  bool isInput() const { return Input; }
  bool isOutput() const { return Output; }
  bool isPrintSize() const { return PrintSize; }
  const std::string &getInputPath() const { return InputPath; }
  const std::string &getOutputPath() const { return OutputPath; }
  void markInput(std::string Path) {
    Input = true;
    InputPath = std::move(Path);
  }
  void markOutput(std::string Path) {
    Output = true;
    OutputPath = std::move(Path);
  }
  void markPrintSize() { PrintSize = true; }

private:
  std::string Name;
  std::vector<ColumnTypeKind> ColumnTypes;
  StructureKind Structure;
  std::vector<std::vector<std::uint32_t>> Orders;
  bool Input = false;
  bool Output = false;
  bool PrintSize = false;
  std::string InputPath;
  std::string OutputPath;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Typed intrinsic operators. Operations whose semantics differ per
/// primitive type carry the type in the opcode (the AST-level overload is
/// resolved during translation).
enum class IntrinsicOp {
  // Unary.
  Neg,
  FNeg,
  BNot,
  LNot,
  Strlen,
  Ord,
  ToNumber,
  ToString,
  // Binary arithmetic; Add/Sub/Mul share bit patterns for signed and
  // unsigned (two's-complement wraparound).
  Add,
  Sub,
  Mul,
  Div,
  UDiv,
  FAdd,
  FSub,
  FMul,
  FDiv,
  Mod,
  UMod,
  Exp,
  UExp,
  FExp,
  Band,
  Bor,
  Bxor,
  Bshl,
  Bshr,
  UBshr,
  Max,
  UMax,
  FMax,
  Min,
  UMin,
  FMin,
  // Strings.
  Cat,
  Substr,
};

/// Base class of RAM expressions.
class Expression {
public:
  enum class Kind {
    Constant,
    TupleElement,
    Intrinsic,
    AutoIncrement,
    Undef,
  };

  virtual ~Expression() = default;
  Kind getKind() const { return TheKind; }

protected:
  explicit Expression(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

using ExprPtr = std::unique_ptr<Expression>;

/// A literal RamDomain value (symbols pre-interned).
class Constant : public Expression {
public:
  explicit Constant(RamDomain Value)
      : Expression(Kind::Constant), Value(Value) {}
  RamDomain getValue() const { return Value; }

private:
  RamDomain Value;
};

/// Reads element \p Element of the runtime tuple bound to \p TupleId.
class TupleElement : public Expression {
public:
  TupleElement(std::uint32_t TupleId, std::uint32_t Element)
      : Expression(Kind::TupleElement), TupleId(TupleId), Element(Element) {}
  std::uint32_t getTupleId() const { return TupleId; }
  std::uint32_t getElement() const { return Element; }

private:
  std::uint32_t TupleId;
  std::uint32_t Element;
};

/// An intrinsic functor application.
class Intrinsic : public Expression {
public:
  Intrinsic(IntrinsicOp Op, std::vector<ExprPtr> Args)
      : Expression(Kind::Intrinsic), Op(Op), Args(std::move(Args)) {}
  IntrinsicOp getOp() const { return Op; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }

private:
  IntrinsicOp Op;
  std::vector<ExprPtr> Args;
};

/// The `$` counter: returns the next value of a program-global counter.
class AutoIncrement : public Expression {
public:
  AutoIncrement() : Expression(Kind::AutoIncrement) {}
};

/// An unspecified pattern column (wildcard in a primitive search).
class Undef : public Expression {
public:
  Undef() : Expression(Kind::Undef) {}
};

//===----------------------------------------------------------------------===//
// Conditions
//===----------------------------------------------------------------------===//

/// Typed comparison operators of constraints.
enum class CmpOp {
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  ULt,
  ULe,
  UGt,
  UGe,
  FLt,
  FLe,
  FGt,
  FGe,
};

/// Base class of RAM conditions.
class Condition {
public:
  enum class Kind {
    True,
    Conjunction,
    Negation,
    Constraint,
    EmptinessCheck,
    ExistenceCheck,
  };

  virtual ~Condition() = default;
  Kind getKind() const { return TheKind; }

protected:
  explicit Condition(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

using CondPtr = std::unique_ptr<Condition>;

/// The always-true condition.
class True : public Condition {
public:
  True() : Condition(Kind::True) {}
};

/// Logical conjunction.
class Conjunction : public Condition {
public:
  Conjunction(CondPtr Lhs, CondPtr Rhs)
      : Condition(Kind::Conjunction), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  const Condition &getLhs() const { return *Lhs; }
  const Condition &getRhs() const { return *Rhs; }

private:
  CondPtr Lhs;
  CondPtr Rhs;
};

/// Logical negation.
class Negation : public Condition {
public:
  explicit Negation(CondPtr Inner)
      : Condition(Kind::Negation), Inner(std::move(Inner)) {}
  const Condition &getInner() const { return *Inner; }

private:
  CondPtr Inner;
};

/// A binary comparison between two expressions.
class Constraint : public Condition {
public:
  Constraint(CmpOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Condition(Kind::Constraint), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  CmpOp getOp() const { return Op; }
  const Expression &getLhs() const { return *Lhs; }
  const Expression &getRhs() const { return *Rhs; }

private:
  CmpOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

/// True iff the relation holds no tuples.
class EmptinessCheck : public Condition {
public:
  explicit EmptinessCheck(const Relation *Rel)
      : Condition(Kind::EmptinessCheck), Rel(Rel) {}
  const Relation &getRelation() const { return *Rel; }

private:
  const Relation *Rel;
};

/// True iff some tuple matches the pattern (a primitive search; columns
/// with Undef are wildcards). Pattern columns are given in relation order;
/// the generator maps them onto a selected index.
class ExistenceCheck : public Condition {
public:
  ExistenceCheck(const Relation *Rel, std::vector<ExprPtr> Pattern)
      : Condition(Kind::ExistenceCheck), Rel(Rel),
        Pattern(std::move(Pattern)) {
    assert(this->Pattern.size() == Rel->getArity() &&
           "pattern width must match relation arity");
  }
  const Relation &getRelation() const { return *Rel; }
  const std::vector<ExprPtr> &getPattern() const { return Pattern; }

private:
  const Relation *Rel;
  std::vector<ExprPtr> Pattern;
};

//===----------------------------------------------------------------------===//
// Operations (nested relational loops within one Query)
//===----------------------------------------------------------------------===//

/// Base class of RAM operations. Operations nest: every non-leaf operation
/// executes its single child operation once per binding it produces.
class Operation {
public:
  enum class Kind {
    Scan,
    IndexScan,
    Filter,
    Project,
    Aggregate,
  };

  virtual ~Operation() = default;
  Kind getKind() const { return TheKind; }

protected:
  explicit Operation(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

using OpPtr = std::unique_ptr<Operation>;

/// FOR t IN rel — full enumeration binding TupleId.
class Scan : public Operation {
public:
  Scan(const Relation *Rel, std::uint32_t TupleId, OpPtr Nested)
      : Operation(Kind::Scan), Rel(Rel), TupleId(TupleId),
        Nested(std::move(Nested)) {}
  const Relation &getRelation() const { return *Rel; }
  std::uint32_t getTupleId() const { return TupleId; }
  const Operation &getNested() const { return *Nested; }

private:
  const Relation *Rel;
  std::uint32_t TupleId;
  OpPtr Nested;
};

/// FOR t IN rel ON INDEX pattern — a primitive search binding TupleId to
/// each tuple matching the bound pattern columns.
class IndexScan : public Operation {
public:
  IndexScan(const Relation *Rel, std::uint32_t TupleId,
            std::vector<ExprPtr> Pattern, OpPtr Nested)
      : Operation(Kind::IndexScan), Rel(Rel), TupleId(TupleId),
        Pattern(std::move(Pattern)), Nested(std::move(Nested)) {
    assert(this->Pattern.size() == Rel->getArity() &&
           "pattern width must match relation arity");
  }
  const Relation &getRelation() const { return *Rel; }
  std::uint32_t getTupleId() const { return TupleId; }
  const std::vector<ExprPtr> &getPattern() const { return Pattern; }
  const Operation &getNested() const { return *Nested; }

private:
  const Relation *Rel;
  std::uint32_t TupleId;
  std::vector<ExprPtr> Pattern;
  OpPtr Nested;
};

/// IF cond — executes the child only when the condition holds.
class Filter : public Operation {
public:
  Filter(CondPtr Cond, OpPtr Nested)
      : Operation(Kind::Filter), Cond(std::move(Cond)),
        Nested(std::move(Nested)) {}
  const Condition &getCondition() const { return *Cond; }
  const Operation &getNested() const { return *Nested; }

private:
  CondPtr Cond;
  OpPtr Nested;
};

/// INSERT (e1, ..., en) INTO rel — the leaf of every operation chain.
class Project : public Operation {
public:
  Project(const Relation *Rel, std::vector<ExprPtr> Values)
      : Operation(Kind::Project), Rel(Rel), Values(std::move(Values)) {
    assert(this->Values.size() == Rel->getArity() &&
           "value count must match relation arity");
  }
  const Relation &getRelation() const { return *Rel; }
  const std::vector<ExprPtr> &getValues() const { return Values; }

private:
  const Relation *Rel;
  std::vector<ExprPtr> Values;
};

/// Aggregate function kinds; Sum/Min/Max carry their primitive type.
enum class AggFunc {
  Count,
  Sum,
  USum,
  FSum,
  Min,
  UMin,
  FMin,
  Max,
  UMax,
  FMax,
};

/// Folds TargetExpr over all tuples of a primitive search, then binds the
/// result as a one-element tuple at TupleId and runs the child once.
/// The scanned tuple is bound at TupleId during the fold.
class Aggregate : public Operation {
public:
  Aggregate(AggFunc Func, const Relation *Rel, std::uint32_t TupleId,
            std::vector<ExprPtr> Pattern, ExprPtr TargetExpr, CondPtr Cond,
            OpPtr Nested)
      : Operation(Kind::Aggregate), Func(Func), Rel(Rel), TupleId(TupleId),
        Pattern(std::move(Pattern)), TargetExpr(std::move(TargetExpr)),
        Cond(std::move(Cond)), Nested(std::move(Nested)) {
    assert(this->Pattern.size() == Rel->getArity() &&
           "pattern width must match relation arity");
  }
  AggFunc getFunc() const { return Func; }
  const Relation &getRelation() const { return *Rel; }
  std::uint32_t getTupleId() const { return TupleId; }
  const std::vector<ExprPtr> &getPattern() const { return Pattern; }
  /// Null for Count.
  const Expression *getTargetExpr() const { return TargetExpr.get(); }
  /// Per-tuple filter inside the fold; null when absent.
  const Condition *getCondition() const { return Cond.get(); }
  const Operation &getNested() const { return *Nested; }

private:
  AggFunc Func;
  const Relation *Rel;
  std::uint32_t TupleId;
  std::vector<ExprPtr> Pattern;
  ExprPtr TargetExpr;
  CondPtr Cond;
  OpPtr Nested;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of RAM statements.
class Statement {
public:
  enum class Kind {
    Sequence,
    Loop,
    Exit,
    Query,
    Clear,
    Swap,
    MergeInto,
    Erase,
    SubtractInto,
    FoldCounts,
    Io,
    LogTimer,
  };

  virtual ~Statement() = default;
  Kind getKind() const { return TheKind; }

protected:
  explicit Statement(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

using StmtPtr = std::unique_ptr<Statement>;

/// Sequential composition.
class Sequence : public Statement {
public:
  explicit Sequence(std::vector<StmtPtr> Stmts)
      : Statement(Kind::Sequence), Stmts(std::move(Stmts)) {}
  const std::vector<StmtPtr> &getStatements() const { return Stmts; }

private:
  std::vector<StmtPtr> Stmts;
};

/// LOOP body END LOOP — repeats until an Exit fires.
class Loop : public Statement {
public:
  explicit Loop(StmtPtr Body) : Statement(Kind::Loop), Body(std::move(Body)) {}
  const Statement &getBody() const { return *Body; }

private:
  StmtPtr Body;
};

/// BREAK(cond) — leaves the innermost loop when the condition holds.
class Exit : public Statement {
public:
  explicit Exit(CondPtr Cond) : Statement(Kind::Exit), Cond(std::move(Cond)) {}
  const Condition &getCondition() const { return *Cond; }

private:
  CondPtr Cond;
};

/// Executes one operation tree (the body of a single rule evaluation).
class Query : public Statement {
public:
  explicit Query(OpPtr Root) : Statement(Kind::Query), Root(std::move(Root)) {}
  const Operation &getRoot() const { return *Root; }

private:
  OpPtr Root;
};

/// Removes all tuples of a relation.
class Clear : public Statement {
public:
  explicit Clear(const Relation *Rel) : Statement(Kind::Clear), Rel(Rel) {}
  const Relation &getRelation() const { return *Rel; }

private:
  const Relation *Rel;
};

/// Swaps the contents of two relations of identical signature.
class Swap : public Statement {
public:
  Swap(const Relation *First, const Relation *Second)
      : Statement(Kind::Swap), First(First), Second(Second) {}
  const Relation &getFirst() const { return *First; }
  const Relation &getSecond() const { return *Second; }

private:
  const Relation *First;
  const Relation *Second;
};

/// MERGE src INTO dst — inserts every tuple of src into dst.
class MergeInto : public Statement {
public:
  MergeInto(const Relation *Source, const Relation *Destination)
      : Statement(Kind::MergeInto), Source(Source),
        Destination(Destination) {}
  const Relation &getSource() const { return *Source; }
  const Relation &getDestination() const { return *Destination; }

private:
  const Relation *Source;
  const Relation *Destination;
};

/// ERASE src FROM dst — removes every tuple of src from dst. The deletion
/// statement of the incremental maintenance programs (DRed over-deletion
/// application and EDB retraction).
class Erase : public Statement {
public:
  Erase(const Relation *Source, const Relation *Destination)
      : Statement(Kind::Erase), Source(Source), Destination(Destination) {}
  const Relation &getSource() const { return *Source; }
  const Relation &getDestination() const { return *Destination; }

private:
  const Relation *Source;
  const Relation *Destination;
};

/// SUBTRACT src WITHOUT filter INTO dst — inserts every tuple of src that
/// is not in filter into dst. Computes DRed's net deletions: over-deleted
/// tuples (rederive_R) minus the rederived survivors (R) flow into
/// delta_del_R for downstream strata.
class SubtractInto : public Statement {
public:
  SubtractInto(const Relation *Source, const Relation *Filter,
               const Relation *Destination)
      : Statement(Kind::SubtractInto), Source(Source), Filter(Filter),
        Destination(Destination) {}
  const Relation &getSource() const { return *Source; }
  const Relation &getFilter() const { return *Filter; }
  const Relation &getDestination() const { return *Destination; }

private:
  const Relation *Source;
  const Relation *Filter;
  const Relation *Destination;
};

/// FOLD COUNTS — nets the per-batch count collectors (cadd minus cdec)
/// into the support store and applies the resulting transitions to the
/// maintained relation: a tuple whose support drops to zero is erased from
/// Target and recorded in DelOut; one whose support rises from zero is
/// inserted into Target and recorded in InsOut. The counting strata's
/// single mutation point.
class FoldCounts : public Statement {
public:
  FoldCounts(const Relation *Add, const Relation *Dec,
             const Relation *Support, const Relation *Target,
             const Relation *InsOut, const Relation *DelOut)
      : Statement(Kind::FoldCounts), Add(Add), Dec(Dec), Support(Support),
        Target(Target), InsOut(InsOut), DelOut(DelOut) {}
  const Relation &getAdd() const { return *Add; }
  const Relation &getDec() const { return *Dec; }
  const Relation &getSupport() const { return *Support; }
  const Relation &getTarget() const { return *Target; }
  const Relation &getInsOut() const { return *InsOut; }
  const Relation &getDelOut() const { return *DelOut; }

private:
  const Relation *Add;
  const Relation *Dec;
  const Relation *Support;
  const Relation *Target;
  const Relation *InsOut;
  const Relation *DelOut;
};

/// Loads or stores a relation according to its IO attributes.
class Io : public Statement {
public:
  enum class Direction { Load, Store, PrintSize };

  Io(Direction Dir, const Relation *Rel)
      : Statement(Kind::Io), Dir(Dir), Rel(Rel) {}
  Direction getDirection() const { return Dir; }
  const Relation &getRelation() const { return *Rel; }

private:
  Direction Dir;
  const Relation *Rel;
};

/// Wraps a statement with a profiling label; the engines report per-label
/// wall time and iteration counts (the Soufflé-profiler analog used by the
/// Section 5.2 case study).
class LogTimer : public Statement {
public:
  /// Where the timed rule sits in the program: its stratum, head relation,
  /// semi-naive version and whether it lives inside a fixpoint loop. Target
  /// is the relation the rule inserts into (new_R for loop-body rules), so
  /// the engines can sample its cardinality around each execution and
  /// report per-iteration delta sizes. Default-constructed info marks a
  /// timer that is not a translated rule.
  struct RuleInfo {
    int Stratum = -1;
    std::string Relation;
    int Version = -1;
    bool Recursive = false;
    const ram::Relation *Target = nullptr;
    /// The SIPS strategy that planned this rule's body ("" for timers not
    /// produced by rule translation).
    std::string Sips;
    /// The chosen join order: element i is the source-order index of the
    /// body atom scanned at depth i. Identity when no reordering applied;
    /// empty for non-rule timers.
    std::vector<int> AtomOrder;
  };

  LogTimer(std::string Label, StmtPtr Body)
      : Statement(Kind::LogTimer), Label(std::move(Label)),
        Body(std::move(Body)) {}
  LogTimer(std::string Label, RuleInfo Info, StmtPtr Body)
      : Statement(Kind::LogTimer), Label(std::move(Label)),
        Info(std::move(Info)), Body(std::move(Body)) {}
  const std::string &getLabel() const { return Label; }
  const RuleInfo &getInfo() const { return Info; }
  const Statement &getBody() const { return *Body; }

private:
  std::string Label;
  RuleInfo Info;
  StmtPtr Body;
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

/// A complete RAM program: relation declarations plus the main statement.
class Program {
public:
  /// Adds a relation and returns a stable pointer to it.
  Relation *addRelation(std::string Name,
                        std::vector<ColumnTypeKind> ColumnTypes,
                        StructureKind Structure) {
    Relations.push_back(std::make_unique<Relation>(
        std::move(Name), std::move(ColumnTypes), Structure));
    return Relations.back().get();
  }

  const std::vector<std::unique_ptr<Relation>> &getRelations() const {
    return Relations;
  }
  std::vector<std::unique_ptr<Relation>> &getRelations() { return Relations; }

  Relation *findRelation(const std::string &Name) {
    for (auto &Rel : Relations)
      if (Rel->getName() == Name)
        return Rel.get();
    return nullptr;
  }
  const Relation *findRelation(const std::string &Name) const {
    for (const auto &Rel : Relations)
      if (Rel->getName() == Name)
        return Rel.get();
    return nullptr;
  }

  void setMain(StmtPtr Stmt) { Main = std::move(Stmt); }
  const Statement &getMain() const {
    assert(Main && "program has no main statement");
    return *Main;
  }
  bool hasMain() const { return Main != nullptr; }

  /// The incremental-update statement (see TranslationOptions::
  /// EmitUpdateProgram): re-derives the fixpoint after a monotonic batch of
  /// EDB additions has been inserted into the full relations AND their
  /// delta relations. Absent when update emission was off or the program is
  /// ineligible (negation, aggregates, `$`, eqrel) — callers then fall back
  /// to re-running the main statement from scratch.
  void setUpdate(StmtPtr Stmt) { Update = std::move(Stmt); }
  const Statement &getUpdate() const {
    assert(Update && "program has no update statement");
    return *Update;
  }
  bool hasUpdate() const { return Update != nullptr; }

  /// Names of the auxiliary relations serving the update statement for one
  /// user relation: Delta seeds/propagates additions, New buffers guarded
  /// inserts, Added (recursive relations only, else empty) accumulates a
  /// stratum's loop additions.
  struct UpdateAux {
    std::string Delta;
    std::string New;
    std::string Added;
  };
  void setUpdateAux(const std::string &Rel, UpdateAux Aux) {
    UpdateAuxOf[Rel] = std::move(Aux);
  }
  const UpdateAux *getUpdateAux(const std::string &Rel) const {
    auto It = UpdateAuxOf.find(Rel);
    return It == UpdateAuxOf.end() ? nullptr : &It->second;
  }
  const std::unordered_map<std::string, UpdateAux> &getUpdateAuxMap() const {
    return UpdateAuxOf;
  }

  //===--------------------------------------------------------------------===//
  // Incremental maintenance (mixed insert/retract batches)
  //===--------------------------------------------------------------------===//

  /// How one stratum is maintained under deletions.
  enum class MaintStrategy {
    /// Non-recursive stratum: exact derivation counting. Signed delta rule
    /// versions project into count collectors; FoldCounts applies the
    /// support transitions.
    Counting,
    /// Recursive stratum (or one whose negated literals carry wildcards):
    /// over-delete via delta-deletion rules, rederive from survivors.
    DRed,
    /// Scoped per-stratum re-evaluation fallback (eqrel or aggregates):
    /// the serving layer clears the stratum and re-runs its main
    /// statements, diffing old vs new into the ins/del deltas.
    Reeval,
  };

  /// One stratum's maintenance plan, in bottom-up stratum order.
  struct MaintStratum {
    MaintStrategy Strategy = MaintStrategy::Counting;
    /// Why the stratum fell back to Reeval ("" otherwise).
    std::string FallbackReason;
    /// Declared relations the stratum defines.
    std::vector<std::string> Relations;
    /// The maintenance statement processing the batch's deletions and
    /// insertions through this stratum; null for Reeval strata.
    StmtPtr Stmt;
    /// For Reeval: the child range [MainBegin, MainEnd) of the main
    /// Sequence holding this stratum's evaluation statements.
    std::size_t MainBegin = 0, MainEnd = 0;
  };

  /// Names of the per-relation maintenance aux relations: net insertions
  /// and net deletions of the running batch (every declared relation), the
  /// DRed over-deletion set (DRed strata only, else empty), and the
  /// counting support store plus its per-batch collectors (counting strata
  /// only, else empty).
  struct MaintAux {
    std::string Ins;
    std::string Del;
    std::string Rederive;
    std::string Support, CntAdd, CntDec;
  };

  bool hasMaintenance() const { return !MaintStrata.empty(); }
  const std::vector<MaintStratum> &getMaintStrata() const {
    return MaintStrata;
  }
  void setMaintStrata(std::vector<MaintStratum> Strata) {
    MaintStrata = std::move(Strata);
  }

  /// Why no maintenance program was emitted ("" when one was, or when
  /// update emission was off entirely).
  const std::string &getMaintIneligibleReason() const {
    return MaintIneligibleReason;
  }
  void setMaintIneligibleReason(std::string Reason) {
    MaintIneligibleReason = std::move(Reason);
  }

  void setMaintAux(const std::string &Rel, MaintAux Aux) {
    MaintAuxOf[Rel] = std::move(Aux);
  }
  const MaintAux *getMaintAux(const std::string &Rel) const {
    auto It = MaintAuxOf.find(Rel);
    return It == MaintAuxOf.end() ? nullptr : &It->second;
  }
  const std::unordered_map<std::string, MaintAux> &getMaintAuxMap() const {
    return MaintAuxOf;
  }

  /// Bootstraps the counting strata's support stores from the main run's
  /// fixpoint (one derivation count per rule match); run once after the
  /// initial evaluation. Null when no stratum uses Counting.
  void setCountInit(StmtPtr Stmt) { CountInit = std::move(Stmt); }
  const Statement *getCountInit() const { return CountInit.get(); }

  /// Applies the staged EDB nets: erases delta_del_E from every input
  /// relation and merges delta_ins_E in, before the strata run bottom-up.
  void setMaintPrologue(StmtPtr Stmt) { MaintPrologue = std::move(Stmt); }
  const Statement *getMaintPrologue() const { return MaintPrologue.get(); }

  /// Clears every maintenance aux relation (ins/del deltas and
  /// collectors); run after the serving layer has harvested telemetry.
  void setMaintEpilogue(StmtPtr Stmt) { MaintEpilogue = std::move(Stmt); }
  const Statement *getMaintEpilogue() const { return MaintEpilogue.get(); }

private:
  std::vector<std::unique_ptr<Relation>> Relations;
  StmtPtr Main;
  StmtPtr Update;
  std::unordered_map<std::string, UpdateAux> UpdateAuxOf;
  std::vector<MaintStratum> MaintStrata;
  std::string MaintIneligibleReason;
  std::unordered_map<std::string, MaintAux> MaintAuxOf;
  StmtPtr CountInit;
  StmtPtr MaintPrologue;
  StmtPtr MaintEpilogue;
};

/// Bitmask of the bound (non-Undef) columns of a primitive-search pattern.
std::uint32_t searchSignature(const std::vector<ExprPtr> &Pattern);

} // namespace stird::ram

#endif // STIRD_RAM_RAM_H
