//===- ram/Clone.h - Deep copies of RAM subtrees ----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-clone helpers for RAM nodes. Relations are referenced, not owned,
/// so clones share the original Relation objects. The rewriting optimizer
/// passes (ram/Transforms.h) are built on these.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_RAM_CLONE_H
#define STIRD_RAM_CLONE_H

#include "ram/Ram.h"

namespace stird::ram {

ExprPtr clone(const Expression &Expr);
CondPtr clone(const Condition &Cond);
OpPtr clone(const Operation &Op);
StmtPtr clone(const Statement &Stmt);

/// Clones a pattern/value vector (entries may not be null).
std::vector<ExprPtr> clonePattern(const std::vector<ExprPtr> &Pattern);

} // namespace stird::ram

#endif // STIRD_RAM_CLONE_H
