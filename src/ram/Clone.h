//===- ram/Clone.h - Deep copies of RAM subtrees ----------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-clone helpers for RAM nodes. Relations are referenced, not owned:
/// by default clones share the original Relation objects, which is what
/// the rewriting optimizer passes (ram/Transforms.h) want. Passing a
/// RelationMap redirects every relation reference during the clone, the
/// building block of cloneProgram() — a fully independent copy of a whole
/// program, own relations included.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_RAM_CLONE_H
#define STIRD_RAM_CLONE_H

#include "ram/Ram.h"

#include <memory>
#include <unordered_map>

namespace stird::ram {

/// Original relation -> replacement, applied to every relation reference
/// met during a clone. Relations absent from the map stay shared.
using RelationMap = std::unordered_map<const Relation *, const Relation *>;

ExprPtr clone(const Expression &Expr);
CondPtr clone(const Condition &Cond, const RelationMap *Map = nullptr);
OpPtr clone(const Operation &Op, const RelationMap *Map = nullptr);
StmtPtr clone(const Statement &Stmt, const RelationMap *Map = nullptr);

/// Clones a pattern/value vector (entries may not be null).
std::vector<ExprPtr> clonePattern(const std::vector<ExprPtr> &Pattern);

/// Deep-copies a whole program: fresh Relation objects (name, column
/// types, structure, orders, IO markings), main/update statements rewired
/// onto them, and the update-aux name table. The clone shares nothing with
/// the original; printing both yields identical text.
std::unique_ptr<Program> cloneProgram(const Program &Prog);

} // namespace stird::ram

#endif // STIRD_RAM_CLONE_H
