//===- ram/RamPrinter.h - Textual dump of RAM programs ----------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders RAM programs in the style of Fig 3 of the paper, for tests,
/// debugging and documentation.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_RAM_RAMPRINTER_H
#define STIRD_RAM_RAMPRINTER_H

#include "ram/Ram.h"

#include <string>

namespace stird::ram {

/// Renders a whole program.
std::string print(const Program &Prog);

/// Renders a single statement subtree.
std::string print(const Statement &Stmt);

/// Renders a single expression.
std::string print(const Expression &Expr);

/// Renders a single condition.
std::string print(const Condition &Cond);

} // namespace stird::ram

#endif // STIRD_RAM_RAMPRINTER_H
