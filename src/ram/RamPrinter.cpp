//===- ram/RamPrinter.cpp - Textual dump of RAM programs --------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ram/RamPrinter.h"

#include "util/MiscUtil.h"

#include <sstream>

using namespace stird;
using namespace stird::ram;

namespace {

const char *intrinsicName(IntrinsicOp Op) {
  switch (Op) {
  case IntrinsicOp::Neg:
    return "neg";
  case IntrinsicOp::FNeg:
    return "fneg";
  case IntrinsicOp::BNot:
    return "bnot";
  case IntrinsicOp::LNot:
    return "lnot";
  case IntrinsicOp::Strlen:
    return "strlen";
  case IntrinsicOp::Ord:
    return "ord";
  case IntrinsicOp::ToNumber:
    return "to_number";
  case IntrinsicOp::ToString:
    return "to_string";
  case IntrinsicOp::Add:
    return "add";
  case IntrinsicOp::Sub:
    return "sub";
  case IntrinsicOp::Mul:
    return "mul";
  case IntrinsicOp::Div:
    return "div";
  case IntrinsicOp::UDiv:
    return "udiv";
  case IntrinsicOp::FAdd:
    return "fadd";
  case IntrinsicOp::FSub:
    return "fsub";
  case IntrinsicOp::FMul:
    return "fmul";
  case IntrinsicOp::FDiv:
    return "fdiv";
  case IntrinsicOp::Mod:
    return "mod";
  case IntrinsicOp::UMod:
    return "umod";
  case IntrinsicOp::Exp:
    return "exp";
  case IntrinsicOp::UExp:
    return "uexp";
  case IntrinsicOp::FExp:
    return "fexp";
  case IntrinsicOp::Band:
    return "band";
  case IntrinsicOp::Bor:
    return "bor";
  case IntrinsicOp::Bxor:
    return "bxor";
  case IntrinsicOp::Bshl:
    return "bshl";
  case IntrinsicOp::Bshr:
    return "bshr";
  case IntrinsicOp::UBshr:
    return "ubshr";
  case IntrinsicOp::Max:
    return "max";
  case IntrinsicOp::UMax:
    return "umax";
  case IntrinsicOp::FMax:
    return "fmax";
  case IntrinsicOp::Min:
    return "min";
  case IntrinsicOp::UMin:
    return "umin";
  case IntrinsicOp::FMin:
    return "fmin";
  case IntrinsicOp::Cat:
    return "cat";
  case IntrinsicOp::Substr:
    return "substr";
  }
  unreachable("unknown intrinsic op");
}

const char *cmpName(CmpOp Op) {
  switch (Op) {
  case CmpOp::Eq:
    return "=";
  case CmpOp::Ne:
    return "!=";
  case CmpOp::Lt:
    return "<";
  case CmpOp::Le:
    return "<=";
  case CmpOp::Gt:
    return ">";
  case CmpOp::Ge:
    return ">=";
  case CmpOp::ULt:
    return "u<";
  case CmpOp::ULe:
    return "u<=";
  case CmpOp::UGt:
    return "u>";
  case CmpOp::UGe:
    return "u>=";
  case CmpOp::FLt:
    return "f<";
  case CmpOp::FLe:
    return "f<=";
  case CmpOp::FGt:
    return "f>";
  case CmpOp::FGe:
    return "f>=";
  }
  unreachable("unknown cmp op");
}

class Printer {
public:
  explicit Printer(std::ostringstream &Out) : Out(Out) {}

  void printExpr(const Expression &Expr) {
    switch (Expr.getKind()) {
    case Expression::Kind::Constant:
      Out << static_cast<const Constant &>(Expr).getValue();
      return;
    case Expression::Kind::TupleElement: {
      const auto &TE = static_cast<const TupleElement &>(Expr);
      Out << "t" << TE.getTupleId() << "." << TE.getElement();
      return;
    }
    case Expression::Kind::Intrinsic: {
      const auto &Op = static_cast<const Intrinsic &>(Expr);
      Out << intrinsicName(Op.getOp()) << "(";
      bool First = true;
      for (const auto &Arg : Op.getArgs()) {
        if (!First)
          Out << ", ";
        First = false;
        printExpr(*Arg);
      }
      Out << ")";
      return;
    }
    case Expression::Kind::AutoIncrement:
      Out << "autoinc()";
      return;
    case Expression::Kind::Undef:
      Out << "_";
      return;
    }
  }

  void printCond(const Condition &Cond) {
    switch (Cond.getKind()) {
    case Condition::Kind::True:
      Out << "true";
      return;
    case Condition::Kind::Conjunction: {
      const auto &C = static_cast<const Conjunction &>(Cond);
      Out << "(";
      printCond(C.getLhs());
      Out << " AND ";
      printCond(C.getRhs());
      Out << ")";
      return;
    }
    case Condition::Kind::Negation: {
      Out << "(NOT ";
      printCond(static_cast<const Negation &>(Cond).getInner());
      Out << ")";
      return;
    }
    case Condition::Kind::Constraint: {
      const auto &C = static_cast<const Constraint &>(Cond);
      Out << "(";
      printExpr(C.getLhs());
      Out << " " << cmpName(C.getOp()) << " ";
      printExpr(C.getRhs());
      Out << ")";
      return;
    }
    case Condition::Kind::EmptinessCheck:
      Out << "("
          << static_cast<const EmptinessCheck &>(Cond).getRelation().getName()
          << " = EMPTY)";
      return;
    case Condition::Kind::ExistenceCheck: {
      const auto &C = static_cast<const ExistenceCheck &>(Cond);
      Out << "(";
      printPattern(C.getPattern());
      Out << " IN " << C.getRelation().getName() << ")";
      return;
    }
    }
  }

  void printPattern(const std::vector<ExprPtr> &Pattern) {
    Out << "(";
    bool First = true;
    for (const auto &Col : Pattern) {
      if (!First)
        Out << ",";
      First = false;
      printExpr(*Col);
    }
    Out << ")";
  }

  void printOp(const Operation &Op) {
    switch (Op.getKind()) {
    case Operation::Kind::Scan: {
      const auto &S = static_cast<const Scan &>(Op);
      indent() << "FOR t" << S.getTupleId() << " IN "
               << S.getRelation().getName() << "\n";
      nested(S.getNested());
      return;
    }
    case Operation::Kind::IndexScan: {
      const auto &S = static_cast<const IndexScan &>(Op);
      indent() << "FOR t" << S.getTupleId() << " IN "
               << S.getRelation().getName() << " ON INDEX ";
      printPattern(S.getPattern());
      Out << "\n";
      nested(S.getNested());
      return;
    }
    case Operation::Kind::Filter: {
      const auto &F = static_cast<const Filter &>(Op);
      indent() << "IF ";
      printCond(F.getCondition());
      Out << "\n";
      nested(F.getNested());
      return;
    }
    case Operation::Kind::Project: {
      const auto &P = static_cast<const Project &>(Op);
      indent() << "INSERT ";
      printPattern(P.getValues());
      Out << " INTO " << P.getRelation().getName() << "\n";
      return;
    }
    case Operation::Kind::Aggregate: {
      const auto &A = static_cast<const Aggregate &>(Op);
      indent() << "t" << A.getTupleId() << ".0 = AGGREGATE OVER "
               << A.getRelation().getName() << " ON ";
      printPattern(A.getPattern());
      if (A.getTargetExpr()) {
        Out << " VALUE ";
        printExpr(*A.getTargetExpr());
      }
      Out << "\n";
      nested(A.getNested());
      return;
    }
    }
  }

  void printStmt(const Statement &Stmt) {
    switch (Stmt.getKind()) {
    case Statement::Kind::Sequence:
      for (const auto &Child :
           static_cast<const Sequence &>(Stmt).getStatements())
        printStmt(*Child);
      return;
    case Statement::Kind::Loop: {
      indent() << "LOOP\n";
      ++Depth;
      printStmt(static_cast<const Loop &>(Stmt).getBody());
      --Depth;
      indent() << "END LOOP\n";
      return;
    }
    case Statement::Kind::Exit: {
      indent() << "BREAK ";
      printCond(static_cast<const Exit &>(Stmt).getCondition());
      Out << "\n";
      return;
    }
    case Statement::Kind::Query: {
      indent() << "QUERY\n";
      ++Depth;
      printOp(static_cast<const Query &>(Stmt).getRoot());
      --Depth;
      return;
    }
    case Statement::Kind::Clear:
      indent() << "CLEAR "
               << static_cast<const Clear &>(Stmt).getRelation().getName()
               << "\n";
      return;
    case Statement::Kind::Swap: {
      const auto &S = static_cast<const Swap &>(Stmt);
      indent() << "SWAP (" << S.getFirst().getName() << ", "
               << S.getSecond().getName() << ")\n";
      return;
    }
    case Statement::Kind::MergeInto: {
      const auto &M = static_cast<const MergeInto &>(Stmt);
      indent() << "MERGE " << M.getSource().getName() << " INTO "
               << M.getDestination().getName() << "\n";
      return;
    }
    case Statement::Kind::Erase: {
      const auto &E = static_cast<const Erase &>(Stmt);
      indent() << "ERASE " << E.getSource().getName() << " FROM "
               << E.getDestination().getName() << "\n";
      return;
    }
    case Statement::Kind::SubtractInto: {
      const auto &S = static_cast<const SubtractInto &>(Stmt);
      indent() << "SUBTRACT " << S.getSource().getName() << " WITHOUT "
               << S.getFilter().getName() << " INTO "
               << S.getDestination().getName() << "\n";
      return;
    }
    case Statement::Kind::FoldCounts: {
      const auto &F = static_cast<const FoldCounts &>(Stmt);
      indent() << "FOLD COUNTS " << F.getAdd().getName() << " - "
               << F.getDec().getName() << " INTO " << F.getSupport().getName()
               << " MAINTAINING " << F.getTarget().getName() << " (ins -> "
               << F.getInsOut().getName() << ", del -> "
               << F.getDelOut().getName() << ")\n";
      return;
    }
    case Statement::Kind::Io: {
      const auto &IoStmt = static_cast<const Io &>(Stmt);
      const char *Verb = IoStmt.getDirection() == Io::Direction::Load
                             ? "LOAD"
                             : (IoStmt.getDirection() == Io::Direction::Store
                                    ? "STORE"
                                    : "PRINTSIZE");
      indent() << Verb << " " << IoStmt.getRelation().getName() << "\n";
      return;
    }
    case Statement::Kind::LogTimer: {
      const auto &Log = static_cast<const LogTimer &>(Stmt);
      indent() << "TIMER \"" << Log.getLabel() << "\"";
      // A reordered body is part of the plan, so it belongs in the dump;
      // identity orders stay silent to keep source-order output unchanged.
      const auto &Order = Log.getInfo().AtomOrder;
      bool Identity = true;
      for (std::size_t I = 0; I < Order.size(); ++I)
        Identity = Identity && Order[I] == static_cast<int>(I);
      if (!Identity) {
        Out << " sips=" << Log.getInfo().Sips << " order=[";
        for (std::size_t I = 0; I < Order.size(); ++I)
          Out << (I ? "," : "") << Order[I];
        Out << "]";
      }
      Out << "\n";
      ++Depth;
      printStmt(Log.getBody());
      --Depth;
      indent() << "END TIMER\n";
      return;
    }
    }
  }

private:
  std::ostringstream &indent() {
    for (int I = 0; I < Depth; ++I)
      Out << "  ";
    return Out;
  }
  void nested(const Operation &Op) {
    ++Depth;
    printOp(Op);
    --Depth;
  }

  std::ostringstream &Out;
  int Depth = 0;
};

} // namespace

std::string stird::ram::print(const Statement &Stmt) {
  std::ostringstream Out;
  Printer(Out).printStmt(Stmt);
  return Out.str();
}

std::string stird::ram::print(const Expression &Expr) {
  std::ostringstream Out;
  Printer(Out).printExpr(Expr);
  return Out.str();
}

std::string stird::ram::print(const Condition &Cond) {
  std::ostringstream Out;
  Printer(Out).printCond(Cond);
  return Out.str();
}

std::string stird::ram::print(const Program &Prog) {
  std::ostringstream Out;
  for (const auto &Rel : Prog.getRelations()) {
    Out << "RELATION " << Rel->getName() << " arity " << Rel->getArity();
    if (!Rel->getOrders().empty()) {
      Out << " orders";
      for (const auto &Order : Rel->getOrders()) {
        Out << " [";
        for (std::size_t I = 0; I < Order.size(); ++I) {
          if (I != 0)
            Out << " ";
          Out << Order[I];
        }
        Out << "]";
      }
    }
    switch (Rel->getStructure()) {
    case StructureKind::Btree:
      Out << " structure btree";
      break;
    case StructureKind::Brie:
      Out << " structure brie";
      break;
    case StructureKind::Art:
      Out << " structure art";
      break;
    case StructureKind::Eqrel:
      Out << " structure eqrel";
      break;
    case StructureKind::Counts:
      Out << " structure counts";
      break;
    }
    Out << "\n";
  }
  if (Prog.hasMain())
    Out << print(Prog.getMain());
  if (Prog.hasUpdate())
    Out << "UPDATE\n" << print(Prog.getUpdate());
  if (Prog.hasMaintenance()) {
    Out << "MAINTENANCE\n";
    if (const Statement *Prologue = Prog.getMaintPrologue())
      Out << "PROLOGUE\n" << print(*Prologue);
    for (std::size_t I = 0; I < Prog.getMaintStrata().size(); ++I) {
      const auto &S = Prog.getMaintStrata()[I];
      const char *Name = S.Strategy == Program::MaintStrategy::Counting
                             ? "counting"
                             : (S.Strategy == Program::MaintStrategy::DRed
                                    ? "dred"
                                    : "reeval");
      Out << "STRATUM " << I << " " << Name;
      if (!S.FallbackReason.empty())
        Out << " (" << S.FallbackReason << ")";
      Out << "\n";
      if (S.Stmt)
        Out << print(*S.Stmt);
    }
    if (const Statement *CountInit = Prog.getCountInit())
      Out << "COUNT INIT\n" << print(*CountInit);
    if (const Statement *Epilogue = Prog.getMaintEpilogue())
      Out << "EPILOGUE\n" << print(*Epilogue);
  }
  return Out.str();
}
