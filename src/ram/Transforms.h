//===- ram/Transforms.h - RAM optimization passes ---------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewriting optimizations over RAM programs, applied before execution by
/// either backend (they are representation-level, so interpreter and
/// synthesizer benefit identically):
///
///  * constant folding — intrinsic applications over constant operands are
///    evaluated at compile time, constant comparisons collapse to
///    True/never-true, and trivial conjunctions simplify;
///  * filter merging — nested Filter(c1, Filter(c2, x)) chains become one
///    Filter over a conjunction. Besides saving bookkeeping, this is what
///    lets the Section 5.2 fused-condition super-instructions swallow a
///    whole multi-conjunct filter in a single dispatch.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_RAM_TRANSFORMS_H
#define STIRD_RAM_TRANSFORMS_H

#include "ram/Ram.h"
#include "util/SymbolTable.h"

#include <cstddef>

namespace stird::ram {

/// Counters reported by the passes (for tests and -v style diagnostics).
struct TransformStats {
  std::size_t FoldedExpressions = 0;
  std::size_t FoldedConditions = 0;
  std::size_t MergedFilters = 0;
};

/// Folds constant expressions and conditions throughout the program.
/// String intrinsics fold through \p Symbols (interning their results).
TransformStats foldConstants(Program &Prog, SymbolTable &Symbols);

/// Merges adjacent Filter operations into single conjunctions. Returns the
/// number of merges performed.
std::size_t mergeAdjacentFilters(Program &Prog);

} // namespace stird::ram

#endif // STIRD_RAM_TRANSFORMS_H
