//===- ram/Transforms.h - RAM optimization passes ---------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewriting optimizations over RAM programs, applied before execution by
/// either backend (they are representation-level, so interpreter and
/// synthesizer benefit identically):
///
///  * constant folding — intrinsic applications over constant operands are
///    evaluated at compile time, constant comparisons collapse to
///    True/never-true, and trivial conjunctions simplify;
///  * filter merging — nested Filter(c1, Filter(c2, x)) chains become one
///    Filter over a conjunction. Besides saving bookkeeping, this is what
///    lets the Section 5.2 fused-condition super-instructions swallow a
///    whole multi-conjunct filter in a single dispatch;
///  * filter sinking — an equality `t.col == expr` sitting directly under
///    t's scan, where expr only reads outer tuples, moves into the scan's
///    search pattern (a Scan becomes an IndexScan). SIPS reordering makes
///    such filters adjacent to the scan they constrain; sinking is what
///    turns the new order into indexed lookups.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_RAM_TRANSFORMS_H
#define STIRD_RAM_TRANSFORMS_H

#include "ram/Ram.h"
#include "util/SymbolTable.h"

#include <cstddef>

namespace stird::ram {

/// Counters reported by the passes (for tests and -v style diagnostics).
struct TransformStats {
  std::size_t FoldedExpressions = 0;
  std::size_t FoldedConditions = 0;
  std::size_t MergedFilters = 0;
};

/// Folds constant expressions and conditions throughout the program.
/// String intrinsics fold through \p Symbols (interning their results).
TransformStats foldConstants(Program &Prog, SymbolTable &Symbols);

/// Merges adjacent Filter operations into single conjunctions. Returns the
/// number of merges performed.
std::size_t mergeAdjacentFilters(Program &Prog);

/// Sinks equality constraints from Filters directly beneath a Scan or
/// IndexScan into the scan's search pattern when the constrained column
/// belongs to the scanned tuple and the other side only references tuples
/// bound further out. Returns the number of constraints sunk. Run before
/// mergeAdjacentFilters (it inspects single-condition filter chains) and
/// before index selection (it changes search signatures).
std::size_t sinkFiltersIntoScans(Program &Prog);

} // namespace stird::ram

#endif // STIRD_RAM_TRANSFORMS_H
