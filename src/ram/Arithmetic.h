//===- ram/Arithmetic.h - RAM intrinsic evaluation --------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation of RAM intrinsic functors and typed comparisons over
/// RamDomain values. Shared by the interpreters (hot path) and the RAM
/// constant folder; the synthesizer emits equivalent open-coded helpers.
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_RAM_ARITHMETIC_H
#define STIRD_RAM_ARITHMETIC_H

#include "ram/Ram.h"
#include "util/MiscUtil.h"
#include "util/RamTypes.h"
#include "util/SymbolTable.h"

#include <cmath>
#include <cstdlib>
#include <string>

namespace stird::ram {

/// Integer exponentiation by squaring; negative exponents yield 0.
inline RamDomain ipow(RamDomain Base, RamDomain Exponent) {
  if (Exponent < 0)
    return 0;
  RamDomain Result = 1;
  while (Exponent > 0) {
    if (Exponent & 1)
      Result = static_cast<RamDomain>(static_cast<RamUnsigned>(Result) *
                                      static_cast<RamUnsigned>(Base));
    Base = static_cast<RamDomain>(static_cast<RamUnsigned>(Base) *
                                  static_cast<RamUnsigned>(Base));
    Exponent >>= 1;
  }
  return Result;
}

/// Applies an intrinsic functor to already-evaluated arguments. Division
/// and modulo by zero yield 0 (documented deviation from C++ UB; Soufflé
/// leaves these undefined).
inline RamDomain applyIntrinsic(IntrinsicOp Op, const RamDomain *Args,
                                std::size_t NumArgs, SymbolTable &Symbols) {
  auto F = [](RamDomain V) { return ramBitCast<RamFloat>(V); };
  auto FV = [](RamFloat V) { return ramBitCast<RamDomain>(V); };
  auto U = [](RamDomain V) { return ramBitCast<RamUnsigned>(V); };
  auto UV = [](RamUnsigned V) { return ramBitCast<RamDomain>(V); };

  switch (Op) {
  case IntrinsicOp::Neg:
    return -Args[0];
  case IntrinsicOp::FNeg:
    return FV(-F(Args[0]));
  case IntrinsicOp::BNot:
    return ~Args[0];
  case IntrinsicOp::LNot:
    return Args[0] == 0 ? 1 : 0;
  case IntrinsicOp::Strlen:
    return static_cast<RamDomain>(Symbols.resolve(Args[0]).size());
  case IntrinsicOp::Ord:
    return Args[0];
  case IntrinsicOp::ToNumber: {
    const std::string &Text = Symbols.resolve(Args[0]);
    return static_cast<RamDomain>(std::strtol(Text.c_str(), nullptr, 10));
  }
  case IntrinsicOp::ToString:
    return Symbols.intern(std::to_string(Args[0]));
  case IntrinsicOp::Add:
    return UV(U(Args[0]) + U(Args[1]));
  case IntrinsicOp::Sub:
    return UV(U(Args[0]) - U(Args[1]));
  case IntrinsicOp::Mul:
    return UV(U(Args[0]) * U(Args[1]));
  case IntrinsicOp::Div:
    return Args[1] == 0 ? 0 : Args[0] / Args[1];
  case IntrinsicOp::UDiv:
    return Args[1] == 0 ? 0 : UV(U(Args[0]) / U(Args[1]));
  case IntrinsicOp::FAdd:
    return FV(F(Args[0]) + F(Args[1]));
  case IntrinsicOp::FSub:
    return FV(F(Args[0]) - F(Args[1]));
  case IntrinsicOp::FMul:
    return FV(F(Args[0]) * F(Args[1]));
  case IntrinsicOp::FDiv:
    return FV(F(Args[0]) / F(Args[1]));
  case IntrinsicOp::Mod:
    return Args[1] == 0 ? 0 : Args[0] % Args[1];
  case IntrinsicOp::UMod:
    return Args[1] == 0 ? 0 : UV(U(Args[0]) % U(Args[1]));
  case IntrinsicOp::Exp:
    return ipow(Args[0], Args[1]);
  case IntrinsicOp::UExp:
    return ipow(Args[0], Args[1]);
  case IntrinsicOp::FExp:
    return FV(std::pow(F(Args[0]), F(Args[1])));
  case IntrinsicOp::Band:
    return Args[0] & Args[1];
  case IntrinsicOp::Bor:
    return Args[0] | Args[1];
  case IntrinsicOp::Bxor:
    return Args[0] ^ Args[1];
  case IntrinsicOp::Bshl:
    return UV(U(Args[0]) << (U(Args[1]) & 31U));
  case IntrinsicOp::Bshr:
    return Args[0] >> (U(Args[1]) & 31U);
  case IntrinsicOp::UBshr:
    return UV(U(Args[0]) >> (U(Args[1]) & 31U));
  case IntrinsicOp::Max: {
    RamDomain Result = Args[0];
    for (std::size_t I = 1; I < NumArgs; ++I)
      Result = Args[I] > Result ? Args[I] : Result;
    return Result;
  }
  case IntrinsicOp::UMax: {
    RamDomain Result = Args[0];
    for (std::size_t I = 1; I < NumArgs; ++I)
      Result = U(Args[I]) > U(Result) ? Args[I] : Result;
    return Result;
  }
  case IntrinsicOp::FMax: {
    RamDomain Result = Args[0];
    for (std::size_t I = 1; I < NumArgs; ++I)
      Result = F(Args[I]) > F(Result) ? Args[I] : Result;
    return Result;
  }
  case IntrinsicOp::Min: {
    RamDomain Result = Args[0];
    for (std::size_t I = 1; I < NumArgs; ++I)
      Result = Args[I] < Result ? Args[I] : Result;
    return Result;
  }
  case IntrinsicOp::UMin: {
    RamDomain Result = Args[0];
    for (std::size_t I = 1; I < NumArgs; ++I)
      Result = U(Args[I]) < U(Result) ? Args[I] : Result;
    return Result;
  }
  case IntrinsicOp::FMin: {
    RamDomain Result = Args[0];
    for (std::size_t I = 1; I < NumArgs; ++I)
      Result = F(Args[I]) < F(Result) ? Args[I] : Result;
    return Result;
  }
  case IntrinsicOp::Cat: {
    std::string Result;
    for (std::size_t I = 0; I < NumArgs; ++I)
      Result += Symbols.resolve(Args[I]);
    return Symbols.intern(Result);
  }
  case IntrinsicOp::Substr: {
    const std::string &Text = Symbols.resolve(Args[0]);
    const RamDomain Start = Args[1];
    const RamDomain Len = Args[2];
    if (Start < 0 || Len < 0 ||
        static_cast<std::size_t>(Start) >= Text.size())
      return Symbols.intern("");
    return Symbols.intern(Text.substr(static_cast<std::size_t>(Start),
                                      static_cast<std::size_t>(Len)));
  }
  }
  unreachable("unknown intrinsic op");
}

/// Applies a typed comparison.
inline bool applyCmp(CmpOp Op, RamDomain Lhs, RamDomain Rhs) {
  auto F = [](RamDomain V) { return ramBitCast<RamFloat>(V); };
  auto U = [](RamDomain V) { return ramBitCast<RamUnsigned>(V); };
  switch (Op) {
  case CmpOp::Eq:
    return Lhs == Rhs;
  case CmpOp::Ne:
    return Lhs != Rhs;
  case CmpOp::Lt:
    return Lhs < Rhs;
  case CmpOp::Le:
    return Lhs <= Rhs;
  case CmpOp::Gt:
    return Lhs > Rhs;
  case CmpOp::Ge:
    return Lhs >= Rhs;
  case CmpOp::ULt:
    return U(Lhs) < U(Rhs);
  case CmpOp::ULe:
    return U(Lhs) <= U(Rhs);
  case CmpOp::UGt:
    return U(Lhs) > U(Rhs);
  case CmpOp::UGe:
    return U(Lhs) >= U(Rhs);
  case CmpOp::FLt:
    return F(Lhs) < F(Rhs);
  case CmpOp::FLe:
    return F(Lhs) <= F(Rhs);
  case CmpOp::FGt:
    return F(Lhs) > F(Rhs);
  case CmpOp::FGe:
    return F(Lhs) >= F(Rhs);
  }
  unreachable("unknown cmp op");
}

} // namespace stird::ram

#endif // STIRD_RAM_ARITHMETIC_H
