//===- ram/Clone.cpp - Deep copies of RAM subtrees ----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ram/Clone.h"

#include "util/MiscUtil.h"

using namespace stird;
using namespace stird::ram;

std::vector<ExprPtr>
stird::ram::clonePattern(const std::vector<ExprPtr> &Pattern) {
  std::vector<ExprPtr> Result;
  Result.reserve(Pattern.size());
  for (const auto &Col : Pattern)
    Result.push_back(clone(*Col));
  return Result;
}

ExprPtr stird::ram::clone(const Expression &Expr) {
  switch (Expr.getKind()) {
  case Expression::Kind::Constant:
    return std::make_unique<Constant>(
        static_cast<const Constant &>(Expr).getValue());
  case Expression::Kind::TupleElement: {
    const auto &TE = static_cast<const TupleElement &>(Expr);
    return std::make_unique<TupleElement>(TE.getTupleId(), TE.getElement());
  }
  case Expression::Kind::Intrinsic: {
    const auto &Op = static_cast<const Intrinsic &>(Expr);
    std::vector<ExprPtr> Args;
    for (const auto &Arg : Op.getArgs())
      Args.push_back(clone(*Arg));
    return std::make_unique<Intrinsic>(Op.getOp(), std::move(Args));
  }
  case Expression::Kind::AutoIncrement:
    return std::make_unique<AutoIncrement>();
  case Expression::Kind::Undef:
    return std::make_unique<Undef>();
  }
  unreachable("unknown expression kind");
}

CondPtr stird::ram::clone(const Condition &Cond) {
  switch (Cond.getKind()) {
  case Condition::Kind::True:
    return std::make_unique<True>();
  case Condition::Kind::Conjunction: {
    const auto &C = static_cast<const Conjunction &>(Cond);
    return std::make_unique<Conjunction>(clone(C.getLhs()),
                                         clone(C.getRhs()));
  }
  case Condition::Kind::Negation:
    return std::make_unique<Negation>(
        clone(static_cast<const Negation &>(Cond).getInner()));
  case Condition::Kind::Constraint: {
    const auto &C = static_cast<const Constraint &>(Cond);
    return std::make_unique<Constraint>(C.getOp(), clone(C.getLhs()),
                                        clone(C.getRhs()));
  }
  case Condition::Kind::EmptinessCheck:
    return std::make_unique<EmptinessCheck>(
        &static_cast<const EmptinessCheck &>(Cond).getRelation());
  case Condition::Kind::ExistenceCheck: {
    const auto &C = static_cast<const ExistenceCheck &>(Cond);
    return std::make_unique<ExistenceCheck>(&C.getRelation(),
                                            clonePattern(C.getPattern()));
  }
  }
  unreachable("unknown condition kind");
}

OpPtr stird::ram::clone(const Operation &Op) {
  switch (Op.getKind()) {
  case Operation::Kind::Scan: {
    const auto &S = static_cast<const Scan &>(Op);
    return std::make_unique<Scan>(&S.getRelation(), S.getTupleId(),
                                  clone(S.getNested()));
  }
  case Operation::Kind::IndexScan: {
    const auto &S = static_cast<const IndexScan &>(Op);
    return std::make_unique<IndexScan>(&S.getRelation(), S.getTupleId(),
                                       clonePattern(S.getPattern()),
                                       clone(S.getNested()));
  }
  case Operation::Kind::Filter: {
    const auto &F = static_cast<const Filter &>(Op);
    return std::make_unique<Filter>(clone(F.getCondition()),
                                    clone(F.getNested()));
  }
  case Operation::Kind::Project: {
    const auto &P = static_cast<const Project &>(Op);
    return std::make_unique<Project>(&P.getRelation(),
                                     clonePattern(P.getValues()));
  }
  case Operation::Kind::Aggregate: {
    const auto &A = static_cast<const Aggregate &>(Op);
    return std::make_unique<Aggregate>(
        A.getFunc(), &A.getRelation(), A.getTupleId(),
        clonePattern(A.getPattern()),
        A.getTargetExpr() ? clone(*A.getTargetExpr()) : nullptr,
        A.getCondition() ? clone(*A.getCondition()) : nullptr,
        clone(A.getNested()));
  }
  }
  unreachable("unknown operation kind");
}

StmtPtr stird::ram::clone(const Statement &Stmt) {
  switch (Stmt.getKind()) {
  case Statement::Kind::Sequence: {
    std::vector<StmtPtr> Children;
    for (const auto &Child :
         static_cast<const Sequence &>(Stmt).getStatements())
      Children.push_back(clone(*Child));
    return std::make_unique<Sequence>(std::move(Children));
  }
  case Statement::Kind::Loop:
    return std::make_unique<Loop>(
        clone(static_cast<const Loop &>(Stmt).getBody()));
  case Statement::Kind::Exit:
    return std::make_unique<Exit>(
        clone(static_cast<const Exit &>(Stmt).getCondition()));
  case Statement::Kind::Query:
    return std::make_unique<Query>(
        clone(static_cast<const Query &>(Stmt).getRoot()));
  case Statement::Kind::Clear:
    return std::make_unique<Clear>(
        &static_cast<const Clear &>(Stmt).getRelation());
  case Statement::Kind::Swap: {
    const auto &S = static_cast<const Swap &>(Stmt);
    return std::make_unique<Swap>(&S.getFirst(), &S.getSecond());
  }
  case Statement::Kind::MergeInto: {
    const auto &M = static_cast<const MergeInto &>(Stmt);
    return std::make_unique<MergeInto>(&M.getSource(), &M.getDestination());
  }
  case Statement::Kind::Io: {
    const auto &IoStmt = static_cast<const Io &>(Stmt);
    return std::make_unique<Io>(IoStmt.getDirection(),
                                &IoStmt.getRelation());
  }
  case Statement::Kind::LogTimer: {
    const auto &Log = static_cast<const LogTimer &>(Stmt);
    return std::make_unique<LogTimer>(Log.getLabel(), Log.getInfo(),
                                      clone(Log.getBody()));
  }
  }
  unreachable("unknown statement kind");
}
