//===- ram/Clone.cpp - Deep copies of RAM subtrees ----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ram/Clone.h"

#include "util/MiscUtil.h"

using namespace stird;
using namespace stird::ram;

namespace {

/// Applies the relation map (when given) to one reference.
const Relation *remap(const Relation &Rel, const RelationMap *Map) {
  if (Map)
    if (auto It = Map->find(&Rel); It != Map->end())
      return It->second;
  return &Rel;
}

} // namespace

std::vector<ExprPtr>
stird::ram::clonePattern(const std::vector<ExprPtr> &Pattern) {
  std::vector<ExprPtr> Result;
  Result.reserve(Pattern.size());
  for (const auto &Col : Pattern)
    Result.push_back(clone(*Col));
  return Result;
}

ExprPtr stird::ram::clone(const Expression &Expr) {
  switch (Expr.getKind()) {
  case Expression::Kind::Constant:
    return std::make_unique<Constant>(
        static_cast<const Constant &>(Expr).getValue());
  case Expression::Kind::TupleElement: {
    const auto &TE = static_cast<const TupleElement &>(Expr);
    return std::make_unique<TupleElement>(TE.getTupleId(), TE.getElement());
  }
  case Expression::Kind::Intrinsic: {
    const auto &Op = static_cast<const Intrinsic &>(Expr);
    std::vector<ExprPtr> Args;
    for (const auto &Arg : Op.getArgs())
      Args.push_back(clone(*Arg));
    return std::make_unique<Intrinsic>(Op.getOp(), std::move(Args));
  }
  case Expression::Kind::AutoIncrement:
    return std::make_unique<AutoIncrement>();
  case Expression::Kind::Undef:
    return std::make_unique<Undef>();
  }
  unreachable("unknown expression kind");
}

CondPtr stird::ram::clone(const Condition &Cond, const RelationMap *Map) {
  switch (Cond.getKind()) {
  case Condition::Kind::True:
    return std::make_unique<True>();
  case Condition::Kind::Conjunction: {
    const auto &C = static_cast<const Conjunction &>(Cond);
    return std::make_unique<Conjunction>(clone(C.getLhs(), Map),
                                         clone(C.getRhs(), Map));
  }
  case Condition::Kind::Negation:
    return std::make_unique<Negation>(
        clone(static_cast<const Negation &>(Cond).getInner(), Map));
  case Condition::Kind::Constraint: {
    const auto &C = static_cast<const Constraint &>(Cond);
    return std::make_unique<Constraint>(C.getOp(), clone(C.getLhs()),
                                        clone(C.getRhs()));
  }
  case Condition::Kind::EmptinessCheck:
    return std::make_unique<EmptinessCheck>(remap(
        static_cast<const EmptinessCheck &>(Cond).getRelation(), Map));
  case Condition::Kind::ExistenceCheck: {
    const auto &C = static_cast<const ExistenceCheck &>(Cond);
    return std::make_unique<ExistenceCheck>(remap(C.getRelation(), Map),
                                            clonePattern(C.getPattern()));
  }
  }
  unreachable("unknown condition kind");
}

OpPtr stird::ram::clone(const Operation &Op, const RelationMap *Map) {
  switch (Op.getKind()) {
  case Operation::Kind::Scan: {
    const auto &S = static_cast<const Scan &>(Op);
    return std::make_unique<Scan>(remap(S.getRelation(), Map),
                                  S.getTupleId(),
                                  clone(S.getNested(), Map));
  }
  case Operation::Kind::IndexScan: {
    const auto &S = static_cast<const IndexScan &>(Op);
    return std::make_unique<IndexScan>(remap(S.getRelation(), Map),
                                       S.getTupleId(),
                                       clonePattern(S.getPattern()),
                                       clone(S.getNested(), Map));
  }
  case Operation::Kind::Filter: {
    const auto &F = static_cast<const Filter &>(Op);
    return std::make_unique<Filter>(clone(F.getCondition(), Map),
                                    clone(F.getNested(), Map));
  }
  case Operation::Kind::Project: {
    const auto &P = static_cast<const Project &>(Op);
    return std::make_unique<Project>(remap(P.getRelation(), Map),
                                     clonePattern(P.getValues()));
  }
  case Operation::Kind::Aggregate: {
    const auto &A = static_cast<const Aggregate &>(Op);
    return std::make_unique<Aggregate>(
        A.getFunc(), remap(A.getRelation(), Map), A.getTupleId(),
        clonePattern(A.getPattern()),
        A.getTargetExpr() ? clone(*A.getTargetExpr()) : nullptr,
        A.getCondition() ? clone(*A.getCondition(), Map) : nullptr,
        clone(A.getNested(), Map));
  }
  }
  unreachable("unknown operation kind");
}

StmtPtr stird::ram::clone(const Statement &Stmt, const RelationMap *Map) {
  switch (Stmt.getKind()) {
  case Statement::Kind::Sequence: {
    std::vector<StmtPtr> Children;
    for (const auto &Child :
         static_cast<const Sequence &>(Stmt).getStatements())
      Children.push_back(clone(*Child, Map));
    return std::make_unique<Sequence>(std::move(Children));
  }
  case Statement::Kind::Loop:
    return std::make_unique<Loop>(
        clone(static_cast<const Loop &>(Stmt).getBody(), Map));
  case Statement::Kind::Exit:
    return std::make_unique<Exit>(
        clone(static_cast<const Exit &>(Stmt).getCondition(), Map));
  case Statement::Kind::Query:
    return std::make_unique<Query>(
        clone(static_cast<const Query &>(Stmt).getRoot(), Map));
  case Statement::Kind::Clear:
    return std::make_unique<Clear>(
        remap(static_cast<const Clear &>(Stmt).getRelation(), Map));
  case Statement::Kind::Swap: {
    const auto &S = static_cast<const Swap &>(Stmt);
    return std::make_unique<Swap>(remap(S.getFirst(), Map),
                                  remap(S.getSecond(), Map));
  }
  case Statement::Kind::MergeInto: {
    const auto &M = static_cast<const MergeInto &>(Stmt);
    return std::make_unique<MergeInto>(remap(M.getSource(), Map),
                                       remap(M.getDestination(), Map));
  }
  case Statement::Kind::Erase: {
    const auto &E = static_cast<const Erase &>(Stmt);
    return std::make_unique<Erase>(remap(E.getSource(), Map),
                                   remap(E.getDestination(), Map));
  }
  case Statement::Kind::SubtractInto: {
    const auto &S = static_cast<const SubtractInto &>(Stmt);
    return std::make_unique<SubtractInto>(remap(S.getSource(), Map),
                                          remap(S.getFilter(), Map),
                                          remap(S.getDestination(), Map));
  }
  case Statement::Kind::FoldCounts: {
    const auto &F = static_cast<const FoldCounts &>(Stmt);
    return std::make_unique<FoldCounts>(
        remap(F.getAdd(), Map), remap(F.getDec(), Map),
        remap(F.getSupport(), Map), remap(F.getTarget(), Map),
        remap(F.getInsOut(), Map), remap(F.getDelOut(), Map));
  }
  case Statement::Kind::Io: {
    const auto &IoStmt = static_cast<const Io &>(Stmt);
    return std::make_unique<Io>(IoStmt.getDirection(),
                                remap(IoStmt.getRelation(), Map));
  }
  case Statement::Kind::LogTimer: {
    const auto &Log = static_cast<const LogTimer &>(Stmt);
    // RuleInfo is plain data (label, stratum, the planner's Sips/AtomOrder
    // annotations, ...) — the struct copy carries everything.
    return std::make_unique<LogTimer>(Log.getLabel(), Log.getInfo(),
                                      clone(Log.getBody(), Map));
  }
  }
  unreachable("unknown statement kind");
}

std::unique_ptr<Program> stird::ram::cloneProgram(const Program &Prog) {
  auto Result = std::make_unique<Program>();
  RelationMap Map;
  for (const auto &Rel : Prog.getRelations()) {
    Relation *Copy = Result->addRelation(
        Rel->getName(), Rel->getColumnTypes(), Rel->getStructure());
    Copy->setOrders(Rel->getOrders());
    if (Rel->isInput())
      Copy->markInput(Rel->getInputPath());
    if (Rel->isOutput())
      Copy->markOutput(Rel->getOutputPath());
    if (Rel->isPrintSize())
      Copy->markPrintSize();
    Map[Rel.get()] = Copy;
  }
  if (Prog.hasMain())
    Result->setMain(clone(Prog.getMain(), &Map));
  if (Prog.hasUpdate())
    Result->setUpdate(clone(Prog.getUpdate(), &Map));
  for (const auto &[Rel, Aux] : Prog.getUpdateAuxMap())
    Result->setUpdateAux(Rel, Aux);
  if (Prog.hasMaintenance()) {
    std::vector<Program::MaintStratum> Strata;
    for (const auto &S : Prog.getMaintStrata()) {
      Program::MaintStratum Copy;
      Copy.Strategy = S.Strategy;
      Copy.FallbackReason = S.FallbackReason;
      Copy.Relations = S.Relations;
      Copy.Stmt = S.Stmt ? clone(*S.Stmt, &Map) : nullptr;
      Copy.MainBegin = S.MainBegin;
      Copy.MainEnd = S.MainEnd;
      Strata.push_back(std::move(Copy));
    }
    Result->setMaintStrata(std::move(Strata));
    if (const Statement *Prologue = Prog.getMaintPrologue())
      Result->setMaintPrologue(clone(*Prologue, &Map));
    if (const Statement *CountInit = Prog.getCountInit())
      Result->setCountInit(clone(*CountInit, &Map));
    if (const Statement *Epilogue = Prog.getMaintEpilogue())
      Result->setMaintEpilogue(clone(*Epilogue, &Map));
  }
  Result->setMaintIneligibleReason(Prog.getMaintIneligibleReason());
  for (const auto &[Rel, Aux] : Prog.getMaintAuxMap())
    Result->setMaintAux(Rel, Aux);
  return Result;
}
