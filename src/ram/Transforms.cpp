//===- ram/Transforms.cpp - RAM optimization passes ----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ram/Transforms.h"

#include "ram/Arithmetic.h"
#include "ram/Clone.h"
#include "util/MiscUtil.h"

#include <cstdint>
#include <unordered_set>

using namespace stird;
using namespace stird::ram;

namespace {

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

class ConstantFolder {
public:
  ConstantFolder(SymbolTable &Symbols, TransformStats &Stats)
      : Symbols(Symbols), Stats(Stats) {}

  ExprPtr rewriteExpr(const Expression &Expr) {
    if (Expr.getKind() != Expression::Kind::Intrinsic)
      return clone(Expr);
    const auto &Op = static_cast<const Intrinsic &>(Expr);
    std::vector<ExprPtr> Args;
    bool AllConstant = true;
    for (const auto &Arg : Op.getArgs()) {
      Args.push_back(rewriteExpr(*Arg));
      AllConstant &=
          Args.back()->getKind() == Expression::Kind::Constant;
    }
    if (!AllConstant || Args.empty())
      return std::make_unique<Intrinsic>(Op.getOp(), std::move(Args));

    RamDomain Values[8];
    assert(Args.size() <= 8 && "intrinsic arity too large");
    for (std::size_t I = 0; I < Args.size(); ++I)
      Values[I] = static_cast<const Constant &>(*Args[I]).getValue();
    ++Stats.FoldedExpressions;
    return std::make_unique<Constant>(
        applyIntrinsic(Op.getOp(), Values, Args.size(), Symbols));
  }

  std::vector<ExprPtr> rewritePattern(const std::vector<ExprPtr> &Pattern) {
    std::vector<ExprPtr> Result;
    Result.reserve(Pattern.size());
    for (const auto &Col : Pattern)
      Result.push_back(rewriteExpr(*Col));
    return Result;
  }

  CondPtr rewriteCond(const Condition &Cond) {
    switch (Cond.getKind()) {
    case Condition::Kind::Conjunction: {
      const auto &C = static_cast<const Conjunction &>(Cond);
      CondPtr Lhs = rewriteCond(C.getLhs());
      CondPtr Rhs = rewriteCond(C.getRhs());
      // True simplifications.
      if (Lhs->getKind() == Condition::Kind::True) {
        ++Stats.FoldedConditions;
        return Rhs;
      }
      if (Rhs->getKind() == Condition::Kind::True) {
        ++Stats.FoldedConditions;
        return Lhs;
      }
      return std::make_unique<Conjunction>(std::move(Lhs), std::move(Rhs));
    }
    case Condition::Kind::Negation: {
      CondPtr Inner =
          rewriteCond(static_cast<const Negation &>(Cond).getInner());
      if (Inner->getKind() == Condition::Kind::Negation) {
        // Double negation.
        ++Stats.FoldedConditions;
        return clone(static_cast<const Negation &>(*Inner).getInner());
      }
      return std::make_unique<Negation>(std::move(Inner));
    }
    case Condition::Kind::Constraint: {
      const auto &C = static_cast<const Constraint &>(Cond);
      ExprPtr Lhs = rewriteExpr(C.getLhs());
      ExprPtr Rhs = rewriteExpr(C.getRhs());
      if (Lhs->getKind() == Expression::Kind::Constant &&
          Rhs->getKind() == Expression::Kind::Constant) {
        const bool Holds =
            applyCmp(C.getOp(),
                     static_cast<const Constant &>(*Lhs).getValue(),
                     static_cast<const Constant &>(*Rhs).getValue());
        ++Stats.FoldedConditions;
        if (Holds)
          return std::make_unique<True>();
        // There is no False node; a never-true constraint keeps the
        // constant operands (cheap and rare — it only survives in dead
        // rules).
      }
      return std::make_unique<Constraint>(C.getOp(), std::move(Lhs),
                                          std::move(Rhs));
    }
    case Condition::Kind::ExistenceCheck: {
      const auto &C = static_cast<const ExistenceCheck &>(Cond);
      return std::make_unique<ExistenceCheck>(
          &C.getRelation(), rewritePattern(C.getPattern()));
    }
    case Condition::Kind::True:
    case Condition::Kind::EmptinessCheck:
      return clone(Cond);
    }
    unreachable("unknown condition kind");
  }

  OpPtr rewriteOp(const Operation &Op) {
    switch (Op.getKind()) {
    case Operation::Kind::Scan: {
      const auto &S = static_cast<const Scan &>(Op);
      return std::make_unique<Scan>(&S.getRelation(), S.getTupleId(),
                                    rewriteOp(S.getNested()));
    }
    case Operation::Kind::IndexScan: {
      const auto &S = static_cast<const IndexScan &>(Op);
      return std::make_unique<IndexScan>(
          &S.getRelation(), S.getTupleId(), rewritePattern(S.getPattern()),
          rewriteOp(S.getNested()));
    }
    case Operation::Kind::Filter: {
      const auto &F = static_cast<const Filter &>(Op);
      CondPtr Cond = rewriteCond(F.getCondition());
      OpPtr Nested = rewriteOp(F.getNested());
      if (Cond->getKind() == Condition::Kind::True) {
        ++Stats.FoldedConditions;
        return Nested;
      }
      return std::make_unique<Filter>(std::move(Cond), std::move(Nested));
    }
    case Operation::Kind::Project: {
      const auto &P = static_cast<const Project &>(Op);
      return std::make_unique<Project>(&P.getRelation(),
                                       rewritePattern(P.getValues()));
    }
    case Operation::Kind::Aggregate: {
      const auto &A = static_cast<const Aggregate &>(Op);
      return std::make_unique<Aggregate>(
          A.getFunc(), &A.getRelation(), A.getTupleId(),
          rewritePattern(A.getPattern()),
          A.getTargetExpr() ? rewriteExpr(*A.getTargetExpr()) : nullptr,
          A.getCondition() ? rewriteCond(*A.getCondition()) : nullptr,
          rewriteOp(A.getNested()));
    }
    }
    unreachable("unknown operation kind");
  }

  StmtPtr rewriteStmt(const Statement &Stmt) {
    switch (Stmt.getKind()) {
    case Statement::Kind::Sequence: {
      std::vector<StmtPtr> Children;
      for (const auto &Child :
           static_cast<const Sequence &>(Stmt).getStatements())
        Children.push_back(rewriteStmt(*Child));
      return std::make_unique<Sequence>(std::move(Children));
    }
    case Statement::Kind::Loop:
      return std::make_unique<Loop>(
          rewriteStmt(static_cast<const Loop &>(Stmt).getBody()));
    case Statement::Kind::Exit:
      return std::make_unique<Exit>(
          rewriteCond(static_cast<const Exit &>(Stmt).getCondition()));
    case Statement::Kind::Query:
      return std::make_unique<Query>(
          rewriteOp(static_cast<const Query &>(Stmt).getRoot()));
    case Statement::Kind::LogTimer: {
      const auto &Log = static_cast<const LogTimer &>(Stmt);
      return std::make_unique<LogTimer>(Log.getLabel(), Log.getInfo(),
                                        rewriteStmt(Log.getBody()));
    }
    default:
      return clone(Stmt);
    }
  }

private:
  SymbolTable &Symbols;
  TransformStats &Stats;
};

//===----------------------------------------------------------------------===//
// Filter merging
//===----------------------------------------------------------------------===//

class FilterMerger {
public:
  explicit FilterMerger(std::size_t &Merged) : Merged(Merged) {}

  OpPtr rewriteOp(const Operation &Op) {
    switch (Op.getKind()) {
    case Operation::Kind::Scan: {
      const auto &S = static_cast<const Scan &>(Op);
      return std::make_unique<Scan>(&S.getRelation(), S.getTupleId(),
                                    rewriteOp(S.getNested()));
    }
    case Operation::Kind::IndexScan: {
      const auto &S = static_cast<const IndexScan &>(Op);
      return std::make_unique<IndexScan>(&S.getRelation(), S.getTupleId(),
                                         clonePattern(S.getPattern()),
                                         rewriteOp(S.getNested()));
    }
    case Operation::Kind::Filter: {
      // Collect the maximal chain of directly nested filters.
      const auto *F = &static_cast<const Filter &>(Op);
      CondPtr Merged = clone(F->getCondition());
      while (F->getNested().getKind() == Operation::Kind::Filter) {
        F = &static_cast<const Filter &>(F->getNested());
        Merged = std::make_unique<Conjunction>(std::move(Merged),
                                               clone(F->getCondition()));
        ++this->Merged;
      }
      return std::make_unique<Filter>(std::move(Merged),
                                      rewriteOp(F->getNested()));
    }
    case Operation::Kind::Project:
      return clone(Op);
    case Operation::Kind::Aggregate: {
      const auto &A = static_cast<const Aggregate &>(Op);
      return std::make_unique<Aggregate>(
          A.getFunc(), &A.getRelation(), A.getTupleId(),
          clonePattern(A.getPattern()),
          A.getTargetExpr() ? clone(*A.getTargetExpr()) : nullptr,
          A.getCondition() ? clone(*A.getCondition()) : nullptr,
          rewriteOp(A.getNested()));
    }
    }
    unreachable("unknown operation kind");
  }

  StmtPtr rewriteStmt(const Statement &Stmt) {
    switch (Stmt.getKind()) {
    case Statement::Kind::Sequence: {
      std::vector<StmtPtr> Children;
      for (const auto &Child :
           static_cast<const Sequence &>(Stmt).getStatements())
        Children.push_back(rewriteStmt(*Child));
      return std::make_unique<Sequence>(std::move(Children));
    }
    case Statement::Kind::Loop:
      return std::make_unique<Loop>(
          rewriteStmt(static_cast<const Loop &>(Stmt).getBody()));
    case Statement::Kind::Query:
      return std::make_unique<Query>(
          rewriteOp(static_cast<const Query &>(Stmt).getRoot()));
    case Statement::Kind::LogTimer: {
      const auto &Log = static_cast<const LogTimer &>(Stmt);
      return std::make_unique<LogTimer>(Log.getLabel(), Log.getInfo(),
                                        rewriteStmt(Log.getBody()));
    }
    default:
      return clone(Stmt);
    }
  }

private:
  std::size_t &Merged;
};

//===----------------------------------------------------------------------===//
// Filter sinking
//===----------------------------------------------------------------------===//

/// Collects the tuple ids an expression reads and whether it contains an
/// AutoIncrement (whose evaluation count is observable, so it must not move
/// from a per-tuple filter into a once-per-scan pattern).
void analyzeExpr(const Expression &Expr, std::unordered_set<std::uint32_t> &Ids,
                 bool &HasCounter) {
  switch (Expr.getKind()) {
  case Expression::Kind::TupleElement:
    Ids.insert(static_cast<const TupleElement &>(Expr).getTupleId());
    return;
  case Expression::Kind::Intrinsic:
    for (const auto &Arg : static_cast<const Intrinsic &>(Expr).getArgs())
      analyzeExpr(*Arg, Ids, HasCounter);
    return;
  case Expression::Kind::AutoIncrement:
    HasCounter = true;
    return;
  case Expression::Kind::Constant:
  case Expression::Kind::Undef:
    return;
  }
  unreachable("unknown expression kind");
}

class FilterSinker {
public:
  explicit FilterSinker(std::size_t &Sunk) : Sunk(Sunk) {}

  OpPtr rewriteOp(const Operation &Op) {
    switch (Op.getKind()) {
    case Operation::Kind::Scan: {
      const auto &S = static_cast<const Scan &>(Op);
      std::vector<ExprPtr> Pattern;
      for (std::size_t I = 0; I < S.getRelation().getArity(); ++I)
        Pattern.push_back(std::make_unique<Undef>());
      return rewriteScan(S.getRelation(), S.getTupleId(), std::move(Pattern),
                         S.getNested());
    }
    case Operation::Kind::IndexScan: {
      const auto &S = static_cast<const IndexScan &>(Op);
      return rewriteScan(S.getRelation(), S.getTupleId(),
                         clonePattern(S.getPattern()), S.getNested());
    }
    case Operation::Kind::Filter: {
      const auto &F = static_cast<const Filter &>(Op);
      return std::make_unique<Filter>(clone(F.getCondition()),
                                      rewriteOp(F.getNested()));
    }
    case Operation::Kind::Project:
      return clone(Op);
    case Operation::Kind::Aggregate: {
      const auto &A = static_cast<const Aggregate &>(Op);
      return std::make_unique<Aggregate>(
          A.getFunc(), &A.getRelation(), A.getTupleId(),
          clonePattern(A.getPattern()),
          A.getTargetExpr() ? clone(*A.getTargetExpr()) : nullptr,
          A.getCondition() ? clone(*A.getCondition()) : nullptr,
          rewriteOp(A.getNested()));
    }
    }
    unreachable("unknown operation kind");
  }

  StmtPtr rewriteStmt(const Statement &Stmt) {
    switch (Stmt.getKind()) {
    case Statement::Kind::Sequence: {
      std::vector<StmtPtr> Children;
      for (const auto &Child :
           static_cast<const Sequence &>(Stmt).getStatements())
        Children.push_back(rewriteStmt(*Child));
      return std::make_unique<Sequence>(std::move(Children));
    }
    case Statement::Kind::Loop:
      return std::make_unique<Loop>(
          rewriteStmt(static_cast<const Loop &>(Stmt).getBody()));
    case Statement::Kind::Query:
      return std::make_unique<Query>(
          rewriteOp(static_cast<const Query &>(Stmt).getRoot()));
    case Statement::Kind::LogTimer: {
      const auto &Log = static_cast<const LogTimer &>(Stmt);
      return std::make_unique<LogTimer>(Log.getLabel(), Log.getInfo(),
                                        rewriteStmt(Log.getBody()));
    }
    default:
      return clone(Stmt);
    }
  }

private:
  /// The core rewrite: absorbs sinkable equality conjuncts from the filter
  /// chain directly beneath the scan of \p Tid into \p Pattern.
  OpPtr rewriteScan(const Relation &Rel, std::uint32_t Tid,
                    std::vector<ExprPtr> Pattern, const Operation &Nested) {
    // Split the immediate filter chain into conjuncts, absorbing what we
    // can. Unsinkable conjuncts are re-emitted as filters in order.
    const Operation *Rest = &Nested;
    std::vector<CondPtr> Kept;
    while (Rest->getKind() == Operation::Kind::Filter) {
      const auto &F = static_cast<const Filter &>(*Rest);
      absorb(F.getCondition(), Tid, Pattern, Kept);
      Rest = &F.getNested();
    }

    OpPtr Result = rewriteOp(*Rest);
    for (auto It = Kept.rbegin(); It != Kept.rend(); ++It)
      Result = std::make_unique<Filter>(std::move(*It), std::move(Result));
    if (searchSignature(Pattern) == 0)
      return std::make_unique<Scan>(&Rel, Tid, std::move(Result));
    return std::make_unique<IndexScan>(&Rel, Tid, std::move(Pattern),
                                       std::move(Result));
  }

  /// Recurses through conjunctions; sinks `TupleElement(Tid, col) == expr`
  /// (either side) into \p Pattern when expr reads nothing scanned at or
  /// below this level, collecting every other conjunct into \p Kept.
  void absorb(const Condition &Cond, std::uint32_t Tid,
              std::vector<ExprPtr> &Pattern, std::vector<CondPtr> &Kept) {
    if (Cond.getKind() == Condition::Kind::Conjunction) {
      const auto &C = static_cast<const Conjunction &>(Cond);
      absorb(C.getLhs(), Tid, Pattern, Kept);
      absorb(C.getRhs(), Tid, Pattern, Kept);
      return;
    }
    if (Cond.getKind() == Condition::Kind::Constraint) {
      const auto &C = static_cast<const Constraint &>(Cond);
      if (C.getOp() == CmpOp::Eq &&
          (trySink(C.getLhs(), C.getRhs(), Tid, Pattern) ||
           trySink(C.getRhs(), C.getLhs(), Tid, Pattern))) {
        ++Sunk;
        return;
      }
    }
    Kept.push_back(clone(Cond));
  }

  bool trySink(const Expression &ColSide, const Expression &ExprSide,
               std::uint32_t Tid, std::vector<ExprPtr> &Pattern) {
    if (ColSide.getKind() != Expression::Kind::TupleElement)
      return false;
    const auto &Elem = static_cast<const TupleElement &>(ColSide);
    if (Elem.getTupleId() != Tid || Elem.getElement() >= Pattern.size() ||
        Pattern[Elem.getElement()]->getKind() != Expression::Kind::Undef)
      return false;
    std::unordered_set<std::uint32_t> Ids;
    bool HasCounter = false;
    analyzeExpr(ExprSide, Ids, HasCounter);
    // A value is only available when the lookup starts if every tuple it
    // reads is bound further out. Operation trees are single chains with
    // tuple ids assigned in nesting order, so outer means a smaller id.
    if (HasCounter)
      return false;
    for (std::uint32_t Id : Ids)
      if (Id >= Tid)
        return false;
    Pattern[Elem.getElement()] = clone(ExprSide);
    return true;
  }

  std::size_t &Sunk;
};

} // namespace

TransformStats stird::ram::foldConstants(Program &Prog,
                                         SymbolTable &Symbols) {
  TransformStats Stats;
  if (!Prog.hasMain())
    return Stats;
  ConstantFolder Folder(Symbols, Stats);
  Prog.setMain(Folder.rewriteStmt(Prog.getMain()));
  if (Prog.hasUpdate())
    Prog.setUpdate(Folder.rewriteStmt(Prog.getUpdate()));
  return Stats;
}

std::size_t stird::ram::mergeAdjacentFilters(Program &Prog) {
  std::size_t Merged = 0;
  if (!Prog.hasMain())
    return Merged;
  FilterMerger Merger(Merged);
  Prog.setMain(Merger.rewriteStmt(Prog.getMain()));
  if (Prog.hasUpdate())
    Prog.setUpdate(Merger.rewriteStmt(Prog.getUpdate()));
  return Merged;
}

std::size_t stird::ram::sinkFiltersIntoScans(Program &Prog) {
  std::size_t Sunk = 0;
  if (!Prog.hasMain())
    return Sunk;
  FilterSinker Sinker(Sunk);
  Prog.setMain(Sinker.rewriteStmt(Prog.getMain()));
  if (Prog.hasUpdate())
    Prog.setUpdate(Sinker.rewriteStmt(Prog.getUpdate()));
  return Sunk;
}
