//===- ram/Transforms.cpp - RAM optimization passes ----------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ram/Transforms.h"

#include "ram/Arithmetic.h"
#include "ram/Clone.h"
#include "util/MiscUtil.h"

using namespace stird;
using namespace stird::ram;

namespace {

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

class ConstantFolder {
public:
  ConstantFolder(SymbolTable &Symbols, TransformStats &Stats)
      : Symbols(Symbols), Stats(Stats) {}

  ExprPtr rewriteExpr(const Expression &Expr) {
    if (Expr.getKind() != Expression::Kind::Intrinsic)
      return clone(Expr);
    const auto &Op = static_cast<const Intrinsic &>(Expr);
    std::vector<ExprPtr> Args;
    bool AllConstant = true;
    for (const auto &Arg : Op.getArgs()) {
      Args.push_back(rewriteExpr(*Arg));
      AllConstant &=
          Args.back()->getKind() == Expression::Kind::Constant;
    }
    if (!AllConstant || Args.empty())
      return std::make_unique<Intrinsic>(Op.getOp(), std::move(Args));

    RamDomain Values[8];
    assert(Args.size() <= 8 && "intrinsic arity too large");
    for (std::size_t I = 0; I < Args.size(); ++I)
      Values[I] = static_cast<const Constant &>(*Args[I]).getValue();
    ++Stats.FoldedExpressions;
    return std::make_unique<Constant>(
        applyIntrinsic(Op.getOp(), Values, Args.size(), Symbols));
  }

  std::vector<ExprPtr> rewritePattern(const std::vector<ExprPtr> &Pattern) {
    std::vector<ExprPtr> Result;
    Result.reserve(Pattern.size());
    for (const auto &Col : Pattern)
      Result.push_back(rewriteExpr(*Col));
    return Result;
  }

  CondPtr rewriteCond(const Condition &Cond) {
    switch (Cond.getKind()) {
    case Condition::Kind::Conjunction: {
      const auto &C = static_cast<const Conjunction &>(Cond);
      CondPtr Lhs = rewriteCond(C.getLhs());
      CondPtr Rhs = rewriteCond(C.getRhs());
      // True simplifications.
      if (Lhs->getKind() == Condition::Kind::True) {
        ++Stats.FoldedConditions;
        return Rhs;
      }
      if (Rhs->getKind() == Condition::Kind::True) {
        ++Stats.FoldedConditions;
        return Lhs;
      }
      return std::make_unique<Conjunction>(std::move(Lhs), std::move(Rhs));
    }
    case Condition::Kind::Negation: {
      CondPtr Inner =
          rewriteCond(static_cast<const Negation &>(Cond).getInner());
      if (Inner->getKind() == Condition::Kind::Negation) {
        // Double negation.
        ++Stats.FoldedConditions;
        return clone(static_cast<const Negation &>(*Inner).getInner());
      }
      return std::make_unique<Negation>(std::move(Inner));
    }
    case Condition::Kind::Constraint: {
      const auto &C = static_cast<const Constraint &>(Cond);
      ExprPtr Lhs = rewriteExpr(C.getLhs());
      ExprPtr Rhs = rewriteExpr(C.getRhs());
      if (Lhs->getKind() == Expression::Kind::Constant &&
          Rhs->getKind() == Expression::Kind::Constant) {
        const bool Holds =
            applyCmp(C.getOp(),
                     static_cast<const Constant &>(*Lhs).getValue(),
                     static_cast<const Constant &>(*Rhs).getValue());
        ++Stats.FoldedConditions;
        if (Holds)
          return std::make_unique<True>();
        // There is no False node; a never-true constraint keeps the
        // constant operands (cheap and rare — it only survives in dead
        // rules).
      }
      return std::make_unique<Constraint>(C.getOp(), std::move(Lhs),
                                          std::move(Rhs));
    }
    case Condition::Kind::ExistenceCheck: {
      const auto &C = static_cast<const ExistenceCheck &>(Cond);
      return std::make_unique<ExistenceCheck>(
          &C.getRelation(), rewritePattern(C.getPattern()));
    }
    case Condition::Kind::True:
    case Condition::Kind::EmptinessCheck:
      return clone(Cond);
    }
    unreachable("unknown condition kind");
  }

  OpPtr rewriteOp(const Operation &Op) {
    switch (Op.getKind()) {
    case Operation::Kind::Scan: {
      const auto &S = static_cast<const Scan &>(Op);
      return std::make_unique<Scan>(&S.getRelation(), S.getTupleId(),
                                    rewriteOp(S.getNested()));
    }
    case Operation::Kind::IndexScan: {
      const auto &S = static_cast<const IndexScan &>(Op);
      return std::make_unique<IndexScan>(
          &S.getRelation(), S.getTupleId(), rewritePattern(S.getPattern()),
          rewriteOp(S.getNested()));
    }
    case Operation::Kind::Filter: {
      const auto &F = static_cast<const Filter &>(Op);
      CondPtr Cond = rewriteCond(F.getCondition());
      OpPtr Nested = rewriteOp(F.getNested());
      if (Cond->getKind() == Condition::Kind::True) {
        ++Stats.FoldedConditions;
        return Nested;
      }
      return std::make_unique<Filter>(std::move(Cond), std::move(Nested));
    }
    case Operation::Kind::Project: {
      const auto &P = static_cast<const Project &>(Op);
      return std::make_unique<Project>(&P.getRelation(),
                                       rewritePattern(P.getValues()));
    }
    case Operation::Kind::Aggregate: {
      const auto &A = static_cast<const Aggregate &>(Op);
      return std::make_unique<Aggregate>(
          A.getFunc(), &A.getRelation(), A.getTupleId(),
          rewritePattern(A.getPattern()),
          A.getTargetExpr() ? rewriteExpr(*A.getTargetExpr()) : nullptr,
          A.getCondition() ? rewriteCond(*A.getCondition()) : nullptr,
          rewriteOp(A.getNested()));
    }
    }
    unreachable("unknown operation kind");
  }

  StmtPtr rewriteStmt(const Statement &Stmt) {
    switch (Stmt.getKind()) {
    case Statement::Kind::Sequence: {
      std::vector<StmtPtr> Children;
      for (const auto &Child :
           static_cast<const Sequence &>(Stmt).getStatements())
        Children.push_back(rewriteStmt(*Child));
      return std::make_unique<Sequence>(std::move(Children));
    }
    case Statement::Kind::Loop:
      return std::make_unique<Loop>(
          rewriteStmt(static_cast<const Loop &>(Stmt).getBody()));
    case Statement::Kind::Exit:
      return std::make_unique<Exit>(
          rewriteCond(static_cast<const Exit &>(Stmt).getCondition()));
    case Statement::Kind::Query:
      return std::make_unique<Query>(
          rewriteOp(static_cast<const Query &>(Stmt).getRoot()));
    case Statement::Kind::LogTimer: {
      const auto &Log = static_cast<const LogTimer &>(Stmt);
      return std::make_unique<LogTimer>(Log.getLabel(), Log.getInfo(),
                                        rewriteStmt(Log.getBody()));
    }
    default:
      return clone(Stmt);
    }
  }

private:
  SymbolTable &Symbols;
  TransformStats &Stats;
};

//===----------------------------------------------------------------------===//
// Filter merging
//===----------------------------------------------------------------------===//

class FilterMerger {
public:
  explicit FilterMerger(std::size_t &Merged) : Merged(Merged) {}

  OpPtr rewriteOp(const Operation &Op) {
    switch (Op.getKind()) {
    case Operation::Kind::Scan: {
      const auto &S = static_cast<const Scan &>(Op);
      return std::make_unique<Scan>(&S.getRelation(), S.getTupleId(),
                                    rewriteOp(S.getNested()));
    }
    case Operation::Kind::IndexScan: {
      const auto &S = static_cast<const IndexScan &>(Op);
      return std::make_unique<IndexScan>(&S.getRelation(), S.getTupleId(),
                                         clonePattern(S.getPattern()),
                                         rewriteOp(S.getNested()));
    }
    case Operation::Kind::Filter: {
      // Collect the maximal chain of directly nested filters.
      const auto *F = &static_cast<const Filter &>(Op);
      CondPtr Merged = clone(F->getCondition());
      while (F->getNested().getKind() == Operation::Kind::Filter) {
        F = &static_cast<const Filter &>(F->getNested());
        Merged = std::make_unique<Conjunction>(std::move(Merged),
                                               clone(F->getCondition()));
        ++this->Merged;
      }
      return std::make_unique<Filter>(std::move(Merged),
                                      rewriteOp(F->getNested()));
    }
    case Operation::Kind::Project:
      return clone(Op);
    case Operation::Kind::Aggregate: {
      const auto &A = static_cast<const Aggregate &>(Op);
      return std::make_unique<Aggregate>(
          A.getFunc(), &A.getRelation(), A.getTupleId(),
          clonePattern(A.getPattern()),
          A.getTargetExpr() ? clone(*A.getTargetExpr()) : nullptr,
          A.getCondition() ? clone(*A.getCondition()) : nullptr,
          rewriteOp(A.getNested()));
    }
    }
    unreachable("unknown operation kind");
  }

  StmtPtr rewriteStmt(const Statement &Stmt) {
    switch (Stmt.getKind()) {
    case Statement::Kind::Sequence: {
      std::vector<StmtPtr> Children;
      for (const auto &Child :
           static_cast<const Sequence &>(Stmt).getStatements())
        Children.push_back(rewriteStmt(*Child));
      return std::make_unique<Sequence>(std::move(Children));
    }
    case Statement::Kind::Loop:
      return std::make_unique<Loop>(
          rewriteStmt(static_cast<const Loop &>(Stmt).getBody()));
    case Statement::Kind::Query:
      return std::make_unique<Query>(
          rewriteOp(static_cast<const Query &>(Stmt).getRoot()));
    case Statement::Kind::LogTimer: {
      const auto &Log = static_cast<const LogTimer &>(Stmt);
      return std::make_unique<LogTimer>(Log.getLabel(), Log.getInfo(),
                                        rewriteStmt(Log.getBody()));
    }
    default:
      return clone(Stmt);
    }
  }

private:
  std::size_t &Merged;
};

} // namespace

TransformStats stird::ram::foldConstants(Program &Prog,
                                         SymbolTable &Symbols) {
  TransformStats Stats;
  if (!Prog.hasMain())
    return Stats;
  ConstantFolder Folder(Symbols, Stats);
  Prog.setMain(Folder.rewriteStmt(Prog.getMain()));
  if (Prog.hasUpdate())
    Prog.setUpdate(Folder.rewriteStmt(Prog.getUpdate()));
  return Stats;
}

std::size_t stird::ram::mergeAdjacentFilters(Program &Prog) {
  std::size_t Merged = 0;
  if (!Prog.hasMain())
    return Merged;
  FilterMerger Merger(Merged);
  Prog.setMain(Merger.rewriteStmt(Prog.getMain()));
  if (Prog.hasUpdate())
    Prog.setUpdate(Merger.rewriteStmt(Prog.getUpdate()));
  return Merged;
}
