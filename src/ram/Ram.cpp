//===- ram/Ram.cpp - RAM IR helpers -----------------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "ram/Ram.h"

namespace stird::ram {

std::uint32_t searchSignature(const std::vector<ExprPtr> &Pattern) {
  std::uint32_t Signature = 0;
  for (std::size_t I = 0; I < Pattern.size(); ++I)
    if (Pattern[I] && Pattern[I]->getKind() != Expression::Kind::Undef)
      Signature |= (1U << I);
  return Signature;
}

} // namespace stird::ram
