//===- core/Program.cpp - Public engine facade -------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "core/Program.h"

#include "ast/Parser.h"
#include "ast/SemanticAnalysis.h"
#include "interp/Scheduler.h"
#include "ram/RamPrinter.h"
#include "ram/Transforms.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

using namespace stird;
using namespace stird::core;

static void reportErrors(const std::vector<std::string> &Diagnostics,
                         std::vector<std::string> *Errors) {
  if (Errors) {
    Errors->insert(Errors->end(), Diagnostics.begin(), Diagnostics.end());
    return;
  }
  for (const auto &Message : Diagnostics)
    std::fprintf(stderr, "error: %s\n", Message.c_str());
}

std::unique_ptr<Program>
Program::fromSource(const std::string &Source,
                    std::vector<std::string> *Errors,
                    const CompileOptions &Options) {
  ast::ParseResult Parsed = ast::parseProgram(Source);
  if (!Parsed.succeeded()) {
    reportErrors(Parsed.Errors, Errors);
    return nullptr;
  }

  ast::SemanticInfo Info = ast::analyze(*Parsed.Prog);
  if (!Info.succeeded()) {
    reportErrors(Info.Errors, Errors);
    return nullptr;
  }

  auto Result = std::unique_ptr<Program>(new Program());
  translate::TranslationOptions TranslateOptions;
  TranslateOptions.EmitUpdateProgram = Options.EmitUpdateProgram;
  TranslateOptions.EmitMaintenance = Options.EmitMaintenance;
  TranslateOptions.Sips = Options.Sips;
  TranslateOptions.Feedback = Options.Feedback;

  // The profile strategy needs usable feedback; anything less degrades to
  // max-bound with a warning rather than failing the compile (a stale
  // profile must never make a program unrunnable).
  std::unique_ptr<translate::ProfileFeedback> OwnedFeedback;
  if (TranslateOptions.Sips == translate::SipsStrategy::Profile) {
    if (!TranslateOptions.Feedback && !Options.FeedbackPath.empty()) {
      std::string FeedbackError;
      OwnedFeedback = translate::ProfileFeedback::fromFile(
          Options.FeedbackPath, &FeedbackError);
      if (OwnedFeedback)
        TranslateOptions.Feedback = OwnedFeedback.get();
      else
        std::fprintf(stderr,
                     "warning: --feedback: %s; falling back to "
                     "--sips=max-bound\n",
                     FeedbackError.c_str());
    }
    if (TranslateOptions.Feedback) {
      bool Covers = false;
      for (const auto &Decl : Parsed.Prog->Relations)
        if (TranslateOptions.Feedback->hasRelation(Decl->getName())) {
          Covers = true;
          break;
        }
      if (!Covers) {
        std::fprintf(stderr,
                     "warning: --feedback: profile covers none of this "
                     "program's relations (stale?); falling back to "
                     "--sips=max-bound\n");
        TranslateOptions.Feedback = nullptr;
      }
    } else if (Options.FeedbackPath.empty()) {
      std::fprintf(stderr,
                   "warning: --sips=profile without --feedback; falling "
                   "back to --sips=max-bound\n");
    }
    if (!TranslateOptions.Feedback)
      TranslateOptions.Sips = translate::SipsStrategy::MaxBound;
  }

  // Per-relation substrate selection, applied to the parsed AST before
  // translation so the delta_/new_ aux relations inherit the choice. Two
  // sources, explicit forcing winning over the feedback heuristic; every
  // rejected request degrades with a warning, never a compile error.
  auto parseSubstrate =
      [](const std::string &Kind) -> std::optional<ast::StructureKind> {
    if (Kind == "btree")
      return ast::StructureKind::Btree;
    if (Kind == "brie")
      return ast::StructureKind::Brie;
    if (Kind == "art")
      return ast::StructureKind::Art;
    return std::nullopt;
  };
  auto substrateApplicable = [](const ast::RelationDecl &Decl,
                                ast::StructureKind Kind) -> const char * {
    if (Decl.getStructure() == ast::StructureKind::Eqrel)
      return "equivalence relations keep their union-find substrate";
    if (Kind != ast::StructureKind::Btree && Decl.getArity() > 8)
      return "arity exceeds the brie/art portfolio limit of 8";
    return nullptr;
  };
  for (const auto &[Name, KindName] : Options.SubstrateOverrides) {
    ast::RelationDecl *Decl = Parsed.Prog->findRelation(Name);
    if (!Decl) {
      std::fprintf(stderr,
                   "warning: --substrate: unknown relation '%s'; ignored\n",
                   Name.c_str());
      continue;
    }
    std::optional<ast::StructureKind> Kind = parseSubstrate(KindName);
    if (!Kind) {
      std::fprintf(stderr,
                   "warning: --substrate: unknown substrate '%s' for "
                   "relation '%s'; ignored\n",
                   KindName.c_str(), Name.c_str());
      continue;
    }
    if (const char *Reason = substrateApplicable(*Decl, *Kind)) {
      std::fprintf(stderr,
                   "warning: --substrate: cannot force '%s' to %s: %s\n",
                   Name.c_str(), KindName.c_str(), Reason);
      continue;
    }
    if (Decl->getStructure() != *Kind) {
      Decl->setStructure(*Kind);
      Result->SubstrateDecisions[Name] =
          KindName + " (forced by --substrate)";
    }
  }
  if (Options.SubstrateFromFeedback && TranslateOptions.Feedback &&
      TranslateOptions.Feedback->hasAccessPatterns()) {
    for (const auto &Decl : Parsed.Prog->Relations) {
      // Explicit forcing wins; only declared-btree relations are eligible
      // (brie/eqrel declarations are deliberate substrate choices).
      if (Result->SubstrateDecisions.count(Decl->getName()))
        continue;
      if (Decl->getStructure() != ast::StructureKind::Btree ||
          Decl->getArity() > 8)
        continue;
      auto Access =
          TranslateOptions.Feedback->relationAccess(Decl->getName());
      if (!Access)
        continue;
      // Point-lookup-heavy: fully-bound probes dominate bounded range
      // scans by 4x. ART serves those in O(key length) with direct-indexed
      // descent; range-heavy traffic stays on the B-tree.
      if (Access->PointLookups < 64 ||
          Access->PointLookups < 4 * std::max(1.0, Access->RangeScans))
        continue;
      // Dense keys: the observed col0 span is mostly populated, so path
      // compression keeps the radix tree shallow.
      auto Size = TranslateOptions.Feedback->relationSize(Decl->getName());
      if (!Size || Access->Col0Max < Access->Col0Min)
        continue;
      const double Span = static_cast<double>(Access->Col0Max) -
                          static_cast<double>(Access->Col0Min) + 1.0;
      if (*Size < 0.25 * Span)
        continue;
      Decl->setStructure(ast::StructureKind::Art);
      Result->SubstrateDecisions[Decl->getName()] =
          "art (feedback: point-lookup-heavy, dense keys)";
    }
  }

  translate::TranslationResult Translated = translate::translateToRam(
      *Parsed.Prog, Info, Result->Symbols, TranslateOptions);
  if (!Translated.succeeded()) {
    reportErrors(Translated.Errors, Errors);
    return nullptr;
  }

  Result->Ast = std::move(Parsed.Prog);
  Result->Ram = std::move(Translated.Prog);
  // RAM-level optimizations, shared by interpreters and synthesizer.
  ram::foldConstants(*Result->Ram, Result->Symbols);
  // Sinking runs only under a reordering strategy: it is what converts a
  // reorder's newly-adjacent equality filters into indexed lookups, and
  // gating it keeps source-order plans bit-identical to older builds.
  if (TranslateOptions.Sips != translate::SipsStrategy::Source)
    ram::sinkFiltersIntoScans(*Result->Ram);
  ram::mergeAdjacentFilters(*Result->Ram);
  Result->Indexes = translate::selectIndexes(*Result->Ram);
  return Result;
}

std::unique_ptr<Program> Program::fromFile(const std::string &Path,
                                           std::vector<std::string> *Errors,
                                           const CompileOptions &Options) {
  std::ifstream In(Path);
  if (!In) {
    reportErrors({"cannot open program file '" + Path + "'"}, Errors);
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return fromSource(Buffer.str(), Errors, Options);
}

std::string Program::dumpRam() const { return ram::print(*Ram); }

std::shared_ptr<interp::Scheduler>
Program::schedulerFor(std::size_t NumThreads) {
  std::lock_guard<std::mutex> Lock(SchedM);
  std::shared_ptr<interp::Scheduler> &Sched = Schedulers[NumThreads];
  if (!Sched)
    Sched = std::make_shared<interp::Scheduler>(NumThreads);
  return Sched;
}

std::unique_ptr<interp::Engine>
Program::makeEngine(interp::EngineOptions Options) {
  if (Options.NumThreads == 0)
    Options.NumThreads = NumThreads;
  if (Options.NumThreads > 1 && !Options.Sched)
    Options.Sched = schedulerFor(Options.NumThreads);
  return std::make_unique<interp::Engine>(*Ram, Indexes, Symbols, Options);
}
