//===- core/Program.cpp - Public engine facade -------------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "core/Program.h"

#include "ast/Parser.h"
#include "ast/SemanticAnalysis.h"
#include "interp/Scheduler.h"
#include "ram/RamPrinter.h"
#include "ram/Transforms.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace stird;
using namespace stird::core;

static void reportErrors(const std::vector<std::string> &Diagnostics,
                         std::vector<std::string> *Errors) {
  if (Errors) {
    Errors->insert(Errors->end(), Diagnostics.begin(), Diagnostics.end());
    return;
  }
  for (const auto &Message : Diagnostics)
    std::fprintf(stderr, "error: %s\n", Message.c_str());
}

std::unique_ptr<Program>
Program::fromSource(const std::string &Source,
                    std::vector<std::string> *Errors,
                    const CompileOptions &Options) {
  ast::ParseResult Parsed = ast::parseProgram(Source);
  if (!Parsed.succeeded()) {
    reportErrors(Parsed.Errors, Errors);
    return nullptr;
  }

  ast::SemanticInfo Info = ast::analyze(*Parsed.Prog);
  if (!Info.succeeded()) {
    reportErrors(Info.Errors, Errors);
    return nullptr;
  }

  auto Result = std::unique_ptr<Program>(new Program());
  translate::TranslationOptions TranslateOptions;
  TranslateOptions.EmitUpdateProgram = Options.EmitUpdateProgram;
  TranslateOptions.EmitMaintenance = Options.EmitMaintenance;
  TranslateOptions.Sips = Options.Sips;
  TranslateOptions.Feedback = Options.Feedback;

  // The profile strategy needs usable feedback; anything less degrades to
  // max-bound with a warning rather than failing the compile (a stale
  // profile must never make a program unrunnable).
  std::unique_ptr<translate::ProfileFeedback> OwnedFeedback;
  if (TranslateOptions.Sips == translate::SipsStrategy::Profile) {
    if (!TranslateOptions.Feedback && !Options.FeedbackPath.empty()) {
      std::string FeedbackError;
      OwnedFeedback = translate::ProfileFeedback::fromFile(
          Options.FeedbackPath, &FeedbackError);
      if (OwnedFeedback)
        TranslateOptions.Feedback = OwnedFeedback.get();
      else
        std::fprintf(stderr,
                     "warning: --feedback: %s; falling back to "
                     "--sips=max-bound\n",
                     FeedbackError.c_str());
    }
    if (TranslateOptions.Feedback) {
      bool Covers = false;
      for (const auto &Decl : Parsed.Prog->Relations)
        if (TranslateOptions.Feedback->hasRelation(Decl->getName())) {
          Covers = true;
          break;
        }
      if (!Covers) {
        std::fprintf(stderr,
                     "warning: --feedback: profile covers none of this "
                     "program's relations (stale?); falling back to "
                     "--sips=max-bound\n");
        TranslateOptions.Feedback = nullptr;
      }
    } else if (Options.FeedbackPath.empty()) {
      std::fprintf(stderr,
                   "warning: --sips=profile without --feedback; falling "
                   "back to --sips=max-bound\n");
    }
    if (!TranslateOptions.Feedback)
      TranslateOptions.Sips = translate::SipsStrategy::MaxBound;
  }

  translate::TranslationResult Translated = translate::translateToRam(
      *Parsed.Prog, Info, Result->Symbols, TranslateOptions);
  if (!Translated.succeeded()) {
    reportErrors(Translated.Errors, Errors);
    return nullptr;
  }

  Result->Ast = std::move(Parsed.Prog);
  Result->Ram = std::move(Translated.Prog);
  // RAM-level optimizations, shared by interpreters and synthesizer.
  ram::foldConstants(*Result->Ram, Result->Symbols);
  // Sinking runs only under a reordering strategy: it is what converts a
  // reorder's newly-adjacent equality filters into indexed lookups, and
  // gating it keeps source-order plans bit-identical to older builds.
  if (TranslateOptions.Sips != translate::SipsStrategy::Source)
    ram::sinkFiltersIntoScans(*Result->Ram);
  ram::mergeAdjacentFilters(*Result->Ram);
  Result->Indexes = translate::selectIndexes(*Result->Ram);
  return Result;
}

std::unique_ptr<Program> Program::fromFile(const std::string &Path,
                                           std::vector<std::string> *Errors,
                                           const CompileOptions &Options) {
  std::ifstream In(Path);
  if (!In) {
    reportErrors({"cannot open program file '" + Path + "'"}, Errors);
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return fromSource(Buffer.str(), Errors, Options);
}

std::string Program::dumpRam() const { return ram::print(*Ram); }

std::shared_ptr<interp::Scheduler>
Program::schedulerFor(std::size_t NumThreads) {
  std::lock_guard<std::mutex> Lock(SchedM);
  std::shared_ptr<interp::Scheduler> &Sched = Schedulers[NumThreads];
  if (!Sched)
    Sched = std::make_shared<interp::Scheduler>(NumThreads);
  return Sched;
}

std::unique_ptr<interp::Engine>
Program::makeEngine(interp::EngineOptions Options) {
  if (Options.NumThreads == 0)
    Options.NumThreads = NumThreads;
  if (Options.NumThreads > 1 && !Options.Sched)
    Options.Sched = schedulerFor(Options.NumThreads);
  return std::make_unique<interp::Engine>(*Ram, Indexes, Symbols, Options);
}
