//===- core/Program.h - Public engine facade --------------------*- C++ -*-===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's front door. A core::Program owns the full compilation
/// pipeline of Fig 1 — Datalog source → AST (checked) → RAM (with index
/// selection) — and hands out execution engines over the result:
///
/// \code
///   auto Prog = stird::core::Program::fromSource(R"(
///     .decl edge(a:number, b:number)
///     .decl path(a:number, b:number)
///     path(x, y) :- edge(x, y).
///     path(x, z) :- path(x, y), edge(y, z).
///   )");
///   auto Engine = Prog->makeEngine();
///   Engine->insertTuples("edge", {{1, 2}, {2, 3}});
///   Engine->run();
///   auto Paths = Engine->getTuples("path");
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef STIRD_CORE_PROGRAM_H
#define STIRD_CORE_PROGRAM_H

#include "ast/Ast.h"
#include "interp/Engine.h"
#include "ram/Ram.h"
#include "translate/AstToRam.h"
#include "translate/IndexSelection.h"
#include "util/SymbolTable.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stird::core {

/// Compilation-time choices (as opposed to the per-engine EngineOptions).
struct CompileOptions {
  /// Also emit the incremental-update statement so resident sessions can
  /// apply monotonic fact batches without recomputing from scratch (see
  /// translate::TranslationOptions::EmitUpdateProgram for eligibility).
  bool EmitUpdateProgram = false;
  /// Also emit the incremental maintenance program for mixed
  /// insert/retract batches (counting + DRed per stratum, scoped Reeval
  /// fallbacks — see translate::TranslationOptions::EmitMaintenance).
  bool EmitMaintenance = false;
  /// Join-ordering strategy for rule bodies (--sips). Source keeps the
  /// textual order, so nothing changes unless a caller opts in.
  translate::SipsStrategy Sips = translate::SipsStrategy::Source;
  /// Path of a stird-profile-v1/-v2 document seeding the profile strategy
  /// (--feedback=FILE); v2 access-pattern counters additionally drive
  /// per-relation substrate selection. Loaded during compilation; a
  /// malformed or stale document (one covering none of the program's
  /// relations) produces a stderr warning and a fallback to max-bound —
  /// never a compile error.
  std::string FeedbackPath;
  /// Preloaded feedback (not owned; must outlive compilation). Takes
  /// precedence over FeedbackPath — used by tests and benches that build
  /// profiles in memory.
  const translate::ProfileFeedback *Feedback = nullptr;
  /// Per-relation substrate forcing (--substrate=rel:kind,...): keys are
  /// relation names, values "btree" | "brie" | "art". An unknown relation,
  /// unknown kind or inapplicable combination (eqrel relations, arity
  /// outside the target portfolio) degrades with a stderr warning — never
  /// a compile error.
  std::map<std::string, std::string> SubstrateOverrides;
  /// Feedback-driven per-relation substrate selection: when the loaded
  /// feedback document carries stird-profile-v2 access-pattern counters,
  /// btree relations that the profiled run probed point-lookup-heavily
  /// over dense integer keys are switched to the ART substrate. Explicit
  /// SubstrateOverrides win. Decisions are recorded on the Program and
  /// surfaced in --dump-ram, the profile document and the serving stats
  /// reply.
  bool SubstrateFromFeedback = true;
};

/// A compiled Datalog program, ready to be executed any number of times by
/// independently configured engines (or synthesized to C++).
class Program {
public:
  /// Compiles Datalog source text. Returns null on any diagnostic; if
  /// \p Errors is given, diagnostics are appended there, otherwise they go
  /// to stderr.
  static std::unique_ptr<Program>
  fromSource(const std::string &Source,
             std::vector<std::string> *Errors = nullptr,
             const CompileOptions &Options = {});

  /// Compiles a .dl file.
  static std::unique_ptr<Program>
  fromFile(const std::string &Path,
           std::vector<std::string> *Errors = nullptr,
           const CompileOptions &Options = {});

  const ast::Program &getAst() const { return *Ast; }
  const ram::Program &getRam() const { return *Ram; }
  const translate::IndexSelectionResult &getIndexes() const {
    return Indexes;
  }
  SymbolTable &getSymbolTable() { return Symbols; }
  const SymbolTable &getSymbolTable() const { return Symbols; }

  /// Renders the RAM program (Fig 3 style).
  std::string dumpRam() const;

  /// Creates an execution engine over this program. The program must
  /// outlive the engine. When Options.NumThreads is 0 (unset), the
  /// program's own default thread count (setNumThreads) is substituted.
  /// Unless the options carry their own scheduler, parallel engines share
  /// the program's per-thread-count scheduler (one warm worker pool for
  /// the whole program — every run, serving session and update batch).
  std::unique_ptr<interp::Engine>
  makeEngine(interp::EngineOptions Options = {});

  /// The program's shared work-stealing scheduler for \p NumThreads,
  /// created on first use. Thread-safe.
  std::shared_ptr<interp::Scheduler> schedulerFor(std::size_t NumThreads);

  /// Default evaluation thread count applied to engines whose options
  /// leave NumThreads unset. Values <= 1 mean sequential evaluation.
  void setNumThreads(std::size_t N) { NumThreads = N; }
  std::size_t getNumThreads() const { return NumThreads; }

  /// Substrate decisions made during compilation: relation name → a short
  /// human-readable description ("art (forced by --substrate)", "art
  /// (feedback: point-lookup-heavy, dense keys)"). Empty when every
  /// relation kept its declared structure.
  const std::map<std::string, std::string> &getSubstrateDecisions() const {
    return SubstrateDecisions;
  }

private:
  Program() = default;

  std::unique_ptr<ast::Program> Ast;
  std::unique_ptr<ram::Program> Ram;
  translate::IndexSelectionResult Indexes;
  SymbolTable Symbols;
  std::map<std::string, std::string> SubstrateDecisions;
  std::size_t NumThreads = 1;
  /// Shared schedulers keyed by thread count (engines at different -jN
  /// coexist, e.g. a differential test). Guarded by SchedM.
  std::mutex SchedM;
  std::map<std::size_t, std::shared_ptr<interp::Scheduler>> Schedulers;
};

} // namespace stird::core

#endif // STIRD_CORE_PROGRAM_H
