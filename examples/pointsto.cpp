//===- examples/pointsto.cpp - Andersen-style points-to analysis --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A field-sensitive Andersen-style points-to analysis — the DOOP-shaped
/// workload of the paper's evaluation, scaled to a synthetic program. The
/// analysis is mutually recursive: loads and stores depend on the points-to
/// sets they help compute.
///
///   $ ./pointsto [num_vars]
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "util/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <random>

using namespace stird;

int main(int argc, char **argv) {
  const RamDomain NumVars = argc > 1 ? std::atoi(argv[1]) : 400;

  auto Prog = core::Program::fromSource(R"(
    // new:   v = new Obj
    // assign: v = w
    // store: v.f = w
    // load:  v = w.f
    .decl new_(v:number, o:number)
    .decl assign(v:number, w:number)
    .decl store(v:number, f:number, w:number)
    .decl load(v:number, w:number, f:number)

    .decl vpt(v:number, o:number)        // var points to object
    .decl hpt(o:number, f:number, p:number) // heap field points to

    vpt(v, o) :- new_(v, o).
    vpt(v, o) :- assign(v, w), vpt(w, o).
    hpt(o, f, p) :- store(v, f, w), vpt(v, o), vpt(w, p).
    vpt(v, p) :- load(v, w, f), vpt(w, o), hpt(o, f, p).
  )");
  if (!Prog)
    return 1;

  // Synthesize a program shape: allocations, copy chains, field traffic.
  std::mt19937 Rng(1234);
  std::uniform_int_distribution<RamDomain> Var(0, NumVars - 1);
  std::uniform_int_distribution<RamDomain> Field(0, 7);
  std::vector<DynTuple> News, Assigns, Stores, Loads;
  for (RamDomain V = 0; V < NumVars; V += 4)
    News.push_back({V, V / 4});
  for (RamDomain I = 0; I < NumVars * 2; ++I)
    Assigns.push_back({Var(Rng), Var(Rng)});
  for (RamDomain I = 0; I < NumVars / 2; ++I)
    Stores.push_back({Var(Rng), Field(Rng), Var(Rng)});
  for (RamDomain I = 0; I < NumVars / 2; ++I)
    Loads.push_back({Var(Rng), Var(Rng), Field(Rng)});

  auto Engine = Prog->makeEngine();
  Engine->insertTuples("new_", News);
  Engine->insertTuples("assign", Assigns);
  Engine->insertTuples("store", Stores);
  Engine->insertTuples("load", Loads);

  Timer T;
  Engine->run();
  const double Seconds = T.seconds();

  std::size_t Vpt = Engine->getTuples("vpt").size();
  std::size_t Hpt = Engine->getTuples("hpt").size();
  std::printf("points-to over %d vars: %zu var-points-to facts, "
              "%zu heap-points-to facts in %.3f ms\n",
              static_cast<int>(NumVars), Vpt, Hpt, Seconds * 1e3);

  // Per-rule profile, Soufflé-profiler style.
  std::printf("\n%-60s %12s %10s\n", "rule", "seconds", "rounds");
  for (const auto &Rule : Engine->getProfiler().rules())
    std::printf("%-60.60s %12.6f %10llu\n", Rule.Label.c_str(),
                Rule.Seconds,
                static_cast<unsigned long long>(Rule.Invocations));
  return 0;
}
