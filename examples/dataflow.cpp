//===- examples/dataflow.cpp - Reaching-definitions analysis ------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic compiler dataflow analysis as Datalog: reaching definitions
/// over a synthetic control-flow graph, with kill sets expressed through
/// stratified negation and a per-variable definition count via aggregates.
/// Shows the per-rule profiler and the ablation switches from the paper.
///
///   $ ./dataflow [num_blocks] [--no-super] [--fuse-conditions]
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "util/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

using namespace stird;

int main(int argc, char **argv) {
  int NumBlocks = 1500;
  interp::EngineOptions Options;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--no-super") == 0)
      Options.SuperInstructions = false;
    else if (std::strcmp(argv[I], "--fuse-conditions") == 0)
      Options.FuseConditions = true;
    else
      NumBlocks = std::atoi(argv[I]);
  }

  auto Prog = core::Program::fromSource(R"(
    // def(b, v): block b defines variable v.
    // use(b, v): block b uses variable v.
    // succ(a, b): control-flow edge.
    .decl def(b:number, v:number)
    .decl use(b:number, v:number)
    .decl succ(a:number, b:number)

    // reach(d, v, b): the definition of v at block d reaches block b.
    .decl reach(d:number, v:number, b:number)
    reach(d, v, d) :- def(d, v).
    reach(d, v, b) :- reach(d, v, a), succ(a, b), !def(b, v).

    // A use is live if some definition reaches it.
    .decl live_use(b:number, v:number, d:number)
    live_use(b, v, d) :- use(b, v), reach(d, v, b).

    // Uses of undefined variables.
    .decl undefined_use(b:number, v:number)
    undefined_use(b, v) :- use(b, v), !live_use(b, v, _).

    // How many distinct definitions reach each use (ambiguity measure).
    .decl fanin(b:number, v:number, n:number)
    fanin(b, v, n) :- use(b, v), n = count : { live_use(b, v, _) }.
  )");
  if (!Prog)
    return 1;

  // Synthetic CFG: a spine with branches; defs/uses sprinkled over 24
  // variables.
  std::mt19937 Rng(7);
  std::uniform_int_distribution<RamDomain> Var(0, 23);
  std::vector<DynTuple> Defs, Uses, Succs;
  for (RamDomain B = 0; B + 1 < NumBlocks; ++B) {
    Succs.push_back({B, B + 1});
    if (B % 5 == 0 && B + 7 < NumBlocks)
      Succs.push_back({B, B + 7});
    if (B % 3 == 0)
      Defs.push_back({B, Var(Rng)});
    if (B % 2 == 0)
      Uses.push_back({B, Var(Rng)});
  }

  auto Engine = Prog->makeEngine(Options);
  Engine->insertTuples("def", Defs);
  Engine->insertTuples("use", Uses);
  Engine->insertTuples("succ", Succs);

  Timer T;
  Engine->run();

  std::printf("reaching definitions over %d blocks (%zu defs, %zu uses)\n",
              NumBlocks, Defs.size(), Uses.size());
  std::printf("  reach:          %zu facts\n",
              Engine->getTuples("reach").size());
  std::printf("  live uses:      %zu\n",
              Engine->getTuples("live_use").size());
  std::printf("  undefined uses: %zu\n",
              Engine->getTuples("undefined_use").size());
  std::printf("  wall time:      %.3f ms (%llu dispatches)\n",
              T.seconds() * 1e3,
              static_cast<unsigned long long>(Engine->getNumDispatches()));

  std::printf("\nhottest rules:\n");
  double Best[3] = {0, 0, 0};
  const interp::RuleProfile *Top[3] = {nullptr, nullptr, nullptr};
  for (const auto &Rule : Engine->getProfiler().rules())
    for (int Slot = 0; Slot < 3; ++Slot)
      if (Rule.Seconds > Best[Slot]) {
        for (int Shift = 2; Shift > Slot; --Shift) {
          Best[Shift] = Best[Shift - 1];
          Top[Shift] = Top[Shift - 1];
        }
        Best[Slot] = Rule.Seconds;
        Top[Slot] = &Rule;
        break;
      }
  for (const auto *Rule : Top)
    if (Rule)
      std::printf("  %8.3f ms  %.70s\n", Rule->Seconds * 1e3,
                  Rule->Label.c_str());
  return 0;
}
