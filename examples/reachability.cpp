//===- examples/reachability.cpp - VPC-style network reachability -------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Network reachability reasoning in the shape of the paper's VPC workload:
/// instances connect through subnets and gateways, security groups filter
/// flows, and the analysis derives which instance pairs can communicate.
/// Demonstrates file-free programmatic use plus the RAM dump for study.
///
///   $ ./reachability [num_instances] [--dump-ram]
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "util/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

using namespace stird;

int main(int argc, char **argv) {
  int NumInstances = 600;
  bool DumpRam = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--dump-ram") == 0)
      DumpRam = true;
    else
      NumInstances = std::atoi(argv[I]);
  }

  auto Prog = core::Program::fromSource(R"(
    .decl in_subnet(inst:number, subnet:number)
    .decl subnet_link(a:number, b:number)
    .decl allows(inst:number, port:number)
    .decl listens(inst:number, port:number)

    .decl subnet_reach(a:number, b:number)
    subnet_reach(a, b) :- subnet_link(a, b).
    subnet_reach(a, c) :- subnet_reach(a, b), subnet_link(b, c).

    .decl can_talk(a:number, b:number, port:number)
    can_talk(a, b, p) :-
        in_subnet(a, sa), in_subnet(b, sb), subnet_reach(sa, sb),
        allows(a, p), listens(b, p), a != b.

    .decl exposed(b:number)
    exposed(b) :- can_talk(_, b, 22).
  )");
  if (!Prog)
    return 1;

  if (DumpRam) {
    std::printf("%s\n", Prog->dumpRam().c_str());
    return 0;
  }

  // A multi-tier topology: subnets in a ring of rings, instances spread
  // across them, ssh mostly closed.
  const int NumSubnets = std::max(4, NumInstances / 20);
  std::mt19937 Rng(99);
  std::uniform_int_distribution<RamDomain> Subnet(0, NumSubnets - 1);
  std::uniform_int_distribution<RamDomain> Port(20, 25);

  std::vector<DynTuple> InSubnet, Links, Allows, Listens;
  for (int I = 0; I < NumInstances; ++I) {
    InSubnet.push_back({I, Subnet(Rng)});
    Allows.push_back({I, Port(Rng)});
    Listens.push_back({I, Port(Rng)});
  }
  for (int S = 0; S < NumSubnets; ++S) {
    Links.push_back({S, (S + 1) % NumSubnets});
    if (S % 3 == 0)
      Links.push_back({S, (S + NumSubnets / 2) % NumSubnets});
  }

  auto Engine = Prog->makeEngine();
  Engine->insertTuples("in_subnet", InSubnet);
  Engine->insertTuples("subnet_link", Links);
  Engine->insertTuples("allows", Allows);
  Engine->insertTuples("listens", Listens);

  Timer T;
  Engine->run();

  std::printf("reachability over %d instances / %d subnets\n", NumInstances,
              NumSubnets);
  std::printf("  subnet_reach: %zu pairs\n",
              Engine->getTuples("subnet_reach").size());
  std::printf("  can_talk:     %zu flows\n",
              Engine->getTuples("can_talk").size());
  std::printf("  exposed(ssh): %zu instances\n",
              Engine->getTuples("exposed").size());
  std::printf("  wall time:    %.3f ms\n", T.seconds() * 1e3);
  return 0;
}
