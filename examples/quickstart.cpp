//===- examples/quickstart.cpp - Minimal stird usage --------------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: compile a Datalog program from a string, feed it
/// tuples, run the Soufflé Tree Interpreter and read the results back.
///
///   $ ./quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"

#include <cstdio>

using namespace stird;

int main() {
  // A classic: ancestors as the transitive closure of parenthood.
  auto Prog = core::Program::fromSource(R"(
    .decl parent(child:symbol, parent:symbol)
    .decl ancestor(person:symbol, ancestor:symbol)
    ancestor(c, p) :- parent(c, p).
    ancestor(c, a) :- ancestor(c, p), parent(p, a).
  )");
  if (!Prog)
    return 1;

  SymbolTable &Symbols = Prog->getSymbolTable();
  auto Pair = [&](const char *A, const char *B) {
    return DynTuple{Symbols.intern(A), Symbols.intern(B)};
  };

  auto Engine = Prog->makeEngine(); // defaults to the STI
  Engine->insertTuples("parent", {Pair("carol", "alice"),
                                  Pair("alice", "bob"),
                                  Pair("bob", "eve")});
  Engine->run();

  std::printf("ancestor relation:\n");
  for (const DynTuple &Tuple : Engine->getTuples("ancestor"))
    std::printf("  %s -> %s\n", Symbols.resolve(Tuple[0]).c_str(),
                Symbols.resolve(Tuple[1]).c_str());
  std::printf("(%llu interpreter dispatches)\n",
              static_cast<unsigned long long>(Engine->getNumDispatches()));
  return 0;
}
