//===- examples/security_analysis.cpp - The paper's Fig 2 example -------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The security analysis from Fig 2 of the paper: a code block is unsafe
/// if reachable from an unsafe block without passing a protection; a
/// violation is a vulnerable block that is unsafe. Run over a synthetic
/// control-flow graph, comparing the STI against the legacy interpreter.
///
///   $ ./security_analysis [num_blocks]
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "util/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace stird;

int main(int argc, char **argv) {
  const int NumBlocks = argc > 1 ? std::atoi(argv[1]) : 2000;

  auto Prog = core::Program::fromSource(R"(
    .decl Unsafe(b:symbol)
    .decl Edge(a:symbol, b:symbol)
    .decl Protect(b:symbol)
    .decl Vulnerable(b:symbol)
    .decl Violation(b:symbol)
    Unsafe("while").
    /* Rule 1 */
    Unsafe(y) :- Unsafe(x), Edge(x, y), !Protect(y).
    /* Rule 2 */
    Violation(x) :- Vulnerable(x), Unsafe(x).
  )");
  if (!Prog)
    return 1;

  SymbolTable &Symbols = Prog->getSymbolTable();
  auto Block = [&](int I) {
    return Symbols.intern("block" + std::to_string(I));
  };

  // A synthetic CFG: a chain from the "while" header with skip edges,
  // sparse protections and a sprinkling of vulnerable blocks.
  std::vector<DynTuple> Edges, Protects, Vulnerables;
  Edges.push_back({Symbols.intern("while"), Block(0)});
  for (int I = 0; I + 1 < NumBlocks; ++I) {
    Edges.push_back({Block(I), Block(I + 1)});
    if (I % 7 == 0 && I + 3 < NumBlocks)
      Edges.push_back({Block(I), Block(I + 3)});
    if (I % 11 == 5)
      Protects.push_back({Block(I)});
    if (I % 5 == 2)
      Vulnerables.push_back({Block(I)});
  }

  auto RunWith = [&](interp::Backend Backend, const char *Name) {
    interp::EngineOptions Options;
    Options.TheBackend = Backend;
    auto Engine = Prog->makeEngine(Options);
    Engine->insertTuples("Edge", Edges);
    Engine->insertTuples("Protect", Protects);
    Engine->insertTuples("Vulnerable", Vulnerables);
    Timer T;
    Engine->run();
    std::printf("%-16s %8.3f ms   unsafe=%zu violations=%zu\n", Name,
                T.seconds() * 1e3, Engine->getTuples("Unsafe").size(),
                Engine->getTuples("Violation").size());
    return Engine->getTuples("Violation").size();
  };

  std::printf("security analysis over %d blocks\n", NumBlocks);
  std::size_t A = RunWith(interp::Backend::StaticLambda, "STI");
  std::size_t B = RunWith(interp::Backend::DynamicAdapter, "dynamic");
  std::size_t C = RunWith(interp::Backend::Legacy, "legacy");
  if (A != B || A != C) {
    std::fprintf(stderr, "engines disagree!\n");
    return 1;
  }
  return 0;
}
