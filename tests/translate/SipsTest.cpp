//===- tests/translate/SipsTest.cpp - Join-order planning tests ----------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The planner in isolation (orderAtoms over hand-built descriptors, the
/// ProfileFeedback parser and its error vocabulary) and end to end: golden
/// RAM text for one 3-atom join under every --sips strategy, pinning both
/// the chosen order and the sunk index bounds, plus the fallback contract
/// for malformed or stale --feedback documents (warn and plan with
/// max-bound — never abort).
///
//===----------------------------------------------------------------------===//

#include "translate/Sips.h"

#include "core/Program.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace stird;
using namespace stird::translate;

namespace {

//===----------------------------------------------------------------------===//
// orderAtoms unit tests
//===----------------------------------------------------------------------===//

SipsAtom atom(std::size_t SourceIndex, std::vector<std::string> Vars) {
  SipsAtom A;
  A.SourceIndex = SourceIndex;
  for (std::string &Var : Vars) {
    SipsColumn Col;
    if (!Var.empty()) {
      Col.Vars = {Var};
      Col.Binds = Var;
    } else {
      Col.Ground = true; // a constant column
    }
    A.Columns.push_back(std::move(Col));
  }
  return A;
}

TEST(SipsOrderTest, SourceIsAlwaysIdentity) {
  std::vector<SipsAtom> Atoms = {atom(0, {"x", "y"}), atom(1, {"", "z"}),
                                 atom(2, {"y", "z"})};
  EXPECT_EQ(orderAtoms(SipsStrategy::Source, Atoms),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SipsOrderTest, MaxBoundFloatsGroundAtomsForward) {
  // a(x, y), b(y, w), c(w, <const>): c starts with one ground column, so
  // max-bound opens with it, then chains through the shared variables.
  std::vector<SipsAtom> Atoms = {atom(0, {"x", "y"}), atom(1, {"y", "w"}),
                                 atom(2, {"w", ""})};
  EXPECT_EQ(orderAtoms(SipsStrategy::MaxBound, Atoms),
            (std::vector<std::size_t>{2, 1, 0}));
}

TEST(SipsOrderTest, MaxBoundBreaksTiesBySourceIndex) {
  std::vector<SipsAtom> Atoms = {atom(0, {"x"}), atom(1, {"y"}),
                                 atom(2, {"z"})};
  EXPECT_EQ(orderAtoms(SipsStrategy::MaxBound, Atoms),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SipsOrderTest, EqualityClosureGroundsDerivedVariables) {
  // With `y = <const>` in the body, the atom over y is effectively fully
  // bound and floats ahead of the unbound one.
  std::vector<SipsAtom> Atoms = {atom(0, {"x"}), atom(1, {"y"})};
  const std::vector<SipsEquality> Equalities = {{"y", {}}};
  EXPECT_EQ(orderAtoms(SipsStrategy::MaxBound, Atoms, Equalities),
            (std::vector<std::size_t>{1, 0}));
}

TEST(SipsOrderTest, ProfilePrefersSmallRelationsFirst) {
  // a is huge, b tiny, c middling; all share a chain of variables. The
  // cost model opens with b and visits a last (bound lookups are cheap
  // even on the huge relation).
  SipsAtom A = atom(0, {"x", "y"});
  A.EstimatedSize = 100000;
  SipsAtom B = atom(1, {"y", "z"});
  B.EstimatedSize = 10;
  SipsAtom C = atom(2, {"z", "w"});
  C.EstimatedSize = 1000;
  EXPECT_EQ(orderAtoms(SipsStrategy::Profile, {A, B, C}),
            (std::vector<std::size_t>{1, 2, 0}));
}

//===----------------------------------------------------------------------===//
// ProfileFeedback parsing
//===----------------------------------------------------------------------===//

TEST(ProfileFeedbackTest, ParsesRelationSizes) {
  std::string Error;
  auto Feedback = ProfileFeedback::fromJson(
      R"({"schema": "stird-profile-v1", "relations": [
            {"name": "edge", "final_size": 7, "peak_size": 3},
            {"name": "delta_path", "final_size": 0, "peak_size": 41}]})",
      &Error);
  ASSERT_NE(Feedback, nullptr) << Error;
  // The larger of final and peak wins: converged deltas report final 0.
  EXPECT_EQ(Feedback->relationSize("edge"), 7);
  EXPECT_EQ(Feedback->relationSize("delta_path"), 41);
  EXPECT_EQ(Feedback->relationSize("unknown"), std::nullopt);
  EXPECT_EQ(Feedback->relationCount(), 2u);
}

TEST(ProfileFeedbackTest, RejectsMalformedAndForeignDocuments) {
  std::string Error;
  EXPECT_EQ(ProfileFeedback::fromJson("{not json", &Error), nullptr);
  EXPECT_NE(Error.find("invalid JSON"), std::string::npos) << Error;

  EXPECT_EQ(ProfileFeedback::fromJson(R"({"schema": "other-v2"})", &Error),
            nullptr);
  EXPECT_NE(Error.find("stird-profile-v1"), std::string::npos) << Error;

  EXPECT_EQ(
      ProfileFeedback::fromJson(R"({"schema": "stird-profile-v1"})", &Error),
      nullptr);
  EXPECT_NE(Error.find("relations"), std::string::npos) << Error;

  EXPECT_EQ(ProfileFeedback::fromJson(
                R"({"schema": "stird-profile-v1", "relations": []})", &Error),
            nullptr);
  EXPECT_NE(Error.find("no relation sizes"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Golden RAM per strategy
//===----------------------------------------------------------------------===//

constexpr const char *Join3 = R"(
.decl a(x:number, y:number)
.decl b(x:number, y:number)
.decl c(x:number, y:number)
.decl out(x:number, y:number)
out(x, w) :- a(x, y), b(y, w), c(w, 1).
)";

constexpr const char *Join3Feedback =
    R"({"schema": "stird-profile-v1", "relations": [
          {"name": "a", "final_size": 100000, "peak_size": 100000},
          {"name": "b", "final_size": 10, "peak_size": 10},
          {"name": "c", "final_size": 1000, "peak_size": 1000}]})";

std::string dumpRam(SipsStrategy Sips,
                    const ProfileFeedback *Feedback = nullptr) {
  core::CompileOptions Options;
  Options.Sips = Sips;
  Options.Feedback = Feedback;
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(Join3, &Errors, Options);
  EXPECT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  return Prog ? Prog->dumpRam() : std::string();
}

TEST(SipsGoldenTest, SourceKeepsTextualOrder) {
  EXPECT_NE(
      dumpRam(SipsStrategy::Source).find(
          "TIMER \"out(x, w) :- a(x, y), b(y, w), c(w, 1).\"\n"
          "  QUERY\n"
          "    IF (((NOT (a = EMPTY)) AND (NOT (b = EMPTY))) AND (NOT (c = "
          "EMPTY)))\n"
          "      FOR t0 IN a\n"
          "        FOR t1 IN b ON INDEX (t0.1,_)\n"
          "          FOR t2 IN c ON INDEX (t1.1,1)\n"
          "            INSERT (t0.0,t1.1) INTO out\n"
          "END TIMER"),
      std::string::npos)
      << dumpRam(SipsStrategy::Source);
}

TEST(SipsGoldenTest, MaxBoundOpensWithTheGroundedAtom) {
  EXPECT_NE(
      dumpRam(SipsStrategy::MaxBound).find(
          "TIMER \"out(x, w) :- a(x, y), b(y, w), c(w, 1).\" "
          "sips=max-bound order=[2,1,0]\n"
          "  QUERY\n"
          "    IF (((NOT (c = EMPTY)) AND (NOT (b = EMPTY))) AND (NOT (a = "
          "EMPTY)))\n"
          "      FOR t0 IN c ON INDEX (_,1)\n"
          "        FOR t1 IN b ON INDEX (_,t0.0)\n"
          "          FOR t2 IN a ON INDEX (_,t1.0)\n"
          "            INSERT (t2.0,t0.0) INTO out\n"
          "END TIMER"),
      std::string::npos)
      << dumpRam(SipsStrategy::MaxBound);
}

TEST(SipsGoldenTest, ProfileOpensWithTheSmallestRelation) {
  std::string Error;
  auto Feedback = ProfileFeedback::fromJson(Join3Feedback, &Error);
  ASSERT_NE(Feedback, nullptr) << Error;
  EXPECT_NE(
      dumpRam(SipsStrategy::Profile, Feedback.get()).find(
          "TIMER \"out(x, w) :- a(x, y), b(y, w), c(w, 1).\" "
          "sips=profile order=[1,2,0]\n"
          "  QUERY\n"
          "    IF (((NOT (b = EMPTY)) AND (NOT (c = EMPTY))) AND (NOT (a = "
          "EMPTY)))\n"
          "      FOR t0 IN b\n"
          "        FOR t1 IN c ON INDEX (t0.1,1)\n"
          "          FOR t2 IN a ON INDEX (_,t0.0)\n"
          "            INSERT (t2.0,t0.1) INTO out\n"
          "END TIMER"),
      std::string::npos)
      << dumpRam(SipsStrategy::Profile, Feedback.get());
}

//===----------------------------------------------------------------------===//
// Feedback fallback: warn and degrade, never abort
//===----------------------------------------------------------------------===//

TEST(SipsFallbackTest, MissingFeedbackFileFallsBackToMaxBound) {
  core::CompileOptions Options;
  Options.Sips = SipsStrategy::Profile;
  Options.FeedbackPath = "/nonexistent/profile.json";
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(Join3, &Errors, Options);
  ASSERT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  // Degraded to max-bound: the grounded atom opens the join.
  EXPECT_NE(Prog->dumpRam().find("sips=max-bound order=[2,1,0]"),
            std::string::npos)
      << Prog->dumpRam();
}

TEST(SipsFallbackTest, StaleFeedbackFallsBackToMaxBound) {
  // A valid document covering none of the program's relations.
  std::string Error;
  auto Feedback = ProfileFeedback::fromJson(
      R"({"schema": "stird-profile-v1", "relations": [
            {"name": "other", "final_size": 5, "peak_size": 5}]})",
      &Error);
  ASSERT_NE(Feedback, nullptr) << Error;
  core::CompileOptions Options;
  Options.Sips = SipsStrategy::Profile;
  Options.Feedback = Feedback.get();
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(Join3, &Errors, Options);
  ASSERT_NE(Prog, nullptr) << (Errors.empty() ? "" : Errors[0]);
  EXPECT_NE(Prog->dumpRam().find("sips=max-bound order=[2,1,0]"),
            std::string::npos)
      << Prog->dumpRam();
}

} // namespace
