//===- tests/translate/IndexSelectionTest.cpp - Chain cover tests --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "translate/IndexSelection.h"

#include "ast/Parser.h"
#include "ast/SemanticAnalysis.h"
#include "translate/AstToRam.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <random>

using namespace stird;
using namespace stird::translate;

namespace {

/// Checks the fundamental contract: every signature is served by an order
/// whose first popcount(sig) columns are exactly the signature's columns.
void expectValidCover(const RelationIndexInfo &Info,
                      const std::vector<std::uint32_t> &Signatures,
                      std::size_t Arity) {
  ASSERT_FALSE(Info.Orders.empty());
  for (const auto &Order : Info.Orders) {
    ASSERT_EQ(Order.size(), Arity);
    // Each order is a permutation.
    std::uint32_t Seen = 0;
    for (std::uint32_t Col : Order) {
      ASSERT_LT(Col, Arity);
      ASSERT_FALSE(Seen & (1U << Col)) << "duplicate column in order";
      Seen |= 1U << Col;
    }
  }
  for (std::uint32_t Sig : Signatures) {
    if (Sig == 0)
      continue;
    auto It = Info.Placement.find(Sig);
    ASSERT_NE(It, Info.Placement.end()) << "signature not placed";
    const auto &Placement = It->second;
    ASSERT_LT(Placement.OrderIndex, Info.Orders.size());
    EXPECT_EQ(Placement.PrefixLength,
              static_cast<std::size_t>(std::popcount(Sig)));
    const auto &Order = Info.Orders[Placement.OrderIndex];
    std::uint32_t Prefix = 0;
    for (std::size_t J = 0; J < Placement.PrefixLength; ++J)
      Prefix |= 1U << Order[J];
    EXPECT_EQ(Prefix, Sig)
        << "prefix of the assigned order must equal the signature";
  }
}

TEST(IndexSelectionTest, SingleSignature) {
  auto Info = computeIndexes({0b01}, 2);
  expectValidCover(Info, {0b01}, 2);
  EXPECT_EQ(Info.Orders.size(), 1u);
}

TEST(IndexSelectionTest, ChainOfSubsetsSharesOneOrder) {
  // {0} ⊂ {0,1} ⊂ {0,1,2}: a single order must suffice.
  auto Info = computeIndexes({0b001, 0b011, 0b111}, 3);
  expectValidCover(Info, {0b001, 0b011, 0b111}, 3);
  EXPECT_EQ(Info.Orders.size(), 1u);
}

TEST(IndexSelectionTest, IncomparableSignaturesNeedSeparateOrders) {
  // {0} and {1} cannot share a prefix.
  auto Info = computeIndexes({0b01, 0b10}, 2);
  expectValidCover(Info, {0b01, 0b10}, 2);
  EXPECT_EQ(Info.Orders.size(), 2u);
}

TEST(IndexSelectionTest, PaperExampleTwoChains) {
  // {0}, {1}, {0,1}: minimum chain cover is 2 ({0}⊂{0,1} and {1}).
  auto Info = computeIndexes({0b01, 0b10, 0b11}, 2);
  expectValidCover(Info, {0b01, 0b10, 0b11}, 2);
  EXPECT_EQ(Info.Orders.size(), 2u);
}

TEST(IndexSelectionTest, DiamondNeedsTwoChains) {
  // {0}, {1}, {0,1}, {0,1,2}: chains {0}⊂{0,1}⊂{0,1,2} and {1}.
  auto Info = computeIndexes({0b001, 0b010, 0b011, 0b111}, 3);
  expectValidCover(Info, {0b001, 0b010, 0b011, 0b111}, 3);
  EXPECT_EQ(Info.Orders.size(), 2u);
}

TEST(IndexSelectionTest, EmptySignatureSetGetsNaturalOrder) {
  auto Info = computeIndexes({}, 3);
  ASSERT_EQ(Info.Orders.size(), 1u);
  EXPECT_EQ(Info.Orders[0], (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(IndexSelectionTest, DuplicateSignaturesDeduplicated) {
  auto Info = computeIndexes({0b01, 0b01, 0b01}, 2);
  expectValidCover(Info, {0b01}, 2);
  EXPECT_EQ(Info.Orders.size(), 1u);
}

TEST(IndexSelectionTest, AntichainNeedsOneOrderEach) {
  // Pairwise incomparable two-column signatures over 4 columns.
  std::vector<std::uint32_t> Sigs = {0b0011, 0b0101, 0b1010, 0b1100};
  auto Info = computeIndexes(Sigs, 4);
  expectValidCover(Info, Sigs, 4);
  // {0,1}⊂? none — all have popcount 2, so no chains merge.
  EXPECT_EQ(Info.Orders.size(), 4u);
}

/// Property sweep: on random signature sets, the cover must be valid and
/// no larger than the number of signatures.
class IndexSelectionRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IndexSelectionRandomTest, RandomSignatureSetsGetValidMinimalCovers) {
  auto [Arity, Seed] = GetParam();
  std::mt19937 Rng(static_cast<unsigned>(Seed));
  std::uniform_int_distribution<std::uint32_t> Dist(
      1, (1U << Arity) - 1);
  std::vector<std::uint32_t> Sigs;
  for (int I = 0; I < 10; ++I)
    Sigs.push_back(Dist(Rng));

  auto Info = computeIndexes(Sigs, static_cast<std::size_t>(Arity));
  expectValidCover(Info, Sigs, static_cast<std::size_t>(Arity));

  std::set<std::uint32_t> Unique(Sigs.begin(), Sigs.end());
  EXPECT_LE(Info.Orders.size(), Unique.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexSelectionRandomTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Range(0, 10)));

//===----------------------------------------------------------------------===//
// Brute-force minimality
//===----------------------------------------------------------------------===//

/// True when \p Block (signature bitmasks) is totally ordered by set
/// inclusion — the condition for one lexicographic order to serve it.
bool isChain(const std::vector<std::uint32_t> &Block) {
  for (std::size_t I = 0; I < Block.size(); ++I)
    for (std::size_t J = I + 1; J < Block.size(); ++J)
      if ((Block[I] & Block[J]) != Block[I] &&
          (Block[I] & Block[J]) != Block[J])
        return false;
  return true;
}

/// Exhaustive minimum chain partition: assigns each signature to every
/// existing chain it extends or to a fresh chain, and keeps the smallest
/// chain count seen. Exponential, which is exactly why the sweep stays at
/// <= 7 unique signatures.
void bruteForceSearch(const std::vector<std::uint32_t> &Sigs,
                      std::size_t Next,
                      std::vector<std::vector<std::uint32_t>> &Blocks,
                      std::size_t &Best) {
  if (Blocks.size() >= Best)
    return; // cannot beat the incumbent any more
  if (Next == Sigs.size()) {
    Best = Blocks.size();
    return;
  }
  // Index loop: recursion push_backs into Blocks, so references into the
  // vector do not survive the call.
  for (std::size_t B = 0; B < Blocks.size(); ++B) {
    Blocks[B].push_back(Sigs[Next]);
    if (isChain(Blocks[B]))
      bruteForceSearch(Sigs, Next + 1, Blocks, Best);
    Blocks[B].pop_back();
  }
  Blocks.push_back({Sigs[Next]});
  bruteForceSearch(Sigs, Next + 1, Blocks, Best);
  Blocks.pop_back();
}

std::size_t bruteForceMinChains(std::vector<std::uint32_t> Sigs) {
  std::sort(Sigs.begin(), Sigs.end());
  Sigs.erase(std::unique(Sigs.begin(), Sigs.end()), Sigs.end());
  std::vector<std::vector<std::uint32_t>> Blocks;
  std::size_t Best = Sigs.size();
  bruteForceSearch(Sigs, 0, Blocks, Best);
  return Best;
}

/// Exhaustive over arity 3: every nonempty subset of the 7 nonzero
/// signatures. The matching-based cover must hit the brute-force optimum
/// on each of the 127 instances.
TEST(IndexSelectionMinimalityTest, ExhaustiveOverThreeColumns) {
  for (std::uint32_t Subset = 1; Subset < (1U << 7); ++Subset) {
    std::vector<std::uint32_t> Sigs;
    for (std::uint32_t Sig = 1; Sig <= 7; ++Sig)
      if (Subset & (1U << (Sig - 1)))
        Sigs.push_back(Sig);
    auto Info = computeIndexes(Sigs, 3);
    expectValidCover(Info, Sigs, 3);
    EXPECT_EQ(Info.Orders.size(), bruteForceMinChains(Sigs))
        << "subset mask " << Subset;
  }
}

/// Random sets of up to 6 signatures over wider relations: the cover must
/// be valid and exactly as small as the brute-force optimum.
class IndexSelectionMinimalityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IndexSelectionMinimalityTest, MatchesBruteForceOptimum) {
  auto [Arity, Seed] = GetParam();
  std::mt19937 Rng(static_cast<unsigned>(Seed * 977 + Arity));
  std::uniform_int_distribution<std::uint32_t> Dist(1, (1U << Arity) - 1);
  std::uniform_int_distribution<int> Count(1, 6);
  const int NumSigs = Count(Rng);
  std::vector<std::uint32_t> Sigs;
  for (int I = 0; I < NumSigs; ++I)
    Sigs.push_back(Dist(Rng));

  auto Info = computeIndexes(Sigs, static_cast<std::size_t>(Arity));
  expectValidCover(Info, Sigs, static_cast<std::size_t>(Arity));
  EXPECT_EQ(Info.Orders.size(), bruteForceMinChains(Sigs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexSelectionMinimalityTest,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 8),
                       ::testing::Range(0, 40)));

TEST(IndexSelectionProgramTest, SwappedRelationsShareLayout) {
  // Build a recursive program; delta/new must end up with identical
  // orders so SWAP can exchange them in O(1).
  auto Parsed = ast::parseProgram(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).");
  ASSERT_TRUE(Parsed.succeeded());
  auto Info = ast::analyze(*Parsed.Prog);
  ASSERT_TRUE(Info.succeeded());
  SymbolTable Symbols;
  auto Translated = translateToRam(*Parsed.Prog, Info, Symbols);
  ASSERT_TRUE(Translated.succeeded());

  auto Result = selectIndexes(*Translated.Prog);
  const ram::Relation *Delta = Translated.Prog->findRelation("delta_p");
  const ram::Relation *New = Translated.Prog->findRelation("new_p");
  ASSERT_NE(Delta, nullptr);
  ASSERT_NE(New, nullptr);
  EXPECT_EQ(Delta->getOrders(), New->getOrders());
}

TEST(IndexSelectionProgramTest, SearchOnSecondColumnGetsServingOrder) {
  auto Parsed = ast::parseProgram(
      ".decl e(a:number, b:number)\n.decl r(a:number)\n.decl s(a:number)\n"
      "r(x) :- s(y), e(x, y).");
  ASSERT_TRUE(Parsed.succeeded());
  auto Info = ast::analyze(*Parsed.Prog);
  ASSERT_TRUE(Info.succeeded());
  SymbolTable Symbols;
  auto Translated = translateToRam(*Parsed.Prog, Info, Symbols);
  ASSERT_TRUE(Translated.succeeded());

  auto Result = selectIndexes(*Translated.Prog);
  const ram::Relation *E = Translated.Prog->findRelation("e");
  ASSERT_NE(E, nullptr);
  // The scan binds column 1 (y); the serving order must start with it.
  const auto &EInfo = Result.of(*E);
  auto It = EInfo.Placement.find(0b10);
  ASSERT_NE(It, EInfo.Placement.end());
  EXPECT_EQ(EInfo.Orders[It->second.OrderIndex][0], 1u);
}

} // namespace
