//===- tests/translate/DifferentialSipsTest.cpp - SIPS invariance --------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The join planner's correctness contract: reordering a rule body is a
/// pure planning decision, so for every program — here 100 seeded random
/// programs covering recursion, negation, constants, repeated variables
/// and constraints — every --sips strategy at every thread count must
/// produce exactly the same relation contents as the unreordered
/// sequential run.
///
/// The profile strategy is fed honestly: each program first runs under the
/// source plan with profiling on, and the resulting stird-profile-v1
/// document (round-tripped through JSON, exactly like --feedback=FILE)
/// seeds the planner for the profiled runs.
///
//===----------------------------------------------------------------------===//

#include "core/Program.h"
#include "interp/Engine.h"
#include "obs/Profile.h"
#include "support/ProgramGen.h"
#include "translate/Sips.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace stird;

namespace {

/// Relation name -> sorted tuples. Generated programs are all-number, so
/// raw RamDomain comparison is exact (no symbol-ordinal ambiguity).
using Contents =
    std::vector<std::pair<std::string, std::vector<DynTuple>>>;

struct RunConfig {
  translate::SipsStrategy Sips = translate::SipsStrategy::Source;
  const translate::ProfileFeedback *Feedback = nullptr;
  std::size_t NumThreads = 1;
  bool Profile = false;
};

struct RunOutput {
  Contents Relations;
  std::string ProfileJson; // filled when Config.Profile
};

RunOutput run(const testgen::GeneratedProgram &P, const RunConfig &Config) {
  core::CompileOptions Compile;
  Compile.Sips = Config.Sips;
  Compile.Feedback = Config.Feedback;
  std::vector<std::string> Errors;
  auto Prog = core::Program::fromSource(P.Source, &Errors, Compile);
  EXPECT_NE(Prog, nullptr) << "seed " << P.Seed << ": "
                           << (Errors.empty() ? "compile failed" : Errors[0])
                           << "\n"
                           << P.Source;
  if (!Prog)
    return {};

  interp::EngineOptions Options;
  Options.NumThreads = Config.NumThreads;
  Options.EchoPrintSize = false;
  auto Engine = Prog->makeEngine(Options);
  Engine->run();

  RunOutput Out;
  for (const std::string &Name : P.Relations) {
    std::vector<DynTuple> Tuples = Engine->getTuples(Name);
    std::sort(Tuples.begin(), Tuples.end());
    Out.Relations.emplace_back(Name, std::move(Tuples));
  }
  if (Config.Profile) {
    obs::ProfileContext Ctx;
    Ctx.Program = "seed-" + std::to_string(P.Seed);
    Ctx.Backend = "sti";
    Out.ProfileJson = obs::buildProfile(*Engine, Ctx).dump();
  }
  return Out;
}

std::string describe(const testgen::GeneratedProgram &P,
                     const char *Strategy, std::size_t Threads) {
  return "seed " + std::to_string(P.Seed) + " under --sips=" + Strategy +
         " -j" + std::to_string(Threads) + "\n" + P.Source;
}

class DifferentialSipsTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DifferentialSipsTest, AllStrategiesAndThreadCountsAgree) {
  const testgen::GeneratedProgram P = testgen::generateProgram(GetParam());

  // The baseline doubles as the feedback producer for --sips=profile.
  RunConfig Baseline;
  Baseline.Profile = true;
  const RunOutput Reference = run(P, Baseline);
  if (Reference.Relations.empty())
    return; // compile failure already reported

  std::string Error;
  std::unique_ptr<translate::ProfileFeedback> Feedback =
      translate::ProfileFeedback::fromJson(Reference.ProfileJson, &Error);
  ASSERT_NE(Feedback, nullptr) << "seed " << P.Seed << ": " << Error;

  const translate::SipsStrategy Strategies[] = {
      translate::SipsStrategy::Source, translate::SipsStrategy::MaxBound,
      translate::SipsStrategy::Profile};
  for (translate::SipsStrategy Strategy : Strategies) {
    for (std::size_t Threads : {std::size_t(1), std::size_t(4)}) {
      RunConfig Config;
      Config.Sips = Strategy;
      Config.NumThreads = Threads;
      if (Strategy == translate::SipsStrategy::Profile)
        Config.Feedback = Feedback.get();
      const RunOutput Out = run(P, Config);
      EXPECT_EQ(Out.Relations, Reference.Relations)
          << describe(P, translate::sipsStrategyName(Strategy), Threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialSipsTest,
                         ::testing::Range<std::uint64_t>(1, 101));

} // namespace
