//===- tests/translate/AstToRamTest.cpp - Translation tests --------------------===//
//
// Part of the stird project.
//
//===----------------------------------------------------------------------===//

#include "translate/AstToRam.h"

#include "ast/Parser.h"
#include "ast/SemanticAnalysis.h"
#include "ram/RamPrinter.h"

#include <gtest/gtest.h>

using namespace stird;
using namespace stird::translate;

namespace {

struct Translation {
  std::unique_ptr<ast::Program> Ast;
  std::unique_ptr<ram::Program> Ram;
  // Held by pointer: the concurrency-safe SymbolTable is neither copyable
  // nor movable, but this fixture is returned by value.
  std::unique_ptr<SymbolTable> SymbolsPtr = std::make_unique<SymbolTable>();
  SymbolTable &symbols() { return *SymbolsPtr; }
};

Translation translateSource(const std::string &Source,
                            const TranslationOptions &Options = {}) {
  Translation Result;
  auto Parsed = ast::parseProgram(Source);
  EXPECT_TRUE(Parsed.succeeded())
      << (Parsed.Errors.empty() ? "" : Parsed.Errors[0]);
  Result.Ast = std::move(Parsed.Prog);
  auto Info = ast::analyze(*Result.Ast);
  EXPECT_TRUE(Info.succeeded())
      << (Info.Errors.empty() ? "" : Info.Errors[0]);
  auto Translated =
      translateToRam(*Result.Ast, Info, Result.symbols(), Options);
  EXPECT_TRUE(Translated.succeeded())
      << (Translated.Errors.empty() ? "" : Translated.Errors[0]);
  Result.Ram = std::move(Translated.Prog);
  return Result;
}

TEST(AstToRamTest, NonRecursiveRuleBecomesScanAndProject) {
  auto T = translateSource(".decl a(x:number)\n.decl b(x:number)\n"
                           "b(x) :- a(x).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("FOR t0 IN a"), std::string::npos);
  EXPECT_NE(Text.find("INSERT (t0.0) INTO b"), std::string::npos);
  // Non-recursive: no loop.
  EXPECT_EQ(Text.find("LOOP"), std::string::npos);
}

TEST(AstToRamTest, RecursiveRuleProducesSemiNaiveLoop) {
  auto T = translateSource(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, y) :- e(x, y).\np(x, z) :- p(x, y), e(y, z).");
  std::string Text = ram::print(*T.Ram);
  // Fig 3 shape: delta initialization, loop, exit on empty new, merge,
  // swap, clear.
  EXPECT_NE(Text.find("MERGE p INTO delta_p"), std::string::npos);
  EXPECT_NE(Text.find("LOOP"), std::string::npos);
  EXPECT_NE(Text.find("FOR t0 IN delta_p"), std::string::npos);
  EXPECT_NE(Text.find("BREAK (new_p = EMPTY)"), std::string::npos);
  EXPECT_NE(Text.find("MERGE new_p INTO p"), std::string::npos);
  EXPECT_NE(Text.find("SWAP (delta_p, new_p)"), std::string::npos);
  EXPECT_NE(Text.find("CLEAR new_p"), std::string::npos);
  // The recursive version guards against rederiving known tuples.
  EXPECT_NE(Text.find("IF (NOT ((t0.0,t1.1) IN p))"), std::string::npos);
}

TEST(AstToRamTest, MutualRecursionCreatesVersionsPerDelta) {
  auto T = translateSource(
      ".decl e(a:number, b:number)\n"
      ".decl odd(a:number)\n.decl even(a:number)\n"
      "even(0).\n"
      "odd(y) :- even(x), e(x, y).\n"
      "even(y) :- odd(x), e(x, y).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("delta_odd"), std::string::npos);
  EXPECT_NE(Text.find("delta_even"), std::string::npos);
  // Exit waits for both new relations to drain.
  EXPECT_NE(Text.find("BREAK ((new_odd = EMPTY) AND (new_even = EMPTY))"),
            std::string::npos);
}

TEST(AstToRamTest, NegationBecomesNotExists) {
  auto T = translateSource(
      ".decl a(x:number)\n.decl b(x:number)\n.decl c(x:number)\n"
      "c(x) :- a(x), !b(x).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("IF (NOT ((t0.0) IN b))"), std::string::npos);
}

TEST(AstToRamTest, ConstantsInAtomsBecomeIndexScans) {
  auto T = translateSource(
      ".decl e(a:number, b:number)\n.decl r(x:number)\n"
      "r(y) :- e(42, y).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("ON INDEX"), std::string::npos);
  EXPECT_NE(Text.find("42"), std::string::npos);
}

TEST(AstToRamTest, BoundVariableCreatesJoinIndexScan) {
  auto T = translateSource(
      ".decl e(a:number, b:number)\n.decl p(a:number, b:number)\n"
      "p(x, z) :- e(x, y), e(y, z).");
  std::string Text = ram::print(*T.Ram);
  // Second scan is an index scan keyed on the first scan's output.
  EXPECT_NE(Text.find("FOR t1 IN e ON INDEX"), std::string::npos);
}

TEST(AstToRamTest, EqualityBindingInlinesExpression) {
  auto T = translateSource(".decl a(x:number)\n.decl b(x:number)\n"
                           "b(y) :- a(x), y = x + 1.");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("INSERT (add(t0.0, 1)) INTO b"), std::string::npos);
}

TEST(AstToRamTest, RepeatedVariableInAtomBecomesSelfFilter) {
  auto T = translateSource(".decl e(a:number, b:number)\n.decl r(x:number)\n"
                           "r(x) :- e(x, x).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("IF (t0.1 = t0.0)"), std::string::npos);
}

TEST(AstToRamTest, FactsBecomeInsertQueries) {
  auto T = translateSource(".decl a(x:number, s:symbol)\na(1, \"hi\").");
  std::string Text = ram::print(*T.Ram);
  // The symbol is interned; its ordinal appears in the insert.
  RamDomain Ordinal = T.symbols().lookup("hi");
  ASSERT_GE(Ordinal, 0);
  EXPECT_NE(Text.find("INSERT (1," + std::to_string(Ordinal) + ") INTO a"),
            std::string::npos);
}

TEST(AstToRamTest, IoDirectivesEmitLoadsAndStores) {
  auto T = translateSource(".decl in(x:number)\n.decl out(x:number)\n"
                           ".input in\n.output out\n.printsize out\n"
                           "out(x) :- in(x).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("LOAD in"), std::string::npos);
  EXPECT_NE(Text.find("STORE out"), std::string::npos);
  EXPECT_NE(Text.find("PRINTSIZE out"), std::string::npos);
  // Loads precede the rule; stores follow it.
  EXPECT_LT(Text.find("LOAD in"), Text.find("QUERY"));
  EXPECT_GT(Text.find("STORE out"), Text.find("QUERY"));
}

TEST(AstToRamTest, ProfilingWrapsRulesInTimers) {
  auto T = translateSource(".decl a(x:number)\n.decl b(x:number)\n"
                           "b(x) :- a(x).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("TIMER \"b(x) :- a(x).\""), std::string::npos);

  TranslationOptions NoProfile;
  NoProfile.EnableProfiling = false;
  auto T2 = translateSource(".decl a(x:number)\n.decl b(x:number)\n"
                            "b(x) :- a(x).",
                            NoProfile);
  EXPECT_EQ(ram::print(*T2.Ram).find("TIMER"), std::string::npos);
}

TEST(AstToRamTest, EmptinessPrechecksEmitted) {
  auto T = translateSource(".decl a(x:number)\n.decl b(x:number)\n"
                           "b(x) :- a(x).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("IF (NOT (a = EMPTY))"), std::string::npos);

  TranslationOptions NoChecks;
  NoChecks.EnableEmptinessChecks = false;
  auto T2 = translateSource(".decl a(x:number)\n.decl b(x:number)\n"
                            "b(x) :- a(x).",
                            NoChecks);
  EXPECT_EQ(ram::print(*T2.Ram).find("EMPTY"), std::string::npos);
}

TEST(AstToRamTest, AggregateBecomesAggregateOperation) {
  auto T = translateSource(
      ".decl e(a:number, b:number)\n.decl c(n:number)\n"
      "c(n) :- n = count : { e(_, _) }.");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("AGGREGATE OVER e"), std::string::npos);
}

TEST(AstToRamTest, AggregateWithInjectedVariable) {
  auto T = translateSource(
      ".decl e(a:number, b:number)\n.decl s(a:number, total:number)\n"
      ".decl n(a:number)\n"
      "s(x, t) :- n(x), t = sum y : { e(x, y) }.");
  std::string Text = ram::print(*T.Ram);
  // The aggregate pattern binds the injected x (column 0 of e).
  EXPECT_NE(Text.find("AGGREGATE OVER e ON (t0.0,_)"), std::string::npos);
  EXPECT_NE(Text.find("VALUE t1.1"), std::string::npos);
}

TEST(AstToRamTest, EqrelSccUsesNaiveEvaluation) {
  auto T = translateSource(
      ".decl pair(a:number, b:number)\n"
      ".decl eq(a:number, b:number) eqrel\n"
      "eq(a, b) :- pair(a, b).\n"
      "eq(a, c) :- eq(a, b), pair(b, c).");
  std::string Text = ram::print(*T.Ram);
  // Naive mode: no delta relation, but still a fixpoint loop with new_.
  EXPECT_EQ(Text.find("delta_eq"), std::string::npos);
  EXPECT_NE(Text.find("new_eq"), std::string::npos);
  EXPECT_NE(Text.find("LOOP"), std::string::npos);
}

TEST(AstToRamTest, CounterBecomesAutoIncrement) {
  auto T = translateSource(".decl a(x:number)\n.decl b(id:number, x:number)\n"
                           "b($, x) :- a(x).");
  std::string Text = ram::print(*T.Ram);
  EXPECT_NE(Text.find("autoinc()"), std::string::npos);
}

TEST(AstToRamTest, SemanticErrorsPropagate) {
  auto Parsed = ast::parseProgram(".decl a(x:number)\na(y) :- a(x).");
  ASSERT_TRUE(Parsed.succeeded());
  auto Info = ast::analyze(*Parsed.Prog);
  ASSERT_FALSE(Info.succeeded());
  SymbolTable Symbols;
  auto Translated = translateToRam(*Parsed.Prog, Info, Symbols);
  EXPECT_FALSE(Translated.succeeded());
  EXPECT_EQ(Translated.Prog, nullptr);
}

} // namespace
